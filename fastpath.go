package rtd

// The fast tier: functional execution, sampled simulation and
// checkpoints (internal/fastpath). See docs/performance.md for when
// sampling is sound and how the confidence interval is computed.

import (
	"bytes"

	"repro/internal/cpu"
	"repro/internal/fastpath"
)

// FunctStats counts functional-engine work (no timing columns: the
// functional engine charges no cycles).
type FunctStats = cpu.FunctStats

// SampleConfig parameterises sampled simulation: detailed measurement
// window, functional fast-forward interval, detailed warmup (all in
// user instructions).
type SampleConfig = fastpath.SampleConfig

// SampleResult reports a sampled run: the CPI ratio estimate, its 95%
// confidence interval, and the measured-window Stats accumulation.
type SampleResult = fastpath.SampleResult

// Checkpoint is a complete machine state with a schema-versioned,
// checksummed on-disk format (fastpath.Load / Checkpoint.Save).
type Checkpoint = fastpath.Checkpoint

// DefaultSampleConfig returns the tuned sampling parameters that hold
// sampled CPI within 1% of exact on the benchmark registry.
func DefaultSampleConfig() SampleConfig { return fastpath.DefaultSampleConfig() }

// FunctionalRun executes the image on the functional fast-forward
// engine: identical architectural results (output, exit code, memory),
// no timing — the returned RunResult's Stats are all zero, and the
// work shows up in FunctStats instead.
func FunctionalRun(im *Image, cfg MachineConfig) (RunResult, FunctStats, error) {
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = 2_000_000_000
	}
	cfg.Functional = true
	c, err := cpu.New(cfg)
	if err != nil {
		return RunResult{}, FunctStats{}, err
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		return RunResult{}, FunctStats{}, err
	}
	code, err := c.Run()
	if err != nil {
		return RunResult{}, FunctStats{}, err
	}
	return RunResult{ExitCode: code, Output: out.String(), Stats: c.Stats}, c.FStats, nil
}

// SampledRun executes the image under SMARTS-style sampled simulation:
// detailed measurement windows alternating with functional
// fast-forward. It returns the sample estimate and the program's
// output (which, unlike timing, is exact).
func SampledRun(im *Image, cfg MachineConfig, scfg SampleConfig) (*SampleResult, string, error) {
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = 2_000_000_000
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, "", err
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		return nil, "", err
	}
	res, err := fastpath.Sampled(c, scfg)
	if err != nil {
		return nil, "", err
	}
	return res, out.String(), nil
}
