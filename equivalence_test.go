package rtd_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rtd "repro"
)

// This file is the predecode equivalence battery: every corpus program,
// MiniC program and synthetic benchmark runs twice — once on the
// predecoded-dispatch hot loop (the default, with its self-audit
// enabled) and once on the reference word-at-a-time decoder
// (DisablePredecode) — and the two runs must produce identical output
// and bit-identical cpu.Stats, including the full CPI stack. The
// predecode cache is a host-side optimisation; any simulated difference
// is a bug.

// runBoth runs im under both decode paths and fails the test unless
// output and stats match exactly. It returns the predecoded result.
// The whole-struct Stats comparison below is the equivalence battery's
// coverage anchor: statscomplete proves it sees every counter.
//
//cccheck:stats(compare)
func runBoth(t *testing.T, label string, im *rtd.Image, machine rtd.MachineConfig) rtd.RunResult {
	t.Helper()
	pre := machine
	pre.DisablePredecode = false
	// PredecodeCheck re-decodes every fetched entry from the backing
	// I-cache word, so the battery also audits cache coherence.
	pre.PredecodeCheck = true
	ref := machine
	ref.DisablePredecode = true

	got, err := rtd.Run(im, pre)
	if err != nil {
		t.Fatalf("%s: predecode run: %v", label, err)
	}
	want, err := rtd.Run(im, ref)
	if err != nil {
		t.Fatalf("%s: reference run: %v", label, err)
	}
	if got.Output != want.Output {
		t.Errorf("%s: output %q (predecode), want %q (reference)", label, got.Output, want.Output)
	}
	if got.ExitCode != want.ExitCode {
		t.Errorf("%s: exit code %d (predecode), want %d (reference)", label, got.ExitCode, want.ExitCode)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats diverged\npredecode: %+v\nreference: %+v", label, got.Stats, want.Stats)
	}
	return got
}

// equivalenceSchemes is every image kind the battery runs: native plus
// all decompressor configurations, so both the hardware-fill and the
// swic-written predecode paths are covered.
var equivalenceSchemes = []rtd.Options{
	{},
	{Scheme: rtd.SchemeDict},
	{Scheme: rtd.SchemeDict, ShadowRF: true},
	{Scheme: rtd.SchemeCodePack},
	{Scheme: rtd.SchemeCodePack, ShadowRF: true},
	{Scheme: rtd.SchemeProcDict, ShadowRF: true},
}

func schemeLabel(opts rtd.Options) string {
	if opts.Scheme == "" {
		return "native"
	}
	s := string(opts.Scheme)
	if opts.ShadowRF {
		s += "+rf"
	}
	return s
}

// TestPredecodeEquivalenceCorpus runs the whole assembly corpus under
// every scheme on both decode paths, at the baseline 16KB I-cache and
// at 1KB, where capacity evictions force lines to be re-decompressed
// (and re-predecoded) many times.
func TestPredecodeEquivalenceCorpus(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.s")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus programs found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".s")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			im, err := rtd.Assemble(string(raw))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			for _, opts := range equivalenceSchemes {
				run := im
				if opts.Scheme != "" {
					res, err := rtd.Compress(im, opts)
					if err != nil {
						t.Fatalf("%s: compress: %v", opts.Scheme, err)
					}
					run = res.Image
				}
				for _, kb := range []int{16, 1} {
					machine := rtd.DefaultMachine()
					machine.ICache.SizeBytes = kb * 1024
					machine.MaxInstr = 100_000_000
					runBoth(t, fmt.Sprintf("%s@%dKB", schemeLabel(opts), kb), run, machine)
				}
			}
		})
	}
}

// TestPredecodeEquivalenceMiniC covers the compiled MiniC corpus on
// both decode paths (native and the two main decompressors).
func TestPredecodeEquivalenceMiniC(t *testing.T) {
	paths, err := filepath.Glob("testdata/minic/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no MiniC corpus programs found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".mc")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			im, err := rtd.CompileMiniC(string(raw))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			machine := rtd.DefaultMachine()
			machine.MaxInstr = 50_000_000
			runBoth(t, "native", im, machine)
			for _, scheme := range []rtd.Scheme{rtd.SchemeDict, rtd.SchemeCodePack} {
				res, err := rtd.Compress(im, rtd.Options{Scheme: scheme, ShadowRF: true})
				if err != nil {
					t.Fatal(err)
				}
				runBoth(t, string(scheme), res.Image, machine)
			}
		})
	}
}

// TestPredecodeEquivalenceBenchmarks runs every synthetic benchmark
// (scaled down) natively and under both decompressors on both decode
// paths — the same programs the perfwatch registry measures.
func TestPredecodeEquivalenceBenchmarks(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	for _, p := range rtd.Benchmarks() {
		t.Run(p.Name, func(t *testing.T) {
			im, err := rtd.BuildBenchmarkScaled(p.Name, scale)
			if err != nil {
				t.Fatal(err)
			}
			machine := rtd.DefaultMachine()
			machine.MaxInstr = 2_000_000_000
			runBoth(t, "native", im, machine)
			for _, opts := range []rtd.Options{
				{Scheme: rtd.SchemeDict, ShadowRF: true},
				{Scheme: rtd.SchemeCodePack, ShadowRF: true},
			} {
				res, err := rtd.Compress(im, opts)
				if err != nil {
					t.Fatal(err)
				}
				runBoth(t, schemeLabel(opts), res.Image, machine)
			}
		})
	}
}
