package rtd_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	rtd "repro"
)

// readExpect extracts the "# expect: ..." line from a corpus program.
func readExpect(t *testing.T, src string) string {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "# expect:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	t.Fatal("corpus program has no '# expect:' line")
	return ""
}

// TestCorpus assembles every program under testdata/ and runs it natively
// and under every decompression scheme, requiring the expected output
// each time. These are real programs (sorting, recursion, string and bit
// manipulation), so together they exercise the whole ISA, the assembler
// and all four handlers.
func TestCorpus(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.s")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus programs found: %v", err)
	}
	schemes := []rtd.Options{
		{Scheme: rtd.SchemeDict},
		{Scheme: rtd.SchemeDict, ShadowRF: true},
		{Scheme: rtd.SchemeCodePack},
		{Scheme: rtd.SchemeCodePack, ShadowRF: true},
		{Scheme: rtd.SchemeProcDict, ShadowRF: true},
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".s")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			want := readExpect(t, src)
			im, err := rtd.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			machine := rtd.DefaultMachine()
			machine.MaxInstr = 50_000_000
			nat, err := rtd.Run(im, machine)
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			if nat.ExitCode != 0 {
				t.Fatalf("native exit code %d", nat.ExitCode)
			}
			if nat.Output != want {
				t.Fatalf("native output %q, want %q", nat.Output, want)
			}
			for _, opts := range schemes {
				res, err := rtd.Compress(im, opts)
				if err != nil {
					t.Fatalf("%s: compress: %v", opts.Scheme, err)
				}
				got, err := rtd.Run(res.Image, machine)
				if err != nil {
					t.Fatalf("%s: run: %v", opts.Scheme, err)
				}
				if got.Output != want {
					t.Errorf("%s rf=%v: output %q, want %q", opts.Scheme, opts.ShadowRF, got.Output, want)
				}
				if got.Stats.Instrs != nat.Stats.Instrs {
					t.Errorf("%s rf=%v: instr count %d, native %d",
						opts.Scheme, opts.ShadowRF, got.Stats.Instrs, nat.Stats.Instrs)
				}
			}
		})
	}
}

// TestCorpusAtSmallCaches re-runs the corpus with 1KB and 2KB I-caches so
// capacity evictions force repeated decompression of the same lines.
func TestCorpusAtSmallCaches(t *testing.T) {
	paths, _ := filepath.Glob("testdata/*.s")
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(raw)
		want := readExpect(t, src)
		im, err := rtd.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, kb := range []int{1, 2} {
			machine := rtd.DefaultMachine()
			machine.ICache.SizeBytes = kb * 1024
			machine.MaxInstr = 100_000_000
			res, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeDict, ShadowRF: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rtd.Run(res.Image, machine)
			if err != nil {
				t.Fatalf("%s @%dKB: %v", path, kb, err)
			}
			if got.Output != want {
				t.Fatalf("%s @%dKB: output %q, want %q", path, kb, got.Output, want)
			}
		}
	}
}

// TestMiniCCorpus compiles every MiniC program under testdata/minic/ and
// verifies it natively and under the dictionary and CodePack
// decompressors.
func TestMiniCCorpus(t *testing.T) {
	paths, err := filepath.Glob("testdata/minic/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no MiniC corpus programs found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".mc")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			want := ""
			for _, line := range strings.Split(src, "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "// expect:"); ok {
					want = strings.TrimSpace(rest)
				}
			}
			if want == "" {
				t.Fatal("no '// expect:' line")
			}
			im, err := rtd.CompileMiniC(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			machine := rtd.DefaultMachine()
			machine.MaxInstr = 50_000_000
			nat, err := rtd.Run(im, machine)
			if err != nil {
				t.Fatal(err)
			}
			if nat.Output != want {
				t.Fatalf("native output %q, want %q", nat.Output, want)
			}
			for _, scheme := range []rtd.Scheme{rtd.SchemeDict, rtd.SchemeCodePack} {
				res, err := rtd.Compress(im, rtd.Options{Scheme: scheme, ShadowRF: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := rtd.Run(res.Image, machine)
				if err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				if got.Output != want {
					t.Fatalf("%s: output %q, want %q", scheme, got.Output, want)
				}
			}
		})
	}
}
