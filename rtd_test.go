package rtd_test

import (
	"fmt"
	"strings"
	"testing"

	rtd "repro"
)

const demo = `
        .data
msg:    .asciiz "sum="
        .text
        .proc main
main:   la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        ori   $s0, $zero, 100
        move  $s1, $zero
loop:   addu  $s1, $s1, $s0
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        move  $a0, $s1
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`

func TestAssembleCompressRun(t *testing.T) {
	im, err := rtd.Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rtd.Run(im, rtd.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if nat.ExitCode != 0 || nat.Output != "sum=5050" {
		t.Fatalf("native run: code=%d out=%q", nat.ExitCode, nat.Output)
	}
	for _, scheme := range []rtd.Scheme{rtd.SchemeDict, rtd.SchemeCodePack, rtd.SchemeCopy} {
		res, err := rtd.Compress(im, rtd.Options{Scheme: scheme, ShadowRF: true})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		got, err := rtd.Run(res.Image, rtd.DefaultMachine())
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if got.Output != nat.Output || got.ExitCode != nat.ExitCode {
			t.Fatalf("%s diverged: %q", scheme, got.Output)
		}
		if got.Slowdown(nat) < 1 {
			t.Fatalf("%s: compressed faster than native?", scheme)
		}
	}
}

func TestBenchmarksAPI(t *testing.T) {
	if len(rtd.Benchmarks()) != 8 {
		t.Fatal("want 8 benchmarks")
	}
	im, err := rtd.BuildBenchmarkScaled("pegwit", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	out, prof, err := rtd.ProfiledRun(im, rtd.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 0 || out.Stats.Instrs == 0 {
		t.Fatalf("bad run %+v", out.Stats)
	}
	sel := rtd.Select(prof, rtd.ByExecution, 0.10)
	if len(sel) == 0 {
		t.Fatal("selection empty")
	}
	if _, err := rtd.BuildBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(rtd.SelectionThresholds()) != 5 {
		t.Fatal("want the paper's five thresholds")
	}
}

func TestHandlerSource(t *testing.T) {
	src, err := rtd.HandlerSource(rtd.SchemeDict, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "swic") || !strings.Contains(src, "iret") {
		t.Fatal("handler source incomplete")
	}
	if _, err := rtd.HandlerSource("bogus", false); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestDisassemble(t *testing.T) {
	im, err := rtd.Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	text := rtd.Disassemble(im)
	for _, want := range []string{"main:", "syscall", "addu $s1, $s1, $s0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q", want)
		}
	}
}

// ExampleAssemble demonstrates the full assemble→compress→simulate flow.
func ExampleAssemble() {
	im, _ := rtd.Assemble(`
        .text
        .proc main
main:   ori   $a0, $zero, 42
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	res, _ := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeDict, ShadowRF: true})
	out, _ := rtd.Run(res.Image, rtd.DefaultMachine())
	fmt.Println(out.Output)
	// Output: 42
}

func TestVerifyAPI(t *testing.T) {
	im, err := rtd.Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeDict, ShadowRF: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rtd.Verify(im, res.Image, rtd.DefaultMachine(), 0); err != nil {
		t.Fatalf("equivalent images reported divergent: %v", err)
	}
}
