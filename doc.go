// Package rtd is a library for run-time software code decompression,
// reproducing Lefurgy, Piccininni & Mudge, "Reducing Code Size with
// Run-time Decompression" (HPCA 2000).
//
// Programs for the bundled CLR32 embedded processor are stored compressed
// in main memory. On an instruction-cache miss inside the compressed code
// region the simulated CPU raises an exception, and a small software
// handler — real CLR32 code running from a dedicated handler RAM —
// decompresses one cache line (dictionary scheme) or two (CodePack
// scheme) and writes the native instructions straight into the I-cache
// with the swic instruction. Once a line is cached the program runs at
// native speed.
//
// The top-level workflow:
//
//	im, err := rtd.Assemble(source)          // or rtd.BuildBenchmark("cc1")
//	res, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeDict, ShadowRF: true})
//	out, err := rtd.Run(res.Image, rtd.DefaultMachine())
//	fmt.Println(out.Slowdown(baseline), res.Ratio())
//
// Selective compression (keeping hot or miss-heavy procedures native) is
// available through Profile and Select; the paper's full evaluation is
// reproduced by the experiment sub-package and the cmd/experiments tool.
package rtd
