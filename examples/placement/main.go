// Placement: the unified selective-compression + code-placement framework
// the paper proposes as future work (§5.3). A profiling run collects the
// call-affinity graph; Pettis–Hansen chain merging computes a procedure
// order; the same miss-based selection is then compressed twice — with
// the original layout and with the profile-guided one — and compared.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

func main() {
	im, err := rtd.BuildBenchmarkScaled("cc1", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	machine := rtd.DefaultMachine()

	native, prof, err := rtd.ProfiledRun(im, machine)
	if err != nil {
		log.Fatal(err)
	}
	order := rtd.PlacementOrder(prof)
	fmt.Printf("cc1: %d procedures; guided order starts with %v ...\n\n",
		len(order), order[:4])

	fmt.Printf("%-34s %10s %8s %9s\n", "configuration", "selection", "ratio", "slowdown")
	for _, th := range []float64{0, 0.20} {
		sel := rtd.Select(prof, rtd.ByMisses, th)
		for _, cfg := range []struct {
			name  string
			order []string
		}{
			{"original layout (paper default)", nil},
			{"profile-guided placement", order},
		} {
			res, err := rtd.Compress(im, rtd.Options{
				Scheme:      rtd.SchemeDict,
				ShadowRF:    true,
				NativeProcs: sel,
				Order:       cfg.order,
			})
			if err != nil {
				log.Fatal(err)
			}
			run, err := rtd.Run(res.Image, machine)
			if err != nil {
				log.Fatal(err)
			}
			if run.Output != native.Output {
				log.Fatalf("%s: output diverged", cfg.name)
			}
			fmt.Printf("%-34s %9.0f%% %7.1f%% %9.2f\n",
				cfg.name, th*100, res.Ratio()*100, run.Slowdown(native))
		}
	}
	fmt.Println("\nPlacement changes only conflict misses: same size, different speed.")
	fmt.Println("(Gains are workload-dependent; the paper reports up to 10% from")
	fmt.Println("placement alone, and our cc1 stand-in shows a similar effect.)")
}
