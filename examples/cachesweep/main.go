// Cachesweep: reproduce one benchmark's slice of the paper's Figure 4 —
// how the I-cache miss ratio governs the execution-time cost of software
// decompression. The same program runs with 4KB, 16KB and 64KB
// instruction caches under all four decompressor configurations.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

func main() {
	im, err := rtd.BuildBenchmarkScaled("go", 0.5)
	if err != nil {
		log.Fatal(err)
	}

	type config struct {
		name   string
		scheme rtd.Scheme
		rf     bool
	}
	configs := []config{
		{"D", rtd.SchemeDict, false},
		{"D+RF", rtd.SchemeDict, true},
		{"CP", rtd.SchemeCodePack, false},
		{"CP+RF", rtd.SchemeCodePack, true},
	}

	fmt.Printf("%6s %10s", "cache", "missratio")
	for _, c := range configs {
		fmt.Printf(" %7s", c.name)
	}
	fmt.Println()

	for _, kb := range []int{4, 16, 64} {
		machine := rtd.DefaultMachine()
		machine.ICache.SizeBytes = kb * 1024
		native, err := rtd.Run(im, machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4dKB %9.3f%%", kb, native.MissRatio()*100)
		for _, c := range configs {
			res, err := rtd.Compress(im, rtd.Options{Scheme: c.scheme, ShadowRF: c.rf})
			if err != nil {
				log.Fatal(err)
			}
			run, err := rtd.Run(res.Image, machine)
			if err != nil {
				log.Fatal(err)
			}
			if run.Output != native.Output {
				log.Fatalf("%s diverged at %dKB", c.name, kb)
			}
			fmt.Printf(" %7.2f", run.Slowdown(native))
		}
		fmt.Println()
	}
	fmt.Println("\nGrowing the cache drives the miss ratio — and with it the")
	fmt.Println("decompression overhead — toward zero (paper Figure 4).")
}
