// Selective: walk through selective compression (paper §3.3) on the
// pegwit stand-in. The program is profiled once; then procedures are
// kept native under either the execution-based or the miss-based policy
// at increasing coverage thresholds, tracing out the size/speed trade-off
// of Figure 5 — including the paper's headline finding that miss-based
// selection wins on loop-oriented programs.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

func main() {
	im, err := rtd.BuildBenchmarkScaled("pegwit", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	machine := rtd.DefaultMachine()

	native, prof, err := rtd.ProfiledRun(im, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pegwit: %d instructions, I-miss ratio %.3f%%\n\n",
		native.Stats.Instrs, native.MissRatio()*100)

	for _, policy := range []rtd.Policy{rtd.ByExecution, rtd.ByMisses} {
		fmt.Printf("%v-based selection (dictionary scheme):\n", policy)
		fmt.Printf("  %9s %8s %8s %8s\n", "threshold", "native", "ratio", "slowdown")
		for _, th := range append([]float64{0}, rtd.SelectionThresholds()...) {
			sel := rtd.Select(prof, policy, th)
			res, err := rtd.Compress(im, rtd.Options{
				Scheme: rtd.SchemeDict, ShadowRF: true, NativeProcs: sel})
			if err != nil {
				log.Fatal(err)
			}
			run, err := rtd.Run(res.Image, machine)
			if err != nil {
				log.Fatal(err)
			}
			if run.Output != native.Output {
				log.Fatalf("selective image diverged at threshold %.2f", th)
			}
			fmt.Printf("  %8.0f%% %8d %7.1f%% %8.2f\n",
				th*100, len(sel), res.Ratio()*100, run.Slowdown(native))
		}
		fmt.Println()
	}
	fmt.Println("Execution-based selection wastes native bytes on the hot loops,")
	fmt.Println("which rarely miss; miss-based selection targets the procedures")
	fmt.Println("that actually pay the decompression penalty.")
}
