// Quickstart: assemble a small CLR32 program, compress it with the
// dictionary scheme, and run both versions on the simulated machine —
// showing that the compressed program produces identical output while
// occupying less memory, at a small cost in cycles.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

const source = `
        .data
hello:  .asciiz "checksum: "
        .align 4
tab:    .word 7, 11, 13, 17, 19, 23, 29, 31
        .text
        .proc main
main:   la    $a0, hello
        ori   $v0, $zero, 4
        syscall
        # Fold the table into a checksum with some mixing.
        la    $s0, tab
        ori   $s1, $zero, 8
        move  $s2, $zero
loop:   lw    $t0, 0($s0)
        sll   $t1, $s2, 5
        addu  $t1, $t1, $s2
        xor   $s2, $t1, $t0
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz  $s1, loop
        move  $a0, $s2
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`

func main() {
	im, err := rtd.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}

	machine := rtd.DefaultMachine()
	native, err := rtd.Run(im, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:     %q  (%d cycles, %d bytes of code)\n",
		native.Output, native.Stats.Cycles, im.CodeSize())

	for _, scheme := range []rtd.Scheme{rtd.SchemeDict, rtd.SchemeCodePack} {
		res, err := rtd.Compress(im, rtd.Options{Scheme: scheme, ShadowRF: true})
		if err != nil {
			log.Fatal(err)
		}
		run, err := rtd.Run(res.Image, machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %q  (%d cycles, slowdown %.2f, stored %d bytes, ratio %.1f%%)\n",
			scheme+":", run.Output, run.Stats.Cycles, run.Slowdown(native),
			res.StoredSize, res.Ratio()*100)
		if run.Output != native.Output {
			log.Fatal("outputs diverged — decompression is broken")
		}
	}

	fmt.Println("\nThe dictionary miss handler that ran on every I-cache miss:")
	src, err := rtd.HandlerSource(rtd.SchemeDict, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(src)
}
