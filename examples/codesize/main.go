// Codesize: compare the three compression algorithms — dictionary,
// CodePack and LZRW1 (whole-text) — across the eight benchmark stand-ins,
// reproducing the size columns of the paper's Table 2 through the public
// API.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

func main() {
	fmt.Printf("%-12s %10s %10s %10s %7s %7s\n",
		"benchmark", "original", "dict", "codepack", "dict%", "cp%")
	for _, p := range rtd.Benchmarks() {
		im, err := rtd.BuildBenchmark(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		d, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeDict})
		if err != nil {
			log.Fatal(err)
		}
		cp, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeCodePack})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d %10d %10d %6.1f%% %6.1f%%\n",
			p.Name, d.OriginalSize, d.StoredSize, cp.StoredSize,
			d.Ratio()*100, cp.Ratio()*100)
	}
	fmt.Println("\nLower ratio = smaller program. CodePack compresses harder than")
	fmt.Println("the dictionary but needs a slower, serial decompressor (Table 3).")
}
