// Compiler: the complete toolchain the paper assumes — compile a program
// from source, compress it, and run it under software decompression,
// verifying that compilation, compression and execution compose.
package main

import (
	"fmt"
	"log"

	rtd "repro"
)

const source = `
// Collatz: longest chain for any start below 1000.
var best;
var bestStart;

func chain(n) {
	var len = 1;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; }
		else { n = 3 * n + 1; }
		len = len + 1;
	}
	return len;
}

func main() {
	best = 0;
	var i = 1;
	while (i < 1000) {
		var l = chain(i);
		if (l > best) {
			best = l;
			bestStart = i;
		}
		i = i + 1;
	}
	prints("longest Collatz chain below 1000: start=");
	print(bestStart);
	prints(" length=");
	print(best);
	printc('\n');
	return 0;
}
`

func main() {
	im, err := rtd.CompileMiniC(source)
	if err != nil {
		log.Fatal(err)
	}
	machine := rtd.DefaultMachine()
	native, err := rtd.Run(im, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:   %s          (%d instructions, %d bytes of code)\n",
		trim(native.Output), native.Stats.Instrs, im.CodeSize())

	res, err := rtd.Compress(im, rtd.Options{Scheme: rtd.SchemeCodePack, ShadowRF: true})
	if err != nil {
		log.Fatal(err)
	}
	comp, err := rtd.Run(res.Image, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codepack: %s          (ratio %.1f%%, slowdown %.2f)\n",
		trim(comp.Output), res.Ratio()*100, comp.Slowdown(native))
	if comp.Output != native.Output {
		log.Fatal("compressed execution diverged")
	}
}

func trim(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		return s[:n-1]
	}
	return s
}
