# 3x3 integer matrix multiply; print the trace of A*B.
# expect: trace=189
        .data
A:      .word 1, 2, 3, 4, 5, 6, 7, 8, 9
B:      .word 9, 8, 7, 6, 5, 4, 3, 2, 1
C:      .space 36
msg:    .asciiz "trace="
        .text
        .proc main
main:   move  $s0, $zero             # i
iloop:  slti  $t0, $s0, 3
        beq   $t0, $zero, trace
        move  $s1, $zero             # j
jloop:  slti  $t0, $s1, 3
        beq   $t0, $zero, inext
        move  $s2, $zero             # k
        move  $s3, $zero             # acc
kloop:  slti  $t0, $s2, 3
        beq   $t0, $zero, store
        # A[i][k]
        ori   $t1, $zero, 3
        mult  $s0, $t1
        mflo  $t1
        addu  $t1, $t1, $s2
        sll   $t1, $t1, 2
        la    $t2, A
        addu  $t2, $t2, $t1
        lw    $t3, 0($t2)
        # B[k][j]
        ori   $t1, $zero, 3
        mult  $s2, $t1
        mflo  $t1
        addu  $t1, $t1, $s1
        sll   $t1, $t1, 2
        la    $t2, B
        addu  $t2, $t2, $t1
        lw    $t4, 0($t2)
        mult  $t3, $t4
        mflo  $t5
        addu  $s3, $s3, $t5
        addiu $s2, $s2, 1
        b     kloop
store:  ori   $t1, $zero, 3
        mult  $s0, $t1
        mflo  $t1
        addu  $t1, $t1, $s1
        sll   $t1, $t1, 2
        la    $t2, C
        addu  $t2, $t2, $t1
        sw    $s3, 0($t2)
        addiu $s1, $s1, 1
        b     jloop
inext:  addiu $s0, $s0, 1
        b     iloop
trace:  move  $s4, $zero
        move  $s0, $zero
tloop:  slti  $t0, $s0, 3
        beq   $t0, $zero, out
        ori   $t1, $zero, 4          # C[i][i]: (3i+i)*4 = 16i
        mult  $s0, $t1
        mflo  $t1
        sll   $t1, $t1, 2
        la    $t2, C
        addu  $t2, $t2, $t1
        lw    $t3, 0($t2)
        addu  $s4, $s4, $t3
        addiu $s0, $s0, 1
        b     tloop
out:    la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        move  $a0, $s4
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
