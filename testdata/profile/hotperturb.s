# Attribution fixture for the CI profile-smoke job: a hot loop, a warm
# loop and a cold helper, so a cycle profile has an unambiguous ranking.
# This file is hotbase.s with hot running 4x longer —
# `ccprof diff` of the two profiles must rank `hot` as the top delta
# contributor.
# expect: 5500
        .text
        .proc main
main:   move  $s0, $zero             # checksum accumulator
        jal   hot
        addu  $s0, $s0, $v0
        jal   warm
        addu  $s0, $s0, $v0
        jal   cold
        addu  $s0, $s0, $v0
        move  $a0, $s0
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp

# hot: the dominant loop. A deliberately fat body (it spans several
# I-cache lines) so compressed runs charge it real decompression work.
        .proc hot
hot:    ori   $t0, $zero, 1600       # perturbed: 4x hotbase.s
        move  $v0, $zero
        move  $t1, $zero
hloop:  addiu $t1, $t1, 5
        addiu $t1, $t1, -2
        sll   $t2, $t1, 1
        srl   $t2, $t2, 1
        addu  $t3, $t2, $t1
        subu  $t3, $t3, $t1
        addiu $v0, $v0, 3
        addiu $t0, $t0, -1
        bne   $t0, $zero, hloop
        jr    $ra
        .endp

# warm: a quarter of hot's base iterations.
        .proc warm
warm:   ori   $t0, $zero, 100
        move  $v0, $zero
wloop:  addiu $v0, $v0, 7
        addiu $t0, $t0, -1
        bne   $t0, $zero, wloop
        jr    $ra
        .endp

# cold: executes exactly once.
        .proc cold
cold:   move  $v0, $zero
        jr    $ra
        .endp
