# Bitwise CRC-32 (IEEE, reflected) over a string, printed as hex.
# expect: crc32=0x414fa339
        .data
input:  .asciiz "The quick brown fox jumps over the lazy dog"
msg:    .asciiz "crc32="
        .text
        .proc main
main:   la    $s0, input
        li    $s1, 0xFFFFFFFF        # crc
bloop:  lbu   $t0, 0($s0)
        beq   $t0, $zero, fini
        xor   $s1, $s1, $t0
        ori   $s2, $zero, 8          # bit counter
xloop:  andi  $t1, $s1, 1
        srl   $s1, $s1, 1
        beq   $t1, $zero, nox
        li    $t2, 0xEDB88320
        xor   $s1, $s1, $t2
nox:    addiu $s2, $s2, -1
        bgtz  $s2, xloop
        addiu $s0, $s0, 1
        b     bloop
fini:   nor   $s1, $s1, $zero        # final xor with 0xFFFFFFFF
        la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        move  $a0, $s1
        ori   $v0, $zero, 34
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
