# Sieve of Eratosthenes: count the primes below 100.
# expect: primes<100: 25
        .data
flags:  .space 100
msg:    .asciiz "primes<100: "
        .text
        .proc main
main:   la    $s0, flags
        # mark 0 and 1 composite
        ori   $t0, $zero, 1
        sb    $t0, 0($s0)
        sb    $t0, 1($s0)
        ori   $s1, $zero, 2          # candidate p
outer:  slti  $t0, $s1, 10           # p*p < 100 while p < 10
        beq   $t0, $zero, count
        addu  $t1, $s0, $s1
        lbu   $t1, 0($t1)
        bne   $t1, $zero, nextp      # composite: skip
        mult  $s1, $s1
        mflo  $t2                    # m = p*p
mark:   slti  $t3, $t2, 100
        beq   $t3, $zero, nextp
        addu  $t4, $s0, $t2
        ori   $t5, $zero, 1
        sb    $t5, 0($t4)
        addu  $t2, $t2, $s1
        b     mark
nextp:  addiu $s1, $s1, 1
        b     outer
count:  move  $s2, $zero             # prime counter
        move  $s3, $zero             # index
cloop:  slti  $t0, $s3, 100
        beq   $t0, $zero, done
        addu  $t1, $s0, $s3
        lbu   $t1, 0($t1)
        bne   $t1, $zero, cnext
        addiu $s2, $s2, 1
cnext:  addiu $s3, $s3, 1
        b     cloop
done:   la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        move  $a0, $s2
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
