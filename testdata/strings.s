# String routines: strlen, reverse in place, compare.
# expect: len=26 rev=zyxwvutsrqponmlkjihgfedcba cmp=1
        .data
alpha:  .asciiz "abcdefghijklmnopqrstuvwxyz"
copy:   .space 32
m1:     .asciiz "len="
m2:     .asciiz " rev="
m3:     .asciiz " cmp="
        .text
        .proc main
main:   la    $a0, m1
        ori   $v0, $zero, 4
        syscall
        la    $a0, alpha
        jal   strlen
        move  $s0, $v0               # length
        move  $a0, $s0
        ori   $v0, $zero, 1
        syscall
        # copy then reverse
        la    $a0, alpha
        la    $a1, copy
        jal   strcpy
        la    $a0, copy
        move  $a1, $s0
        jal   reverse
        la    $a0, m2
        ori   $v0, $zero, 4
        syscall
        la    $a0, copy
        ori   $v0, $zero, 4
        syscall
        # reversed alphabet compared to itself -> equal (1)
        la    $a0, copy
        la    $a1, copy
        jal   streq
        la    $a0, m3
        move  $s1, $v0
        ori   $v0, $zero, 4
        syscall
        move  $a0, $s1
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp

        .proc strlen
strlen: move  $v0, $zero
sl1:    addu  $t0, $a0, $v0
        lbu   $t0, 0($t0)
        beq   $t0, $zero, sl2
        addiu $v0, $v0, 1
        b     sl1
sl2:    jr    $ra
        .endp

        .proc strcpy
strcpy: lbu   $t0, 0($a0)
        sb    $t0, 0($a1)
        beq   $t0, $zero, sc2
        addiu $a0, $a0, 1
        addiu $a1, $a1, 1
        b     strcpy
sc2:    jr    $ra
        .endp

# reverse(buf in a0, len in a1) in place
        .proc reverse
reverse:
        move  $t0, $a0               # left
        addu  $t1, $a0, $a1
        addiu $t1, $t1, -1           # right
rv1:    sltu  $t2, $t0, $t1
        beq   $t2, $zero, rv2
        lbu   $t3, 0($t0)
        lbu   $t4, 0($t1)
        sb    $t4, 0($t0)
        sb    $t3, 0($t1)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        b     rv1
rv2:    jr    $ra
        .endp

# streq(a0, a1) -> 1 if equal else 0
        .proc streq
streq:  lbu   $t0, 0($a0)
        lbu   $t1, 0($a1)
        bne   $t0, $t1, ne
        beq   $t0, $zero, eq
        addiu $a0, $a0, 1
        addiu $a1, $a1, 1
        b     streq
eq:     ori   $v0, $zero, 1
        jr    $ra
ne:     move  $v0, $zero
        jr    $ra
        .endp
