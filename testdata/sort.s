# Bubble sort a word array and print it.
# expect: 2 3 11 17 23 42 64 99
        .data
arr:    .word 42, 17, 99, 3, 64, 2, 23, 11
n:      .word 8
        .text
        .proc main
main:   la    $s0, arr
        la    $t0, n
        lw    $s1, 0($t0)            # n
        move  $s2, $zero             # i
iloop:  addiu $t0, $s1, -1
        slt   $t1, $s2, $t0          # i < n-1
        beq   $t1, $zero, print
        move  $s3, $zero             # j
jloop:  subu  $t0, $s1, $s2
        addiu $t0, $t0, -1           # n-1-i
        slt   $t1, $s3, $t0
        beq   $t1, $zero, inext
        sll   $t2, $s3, 2
        addu  $t2, $s0, $t2          # &arr[j]
        lw    $t3, 0($t2)
        lw    $t4, 4($t2)
        slt   $t5, $t4, $t3          # arr[j+1] < arr[j]?
        beq   $t5, $zero, jnext
        sw    $t4, 0($t2)
        sw    $t3, 4($t2)
jnext:  addiu $s3, $s3, 1
        b     jloop
inext:  addiu $s2, $s2, 1
        b     iloop
print:  move  $s2, $zero
ploop:  slt   $t0, $s2, $s1
        beq   $t0, $zero, done
        sll   $t1, $s2, 2
        addu  $t1, $s0, $t1
        lw    $a0, 0($t1)
        ori   $v0, $zero, 1
        syscall
        addiu $t0, $s1, -1
        beq   $s2, $t0, skipsp
        ori   $a0, $zero, ' '
        ori   $v0, $zero, 11
        syscall
skipsp: addiu $s2, $s2, 1
        b     ploop
done:   move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
