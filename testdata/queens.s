# N-queens by recursive backtracking (N=6): count solutions.
# expect: 6-queens: 4
        .data
cols:   .space 32                    # column occupancy per row (6 words)
msg:    .asciiz "6-queens: "
        .text
        .proc main
main:   move  $s0, $zero             # solution count -> kept by solve in s0
        move  $a0, $zero             # row 0
        jal   solve
        la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        move  $a0, $s0
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp

# solve(row in a0); increments $s0 per solution; uses cols[] for state
        .proc solve
solve:  slti  $t0, $a0, 6
        bne   $t0, $zero, try
        addiu $s0, $s0, 1            # row == 6: a full placement
        jr    $ra
try:    addiu $sp, $sp, -16
        sw    $ra, 12($sp)
        sw    $a0, 8($sp)            # row
        sw    $zero, 4($sp)          # col
tloop:  lw    $t1, 4($sp)            # col
        slti  $t0, $t1, 6
        beq   $t0, $zero, tdone
        # check safety against rows 0..row-1
        lw    $t2, 8($sp)            # row
        move  $t3, $zero             # r
safe:   slt   $t0, $t3, $t2
        beq   $t0, $zero, place
        la    $t4, cols
        sll   $t5, $t3, 2
        addu  $t4, $t4, $t5
        lw    $t4, 0($t4)            # c = cols[r]
        beq   $t4, $t1, unsafe       # same column
        subu  $t5, $t2, $t3          # row - r
        subu  $t6, $t1, $t4          # col - c
        beq   $t5, $t6, unsafe       # same diagonal
        subu  $t7, $t4, $t1          # c - col
        beq   $t5, $t7, unsafe       # other diagonal
        addiu $t3, $t3, 1
        b     safe
place:  la    $t4, cols
        lw    $t2, 8($sp)
        sll   $t5, $t2, 2
        addu  $t4, $t4, $t5
        sw    $t1, 0($t4)            # cols[row] = col
        addiu $a0, $t2, 1
        jal   solve
unsafe: lw    $t1, 4($sp)
        addiu $t1, $t1, 1
        sw    $t1, 4($sp)
        b     tloop
tdone:  lw    $ra, 12($sp)
        addiu $sp, $sp, 16
        jr    $ra
        .endp
