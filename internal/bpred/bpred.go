// Package bpred implements the bimodal branch predictor of the paper's
// baseline machine (Table 1: "bimode 2048 entries").
package bpred

// Predictor is a table of 2-bit saturating counters indexed by PC.
type Predictor struct {
	table []uint8
	mask  uint32

	Lookups     uint64
	Mispredicts uint64

	// OnResolve, when set, observes every resolved branch: its address,
	// the actual direction and whether the prediction was correct. Nil
	// costs nothing; internal/telemetry counts mispredict events with it.
	OnResolve func(pc uint32, taken, correct bool)
}

// New builds a predictor with the given number of entries (a power of
// two; the paper uses 2048). Counters start weakly not-taken.
func New(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	p := &Predictor{table: make([]uint8, entries), mask: uint32(entries - 1)}
	for i := range p.table {
		p.table[i] = 1 // weakly not-taken
	}
	return p
}

func (p *Predictor) idx(pc uint32) uint32 { return pc >> 2 & p.mask }

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint32) bool {
	return p.table[p.idx(pc)] >= 2
}

// Update trains the predictor with the resolved direction and reports
// whether the prediction was correct.
func (p *Predictor) Update(pc uint32, taken bool) bool {
	i := p.idx(pc)
	pred := p.table[i] >= 2
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.Lookups++
	if pred != taken {
		p.Mispredicts++
	}
	if p.OnResolve != nil {
		p.OnResolve(pc, taken, pred == taken)
	}
	return pred == taken
}

// MispredictRatio returns Mispredicts/Lookups (0 when idle).
func (p *Predictor) MispredictRatio() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
