package bpred

import "testing"

func TestAlwaysTakenLoopConverges(t *testing.T) {
	p := New(2048)
	pc := uint32(0x400100)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !p.Update(pc, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("bimodal should learn an always-taken branch, %d wrong", wrong)
	}
	if !p.Predict(pc) {
		t.Fatal("should predict taken after training")
	}
}

func TestAlternatingBranchIsHard(t *testing.T) {
	p := New(2048)
	pc := uint32(0x400200)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !p.Update(pc, i%2 == 0) {
			wrong++
		}
	}
	if wrong < 40 {
		t.Fatalf("alternating branch should mispredict heavily, got %d", wrong)
	}
}

func TestSaturation(t *testing.T) {
	p := New(16)
	pc := uint32(0x0)
	for i := 0; i < 10; i++ {
		p.Update(pc, true)
	}
	// One not-taken must not flip the prediction (counter saturated at 3).
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Fatal("saturating counter flipped after one opposite outcome")
	}
}

func TestIndexingSeparatesBranches(t *testing.T) {
	p := New(2048)
	a, b := uint32(0x400000), uint32(0x400004)
	for i := 0; i < 10; i++ {
		p.Update(a, true)
		p.Update(b, false)
	}
	if !p.Predict(a) || p.Predict(b) {
		t.Fatal("adjacent branches alias in a 2048-entry table")
	}
}

func TestMispredictRatio(t *testing.T) {
	p := New(2048)
	if p.MispredictRatio() != 0 {
		t.Fatal("idle ratio must be 0")
	}
	p.Update(0, true) // initial weakly-not-taken: mispredict
	if p.MispredictRatio() != 1 {
		t.Fatalf("ratio = %f", p.MispredictRatio())
	}
}

func TestBadEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1000)
}
