package bpred

import "fmt"

// State is a serialisable snapshot of a Predictor: the 2-bit counter
// table and the lookup/mispredict totals.
type State struct {
	Table       []uint8 `json:"table"`
	Lookups     uint64  `json:"lookups"`
	Mispredicts uint64  `json:"mispredicts"`
}

// Snapshot captures a deep copy of the predictor state.
func (p *Predictor) Snapshot() State {
	st := State{Lookups: p.Lookups, Mispredicts: p.Mispredicts}
	st.Table = make([]uint8, len(p.table))
	copy(st.Table, p.table)
	return st
}

// Restore replaces the predictor state with the snapshot. The table
// length must match this predictor's entry count.
func (p *Predictor) Restore(st State) error {
	if len(st.Table) != len(p.table) {
		return fmt.Errorf("bpred: snapshot has %d entries, predictor %d", len(st.Table), len(p.table))
	}
	copy(p.table, st.Table)
	p.Lookups = st.Lookups
	p.Mispredicts = st.Mispredicts
	return nil
}
