package bpred

// Table-driven walk of the 2-bit saturating counter: every state is
// pinned — strongly/weakly not-taken (0,1), weakly/strongly taken (2,3),
// increments on taken, decrements on not-taken, saturating at both ends.
// Counters start at 1 (weakly not-taken).

import "testing"

func TestTwoBitCounterTransitions(t *testing.T) {
	// Each case drives one fresh counter (state 1) through a history and
	// checks the per-step prediction correctness Update reports plus the
	// final prediction.
	cases := []struct {
		name    string
		history []bool // resolved directions, in order
		correct []bool // Update's return per step
		finally bool   // Predict after the history
	}{
		{
			name:    "saturate_taken_and_stay",
			history: []bool{true, true, true, true, true},
			// 1->2 (predicted NT, wrong), 2->3 (T, right), then pegged at 3.
			correct: []bool{false, true, true, true, true},
			finally: true,
		},
		{
			name:    "saturate_not_taken_and_stay",
			history: []bool{false, false, false, false},
			// 1->0 (predicted NT, right), then pegged at 0.
			correct: []bool{true, true, true, true},
			finally: false,
		},
		{
			name: "hysteresis_survives_one_not_taken",
			// Train to 3, one NT drops to 2: still predicts taken.
			history: []bool{true, true, false},
			correct: []bool{false, true, false},
			finally: true,
		},
		{
			name: "weak_state_flips_on_one_more",
			// Train to 3, two NT in a row lands at 1: both NT steps
			// mispredict (hysteresis), but the prediction has flipped.
			history: []bool{true, true, false, false},
			correct: []bool{false, true, false, false},
			finally: false,
		},
		{
			name: "alternating_from_weak_nt_never_strongly_wrong",
			// 1 -> T(wrong)->2 -> NT(wrong)->1 -> T(wrong)->2 -> ...
			history: []bool{true, false, true, false},
			correct: []bool{false, false, false, false},
			finally: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(16)
			const pc = 0x400100
			for i, taken := range tc.history {
				got := p.Update(pc, taken)
				if got != tc.correct[i] {
					t.Fatalf("step %d (taken=%v): Update = %v, want %v",
						i, taken, got, tc.correct[i])
				}
			}
			if got := p.Predict(pc); got != tc.finally {
				t.Fatalf("final Predict = %v, want %v", got, tc.finally)
			}
			if want := uint64(len(tc.history)); p.Lookups != want {
				t.Fatalf("Lookups = %d, want %d", p.Lookups, want)
			}
			wrong := uint64(0)
			for _, c := range tc.correct {
				if !c {
					wrong++
				}
			}
			if p.Mispredicts != wrong {
				t.Fatalf("Mispredicts = %d, want %d", p.Mispredicts, wrong)
			}
		})
	}
}

// TestSaturationBounds hammers both directions and verifies the counter
// never leaves [0,3]: after any amount of training, two opposite
// resolutions always suffice to flip the prediction.
func TestSaturationBounds(t *testing.T) {
	p := New(16)
	const pc = 0x40
	for i := 0; i < 1000; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("not predicting taken after heavy training")
	}
	p.Update(pc, false)
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Fatal("counter exceeded 3: two not-taken updates did not flip it")
	}
	for i := 0; i < 1000; i++ {
		p.Update(pc, false)
	}
	p.Update(pc, true)
	p.Update(pc, true)
	if !p.Predict(pc) {
		t.Fatal("counter went below 0: two taken updates did not flip it")
	}
}

// TestAliasedPCsShareACounter pins the indexing function: PCs that are
// entries*4 apart alias to the same counter (the handler/user aliasing
// the diffsim cycle oracle has to tolerate), while PCs 4 apart do not.
func TestAliasedPCsShareACounter(t *testing.T) {
	p := New(16)
	const pcA = 0x1000
	const pcB = pcA + 16*4 // same index
	for i := 0; i < 3; i++ {
		p.Update(pcA, true)
	}
	if !p.Predict(pcB) {
		t.Fatal("aliased PC did not share the trained counter")
	}
	if p.Predict(pcA + 4) {
		t.Fatal("neighbouring PC wrongly shares the counter")
	}
}
