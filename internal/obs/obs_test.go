package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	_ "repro/internal/codec/all"
)

func TestManifestRoundTrip(t *testing.T) {
	m := New("obstest")
	m.SetConfig("scheme", "dict")
	path := filepath.Join(t.TempDir(), "input.bin")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.AddInputFile("input.bin", path); err != nil {
		t.Fatal(err)
	}
	m.Finish(time.Now().Add(-time.Second))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Timings == nil || m.Timings.WallMs < 1000 {
		t.Fatalf("Finish recorded %+v; want >= 1s of wall time", m.Timings)
	}

	out := PathFor(filepath.Join(t.TempDir(), "artifact.json"))
	if !strings.HasSuffix(out, "artifact.json.manifest.json") {
		t.Fatalf("PathFor = %q", out)
	}
	if err := m.Write(out); err != nil {
		t.Fatal(err)
	}
	got, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "obstest" || got.Config["scheme"] != "dict" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Inputs) != 1 || got.Inputs[0].Bytes != int64(len("payload")) {
		t.Fatalf("round trip lost inputs: %+v", got.Inputs)
	}
}

// TestManifestProvenance: the embedded form is a deep copy with timings
// stripped — mutating it must not leak back, and marshalling it twice
// must be byte-identical (the report emitters rely on this).
func TestManifestProvenance(t *testing.T) {
	m := New("obstest")
	m.SetConfig("k", "v")
	m.addInput("blob", []byte("data"))
	m.Finish(time.Now())

	p := m.Provenance()
	if p.Timings != nil {
		t.Fatal("provenance copy kept timings")
	}
	if m.Timings == nil {
		t.Fatal("Provenance stripped timings from the original")
	}
	p.Config["k"] = "mutated"
	p.Inputs[0].Name = "mutated"
	if m.Config["k"] != "v" || m.Inputs[0].Name != "blob" {
		t.Fatal("mutating the provenance copy leaked into the original")
	}
	a, err := json.Marshal(m.Provenance())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(m.Provenance())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("provenance marshalling is not byte-deterministic")
	}
}

func TestManifestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(m *Manifest)
	}{
		{"schema", func(m *Manifest) { m.SchemaVersion = 99 }},
		{"tool", func(m *Manifest) { m.Tool = "" }},
		{"toolchain", func(m *Manifest) { m.GoVersion = "" }},
		{"no-codecs", func(m *Manifest) { m.Codecs = nil }},
		{"unsorted-codecs", func(m *Manifest) { m.Codecs[0], m.Codecs[1] = m.Codecs[1], m.Codecs[0] }},
		{"bad-hash", func(m *Manifest) { m.Inputs[0].SHA256 = "deadbeef" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := New("obstest")
			m.addInput("blob", []byte("data"))
			if len(m.Codecs) < 2 {
				t.Fatalf("registry too small to test: %v", m.Codecs)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("clean manifest rejected: %v", err)
			}
			tc.corrupt(m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted a corrupted manifest")
			}
		})
	}
}

// TestReporterHeartbeat: on a non-TTY writer the reporter emits
// structured progress records (rate-limited) and a final done summary.
func TestReporterHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter("test-campaign", &buf, NewLogger("obstest", &buf))
	for i := 1; i <= 3; i++ {
		r.Step(i, 3, "shard")
	}
	r.Done()
	out := buf.String()
	if !strings.Contains(out, "msg=progress") {
		t.Errorf("no progress record in output:\n%s", out)
	}
	if !strings.Contains(out, "msg=done") || !strings.Contains(out, "done=3 total=3") {
		t.Errorf("no final summary in output:\n%s", out)
	}
	// The 5s non-TTY rate limit must have coalesced the middle steps:
	// one initial render plus the final, nothing per-step.
	if n := strings.Count(out, "msg=progress"); n > 1 {
		t.Errorf("%d progress renders for 3 rapid steps; rate limit not applied", n)
	}
}

// TestReporterSilentWithoutStep: a reporter that never saw work emits
// nothing, so short runs add no log noise.
func TestReporterSilentWithoutStep(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter("idle", &buf, NewLogger("obstest", &buf))
	r.Done()
	r.Done() // idempotent
	if buf.Len() != 0 {
		t.Errorf("idle reporter wrote output:\n%s", buf.String())
	}
}

func TestLoggerSchema(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger("mytool", &buf)
	log.Info("hello", "k", 1)
	if out := buf.String(); !strings.Contains(out, "tool=mytool") {
		t.Errorf("log record missing the shared tool attribute:\n%s", out)
	}

	t.Setenv("RTD_LOG", "json")
	buf.Reset()
	NewLogger("mytool", &buf).Info("hello")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("RTD_LOG=json did not produce JSON: %v\n%s", err, buf.String())
	}
	if rec["tool"] != "mytool" || rec["msg"] != "hello" {
		t.Errorf("JSON record missing fields: %v", rec)
	}
}
