// Package obs is the host-side observability substrate shared by every
// CLI: structured slog logging with a common schema, run manifests
// (provenance: input hashes, registered codecs, config, git SHA,
// timings) written next to artifacts and embedded in telemetry reports,
// and a rate-limited progress reporter (TTY status line or non-TTY
// heartbeat log) for long campaigns.
//
// obs is deliberately outside the deterministic package set checked by
// cccheck detsafe: it reads wall clocks, the environment and the tty —
// none of which may influence simulated results. Everything obs writes
// into deterministic artifacts (the manifest's Provenance form) is
// timing-free; wall-clock timings only appear in sidecar files.
package obs

import (
	"io"
	"log/slog"
	"os"
	"os/exec"
	"strings"
)

// NewLogger returns the shared structured logger: text (or JSON when
// RTD_LOG=json) to w with a `tool` attribute on every record, so multi-
// tool pipelines produce greppable, schema-consistent logs. nil w means
// stderr.
func NewLogger(tool string, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	if os.Getenv("RTD_LOG") == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h).With("tool", tool)
}

// GitSHA is a best-effort commit id for manifests and fingerprints:
// GITHUB_SHA in CI, otherwise git on the working tree, otherwise empty.
func GitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
