package obs

import (
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"
)

// Reporter is a rate-limited progress reporter for long campaigns
// (experiments, ccbench, ccfuzz): on a TTY it redraws a single status
// line; on a pipe/CI it emits a structured heartbeat log line every few
// seconds. Step is cheap enough to call per shard — renders are rate
// limited, not the calls. Reporters only touch stderr/logs, never a
// deterministic output stream.
type Reporter struct {
	mu       sync.Mutex
	label    string
	w        io.Writer
	log      *slog.Logger
	tty      bool
	interval time.Duration
	started  time.Time
	last     time.Time
	done     int
	total    int
	detail   string
	stepped  bool
	finished bool
}

// NewReporter returns a reporter labelled label, writing TTY status
// lines to w (nil = stderr) and heartbeats to log (nil = a NewLogger on
// w). TTY detection is on w.
func NewReporter(label string, w io.Writer, log *slog.Logger) *Reporter {
	if w == nil {
		w = os.Stderr
	}
	tty := false
	if f, ok := w.(*os.File); ok {
		if fi, err := f.Stat(); err == nil {
			tty = fi.Mode()&os.ModeCharDevice != 0
		}
	}
	if log == nil {
		log = NewLogger(label, w)
	}
	interval := 5 * time.Second
	if tty {
		interval = 100 * time.Millisecond
	}
	return &Reporter{label: label, w: w, log: log, tty: tty,
		interval: interval, started: time.Now()}
}

// Step records progress (done of total, with an optional detail such as
// the current shard name) and renders if the rate limit allows.
func (r *Reporter) Step(done, total int, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done, r.total, r.detail = done, total, detail
	r.stepped = true
	now := time.Now()
	if now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	r.render(false)
}

// Done renders the final state: a newline-terminated TTY line or a
// summary log record with the elapsed wall time. A reporter that never
// saw a Step stays silent — there was no campaign to summarise.
func (r *Reporter) Done() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished || !r.stepped {
		return
	}
	r.finished = true
	r.render(true)
}

func (r *Reporter) render(final bool) {
	if r.tty {
		pct := 0.0
		if r.total > 0 {
			pct = 100 * float64(r.done) / float64(r.total)
		}
		line := fmt.Sprintf("\r%s %d/%d (%.0f%%) %s", r.label, r.done, r.total, pct, r.detail)
		// Pad to clear the previous, possibly longer, line.
		fmt.Fprintf(r.w, "%-79s", line)
		if final {
			fmt.Fprintln(r.w)
		}
		return
	}
	msg := "progress"
	if final {
		msg = "done"
	}
	r.log.Info(msg, "label", r.label, "done", r.done, "total", r.total,
		"detail", r.detail, "elapsed_ms", time.Since(r.started).Milliseconds())
}

// Publish exposes the reporter's live state as an expvar variable under
// name, for -expvar endpoints. Publish panics on duplicate names
// (expvar semantics), so call at most once per name per process.
func (r *Reporter) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		return map[string]any{
			"label":      r.label,
			"done":       r.done,
			"total":      r.total,
			"detail":     r.detail,
			"elapsed_ms": time.Since(r.started).Milliseconds(),
		}
	}))
}
