package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/program"
)

// ManifestSchema versions the manifest shape. History:
//
//	1 — initial shape (PR 8): tool/args/runtime identity, registered
//	    codecs, input digests, config map, optional timings.
const ManifestSchema = 1

// CodecInfo records one registered codec at run time. The registry has
// no version field, so the Describe line doubles as the behavioural
// fingerprint — it names the algorithm and its parameters.
type CodecInfo struct {
	Name     string `json:"name"`
	Describe string `json:"describe"`
}

// Input is one content-hashed run input (a source/image file or an
// in-memory built image).
type Input struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Timings is the wall-clock stanza — sidecar manifests only, never the
// provenance copy embedded in deterministic reports.
type Timings struct {
	Start  string `json:"start"` // RFC3339, UTC
	WallMs int64  `json:"wall_ms"`
}

// Manifest is the run manifest: enough provenance to tell exactly what
// produced an artifact — tool and arguments, toolchain identity, every
// registered codec, content hashes of the inputs, the effective config,
// the git SHA — plus (in sidecar form) when and how long it ran.
type Manifest struct {
	SchemaVersion int      `json:"schema_version"`
	Tool          string   `json:"tool"`
	Args          []string `json:"args,omitempty"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GitSHA    string `json:"git_sha,omitempty"`

	Codecs []CodecInfo       `json:"codecs"`
	Inputs []Input           `json:"inputs,omitempty"`
	Config map[string]string `json:"config,omitempty"`

	Timings *Timings `json:"timings,omitempty"`
}

// New captures the current process: tool name, command-line arguments,
// toolchain identity, git SHA and the codec registry (sorted by name,
// as codec.All guarantees).
func New(tool string) *Manifest {
	m := &Manifest{
		SchemaVersion: ManifestSchema,
		Tool:          tool,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GitSHA:        GitSHA(),
	}
	if len(os.Args) > 1 {
		m.Args = append(m.Args, os.Args[1:]...)
	}
	for _, c := range codec.All() {
		m.Codecs = append(m.Codecs, CodecInfo{Name: c.Name(), Describe: c.Describe()})
	}
	return m
}

// SetConfig records one effective-config key (flag values, scheme,
// window size, ...). Emission is sorted by key, so the map is safe.
func (m *Manifest) SetConfig(key, value string) {
	if m.Config == nil {
		m.Config = map[string]string{}
	}
	m.Config[key] = value
}

// AddInputFile content-hashes a file and records it under name.
func (m *Manifest) AddInputFile(name, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m.addInput(name, data)
	return nil
}

// AddImage content-hashes an in-memory program image via its canonical
// JSON serialization (the same deterministic form program.SaveFile
// writes, minus compression), so the digest is stable across processes.
func (m *Manifest) AddImage(name string, im *program.Image) error {
	data, err := json.Marshal(im)
	if err != nil {
		return fmt.Errorf("obs: hashing image %s: %v", name, err)
	}
	m.addInput(name, data)
	return nil
}

func (m *Manifest) addInput(name string, data []byte) {
	h := sha256.Sum256(data)
	m.Inputs = append(m.Inputs, Input{Name: name, SHA256: hex.EncodeToString(h[:]), Bytes: int64(len(data))})
}

// Finish stamps the sidecar timing stanza from a start time.
func (m *Manifest) Finish(start time.Time) {
	m.Timings = &Timings{
		Start:  start.UTC().Format(time.RFC3339),
		WallMs: time.Since(start).Milliseconds(),
	}
}

// Provenance returns a timing-free copy for embedding in deterministic
// artifacts (telemetry reports, trajectory fingerprints): two identical
// runs embed bit-identical provenance, which the emitter byte-identity
// battery relies on.
func (m *Manifest) Provenance() *Manifest {
	cp := *m
	cp.Timings = nil
	cp.Args = append([]string(nil), m.Args...)
	cp.Codecs = append([]CodecInfo(nil), m.Codecs...)
	cp.Inputs = append([]Input(nil), m.Inputs...)
	if m.Config != nil {
		cp.Config = make(map[string]string, len(m.Config))
		for k, v := range m.Config {
			cp.Config[k] = v
		}
	}
	return &cp
}

// Validate checks the schema-bearing fields a consumer relies on.
func (m *Manifest) Validate() error {
	switch {
	case m.SchemaVersion != ManifestSchema:
		return fmt.Errorf("obs: manifest schema %d, want %d", m.SchemaVersion, ManifestSchema)
	case m.Tool == "":
		return fmt.Errorf("obs: manifest has no tool")
	case m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "":
		return fmt.Errorf("obs: manifest missing toolchain identity")
	case len(m.Codecs) == 0:
		return fmt.Errorf("obs: manifest lists no codecs")
	}
	if !sort.SliceIsSorted(m.Codecs, func(a, b int) bool { return m.Codecs[a].Name < m.Codecs[b].Name }) {
		return fmt.Errorf("obs: manifest codecs not sorted by name")
	}
	for _, in := range m.Inputs {
		if len(in.SHA256) != 64 {
			return fmt.Errorf("obs: input %s: malformed sha256 %q", in.Name, in.SHA256)
		}
	}
	return nil
}

// PathFor returns the sidecar manifest path for an artifact: the
// artifact path with .manifest.json appended.
func PathFor(artifact string) string { return artifact + ".manifest.json" }

// Write writes the manifest as indented JSON to path.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
