package verify

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/synth"
)

func buildPair(t *testing.T, opts core.Options) (*program.Image, *program.Image) {
	t.Helper()
	p, _ := synth.ByName("pegwit")
	im, err := synth.Build(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	return im, res.Image
}

func cfg() cpu.Config {
	c := cpu.DefaultConfig()
	c.MaxInstr = 100_000_000
	return c
}

func TestLockstepEquivalentSchemes(t *testing.T) {
	for _, opts := range []core.Options{
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
		{Scheme: program.SchemeProcDict, ShadowRF: true},
	} {
		nat, comp := buildPair(t, opts)
		if err := Lockstep(nat, comp, cfg(), 0); err != nil {
			t.Fatalf("%s: %v", opts.Scheme, err)
		}
	}
}

func TestLockstepWithBoundedSteps(t *testing.T) {
	nat, comp := buildPair(t, core.Options{Scheme: program.SchemeDict, ShadowRF: true})
	if err := Lockstep(nat, comp, cfg(), 5000); err != nil {
		t.Fatal(err)
	}
}

func TestLockstepDetectsCorruptedDictionary(t *testing.T) {
	nat, comp := buildPair(t, core.Options{Scheme: program.SchemeDict, ShadowRF: true})
	// Corrupt one dictionary entry: the decompressor will materialise a
	// wrong instruction and the lockstep must catch it.
	dict := comp.Segment(program.SegDict)
	dict.SetWord(dict.Base+40, dict.Word(dict.Base+40)^0x00210000)
	err := Lockstep(nat, comp, cfg(), 0)
	if err == nil {
		t.Fatal("corruption not detected")
	}
	var d *Divergence
	if de, ok := err.(*Divergence); ok {
		d = de
	}
	if d == nil {
		// A corrupted instruction may also make the simulator fault —
		// that is an acceptable detection too, but it must not be nil.
		if !strings.Contains(err.Error(), "verify:") {
			t.Fatalf("unexpected error shape: %v", err)
		}
		return
	}
	if d.What == "" {
		t.Fatal("empty divergence description")
	}
}

func TestLockstepDetectsClobberingHandler(t *testing.T) {
	// Break a handler's register restore: nop out the `lw $t1, -4($sp)`
	// epilogue load of the single-RF dictionary handler, so every
	// invocation leaves $t1 corrupted. Lockstep must pinpoint it.
	nat, comp := buildPair(t, core.Options{Scheme: program.SchemeDict})
	h := comp.Segment(program.SegDecompressor)
	const lwT1 = 0x8FA9FFFC // lw $t1, -4($sp)
	patched := false
	for a := h.Base; a+4 <= h.Base+uint32(len(h.Data)); a += 4 {
		if h.Word(a) == lwT1 {
			h.SetWord(a, 0) // nop
			patched = true
		}
	}
	if !patched {
		t.Fatal("restore instruction not found in handler")
	}
	err := Lockstep(nat, comp, cfg(), 0)
	if err == nil {
		t.Fatal("register clobbering not detected")
	}
	if !strings.Contains(err.Error(), "register") && !strings.Contains(err.Error(), "verify") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEquivalentWrapper(t *testing.T) {
	nat, comp := buildPair(t, core.Options{Scheme: program.SchemeDict, ShadowRF: true})
	ok, msg := Equivalent(nat, comp, cfg(), 0)
	if !ok || msg != "equivalent" {
		t.Fatalf("ok=%v msg=%q", ok, msg)
	}
	dict := comp.Segment(program.SegDict)
	dict.SetWord(dict.Base+16, 0)
	ok, msg = Equivalent(nat, comp, cfg(), 0)
	if ok || !strings.Contains(msg, "NOT equivalent") {
		t.Fatalf("ok=%v msg=%q", ok, msg)
	}
}

func TestSelfLockstep(t *testing.T) {
	p, _ := synth.ByName("mpeg2enc")
	im, err := synth.Build(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := Lockstep(im, im, cfg(), 0); err != nil {
		t.Fatalf("image must be equivalent to itself: %v", err)
	}
}
