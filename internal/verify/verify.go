// Package verify provides differential verification of program images:
// two images (typically a native program and its compressed rewrite) run
// in lockstep, and the first architectural divergence — a differing
// committed instruction or register state — is reported with full
// context. Decompression is meant to be invisible to the program, so any
// divergence is a bug in a compressor, a handler or the re-layout.
package verify

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Divergence describes the first difference between two runs.
type Divergence struct {
	Step   uint64 // committed user-instruction index
	What   string // human-readable description
	PCA    uint32
	PCB    uint32
	InstrA uint32
	InstrB uint32
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("verify: step %d: %s (A: %08x %s | B: %08x %s)",
		d.Step, d.What,
		d.PCA, isa.Disassemble(d.PCA, d.InstrA),
		d.PCB, isa.Disassemble(d.PCB, d.InstrB))
}

// machine wraps a CPU stepping only committed user instructions.
type machine struct {
	c    *cpu.CPU
	im   *program.Image
	last struct {
		pc, instr uint32
	}
	pending bool
}

func newMachine(im *program.Image, cfg cpu.Config) (*machine, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Out = io.Discard
	m := &machine{c: c, im: im}
	c.Trace = func(pc, instr uint32, handler bool) {
		if !handler {
			m.last.pc, m.last.instr = pc, instr
			m.pending = true
		}
	}
	if err := c.Load(im); err != nil {
		return nil, err
	}
	return m, nil
}

// stepUser advances until one user instruction commits (running any
// handler activity silently) and reports whether the machine halted.
func (m *machine) stepUser() (bool, error) {
	m.pending = false
	for !m.pending {
		if halted, _ := m.c.Halted(); halted {
			return true, nil
		}
		if err := m.c.Step(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// procRelative maps a PC to (procedure name, offset) so that images with
// different layouts can be compared position-independently.
func procRelative(im *program.Image, pc uint32) (string, uint32) {
	if p := im.ProcAt(pc); p != nil {
		return p.Name, pc - p.Addr
	}
	return "", pc
}

// Lockstep runs both images until completion or maxSteps committed user
// instructions, comparing at every step:
//
//   - the executed instruction encoding (relocation-bearing instructions
//     are compared by procedure-relative position instead), and
//   - the full general-purpose register state, masking registers that
//     legitimately hold code addresses ($ra, and the operands of jr/jalr)
//     and the OS-reserved $k0/$k1 the handlers use as scratch.
//
// It returns nil when the runs are equivalent, or the first Divergence.
func Lockstep(a, b *program.Image, cfg cpu.Config, maxSteps uint64) error {
	ma, err := newMachine(a, cfg)
	if err != nil {
		return err
	}
	mb, err := newMachine(b, cfg)
	if err != nil {
		return err
	}
	for step := uint64(0); maxSteps == 0 || step < maxSteps; step++ {
		haltedA, errA := ma.stepUser()
		haltedB, errB := mb.stepUser()
		if errA != nil || errB != nil {
			return fmt.Errorf("verify: step %d: A err=%v, B err=%v", step, errA, errB)
		}
		if haltedA || haltedB {
			if haltedA != haltedB {
				return &Divergence{Step: step, What: "one machine halted before the other",
					PCA: ma.last.pc, PCB: mb.last.pc, InstrA: ma.last.instr, InstrB: mb.last.instr}
			}
			codeA, _ := ma.c.Halted()
			codeB, _ := mb.c.Halted()
			_ = codeA
			_ = codeB
			return nil
		}
		d := compare(step, ma, mb)
		if d != nil {
			return d
		}
	}
	return nil
}

func compare(step uint64, ma, mb *machine) *Divergence {
	div := func(what string) *Divergence {
		return &Divergence{Step: step, What: what,
			PCA: ma.last.pc, PCB: mb.last.pc, InstrA: ma.last.instr, InstrB: mb.last.instr}
	}
	// Compare instruction identity: same encoding, or (for instructions
	// that embed code addresses) the same procedure-relative position.
	if ma.last.instr != mb.last.instr {
		pa, oa := procRelative(ma.im, ma.last.pc)
		pb, ob := procRelative(mb.im, mb.last.pc)
		if pa != pb || oa != ob {
			return div("different instruction position")
		}
		// Same position: the encodings may differ only via relocation
		// fields (j/jal target, lui/ori address halves).
		if isa.Op(ma.last.instr) != isa.Op(mb.last.instr) {
			return div("different opcode at same position")
		}
	} else {
		pa, oa := procRelative(ma.im, ma.last.pc)
		pb, ob := procRelative(mb.im, mb.last.pc)
		if pa != pb || oa != ob {
			return div("same instruction at different position")
		}
	}
	// Compare register state, masking code-address-bearing registers.
	for r := 0; r < isa.NumRegs; r++ {
		if r == isa.RegRA || r == isa.RegT9 {
			continue // hold code addresses: layout-dependent by design
		}
		if r == isa.RegK0 || r == isa.RegK1 {
			// OS-reserved: the single-register-file handlers use them as
			// exception-level scratch, which user code may never observe.
			// The static analyzer (internal/analysis) exempts them for
			// the same reason.
			continue
		}
		va, vb := ma.c.Reg(r), mb.c.Reg(r)
		if va == vb {
			continue
		}
		// Values that are code addresses in their own images are
		// compared procedure-relatively.
		na, oa := procRelative(ma.im, va)
		nb, ob := procRelative(mb.im, vb)
		if na != "" && na == nb && oa == ob {
			continue
		}
		return div(fmt.Sprintf("register %s differs: %#x vs %#x", isa.RegName(r), va, vb))
	}
	return nil
}

// Equivalent is a convenience wrapper: it reports a readable multi-line
// verdict instead of an error.
func Equivalent(a, b *program.Image, cfg cpu.Config, maxSteps uint64) (bool, string) {
	if err := Lockstep(a, b, cfg, maxSteps); err != nil {
		var sb strings.Builder
		sb.WriteString("NOT equivalent:\n  ")
		sb.WriteString(err.Error())
		return false, sb.String()
	}
	return true, "equivalent"
}
