package verify

// Multi-way lockstep: run N images of the same program (native plus any
// number of compressed variants) simultaneously, comparing every
// committed user instruction of each variant against the reference
// (index 0). This generalises Lockstep for the differential
// co-simulation harness (internal/diffsim), and additionally:
//
//   - captures each machine's syscall output instead of discarding it,
//     so output traces can be compared;
//   - compares the HI/LO registers (handlers never touch them);
//   - exposes an OnCommit hook observing *every* commit, including
//     handler instructions, for external oracles (swic content checks,
//     cycle accounting);
//   - guards against runaway handlers with a per-user-step handler
//     instruction budget.

import (
	"bytes"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// MultiConfig configures LockstepMulti.
type MultiConfig struct {
	CPU      cpu.Config
	MaxSteps uint64 // committed user instructions; 0 = unlimited
	// MaxHandlerBurst caps handler instructions run for a single user
	// step (0 = 1<<20). A handler exceeding it is a failure, not a hang.
	MaxHandlerBurst uint64
	// OnCommit, when set, observes every committed instruction of every
	// machine (img is the image index, handler marks handler commits).
	// It runs after the instruction's architectural effects.
	OnCommit func(img int, c *cpu.CPU, pc, instr uint32, handler bool)
	// Attach, when set, runs once per machine after the lockstep trace
	// hook is installed and before the image loads — the point where
	// observers (telemetry window samplers) can compose onto c via
	// cpu.AttachTrace without being clobbered.
	Attach func(img int, c *cpu.CPU)
}

// MultiResult is the final state of one machine after LockstepMulti.
type MultiResult struct {
	Image    *program.Image
	Output   []byte // everything the program wrote via syscalls
	ExitCode int32
	Halted   bool
	Steps    uint64 // committed user instructions
	CPU      *cpu.CPU
}

// MultiDivergence reports the first difference between the reference
// machine (image 0) and machine Img.
type MultiDivergence struct {
	Img            int
	Step           uint64
	What           string
	PCA            uint32 // reference
	PCB            uint32 // diverging image
	InstrA, InstrB uint32
}

func (d *MultiDivergence) Error() string {
	return fmt.Sprintf("verify: image %d diverges at step %d: %s (ref: %08x %s | img%d: %08x %s)",
		d.Img, d.Step, d.What,
		d.PCA, isa.Disassemble(d.PCA, d.InstrA),
		d.Img, d.PCB, isa.Disassemble(d.PCB, d.InstrB))
}

// MachineError reports that one machine faulted (illegal instruction,
// handler runaway, simulator error) rather than diverging architecturally.
// Img 0 is the reference: a reference fault is an infrastructure problem,
// while a fault in a compressed image is itself a correctness finding (a
// broken handler typically faults before it diverges).
type MachineError struct {
	Img  int
	Step uint64
	Err  error
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("verify: image %d: step %d: %v", e.Img, e.Step, e.Err)
}

func (e *MachineError) Unwrap() error { return e.Err }

// mmachine is a machine with output capture and full-commit tracing.
type mmachine struct {
	c    *cpu.CPU
	im   *program.Image
	out  bytes.Buffer
	last struct {
		pc, instr uint32
	}
	pending      bool
	steps        uint64
	handlerBurst uint64
}

func newMMachine(idx int, im *program.Image, cfg *MultiConfig) (*mmachine, error) {
	c, err := cpu.New(cfg.CPU)
	if err != nil {
		return nil, err
	}
	m := &mmachine{c: c, im: im}
	c.Out = &m.out
	c.Trace = func(pc, instr uint32, handler bool) {
		if handler {
			m.handlerBurst++
		} else {
			m.last.pc, m.last.instr = pc, instr
			m.pending = true
		}
		if cfg.OnCommit != nil {
			cfg.OnCommit(idx, c, pc, instr, handler)
		}
	}
	if cfg.Attach != nil {
		cfg.Attach(idx, c)
	}
	if err := c.Load(im); err != nil {
		return nil, err
	}
	return m, nil
}

// stepUser advances until one user instruction commits, running handler
// activity silently but bounded.
func (m *mmachine) stepUser(maxBurst uint64) (halted bool, err error) {
	m.pending = false
	m.handlerBurst = 0
	for !m.pending {
		if h, _ := m.c.Halted(); h {
			return true, nil
		}
		if err := m.c.Step(); err != nil {
			return false, err
		}
		if m.handlerBurst > maxBurst {
			return false, fmt.Errorf("handler ran %d instructions without returning control (pc %#x)",
				m.handlerBurst, m.c.PC())
		}
	}
	m.steps++
	return false, nil
}

// LockstepMulti runs every image in lockstep against images[0] and
// returns the final machine states. A non-nil error is either a
// *MultiDivergence (an architectural mismatch — a finding) or an
// infrastructure error (a machine faulted or the step budget ran out
// before the reference halted).
func LockstepMulti(images []*program.Image, cfg MultiConfig) ([]*MultiResult, error) {
	if len(images) < 2 {
		return nil, fmt.Errorf("verify: LockstepMulti needs at least 2 images, got %d", len(images))
	}
	maxBurst := cfg.MaxHandlerBurst
	if maxBurst == 0 {
		maxBurst = 1 << 20
	}
	ms := make([]*mmachine, len(images))
	for i, im := range images {
		m, err := newMMachine(i, im, &cfg)
		if err != nil {
			return nil, fmt.Errorf("verify: image %d: %v", i, err)
		}
		ms[i] = m
	}
	results := func() []*MultiResult {
		out := make([]*MultiResult, len(ms))
		for i, m := range ms {
			halted, code := m.c.Halted()
			out[i] = &MultiResult{Image: m.im, Output: m.out.Bytes(),
				ExitCode: code, Halted: halted, Steps: m.steps, CPU: m.c}
		}
		return out
	}

	for step := uint64(0); cfg.MaxSteps == 0 || step < cfg.MaxSteps; step++ {
		haltedRef, err := ms[0].stepUser(maxBurst)
		if err != nil {
			return results(), &MachineError{Img: 0, Step: step, Err: err}
		}
		for i := 1; i < len(ms); i++ {
			halted, err := ms[i].stepUser(maxBurst)
			if err != nil {
				return results(), &MachineError{Img: i, Step: step, Err: err}
			}
			if halted != haltedRef {
				return results(), &MultiDivergence{Img: i, Step: step,
					What: "one machine halted before the other",
					PCA:  ms[0].last.pc, PCB: ms[i].last.pc,
					InstrA: ms[0].last.instr, InstrB: ms[i].last.instr}
			}
		}
		if haltedRef {
			// All machines halted on the same step: compare final state.
			for i := 1; i < len(ms); i++ {
				if d := compareFinal(step, ms[0], ms[i], i); d != nil {
					return results(), d
				}
			}
			return results(), nil
		}
		for i := 1; i < len(ms); i++ {
			if d := compareStep(step, ms[0], ms[i], i); d != nil {
				return results(), d
			}
		}
	}
	return results(), fmt.Errorf("verify: step budget %d exhausted before halt", cfg.MaxSteps)
}

// compareStep checks instruction identity and register state of machine
// m against the reference, mirroring Lockstep's masking rules and adding
// HI/LO.
func compareStep(step uint64, ref, m *mmachine, idx int) *MultiDivergence {
	div := func(what string) *MultiDivergence {
		return &MultiDivergence{Img: idx, Step: step, What: what,
			PCA: ref.last.pc, PCB: m.last.pc,
			InstrA: ref.last.instr, InstrB: m.last.instr}
	}
	pa, oa := procRelative(ref.im, ref.last.pc)
	pb, ob := procRelative(m.im, m.last.pc)
	if ref.last.instr != m.last.instr {
		if pa != pb || oa != ob {
			return div("different instruction position")
		}
		if isa.Op(ref.last.instr) != isa.Op(m.last.instr) {
			return div("different opcode at same position")
		}
	} else if pa != pb || oa != ob {
		return div("same instruction at different position")
	}
	for r := 0; r < isa.NumRegs; r++ {
		if r == isa.RegRA || r == isa.RegT9 || r == isa.RegK0 || r == isa.RegK1 {
			continue // same masking rationale as Lockstep
		}
		va, vb := ref.c.Reg(r), m.c.Reg(r)
		if va == vb {
			continue
		}
		na, oa := procRelative(ref.im, va)
		nb, ob := procRelative(m.im, vb)
		if na != "" && na == nb && oa == ob {
			continue
		}
		return div(fmt.Sprintf("register %s differs: %#x vs %#x", isa.RegName(r), va, vb))
	}
	hiA, loA := ref.c.HiLo()
	hiB, loB := m.c.HiLo()
	if hiA != hiB || loA != loB {
		return div(fmt.Sprintf("HI/LO differ: %#x/%#x vs %#x/%#x", hiA, loA, hiB, loB))
	}
	return nil
}

// compareFinal checks exit code and captured output once both machines
// have halted.
func compareFinal(step uint64, ref, m *mmachine, idx int) *MultiDivergence {
	div := func(what string) *MultiDivergence {
		return &MultiDivergence{Img: idx, Step: step, What: what,
			PCA: ref.last.pc, PCB: m.last.pc,
			InstrA: ref.last.instr, InstrB: m.last.instr}
	}
	_, codeA := ref.c.Halted()
	_, codeB := m.c.Halted()
	if codeA != codeB {
		return div(fmt.Sprintf("exit codes differ: %d vs %d", codeA, codeB))
	}
	if !bytes.Equal(ref.out.Bytes(), m.out.Bytes()) {
		return div(fmt.Sprintf("outputs differ: %q vs %q", ref.out.String(), m.out.String()))
	}
	return nil
}
