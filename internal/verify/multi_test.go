package verify

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/synth"
)

// buildVariants assembles one native image plus dict and codepack
// rewrites of it.
func buildVariants(t *testing.T) []*program.Image {
	t.Helper()
	p, _ := synth.ByName("pegwit")
	nat, err := synth.Build(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	images := []*program.Image{nat}
	for _, opts := range []core.Options{
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
	} {
		res, err := core.Compress(nat, opts)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, res.Image)
	}
	return images
}

func TestLockstepMultiEquivalent(t *testing.T) {
	images := buildVariants(t)
	results, err := LockstepMulti(images, MultiConfig{CPU: cfg()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(images) {
		t.Fatalf("got %d results, want %d", len(results), len(images))
	}
	ref := results[0]
	if !ref.Halted || ref.ExitCode != 0 {
		t.Fatalf("reference did not exit cleanly: halted=%v code=%d", ref.Halted, ref.ExitCode)
	}
	if len(ref.Output) == 0 {
		t.Fatal("no output captured from reference machine")
	}
	for i, r := range results[1:] {
		if string(r.Output) != string(ref.Output) {
			t.Errorf("image %d output differs", i+1)
		}
		if r.Steps != ref.Steps {
			t.Errorf("image %d committed %d user instructions, reference %d", i+1, r.Steps, ref.Steps)
		}
		if r.CPU.Stats.Exceptions == 0 {
			t.Errorf("image %d took no decompression exceptions", i+1)
		}
	}
	if ref.CPU.Stats.Exceptions != 0 {
		t.Errorf("native image took %d exceptions", ref.CPU.Stats.Exceptions)
	}
}

func TestLockstepMultiOnCommitSeesHandler(t *testing.T) {
	images := buildVariants(t)
	var userCommits, handlerCommits [3]uint64
	_, err := LockstepMulti(images, MultiConfig{
		CPU: cfg(),
		OnCommit: func(img int, c *cpu.CPU, pc, instr uint32, handler bool) {
			if handler {
				handlerCommits[img]++
			} else {
				userCommits[img]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if userCommits[0] == 0 || userCommits[0] != userCommits[1] || userCommits[0] != userCommits[2] {
		t.Fatalf("user commits diverge: %v", userCommits)
	}
	if handlerCommits[0] != 0 {
		t.Fatalf("native machine reported %d handler commits", handlerCommits[0])
	}
	if handlerCommits[1] == 0 || handlerCommits[2] == 0 {
		t.Fatalf("compressed machines reported no handler commits: %v", handlerCommits)
	}
}

func TestLockstepMultiDetectsCorruption(t *testing.T) {
	images := buildVariants(t)
	dict := images[1].Segment(program.SegDict)
	dict.SetWord(dict.Base+40, dict.Word(dict.Base+40)^0x00210000)
	_, err := LockstepMulti(images, MultiConfig{CPU: cfg()})
	if err == nil {
		t.Fatal("corruption not detected")
	}
	if d, ok := err.(*MultiDivergence); ok {
		if d.Img != 1 {
			t.Fatalf("divergence attributed to image %d, want 1", d.Img)
		}
	} else if !strings.Contains(err.Error(), "verify:") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

func TestLockstepMultiStepBudget(t *testing.T) {
	images := buildVariants(t)
	_, err := LockstepMulti(images, MultiConfig{CPU: cfg(), MaxSteps: 10})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget-exhausted error, got %v", err)
	}
}
