// Package minic implements MiniC, a small C-like language that compiles
// to CLR32. The paper's benchmarks are compiled programs; MiniC closes
// that loop for this reproduction: programs written in it compile to
// native images, which can then be compressed, run under any of the
// software decompressors, profiled and selectively compressed — the full
// workflow of the paper on human-written source code.
//
// The language: 32-bit integers only; global scalars and arrays;
// functions with up to four parameters; locals; if/else, while, break,
// continue, return; the usual C operators including short-circuit && and
// ||; and built-ins print (decimal), printc (character), prints (string
// literal) and printh (hex).
package minic

import (
	"fmt"
	"strconv"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and punctuation, identified by text
	tokKeyword
)

type token struct {
	kind tokenKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
}

// multi-character operators, longest first.
var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isLetter(c):
			l.ident()
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.char(); err != nil {
				return nil, err
			}
		default:
			if err := l.punct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isAlnum(c byte) bool {
	return isLetter(c) || c >= '0' && c <= '9'
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.emit(token{kind: kind, text: text, line: l.line})
}

func (l *lexer) number() error {
	start := l.pos
	base := 10
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		base = 16
		l.pos += 2
	}
	for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if base == 10 && containsHexLetter(text) {
		return fmt.Errorf("minic: line %d: bad number %q", l.line, text)
	}
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Allow full-range 32-bit hex constants like 0xFFFFFFFF.
		u, uerr := strconv.ParseUint(text, 0, 32)
		if uerr != nil {
			return fmt.Errorf("minic: line %d: bad number %q", l.line, text)
		}
		v = int64(u)
	}
	l.emit(token{kind: tokNumber, text: text, num: v, line: l.line})
	return nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func containsHexLetter(s string) bool {
	for i := 0; i < len(s); i++ {
		if isLetter(s[i]) {
			return true
		}
	}
	return false
}

func (l *lexer) str() error {
	l.pos++ // opening quote
	var out []byte
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("minic: line %d: unterminated string", l.line)
		}
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.emit(token{kind: tokString, text: string(out), line: l.line})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\':
				out = append(out, '\\')
			case '"':
				out = append(out, '"')
			case '0':
				out = append(out, 0)
			default:
				return fmt.Errorf("minic: line %d: bad escape \\%c", l.line, l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			return fmt.Errorf("minic: line %d: newline in string", l.line)
		}
		out = append(out, c)
		l.pos++
	}
}

func (l *lexer) char() error {
	if l.pos+2 >= len(l.src) {
		return fmt.Errorf("minic: line %d: bad char literal", l.line)
	}
	l.pos++
	c := l.src[l.pos]
	if c == '\\' {
		l.pos++
		switch l.src[l.pos] {
		case 'n':
			c = '\n'
		case 't':
			c = '\t'
		case '\\':
			c = '\\'
		case '\'':
			c = '\''
		case '0':
			c = 0
		default:
			return fmt.Errorf("minic: line %d: bad char escape", l.line)
		}
	}
	l.pos++
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return fmt.Errorf("minic: line %d: unterminated char literal", l.line)
	}
	l.pos++
	l.emit(token{kind: tokNumber, num: int64(c), text: string(c), line: l.line})
	return nil
}

func (l *lexer) punct() error {
	rest := l.src[l.pos:]
	for _, p := range punct2 {
		if len(rest) >= 2 && rest[:2] == p {
			l.emit(token{kind: tokPunct, text: p, line: l.line})
			l.pos += 2
			return nil
		}
	}
	switch c := rest[0]; c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ',', ';':
		l.emit(token{kind: tokPunct, text: string(c), line: l.line})
		l.pos++
		return nil
	default:
		return fmt.Errorf("minic: line %d: unexpected character %q", l.line, string(c))
	}
}
