package minic

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
)

// queensSrc is a real program with recursion, globals and loops — enough
// structure to give compression and decompression something to chew on.
const queensSrc = `
var cols[8];
var solutions;

func safe(row, col) {
	var r = 0;
	while (r < row) {
		var c = cols[r];
		if (c == col) { return 0; }
		if (row - r == col - c) { return 0; }
		if (row - r == c - col) { return 0; }
		r = r + 1;
	}
	return 1;
}

func solve(row, n) {
	if (row == n) {
		solutions = solutions + 1;
		return 0;
	}
	var col = 0;
	while (col < n) {
		if (safe(row, col)) {
			cols[row] = col;
			solve(row + 1, n);
		}
		col = col + 1;
	}
	return 0;
}

func main() {
	solutions = 0;
	solve(0, 8);
	print(solutions);
	return 0;
}
`

// TestCompiledProgramSurvivesCompression is the full paper workflow on
// compiled code: MiniC -> native image -> compressed image -> identical
// execution under every software decompressor.
func TestCompiledProgramSurvivesCompression(t *testing.T) {
	im, err := Compile(queensSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(im *program.Image) (string, cpu.Stats) {
		cfg := cpu.DefaultConfig()
		cfg.MaxInstr = 100_000_000
		c, _ := cpu.New(cfg)
		var out bytes.Buffer
		c.Out = &out
		if err := c.Load(im); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return out.String(), c.Stats
	}
	want, natStats := run(im)
	if want != "92" { // 8-queens has 92 solutions
		t.Fatalf("8-queens = %q, want 92", want)
	}
	for _, opts := range []core.Options{
		{Scheme: program.SchemeDict},
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
		{Scheme: program.SchemeProcDict, ShadowRF: true},
	} {
		res, err := core.Compress(im, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts, err)
		}
		got, st := run(res.Image)
		if got != want {
			t.Fatalf("%s: output %q, want %q", opts.Scheme, got, want)
		}
		if st.Instrs != natStats.Instrs {
			t.Fatalf("%s: instr count changed", opts.Scheme)
		}
	}
}

// TestSelectiveCompressionOnCompiledCode profiles the compiled program
// and keeps its hottest function native.
func TestSelectiveCompressionOnCompiledCode(t *testing.T) {
	im, err := Compile(queensSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 100_000_000
	c, _ := cpu.New(cfg)
	prof := cpu.NewProcProfile(im)
	c.Prof = prof
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// safe() is the inner loop: it must dominate the execution profile.
	safeExecs, _ := prof.ByName("safe")
	mainExecs, _ := prof.ByName("main")
	if safeExecs <= mainExecs {
		t.Fatalf("safe (%d) should out-execute main (%d)", safeExecs, mainExecs)
	}
	res, err := core.Compress(im, core.Options{
		Scheme:      program.SchemeDict,
		ShadowRF:    true,
		NativeProcs: map[string]bool{"safe": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Image.ProcByName("safe"); p == nil || p.Addr >= program.CompBase {
		t.Fatal("safe not in the native region")
	}
	c2, _ := cpu.New(cfg)
	var out2 bytes.Buffer
	c2.Out = &out2
	if err := c2.Load(res.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if out2.String() != out.String() {
		t.Fatal("selective compiled run diverged")
	}
}

// FuzzCompile feeds arbitrary text to the front end: it must never panic.
func FuzzCompile(f *testing.F) {
	f.Add("func main() { return 0; }")
	f.Add("var a[10]; func main() { a[1] = 2; return a[1]; }")
	f.Add("func f(x) { if (x) { return 1; } return 0; } func main() { return f(3); }")
	f.Add("func main() { prints(\"x\"); while (0) { break; } return 0; }")
	f.Add("func main() { return 1 && 2 || 3 < 4 << 5; }")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Compile(src)
		if err != nil {
			return
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("accepted program produced invalid image: %v", err)
		}
	})
}
