package minic

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
)

// Compile translates MiniC source into a linked native program image.
// Each MiniC function becomes a procedure, so compiled programs work with
// profiling, selective compression and placement exactly like the
// synthetic benchmarks.
func Compile(src string) (*program.Image, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	g := &gen{
		b:       asm.NewBuilder(),
		globals: make(map[string]*globalDecl),
		funcs:   make(map[string]*funcDecl),
		strings: make(map[string]string),
	}
	return g.program(prog)
}

// tempRegs is the expression-evaluation register pool. All are
// caller-saved; live temporaries are spilled around calls.
var tempRegs = []int{
	isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4,
	isa.RegT5, isa.RegT6, isa.RegT7, isa.RegT8, isa.RegT9,
}

type gen struct {
	b       *asm.Builder
	globals map[string]*globalDecl
	funcs   map[string]*funcDecl
	strings map[string]string // literal -> label

	// per-function state
	fn      *funcDecl
	locals  map[string]int // name -> frame offset
	nLocals int
	inUse   map[int]bool // temp register -> live
	labelN  int
	loops   []loopLabels
}

type loopLabels struct{ brk, cont string }

type compileError struct {
	line int
	msg  string
}

func (e *compileError) Error() string {
	return fmt.Sprintf("minic: line %d: %s", e.line, e.msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &compileError{line: line, msg: fmt.Sprintf(format, args...)}
}

var builtins = map[string]int{ // name -> arg count
	"print": 1, "printc": 1, "printh": 1, "prints": 0, "exit": 1,
}

func (g *gen) program(prog *programAST) (*program.Image, error) {
	for _, gl := range prog.globals {
		if g.globals[gl.name] != nil {
			return nil, errf(gl.line, "duplicate global %q", gl.name)
		}
		g.globals[gl.name] = gl
	}
	for _, fn := range prog.funcs {
		if g.funcs[fn.name] != nil {
			return nil, errf(fn.line, "duplicate function %q", fn.name)
		}
		if g.globals[fn.name] != nil {
			return nil, errf(fn.line, "%q is both a global and a function", fn.name)
		}
		if builtins[fn.name] != 0 || fn.name == "prints" {
			return nil, errf(fn.line, "%q shadows a built-in", fn.name)
		}
		g.funcs[fn.name] = fn
	}
	if g.funcs["main"] == nil {
		return nil, fmt.Errorf("minic: no main function")
	}
	if len(g.funcs["main"].params) != 0 {
		return nil, errf(g.funcs["main"].line, "main takes no parameters")
	}

	// Code: _start, then functions in source order.
	g.b.Section(program.SegText, program.NativeBase, false)
	g.b.Proc("_start")
	g.b.Jump("jal", "main")
	g.b.Move(isa.RegA0, isa.RegV0)
	g.b.Li(isa.RegV0, isa.SysExit)
	g.b.Syscall()
	g.b.EndProc()
	for _, fn := range prog.funcs {
		if err := g.function(fn); err != nil {
			return nil, err
		}
	}

	// Data: globals, then string literals (emitted by the code pass).
	g.b.Section(program.SegData, program.DataBase, false)
	for _, gl := range prog.globals {
		g.b.Label(gl.name)
		if gl.size == 1 && gl.init != 0 {
			g.b.Word(uint32(gl.init))
		} else {
			g.b.Space(4 * gl.size)
		}
	}
	g.b.Align(4)
	lits := make([]string, 0, len(g.strings))
	for lit := range g.strings {
		lits = append(lits, lit)
	}
	sort.Strings(lits)
	for _, lit := range lits {
		g.b.Label(g.strings[lit])
		g.b.Asciiz(lit)
		g.b.Align(4)
	}

	g.b.SetEntry("_start")
	return g.b.Finish()
}

// collectLocals pre-scans a function for every `var`, assigning frame
// slots (parameters first). MiniC uses one flat scope per function.
func (g *gen) collectLocals(fn *funcDecl) error {
	g.locals = make(map[string]int)
	g.nLocals = 0
	add := func(name string, line int) error {
		if _, dup := g.locals[name]; dup {
			return errf(line, "duplicate local %q in %s", name, fn.name)
		}
		g.locals[name] = 4 * g.nLocals
		g.nLocals++
		return nil
	}
	for _, p := range fn.params {
		if err := add(p, fn.line); err != nil {
			return err
		}
	}
	var walk func(b *blockStmt) error
	walk = func(b *blockStmt) error {
		for _, s := range b.stmts {
			switch s := s.(type) {
			case *varStmt:
				if err := add(s.name, s.line); err != nil {
					return err
				}
			case *ifStmt:
				if err := walk(s.then); err != nil {
					return err
				}
				if s.els != nil {
					if err := walk(s.els); err != nil {
						return err
					}
				}
			case *whileStmt:
				if err := walk(s.body); err != nil {
					return err
				}
			case *forStmt:
				if v, ok := s.init.(*varStmt); ok {
					if err := add(v.name, v.line); err != nil {
						return err
					}
				}
				if err := walk(s.body); err != nil {
					return err
				}
			case *blockStmt:
				if err := walk(s); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(fn.body)
}

// frameSize returns the stack frame: locals plus the saved $ra slot,
// kept 8-byte aligned.
func (g *gen) frameSize() int32 {
	n := 4*g.nLocals + 4
	return int32((n + 7) &^ 7)
}

func (g *gen) function(fn *funcDecl) error {
	if err := g.collectLocals(fn); err != nil {
		return err
	}
	g.fn = fn
	g.inUse = make(map[int]bool)
	g.loops = nil

	g.b.Proc(fn.name)
	frame := g.frameSize()
	g.b.Imm("addiu", isa.RegSP, isa.RegSP, -frame)
	g.b.Mem("sw", isa.RegRA, frame-4, isa.RegSP)
	argRegs := []int{isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3}
	for i, p := range fn.params {
		g.b.Mem("sw", argRegs[i], int32(g.locals[p]), isa.RegSP)
	}
	if err := g.block(fn.body); err != nil {
		return err
	}
	// Implicit "return 0" falls through to the epilogue.
	g.b.Move(isa.RegV0, isa.RegZero)
	g.b.Label(g.epilogue())
	g.b.Mem("lw", isa.RegRA, frame-4, isa.RegSP)
	g.b.Imm("addiu", isa.RegSP, isa.RegSP, frame)
	g.b.JR(isa.RegRA)
	g.b.EndProc()
	return nil
}

func (g *gen) epilogue() string { return fn2label(g.fn.name) + "_ret" }

func fn2label(name string) string { return "." + name }

func (g *gen) label(hint string) string {
	g.labelN++
	return fmt.Sprintf("%s_%s%d", fn2label(g.fn.name), hint, g.labelN)
}

// alloc takes a free temp register.
func (g *gen) alloc(line int) (int, error) {
	for _, r := range tempRegs {
		if !g.inUse[r] {
			g.inUse[r] = true
			return r, nil
		}
	}
	return 0, errf(line, "expression too complex (more than %d live temporaries)", len(tempRegs))
}

func (g *gen) free(r int) { delete(g.inUse, r) }

func (g *gen) liveTemps() []int {
	var out []int
	for _, r := range tempRegs {
		if g.inUse[r] {
			out = append(out, r)
		}
	}
	return out
}

// ---- statements ----

func (g *gen) block(b *blockStmt) error {
	for _, s := range b.stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s stmt) error {
	switch s := s.(type) {
	case *blockStmt:
		return g.block(s)

	case *varStmt:
		if s.init == nil {
			// Deterministic zero initialisation (frames are reused).
			g.b.Mem("sw", isa.RegZero, int32(g.locals[s.name]), isa.RegSP)
			return nil
		}
		r, err := g.expr(s.init, s.line)
		if err != nil {
			return err
		}
		g.b.Mem("sw", r, int32(g.locals[s.name]), isa.RegSP)
		g.free(r)
		return nil

	case *assignStmt:
		return g.assign(s)

	case *ifStmt:
		els := g.label("else")
		end := g.label("endif")
		r, err := g.expr(s.cond, s.line)
		if err != nil {
			return err
		}
		target := end
		if s.els != nil {
			target = els
		}
		g.b.Branch2("beq", r, isa.RegZero, target)
		g.free(r)
		if err := g.block(s.then); err != nil {
			return err
		}
		if s.els != nil {
			g.b.Branch2("beq", isa.RegZero, isa.RegZero, end)
			g.b.Label(els)
			if err := g.block(s.els); err != nil {
				return err
			}
		}
		g.b.Label(end)
		return nil

	case *whileStmt:
		top := g.label("while")
		end := g.label("endwhile")
		g.b.Label(top)
		r, err := g.expr(s.cond, s.line)
		if err != nil {
			return err
		}
		g.b.Branch2("beq", r, isa.RegZero, end)
		g.free(r)
		g.loops = append(g.loops, loopLabels{brk: end, cont: top})
		if err := g.block(s.body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Branch2("beq", isa.RegZero, isa.RegZero, top)
		g.b.Label(end)
		return nil

	case *forStmt:
		if s.init != nil {
			if err := g.stmt(s.init); err != nil {
				return err
			}
		}
		top := g.label("for")
		post := g.label("forpost")
		end := g.label("endfor")
		g.b.Label(top)
		if s.cond != nil {
			r, err := g.expr(s.cond, s.line)
			if err != nil {
				return err
			}
			g.b.Branch2("beq", r, isa.RegZero, end)
			g.free(r)
		}
		// continue jumps to the post statement, as in C.
		g.loops = append(g.loops, loopLabels{brk: end, cont: post})
		if err := g.block(s.body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Label(post)
		if s.post != nil {
			if err := g.stmt(s.post); err != nil {
				return err
			}
		}
		g.b.Branch2("beq", isa.RegZero, isa.RegZero, top)
		g.b.Label(end)
		return nil

	case *returnStmt:
		if s.value != nil {
			r, err := g.expr(s.value, s.line)
			if err != nil {
				return err
			}
			g.b.Move(isa.RegV0, r)
			g.free(r)
		} else {
			g.b.Move(isa.RegV0, isa.RegZero)
		}
		g.b.Branch2("beq", isa.RegZero, isa.RegZero, g.epilogue())
		return nil

	case *breakStmt:
		if len(g.loops) == 0 {
			return errf(s.line, "break outside loop")
		}
		g.b.Branch2("beq", isa.RegZero, isa.RegZero, g.loops[len(g.loops)-1].brk)
		return nil

	case *continueStmt:
		if len(g.loops) == 0 {
			return errf(s.line, "continue outside loop")
		}
		g.b.Branch2("beq", isa.RegZero, isa.RegZero, g.loops[len(g.loops)-1].cont)
		return nil

	case *exprStmt:
		r, err := g.expr(s.e, s.line)
		if err != nil {
			return err
		}
		g.free(r)
		return nil
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

func (g *gen) assign(s *assignStmt) error {
	v, err := g.expr(s.value, s.line)
	if err != nil {
		return err
	}
	lv := s.target
	if off, isLocal := g.locals[lv.name]; isLocal {
		if lv.index != nil {
			return errf(lv.line, "local %q is not an array", lv.name)
		}
		g.b.Mem("sw", v, int32(off), isa.RegSP)
		g.free(v)
		return nil
	}
	gl := g.globals[lv.name]
	if gl == nil {
		return errf(lv.line, "undefined variable %q", lv.name)
	}
	addr, err := g.globalAddr(gl, lv.index, lv.line)
	if err != nil {
		return err
	}
	g.b.Mem("sw", v, 0, addr)
	g.free(addr)
	g.free(v)
	return nil
}

// globalAddr leaves the address of gl (or gl[index]) in a fresh temp.
func (g *gen) globalAddr(gl *globalDecl, index expr, line int) (int, error) {
	if index == nil && gl.size != 1 {
		return 0, errf(line, "array %q needs an index", gl.name)
	}
	if index != nil && gl.size == 1 {
		return 0, errf(line, "%q is not an array", gl.name)
	}
	addr, err := g.alloc(line)
	if err != nil {
		return 0, err
	}
	g.b.La(addr, gl.name, 0)
	if index != nil {
		idx, err := g.expr(index, line)
		if err != nil {
			return 0, err
		}
		g.b.Shift("sll", idx, idx, 2)
		g.b.R3("addu", addr, addr, idx)
		g.free(idx)
	}
	return addr, nil
}

// ---- expressions ----

// expr emits code leaving the value in a newly allocated temp register.
func (g *gen) expr(e expr, line int) (int, error) {
	switch e := e.(type) {
	case *numberExpr:
		r, err := g.alloc(line)
		if err != nil {
			return 0, err
		}
		g.b.Li(r, uint32(e.value))
		return r, nil

	case *varExpr:
		r, err := g.alloc(e.line)
		if err != nil {
			return 0, err
		}
		if off, ok := g.locals[e.name]; ok {
			g.b.Mem("lw", r, int32(off), isa.RegSP)
			return r, nil
		}
		gl := g.globals[e.name]
		if gl == nil {
			return 0, errf(e.line, "undefined variable %q", e.name)
		}
		if gl.size != 1 {
			return 0, errf(e.line, "array %q needs an index", e.name)
		}
		g.b.La(r, gl.name, 0)
		g.b.Mem("lw", r, 0, r)
		return r, nil

	case *indexExpr:
		if _, isLocal := g.locals[e.name]; isLocal {
			return 0, errf(e.line, "local %q is not an array", e.name)
		}
		gl := g.globals[e.name]
		if gl == nil {
			return 0, errf(e.line, "undefined array %q", e.name)
		}
		addr, err := g.globalAddr(gl, e.index, e.line)
		if err != nil {
			return 0, err
		}
		g.b.Mem("lw", addr, 0, addr)
		return addr, nil

	case *unaryExpr:
		x, err := g.expr(e.x, line)
		if err != nil {
			return 0, err
		}
		switch e.op {
		case "-":
			g.b.R3("subu", x, isa.RegZero, x)
		case "!":
			g.b.Imm("sltiu", x, x, 1)
		case "~":
			g.b.R3("nor", x, x, isa.RegZero)
		}
		return x, nil

	case *binaryExpr:
		return g.binary(e)

	case *callExpr:
		return g.call(e)
	}
	return 0, fmt.Errorf("minic: unhandled expression %T", e)
}

func (g *gen) binary(e *binaryExpr) (int, error) {
	if e.op == "&&" || e.op == "||" {
		return g.shortCircuit(e)
	}
	l, err := g.expr(e.l, e.line)
	if err != nil {
		return 0, err
	}
	r, err := g.expr(e.r, e.line)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case "+":
		g.b.R3("addu", l, l, r)
	case "-":
		g.b.R3("subu", l, l, r)
	case "*":
		g.b.MulDiv("mult", l, r)
		g.b.MoveFrom("mflo", l)
	case "/":
		g.b.MulDiv("div", l, r)
		g.b.MoveFrom("mflo", l)
	case "%":
		g.b.MulDiv("div", l, r)
		g.b.MoveFrom("mfhi", l)
	case "&":
		g.b.R3("and", l, l, r)
	case "|":
		g.b.R3("or", l, l, r)
	case "^":
		g.b.R3("xor", l, l, r)
	case "<<":
		g.b.ShiftV("sllv", l, l, r)
	case ">>":
		g.b.ShiftV("srav", l, l, r)
	case "==":
		g.b.R3("xor", l, l, r)
		g.b.Imm("sltiu", l, l, 1)
	case "!=":
		g.b.R3("xor", l, l, r)
		g.b.R3("sltu", l, isa.RegZero, l)
	case "<":
		g.b.R3("slt", l, l, r)
	case ">":
		g.b.R3("slt", l, r, l)
	case "<=":
		g.b.R3("slt", l, r, l)
		g.b.Imm("xori", l, l, 1)
	case ">=":
		g.b.R3("slt", l, l, r)
		g.b.Imm("xori", l, l, 1)
	default:
		return 0, errf(e.line, "unknown operator %q", e.op)
	}
	g.free(r)
	return l, nil
}

// shortCircuit emits && and || with C semantics (result is 0 or 1 and the
// right operand is evaluated only when needed).
func (g *gen) shortCircuit(e *binaryExpr) (int, error) {
	res, err := g.alloc(e.line)
	if err != nil {
		return 0, err
	}
	end := g.label("sc")
	l, err := g.expr(e.l, e.line)
	if err != nil {
		return 0, err
	}
	// Normalise the left value into res.
	g.b.R3("sltu", res, isa.RegZero, l)
	g.free(l)
	if e.op == "&&" {
		g.b.Branch2("beq", res, isa.RegZero, end) // false: result 0
	} else {
		g.b.Branch2("bne", res, isa.RegZero, end) // true: result 1
	}
	r, err := g.expr(e.r, e.line)
	if err != nil {
		return 0, err
	}
	g.b.R3("sltu", res, isa.RegZero, r)
	g.free(r)
	g.b.Label(end)
	return res, nil
}

func (g *gen) call(e *callExpr) (int, error) {
	if n, isBuiltin := builtins[e.name]; isBuiltin || e.name == "prints" {
		return g.builtin(e, n)
	}
	fn := g.funcs[e.name]
	if fn == nil {
		return 0, errf(e.line, "undefined function %q", e.name)
	}
	if len(e.args) != len(fn.params) {
		return 0, errf(e.line, "%s takes %d arguments, got %d", e.name, len(fn.params), len(e.args))
	}
	// Evaluate arguments into temps.
	var argTemps []int
	for _, a := range e.args {
		r, err := g.expr(a, e.line)
		if err != nil {
			return 0, err
		}
		argTemps = append(argTemps, r)
	}
	// Save every other live temp across the call.
	isArg := make(map[int]bool, len(argTemps))
	for _, r := range argTemps {
		isArg[r] = true
	}
	var saved []int
	for _, r := range g.liveTemps() {
		if !isArg[r] {
			saved = append(saved, r)
		}
	}
	if n := len(saved); n > 0 {
		g.b.Imm("addiu", isa.RegSP, isa.RegSP, int32(-4*((n+1)&^1)))
		for i, r := range saved {
			g.b.Mem("sw", r, int32(4*i), isa.RegSP)
		}
	}
	argRegs := []int{isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3}
	for i, r := range argTemps {
		g.b.Move(argRegs[i], r)
		g.free(r)
	}
	g.b.Jump("jal", e.name)
	res, err := g.alloc(e.line)
	if err != nil {
		return 0, err
	}
	g.b.Move(res, isa.RegV0)
	if n := len(saved); n > 0 {
		for i, r := range saved {
			g.b.Mem("lw", r, int32(4*i), isa.RegSP)
		}
		g.b.Imm("addiu", isa.RegSP, isa.RegSP, int32(4*((n+1)&^1)))
	}
	return res, nil
}

func (g *gen) builtin(e *callExpr, nargs int) (int, error) {
	if e.name == "prints" {
		lbl, ok := g.strings[e.str]
		if !ok {
			lbl = fmt.Sprintf(".str%d", len(g.strings))
			g.strings[e.str] = lbl
		}
		g.saveAroundSyscall(func() {
			g.b.La(isa.RegA0, lbl, 0)
			g.b.Li(isa.RegV0, isa.SysPrintString)
			g.b.Syscall()
		})
		return g.zeroResult(e.line)
	}
	if len(e.args) != nargs {
		return 0, errf(e.line, "%s takes %d argument(s), got %d", e.name, nargs, len(e.args))
	}
	r, err := g.expr(e.args[0], e.line)
	if err != nil {
		return 0, err
	}
	var sys uint32
	switch e.name {
	case "print":
		sys = isa.SysPrintInt
	case "printc":
		sys = isa.SysPrintChar
	case "printh":
		sys = isa.SysPrintHex
	case "exit":
		sys = isa.SysExit
	}
	g.saveAroundSyscall(func() {
		g.b.Move(isa.RegA0, r)
		g.b.Li(isa.RegV0, sys)
		g.b.Syscall()
	})
	g.free(r)
	return g.zeroResult(e.line)
}

// saveAroundSyscall emits the body directly: syscalls clobber no
// temporaries in this machine (only $a0/$v0, which are not pool members).
func (g *gen) saveAroundSyscall(body func()) { body() }

func (g *gen) zeroResult(line int) (int, error) {
	r, err := g.alloc(line)
	if err != nil {
		return 0, err
	}
	g.b.Move(r, isa.RegZero)
	return r, nil
}
