package minic

import "fmt"

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*programAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &programAST{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "var"):
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, g)
		case p.at(tokKeyword, "func"):
			f, err := p.function()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		default:
			return nil, p.errf("expected 'var' or 'func', got %q", p.cur().text)
		}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %q, got %q", want, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("minic: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) global() (*globalDecl, error) {
	p.next() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	g := &globalDecl{name: name.text, size: 1, line: name.line}
	switch {
	case p.accept(tokPunct, "["):
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		if n.num <= 0 || n.num > 1<<20 {
			return nil, p.errf("bad array size %d", n.num)
		}
		g.size = int(n.num)
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	case p.accept(tokPunct, "="):
		// Constant initialiser: an optionally negated number literal.
		neg := p.accept(tokPunct, "-")
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, p.errf("global initialisers must be constant")
		}
		g.init = n.num
		if neg {
			g.init = -g.init
		}
	}
	_, err = p.expect(tokPunct, ";")
	return g, err
}

func (p *parser) function() (*funcDecl, error) {
	p.next() // func
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	f := &funcDecl{name: name.text, line: name.line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for !p.at(tokPunct, ")") {
		if len(f.params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		param, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, param.text)
	}
	p.next() // )
	if len(f.params) > 4 {
		return nil, p.errf("function %s has %d parameters; at most 4 supported", f.name, len(f.params))
	}
	f.body, err = p.block()
	return f, err
}

func (p *parser) block() (*blockStmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &blockStmt{}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokKeyword, "var"):
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		s := &varStmt{name: name.text, line: name.line}
		if p.accept(tokPunct, "=") {
			s.init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		_, err = p.expect(tokPunct, ";")
		return s, err

	case p.at(tokKeyword, "if"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: t.line}
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				// else if: wrap in a synthetic block
				inner, err := p.statement()
				if err != nil {
					return nil, err
				}
				s.els = &blockStmt{stmts: []stmt{inner}}
			} else {
				s.els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return s, nil

	case p.at(tokKeyword, "for"):
		return p.forStatement()

	case p.at(tokKeyword, "while"):
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil

	case p.at(tokKeyword, "return"):
		p.next()
		s := &returnStmt{line: t.line}
		if !p.at(tokPunct, ";") {
			var err error
			s.value, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		_, err := p.expect(tokPunct, ";")
		return s, err

	case p.at(tokKeyword, "break"):
		p.next()
		_, err := p.expect(tokPunct, ";")
		return &breakStmt{line: t.line}, err

	case p.at(tokKeyword, "continue"):
		p.next()
		_, err := p.expect(tokPunct, ";")
		return &continueStmt{line: t.line}, err

	case t.kind == tokIdent:
		// assignment (x = e; or a[i] = e;) or expression statement (call).
		if p.toks[p.pos+1].kind == tokPunct &&
			(p.toks[p.pos+1].text == "=" || p.toks[p.pos+1].text == "[") {
			return p.assignOrIndex()
		}
		fallthrough
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{e: e, line: t.line}, nil
	}
}

// forStatement parses "for (init; cond; post) block" where init is an
// optional var declaration or assignment, cond an optional expression and
// post an optional assignment.
func (p *parser) forStatement() (stmt, error) {
	t := p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &forStmt{line: t.line}
	if !p.at(tokPunct, ";") {
		init, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		f.init = init
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		f.cond = cond
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		f.post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// simpleStatement parses a semicolon-free var declaration or assignment,
// as used in for-loop headers.
func (p *parser) simpleStatement() (stmt, error) {
	if p.accept(tokKeyword, "var") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		s := &varStmt{name: name.text, line: name.line}
		if p.accept(tokPunct, "=") {
			s.init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	lv := &lvalue{name: name.text, line: name.line}
	if p.accept(tokPunct, "[") {
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		lv.index = idx
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	value, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &assignStmt{target: lv, value: value, line: name.line}, nil
}

// assignOrIndex handles "x = e;", "a[i] = e;" and "a[i];"-style reads used
// as expression statements.
func (p *parser) assignOrIndex() (stmt, error) {
	name := p.next()
	lv := &lvalue{name: name.text, line: name.line}
	if p.accept(tokPunct, "[") {
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		lv.index = idx
	}
	if p.accept(tokPunct, "=") {
		value, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &assignStmt{target: lv, value: value, line: name.line}, nil
	}
	// Not an assignment after all: re-parse as an expression statement.
	var e expr
	if lv.index != nil {
		e = &indexExpr{name: lv.name, index: lv.index, line: lv.line}
	} else {
		e = &varExpr{name: lv.name, line: lv.line}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &exprStmt{e: e, line: name.line}, nil
}

// Operator precedence, lowest first.
var precedence = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expression() (expr, error) { return p.binary(0) }

func (p *parser) binary(level int) (expr, error) {
	if level >= len(precedence) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precedence[level] {
			if p.at(tokPunct, op) {
				line := p.next().line
				right, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &binaryExpr{op: op, l: left, r: right, line: line}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (expr, error) {
	for _, op := range []string{"-", "!", "~"} {
		if p.at(tokPunct, op) {
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: op, x: x}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &numberExpr{value: t.num}, nil
	case p.accept(tokPunct, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ")")
		return e, err
	case t.kind == tokIdent:
		p.next()
		switch {
		case p.accept(tokPunct, "("):
			call := &callExpr{name: t.text, line: t.line}
			// prints takes a string literal.
			if t.text == "prints" {
				s, err := p.expect(tokString, "")
				if err != nil {
					return nil, err
				}
				call.str = s.text
				_, err = p.expect(tokPunct, ")")
				return call, err
			}
			for !p.at(tokPunct, ")") {
				if len(call.args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
			}
			p.next() // )
			return call, nil
		case p.accept(tokPunct, "["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: idx, line: t.line}, nil
		default:
			return &varExpr{name: t.text, line: t.line}, nil
		}
	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}
