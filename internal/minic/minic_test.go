package minic

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
)

func compileRun(t *testing.T, src string) (string, int32) {
	t.Helper()
	im, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 50_000_000
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), code
}

func expectOut(t *testing.T, src, want string) {
	t.Helper()
	got, code := compileRun(t, src)
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestHello(t *testing.T) {
	expectOut(t, `
func main() {
	prints("hello, minic\n");
	return 0;
}`, "hello, minic\n")
}

func TestArithmetic(t *testing.T) {
	expectOut(t, `
func main() {
	print(2 + 3 * 4);       // 14
	printc(' ');
	print((2 + 3) * 4);     // 20
	printc(' ');
	print(100 / 7);         // 14
	printc(' ');
	print(100 % 7);         // 2
	printc(' ');
	print(-5 + 3);          // -2
	printc(' ');
	print(1 << 10);         // 1024
	printc(' ');
	print(-8 >> 1);         // -4 (arithmetic shift)
	return 0;
}`, "14 20 14 2 -2 1024 -4")
}

func TestComparisonsAndLogic(t *testing.T) {
	expectOut(t, `
func main() {
	print(3 < 5);  print(5 < 3);  print(3 <= 3);
	print(5 > 3);  print(3 > 5);  print(3 >= 4);
	print(7 == 7); print(7 != 7); print(!0); print(!9);
	print(1 && 2); print(1 && 0); print(0 || 3); print(0 || 0);
	printh(~0);
	return 0;
}`, "101100101010100xffffffff")
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectOut(t, `
var hits;
func bump() {
	hits = hits + 1;
	return 1;
}
func main() {
	hits = 0;
	var x = 0 && bump();   // bump must not run
	var y = 1 || bump();   // bump must not run
	var z = 1 && bump();   // bump runs
	print(hits); print(x); print(y); print(z);
	return 0;
}`, "1011")
}

func TestFibonacciRecursion(t *testing.T) {
	expectOut(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	print(fib(15));
	return 0;
}`, "610")
}

func TestGlobalsAndArrays(t *testing.T) {
	expectOut(t, `
var total;
var squares[20];
func fill(n) {
	var i = 0;
	while (i < n) {
		squares[i] = i * i;
		i = i + 1;
	}
	return 0;
}
func main() {
	fill(20);
	total = 0;
	var i = 0;
	while (i < 20) {
		total = total + squares[i];
		i = i + 1;
	}
	print(total);    // sum of squares 0..19 = 2470
	return 0;
}`, "2470")
}

func TestWhileBreakContinue(t *testing.T) {
	expectOut(t, `
func main() {
	var i = 0;
	var sum = 0;
	while (1) {
		i = i + 1;
		if (i > 10) { break; }
		if (i % 2 == 0) { continue; }
		sum = sum + i;     // 1+3+5+7+9
	}
	print(sum);
	return 0;
}`, "25")
}

func TestNestedCallsPreserveTemps(t *testing.T) {
	// The result of g() must survive the call to h() inside the same
	// expression (live-temp spill around calls).
	expectOut(t, `
func g() { return 100; }
func h() { return 23; }
func main() {
	print(g() + h());
	print(g() - h() + g() * 2 - h());
	return 0;
}`, "123254")
}

func TestFourParams(t *testing.T) {
	expectOut(t, `
func mix(a, b, c, d) {
	return a * 1000 + b * 100 + c * 10 + d;
}
func main() {
	print(mix(1, 2, 3, 4));
	return 0;
}`, "1234")
}

func TestGCDAndExitCode(t *testing.T) {
	got, code := compileRun(t, `
func gcd(a, b) {
	while (b != 0) {
		var t = b;
		b = a % b;
		a = t;
	}
	return a;
}
func main() {
	return gcd(462, 1071);   // 21
}`)
	if got != "" || code != 21 {
		t.Fatalf("got %q / %d", got, code)
	}
}

func TestUninitialisedLocalIsZero(t *testing.T) {
	expectOut(t, `
func f() {
	var x;
	var y = x + 1;
	return y;
}
func main() {
	f();
	print(f());
	return 0;
}`, "1")
}

func TestCharAndHexLiterals(t *testing.T) {
	expectOut(t, `
func main() {
	printc('A');
	printc('\n');
	printh(0xBEEF);
	print(0x10);
	return 0;
}`, "A\n0xbeef16")
}

func TestElseIfChain(t *testing.T) {
	expectOut(t, `
func grade(x) {
	if (x >= 90) { return 'A'; }
	else if (x >= 80) { return 'B'; }
	else if (x >= 70) { return 'C'; }
	else { return 'F'; }
}
func main() {
	printc(grade(95)); printc(grade(85)); printc(grade(75)); printc(grade(10));
	return 0;
}`, "ABCF")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func main() { return x; }", "undefined variable"},
		{"func main() { nosuch(); }", "undefined function"},
		{"func f(a) { return a; } func main() { return f(1, 2); }", "arguments"},
		{"func main() { var a; var a; }", "duplicate local"},
		{"var g; var g; func main() { return 0; }", "duplicate global"},
		{"func f() { return 0; } func f() { return 1; } func main() { return 0; }", "duplicate function"},
		{"func main() { break; }", "break outside loop"},
		{"func main() { continue; }", "continue outside loop"},
		{"func f() { return 0; }", "no main"},
		{"func main(a) { return a; }", "main takes no parameters"},
		{"func main() { return 1 +; }", "unexpected token"},
		{"func main() { if 1 { } }", "expected"},
		{"var a[3]; func main() { return a; }", "needs an index"},
		{"var s; func main() { return s[0]; }", "not an array"},
		{"func main() { var v; return v[1]; }", "not an array"},
		{"func f(a, b, c, d, e) { return 0; } func main() { return 0; }", "at most 4"},
		{"func print() { return 0; } func main() { return 0; }", "shadows a built-in"},
		{"var main; func main() { return 0; }", "both a global and a function"},
	}
	for i, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want substring %q", i, err, c.want)
		}
	}
}

func TestFunctionsBecomeProcedures(t *testing.T) {
	im, err := Compile(`
func helper(x) { return x * 2; }
func main() { return helper(21); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if im.ProcByName("helper") == nil || im.ProcByName("main") == nil || im.ProcByName("_start") == nil {
		t.Fatalf("procedure table incomplete: %+v", im.Procs)
	}
	if im.Entry != im.Symbols["_start"] {
		t.Fatal("entry must be _start")
	}
}

func TestStringDeduplication(t *testing.T) {
	im, err := Compile(`
func main() {
	prints("same"); prints("same"); prints("other");
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	data := im.Segment(program.SegData)
	count := bytes.Count(data.Data, []byte("same\x00"))
	if count != 1 {
		t.Fatalf("literal stored %d times, want 1", count)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	expectOut(t, `
// line comment
/* block
   comment */
func main() {
	/* inline */ print(7); // trailing
	return 0;
}`, "7")
}

func TestDeepExpressionFailsGracefully(t *testing.T) {
	// Build an expression needing more than 10 live temporaries.
	expr := "1"
	for i := 0; i < 12; i++ {
		expr = "(" + expr + " + (1"
	}
	for i := 0; i < 12; i++ {
		expr += "))"
	}
	_, err := Compile("func main() { return " + expr + "; }")
	if err == nil || !strings.Contains(err.Error(), "too complex") {
		t.Fatalf("err = %v", err)
	}
}

func TestForLoop(t *testing.T) {
	expectOut(t, `
func main() {
	var sum = 0;
	for (var i = 0; i < 10; i = i + 1) {
		sum = sum + i;
	}
	print(sum);                 // 45
	for (; sum > 40;) {         // header parts are optional
		sum = sum - 10;
	}
	print(sum);                 // 35
	var k = 0;
	for (k = 0; ; k = k + 1) {  // no condition: break exits
		if (k == 3) { break; }
	}
	print(k);                   // 3
	return 0;
}`, "45353")
}

func TestForContinueRunsPost(t *testing.T) {
	expectOut(t, `
func main() {
	var sum = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		sum = sum + i;          // 1+3+5+7+9
	}
	print(sum);
	return 0;
}`, "25")
}

func TestNestedForLoops(t *testing.T) {
	expectOut(t, `
var grid[25];
func main() {
	for (var i = 0; i < 5; i = i + 1) {
		for (var j = 0; j < 5; j = j + 1) {
			grid[i * 5 + j] = i * j;
		}
	}
	var total = 0;
	for (var k = 0; k < 25; k = k + 1) {
		total = total + grid[k];
	}
	print(total);               // (0+1+2+3+4)^2 = 100
	return 0;
}`, "100")
}

func TestGlobalInitialisers(t *testing.T) {
	expectOut(t, `
var base = 100;
var neg = -7;
var zero;
func main() {
	print(base + neg + zero);   // 93
	base = base + 1;
	print(base);                // 101
	return 0;
}`, "93101")
}

func TestGlobalInitialiserMustBeConstant(t *testing.T) {
	// A non-constant initialiser is rejected at the parse level.
	if _, err := Compile("var x = 1 + 2; func main() { return 0; }"); err == nil {
		t.Fatal("expected error for non-constant initialiser")
	}
	if _, err := Compile("var x = f(); func main() { return 0; }"); err == nil {
		t.Fatal("expected error for call initialiser")
	}
}
