package minic

// AST node definitions. Every value is a 32-bit integer; arrays are
// global, word-sized, and indexed from zero.

type programAST struct {
	globals []*globalDecl
	funcs   []*funcDecl
}

type globalDecl struct {
	name string
	size int   // words; 1 for scalars
	init int64 // initial value (scalars only)
	line int
}

type funcDecl struct {
	name   string
	params []string
	body   *blockStmt
	line   int
}

// Statements.

type stmt interface{ stmtNode() }

type blockStmt struct{ stmts []stmt }

type varStmt struct { // local declaration with optional initialiser
	name string
	init expr
	line int
}

type assignStmt struct {
	target *lvalue
	value  expr
	line   int
}

type ifStmt struct {
	cond      expr
	then, els *blockStmt
	line      int
}

type whileStmt struct {
	cond expr
	body *blockStmt
	line int
}

type forStmt struct {
	init stmt // nil, varStmt or assignStmt
	cond expr // nil = always true
	post stmt // nil or assignStmt
	body *blockStmt
	line int
}

type returnStmt struct {
	value expr // nil for bare return
	line  int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type exprStmt struct {
	e    expr
	line int
}

func (*blockStmt) stmtNode()    {}
func (*varStmt) stmtNode()      {}
func (*assignStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*exprStmt) stmtNode()     {}

// lvalue is an assignable location: a variable or an array element.
type lvalue struct {
	name  string
	index expr // nil for scalars
	line  int
}

// Expressions.

type expr interface{ exprNode() }

type numberExpr struct{ value int64 }

type varExpr struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type callExpr struct {
	name string
	args []expr
	str  string // for prints("...") only
	line int
}

type unaryExpr struct {
	op string // "-", "!", "~"
	x  expr
}

type binaryExpr struct {
	op   string
	l, r expr
	line int
}

func (*numberExpr) exprNode() {}
func (*varExpr) exprNode()    {}
func (*indexExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*unaryExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}
