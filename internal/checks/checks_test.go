package checks_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checks"
	"repro/internal/checks/checktest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestDetSafe: the determinism rules fire inside a det-bound package
// (clock reads, env reads, global rand, map-ordered emission) and the
// sanctioned forms — seeded rand, collect-sort-emit, reasoned allow
// annotations — stay quiet.
func TestDetSafe(t *testing.T) {
	checktest.Run(t, checks.DetSafe, fixture("det"),
		map[string]string{"pkgs": "det"})
}

// TestDetSafeOutsideContract: the same calls in a package outside the
// deterministic set produce no diagnostics.
func TestDetSafeOutsideContract(t *testing.T) {
	checktest.Run(t, checks.DetSafe, fixture("detout"),
		map[string]string{"pkgs": "det"})
}

// TestHookGuard: every guard idiom (guard block, early exit,
// disjunctive exit, alias, switch case, inherited closure guard) is
// accepted; unguarded, wrong-selector, and post-invalidation calls are
// flagged.
func TestHookGuard(t *testing.T) {
	checktest.Run(t, checks.HookGuard, fixture("hook"),
		map[string]string{"fields": "Tel,OnBurst", "types": "Observer"})
}

// TestPoolOnly: raw go statements and WaitGroup declarations are
// flagged outside the pool package; the annotated infrastructure
// goroutine is not.
func TestPoolOnly(t *testing.T) {
	checktest.Run(t, checks.PoolOnly, fixture("pool"),
		map[string]string{"pkg": "repro/internal/parallel"})
}

// TestPoolOnlyInsidePool: the pool package itself may own goroutines
// and WaitGroups.
func TestPoolOnlyInsidePool(t *testing.T) {
	checktest.Run(t, checks.PoolOnly, fixture("parallelown"),
		map[string]string{"pkg": "parallelown"})
}

// TestStatsComplete: marked sum/compare sites must cover every stats
// field; whole-struct comparisons cover everything at once.
func TestStatsComplete(t *testing.T) {
	checktest.Run(t, checks.StatsComplete, fixture("stats"),
		map[string]string{"type": "stats.Stats"})
}

// TestStatsShape: reference-typed or unexported counters break the
// bit-identity proofs structurally and are flagged in the defining
// package.
func TestStatsShape(t *testing.T) {
	checktest.Run(t, checks.StatsComplete, fixture("statsbad"),
		map[string]string{"type": "statsbad.Stats"})
}

// TestContractSitesPresent pins the repo-level wiring the per-package
// analyzers cannot see: the tree must contain at least one
// //cccheck:stats(sum) and one //cccheck:stats(compare) site, so the
// completeness proof always has something to hold on to.
func TestContractSitesPresent(t *testing.T) {
	root := filepath.Join("..", "..")
	found := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, kind := range []string{"sum", "compare"} {
			found[kind] += strings.Count(string(data), "//cccheck:stats("+kind+")")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"sum", "compare"} {
		if found[kind] == 0 {
			t.Errorf("no //cccheck:stats(%s) site in the tree: the statscomplete proof has nothing to check", kind)
		}
	}
}
