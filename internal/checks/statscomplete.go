package checks

import (
	"flag"
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// StatsComplete closes the escape hatch a new counter would otherwise
// have: every field of cpu.Stats must appear in the marked invariant
// sites, so adding a counter without extending the cycle-accounting
// oracle or the equivalence battery is a compile-gate failure, not a
// silent coverage gap.
//
// Two obligations:
//
//  1. In the defining package, every Stats field must be an exported,
//     flat value type (integers, booleans, arrays/structs of such).
//     Reference types would make the whole-struct `!=` comparisons in
//     the bit-identity proofs shallow and therefore meaningless.
//
//  2. Every function marked `//cccheck:stats(sum)` or
//     `//cccheck:stats(compare)` must cover all Stats fields: either a
//     whole-struct comparison (which covers everything at once) or a
//     per-field mention of each one. A field the marked site never
//     touches is reported by name.
var StatsComplete = &analysis.Analyzer{
	Name:     "statscomplete",
	Doc:      "prove every cpu.Stats field is covered by the marked sum-invariant and equivalence-comparison sites",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStatsComplete,
}

func init() {
	StatsComplete.Flags.Init("statscomplete", flag.ExitOnError)
	StatsComplete.Flags.String("type", "repro/internal/cpu.Stats",
		"fully qualified stats struct (pkgpath.TypeName) the completeness proof is about")
}

var statsMarkRe = regexp.MustCompile(`^//cccheck:stats\((sum|compare)\)\s*(.*)$`)

// statsMark returns the directive kind on a function's doc comment, or
// "".
func statsMark(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		if m := statsMarkRe.FindStringSubmatch(c.Text); m != nil {
			return m[1]
		}
	}
	return ""
}

// resolveStats finds the named stats struct from the analyzed package's
// view: its own scope if it is the defining package, otherwise the
// transitive import graph (a stats alias re-exported through the root
// package still resolves to the defining type).
func resolveStats(pkg *types.Package, pkgPath, typeName string) (*types.Named, *types.Struct) {
	lookup := func(p *types.Package) (*types.Named, *types.Struct) {
		obj := p.Scope().Lookup(typeName)
		if obj == nil {
			return nil, nil
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil, nil
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return nil, nil
		}
		return named, st
	}
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == pkgPath {
			return p
		}
		for _, imp := range p.Imports() {
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	if found := find(pkg); found != nil {
		return lookup(found)
	}
	return nil, nil
}

// flatType reports whether t has pure value semantics — comparing two
// values compares every bit of simulator state they carry.
func flatType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsBoolean|types.IsFloat|types.IsString) != 0
	case *types.Array:
		return flatType(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !flatType(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

func runStatsComplete(pass *analysis.Pass) (interface{}, error) {
	full := pass.Analyzer.Flags.Lookup("type").Value.String()
	dot := strings.LastIndex(full, ".")
	if dot < 0 {
		return nil, fmt.Errorf("statscomplete: bad -type %q", full)
	}
	pkgPath, typeName := full[:dot], full[dot+1:]

	named, st := resolveStats(pass.Pkg, pkgPath, typeName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Obligation 1: in the defining package, the struct itself.
	if named != nil && pass.Pkg.Path() == pkgPath {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				pass.Reportf(f.Pos(), "%s field %s is unexported: the equivalence battery compares %s across packages, so every counter must be visible", typeName, f.Name(), typeName)
			}
			if !flatType(f.Type()) {
				pass.Reportf(f.Pos(), "%s field %s has reference type %s: whole-struct bit-identity comparisons would be shallow", typeName, f.Name(), f.Type())
			}
		}
	}

	// Obligation 2: marked functions cover every field.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		kind := statsMark(fd)
		if kind == "" || fd.Body == nil {
			return
		}
		if named == nil {
			pass.Reportf(fd.Pos(), "//cccheck:stats(%s) on %s but %s is not visible from package %s", kind, fd.Name.Name, full, pass.Pkg.Path())
			return
		}
		covered := map[string]bool{}
		whole := false
		isStats := func(e ast.Expr) bool {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok {
				return false
			}
			t := tv.Type
			if p, okp := t.(*types.Pointer); okp {
				t = p.Elem()
			}
			nn, okn := t.(*types.Named)
			return okn && nn.Obj() == named.Obj()
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if isStats(n.X) {
					covered[n.Sel.Name] = true
				}
			case *ast.BinaryExpr:
				// A whole-struct == / != covers every field at once.
				if (n.Op.String() == "==" || n.Op.String() == "!=") && (isStats(n.X) || isStats(n.Y)) {
					whole = true
				}
			case *ast.CompositeLit:
				if isStats(n) {
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								covered[id.Name] = true
							}
						}
					}
				}
			}
			return true
		})
		if whole {
			return
		}
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); !covered[f.Name()] {
				missing = append(missing, f.Name())
			}
		}
		sort.Strings(missing)
		if len(missing) > 0 {
			pass.Reportf(fd.Pos(), "stats(%s) site %s does not cover %s field(s) %s: a counter outside this site silently escapes the bit-identity proofs", kind, fd.Name.Name, typeName, strings.Join(missing, ", "))
		}
	})
	return nil, nil
}
