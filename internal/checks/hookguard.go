package checks

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Default hook surface: the optional observation points threaded
// through the simulator. A nil hook must cost one pointer compare, so
// every invocation must be dominated by a nil check on the same
// selector path.
const (
	defaultHookFields = "Tel,Obs,OnBurst,OnResolve,Trace,Prof,OnCommit"
	defaultHookTypes  = "TelemetrySink,Observer,Profiler"
)

// HookGuard proves that every call through a telemetry/observer hook
// field is dominated by a nil check of that exact selector. Recognised
// dominators:
//
//	if x.Hook != nil { x.Hook(...) }            // guard block
//	if x.Hook == nil { return }; x.Hook(...)    // early exit
//	h := x.Hook; if h != nil { h(...) }         // local alias
//
// Assigning to the hook (or to any prefix of the selector path)
// invalidates the guard from that point on.
var HookGuard = &analysis.Analyzer{
	Name:     "hookguard",
	Doc:      "require every telemetry/observer hook invocation to be nil-check dominated",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHookGuard,
}

func init() {
	HookGuard.Flags.Init("hookguard", flag.ExitOnError)
	HookGuard.Flags.String("fields", defaultHookFields,
		"comma-separated struct field names treated as hooks")
	HookGuard.Flags.String("types", defaultHookTypes,
		"comma-separated named interface types treated as hooks")
}

func csvSet(s string) map[string]bool {
	m := map[string]bool{}
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			m[e] = true
		}
	}
	return m
}

type hookChecker struct {
	pass    *analysis.Pass
	allow   allowIndex
	fields  map[string]bool
	types   map[string]bool
	aliases map[string]bool // local idents bound to a hook value
}

func runHookGuard(pass *analysis.Pass) (interface{}, error) {
	hc := &hookChecker{
		pass:   pass,
		allow:  buildAllowIndex(pass),
		fields: csvSet(pass.Analyzer.Flags.Lookup("fields").Value.String()),
		types:  csvSet(pass.Analyzer.Flags.Lookup("types").Value.String()),
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		hc.aliases = map[string]bool{}
		hc.walkStmts(fd.Body.List, map[string]bool{})
	})
	return nil, nil
}

// isHookType reports whether t is (or points to) a named type whose
// name is in the hook-type set, or a func type reached through a hook
// field.
func (hc *hookChecker) isHookType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return hc.types[n.Obj().Name()]
	}
	return false
}

// hookSelector returns the selector string to be nil-checked if call
// invokes a hook, or "" otherwise.
func (hc *hookChecker) hookSelector(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Direct call of a local func value: a hook only if aliased
		// from a hook field.
		if hc.aliases[fun.Name] {
			return fun.Name
		}
	case *ast.SelectorExpr:
		// x.F(...) — F is a func-typed hook field (by name, or by a
		// named hook type).
		if obj, ok := hc.pass.TypesInfo.Uses[fun.Sel].(*types.Var); ok && obj.IsField() {
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc &&
				(hc.fields[fun.Sel.Name] || hc.isHookType(obj.Type())) {
				return selectorString(fun)
			}
		}
		// x.F.M(...) or h.M(...) — method call through an
		// interface-typed hook field or a local alias of one.
		if _, isMethod := hc.pass.TypesInfo.Uses[fun.Sel].(*types.Func); isMethod {
			switch r := ast.Unparen(fun.X).(type) {
			case *ast.SelectorExpr:
				if obj, ok := hc.pass.TypesInfo.Uses[r.Sel].(*types.Var); ok && obj.IsField() &&
					(hc.fields[r.Sel.Name] || hc.isHookType(obj.Type())) {
					return selectorString(r)
				}
			case *ast.Ident:
				if hc.aliases[r.Name] {
					return r.Name
				}
			}
		}
	}
	return ""
}

// hookValue reports whether e reads a hook field or alias, for alias
// tracking on assignment.
func (hc *hookChecker) hookValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if obj, ok := hc.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && obj.IsField() {
			if hc.fields[x.Sel.Name] || hc.isHookType(obj.Type()) {
				return true
			}
		}
	case *ast.Ident:
		return hc.aliases[x.Name]
	}
	return false
}

// nilCompares extracts the selector strings compared against nil with
// the given operator, following && for != (conjunctive guards) and ||
// for == (disjunctive early exits).
func nilCompares(cond ast.Expr, op token.Token) []string {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	join := token.LAND
	if op == token.EQL {
		join = token.LOR
	}
	if b.Op == join {
		return append(nilCompares(b.X, op), nilCompares(b.Y, op)...)
	}
	if b.Op != op {
		return nil
	}
	var other ast.Expr
	if isNilIdent(b.X) {
		other = b.Y
	} else if isNilIdent(b.Y) {
		other = b.X
	} else {
		return nil
	}
	if s := selectorString(ast.Unparen(other)); s != "" {
		return []string{s}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always leaves the enclosing
// scope: return, branch, panic, or a runtime exit.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Goexit"
			}
		}
	}
	return false
}

func union(a map[string]bool, extra []string) map[string]bool {
	if len(extra) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(extra))
	for k := range a {
		out[k] = true
	}
	for _, k := range extra {
		out[k] = true
	}
	return out
}

// invalidate removes guards (and aliases) whose selector path starts
// with the assigned expression — writing to x or x.Hook voids any
// earlier nil check of x.Hook.
func (hc *hookChecker) invalidate(guarded map[string]bool, lhs ast.Expr) {
	s := selectorString(ast.Unparen(lhs))
	if s == "" {
		return
	}
	for k := range guarded {
		if k == s || strings.HasPrefix(k, s+".") {
			delete(guarded, k)
		}
	}
	delete(hc.aliases, s)
}

// checkExpr reports unguarded hook calls in an expression tree,
// descending into nested function literals (which inherit the guards
// of their construction site).
func (hc *hookChecker) checkExpr(e ast.Expr, guarded map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			hc.walkStmts(n.Body.List, guarded)
			return false
		case *ast.CallExpr:
			if sel := hc.hookSelector(n); sel != "" && !guarded[sel] {
				if !hc.allow.allowed(hc.pass.Fset, n.Pos(), "hook") &&
					!inTestFile(hc.pass.Fset, n.Pos()) {
					hc.pass.Reportf(n.Pos(), "hook call %s(...) is not dominated by a nil check of %s", sel, sel)
				}
			}
		}
		return true
	})
}

// walkStmts is the guard-tracking walker: a flow-insensitive-enough
// approximation that understands the three guard idioms and guard
// invalidation on assignment.
func (hc *hookChecker) walkStmts(stmts []ast.Stmt, guarded map[string]bool) {
	// Copy: guards established here must not leak to the caller.
	g := union(guarded, nil)
	if g == nil {
		g = map[string]bool{}
	}
	for _, s := range stmts {
		hc.walkStmt(s, g)
	}
}

func (hc *hookChecker) walkStmt(s ast.Stmt, g map[string]bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, g)
		}
		hc.checkExpr(s.Cond, g)
		hc.walkStmts(s.Body.List, union(g, nilCompares(s.Cond, token.NEQ)))
		if s.Else != nil {
			eg := union(g, nilCompares(s.Cond, token.EQL))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				hc.walkStmts(e.List, eg)
			case *ast.IfStmt:
				hc.walkStmt(e, eg)
			}
		}
		// `if x.Hook == nil { return }` guards the rest of the block.
		if terminates(s.Body) {
			for _, sel := range nilCompares(s.Cond, token.EQL) {
				g[sel] = true
			}
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			hc.checkExpr(r, g)
		}
		// Assignment invalidates stale guards/aliases first; then
		// `h := x.Hook` re-registers h as a hook reference.
		for _, l := range s.Lhs {
			hc.invalidate(g, l)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, l := range s.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && hc.hookValue(s.Rhs[i]) {
					hc.aliases[id.Name] = true
				}
			}
		}
	case *ast.BlockStmt:
		hc.walkStmts(s.List, g)
	case *ast.ForStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, g)
		}
		hc.checkExpr(s.Cond, g)
		hc.walkStmts(s.Body.List, g)
	case *ast.RangeStmt:
		hc.checkExpr(s.X, g)
		hc.walkStmts(s.Body.List, g)
	case *ast.SwitchStmt:
		if s.Init != nil {
			hc.walkStmt(s.Init, g)
		}
		hc.checkExpr(s.Tag, g)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cg := g
			// `switch { case x.Hook != nil: ... }` guards that body.
			if s.Tag == nil {
				for _, cond := range cc.List {
					cg = union(cg, nilCompares(cond, token.NEQ))
				}
			}
			for _, cond := range cc.List {
				hc.checkExpr(cond, g)
			}
			hc.walkStmts(cc.Body, cg)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			hc.walkStmts(c.(*ast.CaseClause).Body, g)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			if comm.Comm != nil {
				hc.walkStmt(comm.Comm, g)
			}
			hc.walkStmts(comm.Body, g)
		}
	case *ast.LabeledStmt:
		hc.walkStmt(s.Stmt, g)
	case *ast.ExprStmt:
		hc.checkExpr(s.X, g)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			hc.checkExpr(r, g)
		}
	case *ast.DeferStmt:
		hc.checkExpr(s.Call.Fun, g)
		for _, a := range s.Call.Args {
			hc.checkExpr(a, g)
		}
		if sel := hc.hookSelector(s.Call); sel != "" && !g[sel] {
			if !hc.allow.allowed(hc.pass.Fset, s.Call.Pos(), "hook") &&
				!inTestFile(hc.pass.Fset, s.Call.Pos()) {
				hc.pass.Reportf(s.Call.Pos(), "deferred hook call %s(...) is not dominated by a nil check of %s", sel, sel)
			}
		}
	case *ast.GoStmt:
		hc.checkExpr(s.Call.Fun, g)
		for _, a := range s.Call.Args {
			hc.checkExpr(a, g)
		}
	case *ast.SendStmt:
		hc.checkExpr(s.Chan, g)
		hc.checkExpr(s.Value, g)
	case *ast.IncDecStmt:
		hc.checkExpr(s.X, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						hc.checkExpr(v, g)
						if i < len(vs.Names) && hc.hookValue(v) {
							hc.aliases[vs.Names[i].Name] = true
						}
					}
				}
			}
		}
	}
}
