// Package checks is the repo's static contract enforcement: four
// go/analysis analyzers (detsafe, hookguard, poolonly, statscomplete)
// that prove, at compile time, the invariants the simulator's
// bit-identity and determinism guarantees rest on. cmd/cccheck is the
// driver; docs/static-analysis.md is the contract reference.
//
// Escape hatch: a site that intentionally breaks a rule carries an
// allow annotation on its own line or the line above:
//
//	//cccheck:allow(<check>) <reason>
//
// where <check> is one of det, hook, pool, stats and <reason> is a
// mandatory free-form justification. An annotation with a missing or
// empty reason does not suppress anything (and is itself reported), so
// every exemption in the tree is self-documenting.
package checks

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var allowRe = regexp.MustCompile(`^//cccheck:allow\((det|hook|pool|stats)\)\s*(.*)$`)

// allowSet records, per file line, which checks are suppressed there.
type allowSet map[int]map[string]bool

// allowIndex maps a filename to the lines its annotations cover.
type allowIndex map[string]allowSet

// buildAllowIndex scans every comment in the pass for allow
// annotations. An annotation covers its own line and the line below it
// (so it can trail the offending statement or sit on its own line just
// above). Malformed annotations — empty reason — are reported and
// suppress nothing.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	idx := allowIndex{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//cccheck:allow") {
						pass.Reportf(c.Pos(), "malformed cccheck annotation %q: want //cccheck:allow(det|hook|pool|stats) <reason>", c.Text)
					}
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					// Report at the line the annotation would have
					// covered, so the unsuppressed violation and the
					// missing-reason complaint land together.
					pos := c.Pos()
					if tf := pass.Fset.File(pos); tf != nil {
						if line := tf.Line(pos); line < tf.LineCount() {
							pos = tf.LineStart(line + 1)
						}
					}
					pass.Reportf(pos, "cccheck:allow(%s) without a reason: every exemption must say why", m[1])
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				set := idx[pos.Filename]
				if set == nil {
					set = allowSet{}
					idx[pos.Filename] = set
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if set[line] == nil {
						set[line] = map[string]bool{}
					}
					set[line][m[1]] = true
				}
			}
		}
	}
	return idx
}

// allowed reports whether the given check is suppressed at pos.
func (idx allowIndex) allowed(fset *token.FileSet, pos token.Pos, check string) bool {
	p := fset.Position(pos)
	set, ok := idx[p.Filename]
	if !ok {
		return false
	}
	return set[p.Line][check]
}

// inTestFile reports whether pos lies in a _test.go file. The
// concurrency and determinism contracts bind shipped code; tests may
// spin goroutines and read clocks freely.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// selectorString flattens a selector chain rooted at an identifier into
// a dotted path ("c.Tel", "m.OnBurst"). It returns "" for receivers
// that are not simple ident chains (calls, index expressions), which
// the guards cannot track.
func selectorString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selectorString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return selectorString(x.X)
	}
	return ""
}
