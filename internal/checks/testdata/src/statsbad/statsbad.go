// Package statsbad is the obligation-1 fixture: a stats struct whose
// shape already breaks the bit-identity proofs — reference-typed and
// unexported counters.
package statsbad

type Stats struct {
	Cycles  uint64
	Samples []uint64 // want `reference type`
	hidden  uint64   // want `unexported`
}
