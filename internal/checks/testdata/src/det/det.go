// Package det is the detsafe fixture: the deterministic-package
// contract, one violation and one sanctioned form per rule.
package det

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv in deterministic package`
}

func unseeded() int {
	return rand.Intn(10) // want `unseeded global source`
}

func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `unseeded global source`
}

// seeded derives randomness from an explicit seed: reproducible, allowed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// allowedClock carries an annotation: suppressed, but only with a reason.
func allowedClock() int64 {
	//cccheck:allow(det) fixture: host-axis timing example
	return time.Now().UnixNano()
}

func badAnnotation() int64 {
	//cccheck:allow(det)
	return time.Now().UnixNano() // want `time.Now in deterministic package` `without a reason`
}

func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration drives`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// emitSorted is the sanctioned idiom: collect keys, sort, then emit.
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// aggregate is order-insensitive map work: allowed.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
