// Package pool is the poolonly fixture: ad-hoc concurrency outside the
// ordered pool, plus the annotated infrastructure escape.
package pool

import "sync"

func rawGo() {
	go work() // want `raw go statement`
}

func handRolled() {
	var wg sync.WaitGroup // want `hand-rolled sync.WaitGroup`
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // want `raw go statement`
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

type runner struct {
	wg sync.WaitGroup // want `hand-rolled sync.WaitGroup`
}

func allowedGo() {
	//cccheck:allow(pool) fixture: infrastructure goroutine never observed by output
	go work()
}

func work() {}
