// Package detout is outside the deterministic set: the same calls that
// detsafe flags in package det must stay quiet here (CLIs may read
// clocks and environments for UX).
package detout

import (
	"os"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano()
}

func env() string {
	return os.Getenv("HOME")
}
