// Package stats is the statscomplete fixture: marked sites that cover
// the struct (whole-struct compare or every field) and marked sites
// with holes.
package stats

type Stats struct {
	Cycles   uint64
	Instrs   uint64
	ExcTotal uint64
	CPIStack [3]uint64
}

// sumOK mentions every field.
//
//cccheck:stats(sum)
func sumOK(s Stats) uint64 {
	return s.Cycles + s.Instrs + s.ExcTotal + s.CPIStack[0]
}

// sumMissing never touches ExcTotal or Instrs.
//
//cccheck:stats(sum)
func sumMissing(s Stats) uint64 { // want `does not cover Stats field\(s\) ExcTotal, Instrs`
	return s.Cycles + s.CPIStack[1]
}

// compareWhole covers everything through one struct comparison.
//
//cccheck:stats(compare)
func compareWhole(a, b Stats) bool { return a == b }

// compareFields compares selectively: the uncompared counters escape.
//
//cccheck:stats(compare)
func compareFields(a, b Stats) bool { // want `does not cover Stats field\(s\) CPIStack, ExcTotal`
	return a.Cycles == b.Cycles && a.Instrs == b.Instrs
}

// unmarked functions owe nothing.
func unmarked(s Stats) uint64 { return s.Cycles }
