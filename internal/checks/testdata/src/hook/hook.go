// Package hook is the hookguard fixture: every guard idiom the
// analyzer accepts and every unguarded shape it must flag.
package hook

// Sink is hook-shaped only through the field names below.
type Sink interface{ Event(x int) }

// Observer matches the hook-type set by name, whatever the field is
// called.
type Observer interface{ CacheMiss(set int) }

type Machine struct {
	Tel     Sink                    // hook by field name
	Custom  Observer                // hook by interface name
	OnBurst func(bytes, cycles int) // hook by field name (func-typed)
	plain   func()                  // not a hook: unguarded calls are fine
}

func (m *Machine) bad() {
	m.Tel.Event(1)        // want `not dominated by a nil check`
	m.OnBurst(4, 2)       // want `not dominated by a nil check`
	m.Custom.CacheMiss(0) // want `not dominated by a nil check`
	m.plain()
}

func (m *Machine) guarded() {
	if m.Tel != nil {
		m.Tel.Event(1)
	}
	if m.OnBurst != nil {
		m.OnBurst(4, 2)
	}
	if m.Custom != nil {
		m.Custom.CacheMiss(3)
	}
}

func (m *Machine) conjunction(on bool) {
	if on && m.OnBurst != nil {
		m.OnBurst(8, 1)
	}
}

func (m *Machine) earlyExit() {
	if m.OnBurst == nil {
		return
	}
	m.OnBurst(8, 3)
}

func (m *Machine) disjunctExit() {
	if m.Tel == nil || m.OnBurst == nil {
		return
	}
	m.Tel.Event(9)
	m.OnBurst(1, 1)
}

func (m *Machine) alias() {
	f := m.OnBurst
	if f != nil {
		f(1, 1)
	}
	s := m.Tel
	if s != nil {
		s.Event(5)
	}
}

func (m *Machine) aliasBad() {
	f := m.OnBurst
	f(1, 1) // want `not dominated by a nil check`
}

func (m *Machine) invalidated() {
	if m.OnBurst != nil {
		m.OnBurst = nil
		m.OnBurst(2, 2) // want `not dominated by a nil check`
	}
}

// wrongSelector: checking one hook does not license calling another.
func (m *Machine) wrongSelector() {
	if m.Tel != nil {
		m.OnBurst(3, 3) // want `not dominated by a nil check`
	}
}

func (m *Machine) switchGuard() {
	switch {
	case m.OnBurst != nil:
		m.OnBurst(6, 6)
	}
}

func (m *Machine) closureInherits() {
	if m.Tel != nil {
		run(func() { m.Tel.Event(7) })
	}
}

func (m *Machine) allowed() {
	m.Tel.Event(2) //cccheck:allow(hook) fixture: intentional direct call
}

func run(f func()) { f() }
