// Package parallelown stands in for internal/parallel itself: the one
// package allowed to own goroutines and WaitGroups. Run with
// -poolonly.pkg=parallelown, nothing here may be flagged.
package parallelown

import "sync"

func pool(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
