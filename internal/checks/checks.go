package checks

import "golang.org/x/tools/go/analysis"

// All is the cccheck suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{DetSafe, HookGuard, PoolOnly, StatsComplete}
}
