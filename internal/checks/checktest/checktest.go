// Package checktest is a self-contained analysistest equivalent: it
// loads a fixture package from a testdata directory, typechecks it
// against the standard library via the source importer (no network, no
// export data), runs one analyzer, and matches the diagnostics against
// `// want "regexp"` comments, analysistest-style.
//
// It exists because the full golang.org/x/tools/go/analysis/analysistest
// depends on go/packages, which is not vendored; the subset implemented
// here — one package per directory, inspect.Analyzer as the only
// prerequisite, expectations by line — is exactly what the cccheck
// fixtures need.
package checktest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture package in dir, applies the analyzer flags,
// runs a, and checks its diagnostics against the fixture's want
// comments. Flags are restored to their previous values afterwards so
// fixture runs do not leak configuration into each other.
func Run(t *testing.T, a *analysis.Analyzer, dir string, flags map[string]string) {
	t.Helper()

	restore := setFlags(t, a, flags)
	defer restore()

	fset := token.NewFileSet()
	files, src := parseDir(t, fset, dir)

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkgName := files[0].Name.Name
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(files),
		},
		Report:   func(d analysis.Diagnostic) { got = append(got, d) },
		ReadFile: os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}

	check(t, a.Name, fset, src, got)
}

// setFlags applies the flag overrides and returns a restorer.
func setFlags(t *testing.T, a *analysis.Analyzer, flags map[string]string) func() {
	t.Helper()
	prev := map[string]string{}
	for k, v := range flags {
		f := a.Flags.Lookup(k)
		if f == nil {
			t.Fatalf("%s: no flag %q", a.Name, k)
		}
		prev[k] = f.Value.String()
		if err := f.Value.Set(v); err != nil {
			t.Fatalf("%s: set -%s=%s: %v", a.Name, k, v, err)
		}
	}
	return func() {
		for k, v := range prev {
			a.Flags.Lookup(k).Value.Set(v)
		}
	}
}

// parseDir parses every .go file in dir (sorted for stable file order)
// and returns the ASTs plus raw sources keyed by filename.
func parseDir(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	src := map[string][]byte{}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, data, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		src[name] = data
	}
	return files, src
}

// check matches diagnostics against want expectations line by line.
func check(t *testing.T, name string, fset *token.FileSet, src map[string][]byte, got []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for file, data := range src {
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range splitQuoted(t, file, i+1, m[1]) {
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, q, err)
				}
				wants[key{file, i + 1}] = append(wants[key{file, i + 1}], re)
			}
		}
	}

	matched := map[key][]bool{}
	for _, d := range got {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		res := wants[k]
		if res == nil {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, pos.Filename, pos.Line, d.Message)
			continue
		}
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: diagnostic at %s:%d matched no want pattern: %s", name, pos.Filename, pos.Line, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", name, re, k.file, k.line)
			}
		}
	}
}

// splitQuoted extracts the double-quoted or backquoted segments of a
// want comment tail.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			break // trailing non-quoted text (e.g. explanatory prose)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern: %s", file, line, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			u, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, raw, err)
			}
			out = append(out, u)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted pattern", file, line)
	}
	return out
}
