package checks

import (
	"flag"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// defaultDetPkgs is the deterministic core: every package whose output
// feeds a bit-identity proof (the equivalence battery, the diffsim
// lockstep, the ccbench sim axis, the emitter byte-identity battery).
// Matched as path suffixes/segments against the package import path.
const defaultDetPkgs = "repro," +
	"internal/cpu,internal/cache,internal/mem,internal/bpred," +
	"internal/decomp,internal/isa,internal/program,internal/diffsim," +
	"internal/telemetry,internal/experiment,internal/perfwatch," +
	"internal/profile,internal/fastpath," +
	"internal/core,internal/verify,internal/selective,internal/placement," +
	"internal/compress,internal/synth,internal/trace,internal/parallel," +
	"internal/asm,internal/minic,internal/analysis,internal/codec"

// DetSafe reports sources of run-to-run nondeterminism inside the
// deterministic packages: time.Now, environment reads, the unseeded
// global math/rand source, and map iteration that writes to an output
// stream. perfwatch's host-timing axis is the one legitimate clock
// consumer; its sites carry //cccheck:allow(det) annotations.
var DetSafe = &analysis.Analyzer{
	Name: "detsafe",
	Doc: "forbid time.Now, os.Getenv, unseeded math/rand, and map-ordered output " +
		"in the deterministic simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetSafe,
}

func init() {
	DetSafe.Flags.Init("detsafe", flag.ExitOnError)
	DetSafe.Flags.String("pkgs", defaultDetPkgs,
		"comma-separated package path suffixes bound by the determinism contract")
}

// detPkgBound reports whether path falls under the determinism
// contract per the pkgs flag.
func detPkgBound(path, pkgs string) bool {
	for _, e := range strings.Split(pkgs, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if path == e || strings.HasSuffix(path, "/"+e) || strings.Contains(path, "/"+e+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call to the *types.Func it invokes (static
// calls and method calls; nil for calls through function values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func runDetSafe(pass *analysis.Pass) (interface{}, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	if !detPkgBound(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	allow := buildAllowIndex(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	report := func(n ast.Node, format string, args ...interface{}) {
		if inTestFile(pass.Fset, n.Pos()) || allow.allowed(pass.Fset, n.Pos(), "det") {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(pass.TypesInfo, n)
			if f == nil || f.Pkg() == nil {
				return
			}
			switch f.Pkg().Path() {
			case "time":
				if f.Name() == "Now" {
					report(n, "time.Now in deterministic package %s: host clocks may not influence simulated output", pass.Pkg.Path())
				}
			case "os":
				switch f.Name() {
				case "Getenv", "LookupEnv", "Environ":
					report(n, "os.%s in deterministic package %s: environment reads make runs irreproducible", f.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; only explicit rand.New(rand.NewSource(seed))
				// constructions are reproducible. Constructors are fine.
				if f.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(f.Name(), "New") {
					report(n, "%s.%s uses the unseeded global source; derive a *rand.Rand from an explicit seed", f.Pkg().Path(), f.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if out := findOutputWrite(pass.TypesInfo, n.Body); out != nil {
				report(n, "map iteration drives %s: map order is nondeterministic, so emitted bytes differ between runs; iterate sorted keys", outputDesc(pass.TypesInfo, out))
			}
		}
	})
	return nil, nil
}

// findOutputWrite returns the first node inside body that emits bytes to
// an output stream — a call to fmt.Fprint*, a Write*/Print*/Encode*/Emit*
// method, or a channel send. Pure aggregation (sums, building maps,
// collecting keys for a later sort) is not flagged.
func findOutputWrite(info *types.Info, body *ast.BlockStmt) (found ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = n
			return false
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if f == nil {
				return true
			}
			if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint") {
				found = n
				return false
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				for _, p := range []string{"Write", "Print", "Encode", "Emit"} {
					if strings.HasPrefix(f.Name(), p) {
						found = n
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func outputDesc(info *types.Info, n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "a channel send"
	case *ast.CallExpr:
		if f := calleeFunc(info, n); f != nil {
			return "a call to " + f.Name()
		}
	}
	return "an output write"
}
