package checks

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PoolOnly flags raw `go` statements and hand-rolled sync.WaitGroup
// fan-out outside internal/parallel. The ordered pool is the only
// concurrency primitive whose delivery order is proven deterministic
// (byte-identical output for any worker count); ad-hoc goroutines
// reintroduce scheduling order as an observable. Infrastructure
// goroutines that never touch simulated output (an expvar HTTP server,
// a timeout watchdog) carry //cccheck:allow(pool) annotations.
var PoolOnly = &analysis.Analyzer{
	Name:     "poolonly",
	Doc:      "route all concurrency through the internal/parallel ordered pool",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolOnly,
}

func init() {
	PoolOnly.Flags.Init("poolonly", flag.ExitOnError)
	PoolOnly.Flags.String("pkg", "repro/internal/parallel",
		"import path of the package allowed to own goroutines and WaitGroups")
}

func runPoolOnly(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == pass.Analyzer.Flags.Lookup("pkg").Value.String() {
		return nil, nil
	}
	allow := buildAllowIndex(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	report := func(n ast.Node, format string, args ...interface{}) {
		if inTestFile(pass.Fset, n.Pos()) || allow.allowed(pass.Fset, n.Pos(), "pool") {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil), (*ast.Ident)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n, "raw go statement outside internal/parallel: fan out through parallel.ForEachOrdered/Map so delivery order stays deterministic")
		case *ast.Ident:
			// A declaration whose type is sync.WaitGroup (directly or
			// behind a pointer) is hand-rolled fan-out plumbing.
			obj, ok := pass.TypesInfo.Defs[n].(*types.Var)
			if !ok {
				return
			}
			if isWaitGroup(obj.Type()) {
				report(n, "hand-rolled sync.WaitGroup outside internal/parallel: use the ordered pool instead")
			}
		}
	})
	return nil, nil
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
