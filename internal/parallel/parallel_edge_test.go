package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestEdgeZeroItems: an empty index range is a no-op for both
// primitives — no compute, no deliver, no goroutines, nil error, and
// Map returns an empty (non-nil semantics irrelevant) slice.
func TestEdgeZeroItems(t *testing.T) {
	for _, workers := range []int{-1, 1, 4} {
		err := ForEachOrdered(workers, 0,
			func(i int) (int, error) { t.Error("compute called"); return 0, nil },
			func(i int, v int, err error) error { t.Error("deliver called"); return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := Map(workers, 0, func(i int) (int, error) {
			t.Error("compute called")
			return 0, nil
		})
		if err != nil || len(out) != 0 {
			t.Fatalf("workers=%d: Map over 0 items = (%v, %v)", workers, out, err)
		}
	}
}

// TestEdgeWorkersExceedItems: asking for far more workers than items
// must clamp rather than spin up idle goroutines, and the ordered
// contract must hold unchanged.
func TestEdgeWorkersExceedItems(t *testing.T) {
	const n = 3
	if got := Workers(64, n); got != n {
		t.Fatalf("Workers(64, %d) = %d, want %d", n, got, n)
	}
	var delivered []int
	err := ForEachOrdered(64, n,
		func(i int) (int, error) { jitter(i); return i * 10, nil },
		func(i int, v int, err error) error {
			if err != nil || v != i*10 {
				return fmt.Errorf("index %d: (%d, %v)", i, v, err)
			}
			delivered = append(delivered, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != n {
		t.Fatalf("delivered %v, want 0..%d", delivered, n-1)
	}
	for want, got := range delivered {
		if got != want {
			t.Fatalf("delivered %v out of order", delivered)
		}
	}
}

// TestEdgeWorkersOneEquivalence: the serial fast path and the pooled
// path must be observationally identical — same values, same delivery
// order, same error — so workers=1 is the reference semantics every
// other worker count is measured against.
func TestEdgeWorkersOneEquivalence(t *testing.T) {
	const n = 40
	run := func(workers int) (vals []int, order []int, err error) {
		err = ForEachOrdered(workers, n,
			func(i int) (int, error) {
				jitter(i)
				if i%13 == 7 {
					return 0, fmt.Errorf("compute@%d", i)
				}
				return i*3 + 1, nil
			},
			func(i int, v int, cerr error) error {
				order = append(order, i)
				if cerr != nil {
					vals = append(vals, -1)
					return nil
				}
				vals = append(vals, v)
				return nil
			})
		return vals, order, err
	}
	refVals, refOrder, refErr := run(1)
	if refErr != nil {
		t.Fatal(refErr)
	}
	for _, workers := range []int{2, 4, 16} {
		vals, order, err := run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(vals) != len(refVals) || len(order) != len(refOrder) {
			t.Fatalf("workers=%d: %d deliveries, serial made %d", workers, len(order), len(refOrder))
		}
		for k := range refVals {
			if vals[k] != refVals[k] || order[k] != refOrder[k] {
				t.Fatalf("workers=%d: delivery %d = (idx %d, val %d), serial (idx %d, val %d)",
					workers, k, order[k], vals[k], refOrder[k], refVals[k])
			}
		}
	}
}

// TestEdgePanicPropagation: a panic in a worker's compute must not
// kill the process; it re-raises on the calling goroutine with the
// original panic value, after delivering exactly the prefix below the
// panicking index — the same observable behaviour for every worker
// count, serial fast path included.
func TestEdgePanicPropagation(t *testing.T) {
	const n, panicAt = 24, 9
	for _, workers := range []int{1, 4, n} {
		var delivered []int
		got := func() (p any) {
			defer func() { p = recover() }()
			ForEachOrdered(workers, n,
				func(i int) (int, error) {
					jitter(i)
					if i == panicAt {
						panic(fmt.Sprintf("compute exploded at %d", i))
					}
					return i, nil
				},
				func(i int, v int, err error) error {
					delivered = append(delivered, i)
					return nil
				})
			return nil
		}()
		want := fmt.Sprintf("compute exploded at %d", panicAt)
		if got != want {
			t.Fatalf("workers=%d: recovered %v, want %q", workers, got, want)
		}
		if len(delivered) != panicAt {
			t.Fatalf("workers=%d: delivered %v, want exactly 0..%d", workers, delivered, panicAt-1)
		}
		for k, idx := range delivered {
			if idx != k {
				t.Fatalf("workers=%d: delivered %v out of order", workers, delivered)
			}
		}
	}
}

// TestEdgePanicLowestIndexWins: when several computes panic, the one
// re-raised is the lowest-index one regardless of which worker hit it
// first — the panic analogue of Map's lowest-index error rule.
func TestEdgePanicLowestIndexWins(t *testing.T) {
	const n = 30
	for _, workers := range []int{2, 8} {
		var computed atomic.Int32
		got := func() (p any) {
			defer func() { p = recover() }()
			ForEachOrdered(workers, n,
				func(i int) (int, error) {
					computed.Add(1)
					jitter(n - i) // later indices finish first
					if i == 5 || i == 21 {
						panic(fmt.Sprintf("panic@%d", i))
					}
					return i, nil
				},
				func(i int, v int, err error) error { return nil })
			return nil
		}()
		if got != "panic@5" {
			t.Fatalf("workers=%d: recovered %v, want panic@5", workers, got)
		}
		if computed.Load() != n {
			t.Fatalf("workers=%d: computed %d of %d before re-raise", workers, computed.Load(), n)
		}
	}
}
