package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// jitter stalls a compute call by an index-derived amount so completion
// order differs from index order without any randomness.
func jitter(i int) {
	time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
}

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, min, max int
	}{
		{1, 10, 1, 1},
		{4, 10, 4, 4},
		{4, 2, 2, 2},  // clamped to n
		{8, 0, 1, 1},  // never below 1
		{-3, 1, 1, 1}, // <=0 means GOMAXPROCS, then clamped to n
		{0, 1, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.requested, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]", c.requested, c.n, got, c.min, c.max)
		}
	}
	if got := Workers(0, 100); got < 1 {
		t.Errorf("Workers(0, 100) = %d", got)
	}
}

// TestForEachOrderedDelivery checks the core contract for a spread of
// worker counts: every index delivered exactly once, in strictly
// ascending order, with the value its compute produced — regardless of
// the scheduling order the jitter provokes.
func TestForEachOrderedDelivery(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 8, n + 5} {
		next := 0
		err := ForEachOrdered(workers, n,
			func(i int) (int, error) {
				jitter(i)
				return i * i, nil
			},
			func(i int, v int, err error) error {
				if err != nil {
					return err
				}
				if i != next {
					return fmt.Errorf("delivered index %d, want %d", i, next)
				}
				if v != i*i {
					return fmt.Errorf("index %d delivered %d, want %d", i, v, i*i)
				}
				next++
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != n {
			t.Fatalf("workers=%d: delivered %d of %d", workers, next, n)
		}
	}
}

// TestForEachOrderedStop checks that ErrStop yields a deterministic
// prefix: everything below the stop index delivered, nothing above it.
func TestForEachOrderedStop(t *testing.T) {
	const n, stopAt = 50, 11
	for _, workers := range []int{1, 4} {
		var delivered []int
		err := ForEachOrdered(workers, n,
			func(i int) (int, error) { jitter(i); return i, nil },
			func(i int, v int, err error) error {
				delivered = append(delivered, i)
				if i == stopAt {
					return ErrStop
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: ErrStop leaked: %v", workers, err)
		}
		if len(delivered) != stopAt+1 {
			t.Fatalf("workers=%d: delivered %v, want exactly 0..%d", workers, delivered, stopAt)
		}
		for want, got := range delivered {
			if got != want {
				t.Fatalf("workers=%d: delivered %v out of order", workers, delivered)
			}
		}
	}
}

// TestForEachOrderedError checks that a deliver error cancels the run
// and is returned, and that cancellation stops feeding compute
// eventually (no goroutine runs every remaining index).
func TestForEachOrderedError(t *testing.T) {
	boom := errors.New("boom")
	const n, failAt = 40, 7
	for _, workers := range []int{1, 4} {
		var computed atomic.Int32
		var last int = -1
		err := ForEachOrdered(workers, n,
			func(i int) (int, error) {
				computed.Add(1)
				jitter(i)
				return i, nil
			},
			func(i int, v int, err error) error {
				last = i
				if i == failAt {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if last != failAt {
			t.Fatalf("workers=%d: delivery continued past the error (last %d)", workers, last)
		}
		if workers == 1 && computed.Load() != failAt+1 {
			t.Fatalf("serial path computed %d indices, want %d", computed.Load(), failAt+1)
		}
	}
}

// TestForEachOrderedComputeError checks that compute errors reach
// deliver attached to their index.
func TestForEachOrderedComputeError(t *testing.T) {
	bad := errors.New("bad index")
	for _, workers := range []int{1, 4} {
		var gotErrs []int
		err := ForEachOrdered(workers, 20,
			func(i int) (int, error) {
				if i%5 == 0 {
					return 0, bad
				}
				return i, nil
			},
			func(i int, v int, err error) error {
				if err != nil {
					if !errors.Is(err, bad) {
						return fmt.Errorf("index %d: unexpected error %v", i, err)
					}
					gotErrs = append(gotErrs, i)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int{0, 5, 10, 15}
		if len(gotErrs) != len(want) {
			t.Fatalf("workers=%d: errors at %v, want %v", workers, gotErrs, want)
		}
		for k := range want {
			if gotErrs[k] != want[k] {
				t.Fatalf("workers=%d: errors at %v, want %v", workers, gotErrs, want)
			}
		}
	}
}

// TestForEachOrderedZero checks the empty range is a no-op.
func TestForEachOrderedZero(t *testing.T) {
	err := ForEachOrdered(4, 0,
		func(i int) (int, error) { t.Fatal("compute called"); return 0, nil },
		func(i int, v int, err error) error { t.Fatal("deliver called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapDeterministic demands bit-identical result slices for every
// worker count — the contract the sharded experiment engine rests on.
func TestMapDeterministic(t *testing.T) {
	const n = 128
	compute := func(i int) (uint64, error) {
		jitter(i)
		// A deterministic per-index mix, standing in for a simulation.
		h := uint64(i)*0x9E3779B97F4A7C15 + 1
		h ^= h >> 29
		return h, nil
	}
	ref, err := Map(1, n, compute)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(workers, n, compute)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %#x, serial %#x", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMapLowestIndexError checks that Map's error is the lowest-index
// one no matter which worker hits its error first, and that every index
// is still computed.
func TestMapLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var computed atomic.Int32
		_, err := Map(workers, 30, func(i int) (int, error) {
			computed.Add(1)
			jitter(30 - i) // later indices finish first
			if i == 3 || i == 20 {
				return 0, fmt.Errorf("fail@%d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
		if computed.Load() != 30 {
			t.Fatalf("workers=%d: computed %d of 30", workers, computed.Load())
		}
	}
}
