// Package parallel provides the deterministic worker-pool primitives
// the experiment engine is sharded on: fan a fixed index range across
// GOMAXPROCS goroutines while guaranteeing that results are observed in
// index order, regardless of completion order. The contract every
// caller relies on (and the -race tests enforce):
//
//   - compute functions receive only their index and must derive all
//     per-shard state (seeds, workload names) from it, never from
//     shared mutable state or the scheduling order;
//   - results and side effects (log lines, JSONL findings, samples)
//     are delivered on the calling goroutine in strictly ascending
//     index order, so output produced with N workers is byte-identical
//     to output produced with 1;
//   - early stop (ErrStop) yields a deterministic prefix: every index
//     below the stopping one is delivered, none above it is.
//
// Shared inputs (compressed images, workload registries) must be
// treated as read-only by compute functions; the package adds no
// locking around them.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrStop is returned by a ForEachOrdered deliver callback to stop the
// run early. The call then returns nil after cancelling the remaining
// indices: deliveries form a deterministic prefix of the index range.
var ErrStop = errors.New("parallel: stop")

// Workers resolves a worker-count request: values <= 0 mean
// runtime.GOMAXPROCS(0), and the count is clamped to n (no point
// spinning up idle goroutines for fewer items).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// item carries one computed result to the coordinator.
type item[T any] struct {
	idx int
	val T
	err error
	pan *panicked
}

// panicked captures a compute panic on a worker goroutine so it can be
// re-raised deterministically on the calling goroutine.
type panicked struct {
	val any
}

// ForEachOrdered computes fn(0..n-1) on `workers` goroutines (<= 0 =
// GOMAXPROCS) and calls deliver on the calling goroutine in strictly
// ascending index order. compute runs concurrently and must be safe
// w.r.t. other compute calls; deliver never runs concurrently with
// itself.
//
// If deliver returns ErrStop, remaining computations are cancelled
// (already-started ones finish and are discarded) and ForEachOrdered
// returns nil. Any other deliver error cancels the same way and is
// returned. compute errors are passed to deliver, which decides
// whether they stop the run.
//
// A panic in compute propagates to the calling goroutine with the
// same determinism contract as everything else: deliveries form the
// exact prefix below the lowest panicking index, then the original
// panic value is re-raised — identical behaviour for every worker
// count. A panic in deliver propagates immediately (deliver already
// runs on the calling goroutine).
func ForEachOrdered[T any](workers, n int, compute func(i int) (T, error), deliver func(i int, v T, err error) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers, n)
	if w == 1 {
		// Serial fast path: identical semantics, no goroutines, so the
		// 1-worker configuration is trivially the reference behaviour.
		for i := 0; i < n; i++ {
			v, err := compute(i)
			if derr := deliver(i, v, err); derr != nil {
				if errors.Is(derr, ErrStop) {
					return nil
				}
				return derr
			}
		}
		return nil
	}

	var stopped atomic.Bool
	jobs := make(chan int)
	results := make(chan item[T], w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopped.Load() {
					// Cancelled: report a zero value so the coordinator
					// can keep its bookkeeping; it discards everything
					// past the stop index anyway.
					var zero T
					results <- item[T]{idx: i, val: zero, err: ErrStop}
					continue
				}
				results <- runCompute(compute, i)
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: deliver strictly in index order.
	pending := make(map[int]item[T], w)
	next := 0
	var firstErr error
	var firstPan *panicked
	for it := range results {
		pending[it.idx] = it
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if stopped.Load() || errors.Is(cur.err, ErrStop) {
				continue // draining after cancellation
			}
			if cur.pan != nil {
				// In-order processing makes the first panic seen the
				// lowest-index one; deliveries cease here and the
				// panic re-raises after the pool drains.
				if firstPan == nil {
					firstPan = cur.pan
				}
				continue
			}
			if firstPan != nil {
				continue // no deliveries past a panicking index
			}
			if derr := deliver(cur.idx, cur.val, cur.err); derr != nil {
				stopped.Store(true)
				if !errors.Is(derr, ErrStop) && firstErr == nil {
					firstErr = derr
				}
			}
		}
	}
	if firstPan != nil {
		panic(firstPan.val)
	}
	return firstErr
}

// runCompute invokes compute(i), converting a panic into an item the
// coordinator can re-raise in index order.
func runCompute[T any](compute func(i int) (T, error), i int) (it item[T]) {
	defer func() {
		if p := recover(); p != nil {
			it = item[T]{idx: i, pan: &panicked{val: p}}
		}
	}()
	v, err := compute(i)
	return item[T]{idx: i, val: v, err: err}
}

// ForEachOrderedProgress is ForEachOrdered with a progress callback:
// after each successful in-order delivery, progress(delivered, n) runs
// on the calling goroutine. progress is observability-only — it must
// not influence results — and a nil progress degrades to the plain
// variant. Cancelled or discarded indices (after ErrStop/panic) are not
// reported, so the progress sequence is as deterministic as the
// delivery prefix.
func ForEachOrderedProgress[T any](workers, n int, compute func(i int) (T, error), deliver func(i int, v T, err error) error, progress func(done, total int)) error {
	if progress == nil {
		return ForEachOrdered(workers, n, compute, deliver)
	}
	return ForEachOrdered(workers, n, compute, func(i int, v T, err error) error {
		derr := deliver(i, v, err)
		if derr == nil {
			progress(i+1, n)
		}
		return derr
	})
}

// Map computes fn(0..n-1) on `workers` goroutines (<= 0 = GOMAXPROCS)
// and returns the results in index order. Every index is computed even
// when some fail; the returned error is the lowest-index one, so the
// outcome is independent of scheduling. Deterministic compute functions
// therefore produce bit-identical result slices for every worker count.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var firstErr error
	err := ForEachOrdered(workers, n, fn, func(i int, v T, err error) error {
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return nil
	})
	if firstErr == nil {
		firstErr = err
	}
	return out, firstErr
}

// MapProgress is Map with a progress callback invoked on the calling
// goroutine after each in-order result lands (including failed ones —
// Map computes every index). nil progress degrades to Map.
func MapProgress[T any](workers, n int, fn func(i int) (T, error), progress func(done, total int)) ([]T, error) {
	if progress == nil {
		return Map(workers, n, fn)
	}
	out := make([]T, n)
	var firstErr error
	err := ForEachOrdered(workers, n, fn, func(i int, v T, err error) error {
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
		progress(i+1, n)
		return nil
	})
	if firstErr == nil {
		firstErr = err
	}
	return out, firstErr
}
