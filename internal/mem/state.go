package mem

import (
	"fmt"
	"sort"
)

// PageState is one backed 64KB page of the serialised memory image.
type PageState struct {
	Index uint32 `json:"index"` // page index (addr >> pageShift)
	Data  []byte `json:"data"`
}

// State is a serialisable snapshot of a Memory: every backed page plus
// the bus traffic counters. Pages are sorted by index so the encoding
// is deterministic. The bus configuration and OnBurst hook are not part
// of the state — they belong to the machine configuration.
type State struct {
	Pages     []PageState `json:"pages"`
	Reads     uint64      `json:"reads"`
	BytesRead uint64      `json:"bytes_read"`
}

// Snapshot captures a deep copy of the memory contents and counters.
func (m *Memory) Snapshot() State {
	st := State{Reads: m.Reads, BytesRead: m.BytesRead}
	for idx, p := range m.pages {
		data := make([]byte, len(p))
		copy(data, p)
		st.Pages = append(st.Pages, PageState{Index: idx, Data: data})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].Index < st.Pages[j].Index })
	return st
}

// Restore replaces the memory contents and counters with the snapshot.
// The page cache is cleared (it is a pure cache over the page map).
func (m *Memory) Restore(st State) error {
	m.pages = make(map[uint32][]byte, len(st.Pages))
	for _, p := range st.Pages {
		if len(p.Data) != pageSize {
			return fmt.Errorf("mem: page %#x has %d bytes, want %d", p.Index, len(p.Data), pageSize)
		}
		data := make([]byte, pageSize)
		copy(data, p.Data)
		m.pages[p.Index] = data
	}
	m.pcache = [8]pageSlot{}
	m.Reads = st.Reads
	m.BytesRead = st.BytesRead
	return nil
}
