package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/program"
)

func TestBurstCycles(t *testing.T) {
	bus := DefaultBus()
	cases := []struct{ n, want int }{
		{0, 0}, {1, 10}, {8, 10}, {9, 12}, {16, 12}, {32, 16}, {64, 24},
	}
	for _, c := range cases {
		if got := bus.BurstCycles(c.n); got != c.want {
			t.Errorf("BurstCycles(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(DefaultBus())
	m.WriteWord(0x1000, 0xDEADBEEF)
	if m.ReadWord(0x1000) != 0xDEADBEEF {
		t.Fatal("word round trip")
	}
	if m.LoadByte(0x1000) != 0xEF || m.LoadByte(0x1003) != 0xDE {
		t.Fatal("little endian layout")
	}
	m.WriteHalf(0x2000, 0xBEAD)
	if m.ReadHalf(0x2000) != 0xBEAD {
		t.Fatal("half round trip")
	}
	if m.ReadWord(0x99999000) != 0 {
		t.Fatal("unbacked reads zero")
	}
	if m.Backed(0x99999000) {
		t.Fatal("unbacked page reported backed")
	}
	if !m.Backed(0x1000) {
		t.Fatal("backed page not reported")
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(DefaultBus())
	for _, f := range []func(){
		func() { m.ReadWord(0x1001) },
		func() { m.WriteWord(0x1002, 0) },
		func() { m.ReadHalf(0x1001) },
		func() { m.WriteHalf(0x1003, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on unaligned access")
				}
			}()
			f()
		}()
	}
}

func TestReadBlock(t *testing.T) {
	m := New(DefaultBus())
	for i := uint32(0); i < 32; i++ {
		m.StoreByte(0x3000+i, byte(i))
	}
	dst := make([]byte, 32)
	cycles := m.ReadBlock(0x3000, dst)
	if cycles != 16 {
		t.Fatalf("cycles = %d, want 16", cycles)
	}
	for i := range dst {
		if dst[i] != byte(i) {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	if m.Reads != 1 || m.BytesRead != 32 {
		t.Fatalf("traffic counters %d/%d", m.Reads, m.BytesRead)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New(DefaultBus())
	base := uint32(pageSize - 2)
	m.StoreByte(base, 0xAA)
	m.StoreByte(base+1, 0xBB)
	m.StoreByte(base+2, 0xCC) // next page
	dst := make([]byte, 3)
	m.ReadBlock(base, dst)
	if dst[0] != 0xAA || dst[1] != 0xBB || dst[2] != 0xCC {
		t.Fatalf("cross-page read %x", dst)
	}
}

func TestLoadImageSkipsVirtual(t *testing.T) {
	im := &program.Image{Segments: []*program.Segment{
		{Name: program.SegText, Base: program.CompBase, Data: []byte{1, 2, 3, 4}, Virtual: true},
		{Name: program.SegData, Base: program.DataBase, Data: []byte{5, 6, 7, 8}},
	}}
	m := New(DefaultBus())
	m.LoadImage(im)
	if m.Backed(program.CompBase) {
		t.Fatal("virtual segment must not be loaded")
	}
	if m.LoadByte(program.DataBase+3) != 8 {
		t.Fatal("data segment not loaded")
	}
}

func TestQuickWordRoundTrip(t *testing.T) {
	m := New(DefaultBus())
	f := func(addr, v uint32) bool {
		addr &^= 3
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
