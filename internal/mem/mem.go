// Package mem models the simulator's main memory: a sparse 32-bit
// physical address space with the burst-bus timing of the paper's Table 1
// (64-bit bus, 10-cycle first access, 2-cycle successive accesses).
package mem

import (
	"encoding/binary"
	"fmt"

	"repro/internal/program"
)

// BusConfig is the main-memory timing model.
type BusConfig struct {
	FirstCycles int // latency of the first 8-byte beat
	NextCycles  int // latency of each successive beat in a burst
	WidthBytes  int // bus width (8 = 64 bits)
}

// DefaultBus matches the paper: 10-cycle latency, 2-cycle rate, 64 bits.
func DefaultBus() BusConfig {
	return BusConfig{FirstCycles: 10, NextCycles: 2, WidthBytes: 8}
}

// BurstCycles returns the cycles to transfer n contiguous bytes.
func (b BusConfig) BurstCycles(n int) int {
	if n <= 0 {
		return 0
	}
	beats := (n + b.WidthBytes - 1) / b.WidthBytes
	return b.FirstCycles + (beats-1)*b.NextCycles
}

const pageShift = 16
const pageSize = 1 << pageShift

// Memory is a sparse byte-addressable physical memory.
type Memory struct {
	pages map[uint32][]byte
	bus   BusConfig

	// Direct-mapped page cache: accesses cluster on a handful of pages
	// (stack, handler tables, compressed indices, dictionary), and pages
	// are never removed, so caching resolved lookups is always coherent
	// and skips the map on the hot path. Eight slots keep the
	// decompressor's interleaved indices/dictionary/stack streams from
	// thrashing a single entry.
	pcache [8]pageSlot

	// Reads counts bus read transactions; BytesRead the bytes moved.
	Reads     uint64
	BytesRead uint64

	// OnBurst, when set, observes every accounted bus burst (bytes
	// moved, cycles charged). Nil costs nothing; internal/telemetry uses
	// it for the burst-length histogram.
	OnBurst func(bytes, cycles int)
}

// New returns an empty memory with the given bus timing.
func New(bus BusConfig) *Memory {
	return &Memory{pages: make(map[uint32][]byte), bus: bus}
}

// Bus returns the bus timing configuration.
func (m *Memory) Bus() BusConfig { return m.bus }

type pageSlot struct {
	idx  uint32
	data []byte
}

func (m *Memory) page(addr uint32, create bool) []byte {
	idx := addr >> pageShift
	s := &m.pcache[idx&7]
	if s.data != nil && s.idx == idx {
		return s.data
	}
	p := m.pages[idx]
	if p == nil && create {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	if p != nil {
		s.idx, s.data = idx, p
	}
	return p
}

// Backed reports whether addr has ever been written (i.e. belongs to a
// loaded segment or touched page). The CPU uses it to distinguish the
// virtual decompressed region (never loaded) from real memory.
func (m *Memory) Backed(addr uint32) bool {
	return m.pages[addr>>pageShift] != nil
}

// LoadByte returns the byte at addr (zero if unbacked).
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// ReadWord returns the little-endian 32-bit word at addr. addr must be
// 4-aligned; unaligned access is a simulator bug, so it panics.
func (m *Memory) ReadWord(addr uint32) uint32 {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned word read at %#x", addr))
	}
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	off := addr & (pageSize - 1)
	return binary.LittleEndian.Uint32(p[off : off+4])
}

// WriteWord stores a little-endian 32-bit word at 4-aligned addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned word write at %#x", addr))
	}
	p := m.page(addr, true)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint32(p[off:off+4], v)
}

// ReadHalf returns the little-endian 16-bit halfword at 2-aligned addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	if addr&1 != 0 {
		panic(fmt.Sprintf("mem: unaligned half read at %#x", addr))
	}
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	off := addr & (pageSize - 1)
	return binary.LittleEndian.Uint16(p[off : off+2])
}

// WriteHalf stores a 16-bit halfword at 2-aligned addr.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	if addr&1 != 0 {
		panic(fmt.Sprintf("mem: unaligned half write at %#x", addr))
	}
	p := m.page(addr, true)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint16(p[off:off+2], v)
}

// Burst accounts one bus read transaction of n bytes — traffic counters
// plus the OnBurst hook — and returns the cycles the burst takes. Cache
// controllers that move data themselves (D-cache fills, the hardware
// decompression unit) use it so every burst is observed exactly once.
func (m *Memory) Burst(n int) int {
	cycles := m.bus.BurstCycles(n)
	m.Reads++
	m.BytesRead += uint64(n)
	if m.OnBurst != nil {
		m.OnBurst(n, cycles)
	}
	return cycles
}

// ReadBlock copies n bytes starting at addr into dst and returns the bus
// cycles the burst takes. It also updates the traffic counters.
func (m *Memory) ReadBlock(addr uint32, dst []byte) int {
	for i := range dst {
		dst[i] = m.LoadByte(addr + uint32(i))
	}
	return m.Burst(len(dst))
}

// LoadSegment copies a program segment into memory. Virtual segments are
// skipped: they exist only inside the I-cache.
func (m *Memory) LoadSegment(s *program.Segment) {
	if s.Virtual {
		return
	}
	addr, data := s.Base, s.Data
	for len(data) > 0 {
		p := m.page(addr, true)
		n := copy(p[addr&(pageSize-1):], data)
		addr += uint32(n)
		data = data[n:]
	}
}

// LoadImage loads every non-virtual segment of the image.
func (m *Memory) LoadImage(im *program.Image) {
	for _, s := range im.Segments {
		m.LoadSegment(s)
	}
}
