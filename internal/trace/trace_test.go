package trace

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
)

const src = `
        .text
        .proc main
main:   ori   $t0, $zero, 3
loop:   addiu $t0, $t0, -1
        bgtz  $t0, loop
        jal   helper
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc helper
helper: jr    $ra
        .endp
`

func runTraced(t *testing.T, n int) *Ring {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 10000
	r := NewRing(n, im)
	r.Attach(c)
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingRecordsAllWhenBigEnough(t *testing.T) {
	r := runTraced(t, 1000)
	// main: 1 + 3*2 + 1(jal) + helper jr + move + ori + syscall = 12
	if r.Count() != 12 {
		t.Fatalf("count = %d, want 12", r.Count())
	}
	es := r.Entries()
	if len(es) != 12 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0].PC != 0x400000 {
		t.Fatalf("first pc = %#x", es[0].PC)
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := runTraced(t, 4)
	es := r.Entries()
	if len(es) != 4 {
		t.Fatalf("entries = %d", len(es))
	}
	if r.Count() != 12 {
		t.Fatalf("count = %d", r.Count())
	}
	// The last recorded instruction must be the final syscall.
	last := es[len(es)-1]
	if got := last.PC; got == 0x400000 {
		t.Fatalf("ring did not wrap: last pc %#x", got)
	}
	// Entries must be in commit order.
	dump := r.Dump()
	if !strings.Contains(dump, "syscall") {
		t.Fatalf("dump missing final syscall:\n%s", dump)
	}
}

func TestDumpAnnotatesProcedures(t *testing.T) {
	r := runTraced(t, 1000)
	dump := r.Dump()
	for _, want := range []string{"main:", "helper:", "jr $ra"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestTinyRing(t *testing.T) {
	r := runTraced(t, 0) // clamps to 1
	if len(r.Entries()) != 1 {
		t.Fatal("ring of zero should clamp to one")
	}
}
