package trace

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
)

const src = `
        .text
        .proc main
main:   ori   $t0, $zero, 3
loop:   addiu $t0, $t0, -1
        bgtz  $t0, loop
        jal   helper
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc helper
helper: jr    $ra
        .endp
`

func runTraced(t *testing.T, n int) *Ring {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 10000
	r := NewRing(n, im)
	r.Attach(c)
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingRecordsAllWhenBigEnough(t *testing.T) {
	r := runTraced(t, 1000)
	// main: 1 + 3*2 + 1(jal) + helper jr + move + ori + syscall = 12
	if r.Count() != 12 {
		t.Fatalf("count = %d, want 12", r.Count())
	}
	es := r.Entries()
	if len(es) != 12 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0].PC != 0x400000 {
		t.Fatalf("first pc = %#x", es[0].PC)
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := runTraced(t, 4)
	es := r.Entries()
	if len(es) != 4 {
		t.Fatalf("entries = %d", len(es))
	}
	if r.Count() != 12 {
		t.Fatalf("count = %d", r.Count())
	}
	// The last recorded instruction must be the final syscall.
	last := es[len(es)-1]
	if got := last.PC; got == 0x400000 {
		t.Fatalf("ring did not wrap: last pc %#x", got)
	}
	// Entries must be in commit order.
	dump := r.Dump()
	if !strings.Contains(dump, "syscall") {
		t.Fatalf("dump missing final syscall:\n%s", dump)
	}
}

func TestDumpAnnotatesProcedures(t *testing.T) {
	r := runTraced(t, 1000)
	dump := r.Dump()
	for _, want := range []string{"main:", "helper:", "jr $ra"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestTinyRing(t *testing.T) {
	r := runTraced(t, 0) // clamps to 1
	if len(r.Entries()) != 1 {
		t.Fatal("ring of zero should clamp to one")
	}
}

// compressedSrc busy-loops first, then calls a cold procedure right
// before exit: compressed, the cold call raises a decompression
// exception near the end of the run, so the final instructions
// interleave handler and user commits.
const compressedSrc = `
        .text
        .proc main
main:   ori   $s0, $zero, 40
loop:   addiu $s0, $s0, -1
        bgtz  $s0, loop
        jal   tail
        move  $a0, $v0
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc tail
tail:   ori   $v0, $zero, 1
        sll   $v0, $v0, 1
        sll   $v0, $v0, 1
        sll   $v0, $v0, 1
        sll   $v0, $v0, 1
        sll   $v0, $v0, 1
        sll   $v0, $v0, 1
        andi  $v0, $v0, 0
        jr    $ra
        .endp
`

// TestRingWrapsWithHandlerEntries runs a dictionary-compressed program
// through a ring smaller than its dynamic length: the ring must wrap,
// keep commit order, and carry the handler/user origin of each entry.
func TestRingWrapsWithHandlerEntries(t *testing.T) {
	im, err := asm.Assemble(compressedSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(im, core.Options{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 100_000
	const n = 24
	r := NewRing(n, res.Image)
	r.Attach(c)
	if err := c.Load(res.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Count() <= n {
		t.Fatalf("ring did not wrap: %d commits through a %d-entry ring", r.Count(), n)
	}
	es := r.Entries()
	if len(es) != n {
		t.Fatalf("entries = %d, want %d", len(es), n)
	}
	// The wrapped window spans the late exception, so it must hold both
	// handler and user commits.
	var handler, user bool
	for _, e := range es {
		if e.Handler {
			handler = true
		} else {
			user = true
		}
	}
	if !handler || !user {
		t.Fatalf("wrapped window not mixed: handler=%v user=%v\n%s", handler, user, r.Dump())
	}
	dump := r.Dump()
	if !strings.Contains(dump, " * ") {
		t.Errorf("dump missing handler markers:\n%s", dump)
	}
	// The final entry must be the program's last user instruction (the
	// syscall), proving order survived the wrap.
	if es[len(es)-1].Handler {
		t.Errorf("last committed instruction marked as handler")
	}
	if !strings.Contains(dump, "syscall") {
		t.Errorf("dump missing final syscall:\n%s", dump)
	}
}
