// Package trace provides execution tracing for the simulator: a
// fixed-size ring of the most recently committed instructions, rendered
// as disassembly with procedure context. It is the debugging companion
// for handler development — when a decompression handler misbehaves, the
// ring shows the exact instruction sequence leading to the failure.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Entry is one committed instruction.
type Entry struct {
	PC      uint32
	Instr   uint32
	Handler bool
}

// Ring records the last N committed instructions.
type Ring struct {
	buf   []Entry
	next  int
	count uint64
	img   *program.Image
}

// NewRing builds a ring of n entries over the given image (used for
// procedure names in rendering; may be nil).
func NewRing(n int, im *program.Image) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Entry, n), img: im}
}

// Attach registers the ring as one of the CPU's tracers. Attaching
// composes: tracers installed before or after (the telemetry collector,
// another ring) keep firing — the ring never clobbers them.
func (r *Ring) Attach(c *cpu.CPU) {
	c.AttachTrace(func(pc, instr uint32, handler bool) {
		r.buf[r.next] = Entry{PC: pc, Instr: instr, Handler: handler}
		r.next = (r.next + 1) % len(r.buf)
		r.count++
	})
}

// Count returns the total number of instructions observed.
func (r *Ring) Count() uint64 { return r.count }

// Entries returns the recorded entries, oldest first.
func (r *Ring) Entries() []Entry {
	n := len(r.buf)
	if r.count < uint64(n) {
		n = int(r.count)
		return append([]Entry(nil), r.buf[:n]...)
	}
	out := make([]Entry, 0, n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump renders the ring, oldest first, with procedure annotations and a
// marker on handler instructions.
func (r *Ring) Dump() string {
	var b strings.Builder
	lastProc := ""
	for _, e := range r.Entries() {
		proc := ""
		if r.img != nil {
			if p := r.img.ProcAt(e.PC); p != nil {
				proc = p.Name
			} else if e.Handler {
				proc = "<handler>"
			}
		}
		if proc != lastProc && proc != "" {
			fmt.Fprintf(&b, "%s:\n", proc)
			lastProc = proc
		}
		mark := " "
		if e.Handler {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s %08x  %s\n", mark, e.PC, isa.Disassemble(e.PC, e.Instr))
	}
	return b.String()
}
