package analysis

import (
	"encoding/binary"

	"repro/internal/isa"
	"repro/internal/program"
)

// HandlerInfo describes the decompression-handler contract the analyzer
// verifies (paper §4.1): the handler runs at exception level inside the
// dedicated decompressor RAM and must be architecturally invisible to the
// interrupted program.
type HandlerInfo struct {
	Name     string
	ShadowRF bool // second register file: GPR writes are banked
	// ScratchBytes is the size of the handler scratch RAM the codec
	// declares at the base of the .dictionary segment ($c0_dict); 0
	// means the codec has no scratch region and the dictionary is
	// read-only data. Stores through a pointer provably derived from
	// $c0_dict are part of the scratch discipline, not user-memory
	// mutations (the conformance suite checks the dynamic bound).
	ScratchBytes int
}

// AnalyzeHandlerSegment verifies the decompressor segment against the
// invisibility contract and appends its findings to rep.
//
// The checks, in terms of the paper's argument that decompression is
// "transparent to the program" (§3, §4):
//
//   - handler-no-iret: every reachable path must end in iret; falling off
//     the handler or returning via jr would resume user code with EXL set.
//   - handler-escape: control must stay inside the handler RAM; syscalls
//     and calls re-enter user code mid-exception.
//   - handler-no-swic: a handler that never executes swic cannot fill the
//     missed line, so the same exception re-raises forever.
//   - handler-clobber: on the single-register-file configurations every
//     user-visible register written must first be saved to the $sp red
//     zone and restored from the same slot before iret ($k0/$k1 are
//     reserved for the OS and exempt). HI/LO are never banked — even the
//     shadow-RF handlers may not use mult/div.
//   - handler-store: stores may only target the red zone below the user
//     $sp or, when the codec declares scratch RAM, go through a pointer
//     provably derived from the $c0_dict scratch base; anything else
//     mutates user-visible memory.
//   - handler-shadow-read: with the shadow register file the handler's
//     GPRs hold stale values from the previous exception, so reading a
//     register before writing it (liveness at entry) is a bug.
//   - handler-sysreg: mtc0 to EPC/Status/Cause/BadVA corrupts the
//     exception state iret consumes.
//   - handler-coverage: every byte of the handler RAM must be covered by
//     the save/restore proof. The clobber/store/escape checks above walk
//     only reachable blocks, so unreachable handler bytes (code after
//     iret, orphaned loops, trailing non-word residue) are unverifiable:
//     nothing proves they preserve user state if a wild transfer lands
//     on them with EXL set, and nothing rules the transfer out either.
func AnalyzeHandlerSegment(seg *program.Segment, info HandlerInfo, rep *Report) *CFG {
	words := segWords(seg)
	if residue := len(seg.Data) % 4; residue != 0 {
		rep.add(RuleHandlerCoverage, Error, seg.Base+uint32(len(words)*4), info.Name,
			"%d trailing byte(s) do not decode as instructions: outside the save/restore proof", residue)
	}
	g := BuildCFG(info.Name, seg.Base, words)
	reach := g.Reachable()

	sawSwic := false
	for i, b := range g.Blocks {
		if !reach[i] {
			rep.add(RuleHandlerCoverage, Error, b.Start(), info.Name,
				"unreachable handler block (%d instructions): outside the save/restore proof",
				len(b.Instrs))
			continue
		}
		if b.FallsOff {
			rep.add(RuleHandlerNoIret, Error, b.Last().PC, info.Name,
				"execution falls off the end of the handler without iret")
		}
		for _, in := range b.Instrs {
			switch in.Kind {
			case isa.KindIllegal:
				rep.add(RuleIllegalInstr, Error, in.PC, info.Name,
					"unrecognised encoding %#08x", in.Word)
			case isa.KindSwic:
				sawSwic = true
			case isa.KindSyscall:
				rep.add(RuleHandlerEscape, Error, in.PC, info.Name,
					"%s inside the decompression handler", isa.Disassemble(in.PC, in.Word))
			case isa.KindJumpReg:
				rep.add(RuleHandlerEscape, Error, in.PC, info.Name,
					"indirect jump %s leaves the handler with EXL set (use iret)",
					isa.Disassemble(in.PC, in.Word))
			case isa.KindCop0:
				if isa.Rs(in.Word) == isa.CopMTC0 {
					c0 := isa.Rd(in.Word)
					switch c0 {
					case isa.C0EPC, isa.C0Status, isa.C0Cause, isa.C0BadVA:
						rep.add(RuleHandlerSysreg, Error, in.PC, info.Name,
							"handler overwrites %s consumed by iret", isa.C0Name(c0))
					default:
						rep.add(RuleHandlerSysreg, Warning, in.PC, info.Name,
							"handler rewrites system register %s", isa.C0Name(c0))
					}
				}
			}
		}
		for _, t := range b.ExtTargets {
			rep.add(RuleHandlerEscape, Error, b.Last().PC, info.Name,
				"control transfer to %#x outside the handler RAM", t)
		}
	}
	if !sawSwic {
		rep.add(RuleHandlerNoSwic, Error, seg.Base, info.Name,
			"handler contains no swic: the missed line can never be filled")
	}

	checkHandlerStores(g, reach, info, rep)
	checkHandlerClobbers(g, reach, info, rep)
	if info.ShadowRF {
		checkShadowReads(g, info, rep)
	}
	return g
}

// checkHandlerStores flags sb/sh/sw that can touch user-visible memory.
// Two store disciplines are provable: the red zone (negative offsets off
// the unmodified user $sp, as in Figure 2), and — when the codec
// declares scratch RAM — stores through a pointer derived from the
// $c0_dict scratch base. The derivation proof is the scratchTags
// dataflow; the in-bounds proof is dynamic (conformance suite).
func checkHandlerStores(g *CFG, reach []bool, info HandlerInfo, rep *Report) {
	tags := scratchTags(g)
	for i, b := range g.Blocks {
		if !reach[i] {
			continue
		}
		s := tags[i]
		for _, in := range b.Instrs {
			if in.Kind != isa.KindStore {
				s = stepScratch(s, in.Word)
				continue
			}
			base, off := isa.Rs(in.Word), isa.SImm(in.Word)
			switch {
			case base == isa.RegSP && off < 0:
				// Red-zone save: fine.
			case base == isa.RegSP:
				rep.add(RuleHandlerStore, Error, in.PC, info.Name,
					"store at %d($sp) overwrites the user's live stack", off)
			case s.Has(base) && info.ScratchBytes > 0:
				// Scratch-RAM write: derived from $c0_dict and declared.
			case s.Has(base):
				rep.add(RuleHandlerStore, Error, in.PC, info.Name,
					"store through %s writes the .dictionary segment but the codec declares no scratch RAM",
					isa.RegName(base))
			default:
				rep.add(RuleHandlerStore, Warning, in.PC, info.Name,
					"store through %s: cannot prove it avoids user memory",
					isa.RegName(base))
			}
			s = stepScratch(s, in.Word)
		}
	}
}

// stepScratch is the per-instruction transfer function of the
// scratch-pointer dataflow: mfc0 from $c0_dict generates a tag, address
// arithmetic (addu/or and their immediate forms, which covers the move
// pseudo-op) propagates it, and any other definition kills it.
func stepScratch(s RegSet, w isa.Word) RegSet {
	kill := func(r int) {
		if r >= 0 {
			s &^= RegSet(0).Add(r)
		}
	}
	switch {
	case isa.Classify(w) == isa.KindCop0 && isa.Rs(w) == isa.CopMFC0:
		if isa.Rd(w) == isa.C0Dict {
			return s.Add(isa.Rt(w))
		}
		kill(isa.Rt(w))
	case isa.Op(w) == isa.OpSpecial && (isa.Funct(w) == isa.FnADDU || isa.Funct(w) == isa.FnOR):
		if s.Has(isa.Rs(w)) || s.Has(isa.Rt(w)) {
			return s.Add(isa.Rd(w))
		}
		kill(isa.Rd(w))
	case isa.Op(w) == isa.OpADDIU || isa.Op(w) == isa.OpORI:
		if s.Has(isa.Rs(w)) {
			return s.Add(isa.Rt(w))
		}
		kill(isa.Rt(w))
	default:
		for _, r := range DefSet(w).Regs() {
			kill(r)
		}
	}
	return s
}

// scratchTags computes, per block entry, the registers provably holding
// a pointer derived from the $c0_dict scratch base: a forward dataflow
// with intersection at merge points (a register is scratch-derived only
// if it is on every incoming path).
func scratchTags(g *CFG) []RegSet {
	n := len(g.Blocks)
	in := make([]RegSet, n)
	have := make([]bool, n)
	have[0] = true
	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, i := range rpo {
			if !have[i] {
				continue
			}
			s := in[i]
			for _, instr := range g.Blocks[i].Instrs {
				s = stepScratch(s, instr.Word)
			}
			for _, succ := range g.Blocks[i].Succs {
				ns := s
				if have[succ] {
					ns = in[succ] & s
				}
				if !have[succ] || ns != in[succ] {
					in[succ], have[succ] = ns, true
					changed = true
				}
			}
		}
	}
	return in
}

// regState is the abstract per-register value for the clobber proof.
// orig is a bitset of registers still holding (or restored to) the
// interrupted program's value; slots maps a red-zone byte offset to the
// register whose original value it holds.
type regState struct {
	orig  RegSet
	slots map[int32]int
}

func (s regState) clone() regState {
	m := make(map[int32]int, len(s.slots))
	for k, v := range s.slots {
		m[k] = v
	}
	return regState{orig: s.orig, slots: m}
}

// join merges two states at a CFG merge point: a register is original
// only if it is on both paths, a slot valid only if both paths agree.
func (s regState) join(t regState) regState {
	out := regState{orig: s.orig & t.orig, slots: map[int32]int{}}
	for k, v := range s.slots {
		if tv, ok := t.slots[k]; ok && tv == v {
			out.slots[k] = v
		}
	}
	return out
}

func (s regState) equal(t regState) bool {
	if s.orig != t.orig || len(s.slots) != len(t.slots) {
		return false
	}
	for k, v := range s.slots {
		if tv, ok := t.slots[k]; !ok || tv != v {
			return false
		}
	}
	return true
}

// checkHandlerClobbers runs a forward abstract interpretation proving
// that at every iret each user-visible register holds its original
// value: either it was never written, or it was saved to a red-zone slot
// while still original and restored from that same slot. With the shadow
// register file the GPR file is banked, so only HI/LO (which the
// hardware does not bank) are checked.
func checkHandlerClobbers(g *CFG, reach []bool, info HandlerInfo, rep *Report) {
	exempt := RegSet(0).Add(isa.RegK0).Add(isa.RegK1)
	if info.ShadowRF {
		exempt = AllUserRegs() &^ (RegSet(0).Add(regHI).Add(regLO))
	}

	n := len(g.Blocks)
	in := make([]regState, n)
	have := make([]bool, n)
	init := regState{orig: AllUserRegs(), slots: map[int32]int{}}
	in[0], have[0] = init, true

	step := func(s regState, w isa.Word) regState {
		spOK := s.orig.Has(isa.RegSP)
		switch isa.Classify(w) {
		case isa.KindStore:
			if isa.Rs(w) == isa.RegSP && spOK {
				off, rt := isa.SImm(w), isa.Rt(w)
				if isa.Op(w) == isa.OpSW && s.orig.Has(rt) {
					s.slots[off] = rt // saved the user's value
				} else {
					// Scratch store (or a sub-word write): every slot it
					// overlaps no longer holds a clean saved value.
					width := int32(4)
					switch isa.Op(w) {
					case isa.OpSB:
						width = 1
					case isa.OpSH:
						width = 2
					}
					for k := range s.slots {
						if off < k+4 && off+width > k {
							delete(s.slots, k)
						}
					}
				}
			}
			return s
		case isa.KindLoad:
			rt := DefReg(w)
			if rt < 0 {
				return s
			}
			if isa.Op(w) == isa.OpLW && isa.Rs(w) == isa.RegSP && spOK {
				if saved, ok := s.slots[isa.SImm(w)]; ok && saved == rt {
					s.orig = s.orig.Add(rt) // restored
					return s
				}
			}
			s.orig &^= RegSet(0).Add(rt)
			return s
		default:
			for _, r := range DefSet(w).Regs() {
				s.orig &^= RegSet(0).Add(r)
				if r == isa.RegSP {
					// Moving $sp invalidates every slot offset.
					s.slots = map[int32]int{}
				}
			}
			return s
		}
	}

	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, i := range rpo {
			if !have[i] {
				continue
			}
			s := in[i].clone()
			for _, instr := range g.Blocks[i].Instrs {
				s = step(s, instr.Word)
			}
			for _, succ := range g.Blocks[i].Succs {
				var ns regState
				if have[succ] {
					ns = in[succ].join(s)
				} else {
					ns = s.clone()
				}
				if !have[succ] || !ns.equal(in[succ]) {
					in[succ], have[succ] = ns, true
					changed = true
				}
			}
		}
	}

	// At every reachable iret, everything non-exempt must be original.
	for i, b := range g.Blocks {
		if !reach[i] || !have[i] {
			continue
		}
		s := in[i].clone()
		for _, instr := range b.Instrs {
			if instr.Kind == isa.KindIret {
				for _, r := range (AllUserRegs() &^ s.orig &^ exempt).Regs() {
					rep.add(RuleHandlerClobber, Error, instr.PC, info.Name,
						"iret with %s clobbered (written without save/restore)", regName(r))
				}
				break
			}
			s = step(s, instr.Word)
		}
	}
}

// checkShadowReads uses liveness to find registers a shadow-RF handler
// reads before writing: the shadow bank holds stale values from the
// previous exception, never live-in state.
func checkShadowReads(g *CFG, info HandlerInfo, rep *Report) {
	lv := ComputeLiveness(g, 0)
	if len(lv.In) == 0 {
		return
	}
	for _, r := range lv.In[0].Regs() {
		rep.add(RuleHandlerShadowRead, Error, g.Base, info.Name,
			"handler reads %s before writing it; the shadow bank holds stale state",
			regName(r))
	}
}

// BuildSegmentCFG decodes a whole segment as one unit and returns its
// CFG — the entry point for analyzing a handler (or any raw code blob)
// outside a full image.
func BuildSegmentCFG(name string, seg *program.Segment) *CFG {
	return BuildCFG(name, seg.Base, segWords(seg))
}

// segWords decodes a segment's bytes as little-endian words.
func segWords(seg *program.Segment) []isa.Word {
	words := make([]isa.Word, len(seg.Data)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(seg.Data[4*i:])
	}
	return words
}
