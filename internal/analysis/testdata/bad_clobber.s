# Broken single-RF handler: writes $t1 and $t2 without saving either,
# and only restores nothing before iret. Must fire handler-clobber.
        .section .decompressor, 0x7F000000
        .proc __bad_clobber
__bad_clobber:
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $t1, $c0_dict
        addiu $t2, $k1, 32
cloop:  lw    $k0, 0($t1)
        swic  $k0, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t2, cloop
        iret
        .endp
