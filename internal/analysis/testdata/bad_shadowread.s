# Broken shadow-RF handler: reads $t3 (stale shadow-bank state from the
# previous exception) before writing it. Must fire handler-shadow-read
# when analyzed with ShadowRF set.
        .section .decompressor, 0x7F000000
        .proc __bad_shadowread
__bad_shadowread:
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        addu  $t1, $t3, $k1
        lw    $k0, 0($t1)
        swic  $k0, 0($k1)
        iret
        .endp
