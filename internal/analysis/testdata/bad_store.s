# Broken handler: stores above $sp (the user's live stack frame) and
# through a non-$sp pointer. Must fire handler-store.
        .section .decompressor, 0x7F000000
        .proc __bad_store
__bad_store:
        mfc0  $k1, $c0_badva
        sw    $k0, 8($sp)
        sw    $k0, 0($k1)
        swic  $k0, 0($k1)
        iret
        .endp
