# Broken handler: uses mult, clobbering HI/LO — which the shadow
# register file does not bank. Must fire handler-clobber on $hi/$lo even
# when analyzed with ShadowRF set.
        .section .decompressor, 0x7F000000
        .proc __bad_hilo
__bad_hilo:
        mfc0  $k1, $c0_badva
        mfc0  $k0, $c0_dict
        mult  $k0, $k1
        mflo  $k0
        swic  $k0, 0($k1)
        iret
        .endp
