# Broken handler: computes the line address but never executes swic, so
# the missed line is never filled and the exception re-raises forever.
# Must fire handler-no-swic.
        .section .decompressor, 0x7F000000
        .proc __bad_noswic
__bad_noswic:
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $k0, $c0_dict
        iret
        .endp
