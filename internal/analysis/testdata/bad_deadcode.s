# Broken handler: the refill loop itself is clean (saves and restores
# $t1/$t2, fills the line, irets), but two instructions sit after the
# iret where nothing can reach them — and nothing proves them. Must
# fire handler-coverage on the unreachable block.
        .section .decompressor, 0x7F000000
        .proc __bad_deadcode
__bad_deadcode:
        sw    $t1, -4($sp)
        sw    $t2, -8($sp)
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $t1, $c0_dict
        addiu $t2, $k1, 32
cloop:  lw    $k0, 0($t1)
        swic  $k0, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t2, cloop
        lw    $t1, -4($sp)
        lw    $t2, -8($sp)
        iret
        addiu $t3, $t3, 1
        sw    $t3, 0($sp)
        .endp
