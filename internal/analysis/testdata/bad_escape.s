# Broken handler: issues a syscall at exception level, returns with
# jr $ra instead of iret, and jumps to user code (the raw word encodes
# "j" leaving the handler RAM). Must fire handler-escape three times.
        .section .decompressor, 0x7F000000
        .proc __bad_escape
__bad_escape:
        mfc0  $k1, $c0_badva
        swic  $k0, 0($k1)
        syscall
        beq   $k1, $zero, out
        jr    $ra
out:    .word 0x08100000
        .endp
