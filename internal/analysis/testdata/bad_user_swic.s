# Broken user program: executes swic and iret from the native .text
# region. Must fire swic-outside, and the trailing procedure must fire
# fallthrough-end (it ends without jr/exit) and dead-code (nothing
# references it).
        .text
        .proc main
main:   la    $t0, main
        swic  $t0, 0($t0)
        iret
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc orphan
orphan: addiu $t1, $t1, 1
        .endp
        .entry main
