# Broken handler: saves $t1 at -4($sp) but "restores" it from -8($sp),
# a slot that holds $t2's value. Must fire handler-clobber on $t1.
        .section .decompressor, 0x7F000000
        .proc __bad_restore
__bad_restore:
        sw    $t1, -4($sp)
        sw    $t2, -8($sp)
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $t1, $c0_dict
        addiu $t2, $k1, 32
cloop:  lw    $k0, 0($t1)
        swic  $k0, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t2, cloop
        lw    $t1, -8($sp)
        lw    $t2, -8($sp)
        iret
        .endp
