# Broken handler: the loop exits by falling off the end of the segment
# instead of executing iret. Must fire handler-no-iret.
        .section .decompressor, 0x7F000000
        .proc __bad_noiret
__bad_noiret:
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $k0, $c0_dict
        swic  $k0, 0($k1)
        .endp
