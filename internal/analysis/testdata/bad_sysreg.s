# Broken handler: rewrites EPC before iret, so the return address of the
# exception is lost. Must fire handler-sysreg.
        .section .decompressor, 0x7F000000
        .proc __bad_sysreg
__bad_sysreg:
        mfc0  $k1, $c0_badva
        mtc0  $k1, $c0_epc
        swic  $k0, 0($k1)
        iret
        .endp
