package analysis

import "repro/internal/isa"

// RegSet is a bit set over the 32 GPRs plus the HI (bit 32) and LO
// (bit 33) accumulators.
type RegSet uint64

// Has reports whether register r is in the set.
func (s RegSet) Has(r int) bool { return r >= 0 && s&(1<<uint(r)) != 0 }

// Add returns s with register r added ($zero is never tracked).
func (s RegSet) Add(r int) RegSet {
	if r <= 0 {
		return s
	}
	return s | 1<<uint(r)
}

// Regs returns the members in ascending order.
func (s RegSet) Regs() []int {
	var out []int
	for r := 1; r < 34; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// DefReg returns the general-purpose register w writes, or -1. $zero
// writes report -1 (they are architectural no-ops). HI/LO writes are
// reported by DefSet, not here.
func DefReg(w isa.Word) int {
	rd := -1
	switch isa.Classify(w) {
	case isa.KindALU:
		switch isa.Op(w) {
		case isa.OpSpecial:
			switch isa.Funct(w) {
			case isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU:
				return -1 // write HI/LO only
			}
			rd = isa.Rd(w)
		default: // immediates, lui
			rd = isa.Rt(w)
		}
	case isa.KindLoad:
		rd = isa.Rt(w)
	case isa.KindCop0:
		if isa.Rs(w) == isa.CopMFC0 {
			rd = isa.Rt(w)
		}
	case isa.KindJump:
		if isJAL(w) {
			rd = isa.RegRA
		}
	case isa.KindJumpReg:
		if isJALR(w) {
			rd = isa.Rd(w)
		}
	}
	if rd == isa.RegZero {
		return -1
	}
	return rd
}

// DefSet returns every register w writes, including HI/LO.
func DefSet(w isa.Word) RegSet {
	var s RegSet
	s = s.Add(DefReg(w))
	if isa.Op(w) == isa.OpSpecial {
		switch isa.Funct(w) {
		case isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU:
			s = s.Add(regHI).Add(regLO)
		}
	}
	return s
}

// UseSet returns every register w reads, including HI/LO.
func UseSet(w isa.Word) RegSet {
	var s RegSet
	a, b := isa.SrcRegs(w)
	s = s.Add(a).Add(b)
	if isa.Op(w) == isa.OpSpecial {
		switch isa.Funct(w) {
		case isa.FnMFHI:
			s = s.Add(regHI)
		case isa.FnMFLO:
			s = s.Add(regLO)
		}
	}
	return s
}

// Liveness holds the result of backward liveness analysis over a CFG.
type Liveness struct {
	In  []RegSet // live at block entry
	Out []RegSet // live at block exit
}

// ComputeLiveness solves backward liveness to a fixpoint. exitLive is
// the set considered live at every exit of the unit (for user code,
// callee-visible state; for a handler, every user register — which is
// what makes an unsaved clobber a dead-store-free proof obligation).
func ComputeLiveness(g *CFG, exitLive RegSet) *Liveness {
	n := len(g.Blocks)
	lv := &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	gen := make([]RegSet, n)  // upward-exposed uses
	kill := make([]RegSet, n) // defs
	for i, b := range g.Blocks {
		for _, in := range b.Instrs {
			gen[i] |= UseSet(in.Word) &^ kill[i]
			kill[i] |= DefSet(in.Word)
		}
	}
	terminal := func(b *Block) bool { return len(b.Succs) == 0 || b.FallsOff }
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			out := RegSet(0)
			if terminal(b) {
				out = exitLive
			}
			for _, s := range b.Succs {
				out |= lv.In[s]
			}
			in := gen[i] | out&^kill[i]
			if out != lv.Out[i] || in != lv.In[i] {
				lv.Out[i], lv.In[i] = out, in
				changed = true
			}
		}
	}
	return lv
}

// AllUserRegs is the exit-live set of a decompression handler: every
// GPR except $zero, plus HI and LO — the handler returns into arbitrary
// user code, so everything is observable.
func AllUserRegs() RegSet {
	var s RegSet
	for r := 1; r < isa.NumRegs; r++ {
		s = s.Add(r)
	}
	return s.Add(regHI).Add(regLO)
}
