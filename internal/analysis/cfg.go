package analysis

import (
	"sort"

	"repro/internal/isa"
)

// Instr is one decoded instruction inside a unit.
type Instr struct {
	PC   uint32
	Word isa.Word
	Kind isa.Kind
}

// Block is a basic block: straight-line instructions ending at a control
// transfer, a terminal instruction, or the next leader.
type Block struct {
	Index  int
	Instrs []Instr
	Succs  []int // intra-unit successor block indices

	// External control transfers leaving the unit (branch/jump targets
	// that resolve outside [Base, End)).
	ExtTargets []uint32

	// FallsOff is set when execution can run past the last instruction of
	// the unit out of this block.
	FallsOff bool
}

// Start returns the block's first PC.
func (b *Block) Start() uint32 { return b.Instrs[0].PC }

// Last returns the block's final instruction.
func (b *Block) Last() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// CFG is the control-flow graph of one unit of code: a procedure or the
// decompression handler. CLR32 has no branch delay slots (the paper's
// re-encoded SimpleScalar ISA), so a control transfer ends its block
// exactly; a delay-slot ISA would fold the slot into the transfer block
// here.
type CFG struct {
	Name   string
	Base   uint32
	Blocks []*Block

	blockAt map[uint32]int // leader PC -> block index
}

// End returns the first address past the unit.
func (g *CFG) End() uint32 {
	last := g.Blocks[len(g.Blocks)-1].Last()
	return last.PC + isa.InstrBytes
}

// BlockAt returns the index of the block starting at pc, or -1.
func (g *CFG) BlockAt(pc uint32) int {
	if i, ok := g.blockAt[pc]; ok {
		return i
	}
	return -1
}

// Reachable returns the set of block indices reachable from block 0.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[i].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// isJAL reports whether w is a jal (writes $ra, returns to fallthrough).
func isJAL(w isa.Word) bool { return isa.Op(w) == isa.OpJAL }

// isJALR reports whether w is a jalr.
func isJALR(w isa.Word) bool {
	return isa.Op(w) == isa.OpSpecial && isa.Funct(w) == isa.FnJALR
}

// isBreak reports whether w is a break.
func isBreak(w isa.Word) bool {
	return isa.Op(w) == isa.OpSpecial && isa.Funct(w) == isa.FnBREAK
}

// exitsProgram reports whether the syscall at index i of instrs is
// statically known to terminate the program: the nearest preceding write
// to $v0 in the same block loads the constant SysExit. This is the
// pattern every code generator in the tree emits (li $v0, 10; syscall).
func exitsProgram(instrs []Instr, i int) bool {
	for j := i - 1; j >= 0; j-- {
		w := instrs[j].Word
		if DefReg(w) != isa.RegV0 {
			if instrs[j].Kind == isa.KindSyscall || isa.IsControl(w) {
				return false
			}
			continue
		}
		// ori $v0, $zero, imm  or  addiu $v0, $zero, imm
		op := isa.Op(w)
		if (op == isa.OpORI || op == isa.OpADDIU) && isa.Rs(w) == isa.RegZero {
			return isa.Imm(w) == isa.SysExit
		}
		return false
	}
	return false
}

// BuildCFG decodes the words of [base, base+4*len(words)) as one unit and
// constructs its control-flow graph. Control transfers whose target lies
// inside the unit become edges; the rest are recorded as external
// targets for the image-level checks.
func BuildCFG(name string, base uint32, words []isa.Word) *CFG {
	n := len(words)
	end := base + uint32(4*n)
	inUnit := func(t uint32) bool { return t >= base && t < end && t%4 == 0 }

	instrs := make([]Instr, n)
	for i, w := range words {
		instrs[i] = Instr{PC: base + uint32(4*i), Word: w, Kind: isa.Classify(w)}
	}

	// Pass 1: leaders. Index 0, every in-unit control target, and the
	// instruction after every control transfer.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	target := func(in Instr) (uint32, bool) {
		switch in.Kind {
		case isa.KindBranch:
			return isa.BranchTarget(in.PC, in.Word), true
		case isa.KindJump:
			return isa.JumpTarget(in.PC, in.Word), true
		}
		return 0, false
	}
	for i, in := range instrs {
		if !isa.IsControl(in.Word) {
			continue
		}
		if t, ok := target(in); ok && inUnit(t) {
			leader[(t-base)/4] = true
		}
		if i+1 < n {
			leader[i+1] = true
		}
	}

	// Pass 2: slice blocks.
	g := &CFG{Name: name, Base: base, blockAt: make(map[uint32]int)}
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := &Block{Index: len(g.Blocks), Instrs: instrs[i:j]}
		g.blockAt[b.Start()] = b.Index
		g.Blocks = append(g.Blocks, b)
		i = j
	}

	// Pass 3: edges.
	for _, b := range g.Blocks {
		last := b.Last()
		next := last.PC + isa.InstrBytes
		fall := func() {
			if next < end {
				b.Succs = append(b.Succs, g.blockAt[next])
			} else {
				b.FallsOff = true
			}
		}
		switch last.Kind {
		case isa.KindBranch:
			fall()
			t := isa.BranchTarget(last.PC, last.Word)
			if inUnit(t) {
				b.Succs = append(b.Succs, g.blockAt[t])
			} else {
				b.ExtTargets = append(b.ExtTargets, t)
			}
		case isa.KindJump:
			t := isa.JumpTarget(last.PC, last.Word)
			if isJAL(last.Word) {
				// Calls return: the callee is an external (or recursive)
				// target, execution resumes at the fallthrough.
				b.ExtTargets = append(b.ExtTargets, t)
				fall()
			} else if inUnit(t) {
				b.Succs = append(b.Succs, g.blockAt[t])
			} else {
				b.ExtTargets = append(b.ExtTargets, t) // tail jump
			}
		case isa.KindJumpReg:
			if isJALR(last.Word) {
				fall() // indirect call; target unknowable
			}
			// jr: return (or indirect jump) — terminal for this unit.
		case isa.KindIret:
			// Terminal: returns to the interrupted user PC.
		case isa.KindSyscall:
			if isBreak(last.Word) || exitsProgram(b.Instrs, len(b.Instrs)-1) {
				break // terminal
			}
			fall()
		default:
			fall()
		}
	}
	return g
}

// ExternalTargets returns every control-transfer target leaving the
// unit, deduplicated and sorted, with one representative source PC each.
func (g *CFG) ExternalTargets() map[uint32]uint32 {
	out := map[uint32]uint32{}
	for _, b := range g.Blocks {
		for _, t := range b.ExtTargets {
			if _, ok := out[t]; !ok {
				out[t] = b.Last().PC
			}
		}
	}
	return out
}

// postorder returns the blocks reachable from block 0 in postorder.
func (g *CFG) postorder() []int {
	seen := make([]bool, len(g.Blocks))
	var order []int
	var walk func(i int)
	walk = func(i int) {
		seen[i] = true
		for _, s := range g.Blocks[i].Succs {
			if !seen[s] {
				walk(s)
			}
		}
		order = append(order, i)
	}
	if len(g.Blocks) > 0 {
		walk(0)
	}
	return order
}

// ReversePostorder returns reachable blocks in reverse postorder — the
// canonical iteration order for forward dataflow problems.
func (g *CFG) ReversePostorder() []int {
	po := g.postorder()
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// Preds returns the predecessor lists of every block.
func (g *CFG) Preds() [][]int {
	preds := make([][]int, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.Index)
		}
	}
	for _, p := range preds {
		sort.Ints(p)
	}
	return preds
}
