package analysis

import (
	"repro/internal/codec"
	// Image analysis resolves schemes through the codec registry (for
	// geometry and scratch-RAM declarations), so every analyzer binary
	// must see the full registry — not just the builtins — or images of
	// registered non-builtin codecs are reported as unregistered.
	_ "repro/internal/codec/all"
	"repro/internal/isa"
	"repro/internal/program"
)

// AnalyzeImage runs every image-level rule plus the handler rules (when
// a decompressor segment is present) and returns the sorted report.
//
// Image rules check what the re-layout and compression pipeline must
// preserve for decompression to stay invisible (paper §3): every control
// transfer resolves to mapped code, compressed-region targets fall on
// lines the placement map can materialise, swic stays confined to the
// handler, and no procedure can run off its own end into whatever
// happens to be placed next.
func AnalyzeImage(im *program.Image) *Report {
	a := &analyzer{im: im, rep: &Report{}}
	a.geometry()
	a.buildUnits()
	a.unitRules()
	a.targetRules()
	a.reachability()
	a.unclaimedCode()
	if h := im.Segment(program.SegDecompressor); h != nil {
		info := HandlerInfo{Name: program.SegDecompressor, ShadowRF: false}
		if im.Compress != nil {
			info.ShadowRF = im.Compress.ShadowRF
			if c, err := codec.Lookup(string(im.Compress.Scheme)); err == nil {
				info.ScratchBytes = c.Geometry().ScratchBytes
			}
		}
		AnalyzeHandlerSegment(h, info, a.rep)
	}
	a.rep.Sort()
	return a.rep
}

// unit is one analyzed span of code: a procedure with its CFG.
type unit struct {
	proc program.Procedure
	g    *CFG
}

type analyzer struct {
	im    *program.Image
	rep   *Report
	units []unit
}

// fillBytes returns the decompression-line granularity of the image, or
// 0 when it has no fixed line (native images, procedure granularity).
// The scheme's registered codec declares it; an unregistered scheme is
// reported by geometry(), so 0 (no line check) is the right fallback.
func (a *analyzer) fillBytes() uint32 {
	if a.im.Compress == nil {
		return 0
	}
	c, err := codec.Lookup(string(a.im.Compress.Scheme))
	if err != nil {
		return 0
	}
	return uint32(c.Geometry().FillBytes)
}

// geometry cross-checks CompressionInfo against the segments: the
// decompressed region must exactly cover the virtual .text and be a
// whole number of decompression lines, and each base register the
// handler will read must point at its segment (paper Figure 2/3).
func (a *analyzer) geometry() {
	ci := a.im.Compress
	if ci == nil {
		return
	}
	add := func(format string, args ...interface{}) {
		a.rep.add(RuleCompGeometry, Error, 0, "", format, args...)
	}
	text := a.im.Segment(program.SegText)
	if text == nil || !text.Virtual {
		add("compressed image lacks a virtual %s segment", program.SegText)
	} else {
		if ci.CompStart != text.Base || ci.CompEnd != text.End() {
			add("compressed region [%#x,%#x) does not match %s [%#x,%#x)",
				ci.CompStart, ci.CompEnd, program.SegText, text.Base, text.End())
		}
	}
	if fb := a.fillBytes(); fb != 0 {
		if ci.CompStart%fb != 0 || (ci.CompEnd-ci.CompStart)%fb != 0 {
			add("compressed region [%#x,%#x) is not a whole number of %d-byte decompression lines",
				ci.CompStart, ci.CompEnd, fb)
		}
	}
	checkBase := func(name string, base uint32, required bool) {
		seg := a.im.Segment(name)
		switch {
		case seg == nil && required:
			add("scheme %s requires a %s segment", ci.Scheme, name)
		case seg != nil && base != seg.Base:
			add("%s base register %#x does not match segment base %#x", name, base, seg.Base)
		}
	}
	c, err := codec.Lookup(string(ci.Scheme))
	if err != nil {
		add("image compressed with unregistered scheme: %v", err)
		return
	}
	geo := c.Geometry()
	checkBase(program.SegDict, ci.DictBase, true)
	checkBase(program.SegIndices, ci.IndicesBase, geo.NeedsIndices)
	checkBase(program.SegLAT, ci.LATBase, geo.NeedsLAT)
	if a.im.Segment(program.SegDecompressor) == nil {
		add("compressed image has no %s segment", program.SegDecompressor)
	}
}

// buildUnits decodes each procedure into its CFG.
func (a *analyzer) buildUnits() {
	for _, p := range a.im.Procs {
		seg := a.im.SegmentAt(p.Addr)
		if seg == nil || !program.IsCodeSeg(seg.Name) || p.Size == 0 {
			continue
		}
		data := seg.Data[p.Addr-seg.Base:]
		n := int(p.Size)
		if n > len(data) {
			n = len(data)
		}
		words := make([]isa.Word, n/4)
		for i := range words {
			words[i] = seg.Word(p.Addr + uint32(4*i))
		}
		a.units = append(a.units, unit{proc: p, g: BuildCFG(p.Name, p.Addr, words)})
	}
}

// unitRules checks per-procedure properties: decodability, confinement
// of swic to the handler RAM, fallthrough off the procedure end, and
// intra-procedure dead blocks.
func (a *analyzer) unitRules() {
	for _, u := range a.units {
		reach := u.g.Reachable()
		for i, b := range u.g.Blocks {
			if !reach[i] {
				a.rep.add(RuleDeadCode, Warning, b.Start(), u.proc.Name,
					"unreachable block (%d instructions)", len(b.Instrs))
				continue
			}
			if b.FallsOff {
				a.rep.add(RuleFallthroughEnd, Error, b.Last().PC, u.proc.Name,
					"execution can fall off the end of the procedure")
			}
			for _, in := range b.Instrs {
				switch in.Kind {
				case isa.KindIllegal:
					a.rep.add(RuleIllegalInstr, Error, in.PC, u.proc.Name,
						"unrecognised encoding %#08x in reachable code", in.Word)
				case isa.KindSwic:
					a.rep.add(RuleSwicOutside, Error, in.PC, u.proc.Name,
						"swic outside the decompressor RAM: only the handler may write the I-cache")
				case isa.KindIret:
					a.rep.add(RuleSwicOutside, Error, in.PC, u.proc.Name,
						"iret outside the decompressor RAM")
				}
			}
		}
	}
}

// targetRules resolves every control transfer that leaves its procedure:
// the target must land inside some procedure (or the handler never
// reaches it), and in a compressed image its whole decompression line
// must be mapped so the handler can materialise it (paper §3.2).
func (a *analyzer) targetRules() {
	for _, u := range a.units {
		for _, b := range u.g.Blocks {
			for _, t := range b.ExtTargets {
				src := b.Last().PC
				w := b.Last().Word
				dst := a.im.ProcAt(t)
				if dst == nil {
					a.rep.add(RuleTargetBounds, Error, src, u.proc.Name,
						"%s targets %#x, outside every procedure",
						isa.Disassemble(src, w), t)
					continue
				}
				a.lineMapped(src, u.proc.Name, t)
				switch {
				case isJAL(w):
					if t != dst.Addr {
						a.rep.add(RuleCallMidProc, Warning, src, u.proc.Name,
							"jal targets %#x, %d bytes into %s", t, t-dst.Addr, dst.Name)
					}
				case b.Last().Kind == isa.KindBranch:
					a.rep.add(RuleBranchCrossProc, Warning, src, u.proc.Name,
						"conditional branch leaves %s for %s", u.proc.Name, dst.Name)
				}
			}
		}
	}
	// The entry point is a target too.
	if p := a.im.ProcAt(a.im.Entry); p == nil {
		a.rep.add(RuleTargetBounds, Error, a.im.Entry, "",
			"entry point %#x is outside every procedure", a.im.Entry)
	} else {
		a.lineMapped(0, "entry", a.im.Entry)
	}
}

// lineMapped checks that the decompression line containing target is
// fully inside the mapped compressed region.
func (a *analyzer) lineMapped(src uint32, unit string, target uint32) {
	ci := a.im.Compress
	fb := a.fillBytes()
	if ci == nil || fb == 0 {
		return
	}
	if target < ci.CompStart || target >= ci.CompEnd {
		return // native region target
	}
	line := target &^ (fb - 1)
	if line < ci.CompStart || line+fb > ci.CompEnd {
		a.rep.add(RuleTargetUnmapped, Error, src, unit,
			"target %#x lies on decompression line [%#x,%#x) not fully inside the mapped region [%#x,%#x)",
			target, line, line+fb, ci.CompStart, ci.CompEnd)
	}
}

// reachability walks the procedure-level call graph. Roots are the entry
// procedure and every procedure whose address is taken from a non-code
// segment (jump tables, function-pointer tables); edges are direct
// transfers plus address formation (la/HI16+LO16) in code, which is how
// indirect calls acquire their targets. Procedures no root reaches are
// dead code: bytes the compressed image pays for but can never execute.
func (a *analyzer) reachability() {
	if len(a.units) == 0 {
		return
	}
	procIdx := map[string]int{}
	for i, u := range a.units {
		procIdx[u.proc.Name] = i
	}
	atAddr := func(addr uint32) int {
		if p := a.im.ProcAt(addr); p != nil {
			if i, ok := procIdx[p.Name]; ok {
				return i
			}
		}
		return -1
	}

	// Reloc-derived references, attributed to the segment holding the site.
	edges := make([][]int, len(a.units))
	var roots []int
	if i := atAddr(a.im.Entry); i >= 0 {
		roots = append(roots, i)
	}
	for _, r := range a.im.Relocs {
		sym, ok := a.im.Symbols[r.Sym]
		if !ok {
			continue
		}
		dst := atAddr(sym + uint32(r.Add))
		if dst < 0 {
			continue
		}
		if program.IsCodeSeg(r.Seg) {
			seg := a.im.Segment(r.Seg)
			if seg == nil {
				continue
			}
			if src := atAddr(seg.Base + r.Off); src >= 0 {
				edges[src] = append(edges[src], dst)
				continue
			}
		}
		// Address taken from data (or from unclaimed code): global root.
		roots = append(roots, dst)
	}
	// Direct control transfers.
	for i, u := range a.units {
		for t := range u.g.ExternalTargets() {
			if dst := atAddr(t); dst >= 0 {
				edges[i] = append(edges[i], dst)
			}
		}
	}

	live := make([]bool, len(a.units))
	stack := roots
	for _, r := range roots {
		live[r] = true
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !live[i] {
			live[i] = true
		}
		for _, d := range edges[i] {
			if !live[d] {
				live[d] = true
				stack = append(stack, d)
			}
		}
	}
	for i, u := range a.units {
		if !live[i] {
			a.rep.add(RuleDeadCode, Warning, u.proc.Addr, u.proc.Name,
				"procedure is unreachable from the entry point (%d bytes of dead code)",
				u.proc.Size)
		}
	}
}

// DeadProcs returns the names of procedures the analyzer proves
// unreachable. internal/selective uses it to report (or exclude) lines
// that can never fault a decompression.
func DeadProcs(im *program.Image) map[string]bool {
	rep := AnalyzeImage(im)
	dead := map[string]bool{}
	for _, f := range rep.Findings {
		if f.Rule == RuleDeadCode && f.Unit != "" && im.ProcByName(f.Unit) != nil {
			p := im.ProcByName(f.Unit)
			if p.Addr == f.PC { // whole-procedure finding, not a block
				dead[f.Unit] = true
			}
		}
	}
	return dead
}

// unclaimedCode scans code-segment bytes outside every procedure: the
// layout engine pads the compressed region with nops, but anything else
// is code the procedure table cannot account for (Info only — it is
// unreachable by construction unless something jumps at it, which the
// target rules catch).
func (a *analyzer) unclaimedCode() {
	for _, seg := range a.im.CodeSegments() {
		for addr := seg.Base; addr+4 <= seg.End(); addr += 4 {
			if p := a.im.ProcAt(addr); p != nil {
				addr = p.Addr + p.Size - 4
				continue
			}
			if w := seg.Word(addr); w != isa.NOP {
				a.rep.add(RuleUnclaimedCode, Info, addr, seg.Name,
					"non-nop word %#08x outside every procedure", w)
			}
		}
	}
}
