// Package analysis is the static program analyzer for CLR32 images: it
// builds control-flow graphs from decoded instructions, computes register
// def-use and liveness, and checks the invariants the run-time
// decompression architecture depends on (paper §3–§4) — that every
// branch lands on mapped code, that swic never appears outside the
// decompressor RAM, and that a decompression handler is architecturally
// invisible: it preserves every user register it touches.
//
// The same engine backs the cclint CLI, the opt-in core.Compress lint
// pass and the test suites, so a broken handler or a bad re-layout is
// caught in milliseconds without a lockstep simulation run.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Severity ranks a finding.
type Severity int

// Severities. Info findings are advisory (suppressed by default in
// cclint); Warning findings are suspicious but runnable; Error findings
// describe code that can misbehave under decompression.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Rule identifiers. Each invariant has a stable ID shared by the tests,
// cclint output and docs/analysis.md.
const (
	RuleIllegalInstr    = "illegal-instr"     // reachable word does not decode
	RuleFallthroughEnd  = "fallthrough-end"   // execution can run off the end of a procedure
	RuleDeadCode        = "dead-code"         // unreachable procedure or basic block
	RuleTargetBounds    = "target-bounds"     // branch/jump target outside every code region
	RuleTargetUnmapped  = "target-unmapped"   // target's decompression line not fully mapped
	RuleBranchCrossProc = "branch-cross-proc" // conditional branch leaves its procedure
	RuleCallMidProc     = "call-mid-proc"     // jal target is not a procedure entry
	RuleSwicOutside     = "swic-outside"      // swic outside the decompressor RAM
	RuleCompGeometry    = "comp-geometry"     // CompressionInfo inconsistent with segments
	RuleUnclaimedCode   = "unclaimed-code"    // non-nop code bytes outside every procedure

	RuleHandlerClobber    = "handler-clobber"     // user-visible register state not preserved
	RuleHandlerNoIret     = "handler-no-iret"     // a handler path ends without iret
	RuleHandlerNoSwic     = "handler-no-swic"     // handler cannot fill an I-cache line
	RuleHandlerEscape     = "handler-escape"      // control leaves the handler RAM (or syscall)
	RuleHandlerStore      = "handler-store"       // store outside the $sp red zone
	RuleHandlerShadowRead = "handler-shadow-read" // shadow-RF handler reads stale register
	RuleHandlerSysreg     = "handler-sysreg"      // handler writes exception state via mtc0
	RuleHandlerCoverage   = "handler-coverage"    // handler bytes outside the save/restore proof
)

// Finding is one diagnostic: a rule violation at a program counter.
type Finding struct {
	Rule     string
	Severity Severity
	PC       uint32 // address of the offending instruction (0 if image-level)
	Unit     string // procedure or region the PC belongs to
	Message  string
}

func (f Finding) String() string {
	if f.PC == 0 && f.Unit == "" {
		return fmt.Sprintf("%s [%s] %s", f.Severity, f.Rule, f.Message)
	}
	return fmt.Sprintf("%s [%s] %#08x (%s): %s", f.Severity, f.Rule, f.PC, f.Unit, f.Message)
}

// Report collects the findings of one analysis run.
type Report struct {
	Findings []Finding
}

func (r *Report) add(rule string, sev Severity, pc uint32, unit, format string, args ...interface{}) {
	r.Findings = append(r.Findings, Finding{
		Rule: rule, Severity: sev, PC: pc, Unit: unit,
		Message: fmt.Sprintf(format, args...),
	})
}

// Sort orders findings by severity (most severe first), then PC.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := &r.Findings[i], &r.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.PC < b.PC
	})
}

// AtLeast returns the findings with severity >= min.
func (r *Report) AtLeast(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// Count returns how many findings have severity >= min.
func (r *Report) Count(min Severity) int { return len(r.AtLeast(min)) }

// Rules returns the distinct rule IDs present at severity >= min.
func (r *Report) Rules(min Severity) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Findings {
		if f.Severity >= min && !seen[f.Rule] {
			seen[f.Rule] = true
			out = append(out, f.Rule)
		}
	}
	sort.Strings(out)
	return out
}

// regOrHILO names a register index for messages, where HI/LO use the
// pseudo-indices below.
const (
	regHI = 32
	regLO = 33
)

func regName(r int) string {
	switch r {
	case regHI:
		return "$hi"
	case regLO:
		return "$lo"
	}
	return isa.RegName(r)
}
