package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/synth"
)

// loadFixture assembles a testdata source file.
func loadFixture(t *testing.T, name string) *program.Image {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	im, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return im
}

// handlerFindings assembles a broken-handler fixture and returns the
// rule IDs it fires at warning or above.
func handlerFindings(t *testing.T, file string, shadowRF bool) map[string]bool {
	t.Helper()
	im := loadFixture(t, file)
	seg := im.Segment(program.SegDecompressor)
	if seg == nil {
		t.Fatalf("%s: no decompressor segment", file)
	}
	rep := analyzeHandler(seg, strings.TrimSuffix(file, ".s"), shadowRF)
	rules := map[string]bool{}
	for _, f := range rep.AtLeast(analysis.Warning) {
		rules[f.Rule] = true
	}
	return rules
}

// TestBrokenHandlerFixtures proves every handler rule fires on a
// deliberately broken decompressor.
func TestBrokenHandlerFixtures(t *testing.T) {
	cases := []struct {
		file     string
		shadowRF bool
		want     string
	}{
		{"bad_clobber.s", false, analysis.RuleHandlerClobber},
		{"bad_restore.s", false, analysis.RuleHandlerClobber},
		{"bad_noiret.s", false, analysis.RuleHandlerNoIret},
		{"bad_noswic.s", false, analysis.RuleHandlerNoSwic},
		{"bad_escape.s", false, analysis.RuleHandlerEscape},
		{"bad_store.s", false, analysis.RuleHandlerStore},
		{"bad_shadowread.s", true, analysis.RuleHandlerShadowRead},
		{"bad_sysreg.s", false, analysis.RuleHandlerSysreg},
		{"bad_hilo.s", true, analysis.RuleHandlerClobber},
		{"bad_deadcode.s", false, analysis.RuleHandlerCoverage},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			rules := handlerFindings(t, c.file, c.shadowRF)
			if !rules[c.want] {
				t.Errorf("%s: rule %s did not fire (got %v)", c.file, c.want, rules)
			}
		})
	}
}

// TestGoodHandlerFixturesStayQuiet: the fixtures must fire only their
// intended rules, not drown everything in noise — the clobber fixture,
// for example, must not also trip the escape or store rules.
func TestFixtureSpecificity(t *testing.T) {
	rules := handlerFindings(t, "bad_clobber.s", false)
	for _, r := range []string{analysis.RuleHandlerEscape, analysis.RuleHandlerStore,
		analysis.RuleHandlerNoIret, analysis.RuleHandlerNoSwic} {
		if rules[r] {
			t.Errorf("bad_clobber.s unexpectedly fired %s", r)
		}
	}
}

// TestUserProgramRules: swic/iret outside the handler RAM, fallthrough
// off a procedure end, and dead code all fire on the user-code fixture.
func TestUserProgramRules(t *testing.T) {
	im := loadFixture(t, "bad_user_swic.s")
	rep := analysis.AnalyzeImage(im)
	rules := map[string]bool{}
	for _, f := range rep.AtLeast(analysis.Warning) {
		rules[f.Rule] = true
	}
	for _, want := range []string{
		analysis.RuleSwicOutside,
		analysis.RuleFallthroughEnd,
		analysis.RuleDeadCode,
	} {
		if !rules[want] {
			t.Errorf("rule %s did not fire on bad_user_swic.s (got %v)", want, rules)
		}
	}
}

// TestTargetBounds: a jump to an address outside every procedure fires
// target-bounds.
func TestTargetBounds(t *testing.T) {
	b := asm.NewBuilder()
	b.Section(program.SegText, program.NativeBase, false)
	b.Proc("main")
	b.Label("main")
	// j to a word-aligned address far outside the image.
	b.Raw(isa.EncodeJ(isa.OpJ, (program.NativeBase+0x100000)>>2))
	b.EndProc()
	b.SetEntry("main")
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.AnalyzeImage(im)
	found := false
	for _, f := range rep.AtLeast(analysis.Warning) {
		if f.Rule == analysis.RuleTargetBounds {
			found = true
		}
	}
	if !found {
		t.Errorf("target-bounds did not fire: %v", rep.Findings)
	}
}

// TestCompGeometryAndUnmapped: corrupting a compressed image's geometry
// fires comp-geometry, and shrinking the mapped region below a branch
// target fires target-unmapped.
func TestCompGeometryAndUnmapped(t *testing.T) {
	p, _ := synth.ByName("pegwit")
	nat, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(nat, core.Options{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	im := res.Image

	// Misalign the region end: no longer a whole number of lines.
	savedEnd := im.Compress.CompEnd
	im.Compress.CompEnd -= 4
	rep := analysis.AnalyzeImage(im)
	if rules := ruleSet(rep); !rules[analysis.RuleCompGeometry] {
		t.Errorf("comp-geometry did not fire on misaligned CompEnd (got %v)", rules)
	}

	// Cut the region off mid-line just past the entry point: the entry is
	// still inside [CompStart,CompEnd) but its decompression line now
	// straddles the boundary, so the handler could never fill it.
	if im.Entry < im.Compress.CompStart || im.Entry%32 >= 28 {
		t.Fatalf("entry %#x not suitable for the unmapped-line case", im.Entry)
	}
	im.Compress.CompEnd = im.Entry + 4
	rep = analysis.AnalyzeImage(im)
	if rules := ruleSet(rep); !rules[analysis.RuleTargetUnmapped] {
		t.Errorf("target-unmapped did not fire on straddling line (got %v)", rules)
	}
	im.Compress.CompEnd = savedEnd
}

// TestIllegalInstr: a reachable undecodable word fires illegal-instr.
func TestIllegalInstr(t *testing.T) {
	b := asm.NewBuilder()
	b.Section(program.SegText, program.NativeBase, false)
	b.Proc("main")
	b.Label("main")
	b.Raw(0xFC000000) // primary opcode 0x3F: not a CLR32 instruction
	b.Imm("ori", isa.RegV0, isa.RegZero, 10)
	b.Syscall()
	b.EndProc()
	b.SetEntry("main")
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rules := ruleSet(analysis.AnalyzeImage(im)); !rules[analysis.RuleIllegalInstr] {
		t.Errorf("illegal-instr did not fire (got %v)", rules)
	}
}

func ruleSet(rep *analysis.Report) map[string]bool {
	rules := map[string]bool{}
	for _, f := range rep.AtLeast(analysis.Warning) {
		rules[f.Rule] = true
	}
	return rules
}

// TestRuleCoverage counts the distinct rule IDs exercised by the
// negative fixtures above: the acceptance bar is at least five.
func TestRuleCoverage(t *testing.T) {
	all := map[string]bool{}
	for _, c := range []struct {
		file     string
		shadowRF bool
	}{
		{"bad_clobber.s", false}, {"bad_restore.s", false}, {"bad_noiret.s", false},
		{"bad_noswic.s", false}, {"bad_escape.s", false}, {"bad_store.s", false},
		{"bad_shadowread.s", true}, {"bad_sysreg.s", false}, {"bad_hilo.s", true},
		{"bad_deadcode.s", false},
	} {
		for r := range handlerFindings(t, c.file, c.shadowRF) {
			all[r] = true
		}
	}
	im := loadFixture(t, "bad_user_swic.s")
	for r := range ruleSet(analysis.AnalyzeImage(im)) {
		all[r] = true
	}
	if len(all) < 5 {
		t.Errorf("negative fixtures exercise only %d rule IDs: %v", len(all), all)
	}
}
