package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/synth"
)

// reportClean fails the test if the report has any warning-or-worse
// findings, printing each one.
func reportClean(t *testing.T, name string, rep *analysis.Report) {
	t.Helper()
	for _, f := range rep.AtLeast(analysis.Warning) {
		t.Errorf("%s: %s", name, f)
	}
}

// analyzeHandler runs the handler rules on a built decompressor.
func analyzeHandler(seg *program.Segment, name string, shadowRF bool) *analysis.Report {
	rep := &analysis.Report{}
	analysis.AnalyzeHandlerSegment(seg, analysis.HandlerInfo{Name: name, ShadowRF: shadowRF}, rep)
	rep.Sort()
	return rep
}

// TestSynthProgramsClean is the positive gate: the analyzer must report
// nothing on any shipped benchmark, native or compressed under either
// paper scheme, with and without the shadow register file.
func TestSynthProgramsClean(t *testing.T) {
	for _, p := range synth.Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			im, err := synth.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			reportClean(t, p.Name+"/native", analysis.AnalyzeImage(im))
			for _, opt := range []core.Options{
				{Scheme: program.SchemeDict},
				{Scheme: program.SchemeDict, ShadowRF: true},
				{Scheme: program.SchemeCodePack},
				{Scheme: program.SchemeCodePack, ShadowRF: true},
			} {
				res, err := core.Compress(im, opt)
				if err != nil {
					t.Fatalf("%v: %v", opt.Scheme, err)
				}
				name := p.Name + "/" + string(opt.Scheme)
				if opt.ShadowRF {
					name += "+RF"
				}
				reportClean(t, name, analysis.AnalyzeImage(res.Image))
			}
		})
	}
}

// TestShippedHandlersClean is the regression gate on the decompressors:
// every handler variant the paper evaluates must verify clean against
// the invisibility contract.
func TestShippedHandlersClean(t *testing.T) {
	for _, v := range decomp.Variants() {
		seg, err := decomp.Build(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		reportClean(t, v.String(), analyzeHandler(seg, v.String(), v.ShadowRF))
	}
}

// TestCoreLintOption checks the core.Compress wiring: Options.Lint
// populates Result.Lint and a shipped benchmark comes back clean.
func TestCoreLintOption(t *testing.T) {
	p, _ := synth.ByName("pegwit")
	im, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(im, core.Options{Scheme: program.SchemeDict, Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lint == nil {
		t.Fatal("Options.Lint set but Result.Lint is nil")
	}
	if !res.Lint.Clean() {
		t.Errorf("lint not clean: native=%v compressed=%v", res.Lint.Native, res.Lint.Compressed)
	}
	res, err = core.Compress(im, core.Options{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lint != nil {
		t.Error("Result.Lint populated without Options.Lint")
	}
}

// TestCFGShape sanity-checks block splitting and edges on a handler CFG.
func TestCFGShape(t *testing.T) {
	seg, err := decomp.Build(decomp.Variant{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildSegmentCFG("dict", seg)
	if len(g.Blocks) < 3 {
		t.Fatalf("dict handler CFG has %d blocks, want >= 3 (entry, loop, epilogue)", len(g.Blocks))
	}
	// The copy loop must appear as a back edge.
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s <= b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("dict handler CFG has no back edge; the copy loop is missing")
	}
	for i, ok := range g.Reachable() {
		if !ok {
			t.Errorf("block %d unreachable in dict handler", i)
		}
	}
	if g.End() != seg.Base+uint32(len(seg.Data)) {
		t.Errorf("CFG end %#x != segment end %#x", g.End(), seg.Base+uint32(len(seg.Data)))
	}
}

// TestLivenessOnHandler checks the liveness solver's entry set on the
// single-RF dictionary handler: it reads $sp and the four registers it
// saves before defining anything else; a shadow-RF handler reads nothing.
func TestLivenessOnHandler(t *testing.T) {
	seg, err := decomp.Build(decomp.Variant{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildSegmentCFG("dict", seg)
	in := analysis.ComputeLiveness(g, 0).In[0]
	for _, r := range []int{isa.RegSP, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4} {
		if !in.Has(r) {
			t.Errorf("dict handler entry liveness missing %s", isa.RegName(r))
		}
	}

	seg, err = decomp.Build(decomp.Variant{Scheme: program.SchemeDict, ShadowRF: true})
	if err != nil {
		t.Fatal(err)
	}
	g = analysis.BuildSegmentCFG("dict+RF", seg)
	if in := analysis.ComputeLiveness(g, 0).In[0]; in != 0 {
		t.Errorf("dict+RF handler reads %v before writing", in.Regs())
	}
}

// TestDeadProcs: shipped benchmarks have no unreachable procedures.
func TestDeadProcs(t *testing.T) {
	p, _ := synth.ByName("pegwit")
	im, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if dead := analysis.DeadProcs(im); len(dead) != 0 {
		t.Errorf("synth image reports dead procs: %v", dead)
	}
}

func BenchmarkAnalyzeImage(b *testing.B) {
	p, _ := synth.ByName("cc1")
	im, err := synth.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Compress(im, core.Options{Scheme: program.SchemeDict})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := analysis.AnalyzeImage(res.Image)
		if rep.Count(analysis.Warning) != 0 {
			b.Fatal("unexpected findings")
		}
	}
}
