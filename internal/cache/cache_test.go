package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var icacheCfg = Config{SizeBytes: 16 * 1024, LineBytes: 32, Ways: 2}

func TestConfigValidate(t *testing.T) {
	if err := icacheCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Ways: 2},
		{SizeBytes: 1000, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{SizeBytes: 64, LineBytes: 64, Ways: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if got := icacheCfg.Sets(); got != 256 {
		t.Fatalf("Sets = %d, want 256", got)
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew(icacheCfg, true)
	if c.Access(0x400000) {
		t.Fatal("cold miss expected")
	}
	line := make([]byte, 32)
	line[0] = 0xAB
	c.Fill(0x400000, line)
	if !c.Access(0x400000) || !c.Access(0x40001C) {
		t.Fatal("hit expected after fill")
	}
	if c.Access(0x400020) {
		t.Fatal("next line should miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
	if w, ok := c.ReadWord(0x400000); !ok || w != 0xAB {
		t.Fatalf("ReadWord = %#x,%v", w, ok)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way: three lines mapping to the same set evict the least recently
	// used one.
	c := MustNew(Config{SizeBytes: 128, LineBytes: 32, Ways: 2}, false)
	setStride := uint32(c.Config().Sets() * 32)
	a, b, d := uint32(0), setStride, 2*setStride
	c.Access(a)
	c.Fill(a, nil)
	c.Access(b)
	c.Fill(b, nil)
	c.Access(a) // a now MRU
	c.Access(d) // miss
	c.Fill(d, nil)
	if !c.Probe(a) {
		t.Fatal("a (MRU) must survive")
	}
	if c.Probe(b) {
		t.Fatal("b (LRU) must be evicted")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

func TestSwicClaimsLine(t *testing.T) {
	c := MustNew(icacheCfg, true)
	addr := uint32(0x800000)
	claimed := c.WriteWord(addr, 0x11111111)
	if !claimed {
		t.Fatal("first swic must claim the line")
	}
	if c.WriteWord(addr+4, 0x22222222) {
		t.Fatal("second swic to same line must not claim")
	}
	if !c.Probe(addr) {
		t.Fatal("line must be present after swic")
	}
	if w, _ := c.ReadWord(addr + 4); w != 0x22222222 {
		t.Fatalf("word = %#x", w)
	}
	// Unwritten words of a claimed line read as zero.
	if w, _ := c.ReadWord(addr + 8); w != 0 {
		t.Fatalf("unwritten word = %#x", w)
	}
	if c.Stats.SwicLines != 1 {
		t.Fatalf("SwicLines = %d", c.Stats.SwicLines)
	}
}

func TestSwicEvictedLineIsZeroed(t *testing.T) {
	// A line evicted and re-claimed must not expose stale bytes.
	c := MustNew(Config{SizeBytes: 64, LineBytes: 32, Ways: 1}, true)
	c.WriteWord(0x1000, 0xAAAAAAAA)
	c.WriteWord(0x1004, 0xBBBBBBBB)
	// Same set, different tag: evicts.
	c.WriteWord(0x2000, 0xCCCCCCCC)
	if w, _ := c.ReadWord(0x2004); w != 0 {
		t.Fatalf("stale data leaked: %#x", w)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := MustNew(icacheCfg, true)
	c.Fill(0x400000, make([]byte, 32))
	c.Fill(0x400020, make([]byte, 32))
	c.Invalidate(0x400000)
	if c.Probe(0x400000) || !c.Probe(0x400020) {
		t.Fatal("Invalidate wrong")
	}
	c.Flush()
	if c.Probe(0x400020) {
		t.Fatal("Flush wrong")
	}
}

func TestUpdateWordOnlyOnHit(t *testing.T) {
	c := MustNew(icacheCfg, true)
	c.UpdateWord(0x400000, 7) // miss: must not allocate
	if c.Probe(0x400000) {
		t.Fatal("UpdateWord must not allocate")
	}
	c.Fill(0x400000, make([]byte, 32))
	c.UpdateWord(0x400004, 7)
	if w, _ := c.ReadWord(0x400004); w != 7 {
		t.Fatal("UpdateWord on hit must write")
	}
}

func TestLineBase(t *testing.T) {
	c := MustNew(icacheCfg, false)
	if c.LineBase(0x40001F) != 0x400000 || c.LineBase(0x400020) != 0x400020 {
		t.Fatal("LineBase wrong")
	}
}

// Property: after Fill(addr), Probe(addr') is true for every addr' in the
// same line, and the number of valid lines never exceeds capacity.
func TestQuickFillProbe(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2}, false)
	f := func(addr uint32) bool {
		addr &^= 3
		c.Fill(addr, nil)
		base := c.LineBase(addr)
		for o := uint32(0); o < 32; o += 4 {
			if !c.Probe(base + o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a data-storing cache returns exactly the bytes last written to
// a line, no matter the interleaving of fills and swic writes.
func TestQuickDataFidelity(t *testing.T) {
	c := MustNew(Config{SizeBytes: 512, LineBytes: 16, Ways: 2}, true)
	shadow := map[uint32]uint32{} // word addr -> value, for present lines only
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		addr := uint32(r.Intn(64)) * 4 // small space to force conflicts
		switch r.Intn(3) {
		case 0: // swic
			v := r.Uint32()
			base := c.LineBase(addr)
			if !c.Probe(base) {
				// claiming a new line: forget shadow of whatever was evicted
				// (detect below by re-checking presence)
				for a := range shadow {
					if !c.Probe(a) {
						delete(shadow, a)
					}
				}
				for o := uint32(0); o < 16; o += 4 {
					shadow[base+o] = 0
				}
			}
			c.WriteWord(addr, v)
			shadow[addr] = v
		case 1: // fill with pattern
			base := c.LineBase(addr)
			data := make([]byte, 16)
			for j := range data {
				data[j] = byte(r.Intn(256))
			}
			c.Fill(base, data)
			for a := range shadow {
				if !c.Probe(a) {
					delete(shadow, a)
				}
			}
			for o := uint32(0); o < 16; o += 4 {
				shadow[base+o] = uint32(data[o]) | uint32(data[o+1])<<8 |
					uint32(data[o+2])<<16 | uint32(data[o+3])<<24
			}
		case 2: // read & verify
			if want, ok := shadow[addr]; ok && c.Probe(addr) {
				if got, ok2 := c.ReadWord(addr); !ok2 || got != want {
					t.Fatalf("iter %d: word %#x = %#x, want %#x", i, addr, got, want)
				}
			}
		}
	}
}

// TestAssociativitySweep checks the classic geometry result: for a
// cyclic working set larger than one way but smaller than the cache,
// higher associativity cannot increase conflict misses at equal size.
func TestAssociativitySweep(t *testing.T) {
	misses := func(ways int) uint64 {
		c := MustNew(Config{SizeBytes: 1024, LineBytes: 32, Ways: ways}, false)
		// Two rounds over 24 lines (768B) in a 1KB cache.
		for round := 0; round < 4; round++ {
			for i := 0; i < 24; i++ {
				addr := uint32(i * 32)
				if !c.Access(addr) {
					c.Fill(addr, nil)
				}
			}
		}
		return c.Stats.Misses
	}
	m1, m2, m4 := misses(1), misses(2), misses(4)
	// Fully-fitting working set: with enough associativity only the 24
	// cold misses remain.
	if m4 != 24 {
		t.Fatalf("4-way misses = %d, want cold-only 24", m4)
	}
	if m2 < m4 || m1 < m2 {
		t.Fatalf("associativity should not hurt here: %d/%d/%d", m1, m2, m4)
	}
}

// TestDirectMappedConflict demonstrates the pathological cyclic case:
// two lines aliasing one set thrash a direct-mapped cache but coexist in
// a 2-way cache.
func TestDirectMappedConflict(t *testing.T) {
	run := func(ways int) uint64 {
		c := MustNew(Config{SizeBytes: 256, LineBytes: 32, Ways: ways}, false)
		stride := uint32(c.Config().Sets() * 32)
		for i := 0; i < 50; i++ {
			for _, a := range []uint32{0, stride} {
				if !c.Access(a) {
					c.Fill(a, nil)
				}
			}
		}
		return c.Stats.Misses
	}
	if dm := run(1); dm != 100 {
		t.Fatalf("direct-mapped should thrash: %d misses", dm)
	}
	if tw := run(2); tw != 2 {
		t.Fatalf("2-way should hold both: %d misses", tw)
	}
}
