// Package cache implements the set-associative, LRU caches of the
// simulated memory hierarchy, including the explicit line-write operation
// (swic) that lets the software decompressor fill instruction-cache lines.
package cache

import (
	"encoding/binary"
	"fmt"
)

// Config sizes a cache. The paper's baseline I-cache is 16KB/32B/2-way and
// the D-cache 8KB/16B/2-way, both LRU.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Validate checks the configuration for power-of-two geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	pow2 := func(n int) bool { return n&(n-1) == 0 }
	if !pow2(c.SizeBytes) || !pow2(c.LineBytes) || !pow2(c.Ways) {
		return fmt.Errorf("cache: geometry must be powers of two: %+v", c)
	}
	if c.SizeBytes < c.LineBytes*c.Ways {
		return fmt.Errorf("cache: size %d too small for %d ways of %dB lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

type line struct {
	valid bool
	tag   uint32
	lru   uint64
	data  []byte // nil when the cache does not store data
}

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
	LineFills uint64 // hardware fills
	SwicLines uint64 // lines claimed by explicit writes
}

// MissRatio returns Misses/Accesses (0 when idle).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Observer receives per-set cache events. Every call site is
// nil-checked, so an unobserved cache pays one pointer compare per
// event; internal/telemetry's set counters (the cache heatmap)
// implement it.
type Observer interface {
	// CacheMiss reports a lookup miss in set. conflict is true when
	// every way of the set already held a valid line — the miss will
	// evict, distinguishing conflict/capacity misses from cold ones.
	CacheMiss(set int, conflict bool)
	// CacheEvict reports a valid line being replaced in set (by a fill
	// or a swic line claim).
	CacheEvict(set int)
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg        Config
	sets       [][]line
	clock      uint64
	storesData bool
	lineShift  uint
	setShift   uint
	setMask    uint32

	// MRU hint: the line of the last Access hit, keyed by its
	// addr>>lineShift (which identifies set and tag uniquely).
	// Consecutive accesses to one line — the common fetch pattern —
	// skip the associative lookup; side effects (access count, LRU
	// clock) are identical. Any operation that moves or invalidates
	// lines clears the hint.
	mruIdx  uint32
	mruLine *line

	Stats Stats
	// Obs, when set, observes per-set miss/conflict/eviction events.
	Obs Observer
}

// New builds a cache. storesData selects whether line contents are kept;
// the I-cache stores data so that fetches return the words the
// decompressor wrote with swic, while the D-cache only tracks presence.
func New(cfg Config, storesData bool) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, storesData: storesData}
	c.sets = make([][]line, cfg.Sets())
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	c.setShift = uint(log2(uint32(cfg.Sets())))
	c.setMask = uint32(cfg.Sets() - 1)
	return c, nil
}

// MustNew is New for configurations known to be valid.
func MustNew(cfg Config, storesData bool) *Cache {
	c, err := New(cfg, storesData)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBase returns the address of the first byte of addr's line.
func (c *Cache) LineBase(addr uint32) uint32 {
	return addr &^ uint32(c.cfg.LineBytes-1)
}

func (c *Cache) index(addr uint32) (set uint32, tag uint32) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> c.setShift
}

func log2(n uint32) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func (c *Cache) find(addr uint32) *line {
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// Access looks addr up, counting the access and updating LRU on a hit.
// It reports whether the line is present.
func (c *Cache) Access(addr uint32) bool {
	c.Stats.Accesses++
	if c.mruLine != nil && addr>>c.lineShift == c.mruIdx {
		c.clock++
		c.mruLine.lru = c.clock
		return true
	}
	if ln := c.find(addr); ln != nil {
		c.clock++
		ln.lru = c.clock
		c.mruIdx, c.mruLine = addr>>c.lineShift, ln
		return true
	}
	c.Stats.Misses++
	if c.Obs != nil {
		set, _ := c.index(addr)
		c.Obs.CacheMiss(int(set), c.setFull(set))
	}
	return false
}

// setFull reports whether every way of set holds a valid line.
func (c *Cache) setFull(set uint32) bool {
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			return false
		}
	}
	return true
}

// Probe reports presence without touching statistics or LRU state.
func (c *Cache) Probe(addr uint32) bool { return c.find(addr) != nil }

func (c *Cache) victim(set uint32) *line {
	ways := c.sets[set]
	v := &ways[0]
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			return &ways[i]
		}
		if ways[i].lru < v.lru {
			v = &ways[i]
		}
	}
	if v.valid {
		c.Stats.Evictions++
		if c.Obs != nil {
			c.Obs.CacheEvict(int(set))
		}
	}
	return v
}

func (c *Cache) allocate(addr uint32) *line {
	c.mruLine = nil
	set, tag := c.index(addr)
	// Re-use the existing line if present so a set never holds two ways
	// with the same tag.
	ln := c.find(addr)
	if ln == nil {
		ln = c.victim(set)
	}
	ln.valid = true
	ln.tag = tag
	c.clock++
	ln.lru = c.clock
	if c.storesData {
		if ln.data == nil {
			ln.data = make([]byte, c.cfg.LineBytes)
		} else {
			for i := range ln.data {
				ln.data[i] = 0
			}
		}
	}
	return ln
}

// Fill installs the line containing addr with the given data (the
// hardware-refill path). data must be one full line, or nil for a cache
// that does not store data.
func (c *Cache) Fill(addr uint32, data []byte) {
	if c.storesData && len(data) != c.cfg.LineBytes {
		panic(fmt.Sprintf("cache: fill of %d bytes into %dB line", len(data), c.cfg.LineBytes))
	}
	ln := c.allocate(addr)
	c.Stats.LineFills++
	if c.storesData {
		copy(ln.data, data)
	}
}

// WriteWord implements swic: store word w at addr inside the I-cache,
// claiming (allocating) the line on its first write. Returns true when
// the write claimed a new line.
func (c *Cache) WriteWord(addr uint32, w uint32) bool {
	if addr&3 != 0 {
		panic(fmt.Sprintf("cache: unaligned swic at %#x", addr))
	}
	ln := c.find(addr)
	claimed := false
	if ln == nil {
		ln = c.allocate(addr)
		c.Stats.SwicLines++
		claimed = true
	} else {
		c.clock++
		ln.lru = c.clock
	}
	if c.storesData {
		off := addr & uint32(c.cfg.LineBytes-1)
		binary.LittleEndian.PutUint32(ln.data[off:off+4], w)
	}
	return claimed
}

// ReadWord returns the cached word at addr. ok is false when the line is
// absent (or the cache does not store data).
func (c *Cache) ReadWord(addr uint32) (w uint32, ok bool) {
	ln := c.find(addr)
	if ln == nil || ln.data == nil {
		return 0, false
	}
	off := addr & uint32(c.cfg.LineBytes-1)
	return binary.LittleEndian.Uint32(ln.data[off : off+4]), true
}

// UpdateWord updates addr's word if its line is present (write-through
// store hit); it never allocates.
func (c *Cache) UpdateWord(addr uint32, w uint32) {
	if !c.storesData {
		return
	}
	if ln := c.find(addr); ln != nil {
		off := addr & uint32(c.cfg.LineBytes-1)
		binary.LittleEndian.PutUint32(ln.data[off:off+4], w)
	}
}

// Invalidate drops addr's line if present.
func (c *Cache) Invalidate(addr uint32) {
	c.mruLine = nil
	if ln := c.find(addr); ln != nil {
		ln.valid = false
	}
}

// Flush invalidates every line and leaves statistics untouched.
func (c *Cache) Flush() {
	c.mruLine = nil
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
		}
	}
}

// LineData returns a copy of the line containing addr, or nil if absent.
func (c *Cache) LineData(addr uint32) []byte {
	ln := c.find(addr)
	if ln == nil || ln.data == nil {
		return nil
	}
	out := make([]byte, len(ln.data))
	copy(out, ln.data)
	return out
}
