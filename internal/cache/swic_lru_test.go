package cache

// Edge cases of swic interacting with replacement: the decompression
// handler claims lines with explicit writes rather than hardware fills,
// and those claims must participate in LRU exactly like fills — the
// paper's slowdown numbers depend on decompressed lines not being
// preferentially evicted (or wrongly pinned).

import "testing"

// fourWay returns a small 4-way cache with data storage (I-cache mode):
// 4 ways x 2 sets x 16-byte lines.
func fourWay(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 128, LineBytes: 16, Ways: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// setAddr returns the i-th distinct line address mapping to set 0.
func setAddr(c *Cache, i int) uint32 {
	sets := uint32(c.Config().Sets())
	return uint32(i) * sets * uint32(c.Config().LineBytes)
}

// TestSwicEvictionOrderInFullSet fills a set with four swic-claimed
// lines, touches them in a known order, and verifies further claims
// evict exactly in LRU order.
func TestSwicEvictionOrderInFullSet(t *testing.T) {
	c := fourWay(t)
	// Claim lines 0..3 -> set full, LRU order = claim order.
	for i := 0; i < 4; i++ {
		if !c.WriteWord(setAddr(c, i), uint32(0x100+i)) {
			t.Fatalf("claim %d: line already present", i)
		}
	}
	if c.Stats.SwicLines != 4 {
		t.Fatalf("SwicLines = %d, want 4", c.Stats.SwicLines)
	}
	if c.Stats.Evictions != 0 {
		t.Fatalf("%d evictions while the set had free ways", c.Stats.Evictions)
	}
	// Touch 0 and 1 via fetch hits: LRU victim order becomes 2, 3, 0, 1.
	for _, i := range []int{0, 1} {
		if !c.Access(setAddr(c, i)) {
			t.Fatalf("line %d should hit", i)
		}
	}
	for n, want := range []int{2, 3, 0, 1} {
		if !c.WriteWord(setAddr(c, 4+n), 0xDEAD) {
			t.Fatalf("claim %d: expected a new line", 4+n)
		}
		if c.Probe(setAddr(c, want)) {
			t.Fatalf("claim %d should have evicted line %d", 4+n, want)
		}
		// The other original lines that are not yet evicted must survive.
		for _, keep := range []int{2, 3, 0, 1}[n+1:] {
			if !c.Probe(setAddr(c, keep)) {
				t.Fatalf("claim %d wrongly evicted line %d", 4+n, keep)
			}
		}
	}
	if c.Stats.Evictions != 4 {
		t.Fatalf("Evictions = %d, want 4", c.Stats.Evictions)
	}
}

// TestSwicWriteToPresentLineRefreshesLRU: writing a word into an
// already-claimed line is a touch, not a claim — it must refresh LRU and
// must not count a new swic line.
func TestSwicWriteToPresentLineRefreshesLRU(t *testing.T) {
	c := fourWay(t)
	for i := 0; i < 4; i++ {
		c.WriteWord(setAddr(c, i), uint32(i))
	}
	// Re-write line 0 (completing a decompressed line word by word).
	if c.WriteWord(setAddr(c, 0)+4, 0xBEEF) {
		t.Fatal("write to a present line must not claim")
	}
	if c.Stats.SwicLines != 4 {
		t.Fatalf("SwicLines = %d, want 4", c.Stats.SwicLines)
	}
	// Next claim must evict line 1 (now the oldest), not line 0.
	c.WriteWord(setAddr(c, 4), 1)
	if !c.Probe(setAddr(c, 0)) {
		t.Fatal("refreshed line 0 was evicted")
	}
	if c.Probe(setAddr(c, 1)) {
		t.Fatal("line 1 should have been the LRU victim")
	}
	// Both words of line 0 are intact.
	if w, ok := c.ReadWord(setAddr(c, 0)); !ok || w != 0 {
		t.Fatalf("line 0 word 0 = %#x, %v", w, ok)
	}
	if w, ok := c.ReadWord(setAddr(c, 0) + 4); !ok || w != 0xBEEF {
		t.Fatalf("line 0 word 1 = %#x, %v", w, ok)
	}
}

// TestSwicClaimZeroesRecycledData: a swic claim that recycles an evicted
// line's buffer must present zeroes for the words not yet written — the
// handler relies on never leaking a stale victim's instructions.
func TestSwicClaimZeroesRecycledData(t *testing.T) {
	c := fourWay(t)
	for i := 0; i < 4; i++ {
		for off := uint32(0); off < 16; off += 4 {
			c.WriteWord(setAddr(c, i)+off, 0xFFFFFFFF)
		}
	}
	// Claim a fifth line, writing only its first word.
	c.WriteWord(setAddr(c, 4), 0x1234)
	for off := uint32(4); off < 16; off += 4 {
		if w, ok := c.ReadWord(setAddr(c, 4) + off); !ok || w != 0 {
			t.Fatalf("recycled line offset %d = %#x (ok=%v), want 0", off, w, ok)
		}
	}
}

// TestSwicMixedWithFillsSharesLRU: hardware fills and swic claims
// compete for the same ways under one LRU clock.
func TestSwicMixedWithFillsSharesLRU(t *testing.T) {
	c := fourWay(t)
	data := make([]byte, 16)
	c.Fill(setAddr(c, 0), data) // oldest
	c.WriteWord(setAddr(c, 1), 1)
	c.Fill(setAddr(c, 2), data)
	c.WriteWord(setAddr(c, 3), 3)
	// A new fill must evict the oldest entry, the hardware-filled line 0.
	c.Fill(setAddr(c, 4), data)
	if c.Probe(setAddr(c, 0)) {
		t.Fatal("line 0 (oldest) survived")
	}
	for _, keep := range []int{1, 2, 3, 4} {
		if !c.Probe(setAddr(c, keep)) {
			t.Fatalf("line %d wrongly evicted", keep)
		}
	}
	// And a swic claim evicts the next-oldest, line 1.
	c.WriteWord(setAddr(c, 5), 5)
	if c.Probe(setAddr(c, 1)) {
		t.Fatal("line 1 (next oldest) survived")
	}
}
