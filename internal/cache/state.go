package cache

import "fmt"

// LineState is one serialised cache line.
type LineState struct {
	Valid bool   `json:"valid"`
	Tag   uint32 `json:"tag"`
	LRU   uint64 `json:"lru"`
	Data  []byte `json:"data,omitempty"` // nil for caches that track presence only
}

// State is a serialisable snapshot of a Cache: geometry, every line
// (set-major, way-minor — a deterministic order), the LRU clock and the
// event counters. The MRU hint is not part of the state; it is a pure
// cache over the sets and is rebuilt on the first access after Restore.
type State struct {
	Config Config        `json:"config"`
	Clock  uint64        `json:"clock"`
	Stats  Stats         `json:"stats"`
	Sets   [][]LineState `json:"sets"`
}

// Snapshot captures a deep copy of the cache state.
func (c *Cache) Snapshot() State {
	st := State{Config: c.cfg, Clock: c.clock, Stats: c.Stats}
	st.Sets = make([][]LineState, len(c.sets))
	for s := range c.sets {
		ways := make([]LineState, len(c.sets[s]))
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			ls := LineState{Valid: ln.valid, Tag: ln.tag, LRU: ln.lru}
			if ln.data != nil {
				ls.Data = make([]byte, len(ln.data))
				copy(ls.Data, ln.data)
			}
			ways[w] = ls
		}
		st.Sets[s] = ways
	}
	return st
}

// Restore replaces the cache contents with the snapshot. The geometry
// must match this cache's configuration; the MRU hint is cleared.
func (c *Cache) Restore(st State) error {
	if st.Config != c.cfg {
		return fmt.Errorf("cache: snapshot geometry %+v does not match cache %+v", st.Config, c.cfg)
	}
	if len(st.Sets) != len(c.sets) {
		return fmt.Errorf("cache: snapshot has %d sets, cache %d", len(st.Sets), len(c.sets))
	}
	for s := range st.Sets {
		if len(st.Sets[s]) != len(c.sets[s]) {
			return fmt.Errorf("cache: snapshot set %d has %d ways, cache %d", s, len(st.Sets[s]), len(c.sets[s]))
		}
		for w := range st.Sets[s] {
			ls := st.Sets[s][w]
			ln := &c.sets[s][w]
			ln.valid = ls.Valid
			ln.tag = ls.Tag
			ln.lru = ls.LRU
			if ls.Data != nil {
				if len(ls.Data) != c.cfg.LineBytes {
					return fmt.Errorf("cache: snapshot line %d/%d has %d bytes, want %d",
						s, w, len(ls.Data), c.cfg.LineBytes)
				}
				if ln.data == nil {
					ln.data = make([]byte, c.cfg.LineBytes)
				}
				copy(ln.data, ls.Data)
			} else {
				ln.data = nil
			}
		}
	}
	c.clock = st.Clock
	c.Stats = st.Stats
	c.mruIdx, c.mruLine = 0, nil
	return nil
}
