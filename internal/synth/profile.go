// Package synth generates the benchmark programs used by the experiments:
// deterministic stand-ins for the paper's SPEC CINT95 and MediaBench
// suites (cc1, ghostscript, go, ijpeg, mpeg2enc, pegwit, perl, vortex).
//
// Real 1995 UNIX binaries cannot be rebuilt here, so each stand-in is a
// synthetic program whose two experimentally relevant properties are
// controlled directly:
//
//   - the static instruction-repetition distribution, which determines the
//     compression ratios (dictionary ratio = 0.5 + unique/total), tuned
//     via a shared instruction pool and the CommonFraction parameter; and
//   - the instruction-cache behaviour, tuned via the hot working-set size
//     relative to the 16KB I-cache, the loopiness of procedures, phased
//     working-set rotation and periodic cold-code sweeps.
//
// Everything downstream — compressors, decompression handlers, selection
// policies, the timing model — runs unmodified on these programs.
package synth

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name string
	Seed int64

	// Static shape.
	TotalProcs     int // number of procedures
	ProcInstrsMin  int // procedure body size range (instructions)
	ProcInstrsMax  int
	PoolSize       int     // shared instruction pool size
	CommonFraction float64 // probability a body instruction comes from the pool

	// Dynamic behaviour.
	LoopIters int // body repetitions per call: loop-orientedness
	HotProcs  int // procedures in the hot working set
	PhaseLen  int // driver iterations before the hot set rotates
	HotStride int // procedures the hot set advances per rotation
	ColdEvery int // driver iterations between cold-code sweeps
	ColdCount int // procedures touched per cold sweep
	Iters     int // driver iterations (controls dynamic instructions)
}

// Scale multiplies the dynamic length of every benchmark (Iters) without
// changing its cache behaviour; tests use Scale < 1 for speed.
func (p Profile) Scale(f float64) Profile {
	n := int(float64(p.Iters) * f)
	if n < 2 {
		n = 2
	}
	p.Iters = n
	return p
}

// Benchmarks returns the eight paper stand-ins. The commented figures are
// the paper's Table 2 values the profiles were calibrated against
// (original size, dictionary ratio, 16KB miss ratio).
func Benchmarks() []Profile {
	return []Profile{
		// cc1: 1.08MB, 65.4%, 2.93% — big, branchy, thrashes the I-cache.
		{
			Name: "cc1", Seed: 101,
			TotalProcs: 240, ProcInstrsMin: 150, ProcInstrsMax: 380,
			PoolSize: 3900, CommonFraction: 0.872,
			LoopIters: 4, HotProcs: 23, PhaseLen: 12, HotStride: 9,
			ColdEvery: 11, ColdCount: 3, Iters: 56,
		},
		// ghostscript: 1.10MB, 69.4%, 0.04% — big binary, compact hot set.
		{
			Name: "ghostscript", Seed: 102,
			TotalProcs: 260, ProcInstrsMin: 150, ProcInstrsMax: 350,
			PoolSize: 5000, CommonFraction: 0.832,
			LoopIters: 6, HotProcs: 6, PhaseLen: 60, HotStride: 2,
			ColdEvery: 25, ColdCount: 2, Iters: 150,
		},
		// go: 310KB, 69.6%, 2.05% — working set just above the cache.
		{
			Name: "go", Seed: 103,
			TotalProcs: 130, ProcInstrsMin: 140, ProcInstrsMax: 320,
			PoolSize: 2350, CommonFraction: 0.850,
			LoopIters: 4, HotProcs: 21, PhaseLen: 14, HotStride: 6,
			ColdEvery: 13, ColdCount: 2, Iters: 64,
		},
		// ijpeg: 198KB, 77.2%, 0.07% — loop-oriented media kernel.
		{
			Name: "ijpeg", Seed: 104,
			TotalProcs: 60, ProcInstrsMin: 200, ProcInstrsMax: 400,
			PoolSize: 1960, CommonFraction: 0.789,
			LoopIters: 30, HotProcs: 5, PhaseLen: 400, HotStride: 1,
			ColdEvery: 4, ColdCount: 3, Iters: 26,
		},
		// mpeg2enc: 118KB, 82.3%, 0.01% — tight encoder loops.
		{
			Name: "mpeg2enc", Seed: 105,
			TotalProcs: 40, ProcInstrsMin: 200, ProcInstrsMax: 400,
			PoolSize: 1550, CommonFraction: 0.764,
			LoopIters: 60, HotProcs: 4, PhaseLen: 1000, HotStride: 1,
			ColdEvery: 4, ColdCount: 2, Iters: 20,
		},
		// pegwit: 88KB, 79.3%, 0.01% — small crypto loops; misses come
		// from periodic cold-code sweeps, not the loops (the structure
		// behind the paper's miss-based-selection win, §5.3).
		{
			Name: "pegwit", Seed: 106,
			TotalProcs: 44, ProcInstrsMin: 150, ProcInstrsMax: 250,
			PoolSize: 1050, CommonFraction: 0.815,
			LoopIters: 25, HotProcs: 4, PhaseLen: 1000, HotStride: 1,
			ColdEvery: 5, ColdCount: 3, Iters: 60,
		},
		// perl: 267KB, 73.7%, 1.62% — interpreter: moderate thrash.
		{
			Name: "perl", Seed: 107,
			TotalProcs: 110, ProcInstrsMin: 140, ProcInstrsMax: 300,
			PoolSize: 2830, CommonFraction: 0.822,
			LoopIters: 5, HotProcs: 23, PhaseLen: 16, HotStride: 5,
			ColdEvery: 17, ColdCount: 2, Iters: 70,
		},
		// vortex: 495KB, 65.8%, 2.05% — database: large, cc1-like.
		{
			Name: "vortex", Seed: 108,
			TotalProcs: 190, ProcInstrsMin: 150, ProcInstrsMax: 330,
			PoolSize: 2850, CommonFraction: 0.878,
			LoopIters: 5, HotProcs: 25, PhaseLen: 13, HotStride: 8,
			ColdEvery: 15, ColdCount: 2, Iters: 60,
		},
	}
}

// ByName returns the named benchmark profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
