package synth

import (
	"io"
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestGenerateRandomDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := GenerateRandom(DefaultRandSpec(seed)).Render()
		b := GenerateRandom(DefaultRandSpec(seed)).Render()
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestRandomProgramsAssembleAndHalt(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := GenerateRandom(DefaultRandSpec(seed))
		im, err := p.Build()
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, p.Render())
		}
		cfg := cpu.DefaultConfig()
		cfg.MaxInstr = 2_000_000
		c, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Out = io.Discard
		if err := c.Load(im); err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		code, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, p.Render())
		}
		if code != 0 {
			t.Fatalf("seed %d: exit code %d, want 0", seed, code)
		}
	}
}

// TestRandomCoverage checks that, over a modest range of seeds, the
// generator exercises every op kind — loops, calls (direct and
// indirect), jr tables, HI/LO ops.
func TestRandomCoverage(t *testing.T) {
	want := map[string]bool{
		"jal ":      false, // direct call
		"jalr":      false, // indirect call
		"jr    $t9": false, // jump table
		"bgtz":      false, // loop back-branch
		"mfhi":      false,
		"mflo":      false,
	}
	for seed := int64(0); seed < 40; seed++ {
		src := GenerateRandom(DefaultRandSpec(seed)).Render()
		for k := range want {
			if strings.Contains(src, k) {
				want[k] = true
			}
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("no generated program over 40 seeds contains %q", k)
		}
	}
}

func TestRandomProgramClone(t *testing.T) {
	p := GenerateRandom(DefaultRandSpec(7))
	q := p.Clone()
	if p.Render() != q.Render() {
		t.Fatal("clone renders differently")
	}
	// Mutating the clone must not affect the original.
	orig := p.Render()
	if len(q.Procs) > 1 {
		q.Procs = q.Procs[:1]
	}
	for _, pr := range q.Procs {
		pr.Ops = nil
	}
	if p.Render() != orig {
		t.Fatal("mutating clone changed original")
	}
}
