package synth

// Seeded random-program generation for the differential co-simulation
// harness (internal/diffsim). Unlike the calibrated benchmark stand-ins
// in gen.go — whose bodies are straight-line pool instructions — random
// programs exercise the control-flow and architectural surface that
// cross-layer compression bugs hide behind: nested bounded loops,
// direct and table-indirect procedure calls returning through $ra,
// forward conditional branches, jr jump tables, HI/LO arithmetic, and
// $gp-relative loads/stores.
//
// A program is generated as a small typed IR (RandProgram) and rendered
// to CLR32 assembly text, so a failing case can be re-rendered after
// delta-debugging and committed as a plain .s reproducer. Generation is
// fully deterministic in the seed, and every generated program
// terminates: loop bounds are compile-time constants, calls only target
// higher-numbered procedures (the call graph is acyclic), and calls
// never appear inside loop bodies.
//
// Register discipline (what makes four-way lockstep comparison sound):
// code addresses only ever live in $ra and $t9, which the verifier
// masks; data registers (wideRegs) never receive a code address, so
// they compare exactly across re-laid-out images; $s0/$s1 are loop
// counters saved by every framed procedure; $s7 is main's checksum;
// $v1 and $at are dispatch scratch.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
)

// RandSpec bounds the shape of one random program.
type RandSpec struct {
	Seed      int64
	Procs     int // procedures besides main (may be 0)
	MaxOps    int // max top-level ops per procedure body
	MaxLoop   int // max loop iteration count
	MaxCalls  int // max call sites per procedure
	DataWords int // data-area words initialised by main (beyond the zero fill)
}

// DefaultRandSpec derives a bounded spec from a seed. The bounds keep a
// single case cheap enough that a CI smoke run of thousands of cases
// stays within its time budget while still spanning multiple I-cache
// lines and exercising every op kind over a campaign.
func DefaultRandSpec(seed int64) RandSpec {
	r := rand.New(rand.NewSource(seed))
	return RandSpec{
		Seed:      seed,
		Procs:     2 + r.Intn(6),  // 2..7
		MaxOps:    4 + r.Intn(7),  // 4..10
		MaxLoop:   2 + r.Intn(3),  // 2..4
		MaxCalls:  1 + r.Intn(2),  // 1..2
		DataWords: 4 + r.Intn(12), // 4..15
	}
}

// RopKind discriminates RandOp.
type RopKind int

// Random-program op kinds.
const (
	RopRaw     RopKind = iota // one safe straight-line instruction
	RopLoop                   // counted loop: li $sN; body; addiu -1; bgtz
	RopIf                     // conditional forward branch over Body
	RopCall                   // jal Callee (direct)
	RopCallInd                // la/lw/jalr through a .data word (indirect)
	RopSwitch                 // jr jump table over Arms
	RopHiLo                   // mult/div + mfhi/mflo
)

// RandOp is one IR node of a generated procedure body.
type RandOp struct {
	Kind   RopKind
	Word   uint32     // RopRaw: encoded instruction
	N      int        // RopLoop: iteration count
	Br     string     // RopIf: branch mnemonic (beq/bne/blez/bgtz/bltz/bgez)
	A, B   int        // RopIf: condition registers; RopHiLo: operands; RopSwitch: selector (A)
	MD     string     // RopHiLo: mult/multu/div/divu
	D1, D2 int        // RopHiLo: mfhi/mflo destinations
	Callee string     // RopCall/RopCallInd: target procedure name
	Body   []RandOp   // RopLoop/RopIf
	Arms   [][]RandOp // RopSwitch (len 2 or 4)
}

// RandProc is one generated procedure.
type RandProc struct {
	Name      string
	Frameless bool // leaf without loops: body + jr $ra only
	Ops       []RandOp
}

// RandProgram is the IR of one generated program.
type RandProgram struct {
	Spec  RandSpec
	Procs []*RandProc
}

// GenerateRandom builds a random program from the spec, deterministically
// in Spec.Seed.
func GenerateRandom(spec RandSpec) *RandProgram {
	r := rand.New(rand.NewSource(spec.Seed ^ 0x5ee0d1f5))
	p := &RandProgram{Spec: spec}
	for i := 0; i < spec.Procs; i++ {
		p.Procs = append(p.Procs, genProc(r, spec, i))
	}
	return p
}

func randProcName(i int) string { return fmt.Sprintf("r%02d", i) }

// genProc generates procedure i. Calls target only procedures with a
// strictly larger index, so the static call graph is acyclic.
func genProc(r *rand.Rand, spec RandSpec, i int) *RandProc {
	p := &RandProc{Name: randProcName(i)}
	nops := 1 + r.Intn(spec.MaxOps)
	callBudget := spec.MaxCalls
	canCall := i+1 < spec.Procs
	for j := 0; j < nops; j++ {
		p.Ops = append(p.Ops, genOp(r, spec, i, 0, &callBudget, canCall))
	}
	p.Frameless = !hasCalls(p.Ops) && !hasLoops(p.Ops)
	return p
}

// genOp generates one op at the given loop-nesting depth. Calls are
// forbidden inside loops (so dynamic call counts stay bounded by the
// static call-site count) and deeper than one If.
func genOp(r *rand.Rand, spec RandSpec, proc, depth int, callBudget *int, canCall bool) RandOp {
	k := r.Intn(100)
	switch {
	case k < 40: // straight-line instruction
		return RandOp{Kind: RopRaw, Word: genWord(r, false)}
	case k < 50 && depth < 2: // counted loop
		body := make([]RandOp, 0, 3)
		for n := 1 + r.Intn(3); n > 0; n-- {
			body = append(body, genOp(r, spec, proc, depth+1, callBudget, false))
		}
		return RandOp{Kind: RopLoop, N: 1 + r.Intn(spec.MaxLoop), Body: body}
	case k < 62: // forward conditional branch
		body := make([]RandOp, 0, 3)
		for n := 1 + r.Intn(3); n > 0; n-- {
			body = append(body, genOp(r, spec, proc, depth+1, callBudget, canCall && depth == 0))
		}
		br := []string{"beq", "bne", "blez", "bgtz", "bltz", "bgez"}[r.Intn(6)]
		return RandOp{Kind: RopIf, Br: br, A: randWideReg(r), B: randWideReg(r), Body: body}
	case k < 74 && canCall && depth == 0 && *callBudget > 0: // procedure call
		*callBudget--
		// Targets stay within a short window above the caller so call
		// chains fan out without exploding the dynamic call count.
		lo := proc + 1
		hi := proc + 3
		if hi >= spec.Procs {
			hi = spec.Procs - 1
		}
		callee := randProcName(lo + r.Intn(hi-lo+1))
		kind := RopCall
		if r.Intn(3) == 0 {
			kind = RopCallInd
		}
		return RandOp{Kind: kind, Callee: callee}
	case k < 82 && depth < 2: // jr jump table
		arms := make([][]RandOp, []int{2, 4}[r.Intn(2)])
		for a := range arms {
			for n := 1 + r.Intn(2); n > 0; n-- {
				arms[a] = append(arms[a], RandOp{Kind: RopRaw, Word: genWord(r, false)})
			}
		}
		return RandOp{Kind: RopSwitch, A: randWideReg(r), Arms: arms}
	case k < 92: // HI/LO arithmetic
		md := []string{"mult", "multu", "div", "divu"}[r.Intn(4)]
		return RandOp{Kind: RopHiLo, MD: md,
			A: randWideReg(r), B: randWideReg(r), D1: randWideReg(r), D2: randWideReg(r)}
	default:
		return RandOp{Kind: RopRaw, Word: genWord(r, false)}
	}
}

func randWideReg(r *rand.Rand) int { return wideRegs[r.Intn(len(wideRegs))] }

func hasCalls(ops []RandOp) bool {
	for i := range ops {
		switch ops[i].Kind {
		case RopCall, RopCallInd:
			return true
		}
		if hasCalls(ops[i].Body) {
			return true
		}
	}
	return false
}

func hasLoops(ops []RandOp) bool {
	for i := range ops {
		if ops[i].Kind == RopLoop {
			return true
		}
		if hasLoops(ops[i].Body) {
			return true
		}
	}
	return false
}

// Callees returns the set of procedure names the ops call (recursively),
// split by call kind.
func callees(ops []RandOp, direct, indirect map[string]bool) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case RopCall:
			direct[op.Callee] = true
		case RopCallInd:
			indirect[op.Callee] = true
		}
		callees(op.Body, direct, indirect)
		for _, arm := range op.Arms {
			callees(arm, direct, indirect)
		}
	}
}

// CalledProcs returns every procedure name referenced by a call anywhere
// in the program.
func (p *RandProgram) CalledProcs() map[string]bool {
	direct := make(map[string]bool)
	indirect := make(map[string]bool)
	for _, pr := range p.Procs {
		callees(pr.Ops, direct, indirect)
	}
	for n := range indirect {
		direct[n] = true
	}
	return direct
}

// renderer emits the program as CLR32 assembly text.
type renderer struct {
	b     strings.Builder
	data  strings.Builder // .data declarations (jump tables, call words)
	label int             // per-program label counter
	proc  string          // current procedure name
	seen  map[string]bool // .data declarations already emitted
	spec  RandSpec
}

func (rn *renderer) emit(format string, args ...interface{}) {
	fmt.Fprintf(&rn.b, format+"\n", args...)
}

func (rn *renderer) ins(format string, args ...interface{}) {
	rn.b.WriteString("        ")
	fmt.Fprintf(&rn.b, format+"\n", args...)
}

func (rn *renderer) newLabel(tag string) string {
	rn.label++
	return fmt.Sprintf("%s_%s%d", rn.proc, tag, rn.label)
}

// Render returns the program as assembly source. The same IR always
// renders to the same text, so a shrunk program is committable verbatim.
func (p *RandProgram) Render() string {
	rn := &renderer{spec: p.Spec}

	// Procedure bodies first (into rn.b), collecting .data declarations
	// (jump tables, indirect-call words) on the side.
	var text strings.Builder
	rn.renderMain(p)
	for _, pr := range p.Procs {
		rn.renderProc(pr)
	}
	text.WriteString(rn.b.String())

	var out strings.Builder
	out.WriteString("# Generated by internal/synth (random differential test program).\n")
	fmt.Fprintf(&out, "# Seed %d: procs=%d maxops=%d maxloop=%d\n",
		p.Spec.Seed, p.Spec.Procs, p.Spec.MaxOps, p.Spec.MaxLoop)
	out.WriteString("        .data\n")
	out.WriteString("data_area:\n")
	fmt.Fprintf(&out, "        .space %d\n", dataBytes)
	out.WriteString(rn.data.String())
	out.WriteString("        .text\n")
	out.WriteString("        .entry main\n")
	out.WriteString(text.String())
	return out.String()
}

// renderMain emits main: it initialises $gp and the data area, calls
// every root procedure (one with no static caller), accumulates the
// returned $v0 values into a checksum, prints it and exits 0.
func (rn *renderer) renderMain(p *RandProgram) {
	rn.proc = "main"
	rn.emit("        .proc main")
	rn.emit("main:")
	rn.ins("la    $gp, data_area")
	rn.ins("ori   $s7, $zero, 0")
	// Seed the data area with a few deterministic words so early loads
	// are not all zero.
	r := rand.New(rand.NewSource(p.Spec.Seed ^ 0x0da7a))
	for i := 0; i < p.Spec.DataWords; i++ {
		rn.ins("li    $t0, %d", r.Uint32()&0xFFFF)
		rn.ins("sw    $t0, %d($gp)", 4*i)
	}
	called := p.CalledProcs()
	for _, pr := range p.Procs {
		if called[pr.Name] {
			continue // reached through another procedure
		}
		rn.ins("jal   %s", pr.Name)
		rn.ins("xor   $s7, $s7, $v0")
	}
	rn.ins("move  $a0, $s7")
	rn.ins("li    $v0, %d", isa.SysPrintHex)
	rn.ins("syscall")
	rn.ins("move  $a0, $zero")
	rn.ins("li    $v0, %d", isa.SysExit)
	rn.ins("syscall")
	rn.emit("        .endp")
}

func (rn *renderer) renderProc(pr *RandProc) {
	rn.proc = pr.Name
	rn.emit("        .proc %s", pr.Name)
	rn.emit("%s:", pr.Name)
	if !pr.Frameless {
		rn.ins("addiu $sp, $sp, -16")
		rn.ins("sw    $ra, 12($sp)")
		rn.ins("sw    $s0, 0($sp)")
		rn.ins("sw    $s1, 4($sp)")
	}
	rn.renderOps(pr.Ops, 0)
	if !pr.Frameless {
		rn.ins("lw    $ra, 12($sp)")
		rn.ins("lw    $s0, 0($sp)")
		rn.ins("lw    $s1, 4($sp)")
		rn.ins("addiu $sp, $sp, 16")
	}
	rn.ins("jr    $ra")
	rn.emit("        .endp")
}

func (rn *renderer) renderOps(ops []RandOp, depth int) {
	for i := range ops {
		rn.renderOp(&ops[i], depth)
	}
}

func (rn *renderer) renderOp(op *RandOp, depth int) {
	switch op.Kind {
	case RopRaw:
		rn.ins("%s", isa.Disassemble(0, op.Word))
	case RopLoop:
		counter := "$s0"
		if depth > 0 {
			counter = "$s1"
		}
		top := rn.newLabel("lp")
		rn.ins("li    %s, %d", counter, op.N)
		rn.emit("%s:", top)
		rn.renderOps(op.Body, depth+1)
		rn.ins("addiu %s, %s, -1", counter, counter)
		rn.ins("bgtz  %s, %s", counter, top)
	case RopIf:
		end := rn.newLabel("if")
		switch op.Br {
		case "beq", "bne":
			rn.ins("%-5s %s, %s, %s", op.Br, isa.RegName(op.A), isa.RegName(op.B), end)
		default:
			rn.ins("%-5s %s, %s", op.Br, isa.RegName(op.A), end)
		}
		rn.renderOps(op.Body, depth+1)
		rn.emit("%s:", end)
	case RopCall:
		rn.ins("jal   %s", op.Callee)
	case RopCallInd:
		word := "pt_" + op.Callee
		rn.declOnce(word, fmt.Sprintf("%s:  .word %s\n", word, op.Callee))
		rn.ins("la    $at, %s", word)
		rn.ins("lw    $t9, 0($at)")
		rn.ins("jalr  $t9")
	case RopSwitch:
		table := rn.newLabel("jt")
		end := table + "_end"
		var decl strings.Builder
		fmt.Fprintf(&decl, "%s:", table)
		for a := range op.Arms {
			fmt.Fprintf(&decl, " .word %s_a%d\n", table, a)
			if a != len(op.Arms)-1 {
				decl.WriteString("       ")
			}
		}
		rn.data.WriteString(decl.String())
		rn.ins("andi  $v1, %s, %d", isa.RegName(op.A), len(op.Arms)-1)
		rn.ins("sll   $v1, $v1, 2")
		rn.ins("la    $at, %s", table)
		rn.ins("addu  $at, $at, $v1")
		rn.ins("lw    $t9, 0($at)")
		rn.ins("jr    $t9")
		for a, arm := range op.Arms {
			rn.emit("%s_a%d:", table, a)
			rn.renderOps(arm, depth+1)
			rn.ins("b     %s", end)
		}
		rn.emit("%s:", end)
	case RopHiLo:
		rn.ins("%-5s %s, %s", op.MD, isa.RegName(op.A), isa.RegName(op.B))
		rn.ins("mfhi  %s", isa.RegName(op.D1))
		rn.ins("mflo  %s", isa.RegName(op.D2))
	}
}

// declOnce appends a .data declaration the first time key is used.
func (rn *renderer) declOnce(key, decl string) {
	if rn.seen == nil {
		rn.seen = make(map[string]bool)
	}
	if rn.seen[key] {
		return
	}
	rn.seen[key] = true
	rn.data.WriteString(decl)
}

// Build assembles the rendered program into a native image.
func (p *RandProgram) Build() (*program.Image, error) {
	return asm.Assemble(p.Render())
}

// InstrCount returns the static instruction count of the rendered
// program (text bytes / 4), or -1 if it fails to assemble.
func (p *RandProgram) InstrCount() int {
	im, err := p.Build()
	if err != nil {
		return -1
	}
	return len(im.Segment(program.SegText).Data) / 4
}

// Clone deep-copies the program so shrink candidates can be mutated
// freely.
func (p *RandProgram) Clone() *RandProgram {
	q := &RandProgram{Spec: p.Spec}
	for _, pr := range p.Procs {
		q.Procs = append(q.Procs, &RandProc{
			Name: pr.Name, Frameless: pr.Frameless, Ops: cloneOps(pr.Ops)})
	}
	return q
}

func cloneOps(ops []RandOp) []RandOp {
	if ops == nil {
		return nil
	}
	out := make([]RandOp, len(ops))
	for i, op := range ops {
		out[i] = op
		out[i].Body = cloneOps(op.Body)
		if op.Arms != nil {
			out[i].Arms = make([][]RandOp, len(op.Arms))
			for a, arm := range op.Arms {
				out[i].Arms[a] = cloneOps(arm)
			}
		}
	}
	return out
}
