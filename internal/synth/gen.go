package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
)

// Register sets for generated instructions. The driver owns $s0..$s7, the
// loop counter is $v1, $gp holds the data-area base, and $sp/$ra/$k0/$k1
// keep their ABI roles, so generated code never touches them. $t9 is also
// excluded: it holds the callee's code address at procedure entry, so
// reading it would make results depend on code layout — and selective
// compression deliberately re-lays code out.
var wideRegs = []int{
	isa.RegAT, isa.RegV0, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3,
	isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4, isa.RegT5,
	isa.RegT6, isa.RegT7, isa.RegT8, isa.RegFP,
}

var narrowRegs = []int{
	isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegA0, isa.RegA1,
}

var narrowImms = []int32{0, 1, 2, 4, 8, -1, 16, 12}

const dataBytes = 8192

// genWord produces one safe, side-effect-bounded instruction encoding.
// narrow draws operands from small sets (for the shared pool, maximising
// exact repeats); wide draws from the full sets (mostly unique encodings).
func genWord(r *rand.Rand, narrow bool) uint32 {
	regs := wideRegs
	if narrow {
		regs = narrowRegs
	}
	reg := func() int { return regs[r.Intn(len(regs))] }
	// Immediates follow the skew of real code: small values dominate
	// (array strides, struct offsets, small constants), with a tail of
	// arbitrary 16-bit values. This is what makes the low halfwords of
	// instructions far more repetitive than whole words — the property
	// CodePack-style halfword coding exploits.
	imm := func() uint32 {
		if narrow {
			return uint32(narrowImms[r.Intn(len(narrowImms))]) & 0xFFFF
		}
		switch k := r.Intn(100); {
		case k < 45:
			return uint32(r.Intn(16))
		case k < 70:
			return uint32(r.Intn(256))
		case k < 90:
			return uint32(r.Intn(4096))
		default:
			return uint32(r.Intn(1 << 16))
		}
	}
	off := func(align uint32) uint32 {
		if narrow {
			return uint32(r.Intn(256)) &^ (align - 1)
		}
		switch k := r.Intn(100); {
		case k < 50:
			return uint32(r.Intn(128)) &^ (align - 1)
		case k < 85:
			return uint32(r.Intn(1024)) &^ (align - 1)
		default:
			return uint32(r.Intn(dataBytes)) &^ (align - 1)
		}
	}
	switch k := r.Intn(100); {
	case k < 20:
		return isa.EncodeR(isa.FnADDU, reg(), reg(), reg(), 0)
	case k < 28:
		return isa.EncodeR(isa.FnSUBU, reg(), reg(), reg(), 0)
	case k < 43:
		return isa.EncodeI(isa.OpADDIU, reg(), reg(), imm())
	case k < 48:
		return isa.EncodeR(isa.FnOR, reg(), reg(), reg(), 0)
	case k < 52:
		return isa.EncodeR(isa.FnAND, reg(), reg(), reg(), 0)
	case k < 56:
		return isa.EncodeR(isa.FnXOR, reg(), reg(), reg(), 0)
	case k < 62:
		fn := []uint32{isa.FnSLL, isa.FnSRL, isa.FnSRA}[r.Intn(3)]
		return isa.EncodeR(fn, 0, reg(), reg(), uint32(r.Intn(31)+1))
	case k < 65:
		return isa.EncodeI(isa.OpLUI, 0, reg(), imm())
	case k < 70:
		fn := []uint32{isa.FnSLT, isa.FnSLTU}[r.Intn(2)]
		return isa.EncodeR(fn, reg(), reg(), reg(), 0)
	case k < 84:
		return isa.EncodeI(isa.OpLW, isa.RegGP, reg(), off(4))
	case k < 89:
		return isa.EncodeI(isa.OpLHU, isa.RegGP, reg(), off(2))
	case k < 94:
		return isa.EncodeI(isa.OpSW, isa.RegGP, reg(), off(4))
	default:
		op := []uint32{isa.OpORI, isa.OpANDI, isa.OpXORI}[r.Intn(3)]
		return isa.EncodeI(op, reg(), reg(), imm())
	}
}

// zipfIdx draws a heavily skewed index in [0,n): the head of the pool is
// reused far more than the tail, giving the halfword-frequency skew that
// CodePack-style coding exploits in real code.
func zipfIdx(r *rand.Rand, n int) int {
	u := r.Float64()
	u2 := u * u
	i := int(float64(n) * u2 * u2 * u)
	if i >= n {
		i = n - 1
	}
	return i
}

// Build generates the benchmark as a native program image.
func Build(p Profile) (*program.Image, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))

	pool := make([]uint32, p.PoolSize)
	for i := range pool {
		pool[i] = genWord(r, true)
	}

	b := asm.NewBuilder()

	// Data: scratch area + the procedure table the driver calls through.
	b.Section(program.SegData, program.DataBase, false)
	b.Label("data_area")
	b.Space(dataBytes)
	b.Label("ptab")
	for i := 0; i < p.TotalProcs; i++ {
		b.WordSym(procName(i), 0)
	}
	b.Label("ptab_end")

	b.Section(program.SegText, program.NativeBase, false)
	emitDriver(b, p)
	for i := 0; i < p.TotalProcs; i++ {
		emitProc(b, p, r, pool, i)
	}
	b.SetEntry("main")
	return b.Finish()
}

func validate(p Profile) error {
	switch {
	case p.TotalProcs < 2:
		return fmt.Errorf("synth %s: need at least 2 procedures", p.Name)
	case p.HotProcs < 1 || p.HotProcs >= p.TotalProcs:
		return fmt.Errorf("synth %s: HotProcs %d out of range", p.Name, p.HotProcs)
	case p.HotStride < 1, p.PhaseLen < 1, p.ColdEvery < 1, p.ColdCount < 1, p.Iters < 1:
		return fmt.Errorf("synth %s: non-positive dynamic parameter", p.Name)
	case p.ProcInstrsMin < 4 || p.ProcInstrsMax < p.ProcInstrsMin:
		return fmt.Errorf("synth %s: bad procedure size range", p.Name)
	case p.PoolSize < 1:
		return fmt.Errorf("synth %s: empty pool", p.Name)
	case p.CommonFraction < 0 || p.CommonFraction > 1:
		return fmt.Errorf("synth %s: CommonFraction out of range", p.Name)
	}
	return nil
}

func procName(i int) string { return fmt.Sprintf("p%04d", i) }

// emitDriver generates main: phased calls into the hot window of the
// procedure table, periodic cold sweeps, a running checksum in $s7, and a
// final hex print + exit.
func emitDriver(b *asm.Builder, p Profile) {
	b.Proc("main")
	b.La(isa.RegGP, "data_area", 0)
	b.La(isa.RegS2, "ptab", 0) // hot window base
	b.La(isa.RegS3, "ptab", 0) // cold sweep pointer
	b.Li(isa.RegS0, uint32(p.Iters))
	b.Li(isa.RegS1, uint32(p.PhaseLen))
	b.Li(isa.RegS4, uint32(p.ColdEvery))
	b.Move(isa.RegS7, isa.RegZero)

	b.Label("outer")
	// Hot calls, unrolled across the window.
	for i := 0; i < p.HotProcs; i++ {
		b.Mem("lw", isa.RegT9, int32(4*i), isa.RegS2)
		b.JALR(isa.RegRA, isa.RegT9)
		b.R3("xor", isa.RegS7, isa.RegS7, isa.RegV0)
	}
	// Phase rotation.
	b.Imm("addiu", isa.RegS1, isa.RegS1, -1)
	b.Branch1("bgtz", isa.RegS1, "nophase")
	b.Li(isa.RegS1, uint32(p.PhaseLen))
	b.Imm("addiu", isa.RegS2, isa.RegS2, int32(4*p.HotStride))
	b.La(isa.RegT8, "ptab", int32(4*(p.TotalProcs-p.HotProcs)))
	b.R3("sltu", isa.RegT9, isa.RegT8, isa.RegS2)
	b.Branch2("beq", isa.RegT9, isa.RegZero, "nophase")
	b.La(isa.RegS2, "ptab", 0)
	b.Label("nophase")
	// Cold sweep.
	b.Imm("addiu", isa.RegS4, isa.RegS4, -1)
	b.Branch1("bgtz", isa.RegS4, "nocold")
	b.Li(isa.RegS4, uint32(p.ColdEvery))
	b.Li(isa.RegS6, uint32(p.ColdCount))
	b.Label("coldloop")
	b.Mem("lw", isa.RegT9, 0, isa.RegS3)
	b.JALR(isa.RegRA, isa.RegT9)
	b.R3("xor", isa.RegS7, isa.RegS7, isa.RegV0)
	b.Imm("addiu", isa.RegS3, isa.RegS3, 4)
	b.La(isa.RegT8, "ptab_end", 0)
	b.Branch2("bne", isa.RegS3, isa.RegT8, "coldnowrap")
	b.La(isa.RegS3, "ptab", 0)
	b.Label("coldnowrap")
	b.Imm("addiu", isa.RegS6, isa.RegS6, -1)
	b.Branch1("bgtz", isa.RegS6, "coldloop")
	b.Label("nocold")
	// Outer loop control.
	b.Imm("addiu", isa.RegS0, isa.RegS0, -1)
	b.Branch1("bgtz", isa.RegS0, "outer")
	// Print the checksum and exit 0.
	b.Move(isa.RegA0, isa.RegS7)
	b.Li(isa.RegV0, isa.SysPrintHex)
	b.Syscall()
	b.Move(isa.RegA0, isa.RegZero)
	b.Li(isa.RegV0, isa.SysExit)
	b.Syscall()
	b.EndProc()
}

// emitProc generates one leaf procedure: a straight-line body of pool and
// fresh instructions, optionally repeated LoopIters times ($v1 counter).
func emitProc(b *asm.Builder, p Profile, r *rand.Rand, pool []uint32, i int) {
	name := procName(i)
	b.Proc(name)
	k := p.ProcInstrsMin
	if p.ProcInstrsMax > p.ProcInstrsMin {
		k += r.Intn(p.ProcInstrsMax - p.ProcInstrsMin)
	}
	loop := p.LoopIters > 1
	if loop {
		b.Imm("ori", isa.RegV1, isa.RegZero, int32(p.LoopIters))
		b.Label(name + "_loop")
	}
	for j := 0; j < k; j++ {
		if r.Float64() < p.CommonFraction {
			b.Raw(pool[zipfIdx(r, len(pool))])
		} else {
			b.Raw(genWord(r, false))
		}
	}
	if loop {
		b.Imm("addiu", isa.RegV1, isa.RegV1, -1)
		b.Branch1("bgtz", isa.RegV1, name+"_loop")
	}
	b.JR(isa.RegRA)
	b.EndProc()
}
