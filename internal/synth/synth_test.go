package synth

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
)

func TestBenchmarkTableIsValid(t *testing.T) {
	benches := Benchmarks()
	if len(benches) != 8 {
		t.Fatalf("want the paper's 8 benchmarks, got %d", len(benches))
	}
	names := map[string]bool{}
	for _, p := range benches {
		if err := validate(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"cc1", "ghostscript", "go", "ijpeg", "mpeg2enc", "pegwit", "perl", "vortex"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
	if _, ok := ByName("cc1"); !ok {
		t.Fatal("ByName(cc1) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	p, _ := ByName("pegwit")
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Segment(program.SegText), b.Segment(program.SegText)
	if !bytes.Equal(ta.Data, tb.Data) {
		t.Fatal("same seed must produce identical code")
	}
	da, db := a.Segment(program.SegData), b.Segment(program.SegData)
	if !bytes.Equal(da.Data, db.Data) {
		t.Fatal("same seed must produce identical data")
	}
}

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, p := range Benchmarks() {
		im, err := Build(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(im.Procs) != p.TotalProcs+1 { // +1 for main
			t.Fatalf("%s: %d procs, want %d", p.Name, len(im.Procs), p.TotalProcs+1)
		}
		if im.Entry != im.Symbols["main"] {
			t.Fatalf("%s: entry not main", p.Name)
		}
	}
}

func runImage(t *testing.T, im *program.Image) (string, cpu.Stats) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 100_000_000
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	return out.String(), c.Stats
}

func TestScaledBenchmarkRunsToCompletion(t *testing.T) {
	p, _ := ByName("pegwit")
	im, err := Build(p.Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	out, stats := runImage(t, im)
	if out == "" {
		t.Fatal("no checksum printed")
	}
	if stats.Instrs < 10_000 {
		t.Fatalf("suspiciously short run: %d instrs", stats.Instrs)
	}
}

func TestScaleChangesOnlyDynamicLength(t *testing.T) {
	p, _ := ByName("mpeg2enc")
	a, _ := Build(p.Scale(0.2))
	b, _ := Build(p)
	if !bytes.Equal(a.Segment(program.SegText).Data, b.Segment(program.SegText).Data) {
		// Iters appears as a literal in the driver, so one instruction's
		// immediate differs; everything else must match. Compare sizes.
		if len(a.Segment(program.SegText).Data) != len(b.Segment(program.SegText).Data) {
			t.Fatal("Scale must not change the code size")
		}
	}
}

// The headline end-to-end test: a synthetic benchmark produces the same
// checksum under native execution and under both software decompressors.
func TestCompressedBenchmarkChecksumMatches(t *testing.T) {
	p, _ := ByName("pegwit")
	im, err := Build(p.Scale(0.15))
	if err != nil {
		t.Fatal(err)
	}
	want, nat := runImage(t, im)
	for _, opts := range []core.Options{
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
	} {
		res, err := core.Compress(im, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts, err)
		}
		got, st := runImage(t, res.Image)
		if got != want {
			t.Fatalf("%s: checksum %q, want %q", opts.Scheme, got, want)
		}
		if st.Instrs != nat.Instrs {
			t.Fatalf("%s: user instrs %d, want %d", opts.Scheme, st.Instrs, nat.Instrs)
		}
		if st.Exceptions == 0 {
			t.Fatalf("%s: decompressor never ran", opts.Scheme)
		}
	}
}

func TestGenWordNeverTouchesReservedRegs(t *testing.T) {
	// Generated instructions must not write the driver's registers.
	p, _ := ByName("cc1")
	im, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = im
	reserved := map[int]bool{16: true, 17: true, 18: true, 19: true, 20: true,
		21: true, 22: true, 23: true, 26: true, 27: true, 28: true, 29: true, 31: true}
	for _, r := range wideRegs {
		if reserved[r] {
			t.Fatalf("register %d is reserved but in the generated set", r)
		}
	}
	for _, r := range narrowRegs {
		if reserved[r] {
			t.Fatalf("register %d is reserved but in the narrow set", r)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("pegwit")
	bad := []func(*Profile){
		func(p *Profile) { p.TotalProcs = 1 },
		func(p *Profile) { p.HotProcs = 0 },
		func(p *Profile) { p.HotProcs = p.TotalProcs },
		func(p *Profile) { p.PhaseLen = 0 },
		func(p *Profile) { p.ColdEvery = 0 },
		func(p *Profile) { p.Iters = 0 },
		func(p *Profile) { p.ProcInstrsMax = p.ProcInstrsMin - 1 },
		func(p *Profile) { p.PoolSize = 0 },
		func(p *Profile) { p.CommonFraction = 1.5 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if _, err := Build(p); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestProfileCollectsCallEdges(t *testing.T) {
	p, _ := ByName("pegwit")
	im, err := Build(p.Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 100_000_000
	c, _ := cpu.New(cfg)
	prof := cpu.NewProcProfile(im)
	c.Prof = prof
	c.Out = io.Discard
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Calls) == 0 {
		t.Fatal("no call edges recorded")
	}
	// All calls originate from the driver (leaf procedures).
	for k, v := range prof.Calls {
		if prof.Procs[k[0]].Name != "main" {
			t.Fatalf("unexpected caller %s", prof.Procs[k[0]].Name)
		}
		if v == 0 {
			t.Fatal("zero-weight edge stored")
		}
	}
}

func TestColdSweepTouchesAllProcedures(t *testing.T) {
	// With enough iterations, the cold pointer wraps the whole table, so
	// every procedure executes at least once.
	p, _ := ByName("pegwit")
	p.Iters = p.TotalProcs*p.ColdEvery/p.ColdCount + p.ColdEvery + 1
	im, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 500_000_000
	c, _ := cpu.New(cfg)
	prof := cpu.NewProcProfile(im)
	c.Prof = prof
	c.Out = io.Discard
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, proc := range prof.Procs {
		if prof.Execs[i] == 0 {
			t.Fatalf("procedure %s never executed", proc.Name)
		}
	}
}
