package decomp

import (
	"strings"
	"testing"

	"repro/internal/compress/dict"
	"repro/internal/isa"
	"repro/internal/program"
)

func allVariants() []Variant {
	return []Variant{
		{Scheme: program.SchemeDict},
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeDict, IndexBits: dict.Index8},
		{Scheme: program.SchemeDict, ShadowRF: true, IndexBits: dict.Index8},
		{Scheme: program.SchemeCodePack},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
		{Scheme: program.SchemeProcDict},
		{Scheme: program.SchemeProcDict, ShadowRF: true},
		{Scheme: "copy"},
	}
}

func TestAllHandlersAssemble(t *testing.T) {
	for _, v := range allVariants() {
		seg, err := Build(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if seg.Base != program.HandlerBase {
			t.Fatalf("%v: base %#x", v, seg.Base)
		}
		// Every word must be a legal instruction and the last one an iret.
		for a := seg.Base; a < seg.End(); a += 4 {
			if isa.Classify(seg.Word(a)) == isa.KindIllegal {
				t.Fatalf("%v: illegal instruction at %#x", v, a)
			}
		}
		last := seg.Word(seg.End() - 4)
		if isa.Classify(last) != isa.KindIret {
			t.Fatalf("%v: last instruction is %s, want iret",
				v, isa.Disassemble(seg.End()-4, last))
		}
	}
}

func TestHandlerSizes(t *testing.T) {
	// The paper reports 26 instructions for the dictionary handler
	// (Figure 2) and 208 for CodePack. Our ISA lacks reg+reg load
	// addressing, so ours are slightly larger; assert the same order of
	// magnitude and the expected orderings.
	sizes := map[string]int{}
	for _, v := range allVariants() {
		n, err := StaticInstrs(v)
		if err != nil {
			t.Fatal(err)
		}
		sizes[v.String()] = n
	}
	d := sizes["dict"]
	if d < 20 || d > 32 {
		t.Fatalf("dict handler = %d instructions, paper has 26", d)
	}
	cp := sizes["codepack"]
	if cp < 120 || cp > 300 {
		t.Fatalf("codepack handler = %d instructions, paper has 208", cp)
	}
	if sizes["dict+RF"] <= sizes["dict"] {
		t.Fatal("unrolled RF dictionary handler should be bigger (static) than the loop version")
	}
	if sizes["codepack+RF"] >= sizes["codepack"] {
		t.Fatal("RF CodePack handler should be smaller (no save/restore)")
	}
}

func TestSwicAndIretPresent(t *testing.T) {
	for _, v := range allVariants() {
		seg, err := Build(v)
		if err != nil {
			t.Fatal(err)
		}
		haveSwic := false
		for a := seg.Base; a < seg.End(); a += 4 {
			if isa.Classify(seg.Word(a)) == isa.KindSwic {
				haveSwic = true
			}
		}
		if !haveSwic {
			t.Fatalf("%v: handler never writes the I-cache", v)
		}
	}
}

func TestSourceIsReadable(t *testing.T) {
	src, err := Source(Variant{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mfc0", "$c0_badva", "swic", "iret", "Figure 2"} {
		if !strings.Contains(src, want) {
			t.Fatalf("dictionary source missing %q", want)
		}
	}
	if _, err := Source(Variant{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestVariantString(t *testing.T) {
	cases := map[string]Variant{
		"dict":        {Scheme: program.SchemeDict},
		"dict+RF":     {Scheme: program.SchemeDict, ShadowRF: true},
		"dict8":       {Scheme: program.SchemeDict, IndexBits: dict.Index8},
		"codepack+RF": {Scheme: program.SchemeCodePack, ShadowRF: true},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
