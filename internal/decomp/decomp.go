// Package decomp provides the software decompressors: real exception
// handlers written in CLR32 assembly, assembled into the dedicated
// decompressor RAM. Four production handlers are provided, matching the
// paper's four configurations (§4.1):
//
//   - dictionary (a transcription of the paper's Figure 2),
//   - dictionary with a second (shadow) register file, fully unrolled,
//   - CodePack,
//   - CodePack with a shadow register file.
//
// A fifth "copy" handler (no compression; copies lines from a backed
// golden image) serves as an ablation baseline that isolates the cost of
// the exception/swic mechanism itself.
package decomp

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compress/dict"
	"repro/internal/program"
)

// LineBytes is the I-cache line size the handlers are written for.
const LineBytes = 32

// Variant selects a handler.
type Variant struct {
	Scheme   program.Scheme
	ShadowRF bool
	// IndexBits applies to the dictionary scheme only (16 is the paper's
	// configuration; 8 is an ablation).
	IndexBits dict.IndexBits
}

func (v Variant) String() string {
	name := string(v.Scheme)
	if v.Scheme == program.SchemeDict && v.IndexBits == dict.Index8 {
		name += "8"
	}
	if v.ShadowRF {
		name += "+RF"
	}
	return name
}

// Variants returns every shipped handler configuration, in the order
// the paper presents them (§4.1) plus the ablation handlers.
func Variants() []Variant {
	return []Variant{
		{Scheme: program.SchemeDict},
		{Scheme: program.SchemeDict, ShadowRF: true},
		{Scheme: program.SchemeDict, IndexBits: dict.Index8},
		{Scheme: program.SchemeCodePack},
		{Scheme: program.SchemeCodePack, ShadowRF: true},
		{Scheme: program.SchemeProcDict},
		{Scheme: program.SchemeProcDict, ShadowRF: true},
		{Scheme: "copy", ShadowRF: true},
	}
}

// Region returns the handler RAM address range the decompressor executes
// from (fetched in parallel with the I-cache, paper §4.1).
func Region() (base, size uint32) {
	return program.HandlerBase, program.HandlerSize
}

// Source returns the handler's assembly source text.
func Source(v Variant) (string, error) {
	switch v.Scheme {
	case program.SchemeDict:
		shift := uint(1)
		load := "lhu"
		scale := uint(2)
		if v.IndexBits == dict.Index8 {
			shift, load, scale = 2, "lbu", 1
		}
		if v.ShadowRF {
			return dictRFSource(shift, load, scale), nil
		}
		return dictSource(shift, load, scale), nil
	case program.SchemeCodePack:
		return codepackSource(v.ShadowRF), nil
	case program.SchemeProcDict:
		return procdictSource(v.ShadowRF), nil
	case "copy":
		return copySource(v.ShadowRF), nil
	default:
		return "", fmt.Errorf("decomp: no handler for scheme %q", v.Scheme)
	}
}

// Build assembles the handler for v and returns its .decompressor segment.
func Build(v Variant) (*program.Segment, error) {
	src, err := Source(v)
	if err != nil {
		return nil, err
	}
	return BuildSource(v.String(), src)
}

// BuildSource assembles handler source text (named for error messages)
// into its .decompressor segment and size-checks it against the handler
// RAM. It is the assembly path codecs outside this package share.
func BuildSource(name, src string) (*program.Segment, error) {
	im, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("decomp: assembling %s handler: %v", name, err)
	}
	seg := im.Segment(program.SegDecompressor)
	if seg == nil {
		return nil, fmt.Errorf("decomp: %s handler has no %s section", name, program.SegDecompressor)
	}
	if uint32(len(seg.Data)) > program.HandlerSize {
		return nil, fmt.Errorf("decomp: %s handler exceeds handler RAM", name)
	}
	return seg, nil
}

// StaticInstrs returns the handler's static size in instructions.
func StaticInstrs(v Variant) (int, error) {
	seg, err := Build(v)
	if err != nil {
		return 0, err
	}
	return len(seg.Data) / 4, nil
}

const header = `
        .section .decompressor, 0x7F000000
`

// dictSource is the paper's Figure 2: the L1 miss exception handler for
// the dictionary method, using the single register file (registers are
// saved to the user stack; $k0/$k1 are reserved for the OS and need no
// saving). shift maps a native byte offset to an index-stream offset,
// load is the index load (lhu/lbu) and scale the index byte width log2.
func dictSource(shift uint, load string, scale uint) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString(`
# Load L1 I-cache line with 8 instructions (dictionary method, Figure 2).
#   $k1: cache line address, then store pointer
#   $t1: index address        $t2: dictionary base
#   $t3: index / entry temp   $t4: next line address (loop stop)
        .proc __decompress_dict
__decompress_dict:
        # Save registers to the user stack; $k0,$k1 need no saving.
        sw    $t1, -4($sp)
        sw    $t2, -8($sp)
        sw    $t3, -12($sp)
        sw    $t4, -16($sp)
        # System register inputs.
        mfc0  $k1, $c0_badva     # the faulting address
        mfc0  $k0, $c0_dbase     # decompressed region base
        mfc0  $t2, $c0_dict      # dictionary base
        mfc0  $t3, $c0_indices   # indices base
        # Zero low 5 bits to get the cache line address.
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        # index_address = (badva - dbase) >> SHIFT + indices
        subu  $t1, $k1, $k0
`)
	fmt.Fprintf(&b, "        srl   $t1, $t1, %d\n", shift)
	b.WriteString(`        addu  $t1, $t3, $t1
        addiu $t4, $k1, 32       # stop when the next line is reached
loop:
`)
	fmt.Fprintf(&b, "        %s   $t3, 0($t1)\n", load)
	fmt.Fprintf(&b, "        addiu $t1, $t1, %d\n", scale) // index byte width
	fmt.Fprintf(&b, "        sll   $t3, $t3, 2\n")
	b.WriteString(`        addu  $t3, $t3, $t2      # dictionary entry address
        lw    $k0, 0($t3)        # the instruction
        swic  $k0, 0($k1)        # store word into the I-cache
        addiu $k1, $k1, 4
        bne   $k1, $t4, loop
        # Restore registers and return.
        lw    $t1, -4($sp)
        lw    $t2, -8($sp)
        lw    $t3, -12($sp)
        lw    $t4, -16($sp)
        iret
        .endp
`)
	return b.String()
}

// dictRFSource is the second-register-file variant (§4.1): no register
// save/restore, and the extra registers allow the loop to be fully
// unrolled, eliminating the pointer increments and the branch.
func dictRFSource(shift uint, load string, scale uint) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString(`
# Dictionary decompressor with a second register file: the handler owns
# every register, so nothing is saved and the copy loop is unrolled.
        .proc __decompress_dict_rf
__decompress_dict_rf:
        mfc0  $k1, $c0_badva
        mfc0  $k0, $c0_dbase
        mfc0  $t2, $c0_dict
        mfc0  $t3, $c0_indices
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        subu  $t1, $k1, $k0
`)
	fmt.Fprintf(&b, "        srl   $t1, $t1, %d\n", shift)
	b.WriteString("        addu  $t1, $t3, $t1\n")
	for i := 0; i < LineBytes/4; i++ {
		fmt.Fprintf(&b, "        %s   $t4, %d($t1)\n", load, i*int(scale))
		fmt.Fprintf(&b, "        sll   $t4, $t4, 2\n")
		fmt.Fprintf(&b, "        addu  $t4, $t4, $t2\n")
		fmt.Fprintf(&b, "        lw    $t5, 0($t4)\n")
		fmt.Fprintf(&b, "        swic  $t5, %d($k1)\n", i*4)
	}
	b.WriteString("        iret\n        .endp\n")
	return b.String()
}

// copySource builds the null "decompressor": it copies the missed line
// from a backed golden copy whose base is in $c0_dict, isolating the
// exception + swic overhead. The single-register-file variant saves its
// three temporaries to the red zone, like the dictionary handler.
func copySource(shadowRF bool) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString(`
# Null "decompressor": copies the missed line from a backed golden copy
# whose base is in $c0_dict. Isolates the exception + swic overhead.
        .proc __decompress_copy
__decompress_copy:
`)
	if !shadowRF {
		b.WriteString(`        sw    $t1, -4($sp)
        sw    $t2, -8($sp)
        sw    $t3, -12($sp)
`)
	}
	b.WriteString(`        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5
        mfc0  $k0, $c0_dbase
        subu  $k0, $k1, $k0
        mfc0  $t1, $c0_dict
        addu  $t1, $t1, $k0
        addiu $t2, $k1, 32
cloop:  lw    $t3, 0($t1)
        swic  $t3, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t2, cloop
`)
	if !shadowRF {
		b.WriteString(`        lw    $t1, -4($sp)
        lw    $t2, -8($sp)
        lw    $t3, -12($sp)
`)
	}
	b.WriteString("        iret\n        .endp\n")
	return b.String()
}

// codepackSource builds the CodePack group decompressor. It decodes a
// whole 16-instruction group (two cache lines) serially from the
// variable-length bit-stream, as the algorithm requires (§3.2).
//
// Register roles during the decode loop:
//
//	$t9 stream ptr   $t7 bit buffer (MSB-justified)   $t6 valid bits
//	$t0/$t1 rank-0 hi/lo values
//	$t2/$t3 hi/lo class-1 tables, $t4/$t5 class-2, $s0/$s1 class-3
//	$k1 write address  $s2 group end  $s3 decoded high half
//	$t8/$k0 scratch
func codepackSource(shadowRF bool) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("        .proc __decompress_codepack\n__decompress_codepack:\n")
	saved := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9", "$s0", "$s1", "$s2", "$s3"}
	if !shadowRF {
		b.WriteString("        # Single register file: save everything we touch.\n")
		for i, r := range saved {
			fmt.Fprintf(&b, "        sw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString(`        # Locate the group: both cache lines at (badva & ~63).
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 6
        sll   $k1, $k1, 6        # k1 = group base address
        mfc0  $k0, $c0_dbase
        subu  $t8, $k1, $k0      # byte offset into region (64-aligned)
        srl   $t8, $t8, 4        # = group index * 4: LAT entry offset
        mfc0  $t9, $c0_lat
        addu  $t8, $t9, $t8
        lw    $t8, 0($t8)        # stream byte offset (the extra access)
        mfc0  $t9, $c0_indices
        addu  $t9, $t9, $t8      # t9 = stream pointer
        # Preload the decode tables from the .dictionary header.
        mfc0  $t8, $c0_dict
        lhu   $t0, 0($t8)        # rank-0 high value
        lhu   $t1, 2($t8)        # rank-0 low value
        lw    $t2, 4($t8)
        addu  $t2, $t2, $t8      # hi class-1 table
        lw    $t3, 8($t8)
        addu  $t3, $t3, $t8      # lo class-1 table
        lw    $t4, 12($t8)
        addu  $t4, $t4, $t8      # hi class-2 table
        lw    $t5, 16($t8)
        addu  $t5, $t5, $t8      # lo class-2 table
        lw    $s0, 20($t8)
        addu  $s0, $s0, $t8      # hi class-3 table
        lw    $s1, 24($t8)
        addu  $s1, $s1, $t8      # lo class-3 table
        move  $t7, $zero         # bit buffer
        move  $t6, $zero         # valid bit count
        addiu $s2, $k1, 64       # group end
`)
	// take emits code consuming k bits into $t8.
	take := func(label string, k int) {
		fmt.Fprintf(&b, "        slti  $k0, $t6, %d\n", k)
		fmt.Fprintf(&b, "        beq   $k0, $zero, %s\n", label)
		b.WriteString(`        lhu   $k0, 0($t9)        # refill 16 bits
        addiu $t9, $t9, 2
        ori   $t8, $zero, 16
        subu  $t8, $t8, $t6
        sllv  $k0, $k0, $t8
        or    $t7, $t7, $k0
        addiu $t6, $t6, 16
`)
		fmt.Fprintf(&b, "%s:\n", label)
		fmt.Fprintf(&b, "        srl   $t8, $t7, %d\n", 32-k)
		fmt.Fprintf(&b, "        sll   $t7, $t7, %d\n", k)
		fmt.Fprintf(&b, "        addiu $t6, $t6, -%d\n", k)
	}
	// decodeHalf emits code leaving the decoded halfword in $t8.
	decodeHalf := func(side string, rank0, t1, t2, t3 string) {
		p := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }
		take(side+"_f0", 2)
		p("        beq   $t8, $zero, %s_rank0", side)
		p("        slti  $k0, $t8, 2")
		p("        bne   $k0, $zero, %s_c1", side)
		p("        slti  $k0, $t8, 3")
		p("        bne   $k0, $zero, %s_c2", side)
		take(side+"_f1", 1)
		p("        bne   $t8, $zero, %s_raw", side)
		take(side+"_f3", 11)
		p("        sll   $t8, $t8, 1")
		p("        addu  $t8, $t8, %s", t3)
		p("        lhu   $t8, 0($t8)")
		p("        b     %s_done", side)
		p("%s_raw:", side)
		take(side+"_f4", 16)
		p("        b     %s_done", side)
		p("%s_c2:", side)
		take(side+"_f5", 8)
		p("        sll   $t8, $t8, 1")
		p("        addu  $t8, $t8, %s", t2)
		p("        lhu   $t8, 0($t8)")
		p("        b     %s_done", side)
		p("%s_c1:", side)
		take(side+"_f6", 5)
		p("        sll   $t8, $t8, 1")
		p("        addu  $t8, $t8, %s", t1)
		p("        lhu   $t8, 0($t8)")
		p("        b     %s_done", side)
		p("%s_rank0:", side)
		p("        move  $t8, %s", rank0)
		p("%s_done:", side)
	}
	b.WriteString("iloop:\n")
	decodeHalf("hi", "$t0", "$t2", "$t4", "$s0")
	b.WriteString("        sll   $s3, $t8, 16      # hold the high half\n")
	decodeHalf("lo", "$t1", "$t3", "$t5", "$s1")
	b.WriteString(`        or    $s3, $s3, $t8
        swic  $s3, 0($k1)
        addiu $k1, $k1, 4
        bne   $k1, $s2, iloop
`)
	if !shadowRF {
		for i, r := range saved {
			fmt.Fprintf(&b, "        lw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString("        iret\n        .endp\n")
	return b.String()
}
