package decomp

import (
	"fmt"
	"strings"
)

// procdictSource builds the procedure-granularity dictionary
// decompressor: on a miss anywhere inside a procedure, the whole
// procedure is decompressed into the I-cache. It models the
// procedure-based scheme of Kirovski et al. that the paper compares
// against (§2, §5.2), but with the same dictionary codec as the
// line-granularity handler so the two differ only in granularity.
//
// The handler binary-searches a procedure-bounds table (word 0: count N;
// words 1..N: procedure start addresses, ascending; word N+1: region
// end), whose base is published in $c0_lat. It then runs the ordinary
// dictionary loop over the procedure's line-aligned address range.
func procdictSource(shadowRF bool) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("        .proc __decompress_procdict\n__decompress_procdict:\n")
	saved := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$s0", "$s1"}
	if !shadowRF {
		for i, r := range saved {
			fmt.Fprintf(&b, "        sw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString(`        mfc0  $k1, $c0_badva
        mfc0  $t0, $c0_lat       # procedure-bounds table base
        lw    $t1, 0($t0)        # N procedures
        addiu $t2, $t0, 4        # starts[] base
        # Binary search: greatest i with starts[i] <= badva.
        move  $t3, $zero         # lo
        move  $t4, $t1           # hi
bsloop: subu  $t5, $t4, $t3
        slti  $t6, $t5, 2
        bne   $t6, $zero, bsdone
        addu  $t5, $t3, $t4
        srl   $t5, $t5, 1        # mid
        sll   $t6, $t5, 2
        addu  $t6, $t6, $t2
        lw    $t6, 0($t6)        # starts[mid]
        sltu  $t7, $k1, $t6
        beq   $t7, $zero, bslo
        move  $t4, $t5           # badva < starts[mid]: hi = mid
        b     bsloop
bslo:   move  $t3, $t5           # lo = mid
        b     bsloop
bsdone: sll   $t5, $t3, 2
        addu  $t5, $t5, $t2
        lw    $s0, 0($t5)        # procedure start
        lw    $s1, 4($t5)        # procedure end (next start / sentinel)
        srl   $s0, $s0, 5
        sll   $s0, $s0, 5        # align start down to a line
        addiu $s1, $s1, 31
        srl   $s1, $s1, 5
        sll   $s1, $s1, 5        # align end up to a line
        # Dictionary decompression of the whole range (Figure 2 loop).
        mfc0  $k0, $c0_dbase
        mfc0  $t2, $c0_dict
        mfc0  $t3, $c0_indices
        subu  $t1, $s0, $k0
        srl   $t1, $t1, 1
        addu  $t1, $t3, $t1      # index address
ploop:  lhu   $t3, 0($t1)
        addiu $t1, $t1, 2
        sll   $t3, $t3, 2
        addu  $t3, $t3, $t2
        lw    $k0, 0($t3)
        swic  $k0, 0($s0)
        addiu $s0, $s0, 4
        bne   $s0, $s1, ploop
`)
	if !shadowRF {
		for i, r := range saved {
			fmt.Fprintf(&b, "        lw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString("        iret\n        .endp\n")
	return b.String()
}
