package core

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/compress/dict"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/synth"
)

// testProgram mixes recursion, loops, data access and output so that a
// decoding bug in any handler diverges the architectural result.
const testProgram = `
        .data
tab:    .word 3, 1, 4, 1, 5, 9, 2, 6
msg:    .asciiz "ok"
        .text
        .proc main
main:   ori   $s0, $zero, 8
        move  $s1, $zero
        la    $s2, tab
mloop:  lw    $t0, 0($s2)
        addu  $s1, $s1, $t0
        addiu $s2, $s2, 4
        addiu $s0, $s0, -1
        bgtz  $s0, mloop
        ori   $a0, $zero, 9
        jal   fib
        addu  $s1, $s1, $v0
        jal   shuffle
        addu  $s1, $s1, $v0
        la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        andi  $a0, $s1, 0xFF
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc fib
fib:    slti  $t0, $a0, 2
        beq   $t0, $zero, frec
        move  $v0, $a0
        jr    $ra
frec:   addiu $sp, $sp, -12
        sw    $ra, 8($sp)
        sw    $a0, 4($sp)
        addiu $a0, $a0, -1
        jal   fib
        sw    $v0, 0($sp)
        lw    $a0, 4($sp)
        addiu $a0, $a0, -2
        jal   fib
        lw    $t0, 0($sp)
        addu  $v0, $v0, $t0
        lw    $ra, 8($sp)
        addiu $sp, $sp, 12
        jr    $ra
        .endp
        .proc shuffle
shuffle:
        ori   $t0, $zero, 50
        li    $t1, 0x12345
        move  $v0, $zero
sloop:  xor   $t1, $t1, $t0
        sll   $t2, $t1, 3
        srl   $t3, $t1, 7
        or    $t1, $t2, $t3
        addu  $v0, $v0, $t1
        addiu $t0, $t0, -1
        bgtz  $t0, sloop
        andi  $v0, $v0, 0xFFF
        jr    $ra
        .endp
`

func assembleNative(t *testing.T) *program.Image {
	t.Helper()
	im, err := asm.Assemble(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

type runResult struct {
	code  int32
	out   string
	stats cpu.Stats
	cpu   *cpu.CPU
}

func runOn(t *testing.T, im *program.Image, cacheKB int) runResult {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.ICache.SizeBytes = cacheKB * 1024
	cfg.MaxInstr = 50_000_000
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return runResult{code, out.String(), c.Stats, c}
}

func compressWith(t *testing.T, native *program.Image, opts Options) *Result {
	t.Helper()
	res, err := Compress(native, opts)
	if err != nil {
		t.Fatalf("Compress(%+v): %v", opts, err)
	}
	return res
}

func TestDictCompressedRunMatchesNative(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	for _, rf := range []bool{false, true} {
		res := compressWith(t, native, Options{Scheme: program.SchemeDict, ShadowRF: rf})
		got := runOn(t, res.Image, 16)
		if got.code != ref.code || got.out != ref.out {
			t.Fatalf("rf=%v: diverged: code %d vs %d, out %q vs %q",
				rf, got.code, ref.code, got.out, ref.out)
		}
		if got.stats.Instrs != ref.stats.Instrs {
			t.Fatalf("rf=%v: user instr count changed: %d vs %d", rf, got.stats.Instrs, ref.stats.Instrs)
		}
		if got.stats.Exceptions == 0 {
			t.Fatalf("rf=%v: no decompression happened", rf)
		}
		if got.stats.Cycles <= ref.stats.Cycles {
			t.Fatalf("rf=%v: compressed not slower", rf)
		}
	}
}

func TestCodePackCompressedRunMatchesNative(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	for _, rf := range []bool{false, true} {
		res := compressWith(t, native, Options{Scheme: program.SchemeCodePack, ShadowRF: rf})
		got := runOn(t, res.Image, 16)
		if got.code != ref.code || got.out != ref.out {
			t.Fatalf("rf=%v: diverged: code %d vs %d, out %q vs %q",
				rf, got.code, ref.code, got.out, ref.out)
		}
		if got.stats.Exceptions == 0 {
			t.Fatalf("rf=%v: no decompression happened", rf)
		}
	}
}

func TestProcDictSchemeMatchesNative(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	for _, rf := range []bool{false, true} {
		res := compressWith(t, native, Options{Scheme: program.SchemeProcDict, ShadowRF: rf})
		got := runOn(t, res.Image, 16)
		if got.code != ref.code || got.out != ref.out {
			t.Fatalf("rf=%v: procdict diverged: %d/%q vs %d/%q", rf, got.code, got.out, ref.code, ref.out)
		}
		if got.stats.Exceptions == 0 {
			t.Fatalf("rf=%v: no decompression happened", rf)
		}
		// Procedure granularity must take fewer exceptions than there are
		// compressed lines touched: whole procedures prefetch.
		d := compressWith(t, native, Options{Scheme: program.SchemeDict, ShadowRF: rf})
		dGot := runOn(t, d.Image, 16)
		if got.stats.Exceptions >= dGot.stats.Exceptions {
			t.Fatalf("rf=%v: procdict exceptions %d not below dict %d",
				rf, got.stats.Exceptions, dGot.stats.Exceptions)
		}
	}
}

func TestCopySchemeMatchesNative(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	res := compressWith(t, native, Options{Scheme: SchemeCopy, ShadowRF: true})
	got := runOn(t, res.Image, 16)
	if got.code != ref.code || got.out != ref.out {
		t.Fatal("copy scheme diverged")
	}
}

func TestDict8Ablation(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	res := compressWith(t, native, Options{
		Scheme: program.SchemeDict, ShadowRF: true, IndexBits: dict.Index8})
	got := runOn(t, res.Image, 16)
	if got.code != ref.code || got.out != ref.out {
		t.Fatal("8-bit dictionary diverged")
	}
	// 8-bit indices halve the index stream relative to 16-bit.
	res16 := compressWith(t, native, Options{Scheme: program.SchemeDict, ShadowRF: true})
	if res.StoredSize >= res16.StoredSize {
		t.Fatalf("8-bit (%d) should store less than 16-bit (%d) on this program",
			res.StoredSize, res16.StoredSize)
	}
}

func TestCacheLinesMatchGolden(t *testing.T) {
	native := assembleNative(t)
	for _, scheme := range []program.Scheme{program.SchemeDict, program.SchemeCodePack} {
		res := compressWith(t, native, Options{Scheme: scheme, ShadowRF: true})
		r := runOn(t, res.Image, 16)
		text := res.Image.Segment(program.SegText)
		checked := 0
		for addr := text.Base; addr < text.End(); addr += 32 {
			line := r.cpu.IC.LineData(addr)
			if line == nil {
				continue
			}
			checked++
			want := text.Data[addr-text.Base:]
			for i := 0; i < 32 && int(addr-text.Base)+i < len(text.Data); i++ {
				if line[i] != want[i] {
					t.Fatalf("%s: line %#x byte %d: got %#x want %#x",
						scheme, addr, i, line[i], want[i])
				}
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no lines to check", scheme)
		}
	}
}

func TestSelectiveCompression(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	res := compressWith(t, native, Options{
		Scheme:      program.SchemeDict,
		ShadowRF:    true,
		NativeProcs: map[string]bool{"fib": true},
	})
	got := runOn(t, res.Image, 16)
	if got.code != ref.code || got.out != ref.out {
		t.Fatalf("selective run diverged: %d/%q vs %d/%q", got.code, got.out, ref.code, ref.out)
	}
	if res.NativeBytes == 0 {
		t.Fatal("no native region produced")
	}
	// fib must live in the native region.
	p := res.Image.ProcByName("fib")
	if p == nil || p.Addr >= program.CompBase {
		t.Fatalf("fib not in native region: %+v", p)
	}
	// Size accounting: stored = native bytes + dict + indices (+ padding
	// instructions), and the image agrees with the Result.
	if res.StoredSize != res.Image.StoredCodeSize() {
		t.Fatalf("accounting mismatch: %d vs %d", res.StoredSize, res.Image.StoredCodeSize())
	}
	if fibSize := int(p.Size); res.NativeBytes != fibSize {
		t.Fatalf("native bytes = %d, want fib's size %d", res.NativeBytes, fibSize)
	}
}

func TestSelectiveAllNativeRejected(t *testing.T) {
	native := assembleNative(t)
	_, err := Compress(native, Options{
		Scheme:      program.SchemeDict,
		NativeProcs: map[string]bool{"main": true, "fib": true, "shuffle": true},
	})
	if err == nil {
		t.Fatal("expected error when everything is native")
	}
}

func TestSlowdownOrdering(t *testing.T) {
	// On the same program: native <= D+RF <= D, native <= CP+RF <= CP,
	// and dictionary is faster than CodePack (paper Table 3).
	native := assembleNative(t)
	ref := runOn(t, native, 4) // small cache: more misses, more decompression
	cyc := func(opts Options) uint64 {
		res := compressWith(t, native, opts)
		return runOn(t, res.Image, 4).stats.Cycles
	}
	d := cyc(Options{Scheme: program.SchemeDict})
	drf := cyc(Options{Scheme: program.SchemeDict, ShadowRF: true})
	cp := cyc(Options{Scheme: program.SchemeCodePack})
	cprf := cyc(Options{Scheme: program.SchemeCodePack, ShadowRF: true})
	if !(ref.stats.Cycles < drf && drf < d) {
		t.Fatalf("dict ordering violated: native=%d D+RF=%d D=%d", ref.stats.Cycles, drf, d)
	}
	if !(ref.stats.Cycles < cprf && cprf <= cp) {
		t.Fatalf("codepack ordering violated: native=%d CP+RF=%d CP=%d", ref.stats.Cycles, cprf, cp)
	}
	if !(d < cp) {
		t.Fatalf("dictionary (%d) should be faster than CodePack (%d)", d, cp)
	}
}

func TestSizeAccounting(t *testing.T) {
	// ratio = 0.5 + unique/total for 16-bit dictionary compression (§3.1):
	// a tiny program with mostly-unique instructions legitimately expands.
	native := assembleNative(t)
	d := compressWith(t, native, Options{Scheme: program.SchemeDict})
	golden := d.Image.Segment(program.SegText).Data
	uniq := map[string]bool{}
	for i := 0; i+4 <= len(golden); i += 4 {
		uniq[string(golden[i:i+4])] = true
	}
	want := 0.5 + float64(len(uniq))/float64(len(golden)/4)
	// The ratio uses the original (pre-padding) size as denominator, so
	// allow the padding slack.
	got := d.Ratio()
	if got < want*0.95 || got > want*1.15 {
		t.Fatalf("ratio = %.3f, want about %.3f", got, want)
	}
	if d.StoredSize != d.Image.StoredCodeSize() {
		t.Fatalf("size accounting mismatch: %d vs %d", d.StoredSize, d.Image.StoredCodeSize())
	}
}

func TestPlacementOrderOption(t *testing.T) {
	native := assembleNative(t)
	ref := runOn(t, native, 16)
	// Reverse the procedure order; results must be identical, layout not.
	res := compressWith(t, native, Options{
		Scheme:   program.SchemeDict,
		ShadowRF: true,
		Order:    []string{"shuffle", "fib", "main"},
	})
	got := runOn(t, res.Image, 16)
	if got.code != ref.code || got.out != ref.out {
		t.Fatalf("reordered image diverged: %d/%q", got.code, got.out)
	}
	sh := res.Image.ProcByName("shuffle")
	mn := res.Image.ProcByName("main")
	fb := res.Image.ProcByName("fib")
	if !(sh.Addr < fb.Addr && fb.Addr < mn.Addr) {
		t.Fatalf("order not applied: shuffle=%#x fib=%#x main=%#x", sh.Addr, fb.Addr, mn.Addr)
	}
	// A partial order lists some procedures; the rest keep program order.
	res2 := compressWith(t, native, Options{
		Scheme:   program.SchemeDict,
		ShadowRF: true,
		Order:    []string{"fib"},
	})
	got2 := runOn(t, res2.Image, 16)
	if got2.out != ref.out {
		t.Fatal("partial order diverged")
	}
	if p := res2.Image.ProcByName("fib"); p.Addr != program.CompBase {
		t.Fatalf("fib should lead the region: %#x", p.Addr)
	}
}

func TestCompressErrors(t *testing.T) {
	native := assembleNative(t)
	if _, err := Compress(native, Options{Scheme: "bogus"}); err == nil {
		t.Fatal("unknown scheme must error")
	}
	res := compressWith(t, native, Options{Scheme: program.SchemeDict})
	if _, err := Compress(res.Image, Options{Scheme: program.SchemeDict}); err == nil {
		t.Fatal("double compression must error")
	}
}

func TestDictionaryOverflowSpillsToNative(t *testing.T) {
	// With 8-bit indices (256-entry dictionary) a benchmark-sized program
	// overflows: the tail procedures must be left native automatically
	// (paper §3.1), and the program must still run correctly.
	p, ok := synth.ByName("pegwit")
	if !ok {
		t.Fatal("missing benchmark")
	}
	im, err := synth.Build(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	ref := runOn(t, im, 16)
	res, err := Compress(im, Options{
		Scheme: program.SchemeDict, ShadowRF: true, IndexBits: dict.Index8})
	if err != nil {
		t.Fatalf("spill should make 8-bit compression possible: %v", err)
	}
	if res.NativeBytes == 0 {
		t.Fatal("expected a native spill region")
	}
	// The compressed region's unique words must fit 256 entries.
	golden := res.Image.Segment(program.SegText).Data
	uniq := map[string]bool{}
	for i := 0; i+4 <= len(golden); i += 4 {
		uniq[string(golden[i:i+4])] = true
	}
	if len(uniq) > 256 {
		t.Fatalf("compressed region has %d unique words, dictionary holds 256", len(uniq))
	}
	got := runOn(t, res.Image, 16)
	if got.code != ref.code || got.out != ref.out {
		t.Fatalf("spilled run diverged: %d/%q vs %d/%q", got.code, got.out, ref.code, ref.out)
	}
	if got.stats.Exceptions == 0 {
		t.Fatal("nothing was decompressed")
	}
}

func TestDictionaryNoSpillWhenItFits(t *testing.T) {
	native := assembleNative(t)
	res := compressWith(t, native, Options{Scheme: program.SchemeDict})
	if res.NativeBytes != 0 {
		t.Fatal("small program must not spill")
	}
}

func TestCompressRejectsBrokenInputs(t *testing.T) {
	// No .text segment.
	im := &program.Image{
		Entry:    program.DataBase,
		Segments: []*program.Segment{{Name: program.SegData, Base: program.DataBase, Data: make([]byte, 8)}},
		Symbols:  map[string]uint32{},
	}
	if _, err := Compress(im, Options{Scheme: program.SchemeDict}); err == nil {
		t.Fatal("missing .text must error")
	}
	// No procedure table.
	im2 := &program.Image{
		Entry:    program.NativeBase,
		Segments: []*program.Segment{{Name: program.SegText, Base: program.NativeBase, Data: make([]byte, 8)}},
		Symbols:  map[string]uint32{},
	}
	if _, err := Compress(im2, Options{Scheme: program.SchemeDict}); err == nil {
		t.Fatal("missing procedures must error")
	}
	// A relocation site outside every procedure cannot be re-laid out.
	native := assembleNative(t)
	bad := *native
	bad.Relocs = append(append([]program.Reloc(nil), native.Relocs...), program.Reloc{
		Kind: program.RelWord32, Seg: program.SegText,
		Off: native.Segment(program.SegText).End() - native.Segment(program.SegText).Base - 4,
		Sym: "main",
	})
	// Shrink the last procedure so the new site falls outside it.
	bad.Procs = append([]program.Procedure(nil), native.Procs...)
	last := &bad.Procs[len(bad.Procs)-1]
	if last.Size >= 8 {
		last.Size -= 4
		if _, err := Compress(&bad, Options{Scheme: program.SchemeDict}); err == nil {
			t.Fatal("reloc site outside procedures must error")
		}
	}
}
