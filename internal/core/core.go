// Package core implements the paper's primary contribution: the
// software-managed code-decompression architecture. It rewrites a native
// program image into a compressed image whose code lives in main memory as
// a dictionary or CodePack representation, installs the matching software
// decompression handler, and lays out the native/compressed code regions
// for selective compression (paper §3, Figure 3).
package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/codec"
	_ "repro/internal/codec/all" // register every shipped codec
	"repro/internal/compress/dict"
	"repro/internal/decomp"
	"repro/internal/isa"
	"repro/internal/program"
)

// SchemeCopy is the null-compression ablation scheme: lines are "decoded"
// by copying them from a backed golden image, isolating the cost of the
// exception + swic mechanism.
const SchemeCopy program.Scheme = "copy"

// Options controls image compression.
type Options struct {
	Scheme   program.Scheme
	ShadowRF bool
	// IndexBits selects the dictionary codeword width (default Index16).
	IndexBits dict.IndexBits
	// NativeProcs names the procedures to keep as native code (selective
	// compression, §3.3). Empty means compress everything.
	NativeProcs map[string]bool
	// Order lays procedures out (within each region) in the given order
	// instead of preserving the original program order — the hook for the
	// profile-guided placement the paper proposes as future work (§5.3).
	// Procedures not listed follow in their original relative order.
	Order []string
	// Lint runs the static analyzer (internal/analysis) over both the
	// input image and the rewritten image, returning warning-or-worse
	// findings in Result.Lint. It catches broken handlers, bad
	// re-layouts and unmapped branch targets in milliseconds, without a
	// lockstep simulation run.
	Lint bool
}

// LintResult carries the static-analysis findings of a linted run.
type LintResult struct {
	Native     []analysis.Finding // findings in the input image
	Compressed []analysis.Finding // findings in the rewritten image
}

// Clean reports whether the lint pass found nothing at Warning or above.
func (l *LintResult) Clean() bool {
	return l == nil || len(l.Native)+len(l.Compressed) == 0
}

// Result is a compressed program plus its size accounting.
type Result struct {
	Image *program.Image

	OriginalSize int // bytes of the original .text
	StoredSize   int // bytes of memory the code occupies after compression
	NativeBytes  int // bytes left as native code (selective compression)

	// Lint holds static-analysis findings when Options.Lint is set.
	Lint *LintResult
}

// Ratio returns StoredSize/OriginalSize (Equation 1 of the paper).
func (r *Result) Ratio() float64 {
	if r.OriginalSize == 0 {
		return 1
	}
	return float64(r.StoredSize) / float64(r.OriginalSize)
}

// Compress rewrites the native image into a compressed image.
//
// Procedures in opts.NativeProcs stay in the memory-backed native region;
// the rest move to the compressed region, whose contents exist only in the
// I-cache and are materialised on demand by the decompression handler.
// Within each region procedures keep their original relative order, so the
// procedure-placement side-effects the paper reports (§5.3) arise here
// exactly as they did for the authors.
func Compress(native *program.Image, opts Options) (*Result, error) {
	if opts.IndexBits == 0 {
		opts.IndexBits = dict.Index16
	}
	cdc, err := codec.Lookup(opts.codecName())
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	return CompressWith(native, cdc, opts)
}

// CompressWith is Compress with an explicit codec instead of a registry
// lookup: the image records cdc.Name() as its scheme. The conformance
// suite uses it to exercise codec implementations — including
// deliberately broken ones — without registering them.
func CompressWith(native *program.Image, cdc codec.Codec, opts Options) (*Result, error) {
	if native.Compress != nil {
		return nil, fmt.Errorf("core: image is already compressed")
	}
	text := native.Segment(program.SegText)
	if text == nil {
		return nil, fmt.Errorf("core: image has no %s segment", program.SegText)
	}
	if len(native.Procs) == 0 {
		return nil, fmt.Errorf("core: image has no procedure table")
	}
	geo := cdc.Geometry()
	if geo.Align <= 0 || geo.Align%4 != 0 {
		return nil, fmt.Errorf("core: codec %s declares invalid alignment %d", cdc.Name(), geo.Align)
	}

	// Partition procedures. Within each region the original program
	// order is preserved (the paper's §3.3 behaviour) unless an explicit
	// placement order is given.
	ordered := orderProcs(native.Procs, opts.Order)
	var natProcs, cmpProcs []program.Procedure
	for _, p := range ordered {
		if opts.NativeProcs[p.Name] {
			natProcs = append(natProcs, p)
		} else {
			cmpProcs = append(cmpProcs, p)
		}
	}
	if len(cmpProcs) == 0 {
		return nil, fmt.Errorf("core: every procedure selected native; nothing to compress")
	}

	// Representation overflow fallback (paper §3.1): codecs whose
	// representation can fill up (the dictionary index space) report how
	// many trailing procedures must be left in the native code region.
	if sp, ok := cdc.(codec.Spiller); ok {
		spill := sp.Spill(text, cmpProcs)
		if spill > 0 {
			natProcs = append(natProcs, cmpProcs[len(cmpProcs)-spill:]...)
			cmpProcs = cmpProcs[:len(cmpProcs)-spill]
			if len(cmpProcs) == 0 {
				return nil, fmt.Errorf("core: dictionary overflows on the very first procedure; use 16-bit indices")
			}
			// Keep the native region in original program order.
			natProcs = orderProcs(natProcs, nil)
			sortByAddr(natProcs)
		}
	}

	lay := newLayout(native, text)
	for _, p := range natProcs {
		lay.placeNative(p)
	}
	for _, p := range cmpProcs {
		lay.placeCompressed(p)
	}
	lay.padCompressed(geo.Align)

	im, err := lay.build(native)
	if err != nil {
		return nil, err
	}

	// Compress the (relocated) bytes of the compressed region through
	// the codec's encoder.
	golden := im.Segment(program.SegText).Data
	enc, err := cdc.Encode(codec.Input{
		Golden:     golden,
		RegionBase: program.CompBase,
		RegionEnd:  program.CompBase + uint32(len(golden)),
		Procs:      im.Procs,
	})
	if err != nil {
		return nil, err
	}

	ci := &program.CompressionInfo{
		Scheme:    program.Scheme(cdc.Name()),
		CompStart: program.CompBase,
		CompEnd:   program.CompBase + uint32(len(golden)),
		ShadowRF:  opts.ShadowRF,
	}
	addSeg := func(name string, base uint32, data []byte) uint32 {
		if len(data) == 0 {
			return 0
		}
		im.Segments = append(im.Segments, &program.Segment{Name: name, Base: base, Data: data})
		return base
	}
	next := uint32(program.CompDataBase)
	ci.DictBase = addSeg(program.SegDict, next, enc.Dict)
	next += uint32(len(enc.Dict)+63) &^ 63
	ci.IndicesBase = addSeg(program.SegIndices, next, enc.Indices)
	next += uint32(len(enc.Indices)+63) &^ 63
	ci.LATBase = addSeg(program.SegLAT, next, enc.LAT)

	src, err := cdc.HandlerSource(opts.ShadowRF)
	if err != nil {
		return nil, err
	}
	handler, err := decomp.BuildSource(cdc.Name(), src)
	if err != nil {
		return nil, err
	}
	im.Segments = append(im.Segments, handler)
	im.Compress = ci

	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("core: compressed image invalid: %v", err)
	}
	res := &Result{
		Image:        im,
		OriginalSize: len(text.Data),
		StoredSize:   len(enc.Dict) + len(enc.Indices) + len(enc.LAT) + lay.nativeLen(),
		NativeBytes:  lay.nativeLen(),
	}
	if opts.Lint {
		res.Lint = &LintResult{
			Native:     analysis.AnalyzeImage(native).AtLeast(analysis.Warning),
			Compressed: analysis.AnalyzeImage(im).AtLeast(analysis.Warning),
		}
	}
	return res, nil
}

// codecName maps compression options to a registry name: the dict
// scheme with 8-bit indices is the separately registered dict8 codec;
// every other scheme name is already the registry key.
func (o Options) codecName() string {
	if o.Scheme == program.SchemeDict && o.IndexBits == dict.Index8 {
		return "dict8"
	}
	return string(o.Scheme)
}

// Schemes returns the registered scheme names, sorted — what the CLIs
// print in usage text and unknown-scheme errors.
func Schemes() []string { return codec.Names() }

func sortByAddr(procs []program.Procedure) {
	sort.Slice(procs, func(i, j int) bool { return procs[i].Addr < procs[j].Addr })
}

// orderProcs applies an explicit placement order: listed procedures come
// first in list order, the rest keep their original relative order.
func orderProcs(procs []program.Procedure, order []string) []program.Procedure {
	if len(order) == 0 {
		return procs
	}
	rank := make(map[string]int, len(order))
	for i, name := range order {
		if _, dup := rank[name]; !dup {
			rank[name] = i
		}
	}
	out := append([]program.Procedure(nil), procs...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].Name]
		rj, jok := rank[out[j].Name]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return false // stable: preserve original order
		}
	})
	return out
}

// layout assigns new addresses to procedures across the two code regions
// and rewrites symbols and relocation records accordingly.
type layout struct {
	text    *program.Segment
	natBuf  []byte
	cmpBuf  []byte
	moves   []move // old range -> new address
	newSyms map[string]uint32
	procs   []program.Procedure
}

type move struct {
	oldAddr uint32
	size    uint32
	newAddr uint32
	native  bool
}

func newLayout(native *program.Image, text *program.Segment) *layout {
	return &layout{
		text:    text,
		newSyms: make(map[string]uint32, len(native.Symbols)),
	}
}

func (l *layout) placeNative(p program.Procedure) {
	na := program.NativeBase + uint32(len(l.natBuf))
	l.natBuf = append(l.natBuf, l.text.Data[p.Addr-l.text.Base:][:p.Size]...)
	l.moves = append(l.moves, move{p.Addr, p.Size, na, true})
	l.procs = append(l.procs, program.Procedure{Name: p.Name, Addr: na, Size: p.Size})
}

func (l *layout) placeCompressed(p program.Procedure) {
	na := program.CompBase + uint32(len(l.cmpBuf))
	l.cmpBuf = append(l.cmpBuf, l.text.Data[p.Addr-l.text.Base:][:p.Size]...)
	l.moves = append(l.moves, move{p.Addr, p.Size, na, false})
	l.procs = append(l.procs, program.Procedure{Name: p.Name, Addr: na, Size: p.Size})
}

// padCompressed pads the compressed region to a multiple of n bytes with
// nop words (never executed; needed so whole lines/groups exist).
func (l *layout) padCompressed(n int) {
	for len(l.cmpBuf)%n != 0 {
		l.cmpBuf = append(l.cmpBuf, 0, 0, 0, 0)
		_ = isa.NOP // padding words are canonical nops
	}
}

func (l *layout) nativeLen() int { return len(l.natBuf) }

// remap translates an old .text address to its new address.
func (l *layout) remap(addr uint32) (uint32, bool) {
	for i := range l.moves {
		m := &l.moves[i]
		if addr >= m.oldAddr && addr < m.oldAddr+m.size {
			return m.newAddr + (addr - m.oldAddr), true
		}
	}
	return 0, false
}

// build assembles the re-laid-out image (before compression segments).
func (l *layout) build(native *program.Image) (*program.Image, error) {
	im := &program.Image{Symbols: l.newSyms}

	// Rebase symbols: text symbols move with their procedure, others stay.
	for name, addr := range native.Symbols {
		if l.text.Contains(addr) {
			na, ok := l.remap(addr)
			if !ok {
				// Symbol in text but outside every procedure (e.g. padding):
				// keep it only if nothing references it; drop silently.
				continue
			}
			l.newSyms[name] = na
		} else {
			l.newSyms[name] = addr
		}
	}

	// Non-text segments are copied; the two code regions are fresh.
	for _, s := range native.Segments {
		if s.Name == program.SegText {
			continue
		}
		im.Segments = append(im.Segments, &program.Segment{
			Name: s.Name, Base: s.Base, Data: append([]byte(nil), s.Data...), Virtual: s.Virtual})
	}
	if len(l.natBuf) > 0 {
		im.Segments = append(im.Segments, &program.Segment{
			Name: program.SegNative, Base: program.NativeBase, Data: l.natBuf})
	}
	im.Segments = append(im.Segments, &program.Segment{
		Name: program.SegText, Base: program.CompBase, Data: l.cmpBuf, Virtual: true})

	// Remap relocation records into their new segment and offset.
	for _, r := range native.Relocs {
		nr := r
		if r.Seg == program.SegText {
			oldAddr := l.text.Base + r.Off
			na, ok := l.remap(oldAddr)
			if !ok {
				return nil, fmt.Errorf("core: relocation site %#x outside every procedure", oldAddr)
			}
			if na >= program.CompBase {
				nr.Seg = program.SegText
				nr.Off = na - program.CompBase
			} else {
				nr.Seg = program.SegNative
				nr.Off = na - program.NativeBase
			}
		}
		im.Relocs = append(im.Relocs, nr)
	}
	if err := program.ApplyRelocs(im); err != nil {
		return nil, err
	}

	sort.Slice(l.procs, func(i, j int) bool { return l.procs[i].Addr < l.procs[j].Addr })
	im.Procs = l.procs

	entry, ok := l.remap(native.Entry)
	if !ok {
		if l.text.Contains(native.Entry) {
			return nil, fmt.Errorf("core: entry %#x outside every procedure", native.Entry)
		}
		entry = native.Entry
	}
	im.Entry = entry
	return im, nil
}
