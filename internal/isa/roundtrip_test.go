package isa_test

// Round-trip tests for the full opcode set: every mnemonic is
// assembled, the emitted word decoded with the field helpers, and the
// fields re-encoded — the result must be the original word (the
// encoders and extractors must agree on every bit position and mask).
// FuzzDecodeEncode extends the invariant to arbitrary words: an
// encoding is either rejected everywhere (SpecOf nil ⇔ KindIllegal) or
// survives decode → re-encode unchanged.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// exampleLine renders a representative assembly line for a mnemonic,
// with distinct registers and non-trivial operands so any swapped or
// clipped field changes the encoding.
func exampleLine(s *isa.Spec) string {
	switch s.Syntax {
	case isa.SynR3:
		return s.Name + " $t0, $t1, $t2"
	case isa.SynShift:
		return s.Name + " $t0, $t1, 7"
	case isa.SynShiftV:
		return s.Name + " $t0, $t1, $t2"
	case isa.SynMulDiv:
		return s.Name + " $t1, $t2"
	case isa.SynMoveFrom:
		return s.Name + " $t0"
	case isa.SynJR:
		return s.Name + " $ra"
	case isa.SynJALR:
		return s.Name + " $t0, $t1"
	case isa.SynImm:
		if s.Signed {
			return s.Name + " $t0, $t1, -4"
		}
		return s.Name + " $t0, $t1, 100"
	case isa.SynLUI:
		return s.Name + " $t0, 4660"
	case isa.SynBranch2:
		return "l: " + s.Name + " $t0, $t1, l"
	case isa.SynBranch1:
		return "l: " + s.Name + " $t0, l"
	case isa.SynJump:
		return "l: " + s.Name + " l"
	case isa.SynMem:
		return s.Name + " $t0, -4($t1)"
	case isa.SynCop:
		return s.Name + " $k1, $c0_badva"
	case isa.SynNone:
		return s.Name
	}
	return ""
}

// reencode rebuilds w from its decoded fields, using the format the
// primary opcode selects.
func reencode(w isa.Word) isa.Word {
	switch isa.Op(w) {
	case isa.OpSpecial:
		return isa.EncodeR(isa.Funct(w), isa.Rs(w), isa.Rt(w), isa.Rd(w), isa.Shamt(w))
	case isa.OpJ, isa.OpJAL:
		return isa.EncodeJ(isa.Op(w), isa.Target(w))
	case isa.OpCOP0:
		// No dedicated encoder: rebuild from the R-format fields.
		return isa.Op(w)<<26 | uint32(isa.Rs(w))<<21 | uint32(isa.Rt(w))<<16 |
			uint32(isa.Rd(w))<<11 | isa.Shamt(w)<<6 | isa.Funct(w)
	default:
		return isa.EncodeI(isa.Op(w), isa.Rs(w), isa.Rt(w), isa.Imm(w))
	}
}

// assembleOne assembles a single-instruction program and returns the
// emitted word.
func assembleOne(t *testing.T, line string) isa.Word {
	t.Helper()
	im, err := asm.Assemble(".text\n" + line + "\n")
	if err != nil {
		t.Fatalf("assemble %q: %v", line, err)
	}
	text := im.Segment(".text")
	if len(text.Data) != 4 {
		t.Fatalf("assemble %q: emitted %d bytes, want 4", line, len(text.Data))
	}
	return text.Word(im.Entry)
}

// TestEveryOpcodeRoundTrip drives each mnemonic through
// assemble → encode → decode → re-encode and requires a fixed point,
// plus agreement between SpecOf and the assembled mnemonic.
func TestEveryOpcodeRoundTrip(t *testing.T) {
	for i := range isa.Specs {
		s := &isa.Specs[i]
		t.Run(s.Name, func(t *testing.T) {
			w := assembleOne(t, exampleLine(s))
			got := isa.SpecOf(w)
			if got == nil {
				t.Fatalf("SpecOf(%#08x) = nil, assembled from %q", w, s.Name)
			}
			if got.Name != s.Name {
				t.Fatalf("SpecOf(%#08x) = %q, assembled from %q", w, got.Name, s.Name)
			}
			if isa.Classify(w) == isa.KindIllegal {
				t.Fatalf("Classify(%#08x) = illegal for %q", w, s.Name)
			}
			if re := reencode(w); re != w {
				t.Fatalf("%s: decode/re-encode %#08x -> %#08x", s.Name, w, re)
			}
		})
	}
}

// TestSemanticFieldRoundTrip checks that operand values survive the
// encoders and come back through the matching extractor.
func TestSemanticFieldRoundTrip(t *testing.T) {
	for _, imm := range []int32{-32768, -4, 0, 1, 255, 32767} {
		w := isa.EncodeI(isa.OpADDI, 9, 8, uint32(imm))
		if got := isa.SImm(w); got != imm {
			t.Errorf("SImm(EncodeI(addi, %d)) = %d", imm, got)
		}
	}
	for _, imm := range []uint32{0, 1, 0xFF, 0xFFFF} {
		w := isa.EncodeI(isa.OpORI, 9, 8, imm)
		if got := isa.Imm(w); got != imm {
			t.Errorf("Imm(EncodeI(ori, %#x)) = %#x", imm, got)
		}
	}
	for _, sh := range []uint32{0, 1, 31} {
		w := isa.EncodeR(isa.FnSLL, 0, 9, 8, sh)
		if got := isa.Shamt(w); got != sh {
			t.Errorf("Shamt(EncodeR(sll, %d)) = %d", sh, got)
		}
	}
	for _, tgt := range []uint32{0, 1, 0x03FFFFFF} {
		w := isa.EncodeJ(isa.OpJ, tgt)
		if got := isa.Target(w); got != tgt {
			t.Errorf("Target(EncodeJ(%#x)) = %#x", tgt, got)
		}
	}
}

// TestRegisterFieldRange checks that the decode helpers only ever
// return register numbers the CPU's register file can index.
func TestRegisterFieldRange(t *testing.T) {
	words := []isa.Word{0, 0xFFFFFFFF, 0x03E00008, 0xAFBF0010, 0x8FBF0010}
	for i := range isa.Specs {
		words = append(words, assembleOne(t, exampleLine(&isa.Specs[i])))
	}
	for _, w := range words {
		a, b := isa.SrcRegs(w)
		for _, r := range []int{a, b} {
			if r < -1 || r > 31 {
				t.Errorf("SrcRegs(%#08x) returned out-of-range register %d", w, r)
			}
		}
		if d := isa.LoadDest(w); d < -1 || d > 31 {
			t.Errorf("LoadDest(%#08x) = %d out of range", w, d)
		}
	}
}

// FuzzDecodeEncode is the reject-or-round-trip invariant over the whole
// 32-bit encoding space: a word is either illegal for both SpecOf and
// Classify, or its decoded fields re-encode to the identical word; the
// decode helpers never panic or return out-of-range registers either
// way.
func FuzzDecodeEncode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	for i := range isa.Specs {
		s := &isa.Specs[i]
		im, err := asm.Assemble(".text\n" + exampleLine(s) + "\n")
		if err == nil && len(im.Segment(".text").Data) == 4 {
			f.Add(im.Segment(".text").Word(im.Entry))
		}
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		spec := isa.SpecOf(w)
		kind := isa.Classify(w)
		if (spec == nil) != (kind == isa.KindIllegal) {
			t.Fatalf("SpecOf(%#08x) = %v but Classify = %v: the decoders disagree", w, spec, kind)
		}
		// Total helpers: never panic, registers always indexable.
		_ = isa.Disassemble(0x1000, w)
		a, b := isa.SrcRegs(w)
		if a < -1 || a > 31 || b < -1 || b > 31 {
			t.Fatalf("SrcRegs(%#08x) = (%d, %d) out of range", w, a, b)
		}
		if d := isa.LoadDest(w); d < -1 || d > 31 {
			t.Fatalf("LoadDest(%#08x) = %d out of range", w, d)
		}
		if spec == nil {
			return
		}
		if re := reencode(w); re != w {
			t.Fatalf("%s: decode/re-encode %#08x -> %#08x", spec.Name, w, re)
		}
	})
}
