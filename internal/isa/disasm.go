package isa

import "fmt"

// Disassemble renders w as assembly text. pc is used to resolve
// PC-relative branch and jump targets, printed as absolute hex addresses.
// Unrecognised encodings render as ".word 0x%08x".
func Disassemble(pc uint32, w Word) string {
	if w == NOP {
		return "nop"
	}
	s := SpecOf(w)
	if s == nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	switch s.Syntax {
	case SynR3:
		return fmt.Sprintf("%s %s, %s, %s", s.Name, RegName(Rd(w)), RegName(Rs(w)), RegName(Rt(w)))
	case SynShift:
		return fmt.Sprintf("%s %s, %s, %d", s.Name, RegName(Rd(w)), RegName(Rt(w)), Shamt(w))
	case SynShiftV:
		return fmt.Sprintf("%s %s, %s, %s", s.Name, RegName(Rd(w)), RegName(Rt(w)), RegName(Rs(w)))
	case SynMulDiv:
		return fmt.Sprintf("%s %s, %s", s.Name, RegName(Rs(w)), RegName(Rt(w)))
	case SynMoveFrom:
		return fmt.Sprintf("%s %s", s.Name, RegName(Rd(w)))
	case SynJR:
		return fmt.Sprintf("%s %s", s.Name, RegName(Rs(w)))
	case SynJALR:
		return fmt.Sprintf("%s %s, %s", s.Name, RegName(Rd(w)), RegName(Rs(w)))
	case SynImm:
		if s.Signed {
			return fmt.Sprintf("%s %s, %s, %d", s.Name, RegName(Rt(w)), RegName(Rs(w)), SImm(w))
		}
		return fmt.Sprintf("%s %s, %s, 0x%x", s.Name, RegName(Rt(w)), RegName(Rs(w)), Imm(w))
	case SynLUI:
		return fmt.Sprintf("%s %s, 0x%x", s.Name, RegName(Rt(w)), Imm(w))
	case SynBranch2:
		return fmt.Sprintf("%s %s, %s, 0x%x", s.Name, RegName(Rs(w)), RegName(Rt(w)), BranchTarget(pc, w))
	case SynBranch1:
		return fmt.Sprintf("%s %s, 0x%x", s.Name, RegName(Rs(w)), BranchTarget(pc, w))
	case SynJump:
		return fmt.Sprintf("%s 0x%x", s.Name, JumpTarget(pc, w))
	case SynMem:
		return fmt.Sprintf("%s %s, %d(%s)", s.Name, RegName(Rt(w)), SImm(w), RegName(Rs(w)))
	case SynCop:
		return fmt.Sprintf("%s %s, $%s", s.Name, RegName(Rt(w)), C0Name(Rd(w)))
	case SynNone:
		return s.Name
	}
	return fmt.Sprintf(".word 0x%08x", w)
}
