// Package isa defines CLR32, the 32-bit MIPS-like instruction set used by
// the run-time decompression simulator.
//
// CLR32 stands in for the paper's "re-encoded SimpleScalar" ISA: 32-bit
// fixed-width instructions, 32 general-purpose registers, no branch delay
// slots. It adds the three instructions the paper introduces for software
// decompression: swic (store word into the instruction cache), iret
// (return from exception) and mfc0/mtc0 (system register access).
package isa

import "fmt"

// Word is one 32-bit CLR32 instruction or data word.
type Word = uint32

// InstrBytes is the size of one instruction in bytes.
const InstrBytes = 4

// Register numbers follow the MIPS ABI convention.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary
	RegV0   = 2 // results / syscall number
	RegV1   = 3
	RegA0   = 4 // arguments
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8 // caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26 // reserved for OS/decompressor
	RegK1   = 27
	RegGP   = 28
	RegSP   = 29
	RegFP   = 30
	RegRA   = 31
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// RegName returns the canonical ABI name of register r ("$zero", "$t0"...).
func RegName(r int) string {
	if r < 0 || r >= NumRegs {
		return fmt.Sprintf("$?%d", r)
	}
	return regNames[r]
}

var regNames = [NumRegs]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
}

// System (coprocessor-0) registers. The decompression handlers read the
// compressed-program geometry from C0DBase..C0LAT and the faulting address
// from C0BadVA, exactly as in Figure 2 of the paper.
const (
	C0DBase   = 0 // base of the decompressed (virtual) code region
	C0Dict    = 1 // base of the .dictionary segment
	C0Indices = 2 // base of the .indices segment
	C0LAT     = 3 // base of the CodePack line-address (mapping) table
	C0EPC     = 4 // exception program counter
	C0BadVA   = 5 // faulting virtual address
	C0Status  = 6 // status bits (StatusXXX below)
	C0Cause   = 7 // exception cause
	NumC0Regs = 8
)

// C0Name returns the symbolic name of system register n.
func C0Name(n int) string {
	names := [NumC0Regs]string{
		"dbase", "dict", "indices", "lat", "epc", "badva", "status", "cause"}
	if n < 0 || n >= NumC0Regs {
		return fmt.Sprintf("c?%d", n)
	}
	return "c0_" + names[n]
}

// Status register bits.
const (
	StatusEXL      = 1 << 0 // exception level (set while in the handler)
	StatusShadowRF = 1 << 1 // second register file enabled for exceptions
)

// Cause codes.
const (
	CauseDecompressMiss = 1 // I-cache miss in the compressed region
)

// Primary opcode field values (bits 31..26).
const (
	OpSpecial = 0x00 // R-type, selected by Funct field
	OpRegImm  = 0x01 // bltz/bgez, selected by rt field
	OpJ       = 0x02
	OpJAL     = 0x03
	OpBEQ     = 0x04
	OpBNE     = 0x05
	OpBLEZ    = 0x06
	OpBGTZ    = 0x07
	OpADDI    = 0x08
	OpADDIU   = 0x09
	OpSLTI    = 0x0A
	OpSLTIU   = 0x0B
	OpANDI    = 0x0C
	OpORI     = 0x0D
	OpXORI    = 0x0E
	OpLUI     = 0x0F
	OpCOP0    = 0x10 // mfc0/mtc0/iret
	OpLB      = 0x20
	OpLH      = 0x21
	OpLW      = 0x23
	OpLBU     = 0x24
	OpLHU     = 0x25
	OpSB      = 0x28
	OpSH      = 0x29
	OpSW      = 0x2B
	OpSWIC    = 0x3B // store word into instruction cache (paper §4)
)

// Funct field values for OpSpecial (bits 5..0).
const (
	FnSLL     = 0x00
	FnSRL     = 0x02
	FnSRA     = 0x03
	FnSLLV    = 0x04
	FnSRLV    = 0x06
	FnSRAV    = 0x07
	FnJR      = 0x08
	FnJALR    = 0x09
	FnSYSCALL = 0x0C
	FnBREAK   = 0x0D
	FnMFHI    = 0x10
	FnMFLO    = 0x12
	FnMULT    = 0x18
	FnMULTU   = 0x19
	FnDIV     = 0x1A
	FnDIVU    = 0x1B
	FnADD     = 0x20
	FnADDU    = 0x21
	FnSUB     = 0x22
	FnSUBU    = 0x23
	FnAND     = 0x24
	FnOR      = 0x25
	FnXOR     = 0x26
	FnNOR     = 0x27
	FnSLT     = 0x2A
	FnSLTU    = 0x2B
)

// rt field values for OpRegImm.
const (
	RtBLTZ = 0x00
	RtBGEZ = 0x01
)

// rs field values for OpCOP0.
const (
	CopMFC0 = 0x00
	CopMTC0 = 0x04
	CopCO   = 0x10 // funct-selected; FnIRET
)

// FnIRET is the funct value for iret under OpCOP0/CopCO.
const FnIRET = 0x18

// Syscall numbers (SPIM-like), passed in $v0.
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysExit        = 10
	SysPrintChar   = 11
	SysPrintHex    = 34
)

// Field extraction helpers.

// Op returns the primary opcode (bits 31..26).
func Op(w Word) uint32 { return w >> 26 }

// Rs returns the rs field (bits 25..21).
func Rs(w Word) int { return int(w >> 21 & 0x1F) }

// Rt returns the rt field (bits 20..16).
func Rt(w Word) int { return int(w >> 16 & 0x1F) }

// Rd returns the rd field (bits 15..11).
func Rd(w Word) int { return int(w >> 11 & 0x1F) }

// Shamt returns the shift-amount field (bits 10..6).
func Shamt(w Word) uint32 { return w >> 6 & 0x1F }

// Funct returns the function field (bits 5..0).
func Funct(w Word) uint32 { return w & 0x3F }

// Imm returns the immediate field zero-extended.
func Imm(w Word) uint32 { return w & 0xFFFF }

// SImm returns the immediate field sign-extended to 32 bits.
func SImm(w Word) int32 { return int32(int16(w & 0xFFFF)) }

// Target returns the 26-bit jump target field.
func Target(w Word) uint32 { return w & 0x03FFFFFF }

// Encoding constructors.

// EncodeR builds an R-type instruction under OpSpecial.
func EncodeR(funct uint32, rs, rt, rd int, shamt uint32) Word {
	return OpSpecial<<26 | uint32(rs&0x1F)<<21 | uint32(rt&0x1F)<<16 |
		uint32(rd&0x1F)<<11 | (shamt&0x1F)<<6 | funct&0x3F
}

// EncodeI builds an I-type instruction.
func EncodeI(op uint32, rs, rt int, imm uint32) Word {
	return op<<26 | uint32(rs&0x1F)<<21 | uint32(rt&0x1F)<<16 | imm&0xFFFF
}

// EncodeJ builds a J-type instruction; target is a word index (addr>>2).
func EncodeJ(op uint32, target uint32) Word {
	return op<<26 | target&0x03FFFFFF
}

// JumpTarget computes the absolute address of a j/jal at pc.
func JumpTarget(pc uint32, w Word) uint32 {
	return (pc+4)&0xF0000000 | Target(w)<<2
}

// BranchTarget computes the absolute target of a conditional branch at pc.
func BranchTarget(pc uint32, w Word) uint32 {
	return pc + 4 + uint32(SImm(w))<<2
}

// EncodeBranchOff encodes the signed word offset for a branch at pc to
// target. It reports an error when the target is out of the ±2^17-byte
// reach of the 16-bit offset field.
func EncodeBranchOff(pc, target uint32) (uint32, error) {
	diff := int64(target) - int64(pc) - 4
	if diff&3 != 0 {
		return 0, fmt.Errorf("isa: branch target %#x not word aligned", target)
	}
	off := diff >> 2
	if off < -(1<<15) || off >= 1<<15 {
		return 0, fmt.Errorf("isa: branch from %#x to %#x out of range", pc, target)
	}
	return uint32(off) & 0xFFFF, nil
}

// EncodeJumpTarget encodes the 26-bit target field for a jump at pc to
// target, verifying both lie in the same 256MB region.
func EncodeJumpTarget(pc, target uint32) (uint32, error) {
	if target&3 != 0 {
		return 0, fmt.Errorf("isa: jump target %#x not word aligned", target)
	}
	if (pc+4)&0xF0000000 != target&0xF0000000 {
		return 0, fmt.Errorf("isa: jump from %#x to %#x crosses 256MB region", pc, target)
	}
	return target >> 2 & 0x03FFFFFF, nil
}

// NOP is the canonical no-operation encoding (sll $zero,$zero,0).
const NOP Word = 0

// Kind classifies an instruction for the simulator and tools.
type Kind int

// Instruction kinds.
const (
	KindALU     Kind = iota // register/immediate arithmetic & logic
	KindLoad                // lb/lh/lw/lbu/lhu
	KindStore               // sb/sh/sw
	KindBranch              // conditional branches
	KindJump                // j/jal
	KindJumpReg             // jr/jalr
	KindSyscall             // syscall/break
	KindCop0                // mfc0/mtc0
	KindIret                // iret
	KindSwic                // swic
	KindIllegal             // unrecognised encoding
)

// Classify returns the Kind of w.
func Classify(w Word) Kind {
	switch Op(w) {
	case OpSpecial:
		switch Funct(w) {
		case FnJR, FnJALR:
			return KindJumpReg
		case FnSYSCALL, FnBREAK:
			return KindSyscall
		case FnSLL, FnSRL, FnSRA, FnSLLV, FnSRLV, FnSRAV,
			FnMFHI, FnMFLO, FnMULT, FnMULTU, FnDIV, FnDIVU,
			FnADD, FnADDU, FnSUB, FnSUBU, FnAND, FnOR, FnXOR, FnNOR,
			FnSLT, FnSLTU:
			return KindALU
		default:
			return KindIllegal
		}
	case OpRegImm:
		switch Rt(w) {
		case RtBLTZ, RtBGEZ:
			return KindBranch
		default:
			return KindIllegal
		}
	case OpJ, OpJAL:
		return KindJump
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ:
		return KindBranch
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI:
		return KindALU
	case OpCOP0:
		switch Rs(w) {
		case CopMFC0, CopMTC0:
			return KindCop0
		case CopCO:
			if Funct(w) == FnIRET {
				return KindIret
			}
			return KindIllegal
		default:
			return KindIllegal
		}
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return KindLoad
	case OpSB, OpSH, OpSW:
		return KindStore
	case OpSWIC:
		return KindSwic
	default:
		return KindIllegal
	}
}

// SrcRegs returns the general-purpose registers w reads (-1 for unused
// slots). The timing model uses it to detect load-use hazards.
func SrcRegs(w Word) (int, int) {
	switch Op(w) {
	case OpSpecial:
		switch Funct(w) {
		case FnSLL, FnSRL, FnSRA:
			return Rt(w), -1
		case FnJR, FnJALR:
			return Rs(w), -1
		case FnSYSCALL:
			return RegV0, RegA0
		case FnBREAK, FnMFHI, FnMFLO:
			return -1, -1
		default:
			return Rs(w), Rt(w)
		}
	case OpRegImm, OpBLEZ, OpBGTZ:
		return Rs(w), -1
	case OpJ, OpJAL, OpLUI:
		return -1, -1
	case OpBEQ, OpBNE:
		return Rs(w), Rt(w)
	case OpCOP0:
		if Rs(w) == CopMTC0 {
			return Rt(w), -1
		}
		return -1, -1
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return Rs(w), -1
	case OpSB, OpSH, OpSW, OpSWIC:
		return Rs(w), Rt(w)
	default:
		return Rs(w), -1
	}
}

// LoadDest returns the register a load instruction writes, or -1 when w
// is not a load.
func LoadDest(w Word) int {
	switch Op(w) {
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		if rt := Rt(w); rt != RegZero {
			return rt
		}
	}
	return -1
}

// IsControl reports whether w can redirect the PC.
func IsControl(w Word) bool {
	switch Classify(w) {
	case KindBranch, KindJump, KindJumpReg, KindIret:
		return true
	}
	return false
}
