package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFieldExtraction(t *testing.T) {
	// add $t0, $t1, $t2 -> rd=8 rs=9 rt=10
	w := EncodeR(FnADD, RegT1, RegT2, RegT0, 0)
	if Op(w) != OpSpecial {
		t.Fatalf("Op = %#x, want OpSpecial", Op(w))
	}
	if Rs(w) != RegT1 || Rt(w) != RegT2 || Rd(w) != RegT0 {
		t.Fatalf("fields = rs=%d rt=%d rd=%d", Rs(w), Rt(w), Rd(w))
	}
	if Funct(w) != FnADD {
		t.Fatalf("Funct = %#x, want FnADD", Funct(w))
	}
}

func TestEncodeIImmediates(t *testing.T) {
	neg16 := int32(-16)
	w := EncodeI(OpADDI, RegSP, RegSP, uint32(neg16)&0xFFFF)
	if got := SImm(w); got != -16 {
		t.Fatalf("SImm = %d, want -16", got)
	}
	if got := Imm(w); got != 0xFFF0 {
		t.Fatalf("Imm = %#x, want 0xfff0", got)
	}
}

func TestBranchTargetRoundTrip(t *testing.T) {
	pcs := []uint32{0x400000, 0x400100, 0x7FFC}
	offs := []int64{-32768 * 4, -4, 0, 4, 128, 32767 * 4}
	for _, pc := range pcs {
		for _, d := range offs {
			if int64(pc)+4+d < 0 {
				continue // would wrap below address zero
			}
			target := uint32(int64(pc) + 4 + d)
			enc, err := EncodeBranchOff(pc, target)
			if err != nil {
				t.Fatalf("EncodeBranchOff(%#x,%#x): %v", pc, target, err)
			}
			w := EncodeI(OpBEQ, 0, 0, enc)
			if got := BranchTarget(pc, w); got != target {
				t.Fatalf("BranchTarget = %#x, want %#x", got, target)
			}
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	if _, err := EncodeBranchOff(0x400000, 0x500000); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := EncodeBranchOff(0x400000, 0x400002); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestJumpTargetRoundTrip(t *testing.T) {
	pc := uint32(0x400010)
	target := uint32(0x7F0000)
	enc, err := EncodeJumpTarget(pc, target)
	if err != nil {
		t.Fatal(err)
	}
	w := EncodeJ(OpJ, enc)
	if got := JumpTarget(pc, w); got != target {
		t.Fatalf("JumpTarget = %#x, want %#x", got, target)
	}
	if _, err := EncodeJumpTarget(0x00000000, 0x10000000); err == nil {
		t.Fatal("expected cross-region error")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		w    Word
		want Kind
	}{
		{EncodeR(FnADDU, 1, 2, 3, 0), KindALU},
		{EncodeR(FnJR, RegRA, 0, 0, 0), KindJumpReg},
		{EncodeR(FnSYSCALL, 0, 0, 0, 0), KindSyscall},
		{EncodeI(OpLW, RegSP, RegT0, 4), KindLoad},
		{EncodeI(OpSW, RegSP, RegT0, 4), KindStore},
		{EncodeI(OpBEQ, 1, 2, 8), KindBranch},
		{EncodeI(OpRegImm, 5, RtBGEZ, 8), KindBranch},
		{EncodeJ(OpJAL, 0x100), KindJump},
		{EncodeI(OpSWIC, RegK1, RegK0, 0), KindSwic},
		{EncodeI(OpCOP0, CopMFC0<<5|0, RegK1, uint32(C0BadVA)<<11), KindCop0},
		{EncodeR(0x3F, 0, 0, 0, 0), KindIllegal},
		{0xFC000000, KindIllegal},
	}
	for i, c := range cases {
		if got := Classify(c.w); got != c.want {
			t.Errorf("case %d: Classify(%#x) = %v, want %v", i, c.w, got, c.want)
		}
	}
}

func TestMFC0Encoding(t *testing.T) {
	// mfc0 $k1, $c0_badva: op COP0, rs=CopMFC0, rt=k1, rd=BadVA
	w := EncodeI(OpCOP0, CopMFC0, RegK1, uint32(C0BadVA)<<11)
	if Rs(w) != CopMFC0 || Rt(w) != RegK1 || Rd(w) != C0BadVA {
		t.Fatalf("bad mfc0 encoding %#x (rs=%d rt=%d rd=%d)", w, Rs(w), Rt(w), Rd(w))
	}
	if Classify(w) != KindCop0 {
		t.Fatalf("Classify = %v", Classify(w))
	}
}

func TestIretEncoding(t *testing.T) {
	w := EncodeI(OpCOP0, CopCO, 0, FnIRET)
	if Classify(w) != KindIret {
		t.Fatalf("Classify(iret) = %v", Classify(w))
	}
	if !IsControl(w) {
		t.Fatal("iret must be control flow")
	}
}

func TestRegNames(t *testing.T) {
	if RegName(RegZero) != "$zero" || RegName(RegSP) != "$sp" || RegName(RegRA) != "$ra" {
		t.Fatal("unexpected register names")
	}
	if !strings.HasPrefix(RegName(40), "$?") {
		t.Fatal("out-of-range register name should be marked")
	}
	seen := map[string]bool{}
	for i := 0; i < NumRegs; i++ {
		n := RegName(i)
		if seen[n] {
			t.Fatalf("duplicate register name %q", n)
		}
		seen[n] = true
	}
}

func TestSpecOfMatchesEveryMnemonic(t *testing.T) {
	for i := range Specs {
		s := &Specs[i]
		var w Word
		switch s.Op {
		case OpSpecial:
			w = EncodeR(s.Funct, 1, 2, 3, 4)
		case OpRegImm:
			w = EncodeI(OpRegImm, 5, s.Rt, 16)
		case OpCOP0:
			if s.Rs == CopCO {
				w = EncodeI(OpCOP0, CopCO, 0, s.Funct)
			} else {
				w = EncodeI(OpCOP0, s.Rs, 6, uint32(C0EPC)<<11)
			}
		default:
			w = EncodeI(s.Op, 7, 8, 12)
		}
		got := SpecOf(w)
		if got == nil || got.Name != s.Name {
			name := "<nil>"
			if got != nil {
				name = got.Name
			}
			t.Errorf("SpecOf round-trip for %q got %q", s.Name, name)
		}
	}
}

// Property: every recognised instruction classifies to a non-illegal kind,
// and every instruction SpecOf recognises disassembles without .word.
func TestQuickSpecConsistency(t *testing.T) {
	f := func(raw uint32) bool {
		s := SpecOf(raw)
		k := Classify(raw)
		if s == nil {
			return true // unrecognised word; Classify may still say illegal
		}
		if raw != NOP && k == KindIllegal {
			return false
		}
		text := Disassemble(0x400000, raw)
		return !strings.HasPrefix(text, ".word")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleSamples(t *testing.T) {
	cases := []struct {
		w    Word
		want string
	}{
		{EncodeR(FnADDU, RegT1, RegT2, RegT0, 0), "addu $t0, $t1, $t2"},
		{EncodeR(FnSLL, 0, RegK0, RegK1, 5), "sll $k1, $k0, 5"},
		{EncodeI(OpLW, RegSP, RegT0, uint32(0x10000-8)&0xFFFF), "lw $t0, -8($sp)"},
		{EncodeI(OpSWIC, RegK1, RegK0, 0), "swic $k0, 0($k1)"},
		{EncodeI(OpCOP0, CopMFC0, RegK1, uint32(C0BadVA)<<11), "mfc0 $k1, $c0_badva"},
		{EncodeI(OpCOP0, CopCO, 0, FnIRET), "iret"},
		{NOP, "nop"},
		{EncodeI(OpLUI, 0, RegT0, 0x1234), "lui $t0, 0x1234"},
	}
	for _, c := range cases {
		if got := Disassemble(0x400000, c.w); got != c.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", c.w, got, c.want)
		}
	}
}

func TestDisassembleBranchTargets(t *testing.T) {
	pc := uint32(0x400100)
	off, err := EncodeBranchOff(pc, 0x400080)
	if err != nil {
		t.Fatal(err)
	}
	w := EncodeI(OpBNE, RegT0, RegT1, off)
	if got := Disassemble(pc, w); got != "bne $t0, $t1, 0x400080" {
		t.Fatalf("got %q", got)
	}
}

func TestJumpTargetAllOffsets(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		pc := uint32(r.Intn(1<<26) * 4)
		target := uint32(r.Intn(1<<26)) * 4 & 0x0FFFFFFC
		pc &= 0x0FFFFFFC
		enc, err := EncodeJumpTarget(pc, target)
		if err != nil {
			t.Fatal(err)
		}
		if got := JumpTarget(pc, EncodeJ(OpJ, enc)); got != target {
			t.Fatalf("pc=%#x target=%#x got=%#x", pc, target, got)
		}
	}
}
