package isa

// Syntax describes how a mnemonic's operands are written in assembly.
// It drives both the assembler's parser and the disassembler's printer so
// the two can never disagree.
type Syntax int

// Operand syntaxes.
const (
	SynR3       Syntax = iota // op rd, rs, rt
	SynShift                  // op rd, rt, shamt
	SynShiftV                 // op rd, rt, rs
	SynMulDiv                 // op rs, rt
	SynMoveFrom               // op rd
	SynJR                     // op rs
	SynJALR                   // op rd, rs
	SynImm                    // op rt, rs, imm
	SynLUI                    // op rt, imm
	SynBranch2                // op rs, rt, label
	SynBranch1                // op rs, label
	SynJump                   // op label
	SynMem                    // op rt, off(rs)
	SynCop                    // op rt, $cN
	SynNone                   // op
)

// Spec describes one machine mnemonic.
type Spec struct {
	Name   string
	Syntax Syntax
	Op     uint32 // primary opcode
	Funct  uint32 // funct field for OpSpecial / OpCOP0+CopCO
	Rt     int    // rt selector for OpRegImm
	Rs     int    // rs selector for OpCOP0
	Signed bool   // immediate is signed (for range checks / printing)
}

// Specs lists every CLR32 machine instruction. Order groups by function;
// the assembler indexes it by name via SpecByName.
var Specs = []Spec{
	{Name: "sll", Syntax: SynShift, Op: OpSpecial, Funct: FnSLL},
	{Name: "srl", Syntax: SynShift, Op: OpSpecial, Funct: FnSRL},
	{Name: "sra", Syntax: SynShift, Op: OpSpecial, Funct: FnSRA},
	{Name: "sllv", Syntax: SynShiftV, Op: OpSpecial, Funct: FnSLLV},
	{Name: "srlv", Syntax: SynShiftV, Op: OpSpecial, Funct: FnSRLV},
	{Name: "srav", Syntax: SynShiftV, Op: OpSpecial, Funct: FnSRAV},
	{Name: "jr", Syntax: SynJR, Op: OpSpecial, Funct: FnJR},
	{Name: "jalr", Syntax: SynJALR, Op: OpSpecial, Funct: FnJALR},
	{Name: "syscall", Syntax: SynNone, Op: OpSpecial, Funct: FnSYSCALL},
	{Name: "break", Syntax: SynNone, Op: OpSpecial, Funct: FnBREAK},
	{Name: "mfhi", Syntax: SynMoveFrom, Op: OpSpecial, Funct: FnMFHI},
	{Name: "mflo", Syntax: SynMoveFrom, Op: OpSpecial, Funct: FnMFLO},
	{Name: "mult", Syntax: SynMulDiv, Op: OpSpecial, Funct: FnMULT},
	{Name: "multu", Syntax: SynMulDiv, Op: OpSpecial, Funct: FnMULTU},
	{Name: "div", Syntax: SynMulDiv, Op: OpSpecial, Funct: FnDIV},
	{Name: "divu", Syntax: SynMulDiv, Op: OpSpecial, Funct: FnDIVU},
	{Name: "add", Syntax: SynR3, Op: OpSpecial, Funct: FnADD},
	{Name: "addu", Syntax: SynR3, Op: OpSpecial, Funct: FnADDU},
	{Name: "sub", Syntax: SynR3, Op: OpSpecial, Funct: FnSUB},
	{Name: "subu", Syntax: SynR3, Op: OpSpecial, Funct: FnSUBU},
	{Name: "and", Syntax: SynR3, Op: OpSpecial, Funct: FnAND},
	{Name: "or", Syntax: SynR3, Op: OpSpecial, Funct: FnOR},
	{Name: "xor", Syntax: SynR3, Op: OpSpecial, Funct: FnXOR},
	{Name: "nor", Syntax: SynR3, Op: OpSpecial, Funct: FnNOR},
	{Name: "slt", Syntax: SynR3, Op: OpSpecial, Funct: FnSLT},
	{Name: "sltu", Syntax: SynR3, Op: OpSpecial, Funct: FnSLTU},

	{Name: "bltz", Syntax: SynBranch1, Op: OpRegImm, Rt: RtBLTZ},
	{Name: "bgez", Syntax: SynBranch1, Op: OpRegImm, Rt: RtBGEZ},

	{Name: "j", Syntax: SynJump, Op: OpJ},
	{Name: "jal", Syntax: SynJump, Op: OpJAL},
	{Name: "beq", Syntax: SynBranch2, Op: OpBEQ},
	{Name: "bne", Syntax: SynBranch2, Op: OpBNE},
	{Name: "blez", Syntax: SynBranch1, Op: OpBLEZ},
	{Name: "bgtz", Syntax: SynBranch1, Op: OpBGTZ},

	{Name: "addi", Syntax: SynImm, Op: OpADDI, Signed: true},
	{Name: "addiu", Syntax: SynImm, Op: OpADDIU, Signed: true},
	{Name: "slti", Syntax: SynImm, Op: OpSLTI, Signed: true},
	{Name: "sltiu", Syntax: SynImm, Op: OpSLTIU, Signed: true},
	{Name: "andi", Syntax: SynImm, Op: OpANDI},
	{Name: "ori", Syntax: SynImm, Op: OpORI},
	{Name: "xori", Syntax: SynImm, Op: OpXORI},
	{Name: "lui", Syntax: SynLUI, Op: OpLUI},

	{Name: "mfc0", Syntax: SynCop, Op: OpCOP0, Rs: CopMFC0},
	{Name: "mtc0", Syntax: SynCop, Op: OpCOP0, Rs: CopMTC0},
	{Name: "iret", Syntax: SynNone, Op: OpCOP0, Rs: CopCO, Funct: FnIRET},

	{Name: "lb", Syntax: SynMem, Op: OpLB, Signed: true},
	{Name: "lh", Syntax: SynMem, Op: OpLH, Signed: true},
	{Name: "lw", Syntax: SynMem, Op: OpLW, Signed: true},
	{Name: "lbu", Syntax: SynMem, Op: OpLBU, Signed: true},
	{Name: "lhu", Syntax: SynMem, Op: OpLHU, Signed: true},
	{Name: "sb", Syntax: SynMem, Op: OpSB, Signed: true},
	{Name: "sh", Syntax: SynMem, Op: OpSH, Signed: true},
	{Name: "sw", Syntax: SynMem, Op: OpSW, Signed: true},
	{Name: "swic", Syntax: SynMem, Op: OpSWIC, Signed: true},
}

// SpecByName maps mnemonic to its Spec.
var SpecByName = func() map[string]*Spec {
	m := make(map[string]*Spec, len(Specs))
	for i := range Specs {
		m[Specs[i].Name] = &Specs[i]
	}
	return m
}()

// SpecOf returns the Spec matching an encoded word, or nil for an
// unrecognised encoding.
func SpecOf(w Word) *Spec {
	for i := range Specs {
		s := &Specs[i]
		if s.Op != Op(w) {
			continue
		}
		switch s.Op {
		case OpSpecial:
			if s.Funct == Funct(w) {
				return s
			}
		case OpRegImm:
			if s.Rt == Rt(w) {
				return s
			}
		case OpCOP0:
			if s.Rs != Rs(w) {
				continue
			}
			if s.Rs == CopCO && s.Funct != Funct(w) {
				continue
			}
			return s
		default:
			return s
		}
	}
	return nil
}
