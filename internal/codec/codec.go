// Package codec defines the pluggable compression-scheme interface and
// its central registry. A Codec bundles everything one compression
// scheme contributes to the pipeline: the host-side encoder that turns
// the relocated bytes of the compressed region into metadata segments,
// a byte-level reference decoder (the round-trip oracle), the in-ISA
// exception-handler source that materialises cache lines at run time,
// the geometry the layout engine and static analyzer need, and a cost
// model with the sanity bounds the conformance suite enforces.
//
// internal/core resolves schemes exclusively through this registry, so
// a new scheme registered here flows into the experiment suite, the
// diffsim fuzzer, the bench registry and every CLI without further
// plumbing — provided it passes internal/codec/conformance, which runs
// against every registered codec as part of `go test ./...`.
package codec

import "repro/internal/program"

// Geometry declares the layout contract between a codec and the rest of
// the pipeline: how the compressed region is padded, how much of it one
// handler invocation fills, and which metadata segments the image must
// carry (the static analyzer cross-checks CompressionInfo against it).
type Geometry struct {
	// Align is the byte multiple the compressed region is padded to
	// (with nop words) before encoding. Must be a positive multiple of
	// the instruction size.
	Align int
	// FillBytes is how many decompressed-region bytes one handler
	// invocation materialises — the decompression-line size branch
	// targets are checked against. 0 means no fixed line (procedure
	// granularity).
	FillBytes int
	// NeedsIndices/NeedsLAT declare which metadata segments Encode
	// emits; the analyzer requires the segments (and their published
	// base registers) to match.
	NeedsIndices bool
	NeedsLAT     bool
	// ScratchBytes reserves a handler scratch RAM: the first
	// ScratchBytes bytes of the .dictionary segment are working memory
	// for the decompressor (published to the handler via $c0_dict), not
	// compressed data. The static analyzer extends its store discipline
	// to pointers derived from that base, and the conformance suite
	// confines every handler store to the red zone or this region at
	// run time.
	ScratchBytes int
}

// Input is what a codec encodes: the relocated golden bytes of the
// compressed region plus the region geometry and the procedures placed
// inside it (procedure-granularity codecs need their bounds).
type Input struct {
	// Golden holds the region's native instruction bytes, already
	// relocated and padded to Geometry.Align.
	Golden []byte
	// RegionBase/RegionEnd delimit the virtual decompressed region.
	RegionBase uint32
	RegionEnd  uint32
	// Procs is the rewritten image's full procedure table; entries with
	// Addr >= RegionBase live in the compressed region.
	Procs []program.Procedure
}

// Encoded is the compressed representation: up to three metadata
// segments, placed by the layout engine at .dictionary, .indices and
// .lat and published to the handler via $c0_dict/$c0_indices/$c0_lat.
// A nil/empty slice means the codec does not use that segment.
type Encoded struct {
	Dict    []byte
	Indices []byte
	LAT     []byte
}

// CostModel summarises a scheme's run-time and size costs. The ratio
// bounds are enforced by the conformance suite; the rest is
// documentation the experiment tables can surface.
type CostModel struct {
	// FillReads is the number of extra metadata reads one fill performs
	// beyond streaming the compressed representation itself (e.g. the
	// CodePack LAT lookup).
	FillReads int
	// RatioMin/RatioMax bound Result.Ratio() (stored size / original
	// size, Equation 1 of the paper) for a fully compressed image of a
	// realistically sized program. Small programs pay fixed metadata
	// overheads, so the bounds are sanity rails, not targets.
	RatioMin float64
	RatioMax float64
}

// Codec is one compression scheme. Implementations must be stateless
// and deterministic: Encode on equal Input must yield byte-identical
// Encoded output (the registry's determinism contract — registration
// order never affects emitted images).
type Codec interface {
	// Name is the registry key and the Scheme recorded in
	// program.CompressionInfo.
	Name() string
	// Describe returns a one-line human description.
	Describe() string
	// Geometry declares the layout contract (see Geometry).
	Geometry() Geometry
	// Encode compresses the region into its metadata segments.
	Encode(in Input) (*Encoded, error)
	// Decode is the byte-level reference decoder: it reconstructs size
	// bytes of golden text from the serialised segments, exactly as the
	// in-ISA handler would. Conformance requires Decode(Encode(x)) == x.
	Decode(enc *Encoded, size int) ([]byte, error)
	// HandlerSource returns the in-ISA decompression handler's assembly
	// source for the given register-file configuration.
	HandlerSource(shadowRF bool) (string, error)
	// Cost returns the scheme's cost model.
	Cost() CostModel
}

// Spiller is implemented by codecs whose representation can overflow on
// large inputs (the paper's §3.1 dictionary-overflow fallback): Spill
// reports how many trailing procedures of procs must be left native so
// the remainder fits. text is the original .text segment the procedure
// addresses index into.
type Spiller interface {
	Spill(text *program.Segment, procs []program.Procedure) int
}
