// Package all registers every shipped codec by importing the packages
// that contain them. The built-ins (dict, dict8, codepack, procdict,
// copy) register from the codec package itself; codecs that live in
// their own packages — added purely through the public Codec interface —
// are blank-imported here so every binary that compresses images links
// the full scheme set.
package all

import (
	_ "repro/internal/codec/lz" // sliding-window LZ (LZRW1-style)
)
