package codec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named set of codecs. The package-level Register/Lookup
// functions operate on the default registry every tool links against;
// separate Registry values exist so tests can exercise registration
// semantics in isolation.
type Registry struct {
	mu     sync.Mutex
	codecs map[string]Codec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{codecs: map[string]Codec{}}
}

// Register adds c under c.Name(). It panics on an empty name or a
// duplicate registration: scheme names are global identifiers (CLI
// flags, CompressionInfo.Scheme, bench workload rows) and a silent
// override would change what existing images and baselines mean.
func (r *Registry) Register(c Codec) {
	name := c.Name()
	if name == "" {
		panic("codec: Register with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codecs[name]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of scheme %q", name))
	}
	r.codecs[name] = c
}

// Lookup returns the codec registered under name. The error lists every
// registered scheme so CLI users see what is available.
func (r *Registry) Lookup(name string) (Codec, error) {
	r.mu.Lock()
	c, ok := r.codecs[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q (available: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return c, nil
}

// Names returns the registered scheme names, sorted. Sorting (not
// registration order) is the determinism contract: every consumer that
// iterates the registry sees the same sequence regardless of package
// initialisation order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.codecs))
	for n := range r.codecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered codecs in Names() order.
func (r *Registry) All() []Codec {
	names := r.Names()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Codec, 0, len(names))
	for _, n := range names {
		out = append(out, r.codecs[n])
	}
	return out
}

// defaultRegistry holds every codec linked into the binary.
var defaultRegistry = NewRegistry()

// Register adds c to the default registry (panics on duplicates).
func Register(c Codec) { defaultRegistry.Register(c) }

// Lookup resolves a scheme name against the default registry.
func Lookup(name string) (Codec, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry's scheme names, sorted.
func Names() []string { return defaultRegistry.Names() }

// All returns the default registry's codecs in Names() order.
func All() []Codec { return defaultRegistry.All() }
