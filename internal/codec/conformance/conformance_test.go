package conformance

import (
	"strings"
	"testing"

	"repro/internal/codec"
	_ "repro/internal/codec/all"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/synth"
)

// TestAllRegisteredCodecs runs the full conformance battery against
// every codec in the default registry — built-ins and out-of-tree
// registrations alike. A new scheme becomes subject to the whole
// contract the moment it calls codec.Register.
func TestAllRegisteredCodecs(t *testing.T) {
	names := codec.Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d codecs, expected at least dict, dict8, codepack, procdict, copy, lz: %v",
			len(names), names)
	}
	for _, c := range codec.All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			Run(t, c)
		})
	}
}

// TestRegistryDuplicatePanics pins the registration contract: a second
// Register under an existing name is a programming error, caught loudly
// at init time rather than silently shadowing a scheme.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := codec.NewRegistry()
	c, err := codec.Lookup("dict")
	if err != nil {
		t.Fatal(err)
	}
	r.Register(c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register(c)
}

// TestRegistryUnknownSchemeError pins the CLI-facing failure mode:
// compressing with an unregistered scheme must fail with an error that
// lists what is available.
func TestRegistryUnknownSchemeError(t *testing.T) {
	p, _ := synth.ByName("pegwit")
	im, err := synth.Build(p.Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Compress(im, core.Options{Scheme: program.Scheme("bogus")})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, want := range []string{"bogus", "dict", "codepack", "lz"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRegistrationOrderIrrelevant proves output does not depend on the
// order codecs were registered: fresh registries populated in opposite
// orders resolve the same codec values, and the image a codec produces
// is a function of the codec alone (encode-determinism covers the
// byte-level half; this pins the lookup half).
func TestRegistrationOrderIrrelevant(t *testing.T) {
	all := codec.All()
	fwd, rev := codec.NewRegistry(), codec.NewRegistry()
	for i := range all {
		fwd.Register(all[i])
		rev.Register(all[len(all)-1-i])
	}
	fn, rn := fwd.Names(), rev.Names()
	if len(fn) != len(rn) {
		t.Fatalf("name sets differ: %v vs %v", fn, rn)
	}
	for i := range fn {
		if fn[i] != rn[i] {
			t.Fatalf("name order differs at %d: %v vs %v", i, fn, rn)
		}
		a, err1 := fwd.Lookup(fn[i])
		b, err2 := rev.Lookup(fn[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("%s resolves to different codecs across registries", fn[i])
		}
	}
}

// TestRegistryRejectsEmptyName pins the other registration precondition.
func TestRegistryRejectsEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration did not panic")
		}
	}()
	codec.NewRegistry().Register(badNameCodec{})
}

type badNameCodec struct{ codec.Codec }

func (badNameCodec) Name() string { return "" }
