// Package conformance is the cross-codec contract suite: one reusable
// battery of checks that every registered codec must pass, exercised by
// go test over the whole registry (conformance_test.go) and reusable by
// out-of-tree codec packages against their own implementation.
//
// The checks encode what "a working codec" means in this system:
//
//   - interface-sanity: the declared geometry and cost model are
//     internally consistent (positive alignment, word-multiple fill
//     size, a non-empty ratio window).
//   - encode-determinism: Encode is a pure function of its input — two
//     calls yield byte-identical artifacts (the whole experiment engine
//     assumes images are reproducible).
//   - round-trip: the byte-level reference decoder reconstructs the
//     golden program text exactly from the segments of a built image.
//   - lockstep: a compressed image commits the same architectural state
//     as its native build, instruction by instruction, over every
//     testdata program and both register-file variants.
//   - handler-proof: the static invisibility proof (internal/analysis)
//     reports nothing on either handler variant.
//   - image-invariants: the full image analyzer reports no errors on a
//     built image.
//   - store-confinement: dynamically, every store the handler commits
//     targets the $sp red zone or the codec's declared scratch RAM —
//     the runtime complement of the static scratch-pointer proof.
//   - predecode: simulating with the predecoded fetch path and with the
//     reference decode-every-cycle path yields bit-identical statistics.
//   - telemetry: the CPI stack sums exactly to the cycle count.
//   - ratio: the measured compression ratio falls inside the codec's
//     own declared [RatioMin, RatioMax] window.
package conformance

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/synth"
	"repro/internal/verify"
)

// Violation is one failed conformance check.
type Violation struct {
	Check  string // stable check name, e.g. "round-trip", "lockstep"
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Config tunes a conformance run.
type Config struct {
	// Programs are the native images to exercise. Empty means every
	// assembly program under the repository's testdata directory.
	Programs []Program
	// MaxInstr bounds each simulation (0 = 50M).
	MaxInstr uint64
}

// Program is one named native image.
type Program struct {
	Name  string
	Image *program.Image
}

// redZoneBytes bounds how far below the user $sp a handler may store:
// generously past the largest register save area any handler needs.
const redZoneBytes = 256

// ratioMinTextBytes is the smallest .text the ratio check applies to:
// below it, fixed per-image overheads (alignment padding, tables, the
// LAT, scratch RAM) dominate and the declared ratio window is
// meaningless. The default program set includes a synthetic benchmark
// above this size so every codec's window is actually exercised.
const ratioMinTextBytes = 16 * 1024

// Check runs the full battery against c and returns every violation.
// A nil config uses the defaults.
func Check(c codec.Codec, cfg *Config) []Violation {
	if cfg == nil {
		cfg = &Config{}
	}
	maxInstr := cfg.MaxInstr
	if maxInstr == 0 {
		maxInstr = 50_000_000
	}
	progs := cfg.Programs
	var vs []Violation
	if len(progs) == 0 {
		var err error
		progs, err = DefaultPrograms()
		if err != nil {
			return []Violation{{Check: "setup", Detail: err.Error()}}
		}
	}
	add := func(check, format string, args ...interface{}) {
		vs = append(vs, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}

	vs = append(vs, checkInterface(c)...)
	vs = append(vs, checkHandlerProof(c)...)

	for _, p := range progs {
		for _, shadowRF := range []bool{false, true} {
			label := fmt.Sprintf("%s shadowRF=%v", p.Name, shadowRF)
			res, err := core.CompressWith(p.Image, c, core.Options{
				Scheme: program.Scheme(c.Name()), ShadowRF: shadowRF})
			if err != nil {
				add("build", "%s: %v", label, err)
				continue
			}
			vs = append(vs, checkImage(c, label, p.Image, res, maxInstr)...)
		}
	}
	return vs
}

// Run executes the battery against c and fails t with every violation.
func Run(t *testing.T, c codec.Codec) {
	t.Helper()
	for _, v := range Check(c, nil) {
		t.Errorf("%s: %s", c.Name(), v)
	}
}

// checkInterface validates the declared geometry and cost model.
func checkInterface(c codec.Codec) []Violation {
	var vs []Violation
	add := func(format string, args ...interface{}) {
		vs = append(vs, Violation{Check: "interface-sanity", Detail: fmt.Sprintf(format, args...)})
	}
	if c.Name() == "" {
		add("empty codec name")
	}
	geo := c.Geometry()
	if geo.Align <= 0 || geo.Align%4 != 0 {
		add("alignment %d is not a positive word multiple", geo.Align)
	}
	if geo.FillBytes%4 != 0 || geo.FillBytes < 0 {
		add("fill size %d is not a non-negative word multiple", geo.FillBytes)
	}
	if geo.FillBytes != 0 && geo.Align%geo.FillBytes != 0 && geo.FillBytes%geo.Align != 0 {
		add("fill size %d and alignment %d are incommensurate", geo.FillBytes, geo.Align)
	}
	if geo.ScratchBytes < 0 {
		add("negative scratch size %d", geo.ScratchBytes)
	}
	cost := c.Cost()
	if cost.RatioMin <= 0 || cost.RatioMax <= cost.RatioMin {
		add("ratio window [%g,%g] is empty or unbounded below", cost.RatioMin, cost.RatioMax)
	}
	if cost.FillReads < 0 {
		add("negative fill-read count %d", cost.FillReads)
	}
	return vs
}

// checkHandlerProof runs the static invisibility proof on both handler
// variants: any finding at all is a violation.
func checkHandlerProof(c codec.Codec) []Violation {
	var vs []Violation
	for _, shadowRF := range []bool{false, true} {
		src, err := c.HandlerSource(shadowRF)
		if err != nil {
			vs = append(vs, Violation{Check: "handler-proof",
				Detail: fmt.Sprintf("shadowRF=%v: source: %v", shadowRF, err)})
			continue
		}
		seg, err := decomp.BuildSource(c.Name(), src)
		if err != nil {
			vs = append(vs, Violation{Check: "handler-proof",
				Detail: fmt.Sprintf("shadowRF=%v: %v", shadowRF, err)})
			continue
		}
		rep := &analysis.Report{}
		analysis.AnalyzeHandlerSegment(seg, analysis.HandlerInfo{
			Name:         c.Name(),
			ShadowRF:     shadowRF,
			ScratchBytes: c.Geometry().ScratchBytes,
		}, rep)
		for _, f := range rep.Findings {
			vs = append(vs, Violation{Check: "handler-proof",
				Detail: fmt.Sprintf("shadowRF=%v: %v", shadowRF, f)})
		}
	}
	return vs
}

// checkImage runs every per-image check on one built compressed image.
func checkImage(c codec.Codec, label string, native *program.Image, res *core.Result, maxInstr uint64) []Violation {
	var vs []Violation
	add := func(check, format string, args ...interface{}) {
		vs = append(vs, Violation{Check: check, Detail: label + ": " + fmt.Sprintf(format, args...)})
	}
	im := res.Image

	// round-trip: the reference decoder must reconstruct the golden
	// text exactly from the image's own segments.
	text := im.Segment(program.SegText)
	if text == nil {
		add("round-trip", "image has no %s segment", program.SegText)
		return vs
	}
	enc := &codec.Encoded{}
	if seg := im.Segment(program.SegDict); seg != nil {
		enc.Dict = seg.Data
	}
	if seg := im.Segment(program.SegIndices); seg != nil {
		enc.Indices = seg.Data
	}
	if seg := im.Segment(program.SegLAT); seg != nil {
		enc.LAT = seg.Data
	}
	if got, err := c.Decode(enc, len(text.Data)); err != nil {
		add("round-trip", "decode: %v", err)
	} else if !bytes.Equal(got, text.Data) {
		i := 0
		for i < len(got) && i < len(text.Data) && got[i] == text.Data[i] {
			i++
		}
		add("round-trip", "decoded text diverges from golden at byte %d of %d", i, len(text.Data))
	}

	// encode-determinism: re-encoding the same golden must reproduce the
	// image's artifacts byte for byte.
	in := codec.Input{
		Golden:     text.Data,
		RegionBase: text.Base,
		RegionEnd:  text.End(),
		Procs:      im.Procs,
	}
	if enc2, err := c.Encode(in); err != nil {
		add("encode-determinism", "re-encode: %v", err)
	} else if !bytes.Equal(enc2.Dict, enc.Dict) ||
		!bytes.Equal(enc2.Indices, enc.Indices) ||
		!bytes.Equal(enc2.LAT, enc.LAT) {
		add("encode-determinism", "re-encoding the golden text yields different artifacts")
	}

	// geometry: the declared geometry must match the built image — using
	// the codec in hand, so unregistered codecs are checked too (the
	// image-invariants pass below re-checks via the registry).
	geo := c.Geometry()
	if geo.NeedsIndices && im.Segment(program.SegIndices) == nil {
		add("geometry", "codec declares NeedsIndices but the image has no %s segment", program.SegIndices)
	}
	if geo.NeedsLAT && im.Segment(program.SegLAT) == nil {
		add("geometry", "codec declares NeedsLAT but the image has no %s segment", program.SegLAT)
	}
	if geo.ScratchBytes > 0 {
		if d := im.Segment(program.SegDict); d == nil || len(d.Data) < geo.ScratchBytes {
			add("geometry", "codec declares %d scratch bytes but the %s segment cannot hold them",
				geo.ScratchBytes, program.SegDict)
		}
	}
	if ci := im.Compress; ci != nil && geo.Align > 0 &&
		(ci.CompStart%uint32(geo.Align) != 0 || (ci.CompEnd-ci.CompStart)%uint32(geo.Align) != 0) {
		add("geometry", "compressed region [%#x,%#x) not aligned to the declared %d bytes",
			ci.CompStart, ci.CompEnd, geo.Align)
	}

	// image-invariants: the full static analyzer must report no errors.
	for _, f := range analysis.AnalyzeImage(im).Findings {
		if f.Severity >= analysis.Error {
			add("image-invariants", "%v", f)
		}
	}

	// lockstep: identical architectural commits vs the native build.
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = maxInstr
	if err := verify.Lockstep(native, im, cfg, 0); err != nil {
		add("lockstep", "%v", err)
	}

	// store-confinement + telemetry on an instrumented run.
	vs = append(vs, checkRun(c, label, im, maxInstr)...)

	// predecode: the fast fetch path must not change a single statistic.
	sFast, err1 := runStats(im, maxInstr, false)
	sRef, err2 := runStats(im, maxInstr, true)
	switch {
	case err1 != nil:
		add("predecode", "predecoded run: %v", err1)
	case err2 != nil:
		add("predecode", "reference run: %v", err2)
	case sFast != sRef:
		add("predecode", "predecoded and reference runs diverge: %+v vs %+v", sFast, sRef)
	}

	// ratio: inside the codec's own declared window, on programs large
	// enough that fixed overheads do not dominate.
	cost := c.Cost()
	if r := res.Ratio(); res.OriginalSize >= ratioMinTextBytes &&
		(r < cost.RatioMin || r > cost.RatioMax) {
		add("ratio", "compression ratio %.3f outside declared [%g,%g]", r, cost.RatioMin, cost.RatioMax)
	}
	return vs
}

// checkRun executes the image once with a trace hook asserting the
// dynamic store-confinement contract, then checks the telemetry
// invariant on the resulting stats.
func checkRun(c codec.Codec, label string, im *program.Image, maxInstr uint64) []Violation {
	var vs []Violation
	add := func(check, format string, args ...interface{}) {
		vs = append(vs, Violation{Check: check, Detail: label + ": " + fmt.Sprintf(format, args...)})
	}
	m, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		add("store-confinement", "cpu: %v", err)
		return vs
	}
	m.Cfg.MaxInstr = maxInstr
	if err := m.Load(im); err != nil {
		add("store-confinement", "load: %v", err)
		return vs
	}
	var scratchLo, scratchHi uint32
	if im.Compress != nil && c.Geometry().ScratchBytes > 0 {
		scratchLo = im.Compress.DictBase
		scratchHi = scratchLo + uint32(c.Geometry().ScratchBytes)
	}
	bad := 0
	m.AttachTrace(func(pc, instr uint32, handler bool) {
		if !handler || isa.Classify(instr) != isa.KindStore {
			return
		}
		// Stores never write registers, so the base register still
		// holds its pre-execute value at trace time.
		addr := m.Reg(isa.Rs(instr)) + uint32(isa.SImm(instr))
		sp := m.Reg(isa.RegSP)
		inRedZone := addr < sp && sp-addr <= redZoneBytes
		inScratch := scratchHi != 0 && addr >= scratchLo && addr < scratchHi
		if !inRedZone && !inScratch {
			if bad < 3 { // a broken handler would flood otherwise
				add("store-confinement",
					"handler store at pc %#x writes %#x: outside the red zone and the scratch RAM",
					pc, addr)
			}
			bad++
		}
	})
	if _, err := m.Run(); err != nil {
		add("store-confinement", "run: %v", err)
		return vs
	}
	s := m.Stats
	if got := s.CPIStack.Total(); got != s.Cycles {
		add("telemetry", "CPI stack sums to %d, cycles %d", got, s.Cycles)
	}
	if err := s.CPIStack.Check(s.Cycles); err != nil {
		add("telemetry", "%v", err)
	}
	return vs
}

// runStats executes im and returns its statistics, with the predecoded
// fetch path disabled when ref is set.
func runStats(im *program.Image, maxInstr uint64, ref bool) (cpu.Stats, error) {
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = maxInstr
	cfg.DisablePredecode = ref
	m, err := cpu.New(cfg)
	if err != nil {
		return cpu.Stats{}, err
	}
	if err := m.Load(im); err != nil {
		return cpu.Stats{}, err
	}
	if _, err := m.Run(); err != nil {
		return cpu.Stats{}, err
	}
	return m.Stats, nil
}

// DefaultPrograms is the standard conformance program set: every
// testdata assembly program (small, structurally diverse) plus one
// synthetic benchmark big enough to exercise the ratio window.
func DefaultPrograms() ([]Program, error) {
	progs, err := TestdataPrograms()
	if err != nil {
		return nil, err
	}
	p, ok := synth.ByName("pegwit")
	if !ok {
		return nil, fmt.Errorf("conformance: pegwit workload missing")
	}
	im, err := synth.Build(p.Scale(0.05))
	if err != nil {
		return nil, fmt.Errorf("conformance: build pegwit: %v", err)
	}
	return append(progs, Program{Name: "pegwit-synth", Image: im}), nil
}

// TestdataPrograms assembles every .s program under the repository's
// testdata directory, located relative to this source file so callers
// in any package (and any working directory) get the same set.
func TestdataPrograms() ([]Program, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("conformance: cannot locate source file")
	}
	root := filepath.Join(filepath.Dir(self), "..", "..", "..", "testdata")
	files, err := filepath.Glob(filepath.Join(root, "*.s"))
	if err != nil || len(files) == 0 {
		return nil, fmt.Errorf("conformance: no testdata programs under %s: %v", root, err)
	}
	sort.Strings(files)
	var progs []Program
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		im, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("conformance: assemble %s: %v", filepath.Base(path), err)
		}
		progs = append(progs, Program{Name: filepath.Base(path), Image: im})
	}
	return progs, nil
}
