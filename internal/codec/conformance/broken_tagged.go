//go:build codecbroken

package conformance

import "repro/internal/codec"

// Building with -tags codecbroken registers a deliberately broken codec
// in the default registry. CI's codec-conformance job runs the suite
// once clean and once with this tag, asserting the tagged run FAILS —
// the same perturbation self-test the bench gate and static-check jobs
// use to prove the enforcement path actually enforces.
func init() {
	codec.Register(ClobberRegisterCodec())
}
