package conformance

import (
	"strings"

	"repro/internal/codec"
)

// Deliberately broken codecs: the suite's negative controls. Each wraps
// the dictionary codec and violates exactly one clause of the codec
// contract, and broken_test.go asserts the battery rejects it with the
// matching diagnostic. The codecbroken build tag additionally registers
// one of them globally so CI can prove the registry-wide conformance
// test really fails when a bad codec ships (the same perturbation
// pattern the bench gate and static-check jobs use).

// mustDict returns the dictionary codec the broken wrappers corrupt.
func mustDict() codec.Codec {
	c, err := codec.Lookup("dict")
	if err != nil {
		panic(err)
	}
	return c
}

// BadRoundTripCodec flips one byte of the emitted dictionary, so the
// image decodes to the wrong program: caught by round-trip (and, at
// runtime, lockstep).
func BadRoundTripCodec() codec.Codec { return badRoundTrip{mustDict()} }

type badRoundTrip struct{ codec.Codec }

func (c badRoundTrip) Name() string { return "broken-roundtrip" }

func (c badRoundTrip) Encode(in codec.Input) (*codec.Encoded, error) {
	enc, err := c.Codec.Encode(in)
	if err != nil {
		return nil, err
	}
	if len(enc.Dict) > 40 {
		enc.Dict[40] ^= 0x04
	}
	return enc, nil
}

// ClobberRegisterCodec ships a handler whose epilogue forgets to
// restore $t4: caught statically by the handler-clobber proof (and, at
// runtime, by lockstep divergence on $t4).
func ClobberRegisterCodec() codec.Codec { return clobberRegister{mustDict()} }

type clobberRegister struct{ codec.Codec }

func (c clobberRegister) Name() string { return "broken-clobber" }

func (c clobberRegister) HandlerSource(shadowRF bool) (string, error) {
	src, err := c.Codec.HandlerSource(shadowRF)
	if err != nil {
		return "", err
	}
	// Drop the $t4 restore from the single-RF epilogue. The shadow-RF
	// handler saves nothing, so it stays correct — the suite must catch
	// the broken variant anyway.
	return strings.Replace(src, "lw    $t4, -16($sp)\n", "", 1), nil
}

// BadGeometryCodec declares a line-address table it never emits: the
// built image has no .lat segment while the scheme claims to need one —
// caught by the image-invariants geometry cross-check.
func BadGeometryCodec() codec.Codec { return badGeometry{mustDict()} }

type badGeometry struct{ codec.Codec }

func (c badGeometry) Name() string { return "broken-geometry" }

func (c badGeometry) Geometry() codec.Geometry {
	g := c.Codec.Geometry()
	g.NeedsLAT = true
	return g
}

// BadRatioCodec declares a fantasy compression ratio no dictionary
// encoding achieves: caught by the ratio window check.
func BadRatioCodec() codec.Codec { return badRatio{mustDict()} }

type badRatio struct{ codec.Codec }

func (c badRatio) Name() string { return "broken-ratio" }

func (c badRatio) Cost() codec.CostModel {
	return codec.CostModel{RatioMin: 0.001, RatioMax: 0.01}
}
