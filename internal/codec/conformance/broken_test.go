package conformance

import (
	"strings"
	"testing"

	"repro/internal/codec"
)

// smallConfig keeps the negative tests fast: one small program is
// enough to trip every runtime check, plus the synthetic benchmark
// when the ratio window is under test.
func smallConfig(t *testing.T, withSynth bool) *Config {
	t.Helper()
	progs, err := DefaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	var keep []Program
	for _, p := range progs {
		if p.Name == "sieve.s" || (withSynth && p.Name == "pegwit-synth") {
			keep = append(keep, p)
		}
	}
	if len(keep) == 0 {
		t.Fatal("program set empty")
	}
	// A corrupted image can spin instead of halting; keep the cap low so
	// the negative controls stay fast.
	return &Config{Programs: keep, MaxInstr: 2_000_000}
}

// expectViolation asserts the battery rejects c with at least one
// violation of the given check whose detail mentions want, and that the
// corresponding healthy codec passes the same programs.
func expectViolation(t *testing.T, c codec.Codec, cfg *Config, check, want string) {
	t.Helper()
	vs := Check(c, cfg)
	if len(vs) == 0 {
		t.Fatalf("%s: broken codec passed the conformance suite", c.Name())
	}
	for _, v := range vs {
		if v.Check == check && strings.Contains(v.Detail, want) {
			return
		}
	}
	t.Fatalf("%s: no %q violation mentioning %q; got:\n%s",
		c.Name(), check, want, violationList(vs))
}

func violationList(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString("  " + v.String() + "\n")
	}
	return b.String()
}

func TestBrokenRoundTripCaught(t *testing.T) {
	expectViolation(t, BadRoundTripCodec(), smallConfig(t, false),
		"round-trip", "diverges from golden")
}

func TestBrokenClobberCaught(t *testing.T) {
	expectViolation(t, ClobberRegisterCodec(), smallConfig(t, false),
		"handler-proof", "clobbered")
}

func TestBrokenGeometryCaught(t *testing.T) {
	expectViolation(t, BadGeometryCodec(), smallConfig(t, false),
		"geometry", "NeedsLAT")
}

func TestBrokenRatioCaught(t *testing.T) {
	expectViolation(t, BadRatioCodec(), smallConfig(t, true),
		"ratio", "outside declared")
}

// TestHealthyBaseline double-checks the negative controls are not
// passing vacuously: the unwrapped dictionary codec passes the exact
// configs the broken wrappers fail.
func TestHealthyBaseline(t *testing.T) {
	if vs := Check(mustDict(), smallConfig(t, true)); len(vs) != 0 {
		t.Fatalf("healthy dict codec failed:\n%s", violationList(vs))
	}
}
