package codec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/compress/codepack"
	"repro/internal/compress/dict"
	"repro/internal/decomp"
	"repro/internal/program"
)

// The built-in codecs: the four schemes of the paper's evaluation plus
// the dict8 index-width ablation and the null "copy" decompressor. Each
// wraps the existing compressor package and the shipped handler source;
// registration happens in init so every binary that links the codec
// package resolves them by name.
func init() {
	Register(&dictCodec{bits: dict.Index16, name: "dict"})
	Register(&dictCodec{bits: dict.Index8, name: "dict8"})
	Register(codepackCodec{})
	Register(procdictCodec{})
	Register(copyCodec{})
}

// dictCodec is the paper's dictionary scheme (§3.1): unique instruction
// words in a dictionary, one fixed-width index per instruction. bits
// selects the index width (16 is the paper's configuration, 8 the
// ablation).
type dictCodec struct {
	bits dict.IndexBits
	name string
}

func (c *dictCodec) Name() string { return c.name }

func (c *dictCodec) Describe() string {
	return fmt.Sprintf("dictionary of unique instruction words, %d-bit indices (paper §3.1)", c.bits)
}

func (c *dictCodec) Geometry() Geometry {
	return Geometry{Align: decomp.LineBytes, FillBytes: decomp.LineBytes, NeedsIndices: true}
}

func (c *dictCodec) Encode(in Input) (*Encoded, error) {
	comp, err := dict.Compress(in.Golden, c.bits)
	if err != nil {
		return nil, err
	}
	return &Encoded{Dict: comp.DictBytes(), Indices: comp.IndexBytes()}, nil
}

func (c *dictCodec) Decode(enc *Encoded, size int) ([]byte, error) {
	return dict.DecompressBytes(enc.Dict, enc.Indices, c.bits, size)
}

func (c *dictCodec) HandlerSource(shadowRF bool) (string, error) {
	return decomp.Source(decomp.Variant{
		Scheme: program.SchemeDict, ShadowRF: shadowRF, IndexBits: c.bits})
}

func (c *dictCodec) Cost() CostModel {
	if c.bits == dict.Index8 {
		return CostModel{RatioMin: 0.2, RatioMax: 1.3}
	}
	return CostModel{RatioMin: 0.3, RatioMax: 1.6}
}

// Spill implements the §3.1 dictionary-overflow fallback: procedures
// are compressed in order until the dictionary is full; the remainder
// stays native.
func (c *dictCodec) Spill(text *program.Segment, procs []program.Procedure) int {
	// One slot is reserved for the nop padding the region may need.
	capacity := c.bits.MaxEntries() - 1
	seen := make(map[uint32]bool, capacity)
	for i, p := range procs {
		for a := p.Addr; a+4 <= p.Addr+p.Size; a += 4 {
			w := text.Word(a)
			if !seen[w] {
				if len(seen) >= capacity {
					return len(procs) - i
				}
				seen[w] = true
			}
		}
	}
	return 0
}

// codepackCodec is the CodePack scheme (§3.2): tagged variable-length
// halfword codes, 16-instruction groups, and a line-address table.
type codepackCodec struct{}

func (codepackCodec) Name() string { return string(program.SchemeCodePack) }

func (codepackCodec) Describe() string {
	return "CodePack variable-length halfword codes with a line-address table (paper §3.2)"
}

func (codepackCodec) Geometry() Geometry {
	return Geometry{
		Align:        codepack.GroupBytes,
		FillBytes:    codepack.GroupBytes,
		NeedsIndices: true,
		NeedsLAT:     true,
	}
}

func (codepackCodec) Encode(in Input) (*Encoded, error) {
	comp, err := codepack.Compress(in.Golden)
	if err != nil {
		return nil, err
	}
	return &Encoded{Dict: comp.TableBytes(), Indices: comp.Stream, LAT: comp.LATBytes()}, nil
}

func (codepackCodec) Decode(enc *Encoded, size int) ([]byte, error) {
	return codepack.DecompressBytes(enc.Dict, enc.Indices, enc.LAT, size)
}

func (codepackCodec) HandlerSource(shadowRF bool) (string, error) {
	return decomp.Source(decomp.Variant{Scheme: program.SchemeCodePack, ShadowRF: shadowRF})
}

func (codepackCodec) Cost() CostModel {
	return CostModel{FillReads: 1, RatioMin: 0.3, RatioMax: 1.2}
}

// procdictCodec is the procedure-granularity dictionary scheme
// (Kirovski et al., paper §2/§5.2): the dictionary codec plus a
// procedure-bounds table in the LAT slot, decompressing the whole
// procedure on any miss inside it.
type procdictCodec struct{}

func (procdictCodec) Name() string { return string(program.SchemeProcDict) }

func (procdictCodec) Describe() string {
	return "dictionary codec at procedure granularity with a bounds table (paper §2, §5.2)"
}

func (procdictCodec) Geometry() Geometry {
	return Geometry{Align: decomp.LineBytes, NeedsIndices: true, NeedsLAT: true}
}

func (procdictCodec) Encode(in Input) (*Encoded, error) {
	comp, err := dict.Compress(in.Golden, dict.Index16)
	if err != nil {
		return nil, err
	}
	return &Encoded{
		Dict:    comp.DictBytes(),
		Indices: comp.IndexBytes(),
		LAT:     procBoundsTable(in),
	}, nil
}

func (procdictCodec) Decode(enc *Encoded, size int) ([]byte, error) {
	return dict.DecompressBytes(enc.Dict, enc.Indices, dict.Index16, size)
}

func (procdictCodec) HandlerSource(shadowRF bool) (string, error) {
	return decomp.Source(decomp.Variant{Scheme: program.SchemeProcDict, ShadowRF: shadowRF})
}

func (procdictCodec) Cost() CostModel {
	return CostModel{FillReads: 2, RatioMin: 0.3, RatioMax: 1.7}
}

// procBoundsTable serialises the compressed-region procedure bounds for
// the procedure-granularity handler: [N, start_0..start_{N-1}, regionEnd],
// little-endian words, starts ascending.
func procBoundsTable(in Input) []byte {
	var starts []uint32
	for _, p := range in.Procs {
		if p.Addr >= in.RegionBase {
			starts = append(starts, p.Addr)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]byte, 4*(len(starts)+2))
	binary.LittleEndian.PutUint32(out, uint32(len(starts)))
	for i, s := range starts {
		binary.LittleEndian.PutUint32(out[4*(1+i):], s)
	}
	binary.LittleEndian.PutUint32(out[4*(1+len(starts)):], in.RegionEnd)
	return out
}

// copyCodec is the null-compression ablation: the golden bytes are kept
// verbatim in memory and the handler copies the missed line, isolating
// the cost of the exception + swic mechanism itself.
type copyCodec struct{}

func (copyCodec) Name() string { return "copy" }

func (copyCodec) Describe() string {
	return "null decompressor: copies lines from a memory-backed golden image (ablation)"
}

func (copyCodec) Geometry() Geometry {
	return Geometry{Align: decomp.LineBytes, FillBytes: decomp.LineBytes}
}

func (copyCodec) Encode(in Input) (*Encoded, error) {
	return &Encoded{Dict: append([]byte(nil), in.Golden...)}, nil
}

func (copyCodec) Decode(enc *Encoded, size int) ([]byte, error) {
	if size > len(enc.Dict) {
		return nil, fmt.Errorf("copy: golden image has %d bytes, need %d", len(enc.Dict), size)
	}
	return append([]byte(nil), enc.Dict[:size]...), nil
}

func (copyCodec) HandlerSource(shadowRF bool) (string, error) {
	return decomp.Source(decomp.Variant{Scheme: "copy", ShadowRF: shadowRF})
}

func (copyCodec) Cost() CostModel {
	return CostModel{RatioMin: 0.99, RatioMax: 1.15}
}
