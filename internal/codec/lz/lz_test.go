package lz

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/codec"
)

func padTo(b []byte, n int) []byte {
	out := append([]byte(nil), b...)
	for len(out)%n != 0 {
		out = append(out, 0)
	}
	return out
}

func roundTrip(t *testing.T, golden []byte) {
	t.Helper()
	stream, lat, err := Compress(golden)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(stream, lat, len(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(golden), len(got))
	}
}

func TestRoundTripPatterns(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"zeros":       make([]byte, 4*BlockBytes),
		"one-block":   padTo([]byte("the quick brown fox jumps over the lazy dog"), BlockBytes),
		"alternating": bytes.Repeat([]byte{0xAA, 0x55}, 3*BlockBytes/2),
		"ramp": func() []byte {
			b := make([]byte, 2*BlockBytes)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
	}
	for name, golden := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, golden) })
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := BlockBytes * (1 + rng.Intn(8))
		golden := make([]byte, n)
		switch trial % 3 {
		case 0: // incompressible
			rng.Read(golden)
		case 1: // word-structured, like instruction streams
			words := []uint32{0x24420004, 0x8FA90000, 0x00431021, 0x1440FFFC}
			for i := 0; i+4 <= n; i += 4 {
				w := words[rng.Intn(len(words))]
				golden[i], golden[i+1], golden[i+2], golden[i+3] =
					byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
			}
		case 2: // runs (overlapping-copy territory)
			for i := 0; i < n; {
				run := 1 + rng.Intn(40)
				b := byte(rng.Intn(4))
				for j := 0; j < run && i < n; j++ {
					golden[i] = b
					i++
				}
			}
		}
		roundTrip(t, golden)
	}
}

func TestCompressRejectsUnalignedInput(t *testing.T) {
	if _, _, err := Compress(make([]byte, BlockBytes+1)); err == nil {
		t.Fatal("unaligned input accepted")
	}
}

func TestDecompressRejectsCorruptStreams(t *testing.T) {
	golden := padTo([]byte("abcabcabcabcabc this string repeats abcabc"), BlockBytes)
	stream, lat, err := Compress(golden)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(stream[:1], lat, len(golden)); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Decompress(stream, lat[:0], len(golden)); err == nil {
		t.Fatal("missing LAT accepted")
	}
	if _, err := Decompress(stream, lat, BlockBytes/2); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

func TestRegistered(t *testing.T) {
	c, err := codec.Lookup(Name)
	if err != nil {
		t.Fatal(err)
	}
	geo := c.Geometry()
	if geo.ScratchBytes != BlockBytes || geo.FillBytes != BlockBytes || geo.Align != BlockBytes {
		t.Fatalf("unexpected geometry %+v", geo)
	}
	if !geo.NeedsIndices || !geo.NeedsLAT {
		t.Fatalf("lz needs both an index stream and a LAT: %+v", geo)
	}
}
