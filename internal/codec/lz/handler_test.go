package lz_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/codec"
	"repro/internal/codec/lz"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/synth"
	"repro/internal/verify"
)

// TestHandlerLockstep runs one synthetic benchmark compressed with lz in
// lockstep against its native build, both register-file variants. The
// conformance suite repeats this over every testdata program; this is
// the fast, local version that pinpoints the handler when it breaks.
func TestHandlerLockstep(t *testing.T) {
	p, ok := synth.ByName("pegwit")
	if !ok {
		t.Fatal("pegwit workload missing")
	}
	nat, err := synth.Build(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for _, shadowRF := range []bool{false, true} {
		res, err := core.Compress(nat, core.Options{Scheme: lz.Name, ShadowRF: shadowRF})
		if err != nil {
			t.Fatalf("shadowRF=%v: %v", shadowRF, err)
		}
		cfg := cpu.DefaultConfig()
		cfg.MaxInstr = 100_000_000
		if err := verify.Lockstep(nat, res.Image, cfg, 0); err != nil {
			t.Fatalf("shadowRF=%v: %v", shadowRF, err)
		}
	}
}

// TestHandlerProof runs the static handler-invisibility analyzer on both
// LZ handler variants: the scratch-store discipline must make the sb
// stores provably clean, with no Error or Warning findings at all.
func TestHandlerProof(t *testing.T) {
	c, err := codec.Lookup(lz.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, shadowRF := range []bool{false, true} {
		src, err := c.HandlerSource(shadowRF)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := decomp.BuildSource(lz.Name, src)
		if err != nil {
			t.Fatal(err)
		}
		rep := &analysis.Report{}
		analysis.AnalyzeHandlerSegment(seg, analysis.HandlerInfo{
			Name:         "lz",
			ShadowRF:     shadowRF,
			ScratchBytes: c.Geometry().ScratchBytes,
		}, rep)
		for _, f := range rep.Findings {
			t.Errorf("shadowRF=%v: %v", shadowRF, f)
		}
	}
}

// TestHandlerScratchUndeclared proves the analyzer would reject the LZ
// handler if the codec failed to declare its scratch RAM: the same sb
// stores become handler-store Errors.
func TestHandlerScratchUndeclared(t *testing.T) {
	c, err := codec.Lookup(lz.Name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.HandlerSource(false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := decomp.BuildSource(lz.Name, src)
	if err != nil {
		t.Fatal(err)
	}
	rep := &analysis.Report{}
	analysis.AnalyzeHandlerSegment(seg, analysis.HandlerInfo{Name: "lz"}, rep)
	found := false
	for _, f := range rep.Findings {
		if f.Rule == analysis.RuleHandlerStore && f.Severity == analysis.Error &&
			strings.Contains(f.Message, "scratch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("undeclared scratch RAM not flagged: %v", rep.Findings)
	}
}
