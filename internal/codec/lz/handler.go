package lz

import (
	"fmt"
	"strings"
)

const header = `
        .section .decompressor, 0x7F000000
`

// handlerSource builds the in-ISA LZ decompressor. The I-cache is
// write-only to handlers (swic), so back-references cannot read earlier
// output out of the cache: the handler decodes the whole 256-byte block
// bytewise into the scratch RAM published via $c0_dict, then copies it
// into the I-cache as 64 words.
//
// Register roles:
//
//	$k1 block base address      $t3 stream pointer
//	$t0 scratch base            $t1 scratch write pointer
//	$t2 scratch end             $t4 control word
//	$t5 items left in group     $t6/$t7/$t8 item temps
//	$t9 block end (emit stop)
func handlerSource(shadowRF bool) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString(`
# Sliding-window LZ decompressor: decode one 256-byte block into the
# scratch RAM at $c0_dict, then copy it into the I-cache.
        .proc __decompress_lz
__decompress_lz:
`)
	saved := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9"}
	if !shadowRF {
		b.WriteString("        # Single register file: save everything we touch.\n")
		for i, r := range saved {
			fmt.Fprintf(&b, "        sw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString(`        # Locate the block: badva aligned down to 256 bytes.
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 8
        sll   $k1, $k1, 8        # k1 = block base address
        mfc0  $k0, $c0_dbase
        subu  $t3, $k1, $k0      # byte offset into region (256-aligned)
        srl   $t3, $t3, 6        # = block index * 4: LAT entry offset
        mfc0  $t8, $c0_lat
        addu  $t3, $t8, $t3
        lw    $t3, 0($t3)        # stream byte offset (the extra access)
        mfc0  $t8, $c0_indices
        addu  $t3, $t8, $t3      # t3 = stream pointer
        # Scratch RAM window: decode bytewise, copy to the cache at the end.
        mfc0  $t0, $c0_dict      # scratch base
        move  $t1, $t0           # write pointer
        addiu $t2, $t0, 256      # scratch end
group:  beq   $t1, $t2, emit
        lbu   $t4, 0($t3)        # control word: bit i set = item i is a copy
        lbu   $t6, 1($t3)        # (two byte loads: the stream is unaligned)
        addiu $t3, $t3, 2
        sll   $t6, $t6, 8
        or    $t4, $t4, $t6
        ori   $t5, $zero, 16
item:   beq   $t1, $t2, emit     # block full mid-group
        andi  $t6, $t4, 1
        bne   $t6, $zero, copy
        lbu   $t6, 0($t3)        # literal: one raw byte
        addiu $t3, $t3, 1
        sb    $t6, 0($t1)
        addiu $t1, $t1, 1
        b     next
copy:   lbu   $t6, 0($t3)        # (length-3)<<4 | offset>>8
        lbu   $t7, 1($t3)        # offset low byte
        addiu $t3, $t3, 2
        andi  $t8, $t6, 15
        sll   $t8, $t8, 8
        or    $t7, $t7, $t8      # back offset
        srl   $t6, $t6, 4
        addiu $t6, $t6, 3        # match length
        subu  $t7, $t1, $t7      # copy source; bytewise forward so
cploop: lbu   $t8, 0($t7)        # overlapping references self-extend
        sb    $t8, 0($t1)
        addiu $t7, $t7, 1
        addiu $t1, $t1, 1
        addiu $t6, $t6, -1
        bne   $t6, $zero, cploop
next:   srl   $t4, $t4, 1
        addiu $t5, $t5, -1
        bne   $t5, $zero, item
        b     group
emit:   # Copy the decoded block into the I-cache, 64 words.
        move  $t1, $t0
        addiu $t9, $k1, 256
eloop:  lw    $t8, 0($t1)
        swic  $t8, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t9, eloop
`)
	if !shadowRF {
		for i, r := range saved {
			fmt.Fprintf(&b, "        lw    %s, %d($sp)\n", r, -4*(i+1))
		}
	}
	b.WriteString("        iret\n        .endp\n")
	return b.String()
}
