package lz

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks compress→decompress identity on arbitrary input
// (padded to the block size, as core's layout guarantees). The seeded
// corpus under testdata/fuzz covers the format's edge cases: zero-length
// input, a match at the maximum usable window offset, and overlapping
// (run-length) copies.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{'a'}, 2*BlockBytes)) // off=1 overlapping copies
	f.Add(func() []byte { // match at the maximum usable offset (253)
		b := append([]byte("XYZ"), bytes.Repeat([]byte{'q'}, BlockBytes-6)...)
		return append(b, 'X', 'Y', 'Z')
	}())
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, src []byte) {
		golden := append([]byte(nil), src...)
		for len(golden)%BlockBytes != 0 {
			golden = append(golden, 0)
		}
		stream, lat, err := Compress(golden)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, err := Decompress(stream, lat, len(golden))
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, golden) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodeBlock feeds arbitrary bytes to the block decoder: it must
// return an error or exactly BlockBytes of output, never panic and never
// read out of bounds.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})             // ctrl then truncated literals
	f.Add([]byte{0x01, 0x00, 0xF0, 0xFF}) // copy with an out-of-window offset
	good, _, err := Compress(bytes.Repeat([]byte("abcd0123"), BlockBytes/8))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := decodeBlock(data, 0)
		if err == nil && len(out) != BlockBytes {
			t.Fatalf("no error but %d bytes, want %d", len(out), BlockBytes)
		}
	})
}
