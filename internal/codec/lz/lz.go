// Package lz is a sliding-window LZ codec (LZRW1-style match/literal
// encoding) added purely through the public codec interface: it brings
// its own host-side compressor, byte-level reference decoder and in-ISA
// decompression handler, and registers itself under the scheme name
// "lz" — nothing inside internal/core, internal/decomp or the CLIs
// knows it exists.
//
// # Format
//
// The compressed region is padded to 256-byte blocks; each block is
// encoded independently so one exception can materialise it without
// context (the block is this codec's decompression line, eight I-cache
// lines). Within a block the encoding is LZRW1's (Williams, DCC 1991),
// with the window confined to the block:
//
//   - a 16-bit little-endian control word starts each group of up to 16
//     items; bit i (LSB-first) set means item i is a copy;
//   - a literal item is one raw byte;
//   - a copy item is two bytes: (length-3)<<4 | offset>>8, then the low
//     offset byte — lengths 3..18, back-offsets 1..255 (within the
//     block). Offsets smaller than the length yield overlapping copies,
//     decoded bytewise forward (run-length expansion).
//
// A block's stream ends when 256 output bytes have been produced; the
// .lat segment maps block index to stream byte offset (one uint32 per
// block), exactly like CodePack's line-address table. Because swic is
// write-only — the handler cannot read earlier output back out of the
// I-cache — decoding needs working memory for the window: the codec
// declares a 256-byte scratch RAM (the .dictionary segment, published
// via $c0_dict), decodes the block into it bytewise, then copies it
// into the I-cache as 64 swic words.
package lz

import (
	"encoding/binary"
	"fmt"

	"repro/internal/codec"
)

// Name is the registry scheme name.
const Name = "lz"

// BlockBytes is the decompression-line size: the unit one exception
// decodes, and the scratch RAM size.
const BlockBytes = 256

const (
	minMatch = 3
	maxMatch = 18
	hashSize = 1024
)

func hash3(p []byte) uint32 {
	return (40543 * (uint32(p[0])<<8 ^ uint32(p[1])<<4 ^ uint32(p[2])) >> 4) & (hashSize - 1)
}

// Compress encodes golden (length a multiple of BlockBytes) into the
// item stream and its block-offset table.
func Compress(golden []byte) (stream, lat []byte, err error) {
	if len(golden)%BlockBytes != 0 {
		return nil, nil, fmt.Errorf("lz: input length %d not a multiple of %d", len(golden), BlockBytes)
	}
	for b := 0; b*BlockBytes < len(golden); b++ {
		lat = binary.LittleEndian.AppendUint32(lat, uint32(len(stream)))
		stream = compressBlock(stream, golden[b*BlockBytes:(b+1)*BlockBytes])
	}
	return stream, lat, nil
}

// compressBlock appends one block's encoding to out. Greedy LZRW1
// matching over a hash of 3-byte prefixes, with candidates confined to
// the current block so the decoder's window never crosses a block
// boundary.
func compressBlock(out []byte, blk []byte) []byte {
	var table [hashSize]int
	for i := range table {
		table[i] = -1
	}
	i := 0
	for i < len(blk) {
		ctrlPos := len(out)
		out = append(out, 0, 0)
		var ctrl uint16
		for item := 0; item < 16 && i < len(blk); item++ {
			if i+minMatch <= len(blk) {
				h := hash3(blk[i:])
				cand := table[h]
				table[h] = i
				if cand >= 0 {
					max := len(blk) - i
					if max > maxMatch {
						max = maxMatch
					}
					length := 0
					for length < max && blk[cand+length] == blk[i+length] {
						length++
					}
					if length >= minMatch {
						off := i - cand
						out = append(out,
							byte((length-minMatch)<<4|off>>8),
							byte(off))
						ctrl |= 1 << item
						i += length
						continue
					}
				}
			}
			out = append(out, blk[i])
			i++
		}
		binary.LittleEndian.PutUint16(out[ctrlPos:], ctrl)
	}
	return out
}

// Decompress is the byte-level reference decoder: it reconstructs size
// bytes from the stream and block-offset table, mirroring the in-ISA
// handler item by item (including the stop-when-full check before every
// item).
func Decompress(stream, lat []byte, size int) ([]byte, error) {
	if size%BlockBytes != 0 {
		return nil, fmt.Errorf("lz: decode size %d not a multiple of %d", size, BlockBytes)
	}
	blocks := size / BlockBytes
	if len(lat) < 4*blocks {
		return nil, fmt.Errorf("lz: LAT has %d entries, need %d", len(lat)/4, blocks)
	}
	out := make([]byte, 0, size)
	for b := 0; b < blocks; b++ {
		off := int(binary.LittleEndian.Uint32(lat[4*b:]))
		blk, err := decodeBlock(stream, off)
		if err != nil {
			return nil, fmt.Errorf("lz: block %d: %w", b, err)
		}
		out = append(out, blk...)
	}
	return out, nil
}

// decodeBlock decodes one 256-byte block starting at stream offset off.
func decodeBlock(stream []byte, off int) ([]byte, error) {
	out := make([]byte, 0, BlockBytes)
	pos := off
	for len(out) < BlockBytes {
		if pos+2 > len(stream) {
			return nil, fmt.Errorf("truncated control word at stream offset %d", pos)
		}
		ctrl := binary.LittleEndian.Uint16(stream[pos:])
		pos += 2
		for item := 0; item < 16 && len(out) < BlockBytes; item++ {
			if ctrl&1 == 0 {
				if pos >= len(stream) {
					return nil, fmt.Errorf("truncated literal at stream offset %d", pos)
				}
				out = append(out, stream[pos])
				pos++
			} else {
				if pos+2 > len(stream) {
					return nil, fmt.Errorf("truncated copy item at stream offset %d", pos)
				}
				length := int(stream[pos]>>4) + minMatch
				back := int(stream[pos]&0xF)<<8 | int(stream[pos+1])
				pos += 2
				if back < 1 || back > len(out) {
					return nil, fmt.Errorf("copy offset %d outside the %d decoded bytes", back, len(out))
				}
				if len(out)+length > BlockBytes {
					return nil, fmt.Errorf("copy of %d bytes runs past the block end", length)
				}
				// Bytewise forward copy: overlapping back-references
				// self-extend, exactly as the handler's copy loop does.
				src := len(out) - back
				for k := 0; k < length; k++ {
					out = append(out, out[src+k])
				}
			}
			ctrl >>= 1
		}
	}
	return out, nil
}

// lzCodec implements codec.Codec.
type lzCodec struct{}

func init() { codec.Register(lzCodec{}) }

func (lzCodec) Name() string { return Name }

func (lzCodec) Describe() string {
	return "sliding-window LZ (LZRW1-style), 256-byte blocks decoded through a scratch RAM"
}

func (lzCodec) Geometry() codec.Geometry {
	return codec.Geometry{
		Align:        BlockBytes,
		FillBytes:    BlockBytes,
		NeedsIndices: true,
		NeedsLAT:     true,
		ScratchBytes: BlockBytes,
	}
}

func (lzCodec) Encode(in codec.Input) (*codec.Encoded, error) {
	stream, lat, err := Compress(in.Golden)
	if err != nil {
		return nil, err
	}
	// The .dictionary segment is pure scratch RAM: zeroed working
	// memory the handler decodes each block into before the swic copy.
	return &codec.Encoded{
		Dict:    make([]byte, BlockBytes),
		Indices: stream,
		LAT:     lat,
	}, nil
}

func (lzCodec) Decode(enc *codec.Encoded, size int) ([]byte, error) {
	return Decompress(enc.Indices, enc.LAT, size)
}

func (lzCodec) HandlerSource(shadowRF bool) (string, error) {
	return handlerSource(shadowRF), nil
}

func (lzCodec) Cost() codec.CostModel {
	return codec.CostModel{FillReads: 1, RatioMin: 0.2, RatioMax: 1.25}
}
