package cpu

import "fmt"

// CycleKind classifies where one simulated cycle went — the components
// of the CPI stack. The attribution is exhaustive: every cycle the
// timing model charges lands in exactly one component, and the sum over
// all components equals Stats.Cycles (CPIStack.Check enforces this; Run
// verifies it on every completed simulation).
type CycleKind int

// The CPI-stack components.
const (
	// CycleUser: base execute cycles of committed user instructions
	// (including the swic serialisation bubble if user code ever issues
	// one).
	CycleUser CycleKind = iota
	// CycleHandler: base execute cycles of decompression-handler
	// instructions, plus the swic serialisation bubbles the handler pays.
	CycleHandler
	// CycleFetchStall: stalls on hardware I-cache fills from backed
	// memory (native-region misses).
	CycleFetchStall
	// CycleLoadStall: stalls on D-cache miss fills.
	CycleLoadStall
	// CycleLoadUse: load-use interlock bubbles (MEM->EX forwarding gap).
	CycleLoadUse
	// CycleBranch: control-flow penalties — conditional-branch
	// mispredicts and the jr/jalr fetch-redirect bubble.
	CycleBranch
	// CycleExcService: decompression-exception mechanism overhead — the
	// exception-entry pipeline flush, the iret redirect, and (in
	// hardware-decompress mode) the fixed-latency unit's fill stalls.
	CycleExcService

	// NumCycleKinds is the number of CPI-stack components.
	NumCycleKinds
)

var cycleKindNames = [NumCycleKinds]string{
	"user", "handler", "fetch-stall", "load-stall",
	"load-use", "branch", "exc-service",
}

// cycleKindKeys are the stable machine-readable component names shared
// by ccprof and simrun -json.
var cycleKindKeys = [NumCycleKinds]string{
	"user_execute", "handler_execute", "fetch_stall", "load_stall",
	"load_use", "branch_penalty", "exc_service",
}

func (k CycleKind) String() string {
	if k < 0 || k >= NumCycleKinds {
		return fmt.Sprintf("CycleKind(%d)", int(k))
	}
	return cycleKindNames[k]
}

// Key returns the stable snake_case identifier used in machine-readable
// output (JSON/CSV). It never changes once shipped.
func (k CycleKind) Key() string {
	if k < 0 || k >= NumCycleKinds {
		return fmt.Sprintf("cycle_kind_%d", int(k))
	}
	return cycleKindKeys[k]
}

// CPIStack attributes every simulated cycle to a CycleKind. It is part
// of Stats and always maintained (the adds are a handful of array
// increments per instruction), so any run — simrun, experiments, tests —
// can decompose its cycles without attaching a collector.
type CPIStack [NumCycleKinds]uint64

// Total returns the sum of all attributed cycles.
func (s CPIStack) Total() uint64 {
	var n uint64
	for _, v := range s {
		n += v
	}
	return n
}

// Check returns an error when the attributed cycles do not sum exactly
// to total. A failure means the timing model charged a cycle the
// attribution missed (or double-counted one) — a simulator bug, never a
// property of the simulated program.
func (s CPIStack) Check(total uint64) error {
	if got := s.Total(); got != total {
		return fmt.Errorf("CPI stack sums to %d cycles, simulator charged %d (diff %+d): %v",
			got, total, int64(got)-int64(total), s)
	}
	return nil
}

// FillKind classifies an I-cache line fill reported to the telemetry
// sink.
type FillKind int

// I-cache fill kinds.
const (
	// FillNative is a hardware fill of a native-region line from backed
	// memory.
	FillNative FillKind = iota
	// FillHardwareDecomp is a fill performed by the modelled hardware
	// decompression unit (Config.HardwareDecompress).
	FillHardwareDecomp
)

func (k FillKind) String() string {
	switch k {
	case FillNative:
		return "native"
	case FillHardwareDecomp:
		return "hw-decomp"
	}
	return fmt.Sprintf("FillKind(%d)", int(k))
}

// TelemetrySink receives fine-grained timing events from the CPU. All
// call sites are nil-checked, so an unattached CPU pays only a pointer
// compare per event; internal/telemetry provides the standard
// implementation (histograms, Perfetto spans). Cycle arguments are
// Stats.Cycles timestamps.
type TelemetrySink interface {
	// ExcEnter reports a decompression exception raised at pc; cycle is
	// the timestamp before the entry flush is charged.
	ExcEnter(pc uint32, cycle uint64)
	// ExcReturn reports the handler's iret: epc is the faulting address
	// being resumed, cycle the timestamp after the iret completed, and
	// latency the full entry-to-iret service time (cycle - enter cycle).
	ExcReturn(epc uint32, cycle uint64, latency uint64)
	// IFill reports a non-exception I-cache line fill for pc that
	// stalled the pipeline for stall cycles, starting at cycle.
	IFill(pc uint32, cycle uint64, stall uint64, kind FillKind)
}

// AttachTrace adds fn to the CPU's committed-instruction tracers.
// Unlike assigning Trace directly, attaching composes: every previously
// installed tracer keeps firing, in attach order — so the debugging ring
// (internal/trace) and the telemetry collector can observe the same run.
func (c *CPU) AttachTrace(fn func(pc, instr uint32, handler bool)) {
	prev := c.Trace
	if prev == nil {
		c.Trace = fn
		return
	}
	c.Trace = func(pc, instr uint32, handler bool) {
		prev(pc, instr, handler)
		fn(pc, instr, handler)
	}
}
