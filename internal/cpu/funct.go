package cpu

// The functional fast-forward engine.
//
// The detailed model spends most of its host time on the timing
// machinery: cache lookups, branch-predictor training, stall
// accounting, telemetry hooks. The functional engine executes the same
// architectural semantics with none of that — no caches, no predictor,
// no cycle charging — so a run reaches the same registers, HI/LO,
// memory image, output and exit code while moving many times faster on
// the host. fastpath.Sampled alternates the two engines (SMARTS-style)
// to estimate CPI from detailed measurement windows separated by
// functional fast-forward.
//
// Decompression still happens: the functional engine materialises
// decompressed code words into the functional store (fsWord/fsOK, a
// flat image of the compressed region standing in for the I-cache). A
// fetch inside the compressed region whose word is not yet materialised
// raises the same decompression exception the detailed core would
// (EPC/BADVA/EXL, bank switch, vector to the handler); the handler runs
// functionally and its swic stores land in the store. Because the store
// never evicts, a line faults at most once — the functional engine's
// exception count is a lower bound on the detailed one, which re-faults
// on I-cache evictions. That is why FunctStats is a separate type:
// functional counters are not comparable to timing counters, except
// FunctStats.Instrs, which must equal Stats.Instrs exactly for the same
// program (the equivalence battery pins this).
//
// Dispatch is one loop (frun) around one opcode switch. Code words are
// decoded at most once into flat per-word decode caches — fcdec over
// the compressed region (indexed in lockstep with the functional
// store) and fdec over the native code extent [fdBase,fdEnd) — each
// with a validity byte per word. Every instruction re-validates its
// word before executing, so coherence against self-modifying code is
// O(1): a store or swic that touches a code word clears exactly that
// word's validity (finvalWord) and the next fetch re-decodes it. There
// are no block caches to invalidate and no per-instruction function
// calls on the hot path — an earlier superblock design spent a third
// of its host time in map lookups and block rebuilds; the flat arrays
// removed all of it. Code executing outside both extents (rare:
// programs running code out of data memory) is decoded on every fetch
// and therefore always coherent.
//
// Config.FunctionalWarm selects the second functional mode, SMARTS-style
// functional warming: instead of the flat decode caches, every fetch
// probes (and on a miss fills) the real I-cache, loads touch the
// D-cache, branches train the predictor and swic writes land in the
// I-cache — exactly the state transitions the detailed engine performs,
// minus every cycle charge. A fast-forward interval then leaves the
// caches and predictor precisely where a detailed run would have, which
// is what makes short measurement windows unbiased (fastpath.Sampled
// turns this mode on for its intervals). Warming trades speed for
// fidelity; plain fast-forward keeps the direct-dispatch path.

import "fmt"

// FunctStats counts work done by the functional engine. These are
// architectural counters, not timing ones: there is no cycle column
// because the functional engine charges none.
type FunctStats struct {
	Instrs        uint64 // user instructions retired functionally
	HandlerInstrs uint64 // handler instructions retired functionally
	Exceptions    uint64 // decompression exceptions taken functionally
	Blocks        uint64 // user-mode taken control transfers (diagnostic)
}

// resetFunctional clears all functional-engine state (called from Load).
// The flat stores are allocated lazily on first functional execution
// (fensure) so detailed-only runs never pay for them.
func (c *CPU) resetFunctional() {
	c.fsWord, c.fsOK = nil, nil
	c.fxtra = nil
	c.fcdec, c.fcOK = nil, nil
	c.fdec, c.fdOK = nil, nil
	c.fhdOK = nil
	c.flastExc = 0
	c.fexcRepet = 0
}

// fensure allocates the flat functional stores for the current image
// geometry. The decode caches are skipped in warming mode (warm fetches
// go through the real I-cache and predecode lines instead).
func (c *CPU) fensure() {
	if c.compEnd > c.compStart {
		n := (c.compEnd - c.compStart) >> 2
		if c.fsWord == nil {
			c.fsWord = make([]uint32, n)
			c.fsOK = make([]uint8, n)
		}
		if !c.Cfg.FunctionalWarm && c.fcdec == nil {
			c.fcdec = make([]pinstr, n)
			c.fcOK = make([]uint8, n)
		}
	}
	if !c.Cfg.FunctionalWarm && c.fdec == nil && c.fdEnd > c.fdBase {
		n := (c.fdEnd - c.fdBase) >> 2
		c.fdec = make([]pinstr, n)
		c.fdOK = make([]uint8, n)
	}
	if c.hdec != nil && c.fhdOK == nil {
		// The handler predecode is always fully decoded (predecodeHandler
		// builds it eagerly and noteHandlerStore patches it in place), so
		// its validity array is constant all-ones — it exists only so the
		// dispatch loop treats handler RAM as one more decode region.
		c.fhdOK = make([]uint8, len(c.hdec))
		for i := range c.fhdOK {
			c.fhdOK[i] = 1
		}
	}
}

// fsGet returns the materialised functional code word at a. Words
// outside the compressed region (tracked in fxtra) are never visible to
// fetch, matching the detailed engine where such swic stores land in
// I-cache lines that fetch re-fills from memory.
func (c *CPU) fsGet(a uint32) (uint32, bool) {
	if c.fsWord == nil || !c.InCompressedRegion(a) {
		return 0, false
	}
	i := (a - c.compStart) >> 2
	return c.fsWord[i], c.fsOK[i] != 0
}

// fsPut materialises one functional code word (a swic store or a
// hardware-decompressor fill). Overwriting a word with different
// content invalidates its decoded record.
func (c *CPU) fsPut(a, w uint32) {
	if c.InCompressedRegion(a) {
		if c.fsWord == nil {
			n := (c.compEnd - c.compStart) >> 2
			c.fsWord = make([]uint32, n)
			c.fsOK = make([]uint8, n)
		}
		i := (a - c.compStart) >> 2
		if c.fcOK != nil && c.fsOK[i] != 0 && c.fsWord[i] != w {
			c.fcOK[i] = 0
		}
		c.fsWord[i], c.fsOK[i] = w, 1
		return
	}
	if c.fxtra == nil {
		c.fxtra = make(map[uint32]uint32)
	}
	c.fxtra[a] = w
	c.finvalWord(a)
}

// finvalWord drops the decoded record for the word containing addr, if
// any. This is the whole coherence story for self-modifying code: the
// next fetch of that word re-decodes it from its backing store.
func (c *CPU) finvalWord(addr uint32) {
	a := addr &^ 3
	if c.fcOK != nil && c.InCompressedRegion(a) {
		c.fcOK[(a-c.compStart)>>2] = 0
		return
	}
	if c.fdOK != nil && a >= c.fdBase && a < c.fdEnd {
		c.fdOK[(a-c.fdBase)>>2] = 0
	}
}

// FStoreSnapshot returns a copy of the functionally materialised code
// words (address -> word). The equivalence battery compares every entry
// against the golden decompressed text.
func (c *CPU) FStoreSnapshot() map[uint32]uint32 {
	out := make(map[uint32]uint32, len(c.fxtra))
	for i, ok := range c.fsOK {
		if ok != 0 {
			out[c.compStart+uint32(i)<<2] = c.fsWord[i]
		}
	}
	for a, w := range c.fxtra {
		out[a] = w
	}
	return out
}

// UserReg returns register r of the user (non-shadow) file, regardless
// of the active bank. Final-state comparisons use it so a machine that
// halts inside the handler is still comparable.
func (c *CPU) UserReg(r int) uint32 { return c.regs[0][r] }

// runFunctional is Run for Config.Functional: the whole program
// executes on the functional engine.
func (c *CPU) runFunctional() (int32, error) {
	if _, _, err := c.frun(^uint64(0), false); err != nil {
		return -1, err
	}
	return c.exitCode, nil
}

// totalInstrs is the combined retirement count across both engines;
// Config.MaxInstr bounds it.
func (c *CPU) totalInstrs() uint64 {
	return c.Stats.Instrs + c.Stats.HandlerInstrs +
		c.FStats.Instrs + c.FStats.HandlerInstrs
}

// RunFunctionalFor retires at least n user instructions on the
// functional engine, then continues until the machine is outside the
// decompression handler (an engine switch must never split a handler
// activation: the detailed engine would see a half-decompressed line).
// It reports whether the program halted.
func (c *CPU) RunFunctionalFor(n uint64) (bool, error) {
	c.flastExc, c.fexcRepet = 0, 0
	halted, _, err := c.frun(n, false)
	return halted, err
}

// fwouldFault reports whether the next fetch would miss the I-cache —
// a decompression event (software exception or hardware decompressor
// fill) in the compressed region, or a hardware line fill in the native
// region. Both are the rare, individually expensive events whose cost
// the sampled driver charges exactly on the detailed engine instead of
// extrapolating. Pure probe — no state is touched.
func (c *CPU) fwouldFault() bool {
	pc := c.pc
	return !c.inHandler && pc&3 == 0 && !c.inHandlerRAM(pc) && !c.IC.Probe(pc)
}

// RunFunctionalSampled is the sampled driver's fast-forward: it retires
// up to n user instructions on the warming functional engine but stops
// — before any state changes — whenever the next fetch would be a
// decompression event. The driver then services that event on the
// detailed engine (RunDetailedBurst), so every exception burst in a
// sampled run is measured exactly rather than estimated; only the
// steady-state user instructions between events are fast-forwarded.
// Requires Config.FunctionalWarm. Returns (halted, pending): pending
// means a decompression event is due at the current PC.
func (c *CPU) RunFunctionalSampled(n uint64) (bool, bool, error) {
	c.flastExc, c.fexcRepet = 0, 0
	return c.frun(n, true)
}

// RunDetailedBurst services exactly one pending decompression event on
// the detailed engine: the faulting fetch — exception entry, or the
// hardware fill plus the instruction it unblocks — and, for the
// software path, the entire handler activation through iret. Cycle
// charges land in cpu.Stats, so a sampled run accounts every burst
// exactly. The repeated-exception guard (lastExc/excRepet) is left
// intact across bursts so a handler that fails to fill its line is
// still detected after three back-to-back bursts at the same PC, just
// as in a contiguous detailed run. It reports whether the program
// halted.
func (c *CPU) RunDetailedBurst() (bool, error) {
	c.lastLoad = -1 // exception entry flushes the pipeline anyway
	if err := c.Step(); err != nil {
		return false, err
	}
	for !c.halted && c.inHandler {
		if err := c.Step(); err != nil {
			return false, err
		}
		if c.Cfg.MaxInstr > 0 && c.totalInstrs() >= c.Cfg.MaxInstr {
			return false, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, c.pc)
		}
	}
	return c.halted, nil
}

// RunDetailedFor retires at least n user instructions on the detailed
// timing engine, then continues until outside the handler. Entry resets
// the pipeline-local hazard state (lastLoad) and the repeated-exception
// guard: both describe the immediately preceding detailed instruction,
// which after a functional period does not exist. It reports whether
// the program halted.
func (c *CPU) RunDetailedFor(n uint64) (bool, error) {
	c.lastLoad = -1
	c.lastExc, c.excRepet = 0, 0
	target := c.Stats.Instrs + n
	for !c.halted {
		if err := c.Step(); err != nil {
			return false, err
		}
		if c.Cfg.MaxInstr > 0 && c.totalInstrs() >= c.Cfg.MaxInstr {
			return false, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, c.pc)
		}
		if c.Stats.Instrs >= target && !c.inHandler {
			break
		}
	}
	return c.halted, nil
}

// RunDetailedWindow is RunDetailedFor with burst attribution: it retires
// at least n user instructions on the detailed timing engine and
// separately accumulates, into *burstCycles and *burstInstrs, the cost
// of the decompression events serviced inside the window (exception
// entry through iret on the software path; the fill stall plus the
// instruction it unblocks on the hardware path). All charges still land
// in cpu.Stats exactly as a plain detailed run would make them — the
// split only tells the sampled estimator which window cycles are
// steady-state user execution (safe to extrapolate over fast-forwarded
// instructions) and which belong to bursts (already counted exactly).
func (c *CPU) RunDetailedWindow(n uint64, burstCycles, burstInstrs *uint64) (bool, error) {
	c.lastLoad = -1
	c.lastExc, c.excRepet = 0, 0
	target := c.Stats.Instrs + n
	for !c.halted {
		if c.fwouldFault() {
			preC, preI := c.Stats.Cycles, c.Stats.Instrs
			if _, err := c.RunDetailedBurst(); err != nil {
				return false, err
			}
			*burstCycles += c.Stats.Cycles - preC
			*burstInstrs += c.Stats.Instrs - preI
		} else {
			if err := c.Step(); err != nil {
				return false, err
			}
		}
		if c.Cfg.MaxInstr > 0 && c.totalInstrs() >= c.Cfg.MaxInstr {
			return false, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, c.pc)
		}
		if c.Stats.Instrs >= target && !c.inHandler {
			break
		}
	}
	return c.halted, nil
}

// frun is the functional interpreter: one loop, one opcode switch,
// every functional mode. It retires up to `user` user instructions,
// then keeps going until the machine is outside the handler (handler
// instructions never count against the user budget). stopOnFault (the
// sampled driver) returns control — pending=true — before any state
// changes whenever the next fetch would be a decompression event; it
// requires Config.FunctionalWarm.
//
// Fetch resolves through one of five sources, in order: the handler
// predecode inside the handler; the warming path (real I-cache and
// predecode lines) under Config.FunctionalWarm; the compressed-region
// decode cache; the native-extent decode cache; a per-fetch decode for
// code executing anywhere else.
func (c *CPU) frun(user uint64, stopOnFault bool) (bool, bool, error) {
	c.fensure()
	var retired uint64
	budget := ^uint64(0) // remaining MaxInstr allowance; effectively unbounded by default
	if c.Cfg.MaxInstr > 0 {
		t := c.totalInstrs()
		if t >= c.Cfg.MaxInstr {
			return false, false, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, c.pc)
		}
		budget = c.Cfg.MaxInstr - t
	}
	warm := c.Cfg.FunctionalWarm
	slow := warm || stopOnFault
	pc := c.pc

	// The current decode region: a flat predecode array the PC is
	// streaming through (the compressed region, the native extent, or
	// handler RAM). While the PC stays inside it, the fetch prologue is
	// two compares and a validity-byte load; everything else — region
	// transitions, decompression exceptions, code outside any extent —
	// funnels through the resolver below. decBytes == 0 means "no
	// region": every fetch resolves cold.
	var dec []pinstr
	var decOK []uint8
	var decBase, decBytes uint32
	var decComp, decHandler bool

	for !c.halted {
		// Fetch.
		var p *pinstr
		wasHandler := false
		if slow {
			if stopOnFault {
				c.pc = pc
				if c.fwouldFault() {
					return false, true, nil
				}
			}
			if pc&3 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned fetch at %#x", pc)
			}
			if c.inHandler || c.inHandlerRAM(pc) {
				wasHandler = c.inHandler
				if c.hdec != nil && c.inHandlerRAM(pc) {
					p = &c.hdec[(pc-c.handlerPC)>>2]
				} else {
					c.pc = pc
					q, ok, err := c.ffetch(pc)
					if err != nil {
						return false, false, err
					}
					if !ok { // hardware fill materialised the word; retry
						pc = c.pc
						continue
					}
					p = q
				}
			} else {
				c.pc = pc
				q, err := c.ffetchWarm(pc)
				if err != nil {
					return false, false, err
				}
				if q == nil { // a decompression exception redirected the PC
					pc = c.pc
					continue
				}
				p = q
			}
		} else if off := pc - decBase; off < decBytes && off&3 == 0 {
			i := off >> 2
			if decOK[i] != 0 {
				p = &dec[i]
			} else if decComp {
				if c.fsOK[i] == 0 {
					c.pc = pc
					if err := c.fraiseDecompress(pc); err != nil {
						return false, false, err
					}
					pc = c.pc
					decBytes = 0 // the PC moved to the handler region
					continue
				}
				dec[i] = decodeInstr(pc, c.fsWord[i])
				decOK[i] = 1
				p = &dec[i]
			} else {
				if !c.Mem.Backed(pc) {
					c.pc = pc
					return false, false, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
				}
				dec[i] = decodeInstr(pc, c.Mem.ReadWord(pc))
				decOK[i] = 1
				p = &dec[i]
			}
			wasHandler = decHandler
		} else {
			// Region resolver: the PC left the current region (or there
			// was none). Pick the region containing pc, or fall back to a
			// cold single fetch for code outside every extent.
			if pc&3 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned fetch at %#x", pc)
			}
			decBytes = 0
			if c.inHandler || c.inHandlerRAM(pc) {
				wasHandler = c.inHandler
				if c.hdec != nil && c.inHandlerRAM(pc) {
					dec, decOK = c.hdec, c.fhdOK
					decBase, decBytes = c.handlerPC, c.handlerEnd-c.handlerPC
					decComp, decHandler = false, c.inHandler
					p = &dec[(pc-decBase)>>2]
				} else {
					c.pc = pc
					q, ok, err := c.ffetch(pc)
					if err != nil {
						return false, false, err
					}
					if !ok { // exception or hardware fill redirected/filled
						pc = c.pc
						continue
					}
					p = q
				}
			} else if c.InCompressedRegion(pc) {
				dec, decOK = c.fcdec, c.fcOK
				decBase, decBytes = c.compStart, c.compEnd-c.compStart
				decComp, decHandler = true, false
				continue // re-enter the fast path with the new region
			} else if pc >= c.fdBase && pc < c.fdEnd {
				dec, decOK = c.fdec, c.fdOK
				decBase, decBytes = c.fdBase, c.fdEnd-c.fdBase
				decComp, decHandler = false, false
				continue
			} else {
				wasHandler = c.inHandler
				if !c.Mem.Backed(pc) {
					c.pc = pc
					return false, false, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
				}
				c.scratch = decodeInstr(pc, c.Mem.ReadWord(pc))
				p = &c.scratch
			}
		}

		// Execute: architectural semantics only — no cycles, no caches,
		// no predictor, no telemetry, no profilers.
		r := &c.regs[c.bank]
		next := pc + 4

		switch p.op {
		case pSLL:
			c.setr(r, int(p.rd), r[p.rt]<<p.shamt)
		case pSRL:
			c.setr(r, int(p.rd), r[p.rt]>>p.shamt)
		case pSRA:
			c.setr(r, int(p.rd), uint32(int32(r[p.rt])>>p.shamt))
		case pSLLV:
			c.setr(r, int(p.rd), r[p.rt]<<(r[p.rs]&31))
		case pSRLV:
			c.setr(r, int(p.rd), r[p.rt]>>(r[p.rs]&31))
		case pSRAV:
			c.setr(r, int(p.rd), uint32(int32(r[p.rt])>>(r[p.rs]&31)))
		case pJR:
			next = r[p.rs]
		case pJALR:
			c.setr(r, int(p.rd), pc+4)
			next = r[p.rs]
		case pSyscall:
			if err := c.syscall(r); err != nil {
				c.pc = pc
				return false, false, err
			}
		case pBreak:
			c.pc = pc
			return false, false, fmt.Errorf("cpu: break at %#x", pc)
		case pMFHI:
			c.setr(r, int(p.rd), c.hi)
		case pMFLO:
			c.setr(r, int(p.rd), c.lo)
		case pMULT:
			prod := int64(int32(r[p.rs])) * int64(int32(r[p.rt]))
			c.lo, c.hi = uint32(prod), uint32(prod>>32)
		case pMULTU:
			prod := uint64(r[p.rs]) * uint64(r[p.rt])
			c.lo, c.hi = uint32(prod), uint32(prod>>32)
		case pDIV:
			if r[p.rt] != 0 {
				c.lo = uint32(int32(r[p.rs]) / int32(r[p.rt]))
				c.hi = uint32(int32(r[p.rs]) % int32(r[p.rt]))
			}
		case pDIVU:
			if r[p.rt] != 0 {
				c.lo = r[p.rs] / r[p.rt]
				c.hi = r[p.rs] % r[p.rt]
			}
		case pADD:
			c.setr(r, int(p.rd), r[p.rs]+r[p.rt])
		case pSUB:
			c.setr(r, int(p.rd), r[p.rs]-r[p.rt])
		case pAND:
			c.setr(r, int(p.rd), r[p.rs]&r[p.rt])
		case pOR:
			c.setr(r, int(p.rd), r[p.rs]|r[p.rt])
		case pXOR:
			c.setr(r, int(p.rd), r[p.rs]^r[p.rt])
		case pNOR:
			c.setr(r, int(p.rd), ^(r[p.rs] | r[p.rt]))
		case pSLT:
			c.setr(r, int(p.rd), b2u(int32(r[p.rs]) < int32(r[p.rt])))
		case pSLTU:
			c.setr(r, int(p.rd), b2u(r[p.rs] < r[p.rt]))

		case pBLTZ:
			taken := int32(r[p.rs]) < 0
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}
		case pBGEZ:
			taken := int32(r[p.rs]) >= 0
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}
		case pJ:
			next = p.tgt
		case pJAL:
			c.setr(r, 31, pc+4)
			next = p.tgt
		case pBEQ:
			taken := r[p.rs] == r[p.rt]
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}
		case pBNE:
			taken := r[p.rs] != r[p.rt]
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}
		case pBLEZ:
			taken := int32(r[p.rs]) <= 0
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}
		case pBGTZ:
			taken := int32(r[p.rs]) > 0
			if warm {
				c.fwarmBranch(pc, taken)
			}
			if taken {
				next = p.tgt
			}

		case pADDI:
			c.setr(r, int(p.rt), r[p.rs]+p.imm)
		case pSLTI:
			c.setr(r, int(p.rt), b2u(int32(r[p.rs]) < int32(p.imm)))
		case pSLTIU:
			c.setr(r, int(p.rt), b2u(r[p.rs] < p.imm))
		case pANDI:
			c.setr(r, int(p.rt), r[p.rs]&p.imm)
		case pORI:
			c.setr(r, int(p.rt), r[p.rs]|p.imm)
		case pXORI:
			c.setr(r, int(p.rt), r[p.rs]^p.imm)
		case pLUI:
			c.setr(r, int(p.rt), p.imm)

		case pMFC0:
			c.setr(r, int(p.rt), c.c0[p.rd])
		case pMTC0:
			c.c0[p.rd] = r[p.rt]
		case pIRET:
			if !c.inHandler {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: iret outside handler at %#x", pc)
			}
			c.inHandler = false
			c.bank = c.savedBank
			c.c0[6] &^= 1
			next = c.c0[4] // EPC

		case pLB:
			addr := r[p.rs] + p.imm
			if warm {
				c.fwarmLoad(addr)
			}
			c.setr(r, int(p.rt), uint32(int32(int8(c.Mem.LoadByte(addr)))))
		case pLBU:
			addr := r[p.rs] + p.imm
			if warm {
				c.fwarmLoad(addr)
			}
			c.setr(r, int(p.rt), uint32(c.Mem.LoadByte(addr)))
		case pLH:
			addr := r[p.rs] + p.imm
			if warm {
				c.fwarmLoad(addr)
			}
			if addr&1 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned lh at %#x (addr %#x)", pc, addr)
			}
			c.setr(r, int(p.rt), uint32(int32(int16(c.Mem.ReadHalf(addr)))))
		case pLHU:
			addr := r[p.rs] + p.imm
			if warm {
				c.fwarmLoad(addr)
			}
			if addr&1 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned lhu at %#x (addr %#x)", pc, addr)
			}
			c.setr(r, int(p.rt), uint32(c.Mem.ReadHalf(addr)))
		case pLW:
			addr := r[p.rs] + p.imm
			if warm {
				c.fwarmLoad(addr)
			}
			if addr&3 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned lw at %#x (addr %#x)", pc, addr)
			}
			c.setr(r, int(p.rt), c.Mem.ReadWord(addr))

		case pSB:
			addr := r[p.rs] + p.imm
			c.Mem.StoreByte(addr, byte(r[p.rt]))
			c.fstoreData(addr)
		case pSH:
			addr := r[p.rs] + p.imm
			if addr&1 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned sh at %#x (addr %#x)", pc, addr)
			}
			c.Mem.WriteHalf(addr, uint16(r[p.rt]))
			c.fstoreData(addr)
		case pSW:
			addr := r[p.rs] + p.imm
			if addr&3 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned sw at %#x (addr %#x)", pc, addr)
			}
			c.Mem.WriteWord(addr, r[p.rt])
			c.fstoreData(addr)

		case pSWIC:
			addr := r[p.rs] + p.imm
			if addr&3 != 0 {
				c.pc = pc
				return false, false, fmt.Errorf("cpu: unaligned swic at %#x (addr %#x)", pc, addr)
			}
			v := r[p.rt]
			if c.Cfg.FunctionalBreak && c.inHandler {
				// Deliberate fault injection for the equivalence battery's
				// negative control: corrupt the materialised stream.
				v ^= 4
			}
			if warm {
				c.IC.WriteWord(addr, v)
				if !c.Cfg.DisablePredecode {
					c.predecodeSwic(addr)
				}
			}
			c.fsPut(addr, v)

		default:
			c.pc = pc
			return false, false, illegalInstrError(p.raw, pc)
		}

		// Retire.
		if wasHandler {
			c.FStats.HandlerInstrs++
		} else {
			c.FStats.Instrs++
			retired++
			if next != pc+4 && !warm {
				c.FStats.Blocks++
			}
		}
		pc = next
		budget--
		if budget == 0 {
			c.pc = pc
			return false, false, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, pc)
		}
		if retired >= user && !c.inHandler {
			break
		}
	}
	c.pc = pc
	return c.halted, false, nil
}

// ffetchWarm is the detailed fetch path stripped of its timing: same
// I-cache accesses, fills and predecode maintenance, no cycles, no
// stall counters, no telemetry. A nil, nil return means a decompression
// exception was raised instead of delivering an instruction.
func (c *CPU) ffetchWarm(pc uint32) (*pinstr, error) {
	if !c.IC.Access(pc) {
		if c.InCompressedRegion(pc) {
			if c.Cfg.HardwareDecompress {
				if err := c.fhardwareFillWarm(pc); err != nil {
					return nil, err
				}
			} else {
				return nil, c.fraiseDecompress(pc)
			}
		} else {
			base := c.IC.LineBase(pc)
			if !c.Mem.Backed(base) {
				return nil, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
			}
			line := make([]byte, c.Cfg.ICache.LineBytes)
			c.Mem.ReadBlock(base, line)
			c.IC.Fill(base, line)
			c.predecodeFill(base, line)
		}
	}
	if c.Cfg.DisablePredecode {
		w, ok := c.IC.ReadWord(pc)
		if !ok {
			return nil, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
		}
		c.scratch = decodeInstr(pc, w)
		return &c.scratch, nil
	}
	base := c.IC.LineBase(pc)
	if base != c.curBase {
		ln := c.plineFor(base)
		if ln == nil {
			return nil, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
		}
		c.curBase, c.curLine = base, ln
	}
	return &c.curLine[(pc-base)>>2], nil
}

// fhardwareFillWarm is hardwareFill without the cycle charges: the
// native line is built from golden text, installed in the I-cache and
// predecoded; the words are also materialised into the functional store
// so the equivalence oracle sees them.
func (c *CPU) fhardwareFillWarm(pc uint32) error {
	if c.goldenText == nil {
		return fmt.Errorf("cpu: hardware decompression without decompressed text at %#x", pc)
	}
	base := c.IC.LineBase(pc)
	n := c.Cfg.ICache.LineBytes
	line := make([]byte, n)
	for i := 0; i < n; i++ {
		a := base + uint32(i)
		if c.goldenText.Contains(a) {
			line[i] = c.goldenText.Data[a-c.goldenText.Base]
		}
	}
	c.IC.Fill(base, line)
	c.predecodeFill(base, line)
	return c.fhardwareFill(pc)
}

// fwarmLoad is dRead without the stall charge: in warming mode a load
// touches the D-cache and fills it on a miss. Callers guard on
// Cfg.FunctionalWarm so the plain fast-forward path pays no call.
func (c *CPU) fwarmLoad(addr uint32) {
	if !c.DC.Access(addr) {
		c.DC.Fill(c.DC.LineBase(addr), nil)
	}
}

// fwarmBranch trains the branch predictor in warming mode; callers
// guard on Cfg.FunctionalWarm.
func (c *CPU) fwarmBranch(pc uint32, taken bool) {
	c.BP.Update(pc, taken)
}

// ffetch decodes the instruction word at pc for the functional engine's
// cold fetch cases (handler execution, including with DisablePredecode).
// ok is false when a decompression exception or hardware fill was taken
// instead (the PC may now point into the handler).
func (c *CPU) ffetch(pc uint32) (*pinstr, bool, error) {
	switch {
	case c.inHandlerRAM(pc):
		if c.hdec != nil {
			return &c.hdec[(pc-c.handlerPC)>>2], true, nil
		}
		c.scratch = decodeInstr(pc, c.Mem.ReadWord(pc))
		return &c.scratch, true, nil
	case c.InCompressedRegion(pc):
		w, ok := c.fsGet(pc)
		if !ok {
			return nil, false, c.fraiseDecompress(pc)
		}
		c.scratch = decodeInstr(pc, w)
		return &c.scratch, true, nil
	default:
		if !c.Mem.Backed(pc) {
			return nil, false, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
		}
		c.scratch = decodeInstr(pc, c.Mem.ReadWord(pc))
		return &c.scratch, true, nil
	}
}

// fraiseDecompress is the functional decompression exception: identical
// architectural effects to raiseDecompress, no cycle charges. In
// hardware-decompress mode the line is materialised directly instead.
func (c *CPU) fraiseDecompress(pc uint32) error {
	if c.Cfg.HardwareDecompress {
		return c.fhardwareFill(pc)
	}
	if c.inHandler {
		return fmt.Errorf("cpu: nested decompression exception at %#x", pc)
	}
	if pc == c.flastExc && c.FStats.Exceptions > 0 {
		c.fexcRepet++
		if c.fexcRepet >= 2 {
			return fmt.Errorf("cpu: handler failed to fill line for %#x (repeated exception)", pc)
		}
	} else {
		c.flastExc, c.fexcRepet = pc, 0
	}
	c.FStats.Exceptions++
	c.c0[4] = pc // EPC
	c.c0[5] = pc // BADVA
	c.c0[6] |= 1 // StatusEXL
	c.inHandler = true
	c.savedBank = c.bank
	if c.c0[6]&2 != 0 { // shadow register file enabled
		c.bank = 1
	}
	c.pc = c.handlerPC
	return nil
}

// fhardwareFill materialises one I-cache-line-sized chunk of golden
// text into the functional store (the functional mirror of
// hardwareFill).
func (c *CPU) fhardwareFill(pc uint32) error {
	if c.goldenText == nil {
		return fmt.Errorf("cpu: hardware decompression without decompressed text at %#x", pc)
	}
	base := c.IC.LineBase(pc)
	for i := 0; i < c.Cfg.ICache.LineBytes; i += 4 {
		a := base + uint32(i)
		var w uint32
		for b := 0; b < 4; b++ {
			if c.goldenText.Contains(a + uint32(b)) {
				w |= uint32(c.goldenText.Data[a+uint32(b)-c.goldenText.Base]) << (8 * b)
			}
		}
		c.fsPut(a, w)
	}
	return nil
}

// fstoreData performs a functional data store's coherence work:
// handler-RAM predecode patching (shared with the detailed engine) and
// decode-cache invalidation of the stored-to word — O(1) per store, in
// contrast to the old superblock design's global invalidation.
func (c *CPU) fstoreData(addr uint32) {
	c.noteHandlerStore(addr)
	c.finvalWord(addr)
}
