package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/program"
)

// copyHandler is a trivial decompressor: it "decompresses" a missed line
// by copying it word-by-word from a backed golden copy whose base is in
// $c0_dict. It exercises the full exception / swic / iret machinery.
const copyHandler = `
        .section .decompressor, 0x7F000000
        .proc __copy_handler
__copy_handler:
        mfc0  $k1, $c0_badva
        srl   $k1, $k1, 5
        sll   $k1, $k1, 5        # k1 = line base
        mfc0  $k0, $c0_dbase
        subu  $t0, $k1, $k0      # offset into region
        mfc0  $t1, $c0_dict      # golden copy base
        addu  $t1, $t1, $t0
        addiu $t2, $k1, 32       # loop stop
copy:   lw    $t3, 0($t1)
        swic  $t3, 0($k1)
        addiu $t1, $t1, 4
        addiu $k1, $k1, 4
        bne   $k1, $t2, copy
        iret
        .endp
`

// buildCopyCompressed assembles src as a native image, then rebuilds it as
// a "copy-compressed" image: .text becomes a virtual segment at CompBase,
// a golden copy is placed in backed memory, and the copy handler fills
// lines on demand.
func buildCopyCompressed(t *testing.T, src string, shadowRF bool) *program.Image {
	t.Helper()
	native, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := asm.Assemble(copyHandler)
	if err != nil {
		t.Fatal(err)
	}
	text := native.Segment(program.SegText)
	if text.Base != program.CompBase {
		t.Fatalf("test source must place .text at CompBase, got %#x", text.Base)
	}
	goldenBase := uint32(program.CompDataBase)
	im := &program.Image{
		Entry:   native.Entry,
		Symbols: native.Symbols,
		Procs:   native.Procs,
		Compress: &program.CompressionInfo{
			Scheme:    "copy",
			CompStart: text.Base,
			CompEnd:   text.End(),
			DictBase:  goldenBase,
			ShadowRF:  shadowRF,
		},
	}
	for _, s := range native.Segments {
		if s.Name == program.SegText {
			im.Segments = append(im.Segments,
				&program.Segment{Name: program.SegText, Base: s.Base, Data: s.Data, Virtual: true},
				&program.Segment{Name: program.SegDict, Base: goldenBase, Data: s.Data})
			continue
		}
		im.Segments = append(im.Segments, s)
	}
	im.Segments = append(im.Segments, handler.Segment(program.SegDecompressor))
	return im
}

const excProgram = `
        .text 0x00800000
        .proc main
main:   ori   $s0, $zero, 200
        move  $s1, $zero
loop:   jal   work
        addu  $s1, $s1, $v0
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        andi  $a0, $s1, 0x7F
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc work
work:   ori   $t0, $zero, 4
        move  $v0, $zero
w1:     addu  $v0, $v0, $t0
        addiu $t0, $t0, -1
        bgtz  $t0, w1
        jr    $ra
        .endp
`

func runImage(t *testing.T, im *program.Image) (*CPU, int32) {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 10_000_000
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, code
}

func TestDecompressionExceptionPath(t *testing.T) {
	// Native reference run (same code, but .text backed at CompBase).
	nat, err := asm.Assemble(excProgram)
	if err != nil {
		t.Fatal(err)
	}
	cNat, codeNat := runImage(t, nat)

	im := buildCopyCompressed(t, excProgram, true)
	cCmp, codeCmp := runImage(t, im)

	if codeNat != codeCmp {
		t.Fatalf("architectural divergence: native exit %d, compressed exit %d", codeNat, codeCmp)
	}
	if cCmp.Stats.Exceptions == 0 || cCmp.Stats.IMissCompressed == 0 {
		t.Fatalf("no exceptions taken: %+v", cCmp.Stats)
	}
	if cCmp.Stats.HandlerInstrs == 0 {
		t.Fatal("handler executed no instructions")
	}
	if cCmp.Stats.Cycles <= cNat.Stats.Cycles {
		t.Fatalf("compressed run (%d cycles) must be slower than native (%d)",
			cCmp.Stats.Cycles, cNat.Stats.Cycles)
	}
	// User instruction counts must match exactly: decompression is
	// transparent to the program.
	if cCmp.Stats.Instrs != cNat.Stats.Instrs {
		t.Fatalf("user instrs differ: %d vs %d", cCmp.Stats.Instrs, cNat.Stats.Instrs)
	}
}

func TestHandlerFilledLinesMatchGolden(t *testing.T) {
	im := buildCopyCompressed(t, excProgram, true)
	c, _ := runImage(t, im)
	text := im.Segment(program.SegText)
	// Every I-cache line in the compressed region must be byte-identical
	// to the golden program text.
	checked := 0
	for addr := text.Base; addr < text.End(); addr += 32 {
		line := c.IC.LineData(addr)
		if line == nil {
			continue
		}
		checked++
		for i, b := range line {
			a := addr + uint32(i)
			if a >= text.End() {
				break
			}
			if b != text.Data[a-text.Base] {
				t.Fatalf("cache line at %#x byte %d = %#x, want %#x", addr, i, b, text.Data[a-text.Base])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no compressed lines present in the I-cache")
	}
}

// rfProgram is laid out so that $t0 is set in one I-cache line and used in
// the next: the first-touch exception on the second line lands while $t0
// is live, so a handler that clobbers registers corrupts the result.
const rfProgram = `
        .text 0x00800000
        .proc main
main:   ori   $s0, $zero, 10
        move  $s1, $zero
loop:   jal   work
        addu  $s1, $s1, $v0
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        andi  $a0, $s1, 0x7F
        ori   $v0, $zero, 10
        syscall
        .endp
        .align 32
        .proc work
work:   ori   $t0, $zero, 4
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        addu  $v0, $zero, $t0   # first word of the next line
        jr    $ra
        .endp
`

func TestShadowRFIsolation(t *testing.T) {
	// Without the shadow register file, the copy handler (which does not
	// save registers) clobbers $t0..$t3 and corrupts the program: the
	// exit code diverges from the native run. With it, state is isolated.
	nat, err := asm.Assemble(rfProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, want := runImage(t, nat)

	withRF := buildCopyCompressed(t, rfProgram, true)
	_, got := runImage(t, withRF)
	if got != want {
		t.Fatalf("shadow-RF run diverged: %d vs %d", got, want)
	}

	withoutRF := buildCopyCompressed(t, rfProgram, false)
	c, _ := New(DefaultConfig())
	c.Cfg.MaxInstr = 10_000_000
	if err := c.Load(withoutRF); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	// The clobbering handler may cause divergence or a crash; either
	// demonstrates that register isolation matters.
	if err == nil && code == want && c.Stats.Exceptions > 0 {
		t.Fatalf("expected divergence without shadow RF (exceptions=%d)", c.Stats.Exceptions)
	}
}

func TestHandlerThatDoesNotFillFails(t *testing.T) {
	im := buildCopyCompressed(t, excProgram, true)
	// Replace the handler with one that immediately returns.
	broken, err := asm.Assemble(`
        .section .decompressor, 0x7F000000
        .proc __broken
__broken: iret
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range im.Segments {
		if s.Name == program.SegDecompressor {
			im.Segments[i] = broken.Segment(program.SegDecompressor)
		}
	}
	c, _ := New(DefaultConfig())
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "repeated exception") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedExceptionDetected(t *testing.T) {
	im := buildCopyCompressed(t, excProgram, true)
	// A handler that jumps into the compressed region re-raises from
	// inside the handler: must be detected, not loop forever.
	evil, err := asm.Assemble(`
        .section .decompressor, 0x7F000000
        .proc __evil
__evil: mfc0  $k1, $c0_dbase
        jr    $k1
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range im.Segments {
		if s.Name == program.SegDecompressor {
			im.Segments[i] = evil.Segment(program.SegDecompressor)
		}
	}
	c, _ := New(DefaultConfig())
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("err = %v", err)
	}
}

func TestHardwareDecompressMode(t *testing.T) {
	// The same compressed image runs without any handler when the
	// machine models a hardware decompression unit.
	nat, err := asm.Assemble(excProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, want := runImage(t, nat)

	im := buildCopyCompressed(t, excProgram, true)
	// Drop the handler entirely: hardware mode must not need it.
	var segs []*program.Segment
	for _, s := range im.Segments {
		if s.Name != program.SegDecompressor {
			segs = append(segs, s)
		}
	}
	im.Segments = segs

	cfg := DefaultConfig()
	cfg.HardwareDecompress = true
	cfg.HWDecompressCycles = 10
	cfg.MaxInstr = 10_000_000
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != want {
		t.Fatalf("hardware mode diverged: %d vs %d", code, want)
	}
	if c.Stats.Exceptions != 0 || c.Stats.HandlerInstrs != 0 {
		t.Fatalf("hardware mode must not take exceptions: %+v", c.Stats)
	}
	if c.Stats.IMissCompressed == 0 {
		t.Fatal("no compressed misses recorded")
	}
	// Without hardware mode, the handler-less image must fail to load.
	c2, _ := New(DefaultConfig())
	if err := c2.Load(im); err == nil {
		t.Fatal("software mode without a handler must be rejected")
	}
}
