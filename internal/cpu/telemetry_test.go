package cpu

import (
	"testing"

	"repro/internal/asm"
)

// TestAttachTraceMultiplexes is the hook-composition regression: every
// tracer attached with AttachTrace must see every commit, in order,
// regardless of attach order.
func TestAttachTraceMultiplexes(t *testing.T) {
	im, err := asm.Assemble(excProgram)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 1_000_000
	var a, b uint64
	var firstPCs, secondPCs []uint32
	c.AttachTrace(func(pc, instr uint32, handler bool) {
		a++
		if len(firstPCs) < 8 {
			firstPCs = append(firstPCs, pc)
		}
	})
	c.AttachTrace(func(pc, instr uint32, handler bool) {
		b++
		if len(secondPCs) < 8 {
			secondPCs = append(secondPCs, pc)
		}
	})
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	total := c.Stats.Instrs + c.Stats.HandlerInstrs
	if a != total || b != total {
		t.Fatalf("tracers saw %d/%d commits, want %d each", a, b, total)
	}
	for i := range firstPCs {
		if firstPCs[i] != secondPCs[i] {
			t.Fatalf("tracers diverged at commit %d: %#x vs %#x", i, firstPCs[i], secondPCs[i])
		}
	}
}

// TestExcCycleAccounting checks the exception latency statistics on a
// nested-free sequence of decompression exceptions (the only kind the
// machine permits — nesting is a simulation error).
func TestExcCycleAccounting(t *testing.T) {
	im := buildCopyCompressed(t, excProgram, false)
	c, _ := runImage(t, im)
	s := c.Stats
	if s.Exceptions == 0 {
		t.Fatal("no exceptions taken")
	}
	if s.ExcCyclesTotal == 0 || s.ExcCyclesMax == 0 {
		t.Fatalf("latency totals empty: %+v", s)
	}
	avg := s.AvgExcCycles()
	if avg <= 0 || avg > float64(s.ExcCyclesMax) {
		t.Fatalf("avg %f outside (0, max=%d]", avg, s.ExcCyclesMax)
	}
	if got := avg * float64(s.Exceptions); got != float64(s.ExcCyclesTotal) {
		t.Fatalf("avg*count = %f, total = %d", got, s.ExcCyclesTotal)
	}
	if s.ExcCyclesMax > s.ExcCyclesTotal {
		t.Fatalf("max %d exceeds total %d", s.ExcCyclesMax, s.ExcCyclesTotal)
	}
	// Every service interval runs the same straight-line copy handler, so
	// the worst case can exceed the mean only through cache and bus
	// timing, never by more than the service itself takes.
	if float64(s.ExcCyclesMax) > 4*avg {
		t.Fatalf("max %d implausibly far from mean %f", s.ExcCyclesMax, avg)
	}
}

// TestCPIStackDecomposition checks the attribution on both sides of the
// compression boundary: a native run charges nothing to handler or
// exception service, a compressed run charges both, and each attributed
// sum equals the cycle total exactly.
func TestCPIStackDecomposition(t *testing.T) {
	nativeSrc := excProgram // same code, backed .text
	nat, err := asm.Assemble(nativeSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Force the native image into backed memory (excProgram places .text
	// at CompBase, which Load treats as plain memory absent Compress).
	cNat, _ := runImage(t, nat)
	if got := cNat.Stats.CPIStack.Total(); got != cNat.Stats.Cycles {
		t.Fatalf("native stack sums to %d, cycles %d", got, cNat.Stats.Cycles)
	}
	if cNat.Stats.CPIStack[CycleHandler] != 0 || cNat.Stats.CPIStack[CycleExcService] != 0 {
		t.Fatalf("native run charged handler/exception cycles: %v", cNat.Stats.CPIStack)
	}
	if cNat.Stats.CPIStack[CycleUser] != cNat.Stats.Instrs {
		t.Fatalf("user-execute %d != instrs %d", cNat.Stats.CPIStack[CycleUser], cNat.Stats.Instrs)
	}

	cComp, _ := runImage(t, buildCopyCompressed(t, excProgram, false))
	st := cComp.Stats
	if got := st.CPIStack.Total(); got != st.Cycles {
		t.Fatalf("compressed stack sums to %d, cycles %d", got, st.Cycles)
	}
	if st.CPIStack[CycleHandler] == 0 || st.CPIStack[CycleExcService] == 0 {
		t.Fatalf("compressed run charged no handler/exception cycles: %v", st.CPIStack)
	}
	if err := st.CPIStack.Check(st.Cycles); err != nil {
		t.Fatal(err)
	}
	if err := st.CPIStack.Check(st.Cycles + 1); err == nil {
		t.Fatal("Check accepted a wrong total")
	}
}
