package cpu

import (
	"sort"

	"repro/internal/program"
)

// ProcProfile attributes dynamic instruction counts, non-speculative
// I-cache misses and call edges to the procedures of an image. It
// implements CallProfiler.
type ProcProfile struct {
	Procs  []program.Procedure
	Execs  []uint64
	Misses []uint64
	// Calls counts dynamic calls between procedure pairs, keyed by
	// [caller index, callee index]. The code-placement optimiser uses it
	// as the affinity graph.
	Calls map[[2]int]uint64

	last int // memo: most events hit the same procedure as the previous one
}

// NewProcProfile builds a profile over the image's procedure table.
func NewProcProfile(im *program.Image) *ProcProfile {
	procs := append([]program.Procedure(nil), im.Procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Addr < procs[j].Addr })
	return &ProcProfile{
		Procs:  procs,
		Execs:  make([]uint64, len(procs)),
		Misses: make([]uint64, len(procs)),
		Calls:  make(map[[2]int]uint64),
	}
}

func (p *ProcProfile) index(addr uint32) int {
	if p.last < len(p.Procs) && p.Procs[p.last].Contains(addr) {
		return p.last
	}
	i := sort.Search(len(p.Procs), func(i int) bool {
		return p.Procs[i].Addr+p.Procs[i].Size > addr
	})
	if i < len(p.Procs) && p.Procs[i].Contains(addr) {
		p.last = i
		return i
	}
	return -1
}

// CountInstr attributes one committed instruction at pc.
func (p *ProcProfile) CountInstr(pc uint32) {
	if i := p.index(pc); i >= 0 {
		p.Execs[i]++
	}
}

// CountMiss attributes one non-speculative I-cache miss at pc.
func (p *ProcProfile) CountMiss(pc uint32) {
	if i := p.index(pc); i >= 0 {
		p.Misses[i]++
	}
}

// CountCall attributes one dynamic call from the instruction at from to
// the procedure containing to.
func (p *ProcProfile) CountCall(from, to uint32) {
	fi := p.index(from)
	ti := p.index(to)
	if fi >= 0 && ti >= 0 {
		p.Calls[[2]int{fi, ti}]++
	}
}

// ByName returns the exec and miss counts of the named procedure.
func (p *ProcProfile) ByName(name string) (execs, misses uint64) {
	for i := range p.Procs {
		if p.Procs[i].Name == name {
			return p.Execs[i], p.Misses[i]
		}
	}
	return 0, 0
}

// TotalExecs returns the sum of attributed instruction counts.
func (p *ProcProfile) TotalExecs() uint64 {
	var n uint64
	for _, v := range p.Execs {
		n += v
	}
	return n
}

// TotalMisses returns the sum of attributed miss counts.
func (p *ProcProfile) TotalMisses() uint64 {
	var n uint64
	for _, v := range p.Misses {
		n += v
	}
	return n
}
