package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// exitWith wraps a fragment with an exit(code-in-$a0) epilogue.
func exitWith(body string) string {
	return ".text\n.proc main\nmain:\n" + body + `
        ori   $v0, $zero, 10
        syscall
        .endp
`
}

func TestMtc0Mfc0RoundTrip(t *testing.T) {
	_, code, _ := run(t, exitWith(`
        li    $t0, 0x12340000
        mtc0  $t0, $c0_dict
        mfc0  $t1, $c0_dict
        subu  $a0, $t1, $t0
`))
	if code != 0 {
		t.Fatalf("mtc0/mfc0 round trip failed: %d", code)
	}
}

func TestSltVariants(t *testing.T) {
	_, code, _ := run(t, exitWith(`
        li    $t0, -1
        ori   $t1, $zero, 1
        slt   $t2, $t0, $t1      # signed: -1 < 1 -> 1
        sltu  $t3, $t0, $t1      # unsigned: 0xFFFFFFFF < 1 -> 0
        slti  $t4, $t0, 0        # -1 < 0 -> 1
        sltiu $t5, $t1, 2        # 1 < 2 -> 1
        addu  $a0, $t2, $t4
        addu  $a0, $a0, $t5
        addiu $a0, $a0, -3       # expect 0
        addu  $a0, $a0, $t3      # plus 0
`))
	if code != 0 {
		t.Fatalf("slt semantics wrong: %d", code)
	}
}

func TestLogicalOps(t *testing.T) {
	_, code, _ := run(t, exitWith(`
        li    $t0, 0xF0F0F0F0
        li    $t1, 0x0F0F0F0F
        or    $t2, $t0, $t1      # 0xFFFFFFFF
        and   $t3, $t0, $t1      # 0
        nor   $t4, $t0, $t1      # 0
        xor   $t5, $t0, $t1      # 0xFFFFFFFF
        xor   $t6, $t2, $t5      # 0
        addu  $a0, $t3, $t4
        addu  $a0, $a0, $t6
`))
	if code != 0 {
		t.Fatalf("logical ops wrong: %d", code)
	}
}

func TestMultuDivu(t *testing.T) {
	_, code, out := run(t, exitWith(`
        li    $t0, 0x80000000
        ori   $t1, $zero, 2
        multu $t0, $t1
        mfhi  $a0                # expect 1
        ori   $v0, $zero, 1
        syscall
        li    $t2, 100
        ori   $t3, $zero, 8
        divu  $t2, $t3
        mflo  $a0                # 12
        ori   $v0, $zero, 1
        syscall
        mfhi  $a0                # 4
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
`))
	if code != 0 || out != "1124" {
		t.Fatalf("multu/divu wrong: code=%d out=%q", code, out)
	}
}

func TestDivByZeroIsQuiet(t *testing.T) {
	// MIPS leaves HI/LO undefined on divide-by-zero; we define them as
	// unchanged, and the program must not trap.
	_, code, _ := run(t, exitWith(`
        ori   $t0, $zero, 7
        move  $t1, $zero
        div   $t0, $t1
        divu  $t0, $t1
        move  $a0, $zero
`))
	if code != 0 {
		t.Fatal("div by zero must not trap")
	}
}

func TestBltzBgez(t *testing.T) {
	_, code, _ := run(t, exitWith(`
        li    $t0, -5
        move  $a0, $zero
        bltz  $t0, n1
        ori   $a0, $zero, 1      # must be skipped
n1:     bgez  $t0, bad
        ori   $t1, $zero, 3
        bgez  $t1, n2
bad:    ori   $a0, $zero, 1
n2:
`))
	if code != 0 {
		t.Fatalf("bltz/bgez wrong: %d", code)
	}
}

func TestJalrLinksCorrectly(t *testing.T) {
	_, code, _ := run(t, `
        .text
        .proc main
main:   la    $t0, target
        jalr  $t1, $t0
after:  move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc target
target: la    $t2, after
        beq   $t1, $t2, good
        ori   $a0, $zero, 1
        ori   $v0, $zero, 10
        syscall
good:   jr    $t1
        .endp
`)
	if code != 0 {
		t.Fatal("jalr link register wrong")
	}
}

func errRun(t *testing.T, src string) error {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	c.Cfg.MaxInstr = 100000
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	return err
}

func TestUnalignedAccessErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"lw", "li $t0, 0x20000001\nlw $t1, 0($t0)"},
		{"lh", "li $t0, 0x20000001\nlh $t1, 0($t0)"},
		{"lhu", "li $t0, 0x20000003\nlhu $t1, 0($t0)"},
		{"sw", "li $t0, 0x20000002\nsw $t1, 0($t0)"},
		{"sh", "li $t0, 0x20000001\nsh $t1, 0($t0)"},
	}
	for _, c := range cases {
		err := errRun(t, exitWith(c.body))
		if err == nil || !strings.Contains(err.Error(), "unaligned") {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestUnknownSyscallErrors(t *testing.T) {
	err := errRun(t, exitWith("ori $v0, $zero, 999\nsyscall"))
	if err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Fatalf("err = %v", err)
	}
}

func TestBreakErrors(t *testing.T) {
	err := errRun(t, exitWith("break"))
	if err == nil || !strings.Contains(err.Error(), "break") {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalInstructionErrors(t *testing.T) {
	im, err := asm.Assemble(exitWith("nop"))
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the nop with an illegal encoding (opcode 0x3F).
	text := im.Segments[0]
	text.SetWord(im.Entry, 0xFC000000)
	c, _ := New(DefaultConfig())
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "illegal opcode") {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	_, code, _ := run(t, exitWith(`
        ori   $zero, $zero, 0xFFFF
        addiu $zero, $zero, 100
        move  $a0, $zero
`))
	if code != 0 {
		t.Fatal("$zero must stay zero")
	}
}

func TestTraceHookSeesInstructions(t *testing.T) {
	im, err := asm.Assemble(exitWith("nop\nnop"))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	var got []uint32
	c.Trace = func(pc, w uint32, handler bool) {
		got = append(got, w)
		if handler {
			t.Error("no handler in this test")
		}
	}
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // nop nop ori syscall
		t.Fatalf("trace saw %d instructions", len(got))
	}
	if got[0] != isa.NOP {
		t.Fatalf("first traced word %#x", got[0])
	}
}

func TestCallProfilerReceivesEdges(t *testing.T) {
	im, err := asm.Assemble(`
        .text
        .proc main
main:   ori   $s0, $zero, 5
loop:   jal   callee
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc callee
callee: jr    $ra
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	prof := NewProcProfile(im)
	c.Prof = prof
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for k, v := range prof.Calls {
		if prof.Procs[k[0]].Name == "main" && prof.Procs[k[1]].Name == "callee" {
			total += v
		}
	}
	if total != 5 {
		t.Fatalf("main->callee edges = %d, want 5", total)
	}
}
