package cpu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// The predecoded-instruction cache.
//
// The paper's premise is that decompression cost is paid once per
// I-cache fill while steady-state execution runs at native speed; the
// simulator mirrors that structure on the host axis. Every line is
// decoded into pinstr records exactly once — when it enters the
// I-cache (hardware fill, hardware decompression, or a handler swic) —
// and the per-cycle hot loop dispatches on a dense opcode instead of
// re-extracting isa fields from the raw word.
//
// Coherence rule: predecoded content may only be consulted for
// addresses the I-cache currently holds, and every operation that
// changes I-cache line content invalidates or re-predecodes it. There
// are exactly two such operations in the simulator: Cache.Fill
// re-predecodes eagerly (predecodeFill — the data is in hand), and
// Cache.WriteWord (swic) invalidates the written line, which is then
// decoded lazily on its next fetch (predecodeSwic / plineFor) so a
// line the decompressor writes word-by-word is decoded once, not once
// per word. Handler RAM is not cached, so it is predecoded once at
// Load and patched on stores into [handlerPC, handlerEnd)
// (noteHandlerStore). Entries for evicted lines may go stale in the
// map, but they are unreachable: a fetch of that base misses, and the
// refill re-predecodes.
//
// Config.PredecodeCheck turns every fetch into a coherence oracle
// (cached record vs a fresh decode of the backing word);
// Config.DisablePredecode forces the reference decode-every-cycle
// path. Both run the same execute engine, so the timing model cannot
// drift between them.

// pop is the dense dispatch opcode of a predecoded instruction.
type pop uint8

const (
	pIllegal pop = iota
	pSLL
	pSRL
	pSRA
	pSLLV
	pSRLV
	pSRAV
	pJR
	pJALR
	pSyscall
	pBreak
	pMFHI
	pMFLO
	pMULT
	pMULTU
	pDIV
	pDIVU
	pADD
	pSUB
	pAND
	pOR
	pXOR
	pNOR
	pSLT
	pSLTU
	pBLTZ
	pBGEZ
	pJ
	pJAL
	pBEQ
	pBNE
	pBLEZ
	pBGTZ
	pADDI
	pSLTI
	pSLTIU
	pANDI
	pORI
	pXORI
	pLUI
	pMFC0
	pMTC0
	pIRET
	pLB
	pLBU
	pLH
	pLHU
	pLW
	pSB
	pSH
	pSW
	pSWIC
)

// pinstr is one predecoded instruction. It is a plain comparable value
// (PredecodeCheck relies on ==) holding everything the execute engine
// needs without touching the raw encoding: operand register numbers,
// the load-use hazard sources, the op-specific immediate and the
// absolute control-flow target (both computable at decode time because
// a record is bound to its address).
type pinstr struct {
	op    pop
	rs    uint8
	rt    uint8
	rd    uint8 // pre-masked to 0..7 for mfc0/mtc0
	shamt uint8
	srcA  int8 // isa.SrcRegs, for the load-use interlock
	srcB  int8
	ldst  int8   // isa.LoadDest
	imm   uint32 // op-specific: sign- or zero-extended, or lui value
	tgt   uint32 // absolute branch/jump target
	raw   uint32 // original encoding (tracing, errors, coherence check)
}

// decodeInstr decodes the word at pc into a predecoded record. It is
// total: unrecognised encodings yield pIllegal and the execute engine
// reconstructs the legacy error text from raw.
func decodeInstr(pc, w uint32) pinstr {
	a, b := isa.SrcRegs(w)
	p := pinstr{
		rs:    uint8(isa.Rs(w)),
		rt:    uint8(isa.Rt(w)),
		rd:    uint8(isa.Rd(w)),
		shamt: uint8(isa.Shamt(w)),
		srcA:  int8(a),
		srcB:  int8(b),
		ldst:  int8(isa.LoadDest(w)),
		raw:   w,
	}
	switch isa.Op(w) {
	case isa.OpSpecial:
		switch isa.Funct(w) {
		case isa.FnSLL:
			p.op = pSLL
		case isa.FnSRL:
			p.op = pSRL
		case isa.FnSRA:
			p.op = pSRA
		case isa.FnSLLV:
			p.op = pSLLV
		case isa.FnSRLV:
			p.op = pSRLV
		case isa.FnSRAV:
			p.op = pSRAV
		case isa.FnJR:
			p.op = pJR
		case isa.FnJALR:
			p.op = pJALR
		case isa.FnSYSCALL:
			p.op = pSyscall
		case isa.FnBREAK:
			p.op = pBreak
		case isa.FnMFHI:
			p.op = pMFHI
		case isa.FnMFLO:
			p.op = pMFLO
		case isa.FnMULT:
			p.op = pMULT
		case isa.FnMULTU:
			p.op = pMULTU
		case isa.FnDIV:
			p.op = pDIV
		case isa.FnDIVU:
			p.op = pDIVU
		case isa.FnADD, isa.FnADDU:
			p.op = pADD
		case isa.FnSUB, isa.FnSUBU:
			p.op = pSUB
		case isa.FnAND:
			p.op = pAND
		case isa.FnOR:
			p.op = pOR
		case isa.FnXOR:
			p.op = pXOR
		case isa.FnNOR:
			p.op = pNOR
		case isa.FnSLT:
			p.op = pSLT
		case isa.FnSLTU:
			p.op = pSLTU
		}
	case isa.OpRegImm:
		switch isa.Rt(w) {
		case isa.RtBLTZ:
			p.op = pBLTZ
		case isa.RtBGEZ:
			p.op = pBGEZ
		}
		p.tgt = isa.BranchTarget(pc, w)
	case isa.OpJ:
		p.op, p.tgt = pJ, isa.JumpTarget(pc, w)
	case isa.OpJAL:
		p.op, p.tgt = pJAL, isa.JumpTarget(pc, w)
	case isa.OpBEQ:
		p.op, p.tgt = pBEQ, isa.BranchTarget(pc, w)
	case isa.OpBNE:
		p.op, p.tgt = pBNE, isa.BranchTarget(pc, w)
	case isa.OpBLEZ:
		p.op, p.tgt = pBLEZ, isa.BranchTarget(pc, w)
	case isa.OpBGTZ:
		p.op, p.tgt = pBGTZ, isa.BranchTarget(pc, w)
	case isa.OpADDI, isa.OpADDIU:
		p.op, p.imm = pADDI, uint32(isa.SImm(w))
	case isa.OpSLTI:
		p.op, p.imm = pSLTI, uint32(isa.SImm(w))
	case isa.OpSLTIU:
		p.op, p.imm = pSLTIU, uint32(isa.SImm(w))
	case isa.OpANDI:
		p.op, p.imm = pANDI, isa.Imm(w)
	case isa.OpORI:
		p.op, p.imm = pORI, isa.Imm(w)
	case isa.OpXORI:
		p.op, p.imm = pXORI, isa.Imm(w)
	case isa.OpLUI:
		p.op, p.imm = pLUI, isa.Imm(w)<<16
	case isa.OpCOP0:
		switch isa.Rs(w) {
		case isa.CopMFC0:
			p.op, p.rd = pMFC0, uint8(isa.Rd(w)&7)
		case isa.CopMTC0:
			p.op, p.rd = pMTC0, uint8(isa.Rd(w)&7)
		case isa.CopCO:
			if isa.Funct(w) == isa.FnIRET {
				p.op = pIRET
			}
		}
	case isa.OpLB:
		p.op, p.imm = pLB, uint32(isa.SImm(w))
	case isa.OpLBU:
		p.op, p.imm = pLBU, uint32(isa.SImm(w))
	case isa.OpLH:
		p.op, p.imm = pLH, uint32(isa.SImm(w))
	case isa.OpLHU:
		p.op, p.imm = pLHU, uint32(isa.SImm(w))
	case isa.OpLW:
		p.op, p.imm = pLW, uint32(isa.SImm(w))
	case isa.OpSB:
		p.op, p.imm = pSB, uint32(isa.SImm(w))
	case isa.OpSH:
		p.op, p.imm = pSH, uint32(isa.SImm(w))
	case isa.OpSW:
		p.op, p.imm = pSW, uint32(isa.SImm(w))
	case isa.OpSWIC:
		p.op, p.imm = pSWIC, uint32(isa.SImm(w))
	}
	return p
}

// decodeLine predecodes one full I-cache line.
func decodeLine(base uint32, data []byte) []pinstr {
	ins := make([]pinstr, len(data)/4)
	for i := range ins {
		a := base + uint32(i*4)
		ins[i] = decodeInstr(a, binary.LittleEndian.Uint32(data[i*4:]))
	}
	return ins
}

// curBaseInvalid is an unaligned sentinel for "no current line".
const curBaseInvalid uint32 = 1

// resetPredecode clears all predecoded state (called from Load).
func (c *CPU) resetPredecode() {
	c.pdec = make(map[uint32][]pinstr)
	c.curBase = curBaseInvalid
	c.curLine = nil
	c.swicBase = curBaseInvalid
	c.hdec = nil
}

// predecodeHandler decodes the decompression handler's RAM once; the
// handler executes from uncached RAM, so this is the only decode it
// ever needs unless a store patches it (noteHandlerStore).
func (c *CPU) predecodeHandler() {
	if c.handlerPC == 0 || c.handlerEnd <= c.handlerPC || c.handlerPC&3 != 0 {
		return
	}
	n := int((c.handlerEnd - c.handlerPC + 3) / 4)
	c.hdec = make([]pinstr, n)
	for i := 0; i < n; i++ {
		a := c.handlerPC + uint32(i*4)
		c.hdec[i] = decodeInstr(a, c.Mem.ReadWord(a))
	}
}

// predecodeFill re-decodes a line just installed by Cache.Fill.
func (c *CPU) predecodeFill(base uint32, data []byte) {
	if c.Cfg.DisablePredecode {
		return
	}
	ln := decodeLine(base, data)
	c.pdec[base] = ln
	if c.curBase == base {
		c.curLine = ln
	}
	if c.swicBase == base {
		// The line is coherent again; a future swic must not be skipped.
		c.swicBase = curBaseInvalid
	}
}

// predecodeSwic keeps the predecoded image coherent with a swic write:
// the written line's records are invalidated and rebuilt lazily on its
// next fetch (plineFor), so a line the decompressor writes word-by-word
// is decoded once, not once per word. swicBase caches the line being
// written: all but the first word of a line return after one compare.
// plineFor clears it before rebuilding, so a later swic to the same
// (now re-decoded) line invalidates again instead of being skipped.
func (c *CPU) predecodeSwic(addr uint32) {
	base := c.IC.LineBase(addr)
	if base == c.swicBase {
		return
	}
	delete(c.pdec, base)
	c.swicBase = base
	if c.curBase == base {
		c.curBase, c.curLine = curBaseInvalid, nil
	}
}

// plineFor returns the predecoded line at base, building it from the
// cache contents when absent — swic-written lines (decoded lazily here,
// once per fill) and lines installed behind the simulator's back (tests
// poking the I-cache directly).
func (c *CPU) plineFor(base uint32) []pinstr {
	if ln := c.pdec[base]; ln != nil {
		return ln
	}
	data := c.IC.LineData(base)
	if data == nil {
		return nil
	}
	ln := decodeLine(base, data)
	c.pdec[base] = ln
	if c.swicBase == base {
		c.swicBase = curBaseInvalid
	}
	return ln
}

// noteHandlerStore re-predecodes the handler-RAM word a store just
// modified. Cheap range check on the hot store path; sb/sh/sw cannot
// cross a word boundary (sh/sw alignment is enforced before this).
func (c *CPU) noteHandlerStore(addr uint32) {
	if c.hdec == nil || addr < c.handlerPC || addr >= c.handlerEnd {
		return
	}
	a := addr &^ 3
	if i := int((a - c.handlerPC) >> 2); i < len(c.hdec) {
		c.hdec[i] = decodeInstr(a, c.Mem.ReadWord(a))
	}
}

// checkPredecode is the PredecodeCheck oracle: the cached record must
// equal a fresh decode of the word the backing store currently holds.
func (c *CPU) checkPredecode(p *pinstr, pc, w uint32) error {
	if fresh := decodeInstr(pc, w); *p != fresh {
		return fmt.Errorf("cpu: predecode cache stale at %#x: cached %#x, backing %#x", pc, p.raw, w)
	}
	return nil
}
