package cpu

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
)

func run(t *testing.T, src string) (*CPU, int32, string) {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	c.Cfg.MaxInstr = 10_000_000
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	code, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, code, out.String()
}

func TestArithmeticAndExit(t *testing.T) {
	_, code, _ := run(t, `
        .text
        .proc main
main:   ori   $t0, $zero, 6
        ori   $t1, $zero, 7
        mult  $t0, $t1
        mflo  $a0
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
}

func TestLoopAndOutput(t *testing.T) {
	c, code, out := run(t, `
        .text
        .proc main
main:   ori   $s0, $zero, 5
        move  $s1, $zero
loop:   addu  $s1, $s1, $s0
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        move  $a0, $s1
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if code != 0 || out != "15" {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if c.Stats.Instrs == 0 || c.Stats.Cycles < c.Stats.Instrs {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestRecursionAndMemory(t *testing.T) {
	_, code, _ := run(t, `
        .text
        .proc main
main:   ori   $a0, $zero, 10
        jal   fib
        move  $a0, $v0
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc fib
fib:    slti  $t0, $a0, 2
        beq   $t0, $zero, rec
        move  $v0, $a0
        jr    $ra
rec:    addiu $sp, $sp, -12
        sw    $ra, 8($sp)
        sw    $a0, 4($sp)
        addiu $a0, $a0, -1
        jal   fib
        sw    $v0, 0($sp)
        lw    $a0, 4($sp)
        addiu $a0, $a0, -2
        jal   fib
        lw    $t0, 0($sp)
        addu  $v0, $v0, $t0
        lw    $ra, 8($sp)
        addiu $sp, $sp, 12
        jr    $ra
        .endp
`)
	if code != 55 {
		t.Fatalf("fib(10) = %d, want 55", code)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	_, code, _ := run(t, `
        .data
b:      .byte 0x80
        .align 2
h:      .half 0x8000
        .align 4
w:      .word 0x80000000
        .text
        .proc main
main:   la    $t9, b
        lb    $t0, 0($t9)      # sign-extended: 0xFFFFFF80
        lbu   $t1, 0($t9)      # zero-extended: 0x80
        la    $t9, h
        lh    $t2, 0($t9)      # 0xFFFF8000
        lhu   $t3, 0($t9)      # 0x8000
        la    $t9, w
        lw    $t4, 0($t9)
        # verify: t0+t1 = 0xFFFFFF80+0x80 = 0 mod 2^32
        addu  $t5, $t0, $t1
        bne   $t5, $zero, fail
        # t2 + t3 = 0xFFFF8000 + 0x8000 = 0 mod 2^32
        addu  $t5, $t2, $t3
        bne   $t5, $zero, fail
        # t4 + t4 = 0
        addu  $t5, $t4, $t4
        bne   $t5, $zero, fail
        # store round trip
        la    $t9, w
        li    $t6, 0x12345678
        sw    $t6, 0($t9)
        lw    $t7, 0($t9)
        bne   $t7, $t6, fail
        sh    $t6, 0($t9)
        lhu   $t8, 0($t9)
        ori   $t5, $zero, 0x5678
        bne   $t8, $t5, fail
        sb    $t6, 0($t9)
        lbu   $t8, 0($t9)
        ori   $t5, $zero, 0x78
        bne   $t8, $t5, fail
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
fail:   ori   $a0, $zero, 1
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if code != 0 {
		t.Fatal("width/extension semantics wrong")
	}
}

func TestShiftVariants(t *testing.T) {
	_, code, _ := run(t, `
        .text
        .proc main
main:   li    $t0, 0x80000000
        sra   $t1, $t0, 31      # 0xFFFFFFFF
        addiu $t2, $t1, 1
        bne   $t2, $zero, fail
        srl   $t1, $t0, 31      # 1
        ori   $t3, $zero, 1
        bne   $t1, $t3, fail
        ori   $t4, $zero, 4
        sllv  $t5, $t3, $t4     # 16
        ori   $t6, $zero, 16
        bne   $t5, $t6, fail
        srav  $t7, $t0, $t4     # 0xF8000000
        lui   $t8, 0xF800
        bne   $t7, $t8, fail
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
fail:   ori   $a0, $zero, 1
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if code != 0 {
		t.Fatal("shift semantics wrong")
	}
}

func TestDivAndHex(t *testing.T) {
	_, code, out := run(t, `
        .text
        .proc main
main:   li    $t0, -100
        ori   $t1, $zero, 7
        div   $t0, $t1
        mflo  $a0              # -14
        ori   $v0, $zero, 1
        syscall
        ori   $a0, $zero, ','
        ori   $v0, $zero, 11
        syscall
        mfhi  $a0              # -2
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if code != 0 || out != "-14,-2" {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintString(t *testing.T) {
	_, _, out := run(t, `
        .data
msg:    .asciiz "hello, world"
        .text
        .proc main
main:   la    $a0, msg
        ori   $v0, $zero, 4
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	if out != "hello, world" {
		t.Fatalf("out = %q", out)
	}
}

func TestTimingAccounting(t *testing.T) {
	c, _, _ := run(t, `
        .text
        .proc main
main:   li    $t0, 1000
loop:   addiu $t0, $t0, -1
        bgtz  $t0, loop
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
`)
	s := c.Stats
	if s.Instrs < 2000 {
		t.Fatalf("instrs = %d", s.Instrs)
	}
	// Tight loop in cache: CPI must be close to 1 (a few misses + the
	// final mispredict).
	cpi := float64(s.Cycles) / float64(s.Instrs)
	if cpi > 1.2 {
		t.Fatalf("CPI = %.2f, want near 1", cpi)
	}
	if s.IMissNative == 0 {
		t.Fatal("cold misses expected")
	}
	if s.IMissCompressed != 0 || s.Exceptions != 0 {
		t.Fatal("no compressed region in this test")
	}
}

func TestIretOutsideHandlerErrors(t *testing.T) {
	im, err := asm.Assemble(`
        .text
        .proc main
main:   iret
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "iret outside handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchUnmappedErrors(t *testing.T) {
	im, err := asm.Assemble(`
        .text
        .proc main
main:   li   $t0, 0x30000000
        jr   $t0
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("err = %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	im, err := asm.Assemble(`
        .text
        .proc main
main:   b main
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	c.Cfg.MaxInstr = 1000
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestProcProfileAttribution(t *testing.T) {
	im, err := asm.Assemble(`
        .text
        .proc main
main:   ori   $s0, $zero, 50
loop:   jal   work
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc work
work:   ori   $t0, $zero, 3
w1:     addiu $t0, $t0, -1
        bgtz  $t0, w1
        jr    $ra
        .endp
`)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(DefaultConfig())
	prof := NewProcProfile(im)
	c.Prof = prof
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	mainExecs, _ := prof.ByName("main")
	workExecs, _ := prof.ByName("work")
	if workExecs <= mainExecs {
		t.Fatalf("work (%d) should dominate main (%d)", workExecs, mainExecs)
	}
	if prof.TotalExecs() != c.Stats.Instrs {
		t.Fatalf("profile total %d != committed %d", prof.TotalExecs(), c.Stats.Instrs)
	}
}
