package cpu

// Full-machine-state capture and restore. MachineState covers every
// field of the CPU that influences future execution or measurement:
// both register banks, CP0, PC/HI/LO, handler and compressed-region
// geometry, the golden decompressed text, the pipeline-local hazard
// and exception-guard state, both engines' statistics, and the
// functional engine's materialised code store. The predecode caches
// (pdec/curLine/hdec/swicBase) and the functional decode caches are
// pure caches over state captured elsewhere (the I-cache, memory, the
// functional store) and are rebuilt lazily after RestoreState.
//
// MachineState deliberately excludes the memory image, the caches and
// the branch predictor: those live in their own packages with their own
// Snapshot/Restore (internal/fastpath composes all of them into one
// checkpoint). RestoreState assumes memory has already been restored —
// it re-predecodes handler RAM from memory.

import (
	"sort"

	"repro/internal/program"
)

// FStoreWord is one materialised functional code word.
type FStoreWord struct {
	Addr uint32 `json:"addr"`
	Word uint32 `json:"word"`
}

// MachineState is a serialisable snapshot of the CPU core.
type MachineState struct {
	Regs      [2][32]uint32 `json:"regs"`
	Bank      int           `json:"bank"`
	C0        [8]uint32     `json:"c0"`
	PC        uint32        `json:"pc"`
	HI        uint32        `json:"hi"`
	LO        uint32        `json:"lo"`
	InHandler bool          `json:"in_handler"`
	SavedBank int           `json:"saved_bank"`

	CompStart  uint32 `json:"comp_start"`
	CompEnd    uint32 `json:"comp_end"`
	HandlerPC  uint32 `json:"handler_pc"`
	HandlerEnd uint32 `json:"handler_end"`

	// Golden decompressed text (hardware-decompress mode); empty when
	// the image has none.
	GoldenName    string `json:"golden_name,omitempty"`
	GoldenBase    uint32 `json:"golden_base,omitempty"`
	GoldenData    []byte `json:"golden_data,omitempty"`
	GoldenVirtual bool   `json:"golden_virtual,omitempty"`

	Halted   bool  `json:"halted"`
	ExitCode int32 `json:"exit_code"`

	LastExc   uint32 `json:"last_exc"`
	ExcRepet  int    `json:"exc_repet"`
	LastLoad  int    `json:"last_load"`
	ExcStart  uint64 `json:"exc_start"`
	FLastExc  uint32 `json:"flast_exc"`
	FExcRepet int    `json:"fexc_repet"`

	Stats  Stats      `json:"stats"`
	FStats FunctStats `json:"fstats"`

	// FStore is the functional engine's materialised code, sorted by
	// address so the encoding is deterministic.
	FStore []FStoreWord `json:"fstore,omitempty"`
}

// CaptureState snapshots the CPU core (deep copies throughout: the
// original may keep running without aliasing the snapshot).
func (c *CPU) CaptureState() MachineState {
	st := MachineState{
		Regs:      c.regs,
		Bank:      c.bank,
		C0:        c.c0,
		PC:        c.pc,
		HI:        c.hi,
		LO:        c.lo,
		InHandler: c.inHandler,
		SavedBank: c.savedBank,

		CompStart:  c.compStart,
		CompEnd:    c.compEnd,
		HandlerPC:  c.handlerPC,
		HandlerEnd: c.handlerEnd,

		Halted:   c.halted,
		ExitCode: c.exitCode,

		LastExc:   c.lastExc,
		ExcRepet:  c.excRepet,
		LastLoad:  c.lastLoad,
		ExcStart:  c.excStart,
		FLastExc:  c.flastExc,
		FExcRepet: c.fexcRepet,

		Stats:  c.Stats,
		FStats: c.FStats,
	}
	if g := c.goldenText; g != nil {
		st.GoldenName = string(g.Name)
		st.GoldenBase = g.Base
		st.GoldenData = make([]byte, len(g.Data))
		copy(st.GoldenData, g.Data)
		st.GoldenVirtual = g.Virtual
	}
	for i, ok := range c.fsOK {
		if ok != 0 {
			st.FStore = append(st.FStore, FStoreWord{Addr: c.compStart + uint32(i)<<2, Word: c.fsWord[i]})
		}
	}
	for a, w := range c.fxtra {
		st.FStore = append(st.FStore, FStoreWord{Addr: a, Word: w})
	}
	sort.Slice(st.FStore, func(i, j int) bool { return st.FStore[i].Addr < st.FStore[j].Addr })
	return st
}

// RestoreState replaces the CPU core state with the snapshot and
// rebuilds the derived caches (predecode, the functional decode
// caches). Memory must be restored before calling this: handler RAM
// is re-predecoded from it.
func (c *CPU) RestoreState(st MachineState) {
	c.regs = st.Regs
	c.bank = st.Bank
	c.c0 = st.C0
	c.pc = st.PC
	c.hi = st.HI
	c.lo = st.LO
	c.inHandler = st.InHandler
	c.savedBank = st.SavedBank

	c.compStart, c.compEnd = st.CompStart, st.CompEnd
	c.handlerPC, c.handlerEnd = st.HandlerPC, st.HandlerEnd
	c.goldenText = nil
	if len(st.GoldenData) > 0 || st.GoldenName != "" {
		data := make([]byte, len(st.GoldenData))
		copy(data, st.GoldenData)
		c.goldenText = &program.Segment{
			Name:    st.GoldenName,
			Base:    st.GoldenBase,
			Data:    data,
			Virtual: st.GoldenVirtual,
		}
	}

	c.halted = st.Halted
	c.exitCode = st.ExitCode

	c.lastExc = st.LastExc
	c.excRepet = st.ExcRepet
	c.lastLoad = st.LastLoad
	c.excStart = st.ExcStart
	c.flastExc = st.FLastExc
	c.fexcRepet = st.FExcRepet

	c.Stats = st.Stats
	c.FStats = st.FStats

	c.resetPredecode()
	c.resetFunctional()
	// The native code extent is normally set by Load from the image's
	// segment table; a restored CPU has no image, so rederive it from
	// the memory pages backed at the native code base. The extent only
	// bounds the functional decode cache — coverage differences change
	// speed, never results (uncovered code decodes per fetch).
	c.fdBase, c.fdEnd = 0, 0
	if base := uint32(program.NativeBase); c.Mem.Backed(base) {
		end := base
		for end < program.CompBase && c.Mem.Backed(end) {
			end += 1 << 16 // page granularity
		}
		c.fdBase, c.fdEnd = base, end
	}
	for _, fw := range st.FStore {
		c.fsPut(fw.Addr, fw.Word)
	}
	if !c.Cfg.DisablePredecode {
		c.predecodeHandler()
	}
}
