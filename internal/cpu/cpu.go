// Package cpu implements the simulated processor: a 1-wide, in-order,
// 5-stage-pipeline timing model (the paper's Table 1 machine) extended
// with the three instructions that enable software decompression — swic,
// iret and mfc0 — and with an instruction-cache-miss exception that
// vectors to the decompression handler for misses inside the compressed
// code region.
package cpu

import (
	"fmt"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/program"
)

// Config describes the simulated machine. DefaultConfig matches the
// paper's Table 1.
type Config struct {
	ICache cache.Config
	DCache cache.Config
	Bus    mem.BusConfig

	PredictorEntries  int
	MispredictPenalty int // cycles lost on a conditional-branch mispredict
	JRPenalty         int // fetch-redirect bubble for jr/jalr
	ExceptionEntry    int // pipeline flush + vector on a decompression exception
	IretCycles        int // redirect cost of returning from the handler
	SwicExtraCycles   int // serialisation bubble per swic (paper §4: pipeline flush)
	LoadUsePenalty    int // interlock bubble when an instruction uses the previous load's result

	// HardwareDecompress models a custom on-chip decompression unit
	// instead of the software handler (the hardware approaches the paper
	// contrasts with, e.g. CCRP/CodePack silicon): a miss in the
	// compressed region stalls for HWDecompressCycles and the line is
	// filled directly, with no exception and no handler execution.
	HardwareDecompress bool
	// HWDecompressCycles is the fixed line-fill latency of the hardware
	// unit (on top of fetching the compressed bytes over the bus).
	HWDecompressCycles int

	// MaxInstr bounds total executed instructions (user + handler);
	// Run returns an error when it is exceeded. 0 means no bound.
	MaxInstr uint64

	// Functional selects the functional fast-forward engine for Run():
	// identical architectural semantics, no timing model — no caches,
	// no branch predictor, no cycle accounting (see funct.go). Work is
	// counted in CPU.FStats; cpu.Stats stays untouched. The sampled
	// driver in internal/fastpath switches engines mid-run via
	// RunDetailedFor/RunFunctionalFor regardless of this flag.
	Functional bool
	// FunctionalBreak deliberately corrupts the functional engine's
	// handler swic stores (one bit per word). It exists solely as the
	// equivalence battery's negative control: a broken functional
	// handler must be caught by the battery, proving the comparison has
	// teeth.
	FunctionalBreak bool
	// FunctionalWarm selects SMARTS-style functional warming for the
	// functional engine: fetches, loads, branches and swic stores touch
	// the real I-cache, D-cache and branch predictor exactly as the
	// detailed engine would — filling, evicting and training, with no
	// cycle charges — so a fast-forward interval leaves the timing
	// state where a detailed run would have. fastpath.Sampled turns
	// this on for its intervals; plain fast-forward leaves it off and
	// keeps the faster flat-decode dispatch.
	FunctionalWarm bool

	// DisablePredecode forces the reference decode-every-cycle fetch
	// path: isa fields are re-extracted from the raw word on every
	// executed instruction instead of once per I-cache fill. Both paths
	// feed the same execute engine, so the timing model is identical;
	// the flag exists so equivalence tests can pin the predecode cache
	// against the reference behaviour.
	DisablePredecode bool
	// PredecodeCheck cross-checks every fetched predecoded instruction
	// against a fresh decode of the word the backing cache/RAM holds
	// and fails the simulation on any mismatch. diffsim and the
	// equivalence battery use it as a predecode-coherence oracle.
	PredecodeCheck bool
}

// DefaultConfig returns the paper's baseline machine.
func DefaultConfig() Config {
	return Config{
		ICache:            cache.Config{SizeBytes: 16 * 1024, LineBytes: 32, Ways: 2},
		DCache:            cache.Config{SizeBytes: 8 * 1024, LineBytes: 16, Ways: 2},
		Bus:               mem.DefaultBus(),
		PredictorEntries:  2048,
		MispredictPenalty: 4,
		JRPenalty:         2,
		ExceptionEntry:    6,
		IretCycles:        4,
		SwicExtraCycles:   1,
		LoadUsePenalty:    1, // classic 5-stage MEM->EX interlock
	}
}

// Stats accumulates run measurements.
type Stats struct {
	Cycles        uint64
	Instrs        uint64 // user (non-handler) instructions committed
	HandlerInstrs uint64 // instructions executed inside the exception handler

	IMissNative     uint64 // I-cache misses filled by the hardware controller
	IMissCompressed uint64 // I-cache misses that invoked the decompressor
	Exceptions      uint64 // decompression exceptions taken

	LoadStalls    uint64 // cycles stalled on D-cache fills
	FetchStalls   uint64 // cycles stalled on hardware I-cache fills
	LoadUseStalls uint64 // load-use interlock bubbles

	// Exception service latency (entry to iret, inclusive), for the
	// real-time determinism the paper's embedded context cares about.
	ExcCyclesTotal uint64
	ExcCyclesMax   uint64

	// CPIStack attributes every cycle above to one component; its sum is
	// always exactly Cycles (Run self-checks the invariant at exit).
	CPIStack CPIStack
}

// AvgExcCycles returns the mean decompression-exception service latency.
func (s Stats) AvgExcCycles() float64 {
	if s.Exceptions == 0 {
		return 0
	}
	return float64(s.ExcCyclesTotal) / float64(s.Exceptions)
}

// IMisses returns all non-speculative instruction-cache misses.
func (s Stats) IMisses() uint64 { return s.IMissNative + s.IMissCompressed }

// Profiler receives per-address execution and miss events; the selective
// compression machinery uses it to build per-procedure profiles.
type Profiler interface {
	CountInstr(pc uint32)
	CountMiss(pc uint32)
}

// CallProfiler is an optional extension of Profiler: implementations also
// receive procedure-call events (jal/jalr), which the code-placement
// optimiser uses to build the call-affinity graph.
type CallProfiler interface {
	Profiler
	CountCall(from, to uint32)
}

// CPU is one simulated processor instance.
type CPU struct {
	Cfg Config
	Mem *mem.Memory
	IC  *cache.Cache
	DC  *cache.Cache
	BP  *bpred.Predictor

	regs [2][32]uint32 // two register files (paper §4.1)
	bank int           // active register file
	c0   [8]uint32
	pc   uint32
	hi   uint32
	lo   uint32

	inHandler bool
	savedBank int

	compStart, compEnd uint32 // compressed code region ([start,end), 0,0 = none)
	handlerPC          uint32
	handlerEnd         uint32
	goldenText         *program.Segment // decompressed bytes (hardware-decompress mode)

	halted   bool
	exitCode int32
	lastExc  uint32 // address of the last decompression exception
	excRepet int    // consecutive exceptions at the same address
	lastLoad int    // register written by the previous instruction if it was a load (-1 otherwise)
	excStart uint64 // Stats.Cycles at the last exception entry

	// Predecoded-instruction cache (see predecode.go). pdec maps an
	// I-cache line base to its decoded records; curBase/curLine cache
	// the line the PC is streaming through; hdec covers handler RAM;
	// scratch backs the DisablePredecode reference path.
	pdec     map[uint32][]pinstr
	curBase  uint32
	curLine  []pinstr
	swicBase uint32
	hdec     []pinstr
	scratch  pinstr

	// Functional-engine state (see funct.go). fsWord/fsOK are the
	// materialised decompressed code over the compressed region, one
	// word and one validity byte per address (the functional stand-in
	// for the I-cache: never evicts); fxtra catches swic stores outside
	// that region (rare; never fetched). fcdec/fcOK cache decoded
	// records in lockstep with fsWord; fdec/fdOK do the same over the
	// native code extent [fdBase,fdEnd). All flat stores are allocated
	// lazily on first functional execution. flastExc/fexcRepet mirror
	// the detailed repeated-exception guard.
	fsWord    []uint32
	fsOK      []uint8
	fxtra     map[uint32]uint32
	fcdec     []pinstr
	fcOK      []uint8
	fdec      []pinstr
	fdOK      []uint8
	fdBase    uint32
	fdEnd     uint32
	fhdOK     []uint8
	flastExc  uint32
	fexcRepet int

	Stats Stats
	// FStats counts functional-engine work; separate from Stats because
	// functional counters carry no timing meaning (funct.go).
	FStats FunctStats
	Prof   Profiler
	Out    io.Writer
	// Trace, when set, receives every committed instruction (after
	// execution): its address, encoding and whether it ran inside the
	// decompression handler. Used by the trace ring in internal/trace.
	// Prefer AttachTrace over assigning directly: attaching composes
	// with previously installed tracers instead of replacing them.
	Trace func(pc, instr uint32, handler bool)
	// Tel, when set, receives timing events (exception spans, I-cache
	// fill stalls); internal/telemetry implements it. Nil costs nothing.
	Tel TelemetrySink
}

// New builds a CPU with the given configuration.
func New(cfg Config) (*CPU, error) {
	ic, err := cache.New(cfg.ICache, true)
	if err != nil {
		return nil, fmt.Errorf("cpu: I-cache: %v", err)
	}
	dc, err := cache.New(cfg.DCache, false)
	if err != nil {
		return nil, fmt.Errorf("cpu: D-cache: %v", err)
	}
	c := &CPU{
		Cfg:      cfg,
		Mem:      mem.New(cfg.Bus),
		IC:       ic,
		DC:       dc,
		BP:       bpred.New(cfg.PredictorEntries),
		lastLoad: -1,
	}
	c.resetPredecode()
	c.resetFunctional()
	return c, nil
}

// Load installs a program image: loads every non-virtual segment into
// memory, configures the compressed-region geometry and system registers,
// and resets the architectural state.
func (c *CPU) Load(im *program.Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	c.Mem.LoadImage(im)
	c.pc = im.Entry
	c.regs[0][29] = program.StackTop // $sp
	c.regs[1][29] = program.StackTop
	if h := im.Segment(program.SegDecompressor); h != nil {
		c.handlerPC = h.Base
		c.handlerEnd = h.End()
	}
	if ci := im.Compress; ci != nil {
		if c.handlerPC == 0 && !c.Cfg.HardwareDecompress {
			return fmt.Errorf("cpu: compressed image without a %s segment", program.SegDecompressor)
		}
		c.goldenText = im.Segment(program.SegText)
		c.compStart, c.compEnd = ci.CompStart, ci.CompEnd
		c.c0[0] = ci.CompStart   // DBASE
		c.c0[1] = ci.DictBase    // DICT
		c.c0[2] = ci.IndicesBase // INDICES
		c.c0[3] = ci.LATBase     // LAT
		if ci.ShadowRF {
			c.c0[6] |= 2 // StatusShadowRF
		}
	}
	c.fdBase, c.fdEnd = 0, 0
	for _, name := range []string{program.SegText, program.SegNative} {
		s := im.Segment(name)
		if s == nil || s.Virtual || len(s.Data) == 0 {
			continue
		}
		if c.fdEnd == 0 || s.Base < c.fdBase {
			c.fdBase = s.Base
		}
		if s.End() > c.fdEnd {
			c.fdEnd = s.End()
		}
	}
	c.resetPredecode()
	c.resetFunctional()
	if !c.Cfg.DisablePredecode {
		c.predecodeHandler()
	}
	return nil
}

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// Reg returns register r of the active file.
func (c *CPU) Reg(r int) uint32 { return c.regs[c.bank][r] }

// SetReg writes register r of the active file ($zero writes are dropped).
func (c *CPU) SetReg(r int, v uint32) {
	if r != 0 {
		c.regs[c.bank][r] = v
	}
}

// C0 returns system register n.
func (c *CPU) C0(n int) uint32 { return c.c0[n&7] }

// HiLo returns the HI and LO multiply/divide registers. Handlers never
// touch them, so they must match across native and compressed images.
func (c *CPU) HiLo() (hi, lo uint32) { return c.hi, c.lo }

// Halted reports whether the program has exited, and with which code.
func (c *CPU) Halted() (bool, int32) { return c.halted, c.exitCode }

// InHandler reports whether execution is currently inside the
// decompression handler (between exception entry and iret).
func (c *CPU) InHandler() bool { return c.inHandler }

// InCompressedRegion reports whether addr lies in the compressed
// (decompressed-on-miss) code region.
func (c *CPU) InCompressedRegion(addr uint32) bool {
	return addr >= c.compStart && addr < c.compEnd
}

func (c *CPU) inHandlerRAM(addr uint32) bool {
	return addr >= c.handlerPC && addr < c.handlerEnd
}

// Run executes instructions until the program exits or a limit is hit.
// It returns the exit code (0 if still running when maxInstr was reached
// with MaxInstr==0 semantics, see Config).
func (c *CPU) Run() (int32, error) {
	if c.Cfg.Functional {
		return c.runFunctional()
	}
	for !c.halted {
		if err := c.Step(); err != nil {
			return -1, err
		}
		if c.Cfg.MaxInstr > 0 && c.totalInstrs() >= c.Cfg.MaxInstr {
			return -1, fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x",
				c.Cfg.MaxInstr, c.pc)
		}
	}
	// Hard telemetry invariant: the CPI stack must account for every
	// cycle the timing model charged. A violation is a simulator bug.
	if err := c.Stats.CPIStack.Check(c.Stats.Cycles); err != nil {
		return -1, fmt.Errorf("cpu: %v", err)
	}
	return c.exitCode, nil
}
