package cpu

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Step fetches, executes and retires one instruction, charging cycles to
// the timing model.
func (c *CPU) Step() error {
	w, err := c.fetch()
	if err != nil {
		return err
	}
	if w == fetchException {
		return nil // the exception redirected the PC into the handler
	}
	return c.execute(w)
}

// fetchException is returned by fetch when a decompression exception was
// raised instead of delivering an instruction. It is an invalid encoding
// (primary opcode 0x3F) so it can never collide with a real instruction.
const fetchException = 0xFFFFFFFF

func (c *CPU) fetch() (uint32, error) {
	pc := c.pc
	if pc&3 != 0 {
		return 0, fmt.Errorf("cpu: unaligned fetch at %#x", pc)
	}
	// The decompressor executes from its own on-chip RAM, accessed in
	// parallel with the I-cache (paper §4.1): no cache involvement.
	if c.inHandlerRAM(pc) {
		return c.Mem.ReadWord(pc), nil
	}
	if !c.IC.Access(pc) {
		if c.InCompressedRegion(pc) {
			if c.Cfg.HardwareDecompress {
				if err := c.hardwareFill(pc); err != nil {
					return 0, err
				}
			} else {
				return fetchException, c.raiseDecompress(pc)
			}
		} else {
			// Hardware fill from backed memory.
			base := c.IC.LineBase(pc)
			if !c.Mem.Backed(base) {
				return 0, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
			}
			line := make([]byte, c.Cfg.ICache.LineBytes)
			start := c.Stats.Cycles
			stall := c.Mem.ReadBlock(base, line)
			c.IC.Fill(base, line)
			c.Stats.Cycles += uint64(stall)
			c.Stats.FetchStalls += uint64(stall)
			c.Stats.CPIStack[CycleFetchStall] += uint64(stall)
			c.Stats.IMissNative++
			if c.Tel != nil {
				c.Tel.IFill(pc, start, uint64(stall), FillNative)
			}
			if c.Prof != nil && !c.inHandler {
				c.Prof.CountMiss(pc)
			}
		}
	}
	w, ok := c.IC.ReadWord(pc)
	if !ok {
		return 0, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
	}
	return w, nil
}

// hardwareFill models a hardware decompression unit: the compressed
// bytes are fetched over the bus (about half a line for the dictionary
// scheme) and decoded with a fixed latency, then the native line is
// installed — no exception, no handler instructions.
func (c *CPU) hardwareFill(pc uint32) error {
	if c.goldenText == nil {
		return fmt.Errorf("cpu: hardware decompression without decompressed text at %#x", pc)
	}
	base := c.IC.LineBase(pc)
	n := c.Cfg.ICache.LineBytes
	line := make([]byte, n)
	for i := 0; i < n; i++ {
		a := base + uint32(i)
		if c.goldenText.Contains(a) {
			line[i] = c.goldenText.Data[a-c.goldenText.Base]
		}
	}
	start := c.Stats.Cycles
	stall := c.Mem.Burst(n/2) + c.Cfg.HWDecompressCycles
	c.IC.Fill(base, line)
	c.Stats.Cycles += uint64(stall)
	c.Stats.FetchStalls += uint64(stall)
	c.Stats.CPIStack[CycleExcService] += uint64(stall)
	c.Stats.IMissCompressed++
	if c.Tel != nil {
		c.Tel.IFill(pc, start, uint64(stall), FillHardwareDecomp)
	}
	if c.Prof != nil && !c.inHandler {
		c.Prof.CountMiss(pc)
	}
	return nil
}

func (c *CPU) raiseDecompress(pc uint32) error {
	if c.inHandler {
		return fmt.Errorf("cpu: nested decompression exception at %#x", pc)
	}
	if pc == c.lastExc {
		c.excRepet++
		if c.excRepet >= 2 {
			return fmt.Errorf("cpu: handler failed to fill line for %#x (repeated exception)", pc)
		}
	} else {
		c.lastExc, c.excRepet = pc, 0
	}
	c.Stats.Exceptions++
	c.Stats.IMissCompressed++
	c.excStart = c.Stats.Cycles
	if c.Tel != nil {
		c.Tel.ExcEnter(pc, c.excStart)
	}
	c.Stats.Cycles += uint64(c.Cfg.ExceptionEntry)
	c.Stats.CPIStack[CycleExcService] += uint64(c.Cfg.ExceptionEntry)
	if c.Prof != nil {
		c.Prof.CountMiss(pc)
	}
	c.c0[4] = pc    // EPC
	c.c0[5] = pc    // BADVA
	c.c0[6] |= 1    // StatusEXL
	c.lastLoad = -1 // the flush drains the pipeline
	c.inHandler = true
	c.savedBank = c.bank
	if c.c0[6]&2 != 0 { // shadow register file enabled
		c.bank = 1
	}
	c.pc = c.handlerPC
	return nil
}

func (c *CPU) execute(w uint32) error {
	r := &c.regs[c.bank]
	pc := c.pc
	next := pc + 4
	cycles := uint64(1)
	wasHandler := c.inHandler // iret clears it mid-instruction

	// Load-use interlock: a 5-stage pipeline bubbles one cycle when an
	// instruction consumes the value the immediately preceding load
	// produced (MEM -> EX forwarding gap).
	if c.lastLoad >= 0 {
		if a, b := isa.SrcRegs(w); a == c.lastLoad || b == c.lastLoad {
			cycles += uint64(c.Cfg.LoadUsePenalty)
			c.Stats.LoadUseStalls++
			c.Stats.CPIStack[CycleLoadUse] += uint64(c.Cfg.LoadUsePenalty)
		}
	}
	c.lastLoad = isa.LoadDest(w)

	switch isa.Op(w) {
	case isa.OpSpecial:
		rs, rt, rd := isa.Rs(w), isa.Rt(w), isa.Rd(w)
		switch isa.Funct(w) {
		case isa.FnSLL:
			c.setr(r, rd, r[rt]<<isa.Shamt(w))
		case isa.FnSRL:
			c.setr(r, rd, r[rt]>>isa.Shamt(w))
		case isa.FnSRA:
			c.setr(r, rd, uint32(int32(r[rt])>>isa.Shamt(w)))
		case isa.FnSLLV:
			c.setr(r, rd, r[rt]<<(r[rs]&31))
		case isa.FnSRLV:
			c.setr(r, rd, r[rt]>>(r[rs]&31))
		case isa.FnSRAV:
			c.setr(r, rd, uint32(int32(r[rt])>>(r[rs]&31)))
		case isa.FnJR:
			next = r[rs]
			cycles += uint64(c.Cfg.JRPenalty)
			c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.JRPenalty)
		case isa.FnJALR:
			c.setr(r, rd, pc+4)
			next = r[rs]
			cycles += uint64(c.Cfg.JRPenalty)
			c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.JRPenalty)
			c.countCall(pc, next)
		case isa.FnSYSCALL:
			if err := c.syscall(r); err != nil {
				return err
			}
		case isa.FnBREAK:
			return fmt.Errorf("cpu: break at %#x", pc)
		case isa.FnMFHI:
			c.setr(r, rd, c.hi)
		case isa.FnMFLO:
			c.setr(r, rd, c.lo)
		case isa.FnMULT:
			p := int64(int32(r[rs])) * int64(int32(r[rt]))
			c.lo, c.hi = uint32(p), uint32(p>>32)
		case isa.FnMULTU:
			p := uint64(r[rs]) * uint64(r[rt])
			c.lo, c.hi = uint32(p), uint32(p>>32)
		case isa.FnDIV:
			if r[rt] != 0 {
				c.lo = uint32(int32(r[rs]) / int32(r[rt]))
				c.hi = uint32(int32(r[rs]) % int32(r[rt]))
			}
		case isa.FnDIVU:
			if r[rt] != 0 {
				c.lo = r[rs] / r[rt]
				c.hi = r[rs] % r[rt]
			}
		case isa.FnADD, isa.FnADDU:
			c.setr(r, rd, r[rs]+r[rt])
		case isa.FnSUB, isa.FnSUBU:
			c.setr(r, rd, r[rs]-r[rt])
		case isa.FnAND:
			c.setr(r, rd, r[rs]&r[rt])
		case isa.FnOR:
			c.setr(r, rd, r[rs]|r[rt])
		case isa.FnXOR:
			c.setr(r, rd, r[rs]^r[rt])
		case isa.FnNOR:
			c.setr(r, rd, ^(r[rs] | r[rt]))
		case isa.FnSLT:
			c.setr(r, rd, b2u(int32(r[rs]) < int32(r[rt])))
		case isa.FnSLTU:
			c.setr(r, rd, b2u(r[rs] < r[rt]))
		default:
			return fmt.Errorf("cpu: illegal funct %#x at %#x", isa.Funct(w), pc)
		}

	case isa.OpRegImm:
		rs := isa.Rs(w)
		var taken bool
		switch isa.Rt(w) {
		case isa.RtBLTZ:
			taken = int32(r[rs]) < 0
		case isa.RtBGEZ:
			taken = int32(r[rs]) >= 0
		default:
			return fmt.Errorf("cpu: illegal regimm %#x at %#x", isa.Rt(w), pc)
		}
		cycles += c.branch(pc, taken)
		if taken {
			next = isa.BranchTarget(pc, w)
		}

	case isa.OpJ:
		next = isa.JumpTarget(pc, w)
	case isa.OpJAL:
		c.setr(r, 31, pc+4)
		next = isa.JumpTarget(pc, w)
		c.countCall(pc, next)

	case isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ:
		rs, rt := isa.Rs(w), isa.Rt(w)
		var taken bool
		switch isa.Op(w) {
		case isa.OpBEQ:
			taken = r[rs] == r[rt]
		case isa.OpBNE:
			taken = r[rs] != r[rt]
		case isa.OpBLEZ:
			taken = int32(r[rs]) <= 0
		case isa.OpBGTZ:
			taken = int32(r[rs]) > 0
		}
		cycles += c.branch(pc, taken)
		if taken {
			next = isa.BranchTarget(pc, w)
		}

	case isa.OpADDI, isa.OpADDIU:
		c.setr(r, isa.Rt(w), r[isa.Rs(w)]+uint32(isa.SImm(w)))
	case isa.OpSLTI:
		c.setr(r, isa.Rt(w), b2u(int32(r[isa.Rs(w)]) < isa.SImm(w)))
	case isa.OpSLTIU:
		c.setr(r, isa.Rt(w), b2u(r[isa.Rs(w)] < uint32(isa.SImm(w))))
	case isa.OpANDI:
		c.setr(r, isa.Rt(w), r[isa.Rs(w)]&isa.Imm(w))
	case isa.OpORI:
		c.setr(r, isa.Rt(w), r[isa.Rs(w)]|isa.Imm(w))
	case isa.OpXORI:
		c.setr(r, isa.Rt(w), r[isa.Rs(w)]^isa.Imm(w))
	case isa.OpLUI:
		c.setr(r, isa.Rt(w), isa.Imm(w)<<16)

	case isa.OpCOP0:
		switch isa.Rs(w) {
		case isa.CopMFC0:
			c.setr(r, isa.Rt(w), c.c0[isa.Rd(w)&7])
		case isa.CopMTC0:
			c.c0[isa.Rd(w)&7] = r[isa.Rt(w)]
		case isa.CopCO:
			if isa.Funct(w) != isa.FnIRET {
				return fmt.Errorf("cpu: illegal cop0 funct %#x at %#x", isa.Funct(w), pc)
			}
			if !c.inHandler {
				return fmt.Errorf("cpu: iret outside handler at %#x", pc)
			}
			c.inHandler = false
			c.bank = c.savedBank
			c.c0[6] &^= 1
			c.lastLoad = -1 // redirect drains the pipeline
			next = c.c0[4]  // EPC
			cycles += uint64(c.Cfg.IretCycles)
			c.Stats.CPIStack[CycleExcService] += uint64(c.Cfg.IretCycles)
		default:
			return fmt.Errorf("cpu: illegal cop0 rs %#x at %#x", isa.Rs(w), pc)
		}

	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		addr := r[isa.Rs(w)] + uint32(isa.SImm(w))
		cycles += c.dRead(addr)
		var v uint32
		switch isa.Op(w) {
		case isa.OpLB:
			v = uint32(int32(int8(c.Mem.LoadByte(addr))))
		case isa.OpLBU:
			v = uint32(c.Mem.LoadByte(addr))
		case isa.OpLH:
			if addr&1 != 0 {
				return fmt.Errorf("cpu: unaligned lh at %#x (addr %#x)", pc, addr)
			}
			v = uint32(int32(int16(c.Mem.ReadHalf(addr))))
		case isa.OpLHU:
			if addr&1 != 0 {
				return fmt.Errorf("cpu: unaligned lhu at %#x (addr %#x)", pc, addr)
			}
			v = uint32(c.Mem.ReadHalf(addr))
		case isa.OpLW:
			if addr&3 != 0 {
				return fmt.Errorf("cpu: unaligned lw at %#x (addr %#x)", pc, addr)
			}
			v = c.Mem.ReadWord(addr)
		}
		c.setr(r, isa.Rt(w), v)

	case isa.OpSB:
		addr := r[isa.Rs(w)] + uint32(isa.SImm(w))
		c.Mem.StoreByte(addr, byte(r[isa.Rt(w)]))
	case isa.OpSH:
		addr := r[isa.Rs(w)] + uint32(isa.SImm(w))
		if addr&1 != 0 {
			return fmt.Errorf("cpu: unaligned sh at %#x (addr %#x)", pc, addr)
		}
		c.Mem.WriteHalf(addr, uint16(r[isa.Rt(w)]))
	case isa.OpSW:
		addr := r[isa.Rs(w)] + uint32(isa.SImm(w))
		if addr&3 != 0 {
			return fmt.Errorf("cpu: unaligned sw at %#x (addr %#x)", pc, addr)
		}
		c.Mem.WriteWord(addr, r[isa.Rt(w)])

	case isa.OpSWIC:
		addr := r[isa.Rs(w)] + uint32(isa.SImm(w))
		if addr&3 != 0 {
			return fmt.Errorf("cpu: unaligned swic at %#x (addr %#x)", pc, addr)
		}
		c.IC.WriteWord(addr, r[isa.Rt(w)])
		cycles += uint64(c.Cfg.SwicExtraCycles)
		if wasHandler {
			c.Stats.CPIStack[CycleHandler] += uint64(c.Cfg.SwicExtraCycles)
		} else {
			c.Stats.CPIStack[CycleUser] += uint64(c.Cfg.SwicExtraCycles)
		}

	default:
		return fmt.Errorf("cpu: illegal opcode %#x at %#x", isa.Op(w), pc)
	}

	c.Stats.Cycles += cycles
	if wasHandler {
		c.Stats.CPIStack[CycleHandler]++ // the instruction's base cycle
	} else {
		c.Stats.CPIStack[CycleUser]++
	}
	if wasHandler && !c.inHandler {
		// This instruction was the iret: close the exception interval.
		lat := c.Stats.Cycles - c.excStart
		c.Stats.ExcCyclesTotal += lat
		if lat > c.Stats.ExcCyclesMax {
			c.Stats.ExcCyclesMax = lat
		}
		if c.Tel != nil {
			c.Tel.ExcReturn(next, c.Stats.Cycles, lat)
		}
	}
	if c.Trace != nil {
		c.Trace(pc, w, wasHandler)
	}
	if wasHandler {
		c.Stats.HandlerInstrs++
	} else {
		c.Stats.Instrs++
		if c.Prof != nil {
			c.Prof.CountInstr(pc)
		}
	}
	c.pc = next
	return nil
}

func (c *CPU) countCall(from, to uint32) {
	if c.inHandler || c.Prof == nil {
		return
	}
	if cp, ok := c.Prof.(CallProfiler); ok {
		cp.CountCall(from, to)
	}
}

func (c *CPU) setr(r *[32]uint32, rd int, v uint32) {
	if rd != 0 {
		r[rd] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// branch trains the predictor and returns the penalty cycles.
func (c *CPU) branch(pc uint32, taken bool) uint64 {
	if c.BP.Update(pc, taken) {
		return 0
	}
	c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.MispredictPenalty)
	return uint64(c.Cfg.MispredictPenalty)
}

// dRead performs the D-cache access for a load and returns stall cycles.
// Stores are write-through/no-allocate and charge no stall (write buffer).
func (c *CPU) dRead(addr uint32) uint64 {
	if c.DC.Access(addr) {
		return 0
	}
	stall := c.Mem.Burst(c.Cfg.DCache.LineBytes)
	c.DC.Fill(c.DC.LineBase(addr), nil)
	c.Stats.LoadStalls += uint64(stall)
	c.Stats.CPIStack[CycleLoadStall] += uint64(stall)
	return uint64(stall)
}

func (c *CPU) syscall(r *[32]uint32) error {
	switch r[2] { // $v0
	case isa.SysPrintInt:
		c.print(fmt.Sprintf("%d", int32(r[4])))
	case isa.SysPrintHex:
		c.print(fmt.Sprintf("%#x", r[4]))
	case isa.SysPrintChar:
		c.print(string(rune(r[4] & 0xFF)))
	case isa.SysPrintString:
		addr := r[4]
		var buf []byte
		for i := 0; i < 4096; i++ {
			b := c.Mem.LoadByte(addr + uint32(i))
			if b == 0 {
				break
			}
			buf = append(buf, b)
		}
		c.print(string(buf))
	case isa.SysExit:
		c.halted = true
		c.exitCode = int32(r[4])
	default:
		return fmt.Errorf("cpu: unknown syscall %d at %#x", r[2], c.pc)
	}
	return nil
}

func (c *CPU) print(s string) {
	if c.Out != nil {
		io.WriteString(c.Out, s)
	}
}
