package cpu

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Step fetches, executes and retires one instruction, charging cycles to
// the timing model.
func (c *CPU) Step() error {
	p, err := c.fetch()
	if err != nil || p == nil {
		// p == nil: a decompression exception redirected the PC into the
		// handler instead of delivering an instruction.
		return err
	}
	return c.execute(p)
}

// fetch returns the predecoded instruction at the current PC, or nil
// when a decompression exception was raised instead. With
// Cfg.DisablePredecode the word is decoded afresh into a scratch record
// every cycle — same engine, reference timing.
func (c *CPU) fetch() (*pinstr, error) {
	pc := c.pc
	if pc&3 != 0 {
		return nil, fmt.Errorf("cpu: unaligned fetch at %#x", pc)
	}
	// The decompressor executes from its own on-chip RAM, accessed in
	// parallel with the I-cache (paper §4.1): no cache involvement.
	if c.inHandlerRAM(pc) {
		if c.Cfg.DisablePredecode || c.hdec == nil {
			c.scratch = decodeInstr(pc, c.Mem.ReadWord(pc))
			return &c.scratch, nil
		}
		p := &c.hdec[(pc-c.handlerPC)>>2]
		if c.Cfg.PredecodeCheck {
			if err := c.checkPredecode(p, pc, c.Mem.ReadWord(pc)); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	if !c.IC.Access(pc) {
		if c.InCompressedRegion(pc) {
			if c.Cfg.HardwareDecompress {
				if err := c.hardwareFill(pc); err != nil {
					return nil, err
				}
			} else {
				return nil, c.raiseDecompress(pc)
			}
		} else {
			// Hardware fill from backed memory.
			base := c.IC.LineBase(pc)
			if !c.Mem.Backed(base) {
				return nil, fmt.Errorf("cpu: fetch from unmapped address %#x", pc)
			}
			line := make([]byte, c.Cfg.ICache.LineBytes)
			start := c.Stats.Cycles
			stall := c.Mem.ReadBlock(base, line)
			c.IC.Fill(base, line)
			c.predecodeFill(base, line)
			c.Stats.Cycles += uint64(stall)
			c.Stats.FetchStalls += uint64(stall)
			c.Stats.CPIStack[CycleFetchStall] += uint64(stall)
			c.Stats.IMissNative++
			if c.Tel != nil {
				c.Tel.IFill(pc, start, uint64(stall), FillNative)
			}
			if c.Prof != nil && !c.inHandler {
				c.Prof.CountMiss(pc)
			}
		}
	}
	if c.Cfg.DisablePredecode {
		w, ok := c.IC.ReadWord(pc)
		if !ok {
			return nil, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
		}
		c.scratch = decodeInstr(pc, w)
		return &c.scratch, nil
	}
	base := c.IC.LineBase(pc)
	if base != c.curBase {
		ln := c.plineFor(base)
		if ln == nil {
			return nil, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
		}
		c.curBase, c.curLine = base, ln
	}
	p := &c.curLine[(pc-base)>>2]
	if c.Cfg.PredecodeCheck {
		w, ok := c.IC.ReadWord(pc)
		if !ok {
			return nil, fmt.Errorf("cpu: internal error: line at %#x vanished", pc)
		}
		if err := c.checkPredecode(p, pc, w); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// hardwareFill models a hardware decompression unit: the compressed
// bytes are fetched over the bus (about half a line for the dictionary
// scheme) and decoded with a fixed latency, then the native line is
// installed — no exception, no handler instructions.
func (c *CPU) hardwareFill(pc uint32) error {
	if c.goldenText == nil {
		return fmt.Errorf("cpu: hardware decompression without decompressed text at %#x", pc)
	}
	base := c.IC.LineBase(pc)
	n := c.Cfg.ICache.LineBytes
	line := make([]byte, n)
	for i := 0; i < n; i++ {
		a := base + uint32(i)
		if c.goldenText.Contains(a) {
			line[i] = c.goldenText.Data[a-c.goldenText.Base]
		}
	}
	start := c.Stats.Cycles
	stall := c.Mem.Burst(n/2) + c.Cfg.HWDecompressCycles
	c.IC.Fill(base, line)
	c.predecodeFill(base, line)
	c.Stats.Cycles += uint64(stall)
	c.Stats.FetchStalls += uint64(stall)
	c.Stats.CPIStack[CycleExcService] += uint64(stall)
	c.Stats.IMissCompressed++
	if c.Tel != nil {
		c.Tel.IFill(pc, start, uint64(stall), FillHardwareDecomp)
	}
	if c.Prof != nil && !c.inHandler {
		c.Prof.CountMiss(pc)
	}
	return nil
}

func (c *CPU) raiseDecompress(pc uint32) error {
	if c.inHandler {
		return fmt.Errorf("cpu: nested decompression exception at %#x", pc)
	}
	if pc == c.lastExc {
		c.excRepet++
		if c.excRepet >= 2 {
			return fmt.Errorf("cpu: handler failed to fill line for %#x (repeated exception)", pc)
		}
	} else {
		c.lastExc, c.excRepet = pc, 0
	}
	c.Stats.Exceptions++
	c.Stats.IMissCompressed++
	c.excStart = c.Stats.Cycles
	if c.Tel != nil {
		c.Tel.ExcEnter(pc, c.excStart)
	}
	c.Stats.Cycles += uint64(c.Cfg.ExceptionEntry)
	c.Stats.CPIStack[CycleExcService] += uint64(c.Cfg.ExceptionEntry)
	if c.Prof != nil {
		c.Prof.CountMiss(pc)
	}
	c.c0[4] = pc    // EPC
	c.c0[5] = pc    // BADVA
	c.c0[6] |= 1    // StatusEXL
	c.lastLoad = -1 // the flush drains the pipeline
	c.inHandler = true
	c.savedBank = c.bank
	if c.c0[6]&2 != 0 { // shadow register file enabled
		c.bank = 1
	}
	c.pc = c.handlerPC
	return nil
}

// execute is the single execution engine: both the predecoded fast
// path and the DisablePredecode reference path feed it, so their
// timing cannot diverge.
func (c *CPU) execute(p *pinstr) error {
	r := &c.regs[c.bank]
	pc := c.pc
	next := pc + 4
	cycles := uint64(1)
	wasHandler := c.inHandler // iret clears it mid-instruction

	// Load-use interlock: a 5-stage pipeline bubbles one cycle when an
	// instruction consumes the value the immediately preceding load
	// produced (MEM -> EX forwarding gap).
	if c.lastLoad >= 0 {
		if int(p.srcA) == c.lastLoad || int(p.srcB) == c.lastLoad {
			cycles += uint64(c.Cfg.LoadUsePenalty)
			c.Stats.LoadUseStalls++
			c.Stats.CPIStack[CycleLoadUse] += uint64(c.Cfg.LoadUsePenalty)
		}
	}
	c.lastLoad = int(p.ldst)

	switch p.op {
	case pSLL:
		c.setr(r, int(p.rd), r[p.rt]<<p.shamt)
	case pSRL:
		c.setr(r, int(p.rd), r[p.rt]>>p.shamt)
	case pSRA:
		c.setr(r, int(p.rd), uint32(int32(r[p.rt])>>p.shamt))
	case pSLLV:
		c.setr(r, int(p.rd), r[p.rt]<<(r[p.rs]&31))
	case pSRLV:
		c.setr(r, int(p.rd), r[p.rt]>>(r[p.rs]&31))
	case pSRAV:
		c.setr(r, int(p.rd), uint32(int32(r[p.rt])>>(r[p.rs]&31)))
	case pJR:
		next = r[p.rs]
		cycles += uint64(c.Cfg.JRPenalty)
		c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.JRPenalty)
	case pJALR:
		c.setr(r, int(p.rd), pc+4)
		next = r[p.rs]
		cycles += uint64(c.Cfg.JRPenalty)
		c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.JRPenalty)
		c.countCall(pc, next)
	case pSyscall:
		if err := c.syscall(r); err != nil {
			return err
		}
	case pBreak:
		return fmt.Errorf("cpu: break at %#x", pc)
	case pMFHI:
		c.setr(r, int(p.rd), c.hi)
	case pMFLO:
		c.setr(r, int(p.rd), c.lo)
	case pMULT:
		prod := int64(int32(r[p.rs])) * int64(int32(r[p.rt]))
		c.lo, c.hi = uint32(prod), uint32(prod>>32)
	case pMULTU:
		prod := uint64(r[p.rs]) * uint64(r[p.rt])
		c.lo, c.hi = uint32(prod), uint32(prod>>32)
	case pDIV:
		if r[p.rt] != 0 {
			c.lo = uint32(int32(r[p.rs]) / int32(r[p.rt]))
			c.hi = uint32(int32(r[p.rs]) % int32(r[p.rt]))
		}
	case pDIVU:
		if r[p.rt] != 0 {
			c.lo = r[p.rs] / r[p.rt]
			c.hi = r[p.rs] % r[p.rt]
		}
	case pADD:
		c.setr(r, int(p.rd), r[p.rs]+r[p.rt])
	case pSUB:
		c.setr(r, int(p.rd), r[p.rs]-r[p.rt])
	case pAND:
		c.setr(r, int(p.rd), r[p.rs]&r[p.rt])
	case pOR:
		c.setr(r, int(p.rd), r[p.rs]|r[p.rt])
	case pXOR:
		c.setr(r, int(p.rd), r[p.rs]^r[p.rt])
	case pNOR:
		c.setr(r, int(p.rd), ^(r[p.rs] | r[p.rt]))
	case pSLT:
		c.setr(r, int(p.rd), b2u(int32(r[p.rs]) < int32(r[p.rt])))
	case pSLTU:
		c.setr(r, int(p.rd), b2u(r[p.rs] < r[p.rt]))

	case pBLTZ:
		taken := int32(r[p.rs]) < 0
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}
	case pBGEZ:
		taken := int32(r[p.rs]) >= 0
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}

	case pJ:
		next = p.tgt
	case pJAL:
		c.setr(r, 31, pc+4)
		next = p.tgt
		c.countCall(pc, next)

	case pBEQ:
		taken := r[p.rs] == r[p.rt]
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}
	case pBNE:
		taken := r[p.rs] != r[p.rt]
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}
	case pBLEZ:
		taken := int32(r[p.rs]) <= 0
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}
	case pBGTZ:
		taken := int32(r[p.rs]) > 0
		cycles += c.branch(pc, taken)
		if taken {
			next = p.tgt
		}

	case pADDI:
		c.setr(r, int(p.rt), r[p.rs]+p.imm)
	case pSLTI:
		c.setr(r, int(p.rt), b2u(int32(r[p.rs]) < int32(p.imm)))
	case pSLTIU:
		c.setr(r, int(p.rt), b2u(r[p.rs] < p.imm))
	case pANDI:
		c.setr(r, int(p.rt), r[p.rs]&p.imm)
	case pORI:
		c.setr(r, int(p.rt), r[p.rs]|p.imm)
	case pXORI:
		c.setr(r, int(p.rt), r[p.rs]^p.imm)
	case pLUI:
		c.setr(r, int(p.rt), p.imm)

	case pMFC0:
		c.setr(r, int(p.rt), c.c0[p.rd])
	case pMTC0:
		c.c0[p.rd] = r[p.rt]
	case pIRET:
		if !c.inHandler {
			return fmt.Errorf("cpu: iret outside handler at %#x", pc)
		}
		c.inHandler = false
		c.bank = c.savedBank
		c.c0[6] &^= 1
		c.lastLoad = -1 // redirect drains the pipeline
		next = c.c0[4]  // EPC
		cycles += uint64(c.Cfg.IretCycles)
		c.Stats.CPIStack[CycleExcService] += uint64(c.Cfg.IretCycles)

	case pLB:
		addr := r[p.rs] + p.imm
		cycles += c.dRead(addr)
		c.setr(r, int(p.rt), uint32(int32(int8(c.Mem.LoadByte(addr)))))
	case pLBU:
		addr := r[p.rs] + p.imm
		cycles += c.dRead(addr)
		c.setr(r, int(p.rt), uint32(c.Mem.LoadByte(addr)))
	case pLH:
		addr := r[p.rs] + p.imm
		cycles += c.dRead(addr)
		if addr&1 != 0 {
			return fmt.Errorf("cpu: unaligned lh at %#x (addr %#x)", pc, addr)
		}
		c.setr(r, int(p.rt), uint32(int32(int16(c.Mem.ReadHalf(addr)))))
	case pLHU:
		addr := r[p.rs] + p.imm
		cycles += c.dRead(addr)
		if addr&1 != 0 {
			return fmt.Errorf("cpu: unaligned lhu at %#x (addr %#x)", pc, addr)
		}
		c.setr(r, int(p.rt), uint32(c.Mem.ReadHalf(addr)))
	case pLW:
		addr := r[p.rs] + p.imm
		cycles += c.dRead(addr)
		if addr&3 != 0 {
			return fmt.Errorf("cpu: unaligned lw at %#x (addr %#x)", pc, addr)
		}
		c.setr(r, int(p.rt), c.Mem.ReadWord(addr))

	case pSB:
		addr := r[p.rs] + p.imm
		c.Mem.StoreByte(addr, byte(r[p.rt]))
		c.noteHandlerStore(addr)
	case pSH:
		addr := r[p.rs] + p.imm
		if addr&1 != 0 {
			return fmt.Errorf("cpu: unaligned sh at %#x (addr %#x)", pc, addr)
		}
		c.Mem.WriteHalf(addr, uint16(r[p.rt]))
		c.noteHandlerStore(addr)
	case pSW:
		addr := r[p.rs] + p.imm
		if addr&3 != 0 {
			return fmt.Errorf("cpu: unaligned sw at %#x (addr %#x)", pc, addr)
		}
		c.Mem.WriteWord(addr, r[p.rt])
		c.noteHandlerStore(addr)

	case pSWIC:
		addr := r[p.rs] + p.imm
		if addr&3 != 0 {
			return fmt.Errorf("cpu: unaligned swic at %#x (addr %#x)", pc, addr)
		}
		c.IC.WriteWord(addr, r[p.rt])
		if !c.Cfg.DisablePredecode {
			c.predecodeSwic(addr)
		}
		cycles += uint64(c.Cfg.SwicExtraCycles)
		if wasHandler {
			c.Stats.CPIStack[CycleHandler] += uint64(c.Cfg.SwicExtraCycles)
		} else {
			c.Stats.CPIStack[CycleUser] += uint64(c.Cfg.SwicExtraCycles)
		}

	default:
		return illegalInstrError(p.raw, pc)
	}

	c.Stats.Cycles += cycles
	if wasHandler {
		c.Stats.CPIStack[CycleHandler]++ // the instruction's base cycle
	} else {
		c.Stats.CPIStack[CycleUser]++
	}
	if wasHandler && !c.inHandler {
		// This instruction was the iret: close the exception interval.
		lat := c.Stats.Cycles - c.excStart
		c.Stats.ExcCyclesTotal += lat
		if lat > c.Stats.ExcCyclesMax {
			c.Stats.ExcCyclesMax = lat
		}
		if c.Tel != nil {
			c.Tel.ExcReturn(next, c.Stats.Cycles, lat)
		}
	}
	if wasHandler {
		c.Stats.HandlerInstrs++
	} else {
		c.Stats.Instrs++
		if c.Prof != nil {
			c.Prof.CountInstr(pc)
		}
	}
	// The commit tracers fire after every Stats update for this
	// instruction, so a tracer observing Stats (the telemetry window
	// sampler) sees a consistent snapshot covering exactly the commits
	// delivered so far.
	if c.Trace != nil {
		c.Trace(pc, p.raw, wasHandler)
	}
	c.pc = next
	return nil
}

// illegalInstrError reconstructs the decode error for an unrecognised
// encoding from its raw word, preserving the exact legacy messages.
func illegalInstrError(w, pc uint32) error {
	switch isa.Op(w) {
	case isa.OpSpecial:
		return fmt.Errorf("cpu: illegal funct %#x at %#x", isa.Funct(w), pc)
	case isa.OpRegImm:
		return fmt.Errorf("cpu: illegal regimm %#x at %#x", isa.Rt(w), pc)
	case isa.OpCOP0:
		if isa.Rs(w) == isa.CopCO {
			return fmt.Errorf("cpu: illegal cop0 funct %#x at %#x", isa.Funct(w), pc)
		}
		return fmt.Errorf("cpu: illegal cop0 rs %#x at %#x", isa.Rs(w), pc)
	default:
		return fmt.Errorf("cpu: illegal opcode %#x at %#x", isa.Op(w), pc)
	}
}

func (c *CPU) countCall(from, to uint32) {
	if c.inHandler || c.Prof == nil {
		return
	}
	if cp, ok := c.Prof.(CallProfiler); ok {
		cp.CountCall(from, to)
	}
}

func (c *CPU) setr(r *[32]uint32, rd int, v uint32) {
	if rd != 0 {
		r[rd] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// branch trains the predictor and returns the penalty cycles.
func (c *CPU) branch(pc uint32, taken bool) uint64 {
	if c.BP.Update(pc, taken) {
		return 0
	}
	c.Stats.CPIStack[CycleBranch] += uint64(c.Cfg.MispredictPenalty)
	return uint64(c.Cfg.MispredictPenalty)
}

// dRead performs the D-cache access for a load and returns stall cycles.
// Stores are write-through/no-allocate and charge no stall (write buffer).
func (c *CPU) dRead(addr uint32) uint64 {
	if c.DC.Access(addr) {
		return 0
	}
	stall := c.Mem.Burst(c.Cfg.DCache.LineBytes)
	c.DC.Fill(c.DC.LineBase(addr), nil)
	c.Stats.LoadStalls += uint64(stall)
	c.Stats.CPIStack[CycleLoadStall] += uint64(stall)
	return uint64(stall)
}

func (c *CPU) syscall(r *[32]uint32) error {
	switch r[2] { // $v0
	case isa.SysPrintInt:
		c.print(fmt.Sprintf("%d", int32(r[4])))
	case isa.SysPrintHex:
		c.print(fmt.Sprintf("%#x", r[4]))
	case isa.SysPrintChar:
		c.print(string(rune(r[4] & 0xFF)))
	case isa.SysPrintString:
		addr := r[4]
		var buf []byte
		for i := 0; i < 4096; i++ {
			b := c.Mem.LoadByte(addr + uint32(i))
			if b == 0 {
				break
			}
			buf = append(buf, b)
		}
		c.print(string(buf))
	case isa.SysExit:
		c.halted = true
		c.exitCode = int32(r[4])
	default:
		return fmt.Errorf("cpu: unknown syscall %d at %#x", r[2], c.pc)
	}
	return nil
}

func (c *CPU) print(s string) {
	if c.Out != nil {
		io.WriteString(c.Out, s)
	}
}
