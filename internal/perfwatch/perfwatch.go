// Package perfwatch is the repository's performance-trajectory layer:
// a registry of named, versioned benchmark workloads (paper benchmarks ×
// compression schemes × cache configurations), a runner that measures
// each workload on two axes — exact simulated metrics and statistical
// host metrics — and schema-versioned BENCH_<host>.json trajectory files
// that accumulate one sample set per run. `ccbench compare` and
// `ccbench gate` turn the trajectory into a regression gate: simulated
// cycles are deterministic and compared exactly; host wall times are
// noisy and compared with a rank-sum significance test over repeated
// measurements, benchstat-style.
package perfwatch

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/parallel"
	"repro/internal/program"
	"repro/internal/selective"
)

// Workload is one registered benchmark configuration. Name is the
// stable identifier trajectory samples are joined on across runs;
// Version marks semantic changes to the workload definition — when a
// workload's meaning changes (different scheme options, different cache)
// bump Version instead of silently redefining it, and comparisons
// across versions are skipped rather than reported as regressions.
type Workload struct {
	Name    string `json:"name"`
	Version int    `json:"version"`

	// Bench names the synthetic benchmark (synth.Benchmarks).
	Bench string `json:"bench"`
	// Scheme is the compression scheme; empty means native code.
	Scheme program.Scheme `json:"scheme,omitempty"`
	// ShadowRF gives the handler the paper's second register file.
	ShadowRF bool `json:"shadow_rf,omitempty"`
	// SelectFrac > 0 keeps the hottest procedures (by the paper's miss
	// policy, profiled at the 16KB baseline) native — selective
	// compression at that coverage fraction.
	SelectFrac float64 `json:"select_frac,omitempty"`
	// CacheKB is the I-cache size in KB.
	CacheKB int `json:"cache_kb"`
}

// Desc returns a one-line human description of the workload.
func (w Workload) Desc() string {
	scheme := "native"
	if w.Scheme != "" {
		scheme = string(w.Scheme)
		if w.ShadowRF {
			scheme += "+rf"
		}
	}
	if w.SelectFrac > 0 {
		scheme = fmt.Sprintf("selective(%s, %.0f%% native by misses)", scheme, w.SelectFrac*100)
	}
	return fmt.Sprintf("%s, %s, %dKB I-cache", w.Bench, scheme, w.CacheKB)
}

// Registry returns the default workload set: a cross-section of the
// paper's evaluation space chosen so every future perf PR exercises the
// native simulator hot path, both software decompressors, the shadow
// register file, selective compression, procedure-granularity
// decompression, and the small/large cache extremes. Order is the
// execution and reporting order; names never change meaning without a
// Version bump.
func Registry() []Workload {
	return []Workload{
		{Name: "go/native/16K", Version: 1, Bench: "go", CacheKB: 16},
		{Name: "go/dict/16K", Version: 1, Bench: "go", Scheme: program.SchemeDict, CacheKB: 16},
		{Name: "go/dict+rf/16K", Version: 1, Bench: "go", Scheme: program.SchemeDict, ShadowRF: true, CacheKB: 16},
		{Name: "go/codepack+rf/16K", Version: 1, Bench: "go", Scheme: program.SchemeCodePack, ShadowRF: true, CacheKB: 16},
		{Name: "go/sel-dict-25/16K", Version: 1, Bench: "go", Scheme: program.SchemeDict, ShadowRF: true, SelectFrac: 0.25, CacheKB: 16},
		{Name: "cc1/codepack+rf/16K", Version: 1, Bench: "cc1", Scheme: program.SchemeCodePack, ShadowRF: true, CacheKB: 16},
		{Name: "pegwit/dict+rf/4K", Version: 1, Bench: "pegwit", Scheme: program.SchemeDict, ShadowRF: true, CacheKB: 4},
		{Name: "perl/dict+rf/64K", Version: 1, Bench: "perl", Scheme: program.SchemeDict, ShadowRF: true, CacheKB: 64},
		{Name: "mpeg2enc/procdict/16K", Version: 1, Bench: "mpeg2enc", Scheme: program.SchemeProcDict, CacheKB: 16},
		{Name: "vortex/native/16K", Version: 1, Bench: "vortex", CacheKB: 16},
		{Name: "go/lz/16K", Version: 1, Bench: "go", Scheme: program.Scheme("lz"), CacheKB: 16},
		{Name: "pegwit/lz+rf/4K", Version: 1, Bench: "pegwit", Scheme: program.Scheme("lz"), ShadowRF: true, CacheKB: 4},
	}
}

// Find returns the registered workload with the given name.
func Find(name string) (Workload, bool) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Runner executes workloads and produces Samples. It wraps an
// experiment.Suite so image building, compression and native baselines
// are shared across workloads; the timed simulations themselves always
// run fresh.
type Runner struct {
	// Scale is the dynamic-length multiplier applied to every benchmark
	// (the RTD_BENCH_SCALE axis; 1.0 = the calibrated full runs).
	Scale float64
	// Reps is how many timed repetitions feed the host metrics
	// (minimum 1; host significance testing needs >= 4).
	Reps int
	// Log receives per-repetition progress; nil discards it.
	Log *slog.Logger
	// Progress, when non-nil, is called after each completed workload
	// with (done, total) — the hook behind ccbench's expvar endpoint.
	// With Workers > 1 it is still invoked in registry order.
	Progress func(done, total int, last Sample)
	// Workers fans the workloads across that many goroutines (<= 0 or 1
	// runs serially). Samples keep registry order and simulated metrics
	// are bit-identical for any worker count, but concurrent timed runs
	// perturb each other's host wall times — keep 1 when the host axis
	// feeds a trajectory file, raise it for sim-only or smoke use.
	Workers int
	// Fast additionally measures the fast tier per workload: one sampled
	// run (its drift vs the exact axis feeds the ccbench sampled gate)
	// and one timed functional run (the host-speedup claim).
	Fast bool

	suite *experiment.Suite
}

// NewRunner returns a Runner at the given scale and repetition count.
func NewRunner(scale float64, reps int) *Runner {
	if reps < 1 {
		reps = 1
	}
	return &Runner{Scale: scale, Reps: reps, suite: experiment.NewSuite(scale)}
}

func (r *Runner) logger() *slog.Logger {
	if r.Log != nil {
		return r.Log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// options builds the compression options for a workload (resolving the
// selective-compression procedure set from the cached profile).
func (r *Runner) options(w Workload) (core.Options, error) {
	opts := core.Options{Scheme: w.Scheme, ShadowRF: w.ShadowRF}
	if w.SelectFrac > 0 {
		sel, err := r.suite.SelectNative(w.Bench, selective.ByMisses, w.SelectFrac)
		if err != nil {
			return core.Options{}, err
		}
		opts.NativeProcs = sel
	}
	return opts, nil
}

// RunWorkload measures one workload: Reps fresh simulations, each
// checked for identical simulated metrics (the simulator is
// deterministic — any divergence is a simulator bug and fails the run),
// host wall time and allocations recorded per repetition.
func (r *Runner) RunWorkload(w Workload) (Sample, error) {
	log := r.logger()
	opts, err := r.options(w)
	if err != nil {
		return Sample{}, fmt.Errorf("perfwatch: %s: %v", w.Name, err)
	}
	// Warm the caches (image build, compression, native baseline)
	// outside the timed region.
	if _, err := r.suite.NativeBaseline(w.Bench, w.CacheKB); err != nil {
		return Sample{}, fmt.Errorf("perfwatch: %s: %v", w.Name, err)
	}

	sample := Sample{Workload: w.Name, Version: w.Version}
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < r.Reps; rep++ {
		runtime.ReadMemStats(&ms0)
		//cccheck:allow(det) host axis: wall-clock measurement is the point of this timer
		start := time.Now()
		stats, err := r.suite.MeasureRun(w.Bench, opts, w.CacheKB)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return Sample{}, fmt.Errorf("perfwatch: %s rep %d: %v", w.Name, rep, err)
		}
		sim := NewSimMetrics(stats)
		if rep == 0 {
			sample.Sim = sim
		} else if diffs := sample.Sim.Diff(sim); len(diffs) != 0 {
			return Sample{}, fmt.Errorf("perfwatch: %s: simulated metrics diverged between repetitions (simulator nondeterminism): %v",
				w.Name, diffs)
		}
		sample.Host.WallNs = append(sample.Host.WallNs, wall.Nanoseconds())
		sample.Host.Allocs = append(sample.Host.Allocs, ms1.Mallocs-ms0.Mallocs)
		sample.Host.Bytes = append(sample.Host.Bytes, ms1.TotalAlloc-ms0.TotalAlloc)
		log.Info("rep", "workload", w.Name, "rep", rep,
			"cycles", sim.Cycles, "instrs", sim.Instrs, "wall_ms", float64(wall.Microseconds())/1000)
	}
	sample.Host.Finalize(sample.Sim.Instrs + sample.Sim.HandlerInstrs)

	// One extra untimed profiled run fills the spatial axis. The recorder
	// is a pure observer, so the profiled run's simulated metrics must be
	// bit-identical to the timed repetitions — asserted here on every
	// registry workload, turning each trajectory run into a standing
	// proof of observer purity.
	prof, err := r.suite.AttributedRun(w.Bench, opts, w.CacheKB)
	if err != nil {
		return Sample{}, fmt.Errorf("perfwatch: %s profiled run: %v", w.Name, err)
	}
	if diffs := sample.Sim.Diff(simFromCost(prof.Total)); len(diffs) != 0 {
		return Sample{}, fmt.Errorf("perfwatch: %s: profiled run diverged from timed runs (profile recorder must be a pure observer): %v",
			w.Name, diffs)
	}
	sample.Procs = prof.NamedCosts()

	if r.Fast {
		fast, err := r.measureFast(w, opts, sample.Sim)
		if err != nil {
			return Sample{}, err
		}
		sample.Fast = fast
		if sp, ok := sample.FunctSpeedup(); ok {
			log.Info("fast", "workload", w.Name,
				"sampled_cpi", fmt.Sprintf("%.4f", fast.SampledCPI),
				"drift_pct", fmt.Sprintf("%+.3f", fast.SampledDriftPct),
				"funct_speedup", fmt.Sprintf("%.1fx", sp))
		}
	}
	return sample, nil
}

// Run measures every workload in order and returns one trajectory entry
// stamped with the fingerprint. Workloads may be restricted to the
// named subset (nil = all).
func (r *Runner) Run(fp Fingerprint, only []string) (Entry, error) {
	log := r.logger()
	workloads := Registry()
	if len(only) > 0 {
		var filtered []Workload
		for _, name := range only {
			w, ok := Find(name)
			if !ok {
				return Entry{}, fmt.Errorf("perfwatch: unknown workload %q", name)
			}
			filtered = append(filtered, w)
		}
		workloads = filtered
	}
	//cccheck:allow(det) trajectory metadata: entries are stamped with host wall time, never compared bit-for-bit
	entry := Entry{Time: time.Now().UTC().Format(time.RFC3339), Fingerprint: fp}
	total := len(workloads)
	err := parallel.ForEachOrdered(r.Workers, total,
		func(i int) (Sample, error) {
			w := workloads[i]
			log.Info("workload", "name", w.Name, "desc", w.Desc(), "n", i+1, "of", total)
			return r.RunWorkload(w)
		},
		func(i int, s Sample, err error) error {
			if err != nil {
				return err
			}
			entry.Samples = append(entry.Samples, s)
			if r.Progress != nil {
				r.Progress(i+1, total, s)
			}
			return nil
		})
	if err != nil {
		return Entry{}, err
	}
	return entry, nil
}
