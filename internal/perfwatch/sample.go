package perfwatch

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/codec"
	"repro/internal/cpu"
	"repro/internal/profile"
)

// SimMetrics are the deterministic axis of a sample: everything here is
// a pure function of the workload definition and the simulator code, so
// across two trees any difference is a real behaviour change and is
// reported exactly, not statistically. Counters are kept as integers —
// derived ratios are computed at report time so comparison never goes
// through floating point.
type SimMetrics struct {
	Cycles        uint64 `json:"cycles"`
	Instrs        uint64 `json:"instrs"`
	HandlerInstrs uint64 `json:"handler_instrs"`

	Exceptions      uint64 `json:"exceptions"`
	IMissNative     uint64 `json:"imiss_native"`
	IMissCompressed uint64 `json:"imiss_compressed"`
	ExcCyclesMax    uint64 `json:"exc_cycles_max"`

	FetchStalls   uint64 `json:"fetch_stalls"`
	LoadStalls    uint64 `json:"load_stalls"`
	LoadUseStalls uint64 `json:"load_use_stalls"`

	// CPIStack maps cpu.CycleKind.Key() to attributed cycles; the values
	// sum exactly to Cycles (the simulator enforces this invariant).
	CPIStack map[string]uint64 `json:"cpi_stack"`
}

// NewSimMetrics digests cpu.Stats into the sample form.
func NewSimMetrics(s cpu.Stats) SimMetrics {
	m := SimMetrics{
		Cycles:          s.Cycles,
		Instrs:          s.Instrs,
		HandlerInstrs:   s.HandlerInstrs,
		Exceptions:      s.Exceptions,
		IMissNative:     s.IMissNative,
		IMissCompressed: s.IMissCompressed,
		ExcCyclesMax:    s.ExcCyclesMax,
		FetchStalls:     s.FetchStalls,
		LoadStalls:      s.LoadStalls,
		LoadUseStalls:   s.LoadUseStalls,
		CPIStack:        make(map[string]uint64, cpu.NumCycleKinds),
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		m.CPIStack[k.Key()] = s.CPIStack[k]
	}
	return m
}

// CPI returns cycles per committed user instruction.
func (m SimMetrics) CPI() float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instrs)
}

// MissRatio returns non-speculative I-cache misses per user instruction.
func (m SimMetrics) MissRatio() float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(m.IMissNative+m.IMissCompressed) / float64(m.Instrs)
}

// Diff returns a human-readable line per field that differs between the
// two metric sets (empty = exactly equal). Field order is stable.
func (m SimMetrics) Diff(o SimMetrics) []string {
	var diffs []string
	cmp := func(name string, a, b uint64) {
		if a != b {
			diffs = append(diffs, fmt.Sprintf("%s: %d -> %d (%+d)", name, a, b, int64(b)-int64(a)))
		}
	}
	cmp("cycles", m.Cycles, o.Cycles)
	cmp("instrs", m.Instrs, o.Instrs)
	cmp("handler_instrs", m.HandlerInstrs, o.HandlerInstrs)
	cmp("exceptions", m.Exceptions, o.Exceptions)
	cmp("imiss_native", m.IMissNative, o.IMissNative)
	cmp("imiss_compressed", m.IMissCompressed, o.IMissCompressed)
	cmp("exc_cycles_max", m.ExcCyclesMax, o.ExcCyclesMax)
	cmp("fetch_stalls", m.FetchStalls, o.FetchStalls)
	cmp("load_stalls", m.LoadStalls, o.LoadStalls)
	cmp("load_use_stalls", m.LoadUseStalls, o.LoadUseStalls)
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		cmp("cpi_stack."+k.Key(), m.CPIStack[k.Key()], o.CPIStack[k.Key()])
	}
	return diffs
}

// HostMetrics are the statistical axis of a sample: wall-clock time and
// allocation counts of the simulator process itself, one element per
// repetition. These vary with the machine, the scheduler and the
// garbage collector, so they are summarised by median/IQR and compared
// with a rank-sum test rather than exactly.
type HostMetrics struct {
	WallNs []int64  `json:"wall_ns"`
	Allocs []uint64 `json:"allocs"`
	Bytes  []uint64 `json:"bytes"`

	// Summary statistics over WallNs, filled by Finalize.
	MedianNs int64 `json:"median_ns"`
	IQRNs    int64 `json:"iqr_ns"`
	// NsPerInstr is MedianNs divided by total simulated instructions
	// (user + handler) — the simulator's headline speed number.
	NsPerInstr float64 `json:"ns_per_instr"`
}

// Finalize computes the summary statistics from the raw repetitions.
func (h *HostMetrics) Finalize(simInstrs uint64) {
	if len(h.WallNs) == 0 {
		return
	}
	h.MedianNs = medianInt64(h.WallNs)
	h.IQRNs = iqrInt64(h.WallNs)
	if simInstrs > 0 {
		h.NsPerInstr = float64(h.MedianNs) / float64(simInstrs)
	}
}

// Sample is one workload's measurement: the exact simulated axis plus
// the statistical host axis.
type Sample struct {
	Workload string      `json:"workload"`
	Version  int         `json:"version"`
	Sim      SimMetrics  `json:"sim"`
	Host     HostMetrics `json:"host"`

	// Procs is the spatial axis: per-procedure attributed cost from one
	// extra untimed profiled run (nonzero procedures in address order,
	// profile.NamedCosts form). The gate uses it to *name* the top
	// regressing procedures when simulated metrics change. Empty in
	// entries written before the attribution layer existed — comparisons
	// then simply omit the clause.
	Procs []profile.NamedCost `json:"procs,omitempty"`

	// Fast is the fast-tier axis (sampled CPI estimate + functional host
	// speed), collected when Runner.Fast is set. Nil in entries measured
	// without it — omitted from JSON so older rows stay bit-identical.
	Fast *FastMetrics `json:"fast,omitempty"`
}

// simFromCost rebuilds SimMetrics from a profile's whole-run total.
// The attribution layer carries the complete cpu.Stats decomposition,
// so the reconstruction is lossless — RunWorkload uses it to assert
// that the profiled observer run reproduced the timed repetitions'
// simulated metrics exactly.
func simFromCost(c profile.Cost) SimMetrics {
	m := SimMetrics{
		Cycles:          c.Cycles,
		Instrs:          c.Instrs,
		HandlerInstrs:   c.HandlerInstrs,
		Exceptions:      c.Exceptions,
		IMissNative:     c.IMissNative,
		IMissCompressed: c.IMissCompressed,
		ExcCyclesMax:    c.ExcCyclesMax,
		FetchStalls:     c.FetchStalls,
		LoadStalls:      c.LoadStalls,
		LoadUseStalls:   c.LoadUseStalls,
		CPIStack:        make(map[string]uint64, cpu.NumCycleKinds),
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		m.CPIStack[k.Key()] = c.CPIStack[k]
	}
	return m
}

// Fingerprint identifies the configuration a trajectory entry was
// measured under. Simulated metrics are comparable whenever Scale
// matches; host metrics are only comparable when the whole fingerprint
// (minus GitSHA and Time) matches.
type Fingerprint struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Hostname   string  `json:"hostname,omitempty"`
	Scale      float64 `json:"scale"`
	Reps       int     `json:"reps"`
	GitSHA     string  `json:"git_sha,omitempty"`
	// Codecs are the registered codec names (sorted), so a trajectory
	// entry records exactly which compression schemes the build carried.
	Codecs []string `json:"codecs,omitempty"`
}

// NewFingerprint captures the current process configuration. GitSHA is
// left for the caller (it needs the working tree, not the runtime).
func NewFingerprint(scale float64, reps int) Fingerprint {
	host, _ := os.Hostname()
	return Fingerprint{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Hostname:   host,
		Scale:      scale,
		Reps:       reps,
		Codecs:     codec.Names(),
	}
}

// HostComparable reports whether host metrics measured under the two
// fingerprints may be meaningfully compared.
func (f Fingerprint) HostComparable(o Fingerprint) bool {
	return f.GoVersion == o.GoVersion && f.GOOS == o.GOOS && f.GOARCH == o.GOARCH &&
		f.GOMAXPROCS == o.GOMAXPROCS && f.Hostname == o.Hostname && f.Scale == o.Scale
}

// Entry is one complete registry run: a fingerprint plus one sample per
// workload, in registry order.
type Entry struct {
	Time        string      `json:"time"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Samples     []Sample    `json:"samples"`
}

// Sample returns the entry's sample for the named workload.
func (e Entry) Sample(workload string) (Sample, bool) {
	for _, s := range e.Samples {
		if s.Workload == workload {
			return s, true
		}
	}
	return Sample{}, false
}
