package perfwatch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profile"
)

// testScale keeps the measured runs small; the registry workloads are
// exercised one at a time.
const testScale = 0.02

// TestRegistry locks the registry's shape: at least 8 workloads (the
// acceptance floor), unique stable names, every one resolvable by Find.
func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) < 8 {
		t.Fatalf("registry has %d workloads, need >= 8", len(reg))
	}
	seen := map[string]bool{}
	for _, w := range reg {
		if w.Name == "" || w.Bench == "" || w.CacheKB == 0 || w.Version == 0 {
			t.Errorf("workload %+v has empty identity fields", w)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if got, ok := Find(w.Name); !ok || got.Name != w.Name {
			t.Errorf("Find(%q) failed", w.Name)
		}
	}
	if _, ok := Find("no/such/workload"); ok {
		t.Error("Find invented a workload")
	}
}

// runEntry measures the named workloads once with the given reps.
func runEntry(t *testing.T, reps int, only ...string) Entry {
	t.Helper()
	r := NewRunner(testScale, reps)
	fp := NewFingerprint(testScale, reps)
	entry, err := r.Run(fp, only)
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

// TestDeterminism runs the same workload in two fresh runners and
// demands bit-identical simulated metrics — the property the whole
// exact-comparison axis rests on. (Each RunWorkload additionally
// cross-checks its own repetitions; reps=2 exercises that too.)
func TestDeterminism(t *testing.T) {
	a := runEntry(t, 2, "go/dict/16K")
	b := runEntry(t, 2, "go/dict/16K")
	sa, _ := a.Sample("go/dict/16K")
	sb, _ := b.Sample("go/dict/16K")
	if diffs := sa.Sim.Diff(sb.Sim); len(diffs) != 0 {
		t.Fatalf("back-to-back runs diverged:\n%s", strings.Join(diffs, "\n"))
	}
	if sa.Sim.Cycles == 0 || sa.Sim.Instrs == 0 {
		t.Fatal("degenerate sample (no cycles/instrs)")
	}
	if sa.Sim.Exceptions == 0 {
		t.Fatal("dict workload took no decompression exceptions; workload is vacuous")
	}
	// CPI stack must sum exactly to cycles even through the map form.
	var sum uint64
	for _, v := range sa.Sim.CPIStack {
		sum += v
	}
	if sum != sa.Sim.Cycles {
		t.Fatalf("CPI stack sums to %d, cycles %d", sum, sa.Sim.Cycles)
	}
	if len(sa.Host.WallNs) != 2 || sa.Host.MedianNs == 0 {
		t.Fatalf("host metrics not collected: %+v", sa.Host)
	}
	// The spatial axis: the profiled observer run filled Procs, its
	// per-procedure cycles decompose Sim.Cycles exactly, and back-to-back
	// runs attribute identically.
	if len(sa.Procs) == 0 {
		t.Fatal("sample carries no per-procedure attribution")
	}
	var procSum uint64
	for _, p := range sa.Procs {
		procSum += p.Cycles
	}
	if procSum != sa.Sim.Cycles {
		t.Fatalf("proc attribution sums to %d, sample has %d cycles", procSum, sa.Sim.Cycles)
	}
	if len(sa.Procs) != len(sb.Procs) {
		t.Fatalf("attribution diverged: %d vs %d procedures", len(sa.Procs), len(sb.Procs))
	}
	for i := range sa.Procs {
		if sa.Procs[i] != sb.Procs[i] {
			t.Fatalf("attribution diverged at %d: %+v vs %+v", i, sa.Procs[i], sb.Procs[i])
		}
	}
}

// TestTrajectoryRoundTrip is the golden round-trip: append two entries
// to a file, load it back, and compare — identical runs must report
// zero simulated deltas on every workload.
func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName("unit"))

	e1 := runEntry(t, 1, "go/native/16K", "pegwit/dict+rf/4K")
	e2 := runEntry(t, 1, "go/native/16K", "pegwit/dict+rf/4K")

	traj, err := Load(path) // missing file -> fresh trajectory
	if err != nil {
		t.Fatal(err)
	}
	if err := traj.Append(path, e1, 0); err != nil {
		t.Fatal(err)
	}
	if err := traj.Append(path, e2, 0); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SchemaVersion != TrajectorySchema {
		t.Fatalf("schema version %d, want %d", loaded.SchemaVersion, TrajectorySchema)
	}
	if loaded.Host != "unit" {
		t.Fatalf("host %q, want unit", loaded.Host)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(loaded.Entries))
	}

	c := CompareEntries(loaded.Entries[0], loaded.Entries[1])
	if len(c.Deltas) != 2 {
		t.Fatalf("%d deltas, want 2", len(c.Deltas))
	}
	for _, d := range c.Deltas {
		if d.Status != StatusSame {
			t.Errorf("%s: status %s (note %q, diffs %v), want same", d.Workload, d.Status, d.Note, d.SimDiffs)
		}
		if d.CycleDelta != 0 {
			t.Errorf("%s: cycle delta %v on identical runs", d.Workload, d.CycleDelta)
		}
	}
	if !c.HostComparable {
		t.Error("same-process fingerprints should be host-comparable")
	}
	if c.SimChanged() {
		t.Error("identical runs reported a simulated change")
	}
}

// TestTrajectoryKeep checks the entry-retention cap.
func TestTrajectoryKeep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_keep.json")
	traj := &Trajectory{SchemaVersion: TrajectorySchema, Host: "keep"}
	for i := 0; i < 5; i++ {
		if err := traj.Append(path, Entry{Time: string(rune('a' + i))}, 3); err != nil {
			t.Fatal(err)
		}
	}
	if len(traj.Entries) != 3 {
		t.Fatalf("kept %d entries, want 3", len(traj.Entries))
	}
	if traj.Entries[0].Time != "c" || traj.Entries[2].Time != "e" {
		t.Fatalf("wrong entries survived: %+v", traj.Entries)
	}
}

// TestTrajectorySchemaGuards: unknown/newer schema versions are
// rejected, not silently misread.
func TestTrajectorySchemaGuards(t *testing.T) {
	dir := t.TempDir()
	newer := filepath.Join(dir, "BENCH_newer.json")
	os.WriteFile(newer, []byte(`{"schema_version": 999, "host": "x", "entries": []}`), 0o644)
	if _, err := Load(newer); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future schema accepted: %v", err)
	}
	unversioned := filepath.Join(dir, "BENCH_unversioned.json")
	os.WriteFile(unversioned, []byte(`{"host": "x"}`), 0o644)
	if _, err := Load(unversioned); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("unversioned file accepted: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "BENCH_garbage.json")); err != nil {
		t.Fatalf("missing file should yield empty trajectory, got %v", err)
	}
}

// TestGateCatchesInjectedRegression is the gate self-test: a +5%
// simulated-cycle regression injected into an otherwise identical run
// must produce violations on every perturbed workload, and the clean
// comparison must pass.
func TestGateCatchesInjectedRegression(t *testing.T) {
	base := runEntry(t, 1, "go/dict/16K", "go/native/16K")
	clean := runEntry(t, 1, "go/dict/16K", "go/native/16K")

	policy := GatePolicy{}
	if vs := policy.Check(CompareEntries(base, clean)); len(vs) != 0 {
		t.Fatalf("clean run violated the gate: %+v", vs)
	}

	regressed := runEntry(t, 1, "go/dict/16K", "go/native/16K")
	PerturbSim(&regressed, 1.05)
	vs := policy.Check(CompareEntries(base, regressed))
	if len(vs) != 2 {
		t.Fatalf("expected 2 violations (one per workload), got %+v", vs)
	}
	for _, v := range vs {
		if !strings.Contains(v.Reason, "simulated metrics changed") {
			t.Errorf("violation reason %q", v.Reason)
		}
		if !strings.Contains(v.Reason, "+5.0") {
			t.Errorf("violation should carry the +5%% delta: %q", v.Reason)
		}
		if !strings.Contains(v.Reason, "top regressing procedures: ") {
			t.Errorf("violation should name the regressing procedures: %q", v.Reason)
		}
	}
	// The explanation clause is deterministic: re-running the comparison
	// and gate must reproduce every reason byte for byte.
	again := policy.Check(CompareEntries(base, regressed))
	for i := range vs {
		if vs[i] != again[i] {
			t.Errorf("gate output not deterministic:\n  %+v\n  %+v", vs[i], again[i])
		}
	}

	// AllowSimChange waives the simulated gate (re-baselining PRs).
	if vs := (GatePolicy{AllowSimChange: true}).Check(CompareEntries(base, regressed)); len(vs) != 0 {
		t.Fatalf("AllowSimChange still violated: %+v", vs)
	}
}

// TestProcRegressionClause pins the gate's explanation clause with
// synthetic attribution: top-3 cap, positive-delta filter, name-sorted
// tie-breaking, and graceful omission when the baseline predates the
// attribution axis.
func TestProcRegressionClause(t *testing.T) {
	mk := func(cycles uint64, procs []profile.NamedCost) Entry {
		return Entry{
			Fingerprint: Fingerprint{Scale: 1},
			Samples: []Sample{{Workload: "w", Version: 1,
				Sim:   SimMetrics{Cycles: cycles, Instrs: 1, CPIStack: map[string]uint64{"user_execute": cycles}},
				Procs: procs}},
		}
	}
	old := mk(100, []profile.NamedCost{
		{Name: "hot", Cycles: 40}, {Name: "warm", Cycles: 30},
		{Name: "tie_b", Cycles: 10}, {Name: "tie_a", Cycles: 10}, {Name: "fell", Cycles: 10},
	})
	new := mk(190, []profile.NamedCost{
		{Name: "hot", Cycles: 90, DecompCycles: 25}, // +50 (decomp +25)
		{Name: "warm", Cycles: 30},                  // unchanged
		{Name: "tie_b", Cycles: 30},                 // +20, ties with tie_a
		{Name: "tie_a", Cycles: 30},                 // +20
		{Name: "fell", Cycles: 5},                   // improved: excluded
		{Name: "grew", Cycles: 35},                  // +35, absent in old
	})

	vs := GatePolicy{}.Check(CompareEntries(old, new))
	if len(vs) != 1 {
		t.Fatalf("expected 1 violation, got %+v", vs)
	}
	want := "top regressing procedures: hot +50 cycles (decomp +25), grew +35 cycles, tie_a +20 cycles"
	if !strings.Contains(vs[0].Reason, want) {
		t.Fatalf("reason %q\nwant clause %q", vs[0].Reason, want)
	}

	// A baseline without attribution (pre-attribution trajectory entry)
	// still gates on the totals, just without the clause.
	bare := old
	bare.Samples[0].Procs = nil
	vs = GatePolicy{}.Check(CompareEntries(bare, new))
	if len(vs) != 1 || strings.Contains(vs[0].Reason, "top regressing") {
		t.Fatalf("attribution-less baseline mishandled: %+v", vs)
	}
}

// TestCompareSkips covers the non-comparable paths: version bumps,
// added and removed workloads, scale mismatches.
func TestCompareSkips(t *testing.T) {
	mk := func(name string, version int, cycles uint64) Sample {
		return Sample{Workload: name, Version: version,
			Sim: SimMetrics{Cycles: cycles, Instrs: 1, CPIStack: map[string]uint64{"user_execute": cycles}}}
	}
	fp := Fingerprint{Scale: 0.1}
	old := Entry{Fingerprint: fp, Samples: []Sample{mk("a", 1, 100), mk("b", 1, 100), mk("gone", 1, 5)}}
	new := Entry{Fingerprint: fp, Samples: []Sample{mk("a", 2, 200), mk("b", 1, 100), mk("added", 1, 7)}}

	c := CompareEntries(old, new)
	byName := map[string]WorkloadDelta{}
	for _, d := range c.Deltas {
		byName[d.Workload] = d
	}
	if d := byName["a"]; d.Status != StatusSkipped || !strings.Contains(d.Note, "version") {
		t.Errorf("version bump: %+v", d)
	}
	if d := byName["b"]; d.Status != StatusSame {
		t.Errorf("unchanged: %+v", d)
	}
	if d := byName["gone"]; d.Status != StatusSkipped || !strings.Contains(d.Note, "removed") {
		t.Errorf("removed: %+v", d)
	}
	if d := byName["added"]; d.Status != StatusSkipped || !strings.Contains(d.Note, "baseline") {
		t.Errorf("added: %+v", d)
	}
	if (GatePolicy{}).Check(c) != nil {
		t.Error("skipped workloads must not violate the gate")
	}

	// A scale mismatch skips everything — different workloads entirely.
	newScale := new
	newScale.Fingerprint.Scale = 0.2
	for _, d := range CompareEntries(old, newScale).Deltas {
		if d.Status != StatusSkipped {
			t.Errorf("scale mismatch compared %s: %+v", d.Workload, d)
		}
	}
}

// TestHostGate drives the statistical axis with synthetic wall times:
// a clearly separated slowdown beyond the threshold fails, an
// insignificant or sub-threshold one does not.
func TestHostGate(t *testing.T) {
	entry := func(ns []int64) Entry {
		h := HostMetrics{WallNs: ns}
		h.Finalize(1000)
		return Entry{
			Fingerprint: Fingerprint{GoVersion: "go", Scale: 1},
			Samples: []Sample{{Workload: "w", Version: 1,
				Sim:  SimMetrics{Cycles: 10, Instrs: 1, CPIStack: map[string]uint64{"user_execute": 10}},
				Host: h}},
		}
	}
	fast := entry([]int64{100, 101, 99, 100, 102, 98})
	slow := entry([]int64{150, 151, 149, 150, 152, 148}) // +50%, cleanly separated

	c := CompareEntries(fast, slow)
	if !c.HostComparable {
		t.Fatal("fingerprints should be host-comparable")
	}
	d := c.Deltas[0]
	if d.Status != StatusSame {
		t.Fatalf("sim metrics should match: %+v", d)
	}
	if d.Host == nil || !d.Host.Significant {
		t.Fatalf("separated distributions not significant: %+v", d.Host)
	}
	if vs := (GatePolicy{HostThreshold: 0.2}).Check(c); len(vs) != 1 ||
		!strings.Contains(vs[0].Reason, "host wall time regressed") {
		t.Fatalf("host gate missed a +50%% regression: %+v", vs)
	}
	// Below threshold: +50% > 0.6? no violation at a 60% threshold.
	if vs := (GatePolicy{HostThreshold: 0.6}).Check(c); len(vs) != 0 {
		t.Fatalf("sub-threshold slowdown violated: %+v", vs)
	}
	// Sim-only gate (threshold 0) ignores host entirely.
	if vs := (GatePolicy{}).Check(c); len(vs) != 0 {
		t.Fatalf("sim-only gate used host metrics: %+v", vs)
	}
	// Too few repetitions: never significant, never gated.
	few := CompareEntries(entry([]int64{100, 100}), entry([]int64{200, 200}))
	if d := few.Deltas[0]; d.Host.Significant {
		t.Fatalf("2-rep comparison claimed significance: %+v", d.Host)
	}
}
