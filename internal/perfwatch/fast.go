package perfwatch

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/fastpath"
)

// FastMetrics is the sampled/functional axis of a sample, collected
// when Runner.Fast is set. The sampled numbers are deterministic (the
// sampling schedule is systematic and both engines are deterministic);
// the functional wall time is a host metric. Entries written before
// the fast tier existed simply lack the stanza (`fast` is omitempty),
// so old trajectory rows stay bit-identical.
type FastMetrics struct {
	// SampledCPI is the fastpath.Sampled estimate with its 95% bounds.
	SampledCPI     float64 `json:"sampled_cpi"`
	SampledCPILow  float64 `json:"sampled_cpi_low"`
	SampledCPIHigh float64 `json:"sampled_cpi_high"`
	// SampledEstCycles is the estimated whole-run cycle count; the gate
	// compares it against the exact Sim.Cycles of the same sample.
	SampledEstCycles uint64 `json:"sampled_est_cycles"`
	// SampledDriftPct is the recorded estimate error vs the exact run,
	// in percent (CheckFast recomputes it live rather than trusting it).
	SampledDriftPct float64 `json:"sampled_drift_pct"`
	Windows         int     `json:"windows"`
	Bursts          int     `json:"bursts"`
	DetailedInstrs  uint64  `json:"detailed_instrs"`
	TotalInstrs     uint64  `json:"total_instrs"`

	// FunctWallNs / FunctInstrs time one purely functional run (user +
	// handler instructions); FunctNsPerInstr is their ratio, comparable
	// with Host.NsPerInstr for the fast tier's host-speedup claim.
	FunctWallNs     int64   `json:"funct_wall_ns"`
	FunctInstrs     uint64  `json:"funct_instrs"`
	FunctNsPerInstr float64 `json:"funct_ns_per_instr"`
}

// SampledDrift returns the live estimate error of the sampled axis vs
// the exact simulated cycles, in percent.
func (s Sample) SampledDrift() (float64, bool) {
	if s.Fast == nil || s.Sim.Cycles == 0 {
		return 0, false
	}
	return 100 * (float64(s.Fast.SampledEstCycles) - float64(s.Sim.Cycles)) / float64(s.Sim.Cycles), true
}

// FunctSpeedup returns the fast-forward host speedup: how many times
// faster the functional engine gets through this workload's program
// than the detailed engine (median detailed wall over functional wall,
// both timed around the same cpu.New+Load+run shape). Wall-for-wall is
// the honest metric — a per-instruction ratio would hide the functional
// engine's other advantage, that it executes each compressed line's
// handler burst once instead of once per I-cache re-fault.
func (s Sample) FunctSpeedup() (float64, bool) {
	if s.Fast == nil || s.Fast.FunctWallNs == 0 || s.Host.MedianNs == 0 {
		return 0, false
	}
	return float64(s.Host.MedianNs) / float64(s.Fast.FunctWallNs), true
}

// measureFast fills the fast-tier axis for one workload: one sampled
// run (deterministic, drift-checked against the exact axis) and one
// timed functional run (host speed).
func (r *Runner) measureFast(w Workload, opts core.Options, sim SimMetrics) (*FastMetrics, error) {
	res, err := r.suite.SampledRun(w.Bench, opts, w.CacheKB, fastpath.SampleConfig{})
	if err != nil {
		return nil, fmt.Errorf("perfwatch: %s: %v", w.Name, err)
	}
	//cccheck:allow(det) host axis: the functional engine's wall-clock speed is the measurement
	start := time.Now()
	fstats, err := r.suite.FunctionalRun(w.Bench, opts, w.CacheKB)
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("perfwatch: %s: %v", w.Name, err)
	}
	f := &FastMetrics{
		SampledCPI:       res.CPI,
		SampledCPILow:    res.CPILow,
		SampledCPIHigh:   res.CPIHigh,
		SampledEstCycles: res.EstCycles,
		Windows:          res.Windows,
		Bursts:           res.Bursts,
		DetailedInstrs:   res.DetailedInstrs,
		TotalInstrs:      res.TotalInstrs,
		FunctWallNs:      wall.Nanoseconds(),
		FunctInstrs:      fstats.Instrs + fstats.HandlerInstrs,
	}
	if f.FunctInstrs > 0 {
		f.FunctNsPerInstr = float64(f.FunctWallNs) / float64(f.FunctInstrs)
	}
	if sim.Cycles > 0 {
		f.SampledDriftPct = 100 * (float64(res.EstCycles) - float64(sim.Cycles)) / float64(sim.Cycles)
	}
	return f, nil
}

// CheckFast gates the sampled axis of one entry: every sample must
// carry fast-tier metrics whose estimated cycles are within limitPct of
// the exact simulated cycles. Unlike GatePolicy.Check this needs no
// baseline — the exact axis of the same entry is the ground truth.
func CheckFast(e Entry, limitPct float64) []Violation {
	var vs []Violation
	for _, s := range e.Samples {
		drift, ok := s.SampledDrift()
		if !ok {
			vs = append(vs, Violation{Workload: s.Workload,
				Reason: "no sampled axis in entry (measure with `ccbench run -sampled` / `ccbench gate -sampled`)"})
			continue
		}
		if math.Abs(drift) > limitPct {
			vs = append(vs, Violation{Workload: s.Workload,
				Reason: fmt.Sprintf("sampled CPI drifted %+.3f%% from exact (est %d vs %d cycles, limit ±%.2f%%)",
					drift, s.Fast.SampledEstCycles, s.Sim.Cycles, limitPct)})
		}
	}
	return vs
}

// PerturbSampled multiplies every sampled cycle estimate in the entry
// by factor — the fast-tier analogue of PerturbSim, used by the gate's
// must-fail self-test (`ccbench gate -sampled -perturb-sampled 1.05`)
// to prove the drift gate actually fires. It mutates the entry in
// place.
func PerturbSampled(e *Entry, factor float64) {
	for i := range e.Samples {
		f := e.Samples[i].Fast
		if f == nil {
			continue
		}
		f.SampledEstCycles = uint64(float64(f.SampledEstCycles) * factor)
		f.SampledCPI *= factor
		f.SampledCPILow *= factor
		f.SampledCPIHigh *= factor
	}
}
