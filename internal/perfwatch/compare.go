package perfwatch

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/profile"
)

// Status classifies one workload's old-vs-new comparison.
type Status string

// Comparison outcomes.
const (
	// StatusSame: simulated metrics exactly equal (host may still differ).
	StatusSame Status = "same"
	// StatusFaster / StatusSlower: simulated cycles changed down / up.
	StatusFaster Status = "faster"
	StatusSlower Status = "slower"
	// StatusChanged: cycles equal but some other simulated counter moved
	// (e.g. a stall reclassified between CPI components).
	StatusChanged Status = "changed"
	// StatusSkipped: workload version differs, or the workload exists on
	// only one side — no comparison possible.
	StatusSkipped Status = "skipped"
)

// HostDelta is the statistical host-axis comparison of one workload.
type HostDelta struct {
	OldMedianNs int64   `json:"old_median_ns"`
	NewMedianNs int64   `json:"new_median_ns"`
	Delta       float64 `json:"delta"` // (new-old)/old
	P           float64 `json:"p"`     // Mann–Whitney two-sided p-value
	Significant bool    `json:"significant"`
}

// WorkloadDelta is one workload's full comparison.
type WorkloadDelta struct {
	Workload string `json:"workload"`
	Status   Status `json:"status"`
	Note     string `json:"note,omitempty"`

	OldCycles  uint64   `json:"old_cycles,omitempty"`
	NewCycles  uint64   `json:"new_cycles,omitempty"`
	CycleDelta float64  `json:"cycle_delta,omitempty"` // (new-old)/old
	SimDiffs   []string `json:"sim_diffs,omitempty"`

	// ProcRegressions names the top regressing procedures when the
	// simulated metrics differ and both samples carry per-procedure
	// attribution, e.g. "hot +12345 cycles (decomp +9876), warm +11
	// cycles" (profile.NamedRegressions; deterministic order). Empty
	// when nothing changed or either side predates the attribution axis.
	ProcRegressions string `json:"proc_regressions,omitempty"`

	// Host is nil when the two fingerprints are not host-comparable.
	Host *HostDelta `json:"host,omitempty"`
}

// Comparison is the full old-vs-new report.
type Comparison struct {
	HostComparable bool            `json:"host_comparable"`
	ScaleMatch     bool            `json:"scale_match"`
	Deltas         []WorkloadDelta `json:"deltas"`
}

// Alpha is the significance level for the host rank-sum test.
const Alpha = 0.05

// CompareEntries compares two trajectory entries workload by workload.
// Simulated metrics require equal Scale in the fingerprints (a scale
// mismatch marks every workload skipped — different workloads entirely);
// host metrics additionally require HostComparable fingerprints.
func CompareEntries(old, new Entry) Comparison {
	c := Comparison{
		HostComparable: old.Fingerprint.HostComparable(new.Fingerprint),
		ScaleMatch:     old.Fingerprint.Scale == new.Fingerprint.Scale,
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(old.Samples)+len(new.Samples))
	for _, s := range old.Samples {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			names = append(names, s.Workload)
		}
	}
	for _, s := range new.Samples {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			names = append(names, s.Workload)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		d := WorkloadDelta{Workload: name}
		o, haveOld := old.Sample(name)
		n, haveNew := new.Sample(name)
		switch {
		case !haveOld:
			d.Status, d.Note = StatusSkipped, "new workload (no baseline)"
		case !haveNew:
			d.Status, d.Note = StatusSkipped, "workload removed"
		case o.Version != n.Version:
			d.Status = StatusSkipped
			d.Note = fmt.Sprintf("workload version changed (v%d -> v%d)", o.Version, n.Version)
		case !c.ScaleMatch:
			d.Status = StatusSkipped
			d.Note = fmt.Sprintf("scale mismatch (%.3g vs %.3g)", old.Fingerprint.Scale, new.Fingerprint.Scale)
		default:
			d.OldCycles, d.NewCycles = o.Sim.Cycles, n.Sim.Cycles
			if o.Sim.Cycles != 0 {
				d.CycleDelta = (float64(n.Sim.Cycles) - float64(o.Sim.Cycles)) / float64(o.Sim.Cycles)
			}
			d.SimDiffs = o.Sim.Diff(n.Sim)
			if len(d.SimDiffs) > 0 && len(o.Procs) > 0 && len(n.Procs) > 0 {
				d.ProcRegressions = profile.NamedRegressions(o.Procs, n.Procs, 3)
			}
			switch {
			case len(d.SimDiffs) == 0:
				d.Status = StatusSame
			case n.Sim.Cycles > o.Sim.Cycles:
				d.Status = StatusSlower
			case n.Sim.Cycles < o.Sim.Cycles:
				d.Status = StatusFaster
			default:
				d.Status = StatusChanged
			}
			if c.HostComparable {
				h := &HostDelta{
					OldMedianNs: o.Host.MedianNs,
					NewMedianNs: n.Host.MedianNs,
					P:           mannWhitneyP(o.Host.WallNs, n.Host.WallNs),
				}
				if h.OldMedianNs != 0 {
					h.Delta = (float64(h.NewMedianNs) - float64(h.OldMedianNs)) / float64(h.OldMedianNs)
				}
				h.Significant = h.P < Alpha
				d.Host = h
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// SimChanged reports whether any workload's simulated metrics differ.
func (c Comparison) SimChanged() bool {
	for _, d := range c.Deltas {
		if d.Status == StatusSlower || d.Status == StatusFaster || d.Status == StatusChanged {
			return true
		}
	}
	return false
}

// Format renders the comparison as an aligned table. verbose adds the
// per-field simulated diffs under each changed workload.
func (c Comparison) Format(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "%-24s %-8s %14s %14s %9s  %s\n",
		"workload", "status", "old cycles", "new cycles", "Δcycles", "host wall (median)")
	for _, d := range c.Deltas {
		host := "n/a"
		if d.Host != nil {
			mark := "~" // not significant
			if d.Host.Significant {
				mark = "!"
			}
			host = fmt.Sprintf("%.2fms -> %.2fms (%+.1f%% %s p=%.3f)",
				float64(d.Host.OldMedianNs)/1e6, float64(d.Host.NewMedianNs)/1e6,
				d.Host.Delta*100, mark, d.Host.P)
		}
		switch d.Status {
		case StatusSkipped:
			fmt.Fprintf(w, "%-24s %-8s %14s %14s %9s  %s\n", d.Workload, d.Status, "-", "-", "-", d.Note)
		default:
			fmt.Fprintf(w, "%-24s %-8s %14d %14d %+8.3f%%  %s\n",
				d.Workload, d.Status, d.OldCycles, d.NewCycles, d.CycleDelta*100, host)
			if verbose && len(d.SimDiffs) > 0 {
				for _, diff := range d.SimDiffs {
					fmt.Fprintf(w, "    %s\n", diff)
				}
				if d.ProcRegressions != "" {
					fmt.Fprintf(w, "    top regressing procedures: %s\n", d.ProcRegressions)
				}
			}
		}
	}
	if !c.HostComparable {
		fmt.Fprintf(w, "note: fingerprints differ (host/go/scale); host wall times not compared\n")
	}
}

// Summary returns a one-line digest, e.g. "2 slower, 8 same".
func (c Comparison) Summary() string {
	counts := map[Status]int{}
	for _, d := range c.Deltas {
		counts[d.Status]++
	}
	var parts []string
	for _, st := range []Status{StatusSlower, StatusFaster, StatusChanged, StatusSame, StatusSkipped} {
		if counts[st] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[st], st))
		}
	}
	if len(parts) == 0 {
		return "no workloads compared"
	}
	return strings.Join(parts, ", ")
}
