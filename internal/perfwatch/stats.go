package perfwatch

import (
	"math"
	"sort"
)

// Order statistics and the Mann–Whitney U rank-sum test used to decide
// whether two sets of host wall-time repetitions plausibly come from the
// same distribution — the same test benchstat applies to Go benchmark
// results. With the small repetition counts perfwatch uses (5–10) the
// normal approximation with tie correction is accurate enough for a
// gate; the test degenerates to "not significant" below 4+4
// observations, which is the correct failure mode for a gate (too little
// data to condemn a change).

func sortedCopy(xs []int64) []int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// medianInt64 returns the median of xs (0 when empty).
func medianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := sortedCopy(xs)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// quantileInt64 returns the q-quantile of sorted s by nearest-rank.
func quantileInt64(s []int64, q float64) int64 {
	if len(s) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// iqrInt64 returns the interquartile range of xs.
func iqrInt64(xs []int64) int64 {
	if len(xs) < 2 {
		return 0
	}
	s := sortedCopy(xs)
	return quantileInt64(s, 0.75) - quantileInt64(s, 0.25)
}

// mannWhitneyP returns the two-sided p-value of the Mann–Whitney U test
// on samples a and b, using the normal approximation with continuity
// and tie correction. Returns 1 (never significant) when either sample
// has fewer than 4 observations or all values are tied.
func mannWhitneyP(a, b []int64) float64 {
	n1, n2 := len(a), len(b)
	if n1 < 4 || n2 < 4 {
		return 1
	}
	// Rank the pooled sample, midranks for ties.
	type obs struct {
		v    int64
		from int // 0 = a, 1 = b
	}
	pool := make([]obs, 0, n1+n2)
	for _, v := range a {
		pool = append(pool, obs{v, 0})
	}
	for _, v := range b {
		pool = append(pool, obs{v, 1})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	n := n1 + n2
	ranks := make([]float64, n)
	tieTerm := 0.0 // sum of t^3 - t over tie groups
	for i := 0; i < n; {
		j := i
		for j < n && pool[j].v == pool[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	var r1 float64
	for i, o := range pool {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * (float64(n+1) - tieTerm/float64(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // every observation tied: no evidence of difference
	}
	// Continuity correction toward the mean.
	z := (u1 - mu)
	if z > 0.5 {
		z -= 0.5
	} else if z < -0.5 {
		z += 0.5
	} else {
		z = 0
	}
	z /= math.Sqrt(sigma2)
	return 2 * normalTail(math.Abs(z))
}

// normalTail returns P(Z > z) for a standard normal Z.
func normalTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
