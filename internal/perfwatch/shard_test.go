package perfwatch

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestShardedRunDeterminism shards the FULL workload registry across
// several workers and demands the parallel determinism contract: sample
// order matches the registry, simulated metrics are bit-identical to
// the serial run, and Progress fires in order. Run under -race this is
// also the thread-safety proof for the shared experiment.Suite.
func TestShardedRunDeterminism(t *testing.T) {
	serial := NewRunner(testScale, 1)
	fp := NewFingerprint(testScale, 1)
	ref, err := serial.Run(fp, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4} {
		r := NewRunner(testScale, 1)
		r.Workers = workers
		var mu sync.Mutex
		var progress []int
		r.Progress = func(done, total int, last Sample) {
			mu.Lock()
			progress = append(progress, done)
			mu.Unlock()
		}
		entry, err := r.Run(fp, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(entry.Samples) != len(ref.Samples) {
			t.Fatalf("workers=%d: %d samples, serial %d", workers, len(entry.Samples), len(ref.Samples))
		}
		for i, s := range entry.Samples {
			if s.Workload != ref.Samples[i].Workload {
				t.Fatalf("workers=%d: sample %d is %q, serial has %q",
					workers, i, s.Workload, ref.Samples[i].Workload)
			}
			if diffs := s.Sim.Diff(ref.Samples[i].Sim); len(diffs) != 0 {
				t.Fatalf("workers=%d: %s simulated metrics diverged from serial run: %v",
					workers, s.Workload, diffs)
			}
		}
		for i, done := range progress {
			if done != i+1 {
				t.Fatalf("workers=%d: progress callbacks out of order: %v", workers, progress)
			}
		}
		if len(progress) != len(ref.Samples) {
			t.Fatalf("workers=%d: %d progress callbacks for %d samples", workers, len(progress), len(ref.Samples))
		}
	}
}

// TestTrajectoryByteIdentity writes the same entry into two trajectory
// files and requires byte-identical output: the JSON emitter (which
// serialises the CPI-stack map) must be deterministic, since trajectory
// files are committed and diffed.
func TestTrajectoryByteIdentity(t *testing.T) {
	entry := runEntry(t, 1, "go/native/16K")
	dir := t.TempDir()
	var files [2][]byte
	for i := range files {
		path := filepath.Join(dir, "bench.json")
		if i == 1 {
			path = filepath.Join(dir, "bench2.json")
		}
		traj, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		traj.Host = "test"
		if err := traj.Append(path, entry, 0); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("two writes of the same entry produced different trajectory bytes")
	}
}

// TestShardedRunnerSharedSuite hammers one Runner's Suite from many
// concurrent RunWorkload calls on the same benchmark, so the memoised
// image build, native baseline and compression paths all race-overlap.
func TestShardedRunnerSharedSuite(t *testing.T) {
	r := NewRunner(testScale, 1)
	workloads := []string{"go/native/16K", "go/dict/16K", "go/dict+rf/16K", "go/codepack+rf/16K"}
	var wg sync.WaitGroup
	errs := make(chan error, len(workloads)*2)
	for range 2 {
		for _, name := range workloads {
			w, ok := Find(name)
			if !ok {
				t.Fatalf("unknown workload %q", name)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := r.RunWorkload(w); err != nil {
					errs <- err
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
