package perfwatch

import (
	"math/rand"
	"testing"
)

func TestMedianIQR(t *testing.T) {
	if m := medianInt64(nil); m != 0 {
		t.Errorf("median(nil) = %d", m)
	}
	if m := medianInt64([]int64{5}); m != 5 {
		t.Errorf("median([5]) = %d", m)
	}
	if m := medianInt64([]int64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %d", m)
	}
	if m := medianInt64([]int64{4, 1, 3, 2}); m != 2 { // (2+3)/2 truncated
		t.Errorf("even median = %d", m)
	}
	if q := iqrInt64([]int64{7}); q != 0 {
		t.Errorf("iqr single = %d", q)
	}
	// 1..8: q1 = 2 (ceil(0.25*8)=2nd), q3 = 6 (ceil(0.75*8)=6th) -> IQR 4.
	if q := iqrInt64([]int64{8, 7, 6, 5, 4, 3, 2, 1}); q != 4 {
		t.Errorf("iqr(1..8) = %d, want 4", q)
	}
}

func TestMannWhitney(t *testing.T) {
	// Identical samples: p = 1 (all tied, zero variance guard).
	same := []int64{10, 10, 10, 10, 10}
	if p := mannWhitneyP(same, same); p != 1 {
		t.Errorf("identical samples p = %v, want 1", p)
	}
	// Too few observations: never significant.
	if p := mannWhitneyP([]int64{1, 2, 3}, []int64{100, 200, 300}); p != 1 {
		t.Errorf("n<4 p = %v, want 1", p)
	}
	// Cleanly separated distributions: strongly significant.
	a := []int64{100, 101, 99, 102, 98, 100}
	b := []int64{200, 201, 199, 202, 198, 200}
	if p := mannWhitneyP(a, b); p >= Alpha {
		t.Errorf("separated distributions p = %v, want < %v", p, Alpha)
	}
	// Symmetric: order of arguments doesn't change the two-sided p.
	if p1, p2 := mannWhitneyP(a, b), mannWhitneyP(b, a); p1 != p2 {
		t.Errorf("asymmetric p: %v vs %v", p1, p2)
	}
	// Same distribution, noisy: should usually NOT be significant.
	// (Deterministic seed keeps this stable.)
	rng := rand.New(rand.NewSource(7))
	var x, y []int64
	for i := 0; i < 8; i++ {
		x = append(x, 1000+rng.Int63n(50))
		y = append(y, 1000+rng.Int63n(50))
	}
	if p := mannWhitneyP(x, y); p < Alpha {
		t.Errorf("same-distribution noise flagged significant: p = %v (samples %v %v)", p, x, y)
	}
}
