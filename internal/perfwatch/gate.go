package perfwatch

import (
	"fmt"
)

// GatePolicy decides which comparison outcomes fail the regression gate.
type GatePolicy struct {
	// AllowSimChange permits simulated-metric changes (for PRs that
	// intentionally change timing behaviour; the trajectory still
	// records the new values). Default false: ANY simulated-cycle or
	// CPI-component change fails — simulated metrics are deterministic,
	// so a delta is always a real behaviour change that must be either
	// claimed (re-baseline) or fixed.
	AllowSimChange bool
	// HostThreshold is the fractional host wall-time regression
	// tolerated before a *significant* slowdown fails the gate
	// (e.g. 0.20 = +20%). <= 0 disables host gating; host gating also
	// needs HostComparable fingerprints and enough repetitions for the
	// rank-sum test.
	HostThreshold float64
}

// Violation is one gate failure.
type Violation struct {
	Workload string `json:"workload"`
	Reason   string `json:"reason"`
}

// Check applies the policy to a comparison and returns every violation
// (empty = gate passes).
func (p GatePolicy) Check(c Comparison) []Violation {
	var vs []Violation
	for _, d := range c.Deltas {
		switch d.Status {
		case StatusSlower, StatusFaster, StatusChanged:
			if !p.AllowSimChange {
				reason := fmt.Sprintf("simulated metrics changed (%s): cycles %d -> %d (%+.3f%%)",
					d.Status, d.OldCycles, d.NewCycles, d.CycleDelta*100)
				if len(d.SimDiffs) > 0 {
					reason += "; first diff: " + d.SimDiffs[0]
				}
				if d.ProcRegressions != "" {
					reason += "; top regressing procedures: " + d.ProcRegressions
				}
				vs = append(vs, Violation{Workload: d.Workload, Reason: reason})
			}
		}
		if p.HostThreshold > 0 && d.Host != nil &&
			d.Host.Significant && d.Host.Delta > p.HostThreshold {
			vs = append(vs, Violation{
				Workload: d.Workload,
				Reason: fmt.Sprintf("host wall time regressed %+.1f%% (median %.2fms -> %.2fms, p=%.3f, threshold +%.0f%%)",
					d.Host.Delta*100, float64(d.Host.OldMedianNs)/1e6,
					float64(d.Host.NewMedianNs)/1e6, d.Host.P, p.HostThreshold*100),
			})
		}
	}
	return vs
}

// PerturbSim multiplies every simulated cycle count (total and CPI
// components) in the entry by factor — a synthetic regression injector
// used by the gate's self-test path (`ccbench gate -perturb 1.05`) to
// prove the gate actually fires. It mutates the entry in place.
func PerturbSim(e *Entry, factor float64) {
	scale := func(v uint64) uint64 { return uint64(float64(v) * factor) }
	for i := range e.Samples {
		sim := &e.Samples[i].Sim
		sim.Cycles = scale(sim.Cycles)
		for k, v := range sim.CPIStack {
			sim.CPIStack[k] = scale(v)
		}
		// Keep the spatial axis consistent with the perturbed totals so
		// the gate's "top regressing procedures" clause fires in the
		// self-test path too.
		for j := range e.Samples[i].Procs {
			p := &e.Samples[i].Procs[j]
			p.Cycles = scale(p.Cycles)
			p.DecompCycles = scale(p.DecompCycles)
		}
	}
}
