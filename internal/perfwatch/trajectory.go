package perfwatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// TrajectorySchema is the BENCH_*.json file format version. History:
//
//	1 — initial format: {schema_version, host, entries:[{time,
//	    fingerprint, samples:[{workload, version, sim, host}]}]}.
//
// Readers reject files with a newer major version than they understand;
// additive changes (new fields) do not bump the version.
const TrajectorySchema = 1

// Trajectory is the content of one BENCH_<host>.json file: every
// registry run recorded on that host, oldest first.
type Trajectory struct {
	SchemaVersion int     `json:"schema_version"`
	Host          string  `json:"host"`
	Entries       []Entry `json:"entries"`
}

// Latest returns the most recent entry (ok=false when empty).
func (t *Trajectory) Latest() (Entry, bool) {
	if len(t.Entries) == 0 {
		return Entry{}, false
	}
	return t.Entries[len(t.Entries)-1], true
}

// FileName returns the conventional trajectory file name for a host
// label, e.g. "BENCH_ci.json". The label is sanitised so hostnames with
// path-hostile characters stay safe.
func FileName(host string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, host)
	if clean == "" {
		clean = "unknown"
	}
	return "BENCH_" + clean + ".json"
}

// Load reads a trajectory file. A missing file is not an error: it
// returns an empty trajectory for the host derived from the file name,
// so the first `ccbench run` on a new host starts a fresh history.
func Load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		host := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		return &Trajectory{SchemaVersion: TrajectorySchema, Host: host}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("perfwatch: %s: %v", path, err)
	}
	if t.SchemaVersion > TrajectorySchema {
		return nil, fmt.Errorf("perfwatch: %s: schema version %d is newer than this binary understands (%d)",
			path, t.SchemaVersion, TrajectorySchema)
	}
	if t.SchemaVersion == 0 {
		return nil, fmt.Errorf("perfwatch: %s: missing schema_version (not a trajectory file?)", path)
	}
	return &t, nil
}

// Append adds an entry and writes the trajectory back atomically
// (temp file + rename), keeping at most keep entries (0 = unlimited).
func (t *Trajectory) Append(path string, e Entry, keep int) error {
	t.SchemaVersion = TrajectorySchema
	t.Entries = append(t.Entries, e)
	if keep > 0 && len(t.Entries) > keep {
		t.Entries = append([]Entry(nil), t.Entries[len(t.Entries)-keep:]...)
	}
	return t.Write(path)
}

// Write saves the trajectory as indented JSON via a temp-file rename.
func (t *Trajectory) Write(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
