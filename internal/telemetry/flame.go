package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// Folded-stack (flamegraph) exporter. The simulator's profiler records
// per-procedure self counts and dynamic call edges, not full stacks, so
// the exporter reconstructs stacks from the call graph: a procedure's
// self execution count is distributed over the stacks that reach it,
// splitting at each join proportionally to the incoming call-edge
// weights. For call graphs without recursion (every synthetic benchmark
// and generated random program) the reconstruction is exact up to
// integer rounding; recursive edges are cut at the first repeat, so a
// cycle appears as a single frame instead of an unbounded tower. The
// output is Brendan Gregg's folded format — one "proc_a;proc_b;proc_c
// count" line per stack — consumable by flamegraph.pl and speedscope.

const (
	flameMaxDepth = 64
	flameMinShare = 1e-4
)

// WriteFolded writes the profile as folded stacks. Roots are the
// procedures no recorded call edge targets (main, plus anything only
// reached by jumps the profiler does not treat as calls).
func WriteFolded(w io.Writer, p *cpu.ProcProfile) error {
	n := len(p.Procs)
	if n == 0 {
		return fmt.Errorf("telemetry: empty procedure table")
	}
	// Incoming-call totals and a deterministic adjacency list.
	in := make([]uint64, n)
	out := make([][][2]int, n) // caller -> [(callee, -)], weight looked up in Calls
	type edge struct{ from, to int }
	var edges []edge
	for k := range p.Calls {
		edges = append(edges, edge{k[0], k[1]})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		return edges[a].to < edges[b].to
	})
	for _, e := range edges {
		w := p.Calls[[2]int{e.from, e.to}]
		in[e.to] += w
		out[e.from] = append(out[e.from], [2]int{e.to, int(w)})
	}

	var lines []string
	onStack := make([]bool, n)
	var walk func(i int, stack []string, share float64)
	walk = func(i int, stack []string, share float64) {
		stack = append(stack, p.Procs[i].Name)
		if self := float64(p.Execs[i]) * share; self >= 0.5 {
			lines = append(lines, fmt.Sprintf("%s %d", strings.Join(stack, ";"), uint64(self+0.5)))
		}
		if len(stack) >= flameMaxDepth {
			return
		}
		onStack[i] = true
		for _, oe := range out[i] {
			callee := oe[0]
			if onStack[callee] || in[callee] == 0 {
				continue
			}
			childShare := share * float64(oe[1]) / float64(in[callee])
			if childShare < flameMinShare {
				continue
			}
			walk(callee, stack, childShare)
		}
		onStack[i] = false
	}
	for i := 0; i < n; i++ {
		if in[i] == 0 && p.Execs[i] > 0 {
			walk(i, nil, 1)
		}
	}
	if len(lines) == 0 {
		return fmt.Errorf("telemetry: profile has no executed root procedure")
	}
	_, err := io.WriteString(w, strings.Join(lines, "\n")+"\n")
	return err
}
