package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/program"
)

// Chrome trace-event exporter. The output is the Trace Event Format's
// JSON-object form ({"traceEvents": [...]}), which Perfetto and
// chrome://tracing open directly. Timestamps are simulated cycles
// reported as microseconds (the format's native unit), so "1 µs" in the
// viewer is one machine cycle.
//
// Two tracks are emitted under one process:
//   - tid 1 "decompression handler": one complete ("X") span per
//     exception service interval, entry flush to iret, named by the
//     faulting address (and its procedure when the image is known);
//   - tid 2 "memory system": one span per non-exception I-cache line
//     fill, covering the fetch stall.

const (
	tracePID        = 1
	traceTIDHandler = 1
	traceTIDMemory  = 2
)

// traceEvent is one Trace Event Format record.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func metaEvent(name, value string, tid int) traceEvent {
	return traceEvent{
		Name: name, Ph: "M", PID: tracePID, TID: tid,
		Args: map[string]string{"name": value},
	}
}

// WriteChromeTrace writes the collector's recorded spans and fill
// events as Chrome trace-event JSON. im, when non-nil, is used to name
// spans with the procedure containing the faulting address.
func (t *Collector) WriteChromeTrace(w io.Writer, im *program.Image) error {
	events := []traceEvent{
		metaEvent("process_name", "clr32-sim", traceTIDHandler),
		metaEvent("thread_name", "decompression handler", traceTIDHandler),
		metaEvent("thread_name", "memory system", traceTIDMemory),
	}
	name := func(pc uint32) string {
		if im != nil {
			if p := im.ProcAt(pc); p != nil {
				return fmt.Sprintf("%s+%#x", p.Name, pc-p.Addr)
			}
		}
		return fmt.Sprintf("%#08x", pc)
	}
	for _, s := range t.Spans {
		events = append(events, traceEvent{
			Name: "decompress " + name(s.PC), Cat: "handler", Ph: "X",
			TS: s.Start, Dur: s.End - s.Start, PID: tracePID, TID: traceTIDHandler,
			Args: map[string]string{"pc": fmt.Sprintf("%#x", s.PC)},
		})
	}
	for _, f := range t.Fills {
		cat := "ifill"
		if f.Kind == cpu.FillHardwareDecomp {
			cat = "hw-decomp"
		}
		events = append(events, traceEvent{
			Name: cat + " " + name(f.PC), Cat: cat, Ph: "X",
			TS: f.Cycle, Dur: f.Stall, PID: tracePID, TID: traceTIDMemory,
			Args: map[string]string{"pc": fmt.Sprintf("%#x", f.PC)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
