package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/program"
)

// Chrome trace-event exporter. The output is the Trace Event Format's
// JSON-object form ({"traceEvents": [...]}), which Perfetto and
// chrome://tracing open directly. Timestamps are simulated cycles
// reported as microseconds (the format's native unit), so "1 µs" in the
// viewer is one machine cycle.
//
// Three tracks are emitted under one process:
//   - tid 1 "decompression handler": one complete ("X") span per
//     exception service interval, entry flush to iret, named by the
//     faulting address (and its procedure when the image is known);
//   - tid 2 "memory system": one span per non-exception I-cache line
//     fill, covering the fetch stall;
//   - tid 3 "timeline counters" (when a WindowSampler is attached):
//     per-window counter ("C") samples — see counterEvents.

const (
	tracePID         = 1
	traceTIDHandler  = 1
	traceTIDMemory   = 2
	traceTIDTimeline = 3
)

// traceEvent is one Trace Event Format record. Args values are strings
// for span metadata and numbers for counter ("C") samples; encoding/json
// sorts the map keys, so emission stays byte-deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func metaEvent(name, value string, tid int) traceEvent {
	return traceEvent{
		Name: name, Ph: "M", PID: tracePID, TID: tid,
		Args: map[string]any{"name": value},
	}
}

// counterEvents renders the window records as Perfetto counter tracks:
// one "C" sample per window at the window's start cycle, for the CPI
// stack (stacked per-component series), the miss/exception counts, and
// the decompression burst traffic. Alongside the handler spans these
// show *when* the decompression cost was paid, not just how much.
func counterEvents(ws *WindowSampler) []traceEvent {
	events := []traceEvent{
		metaEvent("thread_name", "timeline counters", traceTIDTimeline),
	}
	for _, r := range ws.Records {
		stack := make(map[string]any, cpu.NumCycleKinds)
		for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
			stack[k.Key()] = r.CPIStack[k]
		}
		counter := func(name string, args map[string]any) traceEvent {
			return traceEvent{Name: name, Cat: "timeline", Ph: "C",
				TS: r.StartCycle, PID: tracePID, TID: traceTIDTimeline, Args: args}
		}
		events = append(events,
			counter("cpi_stack", stack),
			counter("imiss", map[string]any{"native": r.IMissNative, "compressed": r.IMissCompressed}),
			counter("exceptions", map[string]any{"count": r.Exceptions}),
			counter("bus_bytes", map[string]any{"bytes": r.BusBytes}),
		)
	}
	return events
}

// WriteChromeTrace writes the collector's recorded spans and fill
// events as Chrome trace-event JSON. im, when non-nil, is used to name
// spans with the procedure containing the faulting address.
func (t *Collector) WriteChromeTrace(w io.Writer, im *program.Image) error {
	events := []traceEvent{
		metaEvent("process_name", "clr32-sim", traceTIDHandler),
		metaEvent("thread_name", "decompression handler", traceTIDHandler),
		metaEvent("thread_name", "memory system", traceTIDMemory),
	}
	name := func(pc uint32) string {
		if im != nil {
			if p := im.ProcAt(pc); p != nil {
				return fmt.Sprintf("%s+%#x", p.Name, pc-p.Addr)
			}
		}
		return fmt.Sprintf("%#08x", pc)
	}
	for _, s := range t.Spans {
		events = append(events, traceEvent{
			Name: "decompress " + name(s.PC), Cat: "handler", Ph: "X",
			TS: s.Start, Dur: s.End - s.Start, PID: tracePID, TID: traceTIDHandler,
			Args: map[string]any{"pc": fmt.Sprintf("%#x", s.PC)},
		})
	}
	for _, f := range t.Fills {
		cat := "ifill"
		if f.Kind == cpu.FillHardwareDecomp {
			cat = "hw-decomp"
		}
		events = append(events, traceEvent{
			Name: cat + " " + name(f.PC), Cat: cat, Ph: "X",
			TS: f.Cycle, Dur: f.Stall, PID: tracePID, TID: traceTIDMemory,
			Args: map[string]any{"pc": fmt.Sprintf("%#x", f.PC)},
		})
	}
	if t.Windows != nil {
		t.Windows.Finish()
		events = append(events, counterEvents(t.Windows)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
