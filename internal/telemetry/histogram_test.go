package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("t", "cycles")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 8 || h.Min != 0 || h.Max != 1<<40 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count, h.Min, h.Max)
	}
	if h.Sum != 0+1+2+3+4+7+8+1<<40 {
		t.Fatalf("sum = %d", h.Sum)
	}
	// bucket 0 = {0}, 1 = {1}, 2 = {2,3}, 3 = {4..7}, 4 = {8..15}, 41 = {2^40..}.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for b, n := range want {
		if h.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, h.Buckets[b], n)
		}
	}
	for b := range h.Buckets {
		if _, ok := want[b]; !ok && h.Buckets[b] != 0 {
			t.Errorf("unexpected bucket %d = %d", b, h.Buckets[b])
		}
	}
}

func TestBucketRangeRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 5, 31, 32, 1<<20 - 1, 1 << 20} {
		lo, hi := BucketRange(bucketOf(v))
		if v < lo || v >= hi {
			t.Errorf("v=%d fell outside its bucket [%d,%d)", v, lo, hi)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("t", "cycles")
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4: [8,16)
	}
	h.Observe(1000) // bucket 10: [512,1024)
	if p50 := h.Quantile(0.50); p50 != 15 {
		t.Errorf("p50 = %d, want 15 (upper edge of [8,16))", p50)
	}
	// p100 lands in the tail bucket but must clamp to the observed max.
	if p100 := h.Quantile(1.0); p100 != 1000 {
		t.Errorf("p100 = %d, want clamped max 1000", p100)
	}
	if h.Quantile(0.0) == 0 {
		t.Error("q=0 on a non-empty histogram should still report a bucket edge")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramSummaryAndString(t *testing.T) {
	h := NewHistogram("latency", "cycles")
	h.Observe(3)
	h.Observe(100)
	s := h.Summary()
	if s.Count != 2 || s.Min != 3 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
	if len(s.Buckets) != 2 || s.Buckets[0][0] != 2 || s.Buckets[1][0] != 64 {
		t.Fatalf("buckets %v", s.Buckets)
	}
	out := h.String()
	if !strings.Contains(out, "latency (cycles): 2 samples") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no bars rendered:\n%s", out)
	}
}

func TestSetCountersHottest(t *testing.T) {
	s := NewSetCounters("I-cache", 8)
	s.CacheMiss(3, false)
	s.CacheMiss(3, true)
	s.CacheMiss(5, true)
	s.CacheMiss(1, false)
	s.CacheEvict(3)
	if s.TotalMisses() != 4 {
		t.Fatalf("total = %d", s.TotalMisses())
	}
	hot := s.Hottest(8)
	// Set 3 leads; sets 1 and 5 tie at one miss and must come in index order.
	if len(hot) != 3 || hot[0].Set != 3 || hot[1].Set != 1 || hot[2].Set != 5 {
		t.Fatalf("hottest = %+v", hot)
	}
	if hot[0].Miss != 2 || hot[0].Conflict != 1 || hot[0].Evict != 1 {
		t.Fatalf("set 3 counters = %+v", hot[0])
	}
	if got := s.Hottest(1); len(got) != 1 || got[0].Set != 3 {
		t.Fatalf("hottest(1) = %+v", got)
	}
	if !strings.Contains(s.String(), "8 sets, 4 misses") {
		t.Errorf("string:\n%s", s.String())
	}
}
