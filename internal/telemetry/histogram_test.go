package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("t", "cycles")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 8 || h.Min != 0 || h.Max != 1<<40 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count, h.Min, h.Max)
	}
	if h.Sum != 0+1+2+3+4+7+8+1<<40 {
		t.Fatalf("sum = %d", h.Sum)
	}
	// bucket 0 = {0}, 1 = {1}, 2 = {2,3}, 3 = {4..7}, 4 = {8..15}, 41 = {2^40..}.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for b, n := range want {
		if h.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, h.Buckets[b], n)
		}
	}
	for b := range h.Buckets {
		if _, ok := want[b]; !ok && h.Buckets[b] != 0 {
			t.Errorf("unexpected bucket %d = %d", b, h.Buckets[b])
		}
	}
}

func TestBucketRangeRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 5, 31, 32, 1<<20 - 1, 1 << 20} {
		lo, hi := BucketRange(bucketOf(v))
		if v < lo || v >= hi {
			t.Errorf("v=%d fell outside its bucket [%d,%d)", v, lo, hi)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("t", "cycles")
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4: [8,16)
	}
	h.Observe(1000) // bucket 10: [512,1024)
	if p50 := h.Quantile(0.50); p50 != 15 {
		t.Errorf("p50 = %d, want 15 (upper edge of [8,16))", p50)
	}
	// p100 lands in the tail bucket but must clamp to the observed max.
	if p100 := h.Quantile(1.0); p100 != 1000 {
		t.Errorf("p100 = %d, want clamped max 1000", p100)
	}
	if h.Quantile(0.0) == 0 {
		t.Error("q=0 on a non-empty histogram should still report a bucket edge")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	// Merging two histograms must equal observing both streams directly.
	a := NewHistogram("a", "cycles")
	b := NewHistogram("b", "cycles")
	direct := NewHistogram("d", "cycles")
	for i, v := range []uint64{0, 3, 8, 9, 1 << 30, 17, 2, 2, 512} {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		direct.Observe(v)
	}
	a.Merge(b)
	if a.Count != direct.Count || a.Sum != direct.Sum || a.Min != direct.Min || a.Max != direct.Max {
		t.Fatalf("merged count/sum/min/max %d/%d/%d/%d, direct %d/%d/%d/%d",
			a.Count, a.Sum, a.Min, a.Max, direct.Count, direct.Sum, direct.Min, direct.Max)
	}
	if a.Buckets != direct.Buckets {
		t.Fatalf("merged buckets %v\ndirect buckets %v", a.Buckets, direct.Buckets)
	}
	if a.Quantile(0.5) != direct.Quantile(0.5) || a.Quantile(0.99) != direct.Quantile(0.99) {
		t.Fatal("merged quantiles differ from direct observation")
	}

	// Merging empty or nil is a no-op.
	before := *a
	a.Merge(NewHistogram("empty", "cycles"))
	a.Merge(nil)
	if *a != before {
		t.Fatal("merging empty/nil changed the histogram")
	}

	// Merging INTO an empty histogram adopts the other's min (the
	// zero-value Min of an empty histogram must not win).
	empty := NewHistogram("e", "cycles")
	src := NewHistogram("s", "cycles")
	src.Observe(7)
	src.Observe(9)
	empty.Merge(src)
	if empty.Min != 7 || empty.Max != 9 || empty.Count != 2 {
		t.Fatalf("empty.Merge(src): min/max/count = %d/%d/%d", empty.Min, empty.Max, empty.Count)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	// Zero observations: all digests are zero, rendering doesn't panic.
	var empty Histogram
	if empty.Quantile(0) != 0 || empty.Quantile(1) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram digests should all be 0")
	}
	if s := empty.Summary(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty summary %+v", s)
	}
	_ = empty.String()

	// Observe(0): lands in bucket 0 ([0,1)), min stays 0, quantiles
	// report the bucket's inclusive upper edge 0.
	z := NewHistogram("z", "cycles")
	z.Observe(0)
	if z.Buckets[0] != 1 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("Observe(0): bucket0=%d min=%d max=%d", z.Buckets[0], z.Min, z.Max)
	}
	if lo, hi := BucketRange(0); lo != 0 || hi != 1 {
		t.Fatalf("BucketRange(0) = [%d,%d)", lo, hi)
	}
	if q := z.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile(0.5) after Observe(0) = %d, want 0", q)
	}

	// Top bucket saturation: MaxUint64 lands in the last bucket (64),
	// whose upper edge 2^64 wraps to 0 — Quantile must still clamp to
	// the observed max instead of reporting the wrapped edge.
	const maxU64 = ^uint64(0)
	top := NewHistogram("top", "cycles")
	top.Observe(maxU64)
	top.Observe(maxU64 - 1)
	if top.Buckets[histBuckets-1] != 2 {
		t.Fatalf("top bucket holds %d, want 2", top.Buckets[histBuckets-1])
	}
	if lo, hi := BucketRange(histBuckets - 1); lo != 1<<63 || hi != 0 {
		t.Fatalf("BucketRange(64) = [%d,%d), want [2^63, wrapped 0)", lo, hi)
	}
	if q := top.Quantile(0.99); q != maxU64 {
		t.Fatalf("saturated quantile = %d, want clamped max %d", q, maxU64)
	}
	if q := top.Quantile(0.01); q != maxU64 {
		t.Fatalf("saturated low quantile = %d, want clamped max %d", q, maxU64)
	}
}

func TestHistogramSummaryAndString(t *testing.T) {
	h := NewHistogram("latency", "cycles")
	h.Observe(3)
	h.Observe(100)
	s := h.Summary()
	if s.Count != 2 || s.Min != 3 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
	if len(s.Buckets) != 2 || s.Buckets[0][0] != 2 || s.Buckets[1][0] != 64 {
		t.Fatalf("buckets %v", s.Buckets)
	}
	out := h.String()
	if !strings.Contains(out, "latency (cycles): 2 samples") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no bars rendered:\n%s", out)
	}
}

func TestSetCountersHottest(t *testing.T) {
	s := NewSetCounters("I-cache", 8)
	s.CacheMiss(3, false)
	s.CacheMiss(3, true)
	s.CacheMiss(5, true)
	s.CacheMiss(1, false)
	s.CacheEvict(3)
	if s.TotalMisses() != 4 {
		t.Fatalf("total = %d", s.TotalMisses())
	}
	hot := s.Hottest(8)
	// Set 3 leads; sets 1 and 5 tie at one miss and must come in index order.
	if len(hot) != 3 || hot[0].Set != 3 || hot[1].Set != 1 || hot[2].Set != 5 {
		t.Fatalf("hottest = %+v", hot)
	}
	if hot[0].Miss != 2 || hot[0].Conflict != 1 || hot[0].Evict != 1 {
		t.Fatalf("set 3 counters = %+v", hot[0])
	}
	if got := s.Hottest(1); len(got) != 1 || got[0].Set != 3 {
		t.Fatalf("hottest(1) = %+v", got)
	}
	if !strings.Contains(s.String(), "8 sets, 4 misses") {
		t.Errorf("string:\n%s", s.String())
	}
}
