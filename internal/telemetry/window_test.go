package telemetry

// Window-sampler tests: the hard sum invariant (component-wise window
// sums bit-identical to the whole-run cpu.Stats) across every testdata
// program × every registered codec, plus the boundary cases — a window
// size that does not divide the run length (final partial window),
// rollover in the middle of an exception handler, swic invalidation
// inside a window, and N=1 degenerate windows.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/codec"
	_ "repro/internal/codec/all"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/minic"
	"repro/internal/program"
)

// runWindowed executes im with a sampler of the given size attached and
// fails the test on any sum-invariant violation. It returns the machine
// and sampler for case-specific assertions.
func runWindowed(t *testing.T, name string, im *program.Image, size uint64) (*cpu.CPU, *WindowSampler) {
	t.Helper()
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 20_000_000
	w := NewWindowSampler(size)
	w.Attach(c)
	if err := c.Load(im); err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	if err := w.Verify(); err != nil {
		t.Errorf("%s: %v", name, err)
	}
	// Window-local attribution: each window's CPI stack sums to the
	// window's cycles — the whole-run invariant holds per window too.
	for _, r := range w.Records {
		var total uint64
		for _, v := range r.CPIStack {
			total += v
		}
		if total != r.Cycles {
			t.Errorf("%s: window %d: stack sums to %d, cycles %d", name, r.Index, total, r.Cycles)
		}
	}
	return c, w
}

// TestWindowSumInvariantBatch sweeps every testdata program under the
// native build and every registered codec, at a window size small enough
// that every compressed run takes multiple rollovers.
func TestWindowSumInvariantBatch(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	asmFiles, err := filepath.Glob(filepath.Join(root, "*.s"))
	if err != nil || len(asmFiles) == 0 {
		t.Fatalf("no assembly examples found: %v", err)
	}
	mcFiles, err := filepath.Glob(filepath.Join(root, "minic", "*.mc"))
	if err != nil || len(mcFiles) == 0 {
		t.Fatalf("no MiniC examples found: %v", err)
	}
	schemes := codec.Names()
	if len(schemes) < 5 {
		t.Fatalf("registry has %d codecs (%v); want the full scheme set", len(schemes), schemes)
	}
	for _, path := range append(asmFiles, mcFiles...) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var im *program.Image
			if strings.HasSuffix(path, ".mc") {
				im, err = minic.Compile(string(src))
			} else {
				im, err = asm.Assemble(string(src))
			}
			if err != nil {
				t.Fatal(err)
			}
			runWindowed(t, "native", im, 256)
			for _, scheme := range schemes {
				res, err := core.Compress(im, core.Options{Scheme: program.Scheme(scheme)})
				if err != nil {
					t.Fatalf("%s: compress: %v", scheme, err)
				}
				runWindowed(t, scheme, res.Image, 256)
			}
		})
	}
}

// TestWindowPartialFinal picks a window size that cannot divide the run
// length and checks the final partial window is flushed and accounted.
func TestWindowPartialFinal(t *testing.T) {
	im := buildCompressed(t)
	// A prime window size never divides a run of more than one window.
	c, w := runWindowed(t, "partial", im, 257)
	total := c.Stats.Instrs + c.Stats.HandlerInstrs
	if total%257 == 0 {
		t.Fatalf("run length %d divisible by 257; partial-window case is vacuous", total)
	}
	if len(w.Records) == 0 {
		t.Fatal("no windows recorded")
	}
	last := w.Records[len(w.Records)-1]
	if got := last.EndInstr - last.StartInstr; got >= 257 || got == 0 {
		t.Errorf("final window spans %d commits; want a partial window in 1..256", got)
	}
	if last.EndInstr != total {
		t.Errorf("final window ends at commit %d, run retired %d", last.EndInstr, total)
	}
}

// TestWindowRolloverMidHandler forces boundaries inside the exception
// handler: with a tiny window on a compressed run, some window must
// close between exception entry and iret (visible as a window with
// handler commits on both sides of a boundary), and the sum invariant
// must hold regardless — including across swic lines installed inside a
// window.
func TestWindowRolloverMidHandler(t *testing.T) {
	im := buildCompressed(t)
	c, w := runWindowed(t, "mid-handler", im, 16)
	if c.Stats.Exceptions == 0 {
		t.Fatal("compressed run took no exceptions; test is vacuous")
	}
	if c.IC.Stats.SwicLines == 0 {
		t.Fatal("no swic lines installed; test is vacuous")
	}
	mixed := false
	for _, r := range w.Records {
		if r.HandlerInstrs > 0 && r.HandlerInstrs < r.Instrs+r.HandlerInstrs {
			mixed = true
		}
	}
	if !mixed {
		t.Error("no window mixes user and handler commits; boundaries never landed mid-handler")
	}
	// The handler's commits are split across windows yet sum exactly
	// (Verify above already proved it); spot-check the exception split.
	var exc uint64
	for _, r := range w.Records {
		exc += r.Exceptions
	}
	if exc != c.Stats.Exceptions {
		t.Errorf("windows carry %d exceptions, run took %d", exc, c.Stats.Exceptions)
	}
}

// TestWindowDegenerate runs N=1: one record per committed instruction.
func TestWindowDegenerate(t *testing.T) {
	im := buildCompressed(t)
	c, w := runWindowed(t, "degenerate", im, 1)
	total := c.Stats.Instrs + c.Stats.HandlerInstrs
	if uint64(len(w.Records)) != total {
		t.Fatalf("%d windows for %d commits; N=1 must record every commit", len(w.Records), total)
	}
	for _, r := range w.Records {
		if r.Instrs+r.HandlerInstrs != 1 {
			t.Fatalf("window %d covers %d commits; want exactly 1", r.Index, r.Instrs+r.HandlerInstrs)
		}
	}
}

// TestWindowVerifyDetectsCorruption is the oracle's self-test: perturb
// one record of a verified run and every class of tampering must fail.
func TestWindowVerifyDetectsCorruption(t *testing.T) {
	im := buildCompressed(t)
	for _, tc := range []struct {
		name    string
		corrupt func(w *WindowSampler)
	}{
		{"cycles", func(w *WindowSampler) { w.Records[0].Cycles++ }},
		{"instrs", func(w *WindowSampler) { w.Records[len(w.Records)/2].Instrs++ }},
		{"cpi-stack", func(w *WindowSampler) { w.Records[0].CPIStack[cpu.CycleUser]++ }},
		{"exceptions", func(w *WindowSampler) { w.Records[0].Exceptions++ }},
		{"tiling", func(w *WindowSampler) { w.Records[len(w.Records)-1].EndInstr++ }},
		{"drop-record", func(w *WindowSampler) { w.Records = w.Records[1:] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, w := runWindowed(t, tc.name, im, 64)
			if len(w.Records) < 2 {
				t.Fatal("need at least 2 windows to corrupt")
			}
			tc.corrupt(w)
			if err := w.Verify(); err == nil {
				t.Error("Verify accepted a corrupted record set")
			}
		})
	}
}

// TestTimelineExports locks the exporter formats: the CSV header row,
// the JSON schema stamp, and the summary's hottest-window ranking.
func TestTimelineExports(t *testing.T) {
	im := buildCompressed(t)
	_, w := runWindowed(t, "exports", im, 64)

	var csv strings.Builder
	if err := WriteTimelineCSV(&csv, w.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(w.Records)+1 {
		t.Fatalf("CSV has %d lines for %d records", len(lines), len(w.Records))
	}
	if !strings.HasPrefix(lines[0], "index,start_instr,end_instr,") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		if !strings.Contains(lines[0], ",cpi_"+k.Key()) {
			t.Errorf("CSV header missing cpi_%s", k.Key())
		}
	}

	var json strings.Builder
	if err := WriteTimelineJSON(&json, w.Size, w.Records); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(json.String(), fmt.Sprintf("\"schema_version\": %d", ReportSchema)) {
		t.Errorf("JSON timeline missing schema stamp %d", ReportSchema)
	}

	sum := SummarizeTimeline(w.Size, w.Records, 3)
	if sum.Windows != len(w.Records) {
		t.Errorf("summary counts %d windows, sampler has %d", sum.Windows, len(w.Records))
	}
	if sum.CPIMin > sum.CPIMean || sum.CPIMean > sum.CPIMax {
		t.Errorf("CPI ordering violated: min %.3f mean %.3f max %.3f", sum.CPIMin, sum.CPIMean, sum.CPIMax)
	}
	if len(sum.HottestByDecomp) == 0 {
		t.Error("compressed run produced no hot windows by decompression share")
	}
	for i := 1; i < len(sum.HottestByDecomp); i++ {
		if sum.HottestByDecomp[i].DecompShare > sum.HottestByDecomp[i-1].DecompShare {
			t.Error("hottest windows not sorted by decompression share")
		}
	}
}
