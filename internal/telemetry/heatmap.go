package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SetCounters is the per-set event map of one cache — the data behind a
// cache heatmap. It implements cache.Observer: misses are split into
// cold (an invalid way existed) and conflict (the set was full, so the
// miss evicts), and evictions are counted where they land.
type SetCounters struct {
	Name     string
	Miss     []uint64 // all lookup misses, by set
	Conflict []uint64 // misses that found the set full
	Evict    []uint64 // valid lines replaced
}

// NewSetCounters returns counters for a cache with the given set count.
func NewSetCounters(name string, sets int) *SetCounters {
	return &SetCounters{
		Name:     name,
		Miss:     make([]uint64, sets),
		Conflict: make([]uint64, sets),
		Evict:    make([]uint64, sets),
	}
}

// CacheMiss implements cache.Observer.
func (s *SetCounters) CacheMiss(set int, conflict bool) {
	s.Miss[set]++
	if conflict {
		s.Conflict[set]++
	}
}

// CacheEvict implements cache.Observer.
func (s *SetCounters) CacheEvict(set int) { s.Evict[set]++ }

// TotalMisses sums misses over every set.
func (s *SetCounters) TotalMisses() uint64 {
	var n uint64
	for _, v := range s.Miss {
		n += v
	}
	return n
}

// HotSet is one row of the heatmap digest.
type HotSet struct {
	Set      int    `json:"set"`
	Miss     uint64 `json:"miss"`
	Conflict uint64 `json:"conflict"`
	Evict    uint64 `json:"evict"`
}

// Hottest returns the n sets with the most misses, descending (ties by
// set index so output is deterministic).
func (s *SetCounters) Hottest(n int) []HotSet {
	idx := make([]int, len(s.Miss))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if s.Miss[idx[a]] != s.Miss[idx[b]] {
			return s.Miss[idx[a]] > s.Miss[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]HotSet, 0, n)
	for _, i := range idx[:n] {
		if s.Miss[i] == 0 {
			break
		}
		out = append(out, HotSet{Set: i, Miss: s.Miss[i], Conflict: s.Conflict[i], Evict: s.Evict[i]})
	}
	return out
}

// WriteHeatmapCSV writes the full per-set counters of the given caches
// as CSV — one row per set, every set included (zero rows too, so
// column positions line up across runs). Row order is deterministic:
// caches in argument order, sets ascending; nil counters are skipped.
// Columns: cache,set,miss,conflict,evict.
func WriteHeatmapCSV(w io.Writer, counters ...*SetCounters) error {
	var b strings.Builder
	b.WriteString("cache,set,miss,conflict,evict\n")
	for _, s := range counters {
		if s == nil {
			continue
		}
		for set := range s.Miss {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d\n",
				s.Name, set, s.Miss[set], s.Conflict[set], s.Evict[set])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders a one-line-per-row heat strip: sets are grouped into at
// most 64 columns and shaded by miss density.
func (s *SetCounters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d sets, %d misses\n", s.Name, len(s.Miss), s.TotalMisses())
	if len(s.Miss) == 0 {
		return b.String()
	}
	cols := len(s.Miss)
	if cols > 64 {
		cols = 64
	}
	per := (len(s.Miss) + cols - 1) / cols
	sums := make([]uint64, cols)
	var peak uint64
	for i, v := range s.Miss {
		sums[i/per] += v
		if sums[i/per] > peak {
			peak = sums[i/per]
		}
	}
	shades := []byte(" .:-=+*#%@")
	b.WriteString("  [")
	for _, v := range sums {
		var k int
		if peak > 0 {
			k = int(v * uint64(len(shades)-1) / peak)
		}
		b.WriteByte(shades[k])
	}
	fmt.Fprintf(&b, "]  (%d sets/column, peak %d misses)\n", per, peak)
	for _, h := range s.Hottest(4) {
		fmt.Fprintf(&b, "  set %4d: %d misses (%d conflict, %d evictions)\n",
			h.Set, h.Miss, h.Conflict, h.Evict)
	}
	return b.String()
}
