package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the number of log2 buckets: bucket 0 counts the value
// 0, bucket b (b >= 1) counts values v with 2^(b-1) <= v < 2^b — i.e.
// bucket index = bits.Len64(v). 64-bit values need at most index 64.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative integer
// samples (cycle latencies, burst byte counts). Observing is two adds
// and a bits.Len64; rendering reconstructs the shape well enough for
// the order-of-magnitude questions telemetry answers ("are exception
// latencies bimodal?", "how long is the tail?").
type Histogram struct {
	Name    string
	Unit    string // what one sample measures, e.g. "cycles", "bytes"
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{Name: name, Unit: unit}
}

// bucketOf returns the bucket index for v.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketRange returns the half-open value range [lo, hi) covered by
// bucket b.
func BucketRange(b int) (lo, hi uint64) {
	if b <= 0 {
		return 0, 1
	}
	return 1 << (b - 1), 1 << b
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
	if h.Count == 1 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds o's samples into h. Log2 buckets make this exact: the
// merged histogram is identical to one that observed both sample
// streams directly. Merging an empty or nil histogram is a no-op; Name
// and Unit are kept from h (merging histograms of different units is
// the caller's mistake to avoid).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// exclusive upper edge of the first bucket whose cumulative count
// reaches q*Count, clamped to Max. Bucket resolution makes this exact
// to within a factor of two, which is the precision log2 buckets buy.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= target {
			_, hi := BucketRange(b)
			if hi-1 > h.Max {
				return h.Max
			}
			return hi - 1
		}
	}
	return h.Max
}

// String renders the histogram as an ASCII block chart, one line per
// occupied bucket, widths normalised to the fullest bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %d samples, mean %.1f, min %d, max %d, p50<=%d, p99<=%d\n",
		h.Name, h.Unit, h.Count, h.Mean(), h.Min, h.Max, h.Quantile(0.50), h.Quantile(0.99))
	if h.Count == 0 {
		return b.String()
	}
	var peak uint64
	lowest, highest := -1, 0
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if lowest < 0 {
			lowest = i
		}
		highest = i
		if n > peak {
			peak = n
		}
	}
	const width = 40
	for i := lowest; i <= highest; i++ {
		lo, hi := BucketRange(i)
		bar := int(h.Buckets[i] * width / peak)
		if h.Buckets[i] > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%8d, %8d) %10d %s\n", lo, hi, h.Buckets[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// HistSummary is the machine-readable digest of a histogram; field
// names are stable (shared by ccprof and simrun -json).
type HistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	// Buckets lists the occupied log2 buckets as [lowEdge, count]
	// pairs, lowest first.
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() *HistSummary {
	s := &HistSummary{
		Count: h.Count, Mean: h.Mean(), Min: h.Min, Max: h.Max,
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, _ := BucketRange(i)
		s.Buckets = append(s.Buckets, [2]uint64{lo, n})
	}
	return s
}
