package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/minic"
	"repro/internal/program"
	"repro/internal/selective"
	"repro/internal/synth"
)

// The CPI-stack invariant: every simulated cycle is attributed to
// exactly one component, so the components always sum to Stats.Cycles.
// cpu.Run enforces this at exit; these tests sweep it across every
// example program and a seeded batch of random programs, under the
// native machine and each decompressor configuration.

// invariantConfigs are the compression variants each program runs under.
// "selective" compresses all but the procedures a profiled run ranks
// hottest by misses.
var invariantConfigs = []string{"native", "dict", "codepack", "selective"}

func runInvariant(t *testing.T, name string, im *program.Image) {
	t.Helper()
	for _, cfg := range invariantConfigs {
		run := im
		if cfg != "native" {
			opts := core.Options{Scheme: program.Scheme("dict")}
			switch cfg {
			case "codepack":
				opts.Scheme = program.SchemeCodePack
			case "selective":
				prof := profiledNative(t, im)
				opts.NativeProcs = selective.Select(prof, selective.ByMisses, 0.3)
				if len(opts.NativeProcs) == len(im.Procs) {
					// Single-hot-procedure program: nothing left to
					// compress, so the variant degenerates to native.
					continue
				}
			}
			res, err := core.Compress(im, opts)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", name, cfg, err)
			}
			run = res.Image
		}
		s := execute(t, fmt.Sprintf("%s/%s", name, cfg), run)
		if got := s.CPIStack.Total(); got != s.Cycles {
			t.Errorf("%s/%s: stack sums to %d, cycles %d (stack %v)",
				name, cfg, got, s.Cycles, s.CPIStack)
		}
		if err := s.CPIStack.Check(s.Cycles); err != nil {
			t.Errorf("%s/%s: %v", name, cfg, err)
		}
		if cfg != "native" && s.Exceptions > 0 && s.CPIStack[cpu.CycleExcService] == 0 {
			t.Errorf("%s/%s: %d exceptions but no exception-service cycles", name, cfg, s.Exceptions)
		}
	}
}

func execute(t *testing.T, name string, im *program.Image) cpu.Stats {
	t.Helper()
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 20_000_000
	if err := c.Load(im); err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	if _, err := c.Run(); err != nil {
		// Run itself rejects a broken decomposition, so a failure here is
		// already an invariant (or simulation) violation.
		t.Fatalf("%s: run: %v", name, err)
	}
	return c.Stats
}

func profiledNative(t *testing.T, im *program.Image) *cpu.ProcProfile {
	t.Helper()
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 20_000_000
	prof := cpu.NewProcProfile(im)
	c.Prof = prof
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestCPIStackInvariantExamples sweeps every example program in
// testdata: hand-written assembly and compiled MiniC.
func TestCPIStackInvariantExamples(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	asmFiles, err := filepath.Glob(filepath.Join(root, "*.s"))
	if err != nil || len(asmFiles) == 0 {
		t.Fatalf("no assembly examples found: %v", err)
	}
	mcFiles, err := filepath.Glob(filepath.Join(root, "minic", "*.mc"))
	if err != nil || len(mcFiles) == 0 {
		t.Fatalf("no MiniC examples found: %v", err)
	}
	for _, path := range append(asmFiles, mcFiles...) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var im *program.Image
			if strings.HasSuffix(path, ".mc") {
				im, err = minic.Compile(string(src))
			} else {
				im, err = asm.Assemble(string(src))
			}
			if err != nil {
				t.Fatal(err)
			}
			runInvariant(t, filepath.Base(path), im)
		})
	}
}

// TestCPIStackInvariantSynthetic sweeps the synthetic benchmark
// generator at test scale.
func TestCPIStackInvariantSynthetic(t *testing.T) {
	for _, name := range []string{"pegwit", "go"} {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		im, err := synth.Build(p.Scale(0.05))
		if err != nil {
			t.Fatal(err)
		}
		runInvariant(t, name, im)
	}
}

// TestCPIStackInvariantRandom sweeps a seeded batch of generated random
// programs — the same generator the differential fuzzer drives, so any
// attribution hole it can reach, this sweep can too.
func TestCPIStackInvariantRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rp := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		im, err := rp.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runInvariant(t, fmt.Sprintf("rand-%d", seed), im)
	}
}
