package telemetry

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/trace"
)

// testSrc is a three-procedure program with enough loops, calls, and
// data traffic to exercise every collector hook once compressed.
const testSrc = `
        .data
buf:    .word 0, 0, 0, 0, 0, 0, 0, 0
        .text
        .proc main
main:   ori   $s0, $zero, 24
        move  $s1, $zero
loop:   move  $a0, $s0
        jal   work
        addu  $s1, $s1, $v0
        addiu $s0, $s0, -1
        bgtz  $s0, loop
        andi  $a0, $s1, 0x7F
        ori   $v0, $zero, 10
        syscall
        .endp
        .proc work
work:   andi  $t0, $a0, 7
        sll   $t0, $t0, 2
        la    $t1, buf
        addu  $t1, $t1, $t0
        lw    $t2, 0($t1)
        addu  $t2, $t2, $a0
        sw    $t2, 0($t1)
        move  $a0, $t2
        addiu $sp, $sp, -4
        sw    $ra, 0($sp)
        jal   leaf
        lw    $ra, 0($sp)
        addiu $sp, $sp, 4
        jr    $ra
        .endp
        .proc leaf
leaf:   andi  $v0, $a0, 0xFF
        jr    $ra
        .endp
`

// buildCompressed assembles testSrc and rewrites it with the dictionary
// scheme so the run takes decompression exceptions.
func buildCompressed(t *testing.T) *program.Image {
	t.Helper()
	im, err := asm.Assemble(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(im, core.Options{Scheme: program.SchemeDict})
	if err != nil {
		t.Fatal(err)
	}
	return res.Image
}

// runCollected runs im with a collector (and any extra setup) attached.
func runCollected(t *testing.T, im *program.Image, col *Collector, setup func(*cpu.CPU)) *cpu.CPU {
	t.Helper()
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 1_000_000
	col.Attach(c)
	if setup != nil {
		setup(c)
	}
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCollectorCrossChecks verifies every hook delivered exactly the
// events the always-on counters say happened: the collector is a second,
// independently-wired witness of the same run.
func TestCollectorCrossChecks(t *testing.T) {
	col := New()
	c := runCollected(t, buildCompressed(t), col, nil)
	s := c.Stats

	if s.Exceptions == 0 {
		t.Fatal("compressed run took no exceptions; test is vacuous")
	}
	if col.CommittedUser != s.Instrs {
		t.Errorf("trace hook saw %d user commits, stats say %d", col.CommittedUser, s.Instrs)
	}
	if col.CommittedHandler != s.HandlerInstrs {
		t.Errorf("trace hook saw %d handler commits, stats say %d", col.CommittedHandler, s.HandlerInstrs)
	}
	if col.BranchResolved != c.BP.Lookups {
		t.Errorf("predictor hook saw %d resolutions, predictor says %d", col.BranchResolved, c.BP.Lookups)
	}
	if col.BranchMispredicts != c.BP.Mispredicts {
		t.Errorf("predictor hook saw %d mispredicts, predictor says %d", col.BranchMispredicts, c.BP.Mispredicts)
	}
	if col.BurstBytes.Sum != c.Mem.BytesRead {
		t.Errorf("bus hook saw %d bytes, memory says %d", col.BurstBytes.Sum, c.Mem.BytesRead)
	}
	if col.BurstBytes.Count != c.Mem.Reads {
		t.Errorf("bus hook saw %d bursts, memory says %d reads", col.BurstBytes.Count, c.Mem.Reads)
	}
	if uint64(len(col.Spans)) != s.Exceptions {
		t.Errorf("%d spans recorded, %d exceptions taken", len(col.Spans), s.Exceptions)
	}
	if col.ExcLatency.Count != s.Exceptions {
		t.Errorf("latency histogram has %d samples, want %d", col.ExcLatency.Count, s.Exceptions)
	}
	if col.ExcLatency.Sum != s.ExcCyclesTotal {
		t.Errorf("latency histogram sum %d, stats total %d", col.ExcLatency.Sum, s.ExcCyclesTotal)
	}
	if col.ExcLatency.Max != s.ExcCyclesMax {
		t.Errorf("latency histogram max %d, stats max %d", col.ExcLatency.Max, s.ExcCyclesMax)
	}
	if col.IC.TotalMisses() != c.IC.Stats.Misses {
		t.Errorf("I-heatmap has %d misses, cache says %d", col.IC.TotalMisses(), c.IC.Stats.Misses)
	}
	if col.DC.TotalMisses() != c.DC.Stats.Misses {
		t.Errorf("D-heatmap has %d misses, cache says %d", col.DC.TotalMisses(), c.DC.Stats.Misses)
	}
	for _, sp := range col.Spans {
		if sp.End <= sp.Start {
			t.Errorf("span %+v is empty or inverted", sp)
		}
	}
}

// TestCollectorCoexistsWithRing is the trace-multiplexing regression:
// attaching a debugging ring and the telemetry collector to the same CPU
// must deliver every commit to both.
func TestCollectorCoexistsWithRing(t *testing.T) {
	im := buildCompressed(t)
	col := New()
	var ring *trace.Ring
	c := runCollected(t, im, col, func(c *cpu.CPU) {
		ring = trace.NewRing(1<<16, im)
		ring.Attach(c)
	})
	total := c.Stats.Instrs + c.Stats.HandlerInstrs
	if ring.Count() != total {
		t.Errorf("ring saw %d commits, want %d", ring.Count(), total)
	}
	if col.CommittedUser+col.CommittedHandler != total {
		t.Errorf("collector saw %d commits, want %d", col.CommittedUser+col.CommittedHandler, total)
	}
	// Mixed-origin entries: the ring must contain both handler and user
	// instructions from a compressed run.
	var user, handler bool
	for _, e := range ring.Entries() {
		if e.Handler {
			handler = true
		} else {
			user = true
		}
	}
	if !user || !handler {
		t.Errorf("ring entries user=%v handler=%v, want both", user, handler)
	}
}

// TestCollectorEventCap exercises the bounded event buffers.
func TestCollectorEventCap(t *testing.T) {
	col := New()
	col.MaxEvents = 2
	c := runCollected(t, buildCompressed(t), col, nil)
	if len(col.Spans) > 2 || len(col.Fills) > 2 {
		t.Fatalf("caps ignored: %d spans, %d fills", len(col.Spans), len(col.Fills))
	}
	if c.Stats.Exceptions > 2 && col.DroppedEvents == 0 {
		t.Fatal("events past the cap were not counted as dropped")
	}
	// Histograms must still see everything.
	if col.ExcLatency.Count != c.Stats.Exceptions {
		t.Fatalf("capped collector lost histogram samples: %d vs %d",
			col.ExcLatency.Count, c.Stats.Exceptions)
	}
}

// TestChromeTraceExport verifies the exporter emits valid trace-event
// JSON with the spans and fills the run actually took.
func TestChromeTraceExport(t *testing.T) {
	im := buildCompressed(t)
	col := New()
	c := runCollected(t, im, col, nil)

	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf, im); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   uint64            `json:"ts"`
			Dur  uint64            `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	var spans, meta int
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.TID == 1 {
				spans++
				if e.Dur == 0 {
					t.Errorf("zero-duration handler span %q", e.Name)
				}
				if !strings.HasPrefix(e.Name, "decompress ") {
					t.Errorf("span name %q", e.Name)
				}
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta < 3 {
		t.Errorf("%d metadata events, want process + 2 thread names", meta)
	}
	if uint64(spans) != c.Stats.Exceptions {
		t.Errorf("%d handler spans exported, %d exceptions taken", spans, c.Stats.Exceptions)
	}
}

// TestFoldedExport verifies the flamegraph exporter reconstructs the
// main -> work -> leaf stacks and conserves the executed instructions.
func TestFoldedExport(t *testing.T) {
	im, err := asm.Assemble(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Cfg.MaxInstr = 1_000_000
	prof := cpu.NewProcProfile(im)
	c.Prof = prof
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteFolded(&buf, prof); err != nil {
		t.Fatal(err)
	}
	lineRE := regexp.MustCompile(`^[^ ;]+(;[^ ;]+)* \d+$`)
	var total uint64
	stacks := make(map[string]uint64)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !lineRE.MatchString(line) {
			t.Fatalf("malformed folded line %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		n, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		stacks[line[:i]] = n
		total += n
	}
	for _, want := range []string{"main", "main;work", "main;work;leaf"} {
		if stacks[want] == 0 {
			t.Errorf("missing stack %q in:\n%s", want, buf.String())
		}
	}
	// The call graph is acyclic with single-parent procedures, so the
	// reconstruction must conserve the committed instruction count exactly.
	var execs uint64
	for _, e := range prof.Execs {
		execs += e
	}
	if total != execs {
		t.Errorf("folded counts sum to %d, profile has %d executed instructions", total, execs)
	}
}

// TestReportStableFields pins the machine-readable contract: scripts
// parse these names, so their presence is part of the API.
func TestReportStableFields(t *testing.T) {
	col := New()
	c := runCollected(t, buildCompressed(t), col, nil)
	rep := NewReport(c, col)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"cycles", "instrs", "handler_instrs", "cpi", "cpi_stack",
		"exceptions", "imiss_native", "imiss_compressed",
		"exc_cycles_avg", "exc_cycles_max", "fetch_stalls", "load_stalls",
		"load_use_stalls", "branch", "bus", "icache", "dcache",
		"exc_latency", "fill_latency", "burst_bytes", "exit_code",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing stable field %q", key)
		}
	}

	// The exported stack must decompose the cycle total exactly.
	var sum uint64
	for _, comp := range rep.CPIStack {
		sum += comp.Cycles
	}
	if sum != rep.Cycles {
		t.Errorf("cpi_stack sums to %d, cycles = %d", sum, rep.Cycles)
	}

	// CSV rows mirror the same names.
	buf.Reset()
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	for _, key := range []string{"cycles,", "cpi_stack.handler_execute,", "exc_cycles_max,"} {
		if !strings.Contains(csv, "\n"+key) {
			t.Errorf("CSV missing row %q:\n%s", key, csv)
		}
	}
	if !strings.Contains(rep.FormatCPIStack(), "handler_execute") {
		t.Error("text CPI stack missing handler component")
	}
}
