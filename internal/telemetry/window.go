package telemetry

// Windowed time-series sampling: a WindowSampler splits a run into
// windows of N committed instructions (user + handler) and records the
// full cpu.Stats delta of every window — the CPI stack, I-cache
// miss/fill counts, decompression-exception counts and bus burst bytes.
// The records are a lossless decomposition of the run: summed
// component-wise they are bit-identical to the whole-run cpu.Stats
// (Verify enforces this; rtd.WindowedRun, the diffsim oracle and the
// batch tests in window_test.go all call it).

import (
	"fmt"

	"repro/internal/cpu"
)

// DefaultWindowSize is the default window length in committed
// instructions (user + handler): small enough to localize phases on the
// testdata programs, large enough that sampling stays off the hot path.
const DefaultWindowSize = 8192

// WindowRecord is the Stats delta of one window. All counter fields are
// deltas over the window except ExcCyclesMax, which is the running
// whole-run maximum at window close (a maximum has no meaningful delta;
// the last record therefore equals Stats.ExcCyclesMax).
type WindowRecord struct {
	Index int `json:"index"`
	// StartInstr/EndInstr bound the window in committed instructions
	// (user + handler): the window covers commits StartInstr+1..EndInstr.
	StartInstr uint64 `json:"start_instr"`
	EndInstr   uint64 `json:"end_instr"`
	// StartCycle/EndCycle bound the window on the cycle axis.
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	Cycles        uint64 `json:"cycles"`
	Instrs        uint64 `json:"instrs"`
	HandlerInstrs uint64 `json:"handler_instrs"`

	IMissNative     uint64 `json:"imiss_native"`
	IMissCompressed uint64 `json:"imiss_compressed"`
	Exceptions      uint64 `json:"exceptions"`

	FetchStalls   uint64 `json:"fetch_stalls"`
	LoadStalls    uint64 `json:"load_stalls"`
	LoadUseStalls uint64 `json:"load_use_stalls"`

	ExcCyclesTotal uint64 `json:"exc_cycles_total"`
	ExcCyclesMax   uint64 `json:"exc_cycles_max"` // running max, not a delta

	// CPIStack is the per-window cycle attribution; components sum to
	// Cycles exactly (the whole-run invariant holds window-locally too,
	// because both Cycles and every component are deltas of monotone
	// counters).
	CPIStack cpu.CPIStack `json:"cpi_stack"`

	// Bus traffic over the window (decompression burst reads included).
	BusReads uint64 `json:"bus_reads"`
	BusBytes uint64 `json:"bus_bytes"`
}

// DecompShare returns the fraction of the window's cycles spent on
// decompression work: handler execution plus exception service.
func (r WindowRecord) DecompShare() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.CPIStack[cpu.CycleHandler]+r.CPIStack[cpu.CycleExcService]) / float64(r.Cycles)
}

// CPI returns the window's cycles per committed instruction (user +
// handler — a window may be handler-only).
func (r WindowRecord) CPI() float64 {
	n := r.Instrs + r.HandlerInstrs
	if n == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(n)
}

// WindowSampler snapshots cpu.Stats every Size committed instructions
// through the composable commit-trace hook (cpu.AttachTrace), so it
// coexists with the debugging ring and the Collector's commit counters.
// Rollover is swic-safe and handler-safe: the boundary is taken on the
// commit hook after the instruction's full Stats update, wherever it
// lands — mid-exception-handler included — because records are pure
// deltas of monotone counters.
type WindowSampler struct {
	// Size is the window length in committed instructions (user +
	// handler). Set before Attach; 0 means DefaultWindowSize.
	Size uint64
	// Records are the closed windows, in execution order. Call Finish
	// (or Verify, which finishes) after the run to flush the final
	// partial window.
	Records []WindowRecord

	c         *cpu.CPU
	committed uint64 // commits seen through the trace hook
	next      uint64 // commit count that closes the current window
	prev      cpu.Stats
	prevReads uint64
	prevBytes uint64
	finished  bool
}

// NewWindowSampler returns a sampler with the given window size
// (0 = DefaultWindowSize).
func NewWindowSampler(size uint64) *WindowSampler {
	if size == 0 {
		size = DefaultWindowSize
	}
	return &WindowSampler{Size: size}
}

// Attach hooks the sampler into the CPU's commit tracer. Call before
// cpu.Load/Run; composes with previously attached tracers.
func (w *WindowSampler) Attach(c *cpu.CPU) {
	w.Bind(c)
	c.AttachTrace(func(pc, instr uint32, handler bool) { w.Tick() })
}

// Bind points the sampler at a machine without installing a tracer, for
// callers that fuse Tick into an already-installed commit tracer
// (Collector.Attach does this — one indirect call per commit instead of
// a composed chain). Bind before the first commit.
func (w *WindowSampler) Bind(c *cpu.CPU) {
	if w.Size == 0 {
		w.Size = DefaultWindowSize
	}
	w.c = c
	w.next = w.Size
}

// Tick counts one committed instruction and closes the window on
// rollover. Call once per commit, after the CPU's Stats update.
func (w *WindowSampler) Tick() {
	w.committed++
	if w.committed == w.next {
		w.roll()
		w.next += w.Size
	}
}

// roll closes the current window at the CPU's present Stats.
func (w *WindowSampler) roll() {
	s := w.c.Stats
	reads, bytes := w.c.Mem.Reads, w.c.Mem.BytesRead
	rec := WindowRecord{
		Index:           len(w.Records),
		StartInstr:      w.prev.Instrs + w.prev.HandlerInstrs,
		EndInstr:        s.Instrs + s.HandlerInstrs,
		StartCycle:      w.prev.Cycles,
		EndCycle:        s.Cycles,
		Cycles:          s.Cycles - w.prev.Cycles,
		Instrs:          s.Instrs - w.prev.Instrs,
		HandlerInstrs:   s.HandlerInstrs - w.prev.HandlerInstrs,
		IMissNative:     s.IMissNative - w.prev.IMissNative,
		IMissCompressed: s.IMissCompressed - w.prev.IMissCompressed,
		Exceptions:      s.Exceptions - w.prev.Exceptions,
		FetchStalls:     s.FetchStalls - w.prev.FetchStalls,
		LoadStalls:      s.LoadStalls - w.prev.LoadStalls,
		LoadUseStalls:   s.LoadUseStalls - w.prev.LoadUseStalls,
		ExcCyclesTotal:  s.ExcCyclesTotal - w.prev.ExcCyclesTotal,
		ExcCyclesMax:    s.ExcCyclesMax,
		BusReads:        reads - w.prevReads,
		BusBytes:        bytes - w.prevBytes,
	}
	for k := range rec.CPIStack {
		rec.CPIStack[k] = s.CPIStack[k] - w.prev.CPIStack[k]
	}
	w.Records = append(w.Records, rec)
	w.prev = s
	w.prevReads, w.prevBytes = reads, bytes
}

// Finish flushes the final partial window (commits since the last full
// window, if any). Idempotent; Verify calls it.
func (w *WindowSampler) Finish() {
	if w.finished || w.c == nil {
		return
	}
	w.finished = true
	if w.committed > uint64(len(w.Records))*w.Size {
		w.roll()
	}
}

// Committed returns the number of commits the sampler observed.
func (w *WindowSampler) Committed() uint64 { return w.committed }

// Verify enforces the hard timeline invariant: the component-wise sum
// of all window records must be bit-identical to the whole-run
// cpu.Stats (and bus counters) of the attached machine. Any drift means
// a commit escaped the windows or a counter moved outside the commit
// hook's view — a simulator bug, never a property of the program.
// statscomplete proves this sums every cpu.Stats counter, so a new
// counter must be wired into the window records before cccheck passes.
//
//cccheck:stats(sum)
func (w *WindowSampler) Verify() error {
	if w.c == nil {
		return fmt.Errorf("telemetry: window sampler never attached")
	}
	w.Finish()
	s := w.c.Stats
	var sum WindowRecord
	for _, r := range w.Records {
		sum.Cycles += r.Cycles
		sum.Instrs += r.Instrs
		sum.HandlerInstrs += r.HandlerInstrs
		sum.IMissNative += r.IMissNative
		sum.IMissCompressed += r.IMissCompressed
		sum.Exceptions += r.Exceptions
		sum.FetchStalls += r.FetchStalls
		sum.LoadStalls += r.LoadStalls
		sum.LoadUseStalls += r.LoadUseStalls
		sum.ExcCyclesTotal += r.ExcCyclesTotal
		sum.ExcCyclesMax = r.ExcCyclesMax // running max: last record wins
		for k := range r.CPIStack {
			sum.CPIStack[k] += r.CPIStack[k]
		}
		sum.BusReads += r.BusReads
		sum.BusBytes += r.BusBytes
	}
	mismatch := func(field string, got, want uint64) error {
		return fmt.Errorf("telemetry: window sum invariant: %s: windows sum to %d, whole run has %d (diff %+d, %d windows of %d)",
			field, got, want, int64(got)-int64(want), len(w.Records), w.Size)
	}
	switch {
	case sum.Cycles != s.Cycles:
		return mismatch("cycles", sum.Cycles, s.Cycles)
	case sum.Instrs != s.Instrs:
		return mismatch("instrs", sum.Instrs, s.Instrs)
	case sum.HandlerInstrs != s.HandlerInstrs:
		return mismatch("handler_instrs", sum.HandlerInstrs, s.HandlerInstrs)
	case sum.IMissNative != s.IMissNative:
		return mismatch("imiss_native", sum.IMissNative, s.IMissNative)
	case sum.IMissCompressed != s.IMissCompressed:
		return mismatch("imiss_compressed", sum.IMissCompressed, s.IMissCompressed)
	case sum.Exceptions != s.Exceptions:
		return mismatch("exceptions", sum.Exceptions, s.Exceptions)
	case sum.FetchStalls != s.FetchStalls:
		return mismatch("fetch_stalls", sum.FetchStalls, s.FetchStalls)
	case sum.LoadStalls != s.LoadStalls:
		return mismatch("load_stalls", sum.LoadStalls, s.LoadStalls)
	case sum.LoadUseStalls != s.LoadUseStalls:
		return mismatch("load_use_stalls", sum.LoadUseStalls, s.LoadUseStalls)
	case sum.ExcCyclesTotal != s.ExcCyclesTotal:
		return mismatch("exc_cycles_total", sum.ExcCyclesTotal, s.ExcCyclesTotal)
	case sum.ExcCyclesMax != s.ExcCyclesMax:
		return mismatch("exc_cycles_max", sum.ExcCyclesMax, s.ExcCyclesMax)
	case sum.BusReads != w.c.Mem.Reads:
		return mismatch("bus_reads", sum.BusReads, w.c.Mem.Reads)
	case sum.BusBytes != w.c.Mem.BytesRead:
		return mismatch("bus_bytes", sum.BusBytes, w.c.Mem.BytesRead)
	}
	for k := range sum.CPIStack {
		if sum.CPIStack[k] != s.CPIStack[k] {
			return mismatch("cpi_stack."+cpu.CycleKind(k).Key(), sum.CPIStack[k], s.CPIStack[k])
		}
	}
	// Window instruction coverage: the commits the hook delivered are
	// exactly the commits the machine retired, and the records tile the
	// commit axis without gaps or overlaps.
	if w.committed != s.Instrs+s.HandlerInstrs {
		return fmt.Errorf("telemetry: window sampler saw %d commits, machine retired %d",
			w.committed, s.Instrs+s.HandlerInstrs)
	}
	var at uint64
	for _, r := range w.Records {
		if r.StartInstr != at || r.EndInstr < r.StartInstr {
			return fmt.Errorf("telemetry: window %d covers commits %d..%d, expected to start at %d",
				r.Index, r.StartInstr, r.EndInstr, at)
		}
		at = r.EndInstr
	}
	if at != w.committed {
		return fmt.Errorf("telemetry: windows cover %d commits, sampler saw %d", at, w.committed)
	}
	return nil
}
