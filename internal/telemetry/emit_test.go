package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
)

// This file is the emitter-determinism battery: every machine-readable
// writer in the package (report JSON/CSV, Chrome trace, folded
// flamegraph, heatmap CSV) must produce byte-identical output when
// emitted twice from the same run AND across two identical fresh runs.
// Map-iteration order leaking into an emitter is exactly the class of
// bug this catches — output files are diffed across CI runs and any
// nondeterminism shows up as phantom changes.

// collectOnce runs the shared test image with a fresh collector and
// procedure profile attached.
func collectOnce(t *testing.T, im *program.Image) (*cpu.CPU, *Collector, *cpu.ProcProfile) {
	t.Helper()
	col := New()
	var prof *cpu.ProcProfile
	c := runCollected(t, im, col, func(c *cpu.CPU) {
		prof = cpu.NewProcProfile(im)
		c.Prof = prof
	})
	return c, col, prof
}

// emitAll renders every emitter into byte slices keyed by name.
func emitAll(t *testing.T, im *program.Image, c *cpu.CPU, col *Collector, prof *cpu.ProcProfile) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	emit := func(name string, fn func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	rep := NewReport(c, col)
	emit("report.json", func(b *bytes.Buffer) error { return rep.WriteJSON(b) })
	emit("report.csv", func(b *bytes.Buffer) error { return rep.WriteCSV(b) })
	emit("trace.json", func(b *bytes.Buffer) error { return col.WriteChromeTrace(b, im) })
	emit("profile.folded", func(b *bytes.Buffer) error { return WriteFolded(b, prof) })
	emit("heatmap.csv", func(b *bytes.Buffer) error { return WriteHeatmapCSV(b, col.IC, col.DC) })
	return out
}

// TestEmittersByteIdentical is the repeated-emit check on both axes:
// same state emitted twice, and two identical runs emitted once each.
func TestEmittersByteIdentical(t *testing.T) {
	im := buildCompressed(t)

	c1, col1, prof1 := collectOnce(t, im)
	first := emitAll(t, im, c1, col1, prof1)
	again := emitAll(t, im, c1, col1, prof1)
	for name, want := range first {
		if !bytes.Equal(again[name], want) {
			t.Errorf("%s: re-emitting from the same run changed the bytes", name)
		}
		if len(want) == 0 {
			t.Errorf("%s: emitter produced no output; the identity check is vacuous", name)
		}
	}

	c2, col2, prof2 := collectOnce(t, im)
	second := emitAll(t, im, c2, col2, prof2)
	for name, want := range first {
		if !bytes.Equal(second[name], want) {
			t.Errorf("%s: two identical runs emitted different bytes (nondeterministic emitter or simulation)", name)
		}
	}
}
