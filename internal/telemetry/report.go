package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/profile"
)

// ReportSchema versions the shared report schema emitted by ccprof,
// `simrun -json` and embedded in perfwatch trajectory tooling. History:
//
//	1 — PR 3 initial shape (implicit: reports carried no version field).
//	2 — adds the self-describing `config` stanza (scheme, seed, cache
//	    geometry) carrying `schema_version`.
//	3 — adds the `timeline` phase-summary stanza (windowed CPI-stack
//	    sampling; filled when a WindowSampler was attached) and the
//	    embedded `manifest` provenance stanza (timing-free obs.Manifest:
//	    tool, args, codec registry, input hashes, git SHA).
//	4 — adds the `attribution` spatial-profiling stanza (per-line /
//	    per-procedure cost counts and the top procedures by attributed
//	    cycles; filled when a profile.Recorder was attached).
//
// Additive changes (new fields) do not bump the version; renames and
// semantic changes do.
const ReportSchema = 4

// CacheGeometry describes one cache's configuration.
type CacheGeometry struct {
	SizeBytes int `json:"size_bytes"`
	LineBytes int `json:"line_bytes"`
	Ways      int `json:"ways"`
}

// RunConfig is the report's self-describing config stanza: enough to
// re-run the measurement and to tell two reports apart without
// out-of-band context. Trajectory entries and one-off reports share it.
type RunConfig struct {
	SchemaVersion int    `json:"schema_version"`
	Scheme        string `json:"scheme"`
	// Seed is the synthetic benchmark's generator seed (0 for images
	// loaded from files).
	Seed     int64         `json:"seed,omitempty"`
	ICache   CacheGeometry `json:"icache"`
	DCache   CacheGeometry `json:"dcache"`
	MaxInstr uint64        `json:"max_instr,omitempty"`
}

// CPIComponent is one slice of the CPI stack.
type CPIComponent struct {
	// Name is the stable machine-readable component key (cpu.CycleKind.Key).
	Name     string  `json:"name"`
	Cycles   uint64  `json:"cycles"`
	Fraction float64 `json:"fraction"` // of total cycles
	PerInstr float64 `json:"per_instr"`
}

// BranchReport summarises the predictor.
type BranchReport struct {
	Lookups        uint64  `json:"lookups"`
	Mispredicts    uint64  `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`
}

// CacheReport summarises one cache plus its hottest sets.
type CacheReport struct {
	Accesses  uint64   `json:"accesses"`
	Misses    uint64   `json:"misses"`
	MissRatio float64  `json:"miss_ratio"`
	Evictions uint64   `json:"evictions"`
	SwicLines uint64   `json:"swic_lines,omitempty"`
	HotSets   []HotSet `json:"hot_sets,omitempty"`
}

// BusReport summarises main-memory traffic.
type BusReport struct {
	Reads     uint64 `json:"reads"`
	BytesRead uint64 `json:"bytes_read"`
}

// Report is the machine-readable digest of one run. Field names are
// stable — experiment scripts parse them, so renaming any is a breaking
// change; add, don't rename.
type Report struct {
	Image  string `json:"image,omitempty"`
	Scheme string `json:"scheme,omitempty"`

	// Config is the self-describing run configuration (schema v2+).
	// NewReport fills the machine geometry; SetIdentity fills scheme
	// and seed.
	Config *RunConfig `json:"config,omitempty"`

	Cycles        uint64  `json:"cycles"`
	Instrs        uint64  `json:"instrs"`
	HandlerInstrs uint64  `json:"handler_instrs"`
	CPI           float64 `json:"cpi"` // cycles per user instruction

	CPIStack []CPIComponent `json:"cpi_stack"`

	Exceptions      uint64  `json:"exceptions"`
	IMissNative     uint64  `json:"imiss_native"`
	IMissCompressed uint64  `json:"imiss_compressed"`
	ExcCyclesAvg    float64 `json:"exc_cycles_avg"`
	ExcCyclesMax    uint64  `json:"exc_cycles_max"`

	FetchStalls   uint64 `json:"fetch_stalls"`
	LoadStalls    uint64 `json:"load_stalls"`
	LoadUseStalls uint64 `json:"load_use_stalls"`

	Branch BranchReport `json:"branch"`
	Bus    BusReport    `json:"bus"`

	ICache *CacheReport `json:"icache,omitempty"`
	DCache *CacheReport `json:"dcache,omitempty"`

	ExcLatency  *HistSummary `json:"exc_latency,omitempty"`
	FillLatency *HistSummary `json:"fill_latency,omitempty"`
	BurstBytes  *HistSummary `json:"burst_bytes,omitempty"`

	// Timeline is the windowed-sampling phase summary (schema v3+),
	// filled by NewReport when the collector carried a WindowSampler.
	Timeline *TimelineSummary `json:"timeline,omitempty"`

	// Attribution is the spatial-profiling stanza (schema v4+), set by
	// SetAttribution when a profile.Recorder observed the run.
	Attribution *profile.Summary `json:"attribution,omitempty"`

	// Manifest is the embedded run provenance (schema v3+), set by
	// SetManifest. Always the timing-free Provenance form, so identical
	// runs produce byte-identical reports.
	Manifest *obs.Manifest `json:"manifest,omitempty"`

	DroppedEvents uint64 `json:"dropped_events,omitempty"`
	ExitCode      int32  `json:"exit_code"`
}

// NewReport digests a finished machine. t may be nil: the CPI stack and
// every counter-derived field come from cpu.Stats alone (always
// maintained); histograms and heatmaps need an attached collector.
func NewReport(c *cpu.CPU, t *Collector) *Report {
	s := c.Stats
	_, exit := c.Halted()
	r := &Report{
		Cycles:          s.Cycles,
		Instrs:          s.Instrs,
		HandlerInstrs:   s.HandlerInstrs,
		Exceptions:      s.Exceptions,
		IMissNative:     s.IMissNative,
		IMissCompressed: s.IMissCompressed,
		ExcCyclesAvg:    s.AvgExcCycles(),
		ExcCyclesMax:    s.ExcCyclesMax,
		FetchStalls:     s.FetchStalls,
		LoadStalls:      s.LoadStalls,
		LoadUseStalls:   s.LoadUseStalls,
		Branch: BranchReport{
			Lookups:        c.BP.Lookups,
			Mispredicts:    c.BP.Mispredicts,
			MispredictRate: c.BP.MispredictRatio(),
		},
		Bus:      BusReport{Reads: c.Mem.Reads, BytesRead: c.Mem.BytesRead},
		ExitCode: exit,
		Config: &RunConfig{
			SchemaVersion: ReportSchema,
			ICache: CacheGeometry{
				SizeBytes: c.Cfg.ICache.SizeBytes,
				LineBytes: c.Cfg.ICache.LineBytes,
				Ways:      c.Cfg.ICache.Ways,
			},
			DCache: CacheGeometry{
				SizeBytes: c.Cfg.DCache.SizeBytes,
				LineBytes: c.Cfg.DCache.LineBytes,
				Ways:      c.Cfg.DCache.Ways,
			},
			MaxInstr: c.Cfg.MaxInstr,
		},
	}
	if s.Instrs > 0 {
		r.CPI = float64(s.Cycles) / float64(s.Instrs)
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		comp := CPIComponent{Name: k.Key(), Cycles: s.CPIStack[k]}
		if s.Cycles > 0 {
			comp.Fraction = float64(s.CPIStack[k]) / float64(s.Cycles)
		}
		if s.Instrs > 0 {
			comp.PerInstr = float64(s.CPIStack[k]) / float64(s.Instrs)
		}
		r.CPIStack = append(r.CPIStack, comp)
	}
	r.ICache = &CacheReport{
		Accesses: c.IC.Stats.Accesses, Misses: c.IC.Stats.Misses,
		MissRatio: c.IC.Stats.MissRatio(), Evictions: c.IC.Stats.Evictions,
		SwicLines: c.IC.Stats.SwicLines,
	}
	r.DCache = &CacheReport{
		Accesses: c.DC.Stats.Accesses, Misses: c.DC.Stats.Misses,
		MissRatio: c.DC.Stats.MissRatio(), Evictions: c.DC.Stats.Evictions,
	}
	if t != nil {
		if t.IC != nil {
			r.ICache.HotSets = t.IC.Hottest(8)
		}
		if t.DC != nil {
			r.DCache.HotSets = t.DC.Hottest(8)
		}
		r.ExcLatency = t.ExcLatency.Summary()
		r.FillLatency = t.FillLatency.Summary()
		r.BurstBytes = t.BurstBytes.Summary()
		r.DroppedEvents = t.DroppedEvents
		if t.Windows != nil {
			t.Windows.Finish()
			r.Timeline = SummarizeTimeline(t.Windows.Size, t.Windows.Records, 5)
		}
	}
	return r
}

// SetManifest embeds the run's provenance (always the timing-free
// Provenance copy, regardless of what the caller passes) so the report
// is self-describing down to input hashes and the codec registry.
func (r *Report) SetManifest(m *obs.Manifest) {
	if m == nil {
		r.Manifest = nil
		return
	}
	r.Manifest = m.Provenance()
}

// SetAttribution embeds the spatial-profiling digest of a verified
// profile: bucket counts plus the top procedures by attributed cycles.
// Pass the profile of *this* run — the stanza is a summary, the full
// artifact ships separately (ccprof -profile).
func (r *Report) SetAttribution(p *profile.Profile) {
	if p == nil {
		r.Attribution = nil
		return
	}
	r.Attribution = p.Summarize(5)
}

// SetIdentity records what ran: the image name, the compression scheme
// and (for synthetic benchmarks) the generator seed, mirrored into the
// config stanza so the report is self-describing.
func (r *Report) SetIdentity(image, scheme string, seed int64) {
	r.Image, r.Scheme = image, scheme
	if r.Config != nil {
		r.Config.Scheme = scheme
		r.Config.Seed = seed
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the report as flat key,value rows (one metric per
// line) — trivially greppable and joinable across runs. Keys reuse the
// JSON field names, with cpi_stack.<component> for the stack.
func (r *Report) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("metric,value\n")
	row := func(k string, v interface{}) { fmt.Fprintf(&b, "%s,%v\n", k, v) }
	if r.Image != "" {
		row("image", r.Image)
	}
	if r.Scheme != "" {
		row("scheme", r.Scheme)
	}
	if r.Config != nil {
		row("config.schema_version", r.Config.SchemaVersion)
		if r.Config.Seed != 0 {
			row("config.seed", r.Config.Seed)
		}
		row("config.icache", fmt.Sprintf("%dB/%dB/%dway",
			r.Config.ICache.SizeBytes, r.Config.ICache.LineBytes, r.Config.ICache.Ways))
		row("config.dcache", fmt.Sprintf("%dB/%dB/%dway",
			r.Config.DCache.SizeBytes, r.Config.DCache.LineBytes, r.Config.DCache.Ways))
	}
	row("cycles", r.Cycles)
	row("instrs", r.Instrs)
	row("handler_instrs", r.HandlerInstrs)
	row("cpi", fmt.Sprintf("%.4f", r.CPI))
	for _, comp := range r.CPIStack {
		row("cpi_stack."+comp.Name, comp.Cycles)
	}
	row("exceptions", r.Exceptions)
	row("imiss_native", r.IMissNative)
	row("imiss_compressed", r.IMissCompressed)
	row("exc_cycles_avg", fmt.Sprintf("%.2f", r.ExcCyclesAvg))
	row("exc_cycles_max", r.ExcCyclesMax)
	row("fetch_stalls", r.FetchStalls)
	row("load_stalls", r.LoadStalls)
	row("load_use_stalls", r.LoadUseStalls)
	row("branch.lookups", r.Branch.Lookups)
	row("branch.mispredicts", r.Branch.Mispredicts)
	row("bus.reads", r.Bus.Reads)
	row("bus.bytes_read", r.Bus.BytesRead)
	if r.ICache != nil {
		row("icache.misses", r.ICache.Misses)
		row("icache.miss_ratio", fmt.Sprintf("%.6f", r.ICache.MissRatio))
	}
	if r.DCache != nil {
		row("dcache.misses", r.DCache.Misses)
		row("dcache.miss_ratio", fmt.Sprintf("%.6f", r.DCache.MissRatio))
	}
	if r.Timeline != nil {
		row("timeline.windows", r.Timeline.Windows)
		row("timeline.window_size", r.Timeline.WindowSize)
		row("timeline.cpi_min", fmt.Sprintf("%.4f", r.Timeline.CPIMin))
		row("timeline.cpi_mean", fmt.Sprintf("%.4f", r.Timeline.CPIMean))
		row("timeline.cpi_max", fmt.Sprintf("%.4f", r.Timeline.CPIMax))
	}
	if r.Attribution != nil {
		row("attribution.lines", r.Attribution.Lines)
		row("attribution.procs", r.Attribution.Procs)
		for _, p := range r.Attribution.TopProcs {
			row("attribution.proc."+p.Name, p.Cycles)
		}
	}
	row("exit_code", r.ExitCode)
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatCPIStack renders the stack as an aligned text block with
// percentage bars — the Figure 5-style "where did the cycles go" view.
func (r *Report) FormatCPIStack() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stack (%d cycles, %d user instructions, CPI %.2f):\n",
		r.Cycles, r.Instrs, r.CPI)
	const width = 32
	for _, comp := range r.CPIStack {
		if comp.Cycles == 0 {
			continue
		}
		bar := int(comp.Fraction * width)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-16s %12d  %6.2f%%  %5.3f/instr %s\n",
			comp.Name, comp.Cycles, comp.Fraction*100, comp.PerInstr,
			strings.Repeat("#", bar))
	}
	return b.String()
}

// WriteText writes the full human-readable report: CPI stack,
// exception/miss summary, histograms and cache heatmaps.
func (r *Report) WriteText(w io.Writer, t *Collector) error {
	var b strings.Builder
	if r.Image != "" && r.Scheme != "" {
		fmt.Fprintf(&b, "image %s (scheme %s)\n", r.Image, r.Scheme)
	} else if r.Image != "" {
		fmt.Fprintf(&b, "image %s\n", r.Image)
	}
	b.WriteString(r.FormatCPIStack())
	fmt.Fprintf(&b, "I-miss native/compressed: %d/%d; exceptions %d (mean %.1f, worst %d cycles)\n",
		r.IMissNative, r.IMissCompressed, r.Exceptions, r.ExcCyclesAvg, r.ExcCyclesMax)
	fmt.Fprintf(&b, "branches: %d resolved, %d mispredicted (%.2f%%)\n",
		r.Branch.Lookups, r.Branch.Mispredicts, r.Branch.MispredictRate*100)
	fmt.Fprintf(&b, "bus: %d reads, %d bytes\n", r.Bus.Reads, r.Bus.BytesRead)
	if r.Timeline != nil {
		b.WriteString(r.Timeline.Format())
	}
	if a := r.Attribution; a != nil {
		fmt.Fprintf(&b, "attribution: %d lines, %d procedures with cost\n", a.Lines, a.Procs)
		for _, p := range a.TopProcs {
			fmt.Fprintf(&b, "  %-24s %12d cycles  %6.2f%%  decomp %d\n",
				p.Name, p.Cycles, p.Fraction*100, p.DecompCycles)
		}
	}
	if t != nil {
		b.WriteString(t.ExcLatency.String())
		b.WriteString(t.FillLatency.String())
		b.WriteString(t.BurstBytes.String())
		if t.IC != nil {
			b.WriteString(t.IC.String())
		}
		if t.DC != nil {
			b.WriteString(t.DC.String())
		}
		if t.DroppedEvents > 0 {
			fmt.Fprintf(&b, "note: %d trace events dropped past the %d-event cap\n",
				t.DroppedEvents, t.MaxEvents)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
