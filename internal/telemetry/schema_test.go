package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestReportConfigStanza locks the schema-v2 config stanza: NewReport
// fills the machine geometry and schema version, SetIdentity mirrors
// scheme and seed, and the JSON round-trips with the stable field names.
func TestReportConfigStanza(t *testing.T) {
	im := buildCompressed(t)
	col := New()
	c := runCollected(t, im, col, nil)
	rep := NewReport(c, col)

	if rep.Config == nil {
		t.Fatal("NewReport left Config nil")
	}
	if rep.Config.SchemaVersion != ReportSchema {
		t.Fatalf("schema version %d, want %d", rep.Config.SchemaVersion, ReportSchema)
	}
	if ReportSchema < 2 {
		t.Fatalf("ReportSchema %d: the config stanza requires version >= 2", ReportSchema)
	}
	cfg := c.Cfg
	if g := rep.Config.ICache; g.SizeBytes != cfg.ICache.SizeBytes ||
		g.LineBytes != cfg.ICache.LineBytes || g.Ways != cfg.ICache.Ways {
		t.Fatalf("icache geometry %+v, machine %+v", g, cfg.ICache)
	}
	if g := rep.Config.DCache; g.SizeBytes != cfg.DCache.SizeBytes ||
		g.LineBytes != cfg.DCache.LineBytes || g.Ways != cfg.DCache.Ways {
		t.Fatalf("dcache geometry %+v, machine %+v", g, cfg.DCache)
	}

	rep.SetIdentity("prog.img", "dict", 42)
	if rep.Config.Scheme != "dict" || rep.Config.Seed != 42 {
		t.Fatalf("SetIdentity did not mirror into config: %+v", rep.Config)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	conf, ok := decoded["config"].(map[string]any)
	if !ok {
		t.Fatalf("no config stanza in JSON: %s", buf.String())
	}
	for _, key := range []string{"schema_version", "scheme", "seed", "icache", "dcache"} {
		if _, ok := conf[key]; !ok {
			t.Errorf("config stanza missing %q: %v", key, conf)
		}
	}
	if v := conf["schema_version"].(float64); int(v) != ReportSchema {
		t.Errorf("encoded schema_version %v, want %d", v, ReportSchema)
	}

	// The CSV form carries the same stanza, greppably.
	buf.Reset()
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{fmt.Sprintf("config.schema_version,%d", ReportSchema), "config.seed,42", "config.icache,"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("CSV missing %q:\n%s", want, buf.String())
		}
	}
}

// TestHeatmapCSV locks the -heatmap export format: header, one row per
// set including zero rows, caches in argument order, sets ascending.
func TestHeatmapCSV(t *testing.T) {
	ic := NewSetCounters("I-cache", 4)
	dc := NewSetCounters("D-cache", 2)
	ic.CacheMiss(2, true)
	ic.CacheMiss(2, false)
	ic.CacheEvict(2)
	ic.CacheMiss(0, false)
	dc.CacheMiss(1, true)

	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, ic, dc); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"cache,set,miss,conflict,evict",
		"I-cache,0,1,0,0",
		"I-cache,1,0,0,0",
		"I-cache,2,2,1,1",
		"I-cache,3,0,0,0",
		"D-cache,0,0,0,0",
		"D-cache,1,1,1,0",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}

	// Deterministic: a second export is byte-identical, nil counters skip.
	var again bytes.Buffer
	if err := WriteHeatmapCSV(&again, ic, nil, dc); err != nil {
		t.Fatal(err)
	}
	if again.String() != want {
		t.Fatalf("second export differs:\n%s", again.String())
	}
}

// TestHeatmapCSVFromRun exports a real collected run and checks shape:
// set count rows per cache and totals that match the counters.
func TestHeatmapCSVFromRun(t *testing.T) {
	im := buildCompressed(t)
	col := New()
	runCollected(t, im, col, nil)
	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, col.IC, col.DC); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	wantRows := 1 + len(col.IC.Miss) + len(col.DC.Miss)
	if len(lines) != wantRows {
		t.Fatalf("%d lines, want %d (header + per-set rows)", len(lines), wantRows)
	}
	if lines[0] != "cache,set,miss,conflict,evict" {
		t.Fatalf("header %q", lines[0])
	}
}
