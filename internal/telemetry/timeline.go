package telemetry

// Timeline exporters: the window records as CSV (one row per window,
// spreadsheet/pandas-ready) or JSON (schema-stamped), plus the phase
// summary — per-window CPI statistics and the top-k hottest windows by
// decompression share — embedded in reports and rendered in the text
// report.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// WriteTimelineCSV writes one row per window. Columns are stable: the
// fixed counters first, then the CPI-stack components in CycleKind
// order under cpi_<key> headers.
func WriteTimelineCSV(w io.Writer, records []WindowRecord) error {
	var b strings.Builder
	b.WriteString("index,start_instr,end_instr,start_cycle,end_cycle,cycles,instrs,handler_instrs," +
		"imiss_native,imiss_compressed,exceptions,exc_cycles_total,exc_cycles_max," +
		"fetch_stalls,load_stalls,load_use_stalls,bus_reads,bus_bytes")
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		b.WriteString(",cpi_" + k.Key())
	}
	b.WriteByte('\n')
	for _, r := range records {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			r.Index, r.StartInstr, r.EndInstr, r.StartCycle, r.EndCycle,
			r.Cycles, r.Instrs, r.HandlerInstrs,
			r.IMissNative, r.IMissCompressed, r.Exceptions,
			r.ExcCyclesTotal, r.ExcCyclesMax,
			r.FetchStalls, r.LoadStalls, r.LoadUseStalls,
			r.BusReads, r.BusBytes)
		for _, v := range r.CPIStack {
			fmt.Fprintf(&b, ",%d", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// timelineFile is the JSON timeline export shape.
type timelineFile struct {
	SchemaVersion int            `json:"schema_version"`
	WindowSize    uint64         `json:"window_size"`
	Windows       []WindowRecord `json:"windows"`
}

// WriteTimelineJSON writes the windows as a schema-stamped JSON
// document (the ReportSchema version: the timeline shipped with v3).
func WriteTimelineJSON(w io.Writer, size uint64, records []WindowRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if records == nil {
		records = []WindowRecord{}
	}
	return enc.Encode(timelineFile{SchemaVersion: ReportSchema, WindowSize: size, Windows: records})
}

// HotWindow is one entry of the phase summary's hottest-windows ranking.
type HotWindow struct {
	Index       int     `json:"index"`
	StartInstr  uint64  `json:"start_instr"`
	Cycles      uint64  `json:"cycles"`
	Exceptions  uint64  `json:"exceptions"`
	DecompShare float64 `json:"decomp_share"` // (handler + exc_service) / cycles
	CPI         float64 `json:"cpi"`
}

// TimelineSummary is the phase-summary stanza: how the CPI moved across
// the run and which windows paid the most for decompression. Embedded
// in schema-v3 reports when a window sampler was attached.
type TimelineSummary struct {
	WindowSize uint64 `json:"window_size"`
	Windows    int    `json:"windows"`

	// Per-window CPI distribution (cycles per committed instruction,
	// user + handler, so handler-only windows are well-defined).
	CPIMin  float64 `json:"cpi_min"`
	CPIMean float64 `json:"cpi_mean"`
	CPIMax  float64 `json:"cpi_max"`

	// HottestByDecomp ranks windows by decompression share (handler
	// execution + exception service cycles over window cycles),
	// descending; ties break toward the earlier window.
	HottestByDecomp []HotWindow `json:"hottest_by_decomp,omitempty"`
}

// SummarizeTimeline digests the windows into the phase summary, keeping
// the top-k hottest windows by decompression share (only windows that
// did any decompression work rank).
func SummarizeTimeline(size uint64, records []WindowRecord, k int) *TimelineSummary {
	sum := &TimelineSummary{WindowSize: size, Windows: len(records)}
	if len(records) == 0 {
		return sum
	}
	var totalCycles, totalInstrs uint64
	sum.CPIMin = records[0].CPI()
	for _, r := range records {
		cpi := r.CPI()
		if cpi < sum.CPIMin {
			sum.CPIMin = cpi
		}
		if cpi > sum.CPIMax {
			sum.CPIMax = cpi
		}
		totalCycles += r.Cycles
		totalInstrs += r.Instrs + r.HandlerInstrs
	}
	if totalInstrs > 0 {
		sum.CPIMean = float64(totalCycles) / float64(totalInstrs)
	}
	hot := make([]HotWindow, 0, len(records))
	for _, r := range records {
		if share := r.DecompShare(); share > 0 {
			hot = append(hot, HotWindow{
				Index: r.Index, StartInstr: r.StartInstr, Cycles: r.Cycles,
				Exceptions: r.Exceptions, DecompShare: share, CPI: r.CPI(),
			})
		}
	}
	sort.SliceStable(hot, func(a, b int) bool { return hot[a].DecompShare > hot[b].DecompShare })
	if k > 0 && len(hot) > k {
		hot = hot[:k]
	}
	sum.HottestByDecomp = hot
	return sum
}

// Format renders the summary as an aligned text block for the human
// report.
func (s *TimelineSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d windows of %d instructions; CPI min/mean/max %.3f/%.3f/%.3f\n",
		s.Windows, s.WindowSize, s.CPIMin, s.CPIMean, s.CPIMax)
	if len(s.HottestByDecomp) > 0 {
		fmt.Fprintf(&b, "  hottest windows by decompression share:\n")
		for _, h := range s.HottestByDecomp {
			fmt.Fprintf(&b, "    window %4d @instr %-10d %6.2f%% decomp  CPI %6.3f  %d exceptions\n",
				h.Index, h.StartInstr, h.DecompShare*100, h.CPI, h.Exceptions)
		}
	}
	return b.String()
}
