// Package telemetry is the simulator's observability layer: CPI-stack
// cycle accounting (maintained by internal/cpu, reported here), log2
// histograms of exception service and fill latencies, per-cache-set
// heatmaps, and exporters for Chrome trace-event JSON (Perfetto) and
// folded flamegraph stacks. A Collector attaches to a CPU through
// nil-checked hooks, so an unattached simulation pays essentially
// nothing.
package telemetry

import (
	"repro/internal/cpu"
)

// Span is one closed handler-service interval: a decompression
// exception at PC entered at Start and its handler iret'd at End
// (End - Start is the service latency, Stats.ExcCycles* terms).
type Span struct {
	PC    uint32 `json:"pc"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
}

// FillEvent is one non-exception I-cache line fill.
type FillEvent struct {
	PC    uint32       `json:"pc"`
	Cycle uint64       `json:"cycle"`
	Stall uint64       `json:"stall"`
	Kind  cpu.FillKind `json:"kind"`
}

// DefaultMaxEvents bounds the recorded spans and fill events (each
// costs ~24 bytes); past the cap, events are counted but dropped.
const DefaultMaxEvents = 1 << 20

// Collector gathers a run's telemetry. Zero value is not usable; call
// New, then Attach before cpu.Load/Run.
type Collector struct {
	// MaxEvents caps Spans and Fills each (DefaultMaxEvents if unset
	// at Attach time).
	MaxEvents int

	// Histograms.
	ExcLatency  *Histogram // exception service latency, entry to iret
	FillLatency *Histogram // I-miss fill latency (hardware fills + exception service)
	BurstBytes  *Histogram // bus burst lengths, in bytes

	// Per-set cache heatmaps (sized at Attach).
	IC *SetCounters
	DC *SetCounters

	// Event streams for the Chrome trace exporter.
	Spans         []Span
	Fills         []FillEvent
	DroppedEvents uint64

	// Committed instruction counts seen through the trace hook; they
	// must equal Stats.Instrs / Stats.HandlerInstrs (a cross-check that
	// trace multiplexing delivered every commit).
	CommittedUser    uint64
	CommittedHandler uint64

	// Branch events observed through the predictor hook.
	BranchResolved    uint64
	BranchMispredicts uint64

	// Windows, when set before Attach, samples the full CPI stack,
	// miss/exception counts and bus bytes every Windows.Size committed
	// instructions (the timeline behind ccprof -timeline and the
	// Perfetto counter tracks).
	Windows *WindowSampler

	cpu     *cpu.CPU
	openPC  uint32 // pc of the open exception span
	openAt  uint64
	hasOpen bool
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		ExcLatency:  NewHistogram("exception service latency", "cycles"),
		FillLatency: NewHistogram("I-miss fill latency", "cycles"),
		BurstBytes:  NewHistogram("bus burst length", "bytes"),
	}
}

// Attach wires the collector into every layer of the machine: the CPU's
// telemetry sink and commit tracer, both caches' set observers, the
// memory bus hook and the branch predictor hook. Attach composes with
// other tracers (the debugging ring) via cpu.AttachTrace.
func (t *Collector) Attach(c *cpu.CPU) {
	if t.MaxEvents == 0 {
		t.MaxEvents = DefaultMaxEvents
	}
	t.cpu = c
	c.Tel = t
	t.IC = NewSetCounters("I-cache", c.IC.Config().Sets())
	t.DC = NewSetCounters("D-cache", c.DC.Config().Sets())
	c.IC.Obs = t.IC
	c.DC.Obs = t.DC
	c.Mem.OnBurst = func(bytes, cycles int) { t.BurstBytes.Observe(uint64(bytes)) }
	c.BP.OnResolve = func(pc uint32, taken, correct bool) {
		t.BranchResolved++
		if !correct {
			t.BranchMispredicts++
		}
	}
	// One tracer serves both the commit counters and the window sampler:
	// fusing them keeps the hot path at a single indirect call per
	// commit instead of an AttachTrace-composed chain.
	if ws := t.Windows; ws != nil {
		ws.Bind(c)
		c.AttachTrace(func(pc, instr uint32, handler bool) {
			if handler {
				t.CommittedHandler++
			} else {
				t.CommittedUser++
			}
			ws.Tick()
		})
	} else {
		c.AttachTrace(func(pc, instr uint32, handler bool) {
			if handler {
				t.CommittedHandler++
			} else {
				t.CommittedUser++
			}
		})
	}
}

// CPU returns the machine the collector is attached to (nil before
// Attach).
func (t *Collector) CPU() *cpu.CPU { return t.cpu }

// ExcEnter implements cpu.TelemetrySink.
func (t *Collector) ExcEnter(pc uint32, cycle uint64) {
	t.openPC, t.openAt, t.hasOpen = pc, cycle, true
}

// ExcReturn implements cpu.TelemetrySink.
func (t *Collector) ExcReturn(epc uint32, cycle uint64, latency uint64) {
	t.ExcLatency.Observe(latency)
	t.FillLatency.Observe(latency)
	pc := epc
	start := cycle - latency
	if t.hasOpen {
		pc, start = t.openPC, t.openAt
		t.hasOpen = false
	}
	if len(t.Spans) < t.MaxEvents {
		t.Spans = append(t.Spans, Span{PC: pc, Start: start, End: cycle})
	} else {
		t.DroppedEvents++
	}
}

// IFill implements cpu.TelemetrySink.
func (t *Collector) IFill(pc uint32, cycle uint64, stall uint64, kind cpu.FillKind) {
	t.FillLatency.Observe(stall)
	if len(t.Fills) < t.MaxEvents {
		t.Fills = append(t.Fills, FillEvent{PC: pc, Cycle: cycle, Stall: stall, Kind: kind})
	} else {
		t.DroppedEvents++
	}
}
