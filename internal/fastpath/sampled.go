package fastpath

// SMARTS-style sampled simulation (Wunderlich et al., ISCA 2003,
// adapted): the run alternates short detailed measurement windows with
// long functional fast-forward intervals. Two properties tailor the
// scheme to decompression workloads, whose cost is concentrated in
// rare, individually expensive handler bursts that uniform sampling
// misses:
//
//  1. Functional warming (cpu.Config.FunctionalWarm): the fast-forward
//     engine drives the caches and branch predictor exactly as the
//     detailed engine would, so every measured window starts from the
//     precise timing state of a pure detailed run — no cold-start bias
//     and no warmup bleed.
//
//  2. Stratified burst accounting: every decompression event — the
//     exception entry, the whole handler activation, or the hardware
//     fill — executes on the detailed engine and is charged exactly,
//     even when it strikes during a fast-forward interval
//     (cpu.RunFunctionalSampled stops before the event and hands it to
//     cpu.RunDetailedBurst). Measured windows therefore estimate only
//     the steady-state user CPI, which is low-variance; the estimate is
//
//         cycles ≈ exact detailed cycles + steadyCPI × fast-forwarded instructions
//
//     so the rare-event stratum contributes no sampling error at all.
//
// The confidence interval comes from the spread of per-window steady
// CPI values under a t distribution, propagated through the estimator
// (the exact stratum has zero variance). Sampling is systematic and the
// engines are deterministic, so a sampled run is bit-reproducible: same
// program, same SampleConfig, same estimate.

import (
	"fmt"
	"math"

	"repro/internal/cpu"
)

// SampleConfig parameterises the sampled driver. All counts are user
// (non-handler) instructions; each period additionally extends to the
// next handler exit so an engine switch never splits a decompression.
type SampleConfig struct {
	// Window is the measured detailed period length.
	Window uint64
	// Interval is the functional fast-forward length between windows.
	Interval uint64
	// Warmup is the unmeasured detailed period before each window,
	// absorbing the cold caches and predictor the fast-forward left.
	Warmup uint64
}

// DefaultSampleConfig returns the tuned defaults: ~14% of user
// instructions run detailed, all of it measured — functional warming
// makes a separate warmup period redundant, so it defaults to zero.
// This holds sampled CPI within 1% of exact on the full ccbench
// registry (TestSampledRegistryAccuracy, and the ccbench sampled gate
// in CI, enforce the bound).
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{Window: 500, Interval: 3000, Warmup: 0}
}

// normalize fills zero fields from the defaults.
func (cfg SampleConfig) normalize() SampleConfig {
	def := DefaultSampleConfig()
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.Interval == 0 {
		cfg.Interval = def.Interval
	}
	return cfg
}

// SampleResult reports a sampled run.
type SampleResult struct {
	ExitCode int32 `json:"exit_code"`

	Windows        int    `json:"windows"`         // measured windows (incl. a final partial one)
	MeasuredInstrs uint64 `json:"measured_instrs"` // user instructions inside measured windows
	MeasuredCycles uint64 `json:"measured_cycles"`

	// Measured accumulates the full cpu.Stats deltas of the measured
	// windows (the //cccheck:stats(sum) merge site guarantees every
	// counter is carried).
	Measured cpu.Stats `json:"measured"`

	// SteadyCPI is the sampled estimate of the steady-state user CPI:
	// the ratio estimator over measured-window cycles and instructions
	// with decompression bursts excluded from both numerator and
	// denominator.
	SteadyCPI    float64 `json:"steady_cpi"`
	SteadyInstrs uint64  `json:"steady_instrs"` // window instructions outside bursts
	SteadyCycles uint64  `json:"steady_cycles"` // window cycles outside bursts

	// ExactCycles is every cycle the detailed engine charged — measured
	// windows, warmups, and all decompression bursts, including those
	// struck during fast-forward intervals. This stratum carries no
	// sampling error.
	ExactCycles uint64 `json:"exact_cycles"`
	Bursts      int    `json:"bursts"` // decompression events serviced during fast-forward

	// CPI is the stratified estimate
	// (ExactCycles + SteadyCPI×FunctInstrs) / TotalInstrs, with the 95%
	// confidence bounds from the per-window steady-CPI spread propagated
	// through (the exact stratum contributes no variance).
	CPI        float64 `json:"cpi"`
	CPILow     float64 `json:"cpi_low"`
	CPIHigh    float64 `json:"cpi_high"`
	Confidence float64 `json:"confidence"`

	TotalInstrs    uint64 `json:"total_instrs"`    // user instructions, both engines
	DetailedInstrs uint64 `json:"detailed_instrs"` // user instructions run detailed (incl. warmup and bursts)
	FunctInstrs    uint64 `json:"funct_instrs"`    // user instructions fast-forwarded
	EstCycles      uint64 `json:"est_cycles"`      // CPI × TotalInstrs
}

// Sampled runs the loaded machine to completion under the sampling
// schedule and returns the CPI estimate. The machine must be freshly
// loaded (or checkpoint-restored); its Out/Prof/Trace attachments see
// only the detailed periods' events, so attach none for pure sampling.
func Sampled(c *cpu.CPU, cfg SampleConfig) (*SampleResult, error) {
	cfg = cfg.normalize()
	// Functional warming keeps caches and predictor evolving through the
	// fast-forward intervals, so each measured window starts from the
	// exact timing state a pure detailed run would have — the property
	// that lets short windows estimate CPI without cold-start bias.
	prevWarm := c.Cfg.FunctionalWarm
	c.Cfg.FunctionalWarm = true
	defer func() { c.Cfg.FunctionalWarm = prevWarm }()
	res := &SampleResult{Confidence: 0.95}
	var wcpi []float64
	halted := false
	for !halted {
		// Measured detailed window; bursts inside it are split out of the
		// steady measure (they still charge cpu.Stats exactly).
		pre := c.Stats
		var bc, bi uint64
		var err error
		halted, err = c.RunDetailedWindow(cfg.Window, &bc, &bi)
		if err != nil {
			return nil, err
		}
		d := statsDelta(pre, c.Stats)
		if d.Instrs > 0 {
			mergeStats(&res.Measured, d)
			res.Windows++
			if si := d.Instrs - bi; si > 0 {
				res.SteadyInstrs += si
				res.SteadyCycles += d.Cycles - bc
				wcpi = append(wcpi, float64(d.Cycles-bc)/float64(si))
			}
		}
		if halted {
			break
		}
		// Functional fast-forward. Decompression events stop the
		// fast-forward before any state changes and run on the detailed
		// engine, so the rare-event stratum is charged exactly.
		left := cfg.Interval
		for !halted && left > 0 {
			preFunct := c.FStats.Instrs
			var pending bool
			halted, pending, err = c.RunFunctionalSampled(left)
			if err != nil {
				return nil, err
			}
			left -= min(left, c.FStats.Instrs-preFunct)
			if pending {
				res.Bursts++
				halted, err = c.RunDetailedBurst()
				if err != nil {
					return nil, err
				}
			}
		}
		if halted {
			break
		}
		// Unmeasured detailed warmup. With functional warming on, the
		// fast-forward leaves the exact detailed timing state, so the
		// default warmup is zero; a nonzero value remains available for
		// sensitivity studies.
		if cfg.Warmup > 0 {
			halted, err = c.RunDetailedFor(cfg.Warmup)
			if err != nil {
				return nil, err
			}
		}
	}
	// The detailed engine's cycle-attribution invariant must hold over
	// the union of all detailed periods.
	if err := c.Stats.CPIStack.Check(c.Stats.Cycles); err != nil {
		return nil, fmt.Errorf("fastpath: %v", err)
	}
	_, code := c.Halted()
	res.ExitCode = code
	res.MeasuredInstrs = res.Measured.Instrs
	res.MeasuredCycles = res.Measured.Cycles
	res.ExactCycles = c.Stats.Cycles
	res.DetailedInstrs = c.Stats.Instrs
	res.FunctInstrs = c.FStats.Instrs
	res.TotalInstrs = c.Stats.Instrs + c.FStats.Instrs
	if res.SteadyInstrs > 0 {
		res.SteadyCPI = float64(res.SteadyCycles) / float64(res.SteadyInstrs)
	}
	lo, hi := confidenceInterval(res.SteadyCPI, wcpi)
	if res.TotalInstrs > 0 {
		u := float64(res.TotalInstrs)
		fi := float64(res.FunctInstrs)
		exact := float64(res.ExactCycles)
		res.CPI = (exact + res.SteadyCPI*fi) / u
		res.CPILow = (exact + lo*fi) / u
		res.CPIHigh = (exact + hi*fi) / u
	}
	res.EstCycles = uint64(res.CPI*float64(res.TotalInstrs) + 0.5)
	return res, nil
}

// statsDelta returns the per-field difference b−a of two cumulative
// Stats snapshots (the measured window's contribution). ExcCyclesMax is
// a running maximum, not a sum: the delta carries the cumulative
// maximum as of the window end, and mergeStats max-merges it.
//
//cccheck:stats(sum)
func statsDelta(a, b cpu.Stats) cpu.Stats {
	var d cpu.Stats
	d.Cycles = b.Cycles - a.Cycles
	d.Instrs = b.Instrs - a.Instrs
	d.HandlerInstrs = b.HandlerInstrs - a.HandlerInstrs
	d.IMissNative = b.IMissNative - a.IMissNative
	d.IMissCompressed = b.IMissCompressed - a.IMissCompressed
	d.Exceptions = b.Exceptions - a.Exceptions
	d.LoadStalls = b.LoadStalls - a.LoadStalls
	d.FetchStalls = b.FetchStalls - a.FetchStalls
	d.LoadUseStalls = b.LoadUseStalls - a.LoadUseStalls
	d.ExcCyclesTotal = b.ExcCyclesTotal - a.ExcCyclesTotal
	d.ExcCyclesMax = b.ExcCyclesMax
	for i := range d.CPIStack {
		d.CPIStack[i] = b.CPIStack[i] - a.CPIStack[i]
	}
	return d
}

// mergeStats accumulates a window delta into the sampled run's measured
// totals. statscomplete proves both this and statsDelta touch every
// cpu.Stats field, so a newly added counter cannot silently escape the
// sampled axis.
//
//cccheck:stats(sum)
func mergeStats(acc *cpu.Stats, d cpu.Stats) {
	acc.Cycles += d.Cycles
	acc.Instrs += d.Instrs
	acc.HandlerInstrs += d.HandlerInstrs
	acc.IMissNative += d.IMissNative
	acc.IMissCompressed += d.IMissCompressed
	acc.Exceptions += d.Exceptions
	acc.LoadStalls += d.LoadStalls
	acc.FetchStalls += d.FetchStalls
	acc.LoadUseStalls += d.LoadUseStalls
	acc.ExcCyclesTotal += d.ExcCyclesTotal
	if d.ExcCyclesMax > acc.ExcCyclesMax {
		acc.ExcCyclesMax = d.ExcCyclesMax
	}
	for i := range acc.CPIStack {
		acc.CPIStack[i] += d.CPIStack[i]
	}
}

// tTable holds two-sided 95% t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation (1.96) is used.
var tTable = [31]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= 30 {
		return tTable[df]
	}
	return 1.96
}

// confidenceInterval bounds the CPI point estimate using the spread of
// per-window CPI values: point ± t(n−1)·s/√n. With fewer than two
// windows the interval collapses to the point.
func confidenceInterval(point float64, wcpi []float64) (lo, hi float64) {
	n := len(wcpi)
	if n < 2 {
		return point, point
	}
	var mean float64
	for _, v := range wcpi {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range wcpi {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	hw := tCritical(n-1) * sd / math.Sqrt(float64(n))
	return point - hw, point + hw
}
