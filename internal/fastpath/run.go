package fastpath

import "repro/internal/cpu"

// Functional runs the loaded machine to completion entirely on the
// functional engine, regardless of Config.Functional. Work lands in
// c.FStats; c.Stats stays zero (no cycles are ever charged).
func Functional(c *cpu.CPU) (int32, error) {
	prev := c.Cfg.Functional
	c.Cfg.Functional = true
	defer func() { c.Cfg.Functional = prev }()
	return c.Run()
}
