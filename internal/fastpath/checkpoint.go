// Package fastpath is the simulator's fast tier: full-machine-state
// checkpoints, whole-run functional execution, and SMARTS-style sampled
// simulation that alternates the functional and detailed engines to
// estimate CPI with confidence intervals at a fraction of the detailed
// host cost.
//
// The package composes state the core packages own: cpu.MachineState,
// mem.State, cache.State and bpred.State each capture one layer, and a
// Checkpoint binds them together under a schema-versioned, checksummed
// on-disk envelope carrying an obs.Manifest provenance stanza.
package fastpath

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/obs"
)

// CheckpointSchema is the on-disk checkpoint format version. Bump it on
// any incompatible change and record the change in docs/performance.md
// (checkpoint format changelog).
const CheckpointSchema = 1

// Checkpoint is a complete simulated-machine state: configuration,
// core (registers, HI/LO, CP0, statistics, functional code store),
// memory image, both caches (including swic-written I-cache lines) and
// the branch predictor. Applying it reproduces the source machine
// bit-identically: a resumed run retires the same instructions and
// charges the same cycles as the uninterrupted one.
type Checkpoint struct {
	SchemaVersion int `json:"schema_version"`
	// Manifest is the timing-free provenance stanza of the run that
	// captured the checkpoint (tool, arguments, inputs, code version).
	Manifest *obs.Manifest    `json:"manifest,omitempty"`
	Config   cpu.Config       `json:"config"`
	Machine  cpu.MachineState `json:"machine"`
	Memory   mem.State        `json:"memory"`
	ICache   cache.State      `json:"icache"`
	DCache   cache.State      `json:"dcache"`
	Bpred    bpred.State      `json:"bpred"`
}

// Capture snapshots the machine. man, when non-nil, contributes its
// timing-free provenance stanza; the CPU keeps running unaffected (all
// snapshots are deep copies).
func Capture(c *cpu.CPU, man *obs.Manifest) *Checkpoint {
	ck := &Checkpoint{
		SchemaVersion: CheckpointSchema,
		Config:        c.Cfg,
		Machine:       c.CaptureState(),
		Memory:        c.Mem.Snapshot(),
		ICache:        c.IC.Snapshot(),
		DCache:        c.DC.Snapshot(),
		Bpred:         c.BP.Snapshot(),
	}
	if man != nil {
		ck.Manifest = man.Provenance()
	}
	return ck
}

// Apply builds a fresh CPU in exactly the checkpointed state. No image
// load is needed (or possible): memory, caches, predictor and core
// state all come from the checkpoint; derived caches (predecode, the
// functional decode caches) are rebuilt.
func (ck *Checkpoint) Apply() (*cpu.CPU, error) {
	if ck.SchemaVersion != CheckpointSchema {
		return nil, fmt.Errorf("fastpath: checkpoint schema v%d, this build supports v%d",
			ck.SchemaVersion, CheckpointSchema)
	}
	c, err := cpu.New(ck.Config)
	if err != nil {
		return nil, fmt.Errorf("fastpath: checkpoint config: %v", err)
	}
	if err := c.Mem.Restore(ck.Memory); err != nil {
		return nil, fmt.Errorf("fastpath: %v", err)
	}
	if err := c.IC.Restore(ck.ICache); err != nil {
		return nil, fmt.Errorf("fastpath: I-cache: %v", err)
	}
	if err := c.DC.Restore(ck.DCache); err != nil {
		return nil, fmt.Errorf("fastpath: D-cache: %v", err)
	}
	if err := c.BP.Restore(ck.Bpred); err != nil {
		return nil, fmt.Errorf("fastpath: %v", err)
	}
	// After memory: RestoreState re-predecodes handler RAM from it.
	c.RestoreState(ck.Machine)
	return c, nil
}

// envelope is the on-disk frame around the checkpoint payload: the
// schema version is readable without parsing the (large) payload, and
// the digest refuses corrupt or truncated files before any state is
// deserialised.
type envelope struct {
	SchemaVersion int             `json:"schema_version"`
	SHA256        string          `json:"sha256"`
	Checkpoint    json.RawMessage `json:"checkpoint"`
}

// Save writes the checkpoint to path: a JSON envelope holding the
// schema version, the SHA-256 of the payload bytes, and the payload.
// The encoding is deterministic (no map-ordered fields), so identical
// machine states produce identical files.
func (ck *Checkpoint) Save(path string) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("fastpath: encode checkpoint: %v", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		SchemaVersion: ck.SchemaVersion,
		SHA256:        hex.EncodeToString(sum[:]),
		Checkpoint:    payload,
	})
	if err != nil {
		return fmt.Errorf("fastpath: encode envelope: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("fastpath: %v", err)
	}
	return nil
}

// Load reads a checkpoint from path, refusing unparseable files,
// schema mismatches (the error names both versions) and payloads whose
// digest does not match (corruption or truncation).
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fastpath: %v", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("fastpath: %s: not a checkpoint file: %v", path, err)
	}
	if env.SchemaVersion != CheckpointSchema {
		return nil, fmt.Errorf("fastpath: %s: checkpoint schema v%d, this build supports v%d",
			path, env.SchemaVersion, CheckpointSchema)
	}
	sum := sha256.Sum256(env.Checkpoint)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("fastpath: %s: payload digest mismatch (file corrupt or truncated)", path)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Checkpoint, &ck); err != nil {
		return nil, fmt.Errorf("fastpath: %s: decode checkpoint: %v", path, err)
	}
	if ck.SchemaVersion != CheckpointSchema {
		return nil, fmt.Errorf("fastpath: %s: checkpoint schema v%d, this build supports v%d",
			path, ck.SchemaVersion, CheckpointSchema)
	}
	return &ck, nil
}
