package fastpath_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	rtd "repro"
	"repro/internal/cpu"
	"repro/internal/fastpath"
	"repro/internal/obs"
)

// loadCompressed assembles a corpus program and compresses it with the
// paper's dictionary scheme — the state-richest configuration: handler
// RAM, swic-filled I-cache lines, shadow state, exception counters.
func loadCompressed(t *testing.T, name string, opts rtd.Options) *rtd.Image {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	im, err := rtd.Assemble(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scheme == "" {
		return im
	}
	res, err := rtd.Compress(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Image
}

func newMachine(t *testing.T, im *rtd.Image) (*cpu.CPU, *bytes.Buffer) {
	t.Helper()
	cfg := rtd.DefaultMachine()
	cfg.MaxInstr = 100_000_000
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	return c, &out
}

// finish runs c to completion and returns its exit code.
func finish(t *testing.T, c *cpu.CPU) int32 {
	t.Helper()
	code, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code
}

// roundTrip checkpoints c through the on-disk format and returns the
// resumed machine, verifying the file round-trips bit-identically.
func roundTrip(t *testing.T, c *cpu.CPU) (*cpu.CPU, *bytes.Buffer) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := fastpath.Capture(c, nil)
	if err := ck.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := fastpath.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatal("checkpoint did not round-trip through disk bit-identically")
	}
	resumed, err := got.Apply()
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	var out bytes.Buffer
	resumed.Out = &out
	return resumed, &out
}

// compareFinal asserts two finished machines are architecturally and
// statistically identical: a resumed run must retire the same
// instructions and charge the same cycles as the uninterrupted one.
func compareFinal(t *testing.T, ref, got *cpu.CPU) {
	t.Helper()
	if ref.Stats != got.Stats {
		t.Errorf("stats diverge:\nreference %+v\nresumed   %+v", ref.Stats, got.Stats)
	}
	if ref.FStats != got.FStats {
		t.Errorf("functional stats diverge: reference %+v, resumed %+v", ref.FStats, got.FStats)
	}
	a, b := ref.CaptureState(), got.CaptureState()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("machine state diverges:\nreference %+v\nresumed   %+v", a, b)
	}
	if !reflect.DeepEqual(ref.Mem.Snapshot(), got.Mem.Snapshot()) {
		t.Error("memory diverges after resume")
	}
	if !reflect.DeepEqual(ref.IC.Snapshot(), got.IC.Snapshot()) {
		t.Error("I-cache diverges after resume")
	}
	if !reflect.DeepEqual(ref.DC.Snapshot(), got.DC.Snapshot()) {
		t.Error("D-cache diverges after resume")
	}
	if !reflect.DeepEqual(ref.BP.Snapshot(), got.BP.Snapshot()) {
		t.Error("branch predictor diverges after resume")
	}
}

// TestCheckpointRoundTripBoundaries checkpoints after exactly N detailed
// steps — including the N=1 boundary — and requires the resumed run to
// finish bit-identically to an uninterrupted reference, output included.
func TestCheckpointRoundTripBoundaries(t *testing.T) {
	im := loadCompressed(t, "queens.s", rtd.Options{Scheme: rtd.SchemeDict})
	ref, refOut := newMachine(t, im)
	refCode := finish(t, ref)

	for _, n := range []int{1, 100, 1000} {
		t.Run(fmt.Sprintf("steps=%d", n), func(t *testing.T) {
			c, preOut := newMachine(t, im)
			for i := 0; i < n; i++ {
				if err := c.Step(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			resumed, postOut := roundTrip(t, c)
			code := finish(t, resumed)
			if code != refCode {
				t.Errorf("exit code %d, reference %d", code, refCode)
			}
			if got := preOut.String() + postOut.String(); got != refOut.String() {
				t.Errorf("output %q, reference %q", got, refOut.String())
			}
			compareFinal(t, ref, resumed)
		})
	}
}

// TestCheckpointMidHandler captures inside an active decompression
// handler burst — the EXL bit set, the shadow bank live, the handler
// partway through a swic sequence — and requires a bit-identical finish.
func TestCheckpointMidHandler(t *testing.T) {
	for _, opts := range []rtd.Options{
		{Scheme: rtd.SchemeDict},
		{Scheme: rtd.SchemeDict, ShadowRF: true},
	} {
		label := "singleRF"
		if opts.ShadowRF {
			label = "shadowRF"
		}
		t.Run(label, func(t *testing.T) {
			im := loadCompressed(t, "sort.s", opts)
			ref, refOut := newMachine(t, im)
			refCode := finish(t, ref)

			c, preOut := newMachine(t, im)
			for !c.InHandler() {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
				if h, _ := c.Halted(); h {
					t.Fatal("program halted before entering the handler")
				}
			}
			// A few instructions deep into the burst, not just the entry.
			for i := 0; i < 10 && c.InHandler(); i++ {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
			}
			st := c.CaptureState()
			if !st.InHandler {
				t.Fatal("lost the handler before capturing; deepen the corpus program")
			}
			resumed, postOut := roundTrip(t, c)
			if !resumed.InHandler() {
				t.Fatal("resumed machine is not in the handler")
			}
			code := finish(t, resumed)
			if code != refCode {
				t.Errorf("exit code %d, reference %d", code, refCode)
			}
			if got := preOut.String() + postOut.String(); got != refOut.String() {
				t.Errorf("output %q, reference %q", got, refOut.String())
			}
			compareFinal(t, ref, resumed)
		})
	}
}

// TestCheckpointMidLoadUse captures with an in-flight load-use hazard
// (LastLoad armed): the pipeline's only cross-instruction timing state
// must survive the round trip or the resumed run charges different
// stall cycles.
func TestCheckpointMidLoadUse(t *testing.T) {
	im := loadCompressed(t, "sort.s", rtd.Options{Scheme: rtd.SchemeDict})
	ref, refOut := newMachine(t, im)
	refCode := finish(t, ref)

	c, preOut := newMachine(t, im)
	found := false
	for i := 0; i < 500; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.CaptureState().LastLoad >= 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no load observed in the first 500 steps; pick a loadier program")
	}
	resumed, postOut := roundTrip(t, c)
	code := finish(t, resumed)
	if code != refCode {
		t.Errorf("exit code %d, reference %d", code, refCode)
	}
	if got := preOut.String() + postOut.String(); got != refOut.String() {
		t.Errorf("output %q, reference %q", got, refOut.String())
	}
	compareFinal(t, ref, resumed)
}

// TestCheckpointMidSample captures in the middle of a sampled run —
// after a functional interval has populated the fstore — and resumes
// with plain detailed execution; the architectural end state must match
// a pure detailed run (timing differs by construction, so only
// architecture is compared).
func TestCheckpointMidSample(t *testing.T) {
	im := loadCompressed(t, "queens.s", rtd.Options{Scheme: rtd.SchemeDict})
	ref, refOut := newMachine(t, im)
	refCode := finish(t, ref)

	c, preOut := newMachine(t, im)
	if halted, err := c.RunDetailedFor(200); err != nil || halted {
		t.Fatalf("detailed window: halted=%v err=%v", halted, err)
	}
	if halted, err := c.RunFunctionalFor(500); err != nil || halted {
		t.Fatalf("functional interval: halted=%v err=%v", halted, err)
	}
	if len(c.FStoreSnapshot()) == 0 {
		t.Fatal("functional interval materialised no code; fstore not exercised")
	}
	resumed, postOut := roundTrip(t, c)
	if !reflect.DeepEqual(c.FStoreSnapshot(), resumed.FStoreSnapshot()) {
		t.Fatal("fstore did not survive the checkpoint")
	}
	code := finish(t, resumed)
	if code != refCode {
		t.Errorf("exit code %d, reference %d", code, refCode)
	}
	if got := preOut.String() + postOut.String(); got != refOut.String() {
		t.Errorf("output %q, reference %q", got, refOut.String())
	}
	for r := 0; r < 32; r++ {
		if r == 26 || r == 27 {
			continue
		}
		if a, b := ref.UserReg(r), resumed.UserReg(r); a != b {
			t.Errorf("$%d: reference %#x, resumed %#x", r, a, b)
		}
	}
}

// TestCheckpointManifestProvenance: a manifest-carrying checkpoint keeps
// the provenance stanza across the disk round trip.
func TestCheckpointManifestProvenance(t *testing.T) {
	im := loadCompressed(t, "sort.s", rtd.Options{Scheme: rtd.SchemeDict})
	c, _ := newMachine(t, im)
	for i := 0; i < 50; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	man := obs.New("fastpath-test")
	ck := fastpath.Capture(c, man)
	if ck.Manifest == nil || ck.Manifest.Tool != "fastpath-test" {
		t.Fatalf("manifest stanza missing or wrong: %+v", ck.Manifest)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := fastpath.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest == nil || got.Manifest.Tool != "fastpath-test" {
		t.Fatalf("manifest lost in round trip: %+v", got.Manifest)
	}
}

// TestCheckpointRefusals: truncated, corrupted and wrong-schema files
// are rejected, never partially applied, and the schema error names
// both versions.
func TestCheckpointRefusals(t *testing.T) {
	im := loadCompressed(t, "sort.s", rtd.Options{Scheme: rtd.SchemeDict})
	c, _ := newMachine(t, im)
	for i := 0; i < 100; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := fastpath.Capture(c, nil).Save(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		path := filepath.Join(dir, "trunc.json")
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fastpath.Load(path); err == nil {
			t.Fatal("truncated checkpoint accepted")
		}
	})

	t.Run("corrupted", func(t *testing.T) {
		// Same-length field rename keeps the JSON well-formed, so only
		// the digest can catch it.
		mangled := bytes.Replace(data, []byte(`"Cycles":`), []byte(`"CycleX":`), 1)
		if bytes.Equal(mangled, data) {
			t.Fatal("corruption had no effect; field name changed?")
		}
		path := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(path, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := fastpath.Load(path)
		if err == nil {
			t.Fatal("corrupted checkpoint accepted")
		}
		if !strings.Contains(err.Error(), "digest mismatch") {
			t.Errorf("want a digest-mismatch error, got: %v", err)
		}
	})

	t.Run("schema-mismatch", func(t *testing.T) {
		path := filepath.Join(dir, "future.json")
		future := []byte(`{"schema_version":99,"sha256":"","checkpoint":{}}`)
		if err := os.WriteFile(path, future, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := fastpath.Load(path)
		if err == nil {
			t.Fatal("future-schema checkpoint accepted")
		}
		if !strings.Contains(err.Error(), "v99") || !strings.Contains(err.Error(), fmt.Sprintf("v%d", fastpath.CheckpointSchema)) {
			t.Errorf("schema error must name both versions, got: %v", err)
		}
	})

	t.Run("apply-schema-mismatch", func(t *testing.T) {
		ck := fastpath.Capture(c, nil)
		ck.SchemaVersion = 2
		_, err := ck.Apply()
		if err == nil {
			t.Fatal("wrong-schema checkpoint applied")
		}
		if !strings.Contains(err.Error(), "v2") || !strings.Contains(err.Error(), "v1") {
			t.Errorf("apply schema error must name both versions, got: %v", err)
		}
	})
}

// TestCheckpointDeterministicEncoding: the same machine state saves to
// byte-identical files (no map-ordered output in the encoder).
func TestCheckpointDeterministicEncoding(t *testing.T) {
	im := loadCompressed(t, "queens.s", rtd.Options{Scheme: rtd.SchemeDict})
	c, _ := newMachine(t, im)
	if _, err := c.RunDetailedFor(200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunFunctionalFor(500); err != nil {
		t.Fatal(err) // populate the fstore: the one map in the state
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	ck := fastpath.Capture(c, nil)
	if err := ck.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("two saves of one state differ; encoding is not deterministic")
	}
}
