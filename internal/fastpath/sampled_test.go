package fastpath_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fastpath"
	"repro/internal/perfwatch"
	"repro/internal/program"
	"repro/internal/selective"
	"repro/internal/synth"
)

// This file is the sampled-simulation accuracy battery:
//
//   - TestWarmFidelity proves functional warming is bit-faithful — a
//     whole-program warm-functional run leaves the I-cache, D-cache,
//     and branch predictor in exactly the state a detailed run leaves,
//     with identical miss/eviction statistics and exception counts.
//     This is the property that lets measured windows start without
//     cold-start bias.
//   - TestSampledRegistryAccuracy holds sampled CPI within 1% of exact
//     on every ccbench registry workload under the default
//     SampleConfig (the same bound the ccbench sampled gate enforces
//     in CI).
//   - TestSampledDeterminism and TestSampledHugeWindowIsExact pin the
//     estimator's two structural guarantees: bit-reproducibility, and
//     exactness in the limit where everything runs detailed.

// buildRegistryImage reconstructs a perfwatch registry workload's
// compressed image at the given synth scale, including the selective
// compression profiling pass when the workload calls for it.
func buildRegistryImage(t *testing.T, w perfwatch.Workload, scale float64) *program.Image {
	t.Helper()
	p, ok := synth.ByName(w.Bench)
	if !ok {
		t.Fatalf("%s: unknown benchmark %q", w.Name, w.Bench)
	}
	im, err := synth.Build(p.Scale(scale))
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	opts := core.Options{Scheme: w.Scheme, ShadowRF: w.ShadowRF}
	if w.SelectFrac > 0 {
		cfg := cpu.DefaultConfig()
		cfg.ICache.SizeBytes = 16 * 1024
		cfg.MaxInstr = 2_000_000_000
		c, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prof := cpu.NewProcProfile(im)
		c.Prof = prof
		var out bytes.Buffer
		c.Out = &out
		if err := c.Load(im); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		opts.NativeProcs = selective.Select(prof, selective.ByMisses, w.SelectFrac)
	}
	if opts.Scheme == "" {
		return im
	}
	res, err := core.Compress(im, opts)
	if err != nil {
		t.Fatalf("%s: compress: %v", w.Name, err)
	}
	return res.Image
}

// newRegistryMachine builds a fresh loaded machine for a registry
// workload's cache size.
func newRegistryMachine(t *testing.T, im *program.Image, cacheKB int, functional bool) *cpu.CPU {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.ICache.SizeBytes = cacheKB * 1024
	cfg.MaxInstr = 2_000_000_000
	cfg.Functional = functional
	cfg.FunctionalWarm = functional
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWarmFidelity runs three registry workloads — chosen to cover the
// LZ scheme's expensive handler, the dictionary scheme under eviction
// churn, and the procedure-dictionary scheme — to completion on both
// the detailed engine and the warming functional engine, and requires
// the final timing state to be bit-identical: same cache contents, same
// cache statistics (misses, evictions, swic fills), same predictor
// table, same exception count.
func TestWarmFidelity(t *testing.T) {
	for _, tc := range []struct {
		bench  string
		scheme program.Scheme
		rf     bool
		kb     int
	}{
		{"pegwit", "lz", true, 4},
		{"go", "dict", false, 16},
		{"mpeg2enc", "procdict", false, 16},
	} {
		p, ok := synth.ByName(tc.bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", tc.bench)
		}
		im, err := synth.Build(p.Scale(0.1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compress(im, core.Options{Scheme: tc.scheme, ShadowRF: tc.rf})
		if err != nil {
			t.Fatal(err)
		}
		d := newRegistryMachine(t, res.Image, tc.kb, false)
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
		f := newRegistryMachine(t, res.Image, tc.kb, true)
		if _, err := f.Run(); err != nil {
			t.Fatal(err)
		}
		name := tc.bench + "/" + string(tc.scheme)
		if d.Stats.Exceptions != f.FStats.Exceptions {
			t.Errorf("%s: exceptions detailed %d, warm-functional %d",
				name, d.Stats.Exceptions, f.FStats.Exceptions)
		}
		if d.Stats.Instrs != f.FStats.Instrs {
			t.Errorf("%s: user instrs detailed %d, warm-functional %d",
				name, d.Stats.Instrs, f.FStats.Instrs)
		}
		ds, fs := d.IC.Snapshot(), f.IC.Snapshot()
		if !reflect.DeepEqual(ds.Sets, fs.Sets) {
			t.Errorf("%s: I-cache content diverges", name)
		}
		if ds.Stats != fs.Stats {
			t.Errorf("%s: I-cache stats detailed %+v, warm-functional %+v",
				name, ds.Stats, fs.Stats)
		}
		dd, fd := d.DC.Snapshot(), f.DC.Snapshot()
		if !reflect.DeepEqual(dd.Sets, fd.Sets) {
			t.Errorf("%s: D-cache content diverges", name)
		}
		if dd.Stats != fd.Stats {
			t.Errorf("%s: D-cache stats detailed %+v, warm-functional %+v",
				name, dd.Stats, fd.Stats)
		}
		db, fb := d.BP.Snapshot(), f.BP.Snapshot()
		if !reflect.DeepEqual(db.Table, fb.Table) {
			t.Errorf("%s: branch-predictor table diverges", name)
		}
	}
}

// TestSampledRegistryAccuracy is the accuracy battery the ISSUE's
// acceptance bound names: on every ccbench registry workload, sampled
// CPI under the default SampleConfig must sit within 1% of the exact
// detailed CPI. The ccbench sampled gate enforces the same bound in CI
// at the benchmark scale; this test pins it at a smaller scale where
// the rare-event structure is even harsher (fewer, relatively more
// expensive decompression bursts).
func TestSampledRegistryAccuracy(t *testing.T) {
	const scale = 0.1
	for _, w := range perfwatch.Registry() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			im := buildRegistryImage(t, w, scale)
			ex := newRegistryMachine(t, im, w.CacheKB, false)
			if _, err := ex.Run(); err != nil {
				t.Fatal(err)
			}
			exact := float64(ex.Stats.Cycles) / float64(ex.Stats.Instrs)

			c := newRegistryMachine(t, im, w.CacheKB, false)
			res, err := fastpath.Sampled(c, fastpath.DefaultSampleConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalInstrs != ex.Stats.Instrs {
				t.Fatalf("user instrs: sampled %d, exact %d", res.TotalInstrs, ex.Stats.Instrs)
			}
			drift := 100 * math.Abs(res.CPI-exact) / exact
			t.Logf("exact %.4f sampled %.4f [%.4f,%.4f] drift %.2f%% (windows %d, bursts %d, detailed %.1f%%)",
				exact, res.CPI, res.CPILow, res.CPIHigh, drift,
				res.Windows, res.Bursts,
				100*float64(res.DetailedInstrs)/float64(res.TotalInstrs))
			if drift > 1.0 {
				t.Errorf("sampled CPI %.4f drifts %.2f%% from exact %.4f (bound 1%%)",
					res.CPI, drift, exact)
			}
			if res.CPILow > res.CPI || res.CPI > res.CPIHigh {
				t.Errorf("confidence interval [%.4f, %.4f] does not contain the point %.4f",
					res.CPILow, res.CPIHigh, res.CPI)
			}
		})
	}
}

// TestSampledDeterminism: the engines are deterministic and the
// sampling schedule is systematic, so two sampled runs of the same
// image under the same config must agree bit-for-bit — the whole
// result struct, not just the point estimate.
func TestSampledDeterminism(t *testing.T) {
	w := perfwatch.Registry()[1] // go/dict: exercises windows, bursts, and fast-forward
	im := buildRegistryImage(t, w, 0.1)
	run := func() *fastpath.SampleResult {
		c := newRegistryMachine(t, im, w.CacheKB, false)
		res, err := fastpath.Sampled(c, fastpath.DefaultSampleConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical sampled runs diverge:\n  %+v\n  %+v", a, b)
	}
}

// TestSampledHugeWindowIsExact: with a window longer than the program,
// everything runs detailed, nothing is extrapolated, and the estimate
// must collapse to the exact CPI — not approximately, exactly.
func TestSampledHugeWindowIsExact(t *testing.T) {
	w := perfwatch.Registry()[1] // go/dict
	im := buildRegistryImage(t, w, 0.1)
	ex := newRegistryMachine(t, im, w.CacheKB, false)
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	c := newRegistryMachine(t, im, w.CacheKB, false)
	res, err := fastpath.Sampled(c, fastpath.SampleConfig{Window: 1 << 40, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FunctInstrs != 0 {
		t.Fatalf("huge window still fast-forwarded %d instrs", res.FunctInstrs)
	}
	if res.Windows != 1 {
		t.Errorf("expected a single window, got %d", res.Windows)
	}
	if res.ExactCycles != ex.Stats.Cycles || res.TotalInstrs != ex.Stats.Instrs {
		t.Fatalf("detailed totals diverge: sampled %d cycles/%d instrs, exact %d/%d",
			res.ExactCycles, res.TotalInstrs, ex.Stats.Cycles, ex.Stats.Instrs)
	}
	exact := float64(ex.Stats.Cycles) / float64(ex.Stats.Instrs)
	if res.CPI != exact {
		t.Errorf("CPI %v != exact %v", res.CPI, exact)
	}
	if res.EstCycles != ex.Stats.Cycles {
		t.Errorf("EstCycles %d != exact cycles %d", res.EstCycles, ex.Stats.Cycles)
	}
}
