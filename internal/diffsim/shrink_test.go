package diffsim

import (
	"testing"

	"repro/internal/synth"
)

// TestShrinkReducesSeededFailure plants a known bug, confirms the full
// random program fails, and requires the shrinker to cut it to at most
// 30 instructions while still failing.
func TestShrinkReducesSeededFailure(t *testing.T) {
	opts := Options{ShadowRF: false, Mutation: MutationByName("dict-index-off-by-one")}
	for _, seed := range []int64{3, 42} {
		p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		f, err := Check(p, opts)
		if err != nil {
			t.Fatalf("seed %d: inconclusive: %v", seed, err)
		}
		if f == nil {
			t.Fatalf("seed %d: injected bug not detected before shrinking", seed)
		}
		before := p.InstrCount()
		shrunk, checks := Shrink(p, opts)
		after := shrunk.InstrCount()
		if after <= 0 {
			t.Fatalf("seed %d: shrunk program does not assemble", seed)
		}
		if after > 30 {
			t.Fatalf("seed %d: shrunk to %d instructions, want <= 30\n%s",
				seed, after, shrunk.Render())
		}
		if after >= before {
			t.Fatalf("seed %d: no reduction (%d -> %d)", seed, before, after)
		}
		// The reduced program must still fail the same way.
		f2, err := Check(shrunk, opts)
		if err != nil || f2 == nil {
			t.Fatalf("seed %d: shrunk program no longer fails (f=%v err=%v)", seed, f2, err)
		}
		t.Logf("seed %d: %d -> %d instructions in %d checks", seed, before, after, checks)
	}
}

// TestShrinkPreservesInput verifies Shrink works on a clone: the caller's
// program is untouched.
func TestShrinkPreservesInput(t *testing.T) {
	opts := Options{ShadowRF: false, Mutation: MutationByName("dict-index-off-by-one")}
	p := synth.GenerateRandom(synth.DefaultRandSpec(42))
	orig := p.Render()
	Shrink(p, opts)
	if p.Render() != orig {
		t.Fatal("Shrink mutated its input program")
	}
}

// TestShrinkBounded: the shrinker must respect its evaluation budget
// even when every candidate still fails (the predicate is maximally
// permissive from the shrinker's perspective).
func TestShrinkBounded(t *testing.T) {
	opts := Options{ShadowRF: false, Mutation: MutationByName("dict-index-off-by-one")}
	p := synth.GenerateRandom(synth.DefaultRandSpec(7))
	_, checks := Shrink(p, opts)
	if checks > maxShrinkChecks {
		t.Fatalf("shrinker spent %d checks, budget is %d", checks, maxShrinkChecks)
	}
}
