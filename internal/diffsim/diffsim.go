// Package diffsim is a differential co-simulation fuzzing harness for
// the compression pipeline. Each case generates a seeded random program
// (internal/synth), builds five images of it — native, dictionary,
// CodePack, selective (a dictionary image with a seed-chosen subset of
// procedures left native), and sliding-window LZ — and runs all five
// through internal/cpu in lockstep (verify.LockstepMulti), asserting:
//
//   - architectural equivalence: every committed user instruction,
//     the full register file (with the verifier's code-address masking),
//     HI/LO, final data memory, syscall output, and exit codes;
//   - oracle invariants: every swic executed by a handler writes exactly
//     the native image's bytes at the target address, every image's
//     cycle count decomposes exactly into its microarchitectural event
//     counts, and the cache/bpred/exception statistics are mutually
//     consistent (e.g. a compressed image's exceptions equal its
//     compressed-region misses, the native image takes none).
//
// On a mismatch the harness delta-debugs the generating program
// (shrink.go) down to a minimal reproducer. Known bugs can be injected
// with Mutation (mutate.go) to prove end-to-end detection power.
package diffsim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// ImageKinds names the five images of every case, in run order.
// Index 0 is the lockstep reference.
var ImageKinds = []string{"native", "dict", "codepack", "selective", "lz"}

// Options configures one differential check.
type Options struct {
	// ShadowRF selects the shadow-register-file handler variants.
	ShadowRF bool
	// MaxSteps bounds committed user instructions per machine
	// (0 = 200000). Exceeding it is an infrastructure skip, not a
	// finding: generated programs always terminate.
	MaxSteps uint64
	// Mutation, when set, injects a known bug into the built images
	// before the run (self-check of the harness's detection power).
	Mutation *Mutation
	// Functional enables the functional-lockstep oracle: every image is
	// additionally replayed on the functional fast-forward engine and
	// its final architectural state must match the detailed run
	// (functional.go).
	Functional bool
	// FunctionalBreak corrupts the functional engine's handler
	// execution (cpu.Config.FunctionalBreak) — the functional oracle's
	// own detection-power self-check. Only meaningful with Functional.
	FunctionalBreak bool
	// ICacheBytes overrides the I-cache size (0 = the default 16 KiB).
	// Corpus entries use a small cache to force swic churn — the same
	// compressed line repeatedly evicted and re-materialised — which
	// generated programs are too small to provoke at the default size.
	ICacheBytes int
}

// Failure describes one confirmed differential finding.
type Failure struct {
	Seed    int64
	Image   string // which image kind misbehaved ("" if cross-cutting)
	Reason  string
	Program *synth.RandProgram
}

func (f *Failure) Error() string {
	return fmt.Sprintf("diffsim: seed %d: image %s: %s", f.Seed, f.Image, f.Reason)
}

const defaultMaxSteps = 200_000

// oracleWindowSize is the (deliberately small) telemetry window used by
// the per-machine window samplers, so most fuzz cases exercise several
// rollovers including mid-handler ones.
const oracleWindowSize = 512

// BuildImages assembles the program and produces the five image
// variants. The selective image leaves a deterministic, seed-dependent
// subset of procedures native (never main, so something is always
// compressed).
func BuildImages(p *synth.RandProgram, opts Options) ([]*program.Image, error) {
	native, err := p.Build()
	if err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	images := []*program.Image{native}
	for _, o := range []core.Options{
		{Scheme: program.SchemeDict, ShadowRF: opts.ShadowRF},
		{Scheme: program.SchemeCodePack, ShadowRF: opts.ShadowRF},
		{Scheme: program.SchemeDict, ShadowRF: opts.ShadowRF,
			NativeProcs: selectNative(native, p.Spec.Seed)},
		{Scheme: program.Scheme("lz"), ShadowRF: opts.ShadowRF},
	} {
		res, err := core.Compress(native, o)
		if err != nil {
			return nil, fmt.Errorf("compress %s: %w", o.Scheme, err)
		}
		images = append(images, res.Image)
	}
	return images, nil
}

// selectNative picks roughly a third of the procedures (never main) to
// stay native, deterministically in the seed and stable under shrinking:
// whether a procedure is selected depends only on its own name and the
// seed, not on which other procedures still exist.
func selectNative(im *program.Image, seed int64) map[string]bool {
	sel := make(map[string]bool)
	for _, pr := range im.Procs {
		if pr.Name == "main" {
			continue
		}
		h := uint64(seed) * 0x9E3779B97F4A7C15
		for _, b := range []byte(pr.Name) {
			h = (h ^ uint64(b)) * 0x100000001B3
		}
		if h%3 == 0 {
			sel[pr.Name] = true
		}
	}
	return sel
}

// Check runs one differential case. It returns:
//
//	(nil, nil)      — the five images are equivalent and all oracles hold;
//	(failure, nil)  — a confirmed finding;
//	(nil, err)      — infrastructure problem (build failed, the native
//	                  reference faulted, or the step budget ran out):
//	                  the case is inconclusive and should be skipped.
func Check(p *synth.RandProgram, opts Options) (*Failure, error) {
	images, err := BuildImages(p, opts)
	if err != nil {
		return nil, err
	}
	if opts.Mutation != nil {
		if err := opts.Mutation.Apply(images, opts); err != nil {
			return nil, fmt.Errorf("mutation %s: %w", opts.Mutation.Name, err)
		}
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	cfg := cpu.DefaultConfig()
	// Every fuzz case also audits the predecoded-dispatch cache: each
	// fetched entry is re-decoded from the backing I-cache word and any
	// mismatch (a stale entry surviving a swic overwrite) fails the run.
	cfg.PredecodeCheck = true
	if opts.ICacheBytes > 0 {
		cfg.ICache.SizeBytes = opts.ICacheBytes
	}
	orc := newOracle(images)
	// Each machine also carries a telemetry window sampler with a small
	// window, so every fuzz case additionally proves the windowed-
	// telemetry sum invariant (component-wise window sums == whole-run
	// stats) on all five image kinds — and a spatial-attribution
	// recorder, proving the per-line/per-procedure sum invariant on the
	// same runs (the "where" axis of the same decomposition).
	samplers := make([]*telemetry.WindowSampler, len(images))
	recorders := make([]*profile.Recorder, len(images))
	results, runErr := verify.LockstepMulti(images, verify.MultiConfig{
		CPU:      cfg,
		MaxSteps: maxSteps,
		OnCommit: orc.onCommit,
		Attach: func(img int, c *cpu.CPU) {
			s := telemetry.NewWindowSampler(oracleWindowSize)
			s.Attach(c)
			samplers[img] = s
			r := profile.NewRecorder(images[img])
			r.Attach(c)
			recorders[img] = r
		},
	})
	fail := func(img int, reason string) (*Failure, error) {
		kind := ""
		if img >= 0 && img < len(ImageKinds) {
			kind = ImageKinds[img]
		}
		return &Failure{Seed: p.Spec.Seed, Image: kind, Reason: reason, Program: p}, nil
	}
	// The swic-content oracle fires during the run and is the most
	// precise signal: report it first even if the run also diverged.
	if orc.err != nil {
		return fail(orc.errImg, orc.err.Error())
	}
	if runErr != nil {
		switch e := runErr.(type) {
		case *verify.MultiDivergence:
			return fail(e.Img, runErr.Error())
		case *verify.MachineError:
			if e.Img == 0 {
				return nil, fmt.Errorf("reference machine faulted: %w", runErr)
			}
			return fail(e.Img, runErr.Error())
		default:
			if strings.Contains(runErr.Error(), "budget") {
				return nil, fmt.Errorf("inconclusive: %w", runErr)
			}
			return nil, runErr
		}
	}
	if reason, img := orc.checkFinal(results, cfg); reason != "" {
		return fail(img, reason)
	}
	if reason, img := checkWindows(samplers); reason != "" {
		return fail(img, reason)
	}
	if reason, img := checkProfiles(recorders); reason != "" {
		return fail(img, reason)
	}
	if opts.Functional {
		if reason, img := checkFunctional(images, results, opts); reason != "" {
			return fail(img, reason)
		}
	}
	return nil, nil
}
