package diffsim

// Oracles beyond lockstep equivalence. Two run during the simulation
// via the OnCommit hook:
//
//   - swic content: every word a handler stores into the I-cache must be
//     exactly the native (golden) text byte at that address — the
//     decompressor may not materialise anything the compiler didn't emit;
//   - event counting: jr/jalr, iret, swic and user-branch commits are
//     tallied per image for the post-run cycle decomposition.
//
// The rest run after a clean lockstep over the final machine states:
// exact cycle accounting, cache/bpred/exception self-consistency, and
// data-memory equality.

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// checkWindows runs each machine's window-sampler sum invariant: the
// component-wise sum of all window records must reproduce the whole-run
// statistics exactly. Runs after a clean checkFinal; a violation is a
// telemetry finding attributed to the offending image.
func checkWindows(samplers []*telemetry.WindowSampler) (string, int) {
	for i, s := range samplers {
		if s == nil {
			continue
		}
		if err := s.Verify(); err != nil {
			return fmt.Sprintf("window telemetry: %v", err), i
		}
	}
	return "", 0
}

// checkProfiles runs each machine's spatial-attribution sum invariant:
// every cpu.Stats component, summed over the per-line (and, separately,
// per-procedure) attribution buckets, must reproduce the whole-run
// statistics exactly. With checkWindows this closes both axes of the
// decomposition — "when" and "where" — on every fuzz case.
func checkProfiles(recorders []*profile.Recorder) (string, int) {
	for i, r := range recorders {
		if r == nil {
			continue
		}
		if err := r.Verify(); err != nil {
			return fmt.Sprintf("attribution: %v", err), i
		}
	}
	return "", 0
}

type opCounts struct {
	jr           uint64 // jr + jalr (any mode)
	iret         uint64
	swic         uint64
	userBranches uint64 // conditional branches committed outside the handler
}

type oracle struct {
	images []*program.Image
	golden []*program.Segment // .text of each image (nil if absent)
	counts []opCounts
	err    error
	errImg int
}

func newOracle(images []*program.Image) *oracle {
	o := &oracle{images: images, counts: make([]opCounts, len(images)), errImg: -1}
	for _, im := range images {
		o.golden = append(o.golden, im.Segment(program.SegText))
	}
	return o
}

func (o *oracle) onCommit(img int, c *cpu.CPU, pc, instr uint32, handler bool) {
	n := &o.counts[img]
	switch isa.Op(instr) {
	case isa.OpSpecial:
		switch isa.Funct(instr) {
		case isa.FnJR, isa.FnJALR:
			n.jr++
		}
	case isa.OpCOP0:
		if isa.Rs(instr) == isa.CopCO && isa.Funct(instr) == isa.FnIRET {
			n.iret++
		}
	case isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ, isa.OpRegImm:
		if !handler {
			n.userBranches++
		}
	case isa.OpSWIC:
		n.swic++
		o.checkSwic(img, c, pc, instr, handler)
	}
}

// checkSwic validates one handler store into the I-cache against the
// golden text.
func (o *oracle) checkSwic(img int, c *cpu.CPU, pc, instr uint32, handler bool) {
	if o.err != nil {
		return
	}
	fail := func(format string, args ...interface{}) {
		o.err = fmt.Errorf("swic oracle: image %d: pc %#x: %s", img, pc, fmt.Sprintf(format, args...))
		o.errImg = img
	}
	if !handler {
		fail("swic executed outside the handler")
		return
	}
	addr := c.Reg(isa.Rs(instr)) + uint32(isa.SImm(instr))
	got := c.Reg(isa.Rt(instr))
	g := o.golden[img]
	if g == nil || !g.Contains(addr) {
		fail("swic to %#x outside the golden text", addr)
		return
	}
	if want := g.Word(addr); got != want {
		fail("swic wrote %08x to %#x, golden text has %08x (%s)",
			got, addr, want, isa.Disassemble(addr, want))
	}
}

// checkFinal validates the statistics and final state of a clean run.
// It returns a failure reason and the offending image index (-1 for a
// cross-image property), or ("", 0) when every invariant holds.
// This function is the cycle-accounting sum invariant: statscomplete
// proves it touches every cpu.Stats counter, so a new counter must be
// wired into an oracle check before cccheck passes again.
//
//cccheck:stats(sum)
func (o *oracle) checkFinal(results []*verify.MultiResult, cfg cpu.Config) (string, int) {
	ref := results[0]
	for i, r := range results {
		s := r.CPU.Stats
		// Exact cycle decomposition: every cycle the simulator charged
		// must be attributable to a counted event. Any drift means the
		// timing model and the statistics disagree.
		want := s.Instrs + s.HandlerInstrs +
			s.FetchStalls + s.LoadStalls +
			s.LoadUseStalls*uint64(cfg.LoadUsePenalty) +
			o.counts[i].jr*uint64(cfg.JRPenalty) +
			r.CPU.BP.Mispredicts*uint64(cfg.MispredictPenalty) +
			o.counts[i].iret*uint64(cfg.IretCycles) +
			o.counts[i].swic*uint64(cfg.SwicExtraCycles) +
			s.Exceptions*uint64(cfg.ExceptionEntry)
		if s.Cycles != want {
			return fmt.Sprintf("cycle accounting: %d cycles but events sum to %d (diff %+d)",
				s.Cycles, want, int64(s.Cycles)-int64(want)), i
		}
		// The telemetry CPI stack must agree with the same total.
		if err := s.CPIStack.Check(s.Cycles); err != nil {
			return err.Error(), i
		}
		// Exception-latency self-consistency: the latency accumulators
		// must agree with the exception count — no exceptions means no
		// service time, and the maximum single service can neither
		// exceed the total nor be absent while a total is recorded.
		if s.Exceptions == 0 && (s.ExcCyclesTotal != 0 || s.ExcCyclesMax != 0) {
			return fmt.Sprintf("no exceptions but exc latency total %d / max %d recorded",
				s.ExcCyclesTotal, s.ExcCyclesMax), i
		}
		if s.ExcCyclesMax > s.ExcCyclesTotal {
			return fmt.Sprintf("exc latency max %d exceeds total %d",
				s.ExcCyclesMax, s.ExcCyclesTotal), i
		}
		if s.Exceptions > 0 && s.ExcCyclesTotal > s.Exceptions*s.ExcCyclesMax {
			return fmt.Sprintf("exc latency total %d > %d exceptions x max %d",
				s.ExcCyclesTotal, s.Exceptions, s.ExcCyclesMax), i
		}
		// Cache/exception self-consistency.
		ic := r.CPU.IC.Stats
		if ic.Misses != s.IMissNative+s.IMissCompressed {
			return fmt.Sprintf("I-cache misses %d != IMissNative %d + IMissCompressed %d",
				ic.Misses, s.IMissNative, s.IMissCompressed), i
		}
		if r.CPU.BP.Mispredicts > r.CPU.BP.Lookups {
			return fmt.Sprintf("bpred mispredicts %d > lookups %d",
				r.CPU.BP.Mispredicts, r.CPU.BP.Lookups), i
		}
		if o.counts[i].userBranches > r.CPU.BP.Lookups {
			return fmt.Sprintf("%d user branches committed but bpred saw %d lookups",
				o.counts[i].userBranches, r.CPU.BP.Lookups), i
		}
		if i == 0 {
			if s.Exceptions != 0 || s.HandlerInstrs != 0 || s.IMissCompressed != 0 {
				return fmt.Sprintf("native image took %d exceptions, %d handler instrs, %d compressed misses",
					s.Exceptions, s.HandlerInstrs, s.IMissCompressed), i
			}
			continue
		}
		// Software decompression: every compressed-region miss raises.
		if s.Exceptions != s.IMissCompressed {
			return fmt.Sprintf("%d exceptions != %d compressed-region misses",
				s.Exceptions, s.IMissCompressed), i
		}
		if s.Exceptions > 0 && (s.HandlerInstrs == 0 || ic.SwicLines == 0) {
			return fmt.Sprintf("%d exceptions but %d handler instrs / %d swic lines",
				s.Exceptions, s.HandlerInstrs, ic.SwicLines), i
		}
		// The decompressed stream is the same program: identical user
		// work, only miss handling may differ.
		if s.Instrs != ref.CPU.Stats.Instrs {
			return fmt.Sprintf("user instruction count %d != native %d",
				s.Instrs, ref.CPU.Stats.Instrs), i
		}
		if o.counts[i].userBranches != o.counts[0].userBranches {
			return fmt.Sprintf("user branch count %d != native %d",
				o.counts[i].userBranches, o.counts[0].userBranches), i
		}
		// A compressed image can never be faster than native: it runs the
		// same user instructions plus decompression work.
		if s.Cycles < ref.CPU.Stats.Cycles {
			return fmt.Sprintf("compressed image ran in %d cycles, native needed %d",
				s.Cycles, ref.CPU.Stats.Cycles), i
		}
	}
	// Final data memory must match the reference word for word —
	// except words covered by a data relocation (jump tables, function
	// pointers): those hold code addresses and legitimately differ
	// between layouts, exactly like the masked $ra/$t9 registers.
	data := o.images[0].Segment(program.SegData)
	if data != nil {
		reloc := make(map[uint32]bool)
		for _, rl := range o.images[0].Relocs {
			if rl.Seg == program.SegData {
				reloc[data.Base+rl.Off] = true
			}
		}
		for i, r := range results[1:] {
			for addr := data.Base; addr < data.End(); addr += 4 {
				if reloc[addr] {
					continue
				}
				va := ref.CPU.Mem.ReadWord(addr)
				vb := r.CPU.Mem.ReadWord(addr)
				if va != vb {
					return fmt.Sprintf("data memory differs at %#x: %08x vs %08x", addr, va, vb), i + 1
				}
			}
		}
	}
	return "", 0
}
