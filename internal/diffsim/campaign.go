package diffsim

// Campaign driver shared by the diffsim-smoke test and cmd/ccfuzz: run
// a seed range of differential cases, optionally shrink each finding and
// emit a minimal reproducer .s file, and stream findings as JSONL.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/parallel"
	"repro/internal/synth"
)

// CampaignConfig configures a fuzzing campaign.
type CampaignConfig struct {
	StartSeed int64
	Cases     int
	// ShadowRF overrides the per-seed shadow-register-file choice
	// (nil = derived from the seed, roughly half the cases each way).
	ShadowRF func(seed int64) bool
	// Mutation applies one known-bug injection to every case.
	Mutation *Mutation
	// Functional enables the functional-lockstep oracle on every case
	// (each image also replayed on the functional fast-forward engine).
	Functional bool
	// FunctionalBreak corrupts the functional handler on every case —
	// the functional oracle's must-fail self-check.
	FunctionalBreak bool
	// Shrink reduces each finding to a minimal reproducer.
	Shrink bool
	// OutDir receives reproducer .s files for findings ("" = none).
	OutDir string
	// JSONL, when set, receives one JSON object per finding.
	JSONL io.Writer
	// Log, when set, receives human-readable progress.
	Log io.Writer
	// MaxSteps is the per-case user-instruction budget (0 = default).
	MaxSteps uint64
	// Timeout is the per-case wall-clock budget (0 = none). A case
	// exceeding it is counted as skipped.
	Timeout time.Duration
	// StopAfter stops the campaign after this many findings (0 = run all).
	StopAfter int
	// Workers fans cases across that many goroutines (<= 0 or 1 runs
	// serially). Results — log lines, reproducers, JSONL records, the
	// StopAfter cut-off — are delivered in seed order, so a campaign's
	// outputs are identical for any worker count (except that Timeout
	// skips depend on wall-clock behaviour, which concurrency perturbs).
	Workers int
	// Progress, when set, observes in-order case completion (done of
	// total) for live reporting. Observability only: it must not affect
	// results.
	Progress func(done, total int)
}

// Finding is one JSONL record.
type Finding struct {
	Seed     int64  `json:"seed"`
	Image    string `json:"image"`
	Reason   string `json:"reason"`
	ShadowRF bool   `json:"shadow_rf"`
	Mutation string `json:"mutation,omitempty"`
	Instrs   int    `json:"shrunk_instrs,omitempty"`
	Checks   int    `json:"shrink_checks,omitempty"`
	File     string `json:"file,omitempty"`
}

// Summary aggregates a campaign.
type Summary struct {
	Cases    int
	Findings []Finding
	Skipped  int // inconclusive cases (infrastructure errors, timeouts)
}

// DefaultShadow is the seed-derived shadow-register-file choice: a
// balanced, deterministic mix so both handler families are exercised.
func DefaultShadow(seed int64) bool {
	return (uint64(seed)*0x9E3779B97F4A7C15)>>63 == 1
}

// checkWithTimeout runs Check, abandoning the case after the wall-clock
// budget. The abandoned goroutine finishes its (step-bounded) run in the
// background.
func checkWithTimeout(p *synth.RandProgram, opts Options, d time.Duration) (*Failure, error) {
	if d <= 0 {
		return Check(p, opts)
	}
	type out struct {
		f   *Failure
		err error
	}
	ch := make(chan out, 1)
	//cccheck:allow(pool) timeout watchdog: the abandoned case is skipped deterministically, its goroutine's result discarded
	go func() {
		f, err := Check(p, opts)
		ch <- out{f, err}
	}()
	select {
	case o := <-ch:
		return o.f, o.err
	case <-time.After(d):
		return nil, fmt.Errorf("case timed out after %v", d)
	}
}

// caseOutcome is one case's compute result, handed from a worker to the
// in-order delivery stage of Run.
type caseOutcome struct {
	seed   int64
	opts   Options
	f      *Failure           // nil when the case passed
	prog   *synth.RandProgram // reproducer program (possibly shrunk)
	checks int                // shrink oracle invocations
	err    error              // infrastructure error / timeout (skip)
}

// Run executes the campaign. The expensive per-case work (generation,
// differential check, shrinking) fans out across cfg.Workers goroutines;
// everything observable — Summary counts, log lines, reproducer files,
// JSONL records, the StopAfter cut-off — happens in seed order.
func Run(cfg CampaignConfig) (*Summary, error) {
	shadow := cfg.ShadowRF
	if shadow == nil {
		shadow = DefaultShadow
	}
	logf := func(format string, args ...interface{}) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	sum := &Summary{}
	err := parallel.ForEachOrderedProgress(cfg.Workers, cfg.Cases,
		func(i int) (caseOutcome, error) {
			seed := cfg.StartSeed + int64(i)
			p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
			o := caseOutcome{
				seed: seed,
				opts: Options{
					ShadowRF: shadow(seed), MaxSteps: cfg.MaxSteps, Mutation: cfg.Mutation,
					Functional: cfg.Functional, FunctionalBreak: cfg.FunctionalBreak,
				},
			}
			f, err := checkWithTimeout(p, o.opts, cfg.Timeout)
			if err != nil {
				o.err = err
				return o, nil
			}
			if f == nil {
				return o, nil
			}
			o.f = f
			o.prog = f.Program
			if cfg.Shrink {
				o.prog, o.checks = Shrink(f.Program, o.opts)
			}
			return o, nil
		},
		func(i int, o caseOutcome, _ error) error {
			sum.Cases++
			if o.err != nil {
				sum.Skipped++
				logf("seed %d: skipped: %v", o.seed, o.err)
				return nil
			}
			if o.f == nil {
				return nil
			}
			finding := Finding{Seed: o.seed, Image: o.f.Image, Reason: o.f.Reason, ShadowRF: o.opts.ShadowRF}
			if cfg.Mutation != nil {
				finding.Mutation = cfg.Mutation.Name
			}
			if cfg.Shrink {
				finding.Checks = o.checks
				finding.Instrs = o.prog.InstrCount()
			}
			if cfg.OutDir != "" {
				name := fmt.Sprintf("repro_seed%d.s", o.seed)
				if cfg.Mutation != nil {
					name = fmt.Sprintf("repro_%s_seed%d.s", cfg.Mutation.Name, o.seed)
				}
				path := filepath.Join(cfg.OutDir, name)
				if werr := writeReproducer(path, o.prog, &finding); werr != nil {
					logf("seed %d: writing reproducer: %v", o.seed, werr)
				} else {
					finding.File = path
				}
			}
			sum.Findings = append(sum.Findings, finding)
			logf("seed %d: FINDING (%s): %s", o.seed, o.f.Image, o.f.Reason)
			if cfg.JSONL != nil {
				if jerr := json.NewEncoder(cfg.JSONL).Encode(&finding); jerr != nil {
					return jerr
				}
			}
			if cfg.StopAfter > 0 && len(sum.Findings) >= cfg.StopAfter {
				return parallel.ErrStop
			}
			return nil
		},
		cfg.Progress)
	return sum, err
}

// writeReproducer emits the (possibly shrunk) program as a standalone
// .s file with the finding recorded in a header comment.
func writeReproducer(path string, p *synth.RandProgram, f *Finding) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	hdr := fmt.Sprintf("# diffsim reproducer: seed=%d image=%s shadow_rf=%v\n",
		f.Seed, f.Image, f.ShadowRF)
	if f.Mutation != "" {
		hdr += fmt.Sprintf("# injected mutation: %s\n", f.Mutation)
	}
	hdr += fmt.Sprintf("# %s\n", f.Reason)
	return os.WriteFile(path, []byte(hdr+p.Render()), 0o644)
}
