package diffsim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/synth"
)

// smokeCases returns the number of clean-run cases for the smoke test:
// 150 by default, overridden by DIFFSIM_CASES (CI runs 2000).
func smokeCases(t testing.TB) int {
	if v := os.Getenv("DIFFSIM_CASES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DIFFSIM_CASES=%q", v)
		}
		return n
	}
	return 150
}

// TestDiffsimSmoke runs a campaign of random programs through all four
// images and expects zero findings: the production pipeline upholds the
// invisibility contract on every generated case.
func TestDiffsimSmoke(t *testing.T) {
	n := smokeCases(t)
	sum, err := Run(CampaignConfig{Cases: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 0 {
		f := sum.Findings[0]
		p := synth.GenerateRandom(synth.DefaultRandSpec(f.Seed))
		shrunk, _ := Shrink(p, Options{ShadowRF: f.ShadowRF})
		t.Fatalf("%d findings in %d cases; first: seed %d image %s: %s\nminimal reproducer:\n%s",
			len(sum.Findings), n, f.Seed, f.Image, f.Reason, shrunk.Render())
	}
	if sum.Skipped > n/20 {
		t.Fatalf("%d of %d cases inconclusive", sum.Skipped, n)
	}
}

// FuzzDifferential is the go-native entry point: any seed must produce
// four equivalent images.
func FuzzDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1000, -3, 987654321} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		fail, err := Check(p, Options{ShadowRF: DefaultShadow(seed)})
		if err != nil {
			t.Skipf("inconclusive: %v", err)
		}
		if fail != nil {
			t.Fatalf("%v", fail)
		}
	})
}

// TestCampaignEmitsFindings exercises the campaign plumbing end to end:
// an injected bug must produce a JSONL record and a reproducer file.
func TestCampaignEmitsFindings(t *testing.T) {
	dir := t.TempDir()
	var jsonl bytes.Buffer
	sum, err := Run(CampaignConfig{
		Cases:     5,
		Mutation:  MutationByName("dict-index-off-by-one"),
		ShadowRF:  func(int64) bool { return false },
		Shrink:    true,
		OutDir:    dir,
		JSONL:     &jsonl,
		StopAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(sum.Findings))
	}
	f := sum.Findings[0]
	if f.Image != "dict" || f.Mutation != "dict-index-off-by-one" {
		t.Fatalf("unexpected finding: %+v", f)
	}
	if f.Instrs <= 0 || f.Instrs > 30 {
		t.Fatalf("shrunk reproducer has %d instructions", f.Instrs)
	}
	var rec Finding
	if err := json.Unmarshal(jsonl.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSONL %q: %v", jsonl.String(), err)
	}
	if rec.Seed != f.Seed || rec.File == "" {
		t.Fatalf("JSONL record %+v does not match finding %+v", rec, f)
	}
	data, err := os.ReadFile(filepath.Join(dir, filepath.Base(rec.File)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ".entry main") {
		t.Fatal("reproducer is not an assemblable program")
	}
}

// TestCommittedReproducerStillChecks re-runs the checked-in reproducer
// fixture: the pipeline (unmutated) must pass on it, proving the file
// stays loadable and meaningful.
func TestCommittedReproducerStillChecks(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "diffsim", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed reproducers under testdata/diffsim")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Reproducers are generated programs: regenerate from the seed
		// recorded in the header and confirm the render matches the file
		// body (the generator is the reproducer's source of truth).
		var seed int64
		found := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "# diffsim reproducer: seed=") {
				rest := strings.TrimPrefix(line, "# diffsim reproducer: seed=")
				n, err := strconv.ParseInt(strings.Fields(rest)[0], 10, 64)
				if err != nil {
					t.Fatalf("%s: bad seed header: %v", file, err)
				}
				seed, found = n, true
			}
		}
		if !found {
			t.Fatalf("%s: missing seed header", file)
		}
		p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		fail, err := Check(p, Options{ShadowRF: false})
		if err != nil {
			t.Fatalf("%s: inconclusive: %v", file, err)
		}
		if fail != nil {
			t.Fatalf("%s: unmutated pipeline fails on reproducer seed: %v", file, fail)
		}
	}
}
