package diffsim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/synth"
)

// smokeCases returns the number of clean-run cases for the smoke test:
// 150 by default, overridden by DIFFSIM_CASES (CI runs 2000).
func smokeCases(t testing.TB) int {
	if v := os.Getenv("DIFFSIM_CASES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DIFFSIM_CASES=%q", v)
		}
		return n
	}
	return 150
}

// TestDiffsimSmoke runs a campaign of random programs through all four
// images and expects zero findings: the production pipeline upholds the
// invisibility contract on every generated case.
func TestDiffsimSmoke(t *testing.T) {
	n := smokeCases(t)
	sum, err := Run(CampaignConfig{Cases: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 0 {
		f := sum.Findings[0]
		p := synth.GenerateRandom(synth.DefaultRandSpec(f.Seed))
		shrunk, _ := Shrink(p, Options{ShadowRF: f.ShadowRF})
		t.Fatalf("%d findings in %d cases; first: seed %d image %s: %s\nminimal reproducer:\n%s",
			len(sum.Findings), n, f.Seed, f.Image, f.Reason, shrunk.Render())
	}
	if sum.Skipped > n/20 {
		t.Fatalf("%d of %d cases inconclusive", sum.Skipped, n)
	}
}

// FuzzDifferential is the go-native entry point: any seed must produce
// four equivalent images.
func FuzzDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1000, -3, 987654321} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		fail, err := Check(p, Options{ShadowRF: DefaultShadow(seed)})
		if err != nil {
			t.Skipf("inconclusive: %v", err)
		}
		if fail != nil {
			t.Fatalf("%v", fail)
		}
	})
}

// TestCampaignEmitsFindings exercises the campaign plumbing end to end:
// an injected bug must produce a JSONL record and a reproducer file.
func TestCampaignEmitsFindings(t *testing.T) {
	dir := t.TempDir()
	var jsonl bytes.Buffer
	sum, err := Run(CampaignConfig{
		Cases:     5,
		Mutation:  MutationByName("dict-index-off-by-one"),
		ShadowRF:  func(int64) bool { return false },
		Shrink:    true,
		OutDir:    dir,
		JSONL:     &jsonl,
		StopAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(sum.Findings))
	}
	f := sum.Findings[0]
	if f.Image != "dict" || f.Mutation != "dict-index-off-by-one" {
		t.Fatalf("unexpected finding: %+v", f)
	}
	if f.Instrs <= 0 || f.Instrs > 30 {
		t.Fatalf("shrunk reproducer has %d instructions", f.Instrs)
	}
	var rec Finding
	if err := json.Unmarshal(jsonl.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSONL %q: %v", jsonl.String(), err)
	}
	if rec.Seed != f.Seed || rec.File == "" {
		t.Fatalf("JSONL record %+v does not match finding %+v", rec, f)
	}
	data, err := os.ReadFile(filepath.Join(dir, filepath.Base(rec.File)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ".entry main") {
		t.Fatal("reproducer is not an assemblable program")
	}
}

// TestCommittedReproducerStillChecks re-runs every checked-in
// reproducer and corpus fixture: the pipeline (unmutated, with the
// functional-lockstep oracle on) must pass on each recorded seed under
// its recorded options, proving the files stay loadable and meaningful.
// Corpus entries (header `# corpus:`) are unshrunk generator output, so
// their bodies must additionally regenerate bit-identically from the
// seed alone.
func TestCommittedReproducerStillChecks(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "diffsim", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed reproducers under testdata/diffsim")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Reproducers are generated programs: the header records the
		// generator seed and replay options (the generator is the
		// reproducer's source of truth).
		var seed int64
		opts := Options{Functional: true}
		found, corpus := false, false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "# corpus:") {
				corpus = true
			}
			if !strings.HasPrefix(line, "# diffsim reproducer: seed=") {
				continue
			}
			for _, f := range strings.Fields(strings.TrimPrefix(line, "# diffsim reproducer: ")) {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					continue
				}
				switch k {
				case "seed":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						t.Fatalf("%s: bad seed header: %v", file, err)
					}
					seed, found = n, true
				case "shadow_rf":
					opts.ShadowRF = v == "true"
				case "icache_bytes":
					n, err := strconv.Atoi(v)
					if err != nil {
						t.Fatalf("%s: bad icache_bytes header: %v", file, err)
					}
					opts.ICacheBytes = n
				}
			}
		}
		if !found {
			t.Fatalf("%s: missing seed header", file)
		}
		p := synth.GenerateRandom(synth.DefaultRandSpec(seed))
		if corpus {
			body := string(data)
			if i := strings.Index(body, "# Generated by"); i >= 0 {
				body = body[i:]
			}
			if body != p.Render() {
				t.Fatalf("%s: body does not regenerate bit-identically from seed %d", file, seed)
			}
		}
		fail, err := Check(p, opts)
		if err != nil {
			t.Fatalf("%s: inconclusive: %v", file, err)
		}
		if fail != nil {
			t.Fatalf("%s: unmutated pipeline fails on reproducer seed: %v", file, fail)
		}
	}
}

// TestFunctionalOracleDetectsBreak is the functional oracle's negative
// control: a corrupted functional handler (every swic flips one bit)
// must surface as a finding on a seed known to take decompression
// exceptions — otherwise the functional comparison has no teeth.
func TestFunctionalOracleDetectsBreak(t *testing.T) {
	p := synth.GenerateRandom(synth.DefaultRandSpec(7))
	fail, err := Check(p, Options{Functional: true, FunctionalBreak: true})
	if err != nil {
		t.Fatalf("inconclusive: %v", err)
	}
	if fail == nil {
		t.Fatal("broken functional handler produced no finding")
	}
	if !strings.Contains(fail.Reason, "functional") {
		t.Fatalf("finding not attributed to the functional oracle: %v", fail)
	}
}

// TestFunctionalCampaignSmoke runs a small campaign with the functional
// oracle enabled end to end: zero findings, and the option survives the
// campaign plumbing (shrinker included via TestFunctionalOracleDetectsBreak's
// Check path).
func TestFunctionalCampaignSmoke(t *testing.T) {
	sum, err := Run(CampaignConfig{Cases: 25, Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 0 {
		t.Fatalf("functional campaign found %d divergences; first: %+v", len(sum.Findings), sum.Findings[0])
	}
}
