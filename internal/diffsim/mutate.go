package diffsim

// Known-bug injection: mutation testing of the harness itself. Each
// Mutation plants one historically plausible bug class into a built
// image set; the self-check (mutate_test.go) proves the harness detects
// every one within a bounded number of generated cases. A harness that
// cannot re-find a planted bug cannot be trusted to find a real one.

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/decomp"
	"repro/internal/isa"
	"repro/internal/program"
)

// Mutation injects one known bug into the images of a case (index order
// follows ImageKinds) before the lockstep run.
type Mutation struct {
	Name  string
	Descr string
	Apply func(images []*program.Image, opts Options) error
}

// imageByKind returns the image with the given ImageKinds name.
func imageByKind(images []*program.Image, kind string) (*program.Image, error) {
	for i, k := range ImageKinds {
		if k == kind && i < len(images) {
			return images[i], nil
		}
	}
	return nil, fmt.Errorf("no %s image", kind)
}

// Mutations returns the shipped bug injections.
func Mutations() []*Mutation {
	return []*Mutation{
		MutDictIndexOffByOne(),
		MutDropSwic(),
		MutClobberT8(),
	}
}

// MutationByName returns the named mutation, or nil.
func MutationByName(name string) *Mutation {
	for _, m := range Mutations() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MutDictIndexOffByOne bumps the first 16-bit codeword of the dictionary
// image's index stream by one: the handler decodes a wrong (or
// out-of-range) dictionary entry for the first instruction of the first
// compressed line, so the materialised line no longer matches the golden
// text. The swic-content oracle catches it on the very first exception.
func MutDictIndexOffByOne() *Mutation {
	return &Mutation{
		Name:  "dict-index-off-by-one",
		Descr: "first index-stream codeword incremented (wrong dictionary entry decoded)",
		Apply: func(images []*program.Image, _ Options) error {
			im, err := imageByKind(images, "dict")
			if err != nil {
				return err
			}
			idx := im.Segment(program.SegIndices)
			if idx == nil || len(idx.Data) < 2 {
				return fmt.Errorf("dict image has no index stream")
			}
			v := binary.LittleEndian.Uint16(idx.Data)
			binary.LittleEndian.PutUint16(idx.Data, v+1)
			return nil
		},
	}
}

// MutDropSwic replaces the first swic of the dictionary handler with a
// nop: the handler "runs" but never fills the missing line, so the
// retried fetch faults again and the CPU reports a handler that failed
// to make progress — a MachineError finding on the dict image.
func MutDropSwic() *Mutation {
	return &Mutation{
		Name:  "drop-swic",
		Descr: "handler's first swic replaced with nop (line never filled)",
		Apply: func(images []*program.Image, _ Options) error {
			im, err := imageByKind(images, "dict")
			if err != nil {
				return err
			}
			h := im.Segment(program.SegDecompressor)
			if h == nil {
				return fmt.Errorf("dict image has no handler segment")
			}
			for off := 0; off+4 <= len(h.Data); off += 4 {
				w := binary.LittleEndian.Uint32(h.Data[off:])
				if isa.Op(w) == isa.OpSWIC {
					binary.LittleEndian.PutUint32(h.Data[off:], 0) // nop
					return nil
				}
			}
			return fmt.Errorf("handler contains no swic")
		},
	}
}

// MutClobberT8 rebuilds the dictionary handler with an extra
// `ori $t8, $zero, 0x5A5A` immediately before its iret. Without the
// shadow register file the clobber leaks into user state and the
// register comparison catches it on the first user instruction after an
// exception. With ShadowRF the handler runs in the second bank and the
// bug is architecturally invisible — the self-check asserts both sides.
func MutClobberT8() *Mutation {
	return &Mutation{
		Name:  "clobber-t8",
		Descr: "handler writes $t8 before iret (invisible only under ShadowRF)",
		Apply: func(images []*program.Image, opts Options) error {
			im, err := imageByKind(images, "dict")
			if err != nil {
				return err
			}
			src, err := decomp.Source(decomp.Variant{
				Scheme: program.SchemeDict, ShadowRF: opts.ShadowRF})
			if err != nil {
				return err
			}
			if !strings.Contains(src, "iret") {
				return fmt.Errorf("handler source has no iret")
			}
			mutated := strings.Replace(src, "iret",
				"ori   $t8, $zero, 0x5A5A\n        iret", 1)
			mim, err := asm.Assemble(mutated)
			if err != nil {
				return fmt.Errorf("reassembling mutated handler: %w", err)
			}
			seg := mim.Segment(program.SegDecompressor)
			if seg == nil {
				return fmt.Errorf("mutated handler has no %s segment", program.SegDecompressor)
			}
			for i, s := range im.Segments {
				if s.Name == program.SegDecompressor {
					im.Segments[i] = seg
					return nil
				}
			}
			return fmt.Errorf("dict image has no handler segment")
		},
	}
}
