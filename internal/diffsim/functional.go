package diffsim

// Functional-lockstep oracle: every image kind is additionally run on
// the functional fast-forward engine (internal/cpu with
// Config.Functional) and its final architectural state is compared
// against the detailed lockstep result for the same image. The
// functional engine shares the ISA interpreter with the detailed one
// but none of its fetch path — flat per-region decode caches over an
// exception-materialised code store instead of cache-resident
// predecode — so a divergence localises a bug to exactly that split.
// Timing state is out of scope by construction; the comparison covers
// syscall output, exit code, the user register bank (masking $k0/$k1,
// which the single-register-file decompressor is architecturally
// allowed to clobber), HI/LO, the committed user-instruction count,
// final data memory, and every functionally materialised code word
// against the golden native text.

import (
	"bytes"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/verify"
)

// functionalBudget bounds one functional run (user + handler
// instructions, both engines' counters). Generated programs commit at
// most Options.MaxSteps user instructions; the budget leaves generous
// room for handler activity while keeping a broken functional handler
// (the oracle's own failure mode) from spinning forever — exhausting it
// is reported as a finding, since the detailed run finished.
const functionalBudget = 50_000_000

// checkFunctional replays every image on the functional engine and
// compares final architectural state with the detailed results. It
// returns the first divergence ("" = all equivalent) and the index of
// the image that diverged.
func checkFunctional(images []*program.Image, results []*verify.MultiResult, opts Options) (string, int) {
	for img, im := range images {
		if reason := functionalMismatch(im, results[img], opts); reason != "" {
			return "functional: " + reason, img
		}
	}
	return "", -1
}

// functionalMismatch runs one image functionally and diffs it against
// its detailed lockstep result.
func functionalMismatch(im *program.Image, det *verify.MultiResult, opts Options) string {
	cfg := cpu.DefaultConfig()
	cfg.Functional = true
	cfg.FunctionalBreak = opts.FunctionalBreak
	cfg.MaxInstr = functionalBudget
	if opts.ICacheBytes > 0 {
		cfg.ICache.SizeBytes = opts.ICacheBytes
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return fmt.Sprintf("cpu: %v", err)
	}
	var out bytes.Buffer
	c.Out = &out
	if err := c.Load(im); err != nil {
		return fmt.Sprintf("load: %v", err)
	}
	code, err := c.Run()
	if err != nil {
		return fmt.Sprintf("run: %v", err)
	}
	if got, want := out.String(), string(det.Output); got != want {
		return fmt.Sprintf("output %q, detailed %q", got, want)
	}
	if code != det.ExitCode {
		return fmt.Sprintf("exit code %d, detailed %d", code, det.ExitCode)
	}
	d := det.CPU
	for r := 0; r < 32; r++ {
		if r == 26 || r == 27 { // $k0/$k1: reserved for the decompressor
			continue
		}
		if f, want := c.UserReg(r), d.UserReg(r); f != want {
			return fmt.Sprintf("$%d = %#x, detailed %#x", r, f, want)
		}
	}
	hiF, loF := c.HiLo()
	hiD, loD := d.HiLo()
	if hiF != hiD || loF != loD {
		return fmt.Sprintf("HI/LO %#x/%#x, detailed %#x/%#x", hiF, loF, hiD, loD)
	}
	if c.FStats.Instrs != d.Stats.Instrs {
		return fmt.Sprintf("user instrs %d, detailed %d", c.FStats.Instrs, d.Stats.Instrs)
	}
	if seg := im.Segment(program.SegData); seg != nil {
		for i := range seg.Data {
			a := seg.Base + uint32(i)
			if f, want := c.Mem.LoadByte(a), d.Mem.LoadByte(a); f != want {
				return fmt.Sprintf("data byte %#x = %#x, detailed %#x", a, f, want)
			}
		}
	}
	// Every functionally materialised code word must match the golden
	// decompressed text — the functional mirror of the swic-content
	// oracle the detailed run was audited with.
	if golden := im.Segment(program.SegText); golden != nil {
		for a, v := range c.FStoreSnapshot() {
			if !golden.Contains(a) || !golden.Contains(a+3) {
				continue
			}
			if want := golden.Word(a); v != want {
				return fmt.Sprintf("materialised word at %#x = %#x, golden %#x", a, v, want)
			}
		}
	}
	return ""
}
