package diffsim

// Mutation self-check: the harness must detect every shipped injected
// bug within a small, bounded number of generated cases (the acceptance
// bound is 5000; empirically each is caught on the first case).

import (
	"strings"
	"testing"
)

const detectionBudget = 50 // cases allowed before a mutation counts as missed

func TestMutationsDetected(t *testing.T) {
	for _, m := range Mutations() {
		t.Run(m.Name, func(t *testing.T) {
			sum, err := Run(CampaignConfig{
				Cases:    detectionBudget,
				Mutation: m,
				// clobber-t8 is architecturally invisible under the
				// shadow register file (that is the point of the shadow
				// RF); detection power is asserted on the single-RF side.
				ShadowRF:  func(int64) bool { return false },
				StopAfter: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Findings) == 0 {
				t.Fatalf("mutation %s not detected within %d cases (%d skipped)",
					m.Name, detectionBudget, sum.Skipped)
			}
			f := sum.Findings[0]
			if f.Image != "dict" {
				t.Fatalf("mutation %s attributed to image %q, want dict", m.Name, f.Image)
			}
			t.Logf("%s detected at seed %d: %s", m.Name, f.Seed, f.Reason)
		})
	}
}

// TestMutationDetectionChannels pins each mutation to the oracle that
// should catch it, so a silently weakened oracle fails loudly here.
func TestMutationDetectionChannels(t *testing.T) {
	expect := map[string]string{
		"dict-index-off-by-one": "swic oracle",          // wrong word materialised
		"drop-swic":             "handler failed",       // line never filled
		"clobber-t8":            "register $t8 differs", // leaked handler scratch
	}
	for _, m := range Mutations() {
		sum, err := Run(CampaignConfig{
			Cases:     detectionBudget,
			Mutation:  m,
			ShadowRF:  func(int64) bool { return false },
			StopAfter: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Findings) == 0 {
			t.Fatalf("%s: not detected", m.Name)
		}
		if want := expect[m.Name]; !strings.Contains(sum.Findings[0].Reason, want) {
			t.Errorf("%s: detected via %q, expected the %q channel",
				m.Name, sum.Findings[0].Reason, want)
		}
	}
}

// TestClobberT8InvisibleUnderShadowRF is the negative control: with the
// shadow register file the handler's $t8 write never reaches user
// state, so the same mutation must NOT be reported.
func TestClobberT8InvisibleUnderShadowRF(t *testing.T) {
	sum, err := Run(CampaignConfig{
		Cases:    10,
		Mutation: MutationByName("clobber-t8"),
		ShadowRF: func(int64) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Findings) != 0 {
		t.Fatalf("clobber-t8 reported under ShadowRF: %+v (the shadow RF should hide it)",
			sum.Findings[0])
	}
	if sum.Skipped != 0 {
		t.Fatalf("%d cases inconclusive", sum.Skipped)
	}
}
