package diffsim

import (
	"bytes"
	"testing"
)

// runCampaign executes one mutation campaign with the given worker
// count, capturing the log and JSONL streams.
func runCampaign(t *testing.T, workers int) (*Summary, string, string) {
	t.Helper()
	var logBuf, jsonlBuf bytes.Buffer
	sum, err := Run(CampaignConfig{
		Cases:    8,
		Mutation: MutationByName("dict-index-off-by-one"),
		ShadowRF: func(int64) bool { return false },
		Shrink:   true,
		Log:      &logBuf,
		JSONL:    &jsonlBuf,
		Workers:  workers,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sum, logBuf.String(), jsonlBuf.String()
}

// TestCampaignWorkerDeterminism runs the same campaign serially and
// sharded and requires byte-identical observable output: the log
// stream, the JSONL findings and the summary must not depend on the
// worker count. Under -race this also exercises the concurrent
// generate/check/shrink path.
func TestCampaignWorkerDeterminism(t *testing.T) {
	refSum, refLog, refJSONL := runCampaign(t, 1)
	if len(refSum.Findings) == 0 {
		t.Fatal("mutation campaign found nothing; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 4} {
		sum, log, jsonl := runCampaign(t, workers)
		if sum.Cases != refSum.Cases || sum.Skipped != refSum.Skipped || len(sum.Findings) != len(refSum.Findings) {
			t.Fatalf("workers=%d: summary (%d cases, %d findings, %d skipped), serial (%d, %d, %d)",
				workers, sum.Cases, len(sum.Findings), sum.Skipped,
				refSum.Cases, len(refSum.Findings), refSum.Skipped)
		}
		for i, f := range sum.Findings {
			if f != refSum.Findings[i] {
				t.Fatalf("workers=%d: finding %d = %+v, serial %+v", workers, i, f, refSum.Findings[i])
			}
		}
		if log != refLog {
			t.Fatalf("workers=%d: log stream diverged\ngot:\n%s\nserial:\n%s", workers, log, refLog)
		}
		if jsonl != refJSONL {
			t.Fatalf("workers=%d: JSONL stream diverged\ngot:\n%s\nserial:\n%s", workers, jsonl, refJSONL)
		}
	}
}

// TestCampaignStopAfterDeterministicPrefix checks that StopAfter cuts
// the sharded campaign at the same seed as the serial one.
func TestCampaignStopAfterDeterministicPrefix(t *testing.T) {
	run := func(workers int) *Summary {
		sum, err := Run(CampaignConfig{
			Cases:     8,
			Mutation:  MutationByName("dict-index-off-by-one"),
			ShadowRF:  func(int64) bool { return false },
			StopAfter: 1,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	ref := run(1)
	if len(ref.Findings) != 1 {
		t.Fatalf("serial campaign found %d, want 1", len(ref.Findings))
	}
	for _, workers := range []int{3} {
		sum := run(workers)
		if sum.Cases != ref.Cases || len(sum.Findings) != 1 || sum.Findings[0].Seed != ref.Findings[0].Seed {
			t.Fatalf("workers=%d: stopped at seed %v after %d cases; serial seed %d after %d",
				workers, sum.Findings, sum.Cases, ref.Findings[0].Seed, ref.Cases)
		}
	}
}
