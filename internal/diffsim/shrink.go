package diffsim

// Delta-debugging over the generator IR. A failing RandProgram is
// reduced in two phases, repeated to a fixpoint:
//
//  1. procedure deletion — drop a whole procedure and every call site
//     targeting it (coarse, kills most of the program fast);
//  2. op-level reduction — remove single ops, unwrap Loop/If bodies,
//     collapse a Switch to one arm, shrink loop trip counts and the
//     data-init prologue.
//
// A candidate is kept only if Check still reports a Failure (build
// errors or infrastructure skips reject it), so the reduction preserves
// the observed bug by construction, not by hope.

import "repro/internal/synth"

// maxShrinkChecks bounds the total number of candidate evaluations per
// shrink so a pathological case cannot stall a campaign.
const maxShrinkChecks = 600

type shrinker struct {
	opts   Options
	checks int
}

// stillFails reports whether the candidate still triggers a finding.
func (s *shrinker) stillFails(p *synth.RandProgram) bool {
	if s.checks >= maxShrinkChecks {
		return false
	}
	s.checks++
	f, err := Check(p, s.opts)
	return err == nil && f != nil
}

// Shrink reduces a failing program to a (locally) minimal one that still
// fails under the same options. The input is not modified. It returns
// the reduced program and the number of Check evaluations spent.
func Shrink(p *synth.RandProgram, opts Options) (*synth.RandProgram, int) {
	s := &shrinker{opts: opts}
	cur := p.Clone()
	for {
		changed := false
		if s.shrinkProcs(cur) {
			changed = true
		}
		if s.shrinkOps(cur) {
			changed = true
		}
		if s.shrinkSpec(cur) {
			changed = true
		}
		if !changed || s.checks >= maxShrinkChecks {
			return cur, s.checks
		}
	}
}

// shrinkProcs tries deleting each procedure (with its call sites).
func (s *shrinker) shrinkProcs(p *synth.RandProgram) bool {
	changed := false
	for i := 0; i < len(p.Procs); {
		cand := p.Clone()
		name := cand.Procs[i].Name
		cand.Procs = append(cand.Procs[:i], cand.Procs[i+1:]...)
		for _, pr := range cand.Procs {
			pr.Ops = removeCalls(pr.Ops, name)
			pr.Frameless = !procNeedsFrame(pr.Ops)
		}
		if s.stillFails(cand) {
			*p = *cand
			changed = true
		} else {
			i++
		}
	}
	return changed
}

func procNeedsFrame(ops []synth.RandOp) bool {
	return hasCallsOrLoops(ops)
}

func hasCallsOrLoops(ops []synth.RandOp) bool {
	for i := range ops {
		switch ops[i].Kind {
		case synth.RopCall, synth.RopCallInd, synth.RopLoop:
			return true
		}
		if hasCallsOrLoops(ops[i].Body) {
			return true
		}
		for _, arm := range ops[i].Arms {
			if hasCallsOrLoops(arm) {
				return true
			}
		}
	}
	return false
}

// removeCalls strips every call op targeting name, recursively.
func removeCalls(ops []synth.RandOp, name string) []synth.RandOp {
	out := ops[:0]
	for _, op := range ops {
		if (op.Kind == synth.RopCall || op.Kind == synth.RopCallInd) && op.Callee == name {
			continue
		}
		op.Body = removeCalls(op.Body, name)
		for a := range op.Arms {
			op.Arms[a] = removeCalls(op.Arms[a], name)
		}
		out = append(out, op)
	}
	return out
}

// shrinkOps runs the op-level reductions over every procedure.
func (s *shrinker) shrinkOps(p *synth.RandProgram) bool {
	changed := false
	for pi := range p.Procs {
		for {
			reduced := false
			// Each reduction candidate is expressed as "clone the whole
			// program, apply one edit at op position k of procedure pi".
			n := countEdits(p.Procs[pi].Ops)
			for k := 0; k < n; k++ {
				cand := p.Clone()
				if !applyEdit(&cand.Procs[pi].Ops, k) {
					continue
				}
				cand.Procs[pi].Frameless = !procNeedsFrame(cand.Procs[pi].Ops)
				if s.stillFails(cand) {
					*p = *cand
					reduced = true
					break // op indices shifted; restart this procedure
				}
			}
			if !reduced {
				break
			}
			changed = true
			if s.checks >= maxShrinkChecks {
				return changed
			}
		}
	}
	return changed
}

// countEdits returns how many single edits exist for an op list: one
// "remove" per op plus one "simplify" per compound op.
func countEdits(ops []synth.RandOp) int {
	n := 0
	for i := range ops {
		n += 2 // remove; simplify (no-op for plain instructions)
		n += countEdits(ops[i].Body)
		for _, arm := range ops[i].Arms {
			n += countEdits(arm)
		}
	}
	return n
}

// applyEdit applies the k-th edit to the op tree, returning whether an
// actual change was made (simplify on a RopRaw is a no-op).
func applyEdit(ops *[]synth.RandOp, k int) bool {
	return editWalk(ops, &k)
}

// editWalk walks the op tree pre-order, spending one unit of *k per edit
// slot (remove, then simplify, per op, then the op's subtrees). When *k
// reaches 0 at a slot, that edit is applied.
func editWalk(ops *[]synth.RandOp, k *int) bool {
	for i := 0; i < len(*ops); i++ {
		if *k == 0 { // remove op i
			*ops = append((*ops)[:i], (*ops)[i+1:]...)
			return true
		}
		*k--
		if *k == 0 { // simplify op i in place
			return simplify(ops, i)
		}
		*k--
		op := &(*ops)[i]
		if editWalk(&op.Body, k) {
			return true
		}
		for a := range op.Arms {
			if editWalk(&op.Arms[a], k) {
				return true
			}
		}
	}
	return false
}

// simplify reduces a compound op one notch: unwrap a Loop/If into its
// body, reduce a loop trip count to 1, keep only a Switch's first arm.
func simplify(ops *[]synth.RandOp, i int) bool {
	op := (*ops)[i]
	switch op.Kind {
	case synth.RopLoop:
		if op.N > 1 {
			(*ops)[i].N = 1
			return true
		}
		*ops = spliceOps(*ops, i, op.Body)
		return true
	case synth.RopIf:
		*ops = spliceOps(*ops, i, op.Body)
		return true
	case synth.RopSwitch:
		*ops = spliceOps(*ops, i, op.Arms[0])
		return true
	}
	return false
}

// spliceOps replaces ops[i] with the given replacement sequence.
func spliceOps(ops []synth.RandOp, i int, repl []synth.RandOp) []synth.RandOp {
	out := make([]synth.RandOp, 0, len(ops)-1+len(repl))
	out = append(out, ops[:i]...)
	out = append(out, repl...)
	out = append(out, ops[i+1:]...)
	return out
}

// shrinkSpec reduces generator-level knobs that the renderer consumes
// directly: the data-initialisation prologue length.
func (s *shrinker) shrinkSpec(p *synth.RandProgram) bool {
	changed := false
	for p.Spec.DataWords > 0 {
		cand := p.Clone()
		cand.Spec.DataWords = p.Spec.DataWords / 2
		if !s.stillFails(cand) {
			break
		}
		*p = *cand
		changed = true
	}
	return changed
}
