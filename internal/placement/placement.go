// Package placement implements profile-guided procedure placement in the
// style of Pettis & Hansen ("Profile Guided Code Positioning", PLDI'90),
// which the paper cites and names — combined with selective compression —
// as future work ("an interesting area for future work would be to
// develop a unified selective compression and code placement framework",
// §5.3). The optimiser orders procedures so that procedures that call
// each other frequently are adjacent, reducing I-cache conflict misses
// and therefore decompression work.
package placement

import (
	"sort"

	"repro/internal/cpu"
)

// Order computes a procedure order from the profile's call-affinity graph
// using the Pettis–Hansen greedy chain-merging algorithm:
//
//  1. every procedure starts as its own chain;
//  2. call edges are visited by descending weight;
//  3. if the edge's endpoints are the tail of one chain and the head of
//     another (possibly after flipping a chain), the chains are joined;
//  4. remaining chains are emitted by descending total execution weight.
//
// The returned slice lists procedure names in layout order and always
// contains every procedure of the profile exactly once.
func Order(prof *cpu.ProcProfile) []string {
	n := len(prof.Procs)
	chains := make([][]int, n)
	where := make([]int, n) // procedure -> chain id (-1 = consumed)
	for i := 0; i < n; i++ {
		chains[i] = []int{i}
		where[i] = i
	}

	type edge struct {
		a, b int
		w    uint64
	}
	var edges []edge
	merged := make(map[[2]int]uint64)
	for k, w := range prof.Calls {
		a, b := k[0], k[1]
		if a == b {
			continue // self-calls do not constrain placement
		}
		if a > b {
			a, b = b, a
		}
		merged[[2]int{a, b}] += w
	}
	for k, w := range merged {
		edges = append(edges, edge{k[0], k[1], w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	find := func(p int) int { return where[p] }
	for _, e := range edges {
		ca, cb := find(e.a), find(e.b)
		if ca == cb {
			continue
		}
		a, b := chains[ca], chains[cb]
		// Orient the chains so e.a ends chain a and e.b starts chain b.
		if a[0] == e.a {
			reverse(a)
		}
		if a[len(a)-1] != e.a {
			continue // e.a is interior: cannot join without splitting
		}
		if b[len(b)-1] == e.b {
			reverse(b)
		}
		if b[0] != e.b {
			continue
		}
		chains[ca] = append(a, b...)
		for _, p := range b {
			where[p] = ca
		}
		chains[cb] = nil
	}

	// Emit chains by descending execution weight so the hottest cluster
	// lands at the region base.
	type scored struct {
		id int
		w  uint64
	}
	var out []scored
	for id, ch := range chains {
		if len(ch) == 0 {
			continue
		}
		var w uint64
		for _, p := range ch {
			w += prof.Execs[p]
		}
		out = append(out, scored{id, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].w != out[j].w {
			return out[i].w > out[j].w
		}
		return out[i].id < out[j].id
	})
	var names []string
	for _, s := range out {
		for _, p := range chains[s.id] {
			names = append(names, prof.Procs[p].Name)
		}
	}
	return names
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
