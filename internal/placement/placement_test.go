package placement

import (
	"sort"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
)

func profileWith(names []string, execs []uint64, calls map[[2]int]uint64) *cpu.ProcProfile {
	p := &cpu.ProcProfile{Execs: execs, Misses: make([]uint64, len(names)), Calls: calls}
	for i, n := range names {
		p.Procs = append(p.Procs, program.Procedure{Name: n, Addr: uint32(0x400000 + 64*i), Size: 64})
	}
	return p
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestOrderCoversEveryProcedureOnce(t *testing.T) {
	prof := profileWith(
		[]string{"a", "b", "c", "d", "e"},
		[]uint64{5, 4, 3, 2, 1},
		map[[2]int]uint64{{0, 1}: 10, {2, 3}: 5},
	)
	order := Order(prof)
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("order %v is not a permutation", order)
		}
	}
}

func TestHeavyCallersBecomeAdjacent(t *testing.T) {
	prof := profileWith(
		[]string{"main", "x", "y", "z"},
		[]uint64{100, 50, 50, 50},
		map[[2]int]uint64{
			{0, 2}: 1000, // main <-> y : hottest edge
			{0, 1}: 10,
			{1, 3}: 500, // x <-> z
		},
	)
	order := Order(prof)
	mi, yi := indexOf(order, "main"), indexOf(order, "y")
	if abs(mi-yi) != 1 {
		t.Fatalf("main and y must be adjacent: %v", order)
	}
	xi, zi := indexOf(order, "x"), indexOf(order, "z")
	if abs(xi-zi) != 1 {
		t.Fatalf("x and z must be adjacent: %v", order)
	}
}

func TestSelfCallsIgnored(t *testing.T) {
	prof := profileWith(
		[]string{"rec", "other"},
		[]uint64{10, 5},
		map[[2]int]uint64{{0, 0}: 100000},
	)
	order := Order(prof)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestBidirectionalEdgesMerge(t *testing.T) {
	// a->b and b->a should combine into one strong affinity.
	prof := profileWith(
		[]string{"a", "b", "c"},
		[]uint64{1, 1, 1},
		map[[2]int]uint64{
			{0, 1}: 30,
			{1, 0}: 30,
			{0, 2}: 40, // weaker than merged a<->b (60)
		},
	)
	order := Order(prof)
	ai, bi := indexOf(order, "a"), indexOf(order, "b")
	if abs(ai-bi) != 1 {
		t.Fatalf("a and b must be adjacent after edge merge: %v", order)
	}
}

func TestHottestChainFirst(t *testing.T) {
	prof := profileWith(
		[]string{"cold1", "cold2", "hot1", "hot2"},
		[]uint64{1, 1, 1000, 1000},
		map[[2]int]uint64{
			{0, 1}: 5,
			{2, 3}: 5,
		},
	)
	order := Order(prof)
	if indexOf(order, "hot1") > 1 || indexOf(order, "hot2") > 1 {
		t.Fatalf("hot chain must lead: %v", order)
	}
}

func TestEmptyProfile(t *testing.T) {
	prof := profileWith(nil, nil, map[[2]int]uint64{})
	if got := Order(prof); len(got) != 0 {
		t.Fatalf("order = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	prof := profileWith(
		[]string{"a", "b", "c", "d"},
		[]uint64{4, 3, 2, 1},
		map[[2]int]uint64{{0, 1}: 7, {2, 3}: 7, {1, 2}: 7},
	)
	first := Order(prof)
	for i := 0; i < 20; i++ {
		got := Order(prof)
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("non-deterministic order: %v vs %v", got, first)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
