package placement

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/profile"
)

func costProfile(rows []profile.ProcCost) *profile.Profile {
	return &profile.Profile{SchemaVersion: profile.ArtifactSchema, LineBytes: 32, Procs: rows}
}

func withMissCost(addr uint32, name string, cost uint64) profile.ProcCost {
	var c profile.Cost
	c.CPIStack[cpu.CycleFetchStall] = cost
	c.Cycles = cost
	return profile.ProcCost{Name: name, Addr: addr, Cost: c}
}

func TestOrderByCost(t *testing.T) {
	p := costProfile([]profile.ProcCost{
		withMissCost(0x00400000, "main", 50),
		withMissCost(0x00400100, "hot", 9000),
		withMissCost(0x00400200, "warm", 300),
		withMissCost(0x00400300, "cold", 0),
	})
	p.Procs = append(p.Procs, profile.ProcCost{Name: profile.OutsideName,
		Cost: profile.Cost{Cycles: 1}})
	got := OrderByCost(p)
	want := []string{"hot", "warm", "main", "cold"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestOrderByCostTiesDeterministic(t *testing.T) {
	p := costProfile([]profile.ProcCost{
		withMissCost(0x00400200, "b", 100),
		withMissCost(0x00400100, "a", 100),
		withMissCost(0x00400300, "c", 100),
	})
	first := OrderByCost(p)
	want := []string{"a", "b", "c"} // equal cost: address order
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("tie order = %v, want %v", first, want)
	}
	for i := 0; i < 5; i++ {
		if got := OrderByCost(p); !reflect.DeepEqual(got, first) {
			t.Fatalf("order not stable: %v vs %v", got, first)
		}
	}
}
