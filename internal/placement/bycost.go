package placement

import (
	"sort"

	"repro/internal/profile"
)

// OrderByCost orders procedures by measured attributed cost, hottest
// first — the spatial-profile counterpart to Order. Where Order
// optimises call adjacency from an affinity graph, OrderByCost packs
// the procedures whose lines actually cost the most cycles (handler
// work, exception service, fetch stalls) at the region base, where the
// re-layout gives them the least conflicting cache sets. Ties break by
// original address, then name, so the layout is deterministic; every
// real procedure of the profile appears exactly once (the synthetic
// outside bucket is not a procedure and is skipped).
func OrderByCost(p *profile.Profile) []string {
	type scored struct {
		name string
		addr uint32
		cost uint64
	}
	var procs []scored
	for _, pr := range p.Procs {
		if pr.Name == profile.OutsideName {
			continue
		}
		procs = append(procs, scored{name: pr.Name, addr: pr.Addr, cost: pr.Cost.MissCost()})
	}
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].cost != procs[j].cost {
			return procs[i].cost > procs[j].cost
		}
		if procs[i].addr != procs[j].addr {
			return procs[i].addr < procs[j].addr
		}
		return procs[i].name < procs[j].name
	})
	names := make([]string, len(procs))
	for i, s := range procs {
		names[i] = s.name
	}
	return names
}
