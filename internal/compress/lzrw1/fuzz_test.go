package lzrw1

import (
	"bytes"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the decoder: it must return an
// error or a correctly sized output, never panic.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{}, 10)
	f.Add([]byte{0x00, 0x00, 'a', 'b', 'c'}, 3)
	f.Add(Compress([]byte("hello hello hello hello")), 23)
	f.Add([]byte{0x01, 0x00, 0x00, 0x01}, 16)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			return
		}
		out, err := Decompress(data, size)
		if err == nil && len(out) != size {
			t.Fatalf("no error but %d bytes, want %d", len(out), size)
		}
	})
}

// FuzzRoundTrip checks compress->decompress identity on arbitrary input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xAB, 0xCD}, 3000))
	f.Fuzz(func(t *testing.T, src []byte) {
		comp := Compress(src)
		got, err := Decompress(comp, len(src))
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}
