package lzrw1

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round trip failed")
	}
}

func TestEmpty(t *testing.T) {
	roundTrip(t, nil)
	if Ratio(nil) != 1 {
		t.Fatal("empty ratio must be 1")
	}
}

func TestRepetitiveTextCompresses(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100))
	roundTrip(t, src)
	if r := Ratio(src); r > 0.3 {
		t.Fatalf("ratio = %.3f, repetitive text should compress well", r)
	}
}

func TestIncompressibleExpandsBoundedly(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	src := make([]byte, 4096)
	r.Read(src)
	roundTrip(t, src)
	// Worst case: 2 control bytes per 16 literals = 12.5% expansion.
	if ratio := Ratio(src); ratio > 1.13 {
		t.Fatalf("ratio = %.3f exceeds worst-case bound", ratio)
	}
}

func TestLongMatches(t *testing.T) {
	src := append(bytes.Repeat([]byte{0xAA}, 1000), bytes.Repeat([]byte{0xBB, 0xCC}, 500)...)
	roundTrip(t, src)
	if r := Ratio(src); r > 0.2 {
		t.Fatalf("ratio = %.3f", r)
	}
}

func TestOffsetLimit(t *testing.T) {
	// A repeat beyond the 4095-byte window must still round-trip (encoded
	// as literals or nearer matches).
	src := make([]byte, 10000)
	copy(src, []byte("unique-prefix-data-0123456789"))
	copy(src[8000:], []byte("unique-prefix-data-0123456789"))
	roundTrip(t, src)
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress([]byte{0xFF}, 10); err == nil {
		t.Fatal("truncated control word must error")
	}
	// Control word says copy, but no bytes follow.
	if _, err := Decompress([]byte{0x01, 0x00}, 10); err == nil {
		t.Fatal("truncated copy must error")
	}
	// Copy with offset 0 is invalid.
	if _, err := Decompress([]byte{0x01, 0x00, 0x00, 0x00}, 10); err == nil {
		t.Fatal("zero offset must error")
	}
	// Size mismatch.
	comp := Compress([]byte("abc"))
	if _, err := Decompress(comp, 99); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8192)
		src := make([]byte, n)
		// Mix of random and repetitive spans.
		i := 0
		for i < n {
			run := r.Intn(64) + 1
			if run > n-i {
				run = n - i
			}
			if r.Intn(2) == 0 {
				b := byte(r.Intn(256))
				for k := 0; k < run; k++ {
					src[i+k] = b
				}
			} else {
				for k := 0; k < run; k++ {
					src[i+k] = byte(r.Intn(8))
				}
			}
			i += run
		}
		comp := Compress(src)
		got, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
