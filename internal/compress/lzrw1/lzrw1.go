// Package lzrw1 implements Ross Williams' LZRW1 algorithm (Data
// Compression Conference, 1991): a single-pass LZ77 variant with a
// 4095-byte window, 16-item control groups, and a simple 4096-entry hash
// of 3-byte prefixes.
//
// The paper uses LZRW1 as the compression-ratio comparator for the
// procedure-based scheme of Kirovski et al.; Table 2's last column is the
// ratio of the whole .text section compressed as one unit, reproduced by
// this package.
package lzrw1

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	maxOffset = 4095
	minMatch  = 3
	maxMatch  = 18
	hashSize  = 4096
)

func hash(p []byte) uint32 {
	return (40543 * (uint32(p[0])<<8 ^ uint32(p[1])<<4 ^ uint32(p[2])) >> 4) & (hashSize - 1)
}

// Compress encodes src. The format is a sequence of groups: a 16-bit
// little-endian control word (bit i set = item i is a copy) followed by 16
// items, each either a literal byte or a 2-byte copy (4-bit length-3,
// 12-bit offset).
func Compress(src []byte) []byte {
	var out []byte
	var table [hashSize]int
	for i := range table {
		table[i] = -1
	}
	i := 0
	for i < len(src) {
		ctrlPos := len(out)
		out = append(out, 0, 0)
		var ctrl uint16
		for item := 0; item < 16 && i < len(src); item++ {
			if i+minMatch <= len(src) {
				h := hash(src[i:])
				cand := table[h]
				table[h] = i
				if cand >= 0 && i-cand <= maxOffset && cand+minMatch <= len(src) {
					length := 0
					max := len(src) - i
					if max > maxMatch {
						max = maxMatch
					}
					for length < max && src[cand+length] == src[i+length] {
						length++
					}
					if length >= minMatch {
						off := i - cand
						out = append(out,
							byte((length-minMatch)<<4|off>>8),
							byte(off))
						ctrl |= 1 << item
						i += length
						continue
					}
				}
			}
			out = append(out, src[i])
			i++
		}
		binary.LittleEndian.PutUint16(out[ctrlPos:], ctrl)
	}
	return out
}

// Decompress decodes a Compress output. size is the expected decompressed
// length (stored externally, as in the original tool).
func Decompress(data []byte, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	i := 0
	for i < len(data) && len(out) < size {
		if i+2 > len(data) {
			return nil, errors.New("lzrw1: truncated control word")
		}
		ctrl := binary.LittleEndian.Uint16(data[i:])
		i += 2
		for item := 0; item < 16 && len(out) < size; item++ {
			if ctrl&(1<<item) != 0 {
				if i+2 > len(data) {
					return nil, errors.New("lzrw1: truncated copy item")
				}
				length := int(data[i]>>4) + minMatch
				off := int(data[i]&0xF)<<8 | int(data[i+1])
				i += 2
				if off == 0 || off > len(out) {
					return nil, fmt.Errorf("lzrw1: bad offset %d at output %d", off, len(out))
				}
				for k := 0; k < length; k++ {
					out = append(out, out[len(out)-off])
				}
			} else {
				if i >= len(data) {
					return nil, errors.New("lzrw1: truncated literal")
				}
				out = append(out, data[i])
				i++
			}
		}
	}
	if len(out) != size {
		return nil, fmt.Errorf("lzrw1: decompressed %d bytes, want %d", len(out), size)
	}
	return out, nil
}

// Ratio returns len(Compress(src))/len(src) (Equation 1 of the paper).
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	return float64(len(Compress(src))) / float64(len(src))
}
