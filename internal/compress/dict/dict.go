// Package dict implements the paper's dictionary compression (§3.1):
// every unique 32-bit instruction word is placed in a dictionary and each
// instruction in the program is replaced by a fixed-width index into it.
//
// Fixed-width codewords are the scheme's key property: the compressed
// address of a missed cache line is a simple linear function of the native
// address, so no mapping table is needed (unlike CodePack).
package dict

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// IndexBits selects the codeword width. The paper uses 16-bit indices
// (64K-entry dictionary); 8-bit indices are provided as an ablation.
type IndexBits int

// Supported codeword widths.
const (
	Index16 IndexBits = 16
	Index8  IndexBits = 8
)

// MaxEntries returns the dictionary capacity for the width.
func (b IndexBits) MaxEntries() int { return 1 << b }

// ErrDictionaryFull reports that the program has more unique instructions
// than the index width can address. Callers fall back to selective
// compression (paper §3.1: "when the dictionary is filled the remainder
// of the program is left in the native code region").
type ErrDictionaryFull struct {
	Unique, Max int
}

func (e *ErrDictionaryFull) Error() string {
	return fmt.Sprintf("dict: %d unique instructions exceed the %d-entry dictionary",
		e.Unique, e.Max)
}

// Compressed is a dictionary-compressed code region.
type Compressed struct {
	Bits    IndexBits
	Dict    []uint32 // dictionary entries, most frequent first
	Indices []uint16 // one index per instruction
}

// Compress builds the dictionary for text (little-endian 32-bit
// instruction words) and encodes every instruction. Entries are assigned
// by descending frequency (ties broken by first appearance) so the hot
// dictionary lines stay dense in the D-cache during decompression.
func Compress(text []byte, bits IndexBits) (*Compressed, error) {
	if len(text)%4 != 0 {
		return nil, fmt.Errorf("dict: text length %d not a multiple of 4", len(text))
	}
	n := len(text) / 4
	words := make([]uint32, n)
	type stat struct {
		count int
		first int
	}
	freq := make(map[uint32]*stat, n/4)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(text[4*i:])
		words[i] = w
		if s := freq[w]; s != nil {
			s.count++
		} else {
			freq[w] = &stat{count: 1, first: i}
		}
	}
	if len(freq) > bits.MaxEntries() {
		return nil, &ErrDictionaryFull{Unique: len(freq), Max: bits.MaxEntries()}
	}
	dict := make([]uint32, 0, len(freq))
	for w := range freq {
		dict = append(dict, w)
	}
	sort.Slice(dict, func(i, j int) bool {
		a, b := freq[dict[i]], freq[dict[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	index := make(map[uint32]uint16, len(dict))
	for i, w := range dict {
		index[w] = uint16(i)
	}
	indices := make([]uint16, n)
	for i, w := range words {
		indices[i] = index[w]
	}
	return &Compressed{Bits: bits, Dict: dict, Indices: indices}, nil
}

// DictBytes serialises the dictionary as little-endian 32-bit words.
func (c *Compressed) DictBytes() []byte {
	out := make([]byte, 4*len(c.Dict))
	for i, w := range c.Dict {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// IndexBytes serialises the index stream: 2 bytes per instruction for
// Index16, 1 byte for Index8.
func (c *Compressed) IndexBytes() []byte {
	switch c.Bits {
	case Index8:
		out := make([]byte, len(c.Indices))
		for i, x := range c.Indices {
			out[i] = byte(x)
		}
		return out
	default:
		out := make([]byte, 2*len(c.Indices))
		for i, x := range c.Indices {
			binary.LittleEndian.PutUint16(out[2*i:], x)
		}
		return out
	}
}

// CompressedSize returns dictionary plus index bytes, the quantity the
// paper reports as "dictionary compressed size".
func (c *Compressed) CompressedSize() int {
	return len(c.DictBytes()) + len(c.IndexBytes())
}

// Ratio returns compressed size / original size (Equation 1).
func (c *Compressed) Ratio() float64 {
	if len(c.Indices) == 0 {
		return 1
	}
	return float64(c.CompressedSize()) / float64(4*len(c.Indices))
}

// Decompress is the reference (non-simulated) decoder used by tests: it
// must reproduce the original text exactly.
func (c *Compressed) Decompress() []byte {
	out := make([]byte, 4*len(c.Indices))
	for i, x := range c.Indices {
		binary.LittleEndian.PutUint32(out[4*i:], c.Dict[x])
	}
	return out
}

// ShiftFor returns the right-shift that maps a native byte offset to an
// index-stream byte offset (1 for 16-bit indices: offset/2; 2 for 8-bit).
// The software decompressor uses this to avoid a mapping table (§3.1).
func (c *Compressed) ShiftFor() uint {
	if c.Bits == Index8 {
		return 2
	}
	return 1
}
