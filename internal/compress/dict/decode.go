package dict

import (
	"encoding/binary"
	"fmt"
)

// DecompressBytes is the byte-level reference decoder: it reconstructs
// size bytes of text from the serialised dictionary and index stream,
// performing exactly the lookups the assembly handler does (index load,
// scale by 4, dictionary word fetch). It is the round-trip oracle the
// codec conformance suite runs against the serialised segments rather
// than the in-memory Compressed form.
func DecompressBytes(dictSeg, indices []byte, bits IndexBits, size int) ([]byte, error) {
	if bits == 0 {
		bits = Index16
	}
	if size%4 != 0 {
		return nil, fmt.Errorf("dict: decode size %d not word-aligned", size)
	}
	n := size / 4
	scale := 2
	if bits == Index8 {
		scale = 1
	}
	if len(indices) < n*scale {
		return nil, fmt.Errorf("dict: index stream has %d bytes, need %d", len(indices), n*scale)
	}
	out := make([]byte, size)
	for i := 0; i < n; i++ {
		var idx int
		if bits == Index8 {
			idx = int(indices[i])
		} else {
			idx = int(binary.LittleEndian.Uint16(indices[2*i:]))
		}
		if 4*idx+4 > len(dictSeg) {
			return nil, fmt.Errorf("dict: index %d exceeds dictionary (%d entries)", idx, len(dictSeg)/4)
		}
		copy(out[4*i:], dictSeg[4*idx:4*idx+4])
	}
	return out, nil
}
