package dict

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func wordsToBytes(ws []uint32) []byte {
	out := make([]byte, 4*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}

func TestCompressExample(t *testing.T) {
	// Figure 1 of the paper: repeated instructions share an index.
	text := wordsToBytes([]uint32{100, 200, 200, 100, 200})
	c, err := Compress(text, Index16)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Dict) != 2 {
		t.Fatalf("dict size = %d", len(c.Dict))
	}
	// 200 appears 3 times, 100 twice: 200 gets index 0.
	if c.Dict[0] != 200 || c.Dict[1] != 100 {
		t.Fatalf("dict order = %v", c.Dict)
	}
	want := []uint16{1, 0, 0, 1, 0}
	for i, x := range c.Indices {
		if x != want[i] {
			t.Fatalf("indices = %v", c.Indices)
		}
	}
	if got := c.Decompress(); !bytes.Equal(got, text) {
		t.Fatal("round trip failed")
	}
	// size: 5 indices * 2 + 2 entries * 4 = 18; original 20.
	if c.CompressedSize() != 18 {
		t.Fatalf("size = %d", c.CompressedSize())
	}
}

func TestRatioFormula(t *testing.T) {
	// ratio = 0.5 + unique/total for 16-bit indices.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		total := 2000 + r.Intn(3000)
		unique := 100 + r.Intn(500)
		words := make([]uint32, total)
		for i := range words {
			if i < unique {
				words[i] = uint32(i) | 0x10000000 // force distinct
			} else {
				words[i] = uint32(r.Intn(unique)) | 0x10000000
			}
		}
		c, err := Compress(wordsToBytes(words), Index16)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5 + float64(len(c.Dict))/float64(total)
		if got := c.Ratio(); got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("ratio = %f, want %f", got, want)
		}
	}
}

func TestDictionaryFull(t *testing.T) {
	words := make([]uint32, 300)
	for i := range words {
		words[i] = uint32(i)
	}
	_, err := Compress(wordsToBytes(words), Index8)
	var full *ErrDictionaryFull
	if !errorsAs(err, &full) {
		t.Fatalf("err = %v", err)
	}
	if full.Unique != 300 || full.Max != 256 {
		t.Fatalf("err detail = %+v", full)
	}
	if _, err := Compress(wordsToBytes(words), Index16); err != nil {
		t.Fatalf("16-bit should fit: %v", err)
	}
}

func errorsAs(err error, target **ErrDictionaryFull) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*ErrDictionaryFull)
	if ok {
		*target = e
	}
	return ok
}

func TestBadLength(t *testing.T) {
	if _, err := Compress([]byte{1, 2, 3}, Index16); err == nil {
		t.Fatal("expected length error")
	}
}

func TestIndex8Serialisation(t *testing.T) {
	words := []uint32{7, 7, 9, 7}
	c, err := Compress(wordsToBytes(words), Index8)
	if err != nil {
		t.Fatal(err)
	}
	ib := c.IndexBytes()
	if len(ib) != 4 {
		t.Fatalf("index bytes = %d", len(ib))
	}
	if c.ShiftFor() != 2 {
		t.Fatal("shift for 8-bit should be 2")
	}
	c16, _ := Compress(wordsToBytes(words), Index16)
	if c16.ShiftFor() != 1 {
		t.Fatal("shift for 16-bit should be 1")
	}
	if len(c16.IndexBytes()) != 8 {
		t.Fatal("16-bit index bytes wrong")
	}
}

func TestDictBytesLayout(t *testing.T) {
	words := []uint32{0xAABBCCDD, 0xAABBCCDD, 0x11223344}
	c, _ := Compress(wordsToBytes(words), Index16)
	db := c.DictBytes()
	if binary.LittleEndian.Uint32(db[0:]) != 0xAABBCCDD {
		t.Fatal("entry 0 must be the most frequent word")
	}
	if binary.LittleEndian.Uint32(db[4:]) != 0x11223344 {
		t.Fatal("entry 1 wrong")
	}
}

// Property: Decompress(Compress(x)) == x for arbitrary word streams with
// bounded uniqueness.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%2048 + 1
		words := make([]uint32, n)
		pool := r.Intn(200) + 1
		for i := range words {
			words[i] = uint32(r.Intn(pool)) * 2654435761
		}
		text := wordsToBytes(words)
		c, err := Compress(text, Index16)
		if err != nil {
			return false
		}
		return bytes.Equal(c.Decompress(), text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every index points into the dictionary and decodes to the
// original word at that position.
func TestQuickIndexValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint32, 500)
		for i := range words {
			words[i] = uint32(r.Intn(64))
		}
		c, err := Compress(wordsToBytes(words), Index8)
		if err != nil {
			return false
		}
		for i, x := range c.Indices {
			if int(x) >= len(c.Dict) || c.Dict[x] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
