package codepack

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func genText(r *rand.Rand, groups int, hiPool, loPool int) []byte {
	out := make([]byte, groups*GroupBytes)
	for i := 0; i < len(out)/4; i++ {
		hi := uint16(zipf(r, hiPool))
		lo := uint16(zipf(r, loPool))
		binary.LittleEndian.PutUint32(out[4*i:], uint32(hi)<<16|uint32(lo))
	}
	return out
}

// zipf draws a skewed value in [0,pool).
func zipf(r *rand.Rand, pool int) int {
	v := int(float64(pool) * r.Float64() * r.Float64() * r.Float64())
	if v >= pool {
		v = pool - 1
	}
	return v
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	text := genText(r, 64, 500, 3000)
	c, err := Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decompress(); !bytes.Equal(got, text) {
		t.Fatal("round trip failed")
	}
}

func TestBadLength(t *testing.T) {
	if _, err := Compress(make([]byte, 60)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCompressionBeatsNative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	text := genText(r, 256, 400, 2000)
	c, err := Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := c.Ratio(); ratio >= 0.9 {
		t.Fatalf("ratio = %.3f, expected substantial compression on skewed input", ratio)
	}
}

func TestDecodeGroupMatchesFullDecode(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	text := genText(r, 32, 300, 1000)
	c, err := Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	full := c.Decompress()
	for g := 0; g < len(c.LAT); g++ {
		words := c.DecodeGroup(g)
		for i, w := range words {
			off := (g*GroupInstrs + i) * 4
			if binary.LittleEndian.Uint32(full[off:]) != w {
				t.Fatalf("group %d word %d mismatch", g, i)
			}
		}
	}
}

func TestGroupsAreHalfwordAligned(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	text := genText(r, 64, 100, 100)
	c, _ := Compress(text)
	for g, off := range c.LAT {
		if off&1 != 0 {
			t.Fatalf("group %d offset %d not halfword aligned", g, off)
		}
		if g > 0 && off <= c.LAT[g-1] {
			t.Fatalf("LAT not strictly increasing at %d", g)
		}
	}
}

func TestTableBytesHeader(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	text := genText(r, 16, 50, 60)
	c, _ := Compress(text)
	tb := c.TableBytes()
	if len(tb) < hdrSize {
		t.Fatal("tables too small")
	}
	if binary.LittleEndian.Uint16(tb[hdrHi0:]) != c.hi.rank0 {
		t.Fatal("rank0 hi wrong")
	}
	if binary.LittleEndian.Uint16(tb[hdrLo0:]) != c.lo.rank0 {
		t.Fatal("rank0 lo wrong")
	}
	offHi1 := binary.LittleEndian.Uint32(tb[hdrHi1Off:])
	if int(offHi1) != hdrSize {
		t.Fatalf("hi1 offset = %d", offHi1)
	}
	// Entry 0 of hi table1 must be rank-1 value.
	if len(c.hi.table1) > 0 {
		if binary.LittleEndian.Uint16(tb[offHi1:]) != c.hi.table1[0] {
			t.Fatal("hi table1[0] wrong")
		}
	}
	// All six offsets are within bounds and word-aligned.
	for _, hoff := range []int{hdrHi1Off, hdrLo1Off, hdrHi2Off, hdrLo2Off, hdrHi3Off, hdrLo3Off} {
		v := binary.LittleEndian.Uint32(tb[hoff:])
		if v%4 != 0 || int(v) > len(tb) {
			t.Fatalf("table offset at %#x = %d invalid", hoff, v)
		}
	}
}

func TestBitStreamRoundTrip(t *testing.T) {
	w := &bitWriter{}
	vals := []struct {
		v uint32
		k uint
	}{{0b1, 1}, {0b101, 3}, {0xFFFF, 16}, {0, 2}, {0x7FF, 11}, {0b110, 3}, {0x1F, 5}, {0xAB, 8}}
	for _, x := range vals {
		w.writeBits(x.v, x.k)
	}
	w.alignHalf()
	r := &bitReader{data: w.bytes()}
	for i, x := range vals {
		if got := r.take(x.k); got != x.v {
			t.Fatalf("value %d: got %#x, want %#x", i, got, x.v)
		}
	}
}

// Property: arbitrary bit sequences survive the writer/reader pair.
func TestQuickBitStream(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200) + 1
		type item struct {
			v uint32
			k uint
		}
		items := make([]item, n)
		w := &bitWriter{}
		for i := range items {
			k := uint(r.Intn(16) + 1)
			v := r.Uint32() & (1<<k - 1)
			items[i] = item{v, k}
			w.writeBits(v, k)
		}
		w.alignHalf()
		rd := &bitReader{data: w.bytes()}
		for _, it := range items {
			if rd.take(it.k) != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: compress/decompress identity over varied distributions.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		groups := r.Intn(20) + 1
		text := genText(r, groups, r.Intn(5000)+1, r.Intn(70000)+1)
		c, err := Compress(text)
		if err != nil {
			return false
		}
		return bytes.Equal(c.Decompress(), text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllEscapePath(t *testing.T) {
	// Force heavy use of the raw-literal escape: all-unique halfwords.
	text := make([]byte, 4*GroupBytes)
	for i := 0; i < len(text)/4; i++ {
		binary.LittleEndian.PutUint32(text[4*i:], uint32(i)<<16|uint32(0xFFFF-i))
	}
	c, err := Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Decompress(), text) {
		t.Fatal("escape-heavy round trip failed")
	}
}
