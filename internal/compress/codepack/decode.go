package codepack

import (
	"encoding/binary"
	"fmt"
)

// DecompressBytes is the byte-level reference decoder: it reconstructs
// size bytes of text from the serialised table header, bit-stream and
// LAT, reading the tables through the same header offsets the assembly
// handler uses (it never sees the in-memory Compressed form). It is the
// round-trip oracle of the codec conformance suite.
func DecompressBytes(tables, stream, lat []byte, size int) ([]byte, error) {
	if size%GroupBytes != 0 {
		return nil, fmt.Errorf("codepack: decode size %d not a multiple of %d", size, GroupBytes)
	}
	if len(tables) < hdrSize {
		return nil, fmt.Errorf("codepack: table segment truncated (%d bytes)", len(tables))
	}
	groups := size / GroupBytes
	if len(lat) < 4*groups {
		return nil, fmt.Errorf("codepack: LAT has %d entries, need %d", len(lat)/4, groups)
	}
	entry := func(off uint32, idx uint32) (uint16, error) {
		p := int(off) + 2*int(idx)
		if p+2 > len(tables) {
			return 0, fmt.Errorf("codepack: table read at %d exceeds segment (%d bytes)", p, len(tables))
		}
		return binary.LittleEndian.Uint16(tables[p:]), nil
	}
	hi0 := binary.LittleEndian.Uint16(tables[hdrHi0:])
	lo0 := binary.LittleEndian.Uint16(tables[hdrLo0:])
	offs := [6]uint32{}
	for i := range offs {
		offs[i] = binary.LittleEndian.Uint32(tables[hdrHi1Off+4*i:])
	}
	// decodeHalf mirrors halfCoder.decode against the serialised tables:
	// t1/t2/t3 are the header-offset indices of this half's tables.
	decodeHalf := func(r *bitReader, rank0 uint16, t1, t2, t3 int) (uint16, error) {
		switch r.take(2) {
		case 0b00:
			return rank0, nil
		case 0b01:
			return entry(offs[t1], r.take(5))
		case 0b10:
			return entry(offs[t2], r.take(8))
		default:
			if r.take(1) == 0 {
				return entry(offs[t3], r.take(11))
			}
			return uint16(r.take(16)), nil
		}
	}
	out := make([]byte, size)
	r := &bitReader{data: stream}
	for g := 0; g < groups; g++ {
		off := binary.LittleEndian.Uint32(lat[4*g:])
		if int(off) >= len(stream) && groups > 0 {
			return nil, fmt.Errorf("codepack: LAT entry %d offset %d exceeds stream (%d bytes)", g, off, len(stream))
		}
		r.seek(int(off))
		for i := g * GroupInstrs; i < (g+1)*GroupInstrs; i++ {
			hi, err := decodeHalf(r, hi0, 0, 2, 4)
			if err != nil {
				return nil, err
			}
			lo, err := decodeHalf(r, lo0, 1, 3, 5)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(out[4*i:], uint32(hi)<<16|uint32(lo))
		}
		if r.overrun() {
			return nil, fmt.Errorf("codepack: group %d decode ran past the end of the stream", g)
		}
	}
	return out, nil
}
