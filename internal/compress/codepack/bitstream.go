package codepack

import "encoding/binary"

// The CodePack bit-stream is a sequence of 16-bit little-endian units;
// within each unit bits are consumed MSB-first. This exact format is what
// the assembly decompressor implements with lhu + shifts, so the Go
// encoder/decoder here and the handler in internal/decomp must agree.

type bitWriter struct {
	out []byte
	acc uint32
	n   uint
}

// writeBits appends the low k bits of v, MSB-first. k <= 16.
func (w *bitWriter) writeBits(v uint32, k uint) {
	w.acc = w.acc<<k | v&(1<<k-1)
	w.n += k
	for w.n >= 16 {
		h := uint16(w.acc >> (w.n - 16))
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], h)
		w.out = append(w.out, b[0], b[1])
		w.n -= 16
	}
}

// alignHalf pads with zero bits to the next 16-bit boundary.
func (w *bitWriter) alignHalf() {
	if w.n > 0 {
		w.writeBits(0, 16-w.n)
	}
}

func (w *bitWriter) bytes() []byte { return w.out }

type bitReader struct {
	data []byte
	pos  int
	buf  uint32 // MSB-justified valid bits
	n    uint
	over bool // a refill ran past the end of data (malformed stream)
}

// take consumes k bits (k <= 16), refilling 16 at a time from the stream.
// Reading past the end of data zero-fills and sets over, so a malformed
// stream surfaces as a flag instead of a panic.
func (r *bitReader) take(k uint) uint32 {
	for r.n < k {
		var half uint16
		if r.pos+2 <= len(r.data) {
			half = binary.LittleEndian.Uint16(r.data[r.pos:])
		} else {
			r.over = true
		}
		r.pos += 2
		r.buf |= uint32(half) << (16 - r.n)
		r.n += 16
	}
	v := r.buf >> (32 - k)
	r.buf <<= k
	r.n -= k
	return v
}

// seek positions the reader at byte offset off with an empty bit buffer.
func (r *bitReader) seek(off int) {
	r.pos = off
	r.buf = 0
	r.n = 0
}

// overrun reports whether any take ran past the end of the stream.
func (r *bitReader) overrun() bool { return r.over }
