// Package codepack implements a CodePack-style compressor (paper §3.2,
// after IBM's CodePack for embedded PowerPC): instructions are split into
// 16-bit halves, each half is encoded with a tagged variable-length code
// drawn from per-program frequency tables, instructions are packed into
// groups of 16 (two 32-byte cache lines), and a line-address table (LAT)
// maps each group to its bit-stream offset.
//
// Unlike the dictionary scheme, codewords are variable length, so decoding
// is serial within a group and the decompressor needs one extra memory
// access to read the LAT.
package codepack

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// GroupInstrs is the number of instructions per compression group: two
// 32-byte cache lines.
const GroupInstrs = 16

// GroupBytes is the native size of one group.
const GroupBytes = GroupInstrs * 4

// Class geometry: rank 0 gets the 2-bit tag alone; the next classes get
// growing index widths; everything else escapes to a raw 16-bit literal.
const (
	class1Size = 32   // tag 01 + 5 bits
	class2Size = 256  // tag 10 + 8 bits
	class3Size = 2048 // tag 110 + 11 bits
)

// Table header layout (serialised at the start of the .dictionary
// segment; all offsets are relative to the segment base). The assembly
// decompressor reads the six table offsets from the header.
const (
	hdrHi0    = 0x00 // rank-0 high halfword (2 bytes)
	hdrLo0    = 0x02 // rank-0 low halfword (2 bytes)
	hdrHi1Off = 0x04 // uint32 offsets of the six tables
	hdrLo1Off = 0x08
	hdrHi2Off = 0x0C
	hdrLo2Off = 0x10
	hdrHi3Off = 0x14
	hdrLo3Off = 0x18
	hdrSize   = 0x20
)

// halfCoder assigns ranks to the halfword values of one half (high/low).
type halfCoder struct {
	rank0  uint16
	table1 []uint16 // ranks 1..32
	table2 []uint16 // ranks 33..288
	table3 []uint16 // ranks 289..2336
	rank   map[uint16]int
}

func buildHalfCoder(values []uint16) *halfCoder {
	type stat struct {
		count int
		first int
	}
	freq := make(map[uint16]*stat)
	for i, v := range values {
		if s := freq[v]; s != nil {
			s.count++
		} else {
			freq[v] = &stat{count: 1, first: i}
		}
	}
	ordered := make([]uint16, 0, len(freq))
	for v := range freq {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := freq[ordered[i]], freq[ordered[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		return a.first < b.first
	})
	hc := &halfCoder{rank: make(map[uint16]int, len(ordered))}
	for r, v := range ordered {
		hc.rank[v] = r
		switch {
		case r == 0:
			hc.rank0 = v
		case r <= class1Size:
			hc.table1 = append(hc.table1, v)
		case r <= class1Size+class2Size:
			hc.table2 = append(hc.table2, v)
		case r <= class1Size+class2Size+class3Size:
			hc.table3 = append(hc.table3, v)
		}
	}
	if len(ordered) == 0 {
		hc.rank[0] = 0 // degenerate empty input
	}
	return hc
}

// encode appends the codeword for v to w.
func (hc *halfCoder) encode(w *bitWriter, v uint16) {
	r, ok := hc.rank[v]
	if !ok {
		panic("codepack: value not ranked")
	}
	switch {
	case r == 0:
		w.writeBits(0b00, 2)
	case r <= class1Size:
		w.writeBits(0b01, 2)
		w.writeBits(uint32(r-1), 5)
	case r <= class1Size+class2Size:
		w.writeBits(0b10, 2)
		w.writeBits(uint32(r-1-class1Size), 8)
	case r <= class1Size+class2Size+class3Size:
		w.writeBits(0b110, 3)
		w.writeBits(uint32(r-1-class1Size-class2Size), 11)
	default:
		w.writeBits(0b111, 3)
		w.writeBits(uint32(v), 16)
	}
}

// decode reads one halfword codeword from r.
func (hc *halfCoder) decode(r *bitReader) uint16 {
	switch r.take(2) {
	case 0b00:
		return hc.rank0
	case 0b01:
		return hc.table1[r.take(5)]
	case 0b10:
		return hc.table2[r.take(8)]
	default:
		if r.take(1) == 0 {
			return hc.table3[r.take(11)]
		}
		return uint16(r.take(16))
	}
}

// bits returns the codeword length for v, used for size estimation.
func (hc *halfCoder) bits(v uint16) int {
	r := hc.rank[v]
	switch {
	case r == 0:
		return 2
	case r <= class1Size:
		return 7
	case r <= class1Size+class2Size:
		return 10
	case r <= class1Size+class2Size+class3Size:
		return 14
	default:
		return 19
	}
}

// Compressed is a CodePack-compressed code region.
type Compressed struct {
	hi, lo *halfCoder
	Stream []byte   // bit-packed codewords, groups halfword-aligned
	LAT    []uint32 // byte offset of each group within Stream
	Instrs int
}

// Compress encodes text (little-endian instruction words, length a
// multiple of GroupBytes) into a CodePack stream.
func Compress(text []byte) (*Compressed, error) {
	if len(text)%GroupBytes != 0 {
		return nil, fmt.Errorf("codepack: text length %d not a multiple of %d", len(text), GroupBytes)
	}
	n := len(text) / 4
	his := make([]uint16, n)
	los := make([]uint16, n)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(text[4*i:])
		los[i] = uint16(w)
		his[i] = uint16(w >> 16)
	}
	c := &Compressed{
		hi:     buildHalfCoder(his),
		lo:     buildHalfCoder(los),
		Instrs: n,
	}
	w := &bitWriter{}
	for g := 0; g < n/GroupInstrs; g++ {
		c.LAT = append(c.LAT, uint32(len(w.bytes())))
		for i := g * GroupInstrs; i < (g+1)*GroupInstrs; i++ {
			c.hi.encode(w, his[i])
			c.lo.encode(w, los[i])
		}
		w.alignHalf()
	}
	c.Stream = w.bytes()
	return c, nil
}

// Decompress is the reference decoder: it must reproduce the original
// text exactly.
func (c *Compressed) Decompress() []byte {
	out := make([]byte, 4*c.Instrs)
	r := &bitReader{data: c.Stream}
	for g := 0; g < len(c.LAT); g++ {
		r.seek(int(c.LAT[g]))
		for i := g * GroupInstrs; i < (g+1)*GroupInstrs; i++ {
			hi := c.hi.decode(r)
			lo := c.lo.decode(r)
			binary.LittleEndian.PutUint32(out[4*i:], uint32(hi)<<16|uint32(lo))
		}
	}
	return out
}

// DecodeGroup decodes group g alone (what the handler does on a miss).
func (c *Compressed) DecodeGroup(g int) []uint32 {
	r := &bitReader{data: c.Stream}
	r.seek(int(c.LAT[g]))
	out := make([]uint32, GroupInstrs)
	for i := range out {
		hi := c.hi.decode(r)
		lo := c.lo.decode(r)
		out[i] = uint32(hi)<<16 | uint32(lo)
	}
	return out
}

// TableBytes serialises the decode tables with the header layout the
// assembly decompressor expects.
func (c *Compressed) TableBytes() []byte {
	put16 := func(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:], v) }
	put32 := func(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
	pad := func(n int) int { return (n + 3) &^ 3 }
	sz := hdrSize
	offHi1 := sz
	sz += pad(2 * len(c.hi.table1))
	offLo1 := sz
	sz += pad(2 * len(c.lo.table1))
	offHi2 := sz
	sz += pad(2 * len(c.hi.table2))
	offLo2 := sz
	sz += pad(2 * len(c.lo.table2))
	offHi3 := sz
	sz += pad(2 * len(c.hi.table3))
	offLo3 := sz
	sz += pad(2 * len(c.lo.table3))
	out := make([]byte, sz)
	put16(out, hdrHi0, c.hi.rank0)
	put16(out, hdrLo0, c.lo.rank0)
	put32(out, hdrHi1Off, uint32(offHi1))
	put32(out, hdrLo1Off, uint32(offLo1))
	put32(out, hdrHi2Off, uint32(offHi2))
	put32(out, hdrLo2Off, uint32(offLo2))
	put32(out, hdrHi3Off, uint32(offHi3))
	put32(out, hdrLo3Off, uint32(offLo3))
	write := func(off int, tab []uint16) {
		for i, v := range tab {
			put16(out, off+2*i, v)
		}
	}
	write(offHi1, c.hi.table1)
	write(offLo1, c.lo.table1)
	write(offHi2, c.hi.table2)
	write(offLo2, c.lo.table2)
	write(offHi3, c.hi.table3)
	write(offLo3, c.lo.table3)
	return out
}

// LATBytes serialises the line-address table as little-endian words.
func (c *Compressed) LATBytes() []byte {
	out := make([]byte, 4*len(c.LAT))
	for i, v := range c.LAT {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// CompressedSize returns stream + tables + LAT, the quantity the paper
// reports as "CodePack compressed size".
func (c *Compressed) CompressedSize() int {
	return len(c.Stream) + len(c.TableBytes()) + len(c.LATBytes())
}

// Ratio returns compressed size / original size (Equation 1).
func (c *Compressed) Ratio() float64 {
	if c.Instrs == 0 {
		return 1
	}
	return float64(c.CompressedSize()) / float64(4*c.Instrs)
}
