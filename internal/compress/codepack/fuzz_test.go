package codepack

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks compress->decompress identity on arbitrary
// instruction streams (padded to a whole group).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4}, GroupInstrs))
	f.Add(bytes.Repeat([]byte{0}, GroupBytes*3))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		text := raw[:len(raw)&^(GroupBytes-1)]
		c, err := Compress(text)
		if err != nil {
			t.Fatalf("aligned input rejected: %v", err)
		}
		if !bytes.Equal(c.Decompress(), text) {
			t.Fatal("round trip mismatch")
		}
	})
}
