package profile

import (
	"fmt"
	"sort"
)

// Merge combines per-shard profiles of the same image geometry into one
// aggregate, as if a single recorder had observed every run. It is
// associative and commutative — counter fields sum, ExcCyclesMax
// max-merges, line records union by address, procedure records align by
// name — so a sharded collection merges byte-identically to a serial
// one regardless of shard order or grouping (merge_test.go proves it).
//
// Identity fields (image, scheme) survive only when every part agrees;
// the manifest never does — a merged profile is not one run, so it
// carries no single run's provenance.
func Merge(parts ...*Profile) (*Profile, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("profile: merge of zero profiles")
	}
	first := parts[0]
	out := &Profile{
		SchemaVersion: first.SchemaVersion,
		Image:         first.Image,
		Scheme:        first.Scheme,
		LineBytes:     first.LineBytes,
	}
	lines := make(map[uint32]Cost)
	procs := make(map[string]*ProcCost)
	var procOrder []string
	for _, p := range parts {
		if p.SchemaVersion != first.SchemaVersion {
			return nil, fmt.Errorf("profile: merge of artifact schema %d with schema %d",
				first.SchemaVersion, p.SchemaVersion)
		}
		if p.LineBytes != first.LineBytes {
			return nil, fmt.Errorf("profile: merge of line geometry %dB with %dB",
				first.LineBytes, p.LineBytes)
		}
		if p.Image != out.Image {
			out.Image = ""
		}
		if p.Scheme != out.Scheme {
			out.Scheme = ""
		}
		out.Total.Add(p.Total)
		for _, l := range p.Lines {
			c := lines[l.Addr]
			c.Add(l.Cost)
			lines[l.Addr] = c
		}
		for _, pr := range p.Procs {
			b := procs[pr.Name]
			if b == nil {
				b = &ProcCost{Name: pr.Name, Addr: pr.Addr}
				procs[pr.Name] = b
				procOrder = append(procOrder, pr.Name)
			}
			b.Cost.Add(pr.Cost)
		}
	}
	addrs := make([]uint32, 0, len(lines))
	for a := range lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if c := lines[a]; !c.IsZero() {
			out.Lines = append(out.Lines, LineCost{Addr: a, Cost: c})
		}
	}
	// Procedure order: address ascending, name-tie ascending, with the
	// outside bucket last — the recorder's own order, independent of the
	// order shards arrived in.
	sort.SliceStable(procOrder, func(i, j int) bool {
		a, b := procs[procOrder[i]], procs[procOrder[j]]
		if (a.Name == OutsideName) != (b.Name == OutsideName) {
			return b.Name == OutsideName
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Name < b.Name
	})
	for _, name := range procOrder {
		pr := procs[name]
		if pr.Name == OutsideName && pr.Cost.IsZero() {
			continue
		}
		out.Procs = append(out.Procs, *pr)
	}
	return out, nil
}
