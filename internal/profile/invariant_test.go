package profile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/codec"
	_ "repro/internal/codec/all" // register every shipped codec
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/minic"
	"repro/internal/program"
)

// The attribution invariant, swept wide: for every testdata program ×
// every registered codec (plus native), the per-line and per-procedure
// attribution sums must be bit-identical to the whole-run cpu.Stats.
// This is the acceptance bar of the profiling layer — any counter the
// recorder fails to attribute, any commit that escapes the hook, any
// EPC mishandling in a handler shows up here as a hard failure.

// runProfiled executes im on a default machine with a Recorder attached
// and returns the recorder plus the machine.
func runProfiled(t *testing.T, name string, im *program.Image, cfgMod func(*cpu.Config)) (*Recorder, *cpu.CPU) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxInstr = 20_000_000
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	c, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(im)
	r.Attach(c)
	if err := c.Load(im); err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return r, c
}

// checkProfiled runs im under every registered codec plus native and
// enforces recorder Verify, artifact Check, and a JSON round-trip.
func checkProfiled(t *testing.T, name string, im *program.Image) {
	t.Helper()
	for _, scheme := range append([]string{"native"}, codec.Names()...) {
		run := im
		if scheme != "native" {
			res, err := core.Compress(im, core.Options{Scheme: program.Scheme(scheme)})
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", name, scheme, err)
			}
			run = res.Image
		}
		r, c := runProfiled(t, fmt.Sprintf("%s/%s", name, scheme), run, nil)
		if err := r.Verify(); err != nil {
			t.Errorf("%s/%s: %v", name, scheme, err)
			continue
		}
		p := r.Profile()
		p.SetIdentity(name, scheme)
		if err := p.Check(); err != nil {
			t.Errorf("%s/%s: artifact check: %v", name, scheme, err)
		}
		if p.Total.Cycles != c.Stats.Cycles {
			t.Errorf("%s/%s: profile total %d cycles, run has %d", name, scheme, p.Total.Cycles, c.Stats.Cycles)
		}
		if scheme != "native" && c.Stats.Exceptions > 0 && p.Total.DecompCycles() == 0 {
			t.Errorf("%s/%s: %d exceptions but zero attributed decompression cycles", name, scheme, c.Stats.Exceptions)
		}
		// Round-trip: serialize, reload (which re-Checks), compare.
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("%s/%s: write: %v", name, scheme, err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()), name)
		if err != nil {
			t.Fatalf("%s/%s: reload: %v", name, scheme, err)
		}
		var buf2 bytes.Buffer
		if err := got.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("%s/%s: JSON round-trip not byte-identical", name, scheme)
		}
	}
}

// TestAttributionInvariantExamples sweeps every example program in
// testdata — hand-written assembly and compiled MiniC — across every
// registered codec.
func TestAttributionInvariantExamples(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	asmFiles, err := filepath.Glob(filepath.Join(root, "*.s"))
	if err != nil || len(asmFiles) == 0 {
		t.Fatalf("no assembly examples found: %v", err)
	}
	mcFiles, err := filepath.Glob(filepath.Join(root, "minic", "*.mc"))
	if err != nil || len(mcFiles) == 0 {
		t.Fatalf("no MiniC examples found: %v", err)
	}
	for _, path := range append(asmFiles, mcFiles...) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var im *program.Image
			if strings.HasSuffix(path, ".mc") {
				im, err = minic.Compile(string(src))
			} else {
				im, err = asm.Assemble(string(src))
			}
			if err != nil {
				t.Fatal(err)
			}
			checkProfiled(t, filepath.Base(path), im)
		})
	}
}
