package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cpu"
)

// WriteJSON writes the profile artifact as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteCSV writes the profile as flat rows, one attribution bucket per
// line — trivially greppable and joinable across runs. The kind column
// distinguishes the three record classes (total, line, proc); keys
// reuse the JSON field names.
func (p *Profile) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("kind,name,addr,cycles,instrs,handler_instrs,imiss_native,imiss_compressed,exceptions,fetch_stalls,load_stalls,load_use_stalls,exc_cycles_total,exc_cycles_max,bus_reads,bus_bytes")
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		b.WriteString(",cpi_stack." + k.Key())
	}
	b.WriteByte('\n')
	row := func(kind, name string, addr uint32, c Cost) {
		fmt.Fprintf(&b, "%s,%s,0x%08x,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			kind, name, addr, c.Cycles, c.Instrs, c.HandlerInstrs,
			c.IMissNative, c.IMissCompressed, c.Exceptions,
			c.FetchStalls, c.LoadStalls, c.LoadUseStalls,
			c.ExcCyclesTotal, c.ExcCyclesMax, c.BusReads, c.BusBytes)
		for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
			fmt.Fprintf(&b, ",%d", c.CPIStack[k])
		}
		b.WriteByte('\n')
	}
	row("total", "", 0, p.Total)
	for _, l := range p.Lines {
		row("line", "", l.Addr, l.Cost)
	}
	for _, pr := range p.Procs {
		row("proc", pr.Name, pr.Addr, pr.Cost)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile serializes the profile by extension: .csv writes the flat
// row form, anything else the JSON artifact.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".csv" {
		err = p.WriteCSV(f)
	} else {
		err = p.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read parses a JSON profile artifact, refusing schema mismatches (both
// versions named) and revalidating the sum invariants, so no consumer
// ever trusts a corrupted or foreign artifact.
func Read(r io.Reader, name string) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: parse %s: %w", name, err)
	}
	if p.SchemaVersion != ArtifactSchema {
		return nil, fmt.Errorf("profile: %s has artifact schema %d, this build supports schema %d",
			name, p.SchemaVersion, ArtifactSchema)
	}
	if err := p.Check(); err != nil {
		return nil, fmt.Errorf("profile: %s: %w", name, err)
	}
	return &p, nil
}

// Load reads a JSON profile artifact from disk (see Read).
func Load(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, filepath.Base(path))
}
