package profile

import (
	"fmt"
	"sort"
	"strings"
)

// Text rendering of one profile's attribution tables — the human form
// behind `ccprof -procs/-lines` and `simrun -profile`. Both tables rank
// by cycles descending with deterministic tie-breaking (name for
// procedures, address for lines), so repeated runs print byte-identical
// output.

// FormatProcs renders the per-procedure attribution table: every
// procedure with nonzero cost, cycles descending (ties by name
// ascending), with its share of the run, instruction counts, I-cache
// misses and decompression overhead. top > 0 truncates the table,
// noting how many rows were dropped.
func (p *Profile) FormatProcs(top int) string {
	rows := make([]ProcCost, 0, len(p.Procs))
	for _, pr := range p.Procs {
		if !pr.Cost.IsZero() {
			rows = append(rows, pr)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %6s %12s %8s %12s %10s\n",
		"procedure", "cycles", "share", "instrs", "imisses", "decomp", "fetchstall")
	n := len(rows)
	if top > 0 && n > top {
		n = top
	}
	for _, r := range rows[:n] {
		fmt.Fprintf(&b, "%-20s %12d %5.1f%% %12d %8d %12d %10d\n",
			r.Name, r.Cycles, share(r.Cycles, p.Total.Cycles),
			r.Instrs+r.HandlerInstrs, r.IMissNative+r.IMissCompressed,
			r.DecompCycles(), r.FetchStalls)
	}
	if n < len(rows) {
		fmt.Fprintf(&b, "... (%d more procedures)\n", len(rows)-n)
	}
	return b.String()
}

// FormatLines renders the per-cache-line attribution table: cycles
// descending (ties by address ascending). top > 0 truncates.
func (p *Profile) FormatLines(top int) string {
	rows := make([]LineCost, len(p.Lines))
	copy(rows, p.Lines)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Addr < rows[j].Addr
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %6s %12s %8s %12s %10s\n",
		"line", "cycles", "share", "instrs", "imisses", "decomp", "fetchstall")
	n := len(rows)
	if top > 0 && n > top {
		n = top
	}
	for _, r := range rows[:n] {
		fmt.Fprintf(&b, "0x%08x   %12d %5.1f%% %12d %8d %12d %10d\n",
			r.Addr, r.Cycles, share(r.Cycles, p.Total.Cycles),
			r.Instrs+r.HandlerInstrs, r.IMissNative+r.IMissCompressed,
			r.DecompCycles(), r.FetchStalls)
	}
	if n < len(rows) {
		fmt.Fprintf(&b, "... (%d more lines)\n", len(rows)-n)
	}
	return b.String()
}

func share(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
