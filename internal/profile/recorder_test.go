package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
)

// Attribution edge cases: deep recursion (PC→procedure mapping under a
// churning call stack), jr jump tables (indirect control flow between
// procedures), swic invalidation mid-handler (handler cycles must land
// on the faulting line, never on handler RAM), and the determinism of
// zero-line omission.

func assemble(t *testing.T, src string) *program.Image {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return im
}

func compress(t *testing.T, im *program.Image, scheme string) *program.Image {
	t.Helper()
	res, err := core.Compress(im, core.Options{Scheme: program.Scheme(scheme)})
	if err != nil {
		t.Fatalf("compress %s: %v", scheme, err)
	}
	return res.Image
}

// TestRecursionAttribution runs the recursive N-queens example: every
// commit inside the recursive solver — at any stack depth, including
// the jal/jr glue — must map to the solve procedure, and the invariant
// must hold under compression too.
func TestRecursionAttribution(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "queens.s"))
	if err != nil {
		t.Fatal(err)
	}
	im := assemble(t, string(src))
	for _, scheme := range []string{"native", "dict"} {
		run := im
		if scheme != "native" {
			run = compress(t, im, scheme)
		}
		r, c := runProfiled(t, "queens/"+scheme, run, nil)
		if err := r.Verify(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		p := r.Profile()
		solve := p.ProcByName("solve")
		if solve == nil || solve.Instrs+solve.HandlerInstrs == 0 {
			t.Fatalf("%s: no cost attributed to the recursive procedure", scheme)
		}
		main := p.ProcByName("main")
		if main == nil || main.Instrs == 0 {
			t.Fatalf("%s: no cost attributed to main", scheme)
		}
		if out := p.ProcByName(OutsideName); out != nil {
			t.Errorf("%s: %d cycles attributed outside the procedure table", scheme, out.Cycles)
		}
		// The recursive workhorse dominates: solve retires far more than
		// main in a 6-queens search.
		if solve.Instrs < main.Instrs {
			t.Errorf("%s: solve retired %d instrs, main %d — mapping looks inverted",
				scheme, solve.Instrs, main.Instrs)
		}
		if scheme != "native" && c.Stats.Exceptions > 0 && solve.DecompCycles() == 0 {
			t.Errorf("%s: compressed run took %d exceptions but solve has no decompression cycles",
				scheme, c.Stats.Exceptions)
		}
	}
}

// jumpTableSrc dispatches through a .word table with jr: three target
// procedures are reached only via the computed jump, exercising the
// PC→procedure mapping on indirect control flow.
const jumpTableSrc = `
        .data
tab:    .word alpha, beta, gamma
        .text
        .proc main
main:   move  $s0, $zero             # accumulator
        move  $s1, $zero             # index
loop:   slti  $t0, $s1, 30
        beq   $t0, $zero, done
        # target = tab[index % 3]
        ori   $t1, $zero, 3
        divu  $s1, $t1
        mfhi  $t2
        sll   $t2, $t2, 2
        la    $t3, tab
        addu  $t3, $t3, $t2
        lw    $t4, 0($t3)
        jalr  $t4
        addu  $s0, $s0, $v0
        addiu $s1, $s1, 1
        b     loop
done:   move  $a0, $s0
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp

        .proc alpha
alpha:  ori   $v0, $zero, 1
        jr    $ra
        .endp

        .proc beta
beta:   ori   $v0, $zero, 2
        jr    $ra
        .endp

        .proc gamma
gamma:  ori   $v0, $zero, 3
        jr    $ra
        .endp
`

// TestJumpTableAttribution checks that commits reached only through a
// jr/jalr jump table land in the right procedure buckets.
func TestJumpTableAttribution(t *testing.T) {
	im := assemble(t, jumpTableSrc)
	for _, scheme := range []string{"native", "dict"} {
		run := im
		if scheme != "native" {
			run = compress(t, im, scheme)
		}
		r, _ := runProfiled(t, "jumptab/"+scheme, run, nil)
		if err := r.Verify(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		p := r.Profile()
		for _, name := range []string{"alpha", "beta", "gamma"} {
			pr := p.ProcByName(name)
			if pr == nil || pr.Instrs == 0 {
				t.Errorf("%s: jump-table target %s got no attributed commits", scheme, name)
			}
			// 30 dispatches over 3 targets: each runs exactly 10 times, two
			// user instructions per visit.
			if pr != nil && pr.Instrs != 20 {
				t.Errorf("%s: %s retired %d user instrs, want 20", scheme, name, pr.Instrs)
			}
		}
		if out := p.ProcByName(OutsideName); out != nil {
			t.Errorf("%s: %d cycles attributed outside the procedure table", scheme, out.Cycles)
		}
	}
}

// TestSwicMidHandlerAttribution forces heavy I-cache churn — a tiny
// direct-mapped cache under a compressed image, where handler swic
// stores and evictions interleave with in-flight service intervals —
// and checks that every attributed line is program code: handler-RAM
// addresses must never appear, because handler commits charge the
// faulting EPC line.
func TestSwicMidHandlerAttribution(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "queens.s"))
	if err != nil {
		t.Fatal(err)
	}
	im := compress(t, assemble(t, string(src)), "dict")
	small := func(cfg *cpu.Config) {
		cfg.ICache = cache.Config{SizeBytes: 128, LineBytes: 32, Ways: 1}
	}
	r, c := runProfiled(t, "queens/dict-small", im, small)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Exceptions < 10 {
		t.Fatalf("tiny cache took only %d decompression exceptions; churn not exercised", c.Stats.Exceptions)
	}
	p := r.Profile()
	for _, l := range p.Lines {
		if l.Addr >= program.HandlerBase {
			t.Errorf("line 0x%08x is in handler RAM: handler cycles must charge the faulting line", l.Addr)
		}
		if seg := im.SegmentAt(l.Addr); seg == nil || !program.IsCodeSeg(seg.Name) {
			t.Errorf("line 0x%08x attributed outside the image's code segments", l.Addr)
		}
	}
	// All decompression work must have been attributed somewhere.
	if p.Total.DecompCycles() == 0 || p.Total.CPIStack[cpu.CycleHandler] == 0 {
		t.Fatal("no handler cycles attributed despite exceptions")
	}
}

// TestZeroLinesOmittedDeterministically: lines never executed must not
// appear, line records must be strictly ascending, and two identical
// runs must serialize byte-identically.
func TestZeroLinesOmittedDeterministically(t *testing.T) {
	const deadSrc = `
        .text
        .proc main
main:   ori   $a0, $zero, 7
        ori   $v0, $zero, 1
        syscall
        move  $a0, $zero
        ori   $v0, $zero, 10
        syscall
        .endp

        .proc dead
dead:   addiu $t0, $t0, 1
        addiu $t0, $t0, 2
        addiu $t0, $t0, 3
        jr    $ra
        .endp
`
	im := assemble(t, deadSrc)
	serialize := func() []byte {
		r, _ := runProfiled(t, "dead", im, nil)
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
		p := r.Profile()
		p.SetIdentity("dead", "native")
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		dead := p.ProcByName("dead")
		if dead == nil {
			t.Fatal("zero-cost procedures must stay in the table")
		}
		if !dead.Cost.IsZero() {
			t.Fatalf("dead procedure accumulated cost: %+v", dead.Cost)
		}
		for i, l := range p.Lines {
			if l.Cost.IsZero() {
				t.Fatalf("zero-cost line 0x%08x serialized", l.Addr)
			}
			if i > 0 && p.Lines[i-1].Addr >= l.Addr {
				t.Fatalf("line records not strictly ascending at 0x%08x", l.Addr)
			}
		}
		return buf.Bytes()
	}
	a, b := serialize(), serialize()
	if !bytes.Equal(a, b) {
		t.Error("identical runs serialized differently")
	}
}

// TestVerifyCatchesDrift tampers with a bucket and expects Verify to
// name the drifted field.
func TestVerifyCatchesDrift(t *testing.T) {
	im := assemble(t, jumpTableSrc)
	r, _ := runProfiled(t, "drift", im, nil)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, lc := range r.lines {
		lc.Cycles++
		break
	}
	err := r.Verify()
	if err == nil {
		t.Fatal("tampered attribution passed Verify")
	}
	if want := "attribution invariant"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}
