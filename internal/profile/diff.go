package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// Differential profiling: align two profile artifacts by procedure and
// by cache line, and rank the cycle delta by component × location. This
// is how a regression gets *explained* rather than just flagged —
// `ccprof diff old.json new.json` for humans and CI, and ccbench gate
// names the top regressing procedures from the same engine.

// EntryDelta is one aligned record's change. A key present in only one
// profile is treated as zero cost on the other side, so additions and
// removals rank like any other delta.
type EntryDelta struct {
	// Name identifies the record: the procedure name, or "line 0x%08x"
	// for cache-line records.
	Name string `json:"name"`
	Addr uint32 `json:"addr"`

	OldCycles uint64 `json:"old_cycles"`
	NewCycles uint64 `json:"new_cycles"`
	// DeltaCycles = new - old; positive means the location got slower.
	DeltaCycles int64 `json:"delta_cycles"`

	OldDecomp   uint64 `json:"old_decomp,omitempty"`
	NewDecomp   uint64 `json:"new_decomp,omitempty"`
	DeltaDecomp int64  `json:"delta_decomp,omitempty"`

	DeltaInstrs     int64 `json:"delta_instrs,omitempty"`
	DeltaExceptions int64 `json:"delta_exceptions,omitempty"`
	DeltaBusBytes   int64 `json:"delta_bus_bytes,omitempty"`

	// Stack is the per-component cycle delta (new - old), keyed like the
	// CPI stack; it sums to DeltaCycles exactly.
	Stack map[string]int64 `json:"stack,omitempty"`
}

// Diff is the full differential between two profiles.
type Diff struct {
	SchemaVersion int `json:"schema_version"`

	OldImage  string `json:"old_image,omitempty"`
	NewImage  string `json:"new_image,omitempty"`
	OldScheme string `json:"old_scheme,omitempty"`
	NewScheme string `json:"new_scheme,omitempty"`

	OldCycles   uint64 `json:"old_cycles"`
	NewCycles   uint64 `json:"new_cycles"`
	DeltaCycles int64  `json:"delta_cycles"`

	// Procs and Lines are ranked by |delta cycles| descending, ties by
	// name (procedures) or address (lines) ascending — byte-stable.
	// Zero-delta records are omitted.
	Procs []EntryDelta `json:"procs"`
	Lines []EntryDelta `json:"lines"`
}

// entryDelta builds one aligned record's delta, nil if nothing changed.
func entryDelta(name string, addr uint32, old, new Cost) *EntryDelta {
	if old == new {
		return nil
	}
	d := &EntryDelta{
		Name: name, Addr: addr,
		OldCycles:   old.Cycles,
		NewCycles:   new.Cycles,
		DeltaCycles: int64(new.Cycles) - int64(old.Cycles),
		OldDecomp:   old.DecompCycles(),
		NewDecomp:   new.DecompCycles(),
		DeltaDecomp: int64(new.DecompCycles()) - int64(old.DecompCycles()),

		DeltaInstrs:     int64(new.Instrs+new.HandlerInstrs) - int64(old.Instrs+old.HandlerInstrs),
		DeltaExceptions: int64(new.Exceptions) - int64(old.Exceptions),
		DeltaBusBytes:   int64(new.BusBytes) - int64(old.BusBytes),
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		if dv := int64(new.CPIStack[k]) - int64(old.CPIStack[k]); dv != 0 {
			if d.Stack == nil {
				d.Stack = make(map[string]int64)
			}
			d.Stack[k.Key()] = dv
		}
	}
	return d
}

// rank orders deltas by |delta cycles| descending, ties by name
// ascending — the one deterministic order every consumer (text output,
// JSON, the gate's top-3) shares.
func rank(ds []EntryDelta) {
	sort.Slice(ds, func(i, j int) bool {
		ai, aj := abs64(ds[i].DeltaCycles), abs64(ds[j].DeltaCycles)
		if ai != aj {
			return ai > aj
		}
		if ds[i].Name != ds[j].Name {
			return ds[i].Name < ds[j].Name
		}
		return ds[i].Addr < ds[j].Addr
	})
}

func abs64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

// DiffProfiles aligns two profiles and returns the ranked differential.
// The artifacts must share the schema version and cache-line geometry;
// mismatches are refused naming both sides.
func DiffProfiles(old, new *Profile) (*Diff, error) {
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("profile: cannot diff artifact schema %d against schema %d",
			old.SchemaVersion, new.SchemaVersion)
	}
	if old.LineBytes != new.LineBytes {
		return nil, fmt.Errorf("profile: cannot diff line geometry %dB against %dB",
			old.LineBytes, new.LineBytes)
	}
	d := &Diff{
		SchemaVersion: old.SchemaVersion,
		OldImage:      old.Image, NewImage: new.Image,
		OldScheme: old.Scheme, NewScheme: new.Scheme,
		OldCycles:   old.Total.Cycles,
		NewCycles:   new.Total.Cycles,
		DeltaCycles: int64(new.Total.Cycles) - int64(old.Total.Cycles),
	}

	// Procedures align by name; one-sided names count as zero cost on
	// the missing side.
	oldProcs := make(map[string]Cost, len(old.Procs))
	for _, p := range old.Procs {
		oldProcs[p.Name] = p.Cost
	}
	seen := make(map[string]bool, len(new.Procs))
	for _, p := range new.Procs {
		seen[p.Name] = true
		if e := entryDelta(p.Name, p.Addr, oldProcs[p.Name], p.Cost); e != nil {
			d.Procs = append(d.Procs, *e)
		}
	}
	for _, p := range old.Procs {
		if !seen[p.Name] {
			if e := entryDelta(p.Name, p.Addr, p.Cost, Cost{}); e != nil {
				d.Procs = append(d.Procs, *e)
			}
		}
	}
	rank(d.Procs)

	// Lines align by base address.
	oldLines := make(map[uint32]Cost, len(old.Lines))
	for _, l := range old.Lines {
		oldLines[l.Addr] = l.Cost
	}
	seenLine := make(map[uint32]bool, len(new.Lines))
	for _, l := range new.Lines {
		seenLine[l.Addr] = true
		if e := entryDelta(fmt.Sprintf("line 0x%08x", l.Addr), l.Addr, oldLines[l.Addr], l.Cost); e != nil {
			d.Lines = append(d.Lines, *e)
		}
	}
	for _, l := range old.Lines {
		if !seenLine[l.Addr] {
			if e := entryDelta(fmt.Sprintf("line 0x%08x", l.Addr), l.Addr, l.Cost, Cost{}); e != nil {
				d.Lines = append(d.Lines, *e)
			}
		}
	}
	rank(d.Lines)
	return d, nil
}

// TopRegressing returns the at-most-n procedure records with positive
// cycle delta, largest first (ties by name ascending — inherited from
// the ranked order, so repeated calls are byte-identical).
func (d *Diff) TopRegressing(n int) []EntryDelta {
	var out []EntryDelta
	for _, e := range d.Procs {
		if e.DeltaCycles > 0 {
			out = append(out, e)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// FormatRegressions renders the top-n regressing procedures as a single
// deterministic clause for gate messages, e.g.
// "hot +12345 cycles (decomp +9876), warm +11 cycles". Empty when
// nothing regressed.
func (d *Diff) FormatRegressions(n int) string {
	top := d.TopRegressing(n)
	if len(top) == 0 {
		return ""
	}
	parts := make([]string, 0, len(top))
	for _, e := range top {
		p := fmt.Sprintf("%s %+d cycles", e.Name, e.DeltaCycles)
		if e.DeltaDecomp != 0 {
			p += fmt.Sprintf(" (decomp %+d)", e.DeltaDecomp)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ", ")
}

// NamedRegressions aligns two trajectory-sample attribution lists
// (the NamedCosts form perfwatch carries) by procedure name and renders
// the top-n positive cycle deltas in the FormatRegressions form — the
// engine behind `ccbench gate`'s "top regressing procedures" clause.
// One-sided names count as zero on the missing side; ranking and
// tie-breaking (delta descending, name ascending) match DiffProfiles,
// so the clause is byte-identical across runs. Empty when nothing
// regressed or either side carries no attribution.
func NamedRegressions(old, new []NamedCost, n int) string {
	oldBy := make(map[string]NamedCost, len(old))
	for _, c := range old {
		oldBy[c.Name] = c
	}
	var ds []EntryDelta
	add := func(o, nc NamedCost) {
		if o.Cycles == nc.Cycles && o.DecompCycles == nc.DecompCycles {
			return
		}
		ds = append(ds, EntryDelta{
			Name:        nc.Name,
			OldCycles:   o.Cycles,
			NewCycles:   nc.Cycles,
			DeltaCycles: int64(nc.Cycles) - int64(o.Cycles),
			OldDecomp:   o.DecompCycles,
			NewDecomp:   nc.DecompCycles,
			DeltaDecomp: int64(nc.DecompCycles) - int64(o.DecompCycles),
		})
	}
	seen := make(map[string]bool, len(new))
	for _, c := range new {
		seen[c.Name] = true
		add(oldBy[c.Name], c)
	}
	for _, c := range old {
		if !seen[c.Name] {
			add(c, NamedCost{Name: c.Name})
		}
	}
	rank(ds)
	return (&Diff{Procs: ds}).FormatRegressions(n)
}

// Format renders the differential as an aligned text table: totals,
// then the top procedure deltas with their dominant stack components,
// then the top line deltas.
func (d *Diff) Format(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles: %d -> %d (%+d", d.OldCycles, d.NewCycles, d.DeltaCycles)
	if d.OldCycles > 0 {
		fmt.Fprintf(&b, ", %+.3f%%", 100*float64(d.DeltaCycles)/float64(d.OldCycles))
	}
	b.WriteString(")\n")
	if d.OldScheme != d.NewScheme {
		fmt.Fprintf(&b, "scheme: %s -> %s\n", d.OldScheme, d.NewScheme)
	}
	section := func(title string, ds []EntryDelta) {
		if len(ds) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s (%d changed):\n", title, len(ds))
		n := len(ds)
		if top > 0 && n > top {
			n = top
		}
		for _, e := range ds[:n] {
			fmt.Fprintf(&b, "  %-24s %12d -> %12d  %+12d", e.Name, e.OldCycles, e.NewCycles, e.DeltaCycles)
			if e.DeltaDecomp != 0 {
				fmt.Fprintf(&b, "  decomp %+d", e.DeltaDecomp)
			}
			b.WriteByte('\n')
			if len(e.Stack) > 0 {
				keys := make([]string, 0, len(e.Stack))
				for k := range e.Stack {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				comps := make([]string, 0, len(keys))
				for _, k := range keys {
					comps = append(comps, fmt.Sprintf("%s %+d", k, e.Stack[k]))
				}
				fmt.Fprintf(&b, "    %s\n", strings.Join(comps, ", "))
			}
		}
		if n < len(ds) {
			fmt.Fprintf(&b, "  ... %d more\n", len(ds)-n)
		}
	}
	section("procedures", d.Procs)
	section("lines", d.Lines)
	return b.String()
}

// WriteJSON writes the differential as indented JSON (the form the CI
// perturbation check parses).
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
