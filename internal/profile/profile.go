// Package profile is the simulator's spatial cost-attribution layer:
// where telemetry answers "how much did the run cost" (the CPI stack)
// and "when" (windowed sampling), this package answers "where" — every
// cpu.Stats cycle component is tagged at its source site with the
// responsible fetch PC and aggregated live into per-cache-line and
// per-procedure cost records.
//
// The house invariant carries over from the timeline layer: the
// component-wise sum of all line records (and, independently, all
// procedure records) is bit-identical to the whole-run cpu.Stats.
// Recorder.Verify enforces it; ccprof, simrun -profile, the diffsim
// oracle and the batch tests all call it, so an attribution hole is a
// loud simulator bug, never a silent reporting gap.
//
// Attribution semantics follow the paper's cost model: cycles charged
// while the decompression handler services a miss — the entry flush,
// every handler instruction, loads of compressed bytes, the iret
// redirect — are attributed to the faulting cache line (the EPC), not
// to the handler RAM. A line's record therefore reads directly as "what
// this line's residency cost", which is exactly the input selective
// compression and placement need.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/obs"
)

// ArtifactSchema versions the serialized profile artifact. History:
//
//	1 — initial shape (PR 9): per-line and per-procedure Cost records,
//	    whole-run total, embedded provenance manifest.
//
// Additive changes (new fields) do not bump the version; renames and
// semantic changes do.
const ArtifactSchema = 1

// Cost is one attribution bucket: the full cpu.Stats decomposition
// (plus bus traffic) charged to a line or procedure. All fields are
// sums of per-commit deltas except ExcCyclesMax, which is the maximum
// single exception-service latency attributed to the bucket.
type Cost struct {
	Cycles        uint64 `json:"cycles"`
	Instrs        uint64 `json:"instrs"`
	HandlerInstrs uint64 `json:"handler_instrs"`

	IMissNative     uint64 `json:"imiss_native"`
	IMissCompressed uint64 `json:"imiss_compressed"`
	Exceptions      uint64 `json:"exceptions"`

	FetchStalls   uint64 `json:"fetch_stalls"`
	LoadStalls    uint64 `json:"load_stalls"`
	LoadUseStalls uint64 `json:"load_use_stalls"`

	ExcCyclesTotal uint64 `json:"exc_cycles_total"`
	ExcCyclesMax   uint64 `json:"exc_cycles_max"`

	// CPIStack attributes the bucket's cycles by component; summed over
	// all buckets it reproduces the whole-run stack bit for bit.
	CPIStack cpu.CPIStack `json:"cpi_stack"`

	BusReads uint64 `json:"bus_reads"`
	BusBytes uint64 `json:"bus_bytes"`
}

// Add accumulates o into c. Counter fields sum; ExcCyclesMax merges as
// a maximum (the max over disjoint interval sets is the max of their
// maxima, so Merge and the recorder share this one definition).
func (c *Cost) Add(o Cost) {
	c.Cycles += o.Cycles
	c.Instrs += o.Instrs
	c.HandlerInstrs += o.HandlerInstrs
	c.IMissNative += o.IMissNative
	c.IMissCompressed += o.IMissCompressed
	c.Exceptions += o.Exceptions
	c.FetchStalls += o.FetchStalls
	c.LoadStalls += o.LoadStalls
	c.LoadUseStalls += o.LoadUseStalls
	c.ExcCyclesTotal += o.ExcCyclesTotal
	if o.ExcCyclesMax > c.ExcCyclesMax {
		c.ExcCyclesMax = o.ExcCyclesMax
	}
	for k := range o.CPIStack {
		c.CPIStack[k] += o.CPIStack[k]
	}
	c.BusReads += o.BusReads
	c.BusBytes += o.BusBytes
}

// DecompCycles returns the cycles this bucket spent on decompression
// work: handler execution plus the exception-service mechanism. For a
// native run it is always zero; for a compressed run it is the paper's
// per-location decompression overhead.
func (c Cost) DecompCycles() uint64 {
	return c.CPIStack[cpu.CycleHandler] + c.CPIStack[cpu.CycleExcService]
}

// MissCost returns the cycles attributable to instruction delivery:
// decompression work plus hardware fetch stalls. This is the measured
// quantity FromProfile ranks procedures by.
func (c Cost) MissCost() uint64 {
	return c.DecompCycles() + c.CPIStack[cpu.CycleFetchStall]
}

// IsZero reports whether no event was ever attributed to the bucket.
func (c Cost) IsZero() bool { return c == Cost{} }

// LineCost is the cost record of one I-cache line (Addr is the line
// base address).
type LineCost struct {
	Addr uint32 `json:"addr"`
	Cost
}

// ProcCost is the cost record of one procedure. The pseudo-procedure
// OutsideName collects commits at addresses outside the image's
// procedure table (its Addr is 0).
type ProcCost struct {
	Name string `json:"name"`
	Addr uint32 `json:"addr"`
	Cost
}

// OutsideName labels the bucket for commits that fall outside every
// procedure of the image's table.
const OutsideName = "(outside)"

// Profile is one run's full spatial attribution: two independent exact
// decompositions of the whole-run cpu.Stats (by cache line and by
// procedure) plus the total they must sum to.
type Profile struct {
	SchemaVersion int    `json:"schema_version"`
	Image         string `json:"image,omitempty"`
	Scheme        string `json:"scheme,omitempty"`
	// LineBytes is the I-cache line size the line records are keyed by.
	LineBytes int `json:"line_bytes"`

	// Total is the whole-run cost (cpu.Stats plus bus counters); the
	// line records and the procedure records each sum to it exactly.
	Total Cost `json:"total"`

	// Lines holds every cache line that was ever charged a cycle,
	// ascending by address. Zero-cost lines are omitted — deterministic,
	// because a line either appears in the attribution map (>= 1 cycle:
	// every commit charges at least its base cycle) or it does not.
	Lines []LineCost `json:"lines"`

	// Procs holds every procedure of the image's table in address
	// order — including zero-cost ones, so profile consumers (placement,
	// diff alignment) always see the full table — plus, when anything
	// executed outside the table, a trailing OutsideName bucket.
	Procs []ProcCost `json:"procs"`

	// Manifest is the embedded run provenance (timing-free form), set by
	// SetManifest.
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// SetIdentity records what ran.
func (p *Profile) SetIdentity(image, scheme string) {
	p.Image, p.Scheme = image, scheme
}

// SetManifest embeds run provenance (always the timing-free Provenance
// copy, so identical runs serialize byte-identically).
func (p *Profile) SetManifest(m *obs.Manifest) {
	if m == nil {
		p.Manifest = nil
		return
	}
	p.Manifest = m.Provenance()
}

// ProcByName returns the named procedure's record, or nil.
func (p *Profile) ProcByName(name string) *ProcCost {
	for i := range p.Procs {
		if p.Procs[i].Name == name {
			return &p.Procs[i]
		}
	}
	return nil
}

// Check revalidates the artifact invariants from the serialized data
// alone: schema version, sorted strictly-ascending line addresses, no
// zero-cost line records, and both decompositions summing bit-identically
// to Total. Load calls it, so a corrupted or hand-edited profile is
// refused before any consumer trusts its numbers.
func (p *Profile) Check() error {
	if p.SchemaVersion != ArtifactSchema {
		return fmt.Errorf("profile: artifact schema %d, this build supports %d", p.SchemaVersion, ArtifactSchema)
	}
	if p.LineBytes <= 0 {
		return fmt.Errorf("profile: non-positive line_bytes %d", p.LineBytes)
	}
	var lineSum Cost
	for i, l := range p.Lines {
		if i > 0 && p.Lines[i-1].Addr >= l.Addr {
			return fmt.Errorf("profile: line records not strictly ascending at %#x", l.Addr)
		}
		if l.Cost.IsZero() {
			return fmt.Errorf("profile: zero-cost line record at %#x (zero lines must be omitted)", l.Addr)
		}
		lineSum.Add(l.Cost)
	}
	if err := checkSum("lines", lineSum, p.Total); err != nil {
		return err
	}
	var procSum Cost
	seen := make(map[string]bool, len(p.Procs))
	for _, pr := range p.Procs {
		if seen[pr.Name] {
			return fmt.Errorf("profile: duplicate procedure record %q", pr.Name)
		}
		seen[pr.Name] = true
		procSum.Add(pr.Cost)
	}
	return checkSum("procs", procSum, p.Total)
}

// checkSum compares one decomposition's component-wise sum against the
// whole-run total, naming the first field that drifts.
func checkSum(axis string, sum, total Cost) error {
	if sum == total {
		return nil
	}
	fields := []struct {
		name      string
		got, want uint64
	}{
		{"cycles", sum.Cycles, total.Cycles},
		{"instrs", sum.Instrs, total.Instrs},
		{"handler_instrs", sum.HandlerInstrs, total.HandlerInstrs},
		{"imiss_native", sum.IMissNative, total.IMissNative},
		{"imiss_compressed", sum.IMissCompressed, total.IMissCompressed},
		{"exceptions", sum.Exceptions, total.Exceptions},
		{"fetch_stalls", sum.FetchStalls, total.FetchStalls},
		{"load_stalls", sum.LoadStalls, total.LoadStalls},
		{"load_use_stalls", sum.LoadUseStalls, total.LoadUseStalls},
		{"exc_cycles_total", sum.ExcCyclesTotal, total.ExcCyclesTotal},
		{"exc_cycles_max", sum.ExcCyclesMax, total.ExcCyclesMax},
		{"bus_reads", sum.BusReads, total.BusReads},
		{"bus_bytes", sum.BusBytes, total.BusBytes},
	}
	for k := cpu.CycleKind(0); k < cpu.NumCycleKinds; k++ {
		fields = append(fields, struct {
			name      string
			got, want uint64
		}{"cpi_stack." + k.Key(), sum.CPIStack[k], total.CPIStack[k]})
	}
	for _, f := range fields {
		if f.got != f.want {
			return fmt.Errorf("profile: %s sum invariant: %s: records sum to %d, whole run has %d (diff %+d)",
				axis, f.name, f.got, f.want, int64(f.got)-int64(f.want))
		}
	}
	return fmt.Errorf("profile: %s sum invariant violated (unidentified field)", axis)
}

// NamedCost is the compact per-procedure form carried in perfwatch
// trajectory samples: just enough to rank and explain a cycle
// regression by procedure.
type NamedCost struct {
	Name         string `json:"name"`
	Cycles       uint64 `json:"cycles"`
	DecompCycles uint64 `json:"decomp_cycles,omitempty"`
}

// NamedCosts returns the profile's procedures with nonzero cost, in
// table (address) order — the trajectory-sample form.
func (p *Profile) NamedCosts() []NamedCost {
	var out []NamedCost
	for _, pr := range p.Procs {
		if pr.Cost.IsZero() {
			continue
		}
		out = append(out, NamedCost{Name: pr.Name, Cycles: pr.Cycles, DecompCycles: pr.DecompCycles()})
	}
	return out
}

// ProcShare is one row of the report summary: a procedure and its share
// of the run.
type ProcShare struct {
	Name         string  `json:"name"`
	Cycles       uint64  `json:"cycles"`
	Fraction     float64 `json:"fraction"` // of total cycles
	DecompCycles uint64  `json:"decomp_cycles"`
}

// Summary is the attribution stanza embedded in telemetry reports
// (report schema v4): counts plus the top procedures by cycles.
type Summary struct {
	LineBytes int         `json:"line_bytes"`
	Lines     int         `json:"lines"`
	Procs     int         `json:"procs"` // procedures with nonzero cost
	TopProcs  []ProcShare `json:"top_procs,omitempty"`
}

// Summarize digests the profile into the report stanza with at most
// top procedures, ranked by cycles descending (ties by name ascending,
// so the stanza is byte-stable).
func (p *Profile) Summarize(top int) *Summary {
	s := &Summary{LineBytes: p.LineBytes, Lines: len(p.Lines)}
	var ranked []ProcShare
	for _, pr := range p.Procs {
		if pr.Cost.IsZero() {
			continue
		}
		s.Procs++
		share := ProcShare{Name: pr.Name, Cycles: pr.Cycles, DecompCycles: pr.DecompCycles()}
		if p.Total.Cycles > 0 {
			share.Fraction = float64(pr.Cycles) / float64(p.Total.Cycles)
		}
		ranked = append(ranked, share)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Cycles != ranked[j].Cycles {
			return ranked[i].Cycles > ranked[j].Cycles
		}
		return ranked[i].Name < ranked[j].Name
	})
	if top > 0 && len(ranked) > top {
		ranked = ranked[:top]
	}
	s.TopProcs = ranked
	return s
}
