package profile

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func costOf(cycles uint64) Cost {
	var c Cost
	c.Cycles = cycles
	c.CPIStack[cpu.CycleUser] = cycles
	return c
}

func mkProfile(procs map[string]uint64) *Profile {
	p := &Profile{SchemaVersion: ArtifactSchema, LineBytes: 32}
	names := []string{"alpha", "beta", "gamma", "delta"}
	addr := uint32(0x00400000)
	for _, n := range names {
		cyc, ok := procs[n]
		if !ok {
			continue
		}
		p.Procs = append(p.Procs, ProcCost{Name: n, Addr: addr, Cost: costOf(cyc)})
		p.Total.Add(costOf(cyc))
		if cyc > 0 {
			p.Lines = append(p.Lines, LineCost{Addr: addr, Cost: costOf(cyc)})
		}
		addr += 0x40
	}
	return p
}

// TestDiffRanking: deltas rank by |cycle delta| descending; the
// regression list keeps only slower procedures.
func TestDiffRanking(t *testing.T) {
	old := mkProfile(map[string]uint64{"alpha": 100, "beta": 500, "gamma": 300})
	new := mkProfile(map[string]uint64{"alpha": 4100, "beta": 450, "gamma": 1300})
	d, err := DiffProfiles(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d.DeltaCycles != 4950 { // +4000 alpha, +1000 gamma, -50 beta
		t.Fatalf("delta cycles %d, want 4950", d.DeltaCycles)
	}
	wantOrder := []string{"alpha", "gamma", "beta"}
	if len(d.Procs) != len(wantOrder) {
		t.Fatalf("got %d proc deltas, want %d", len(d.Procs), len(wantOrder))
	}
	for i, w := range wantOrder {
		if d.Procs[i].Name != w {
			t.Errorf("rank %d: got %s, want %s", i, d.Procs[i].Name, w)
		}
	}
	top := d.TopRegressing(3)
	if len(top) != 2 || top[0].Name != "alpha" || top[1].Name != "gamma" {
		t.Errorf("regressions = %+v", top)
	}
	if s := d.FormatRegressions(3); !strings.Contains(s, "alpha +4000 cycles") {
		t.Errorf("format %q", s)
	}
	// Per-entry stack deltas must sum to the entry's cycle delta.
	for _, e := range d.Procs {
		var sum int64
		for _, v := range e.Stack {
			sum += v
		}
		if sum != e.DeltaCycles {
			t.Errorf("%s: stack sums to %d, delta is %d", e.Name, sum, e.DeltaCycles)
		}
	}
}

// TestDiffTiesSortByName: equal-magnitude deltas order by name, so diff
// output is byte-identical across runs.
func TestDiffTiesSortByName(t *testing.T) {
	old := mkProfile(map[string]uint64{"alpha": 100, "beta": 100, "gamma": 100, "delta": 100})
	new := mkProfile(map[string]uint64{"alpha": 200, "beta": 200, "gamma": 200, "delta": 200})
	d, err := DiffProfiles(old, new)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "delta", "gamma"} // all +100: name order
	for i, w := range want {
		if d.Procs[i].Name != w {
			t.Fatalf("tie order %v, want %v", d.Procs, want)
		}
	}
	if a, b := d.Format(10), d.Format(10); a != b {
		t.Error("Format not deterministic")
	}
}

// TestDiffOneSidedKeys: a procedure present on only one side diffs
// against zero (appears/disappears ranks like any delta).
func TestDiffOneSidedKeys(t *testing.T) {
	old := mkProfile(map[string]uint64{"alpha": 100})
	new := mkProfile(map[string]uint64{"alpha": 100, "beta": 900})
	d, err := DiffProfiles(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Procs) != 1 || d.Procs[0].Name != "beta" || d.Procs[0].DeltaCycles != 900 {
		t.Fatalf("procs = %+v", d.Procs)
	}
	back, err := DiffProfiles(new, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Procs) != 1 || back.Procs[0].DeltaCycles != -900 {
		t.Fatalf("reverse procs = %+v", back.Procs)
	}
}

// TestDiffRefusesMismatchedSchemas: both versions must be named.
func TestDiffRefusesMismatchedSchemas(t *testing.T) {
	old := mkProfile(map[string]uint64{"alpha": 1})
	new := mkProfile(map[string]uint64{"alpha": 2})
	new.SchemaVersion = ArtifactSchema + 3
	_, err := DiffProfiles(old, new)
	if err == nil {
		t.Fatal("mismatched schemas accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "schema 1") || !strings.Contains(msg, "schema 4") {
		t.Errorf("error %q does not name both schema versions", msg)
	}

	geo := mkProfile(map[string]uint64{"alpha": 2})
	geo.LineBytes = 64
	if _, err := DiffProfiles(old, geo); err == nil {
		t.Fatal("mismatched line geometry accepted")
	}
}
