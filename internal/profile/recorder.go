package profile

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/program"
)

// Recorder attributes every cpu.Stats delta to its source site, one
// committed instruction at a time, through the composable commit-trace
// hook (cpu.AttachTrace). It is a pure observer: attaching one changes
// no simulated state and no cycle count.
//
// Attribution rule: a user commit's delta is charged to the line and
// procedure of its own PC; a handler commit's delta is charged to the
// line and procedure of the *faulting* PC (the EPC, C0 register 4),
// which the exception machinery sets on entry and iret leaves intact.
// Because the decompression exception's entry flush is charged between
// commits — and therefore lands in the first handler commit's delta —
// every cycle of a miss's service ends up on the compressed line that
// missed, never on the handler RAM.
type Recorder struct {
	im        *program.Image
	c         *cpu.CPU
	lineBytes uint32

	lines    map[uint32]*Cost
	lastAddr uint32 // line-base memo: consecutive commits usually share a line
	lastLine *Cost

	// procCosts has one bucket per im.Procs entry, in table order, plus a
	// trailing bucket for commits outside every procedure.
	procCosts []Cost
	lastProc  int // procedure-index memo

	committed uint64
	prev      cpu.Stats
	prevReads uint64
	prevBytes uint64
}

// NewRecorder returns a recorder attributing to im's procedure table.
func NewRecorder(im *program.Image) *Recorder {
	return &Recorder{
		im:        im,
		lines:     make(map[uint32]*Cost),
		procCosts: make([]Cost, len(im.Procs)+1),
	}
}

// Attach hooks the recorder into the CPU's commit tracer. Call before
// cpu.Load/Run; composes with previously attached tracers.
func (r *Recorder) Attach(c *cpu.CPU) {
	r.c = c
	r.lineBytes = uint32(c.Cfg.ICache.LineBytes)
	c.AttachTrace(func(pc, instr uint32, handler bool) { r.observe(pc, handler) })
}

// observe charges one commit's Stats delta to the responsible site.
func (r *Recorder) observe(pc uint32, handler bool) {
	target := pc
	if handler {
		target = r.c.C0(4) // EPC: the faulting fetch this handler services
	}
	s := r.c.Stats
	reads, bytes := r.c.Mem.Reads, r.c.Mem.BytesRead
	d := Cost{
		Cycles:          s.Cycles - r.prev.Cycles,
		Instrs:          s.Instrs - r.prev.Instrs,
		HandlerInstrs:   s.HandlerInstrs - r.prev.HandlerInstrs,
		IMissNative:     s.IMissNative - r.prev.IMissNative,
		IMissCompressed: s.IMissCompressed - r.prev.IMissCompressed,
		Exceptions:      s.Exceptions - r.prev.Exceptions,
		FetchStalls:     s.FetchStalls - r.prev.FetchStalls,
		LoadStalls:      s.LoadStalls - r.prev.LoadStalls,
		LoadUseStalls:   s.LoadUseStalls - r.prev.LoadUseStalls,
		ExcCyclesTotal:  s.ExcCyclesTotal - r.prev.ExcCyclesTotal,
		BusReads:        reads - r.prevReads,
		BusBytes:        bytes - r.prevBytes,
	}
	for k := range d.CPIStack {
		d.CPIStack[k] = s.CPIStack[k] - r.prev.CPIStack[k]
	}
	// Exactly one service interval closes per iret commit, so this
	// commit's ExcCyclesTotal delta *is* that interval's latency; merging
	// deltas by max reproduces the whole-run ExcCyclesMax exactly.
	d.ExcCyclesMax = d.ExcCyclesTotal

	la := target &^ (r.lineBytes - 1)
	if r.lastLine == nil || la != r.lastAddr {
		lc := r.lines[la]
		if lc == nil {
			lc = new(Cost)
			r.lines[la] = lc
		}
		r.lastAddr, r.lastLine = la, lc
	}
	r.lastLine.Add(d)
	r.procCosts[r.procIndex(target)].Add(d)

	r.prev = s
	r.prevReads, r.prevBytes = reads, bytes
	r.committed++
}

// procIndex maps an address to its procedure bucket (len(im.Procs) for
// outside-table addresses), memoizing the last hit: commits cluster
// inside one procedure, so the common case is a bounds check.
func (r *Recorder) procIndex(addr uint32) int {
	procs := r.im.Procs
	if i := r.lastProc; i < len(procs) && procs[i].Contains(addr) {
		return i
	}
	i := sort.Search(len(procs), func(i int) bool {
		return procs[i].Addr+procs[i].Size > addr
	})
	if i < len(procs) && procs[i].Contains(addr) {
		r.lastProc = i
		return i
	}
	return len(procs)
}

// Committed returns the number of commits the recorder observed.
func (r *Recorder) Committed() uint64 { return r.committed }

// Profile materializes the attribution into the serializable artifact:
// nonzero lines ascending by address, the full procedure table in
// address order (plus the outside bucket when nonzero), and the
// whole-run total. Caller stamps identity/manifest.
func (r *Recorder) Profile() *Profile {
	p := &Profile{
		SchemaVersion: ArtifactSchema,
		LineBytes:     int(r.lineBytes),
		Total:         r.total(),
	}
	addrs := make([]uint32, 0, len(r.lines))
	for a := range r.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if c := *r.lines[a]; !c.IsZero() {
			p.Lines = append(p.Lines, LineCost{Addr: a, Cost: c})
		}
	}
	for i, pr := range r.im.Procs {
		p.Procs = append(p.Procs, ProcCost{Name: pr.Name, Addr: pr.Addr, Cost: r.procCosts[i]})
	}
	if out := r.procCosts[len(r.im.Procs)]; !out.IsZero() {
		p.Procs = append(p.Procs, ProcCost{Name: OutsideName, Cost: out})
	}
	return p
}

// total snapshots the whole-run cost from the machine's own counters
// (not from the attribution buckets — Verify compares the two).
func (r *Recorder) total() Cost {
	s := r.c.Stats
	return Cost{
		Cycles:          s.Cycles,
		Instrs:          s.Instrs,
		HandlerInstrs:   s.HandlerInstrs,
		IMissNative:     s.IMissNative,
		IMissCompressed: s.IMissCompressed,
		Exceptions:      s.Exceptions,
		FetchStalls:     s.FetchStalls,
		LoadStalls:      s.LoadStalls,
		LoadUseStalls:   s.LoadUseStalls,
		ExcCyclesTotal:  s.ExcCyclesTotal,
		ExcCyclesMax:    s.ExcCyclesMax,
		CPIStack:        s.CPIStack,
		BusReads:        r.c.Mem.Reads,
		BusBytes:        r.c.Mem.BytesRead,
	}
}

// Verify enforces the hard attribution invariant: the component-wise
// sum of all line buckets — and, independently, all procedure buckets —
// must be bit-identical to the whole-run cpu.Stats (and bus counters)
// of the attached machine. Any drift means a commit escaped attribution
// or a counter moved outside the commit hook's view — a simulator bug,
// never a property of the program. statscomplete proves this sums every
// cpu.Stats counter, so a new counter must be wired into Cost before
// cccheck passes.
//
//cccheck:stats(sum)
func (r *Recorder) Verify() error {
	if r.c == nil {
		return fmt.Errorf("profile: recorder never attached")
	}
	s := r.c.Stats
	var lineSum Cost
	for _, lc := range r.lines {
		lineSum.Add(*lc)
	}
	mismatch := func(axis, field string, got, want uint64) error {
		return fmt.Errorf("profile: attribution invariant: %s: %s buckets sum to %d, whole run has %d (diff %+d)",
			field, axis, got, want, int64(got)-int64(want))
	}
	check := func(axis string, sum Cost) error {
		switch {
		case sum.Cycles != s.Cycles:
			return mismatch(axis, "cycles", sum.Cycles, s.Cycles)
		case sum.Instrs != s.Instrs:
			return mismatch(axis, "instrs", sum.Instrs, s.Instrs)
		case sum.HandlerInstrs != s.HandlerInstrs:
			return mismatch(axis, "handler_instrs", sum.HandlerInstrs, s.HandlerInstrs)
		case sum.IMissNative != s.IMissNative:
			return mismatch(axis, "imiss_native", sum.IMissNative, s.IMissNative)
		case sum.IMissCompressed != s.IMissCompressed:
			return mismatch(axis, "imiss_compressed", sum.IMissCompressed, s.IMissCompressed)
		case sum.Exceptions != s.Exceptions:
			return mismatch(axis, "exceptions", sum.Exceptions, s.Exceptions)
		case sum.FetchStalls != s.FetchStalls:
			return mismatch(axis, "fetch_stalls", sum.FetchStalls, s.FetchStalls)
		case sum.LoadStalls != s.LoadStalls:
			return mismatch(axis, "load_stalls", sum.LoadStalls, s.LoadStalls)
		case sum.LoadUseStalls != s.LoadUseStalls:
			return mismatch(axis, "load_use_stalls", sum.LoadUseStalls, s.LoadUseStalls)
		case sum.ExcCyclesTotal != s.ExcCyclesTotal:
			return mismatch(axis, "exc_cycles_total", sum.ExcCyclesTotal, s.ExcCyclesTotal)
		case sum.ExcCyclesMax != s.ExcCyclesMax:
			return mismatch(axis, "exc_cycles_max", sum.ExcCyclesMax, s.ExcCyclesMax)
		case sum.BusReads != r.c.Mem.Reads:
			return mismatch(axis, "bus_reads", sum.BusReads, r.c.Mem.Reads)
		case sum.BusBytes != r.c.Mem.BytesRead:
			return mismatch(axis, "bus_bytes", sum.BusBytes, r.c.Mem.BytesRead)
		}
		for k := range sum.CPIStack {
			if sum.CPIStack[k] != s.CPIStack[k] {
				return mismatch(axis, "cpi_stack."+cpu.CycleKind(k).Key(), sum.CPIStack[k], s.CPIStack[k])
			}
		}
		return nil
	}
	if err := check("line", lineSum); err != nil {
		return err
	}
	var procSum Cost
	for i := range r.procCosts {
		procSum.Add(r.procCosts[i])
	}
	if err := check("procedure", procSum); err != nil {
		return err
	}
	// Commit coverage: the hook delivered exactly the commits the machine
	// retired.
	if r.committed != s.Instrs+s.HandlerInstrs {
		return fmt.Errorf("profile: recorder saw %d commits, machine retired %d",
			r.committed, s.Instrs+s.HandlerInstrs)
	}
	return nil
}
