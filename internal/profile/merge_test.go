package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// shardProfiles runs the same program under several machines (one per
// "shard") and returns the per-shard profiles — the sharded-collection
// shape perfwatch-style runners produce.
func shardProfiles(t *testing.T, n int) []*Profile {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sieve.s"))
	if err != nil {
		t.Fatal(err)
	}
	im := compress(t, assemble(t, string(src)), "dict")
	out := make([]*Profile, n)
	for i := range out {
		r, _ := runProfiled(t, "shard", im, nil)
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
		p := r.Profile()
		p.SetIdentity("sieve", "dict")
		out[i] = p
	}
	return out
}

func jsonOf(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeShardedEqualsSerial: merging shard profiles must be
// byte-identical regardless of order or grouping — Merge(a,b,c) ==
// Merge(c, Merge(b,a)) == Merge(Merge(a,b), c) on the wire.
func TestMergeShardedEqualsSerial(t *testing.T) {
	ps := shardProfiles(t, 3)
	serial, err := Merge(ps[0], ps[1], ps[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Check(); err != nil {
		t.Fatalf("merged profile fails its own invariants: %v", err)
	}
	want := jsonOf(t, serial)

	ab, err := Merge(ps[0], ps[1])
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Merge(ab, ps[2])
	if err != nil {
		t.Fatal(err)
	}
	if got := jsonOf(t, grouped); !bytes.Equal(got, want) {
		t.Error("grouped merge differs from serial merge")
	}

	ba, err := Merge(ps[1], ps[0])
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := Merge(ps[2], ba)
	if err != nil {
		t.Fatal(err)
	}
	if got := jsonOf(t, reordered); !bytes.Equal(got, want) {
		t.Error("reordered merge differs from serial merge")
	}

	// Sanity: the merge really is 3 shards' worth of work.
	if serial.Total.Cycles != 3*ps[0].Total.Cycles {
		t.Errorf("merged total %d cycles, want 3×%d", serial.Total.Cycles, ps[0].Total.Cycles)
	}
	if serial.Total.ExcCyclesMax != ps[0].Total.ExcCyclesMax {
		t.Errorf("merged exc max %d, shard has %d (max must not sum)",
			serial.Total.ExcCyclesMax, ps[0].Total.ExcCyclesMax)
	}
	if serial.Image != "sieve" || serial.Scheme != "dict" {
		t.Errorf("agreeing identity dropped: %q/%q", serial.Image, serial.Scheme)
	}
}

// TestMergeRefusesMixedGeometry: differing schema or line geometry is
// an error, not a silent mis-aggregation.
func TestMergeRefusesMixedGeometry(t *testing.T) {
	ps := shardProfiles(t, 2)
	bad := *ps[1]
	bad.LineBytes = ps[1].LineBytes * 2
	if _, err := Merge(ps[0], &bad); err == nil {
		t.Error("merge of mixed line geometry accepted")
	}
	bad = *ps[1]
	bad.SchemaVersion++
	if _, err := Merge(ps[0], &bad); err == nil {
		t.Error("merge of mixed schema versions accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("merge of nothing accepted")
	}
}
