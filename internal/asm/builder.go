// Package asm provides a two-layer assembler for the CLR32 ISA: a
// programmatic Builder used by the benchmark generator and the linker, and
// a text assembler (Assemble) used for the decompression handlers, the
// examples and the command-line tools.
package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

type section struct {
	name    string
	base    uint32
	buf     []byte
	virtual bool
	relocs  []program.Reloc
	fixups  []branchFixup
}

func (s *section) pc() uint32 { return s.base + uint32(len(s.buf)) }

type branchFixup struct {
	off  uint32 // byte offset of the branch word within the section
	sym  string
	line int // source line for error messages (0 for Builder use)
}

type procMark struct {
	name  string
	sec   string
	start uint32 // byte offset within section
	end   uint32 // filled by closeProc
	open  bool
}

// Builder assembles a program image instruction by instruction. All
// methods record errors internally; Finish reports the first one. This
// keeps emission call sites free of error plumbing, matching how the
// benchmark generator emits hundreds of thousands of instructions.
type Builder struct {
	sections []*section
	secByNm  map[string]*section
	cur      *section
	symbols  map[string]uint32
	symOrder []string
	procs    []procMark
	entrySym string
	errs     []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		secByNm: make(map[string]*section),
		symbols: make(map[string]uint32),
	}
}

func (b *Builder) errorf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Section selects (creating if needed) the named output section with the
// given base address. Virtual sections are address ranges that exist only
// in the I-cache and are not loaded into memory.
func (b *Builder) Section(name string, base uint32, virtual bool) {
	if s, ok := b.secByNm[name]; ok {
		if s.base != base {
			b.errorf("asm: section %s re-opened with different base %#x (was %#x)", name, base, s.base)
		}
		b.cur = s
		return
	}
	s := &section{name: name, base: base, virtual: virtual}
	b.secByNm[name] = s
	b.sections = append(b.sections, s)
	b.cur = s
}

func (b *Builder) need() *section {
	if b.cur == nil {
		b.Section(program.SegText, program.NativeBase, false)
	}
	return b.cur
}

// PC returns the address the next byte will be emitted at.
func (b *Builder) PC() uint32 { return b.need().pc() }

// Label defines sym at the current position. Redefinition at the same
// address is tolerated (".proc main" followed by "main:" is idiomatic);
// redefinition elsewhere is an error.
func (b *Builder) Label(sym string) {
	pc := b.need().pc()
	if old, dup := b.symbols[sym]; dup {
		if old != pc {
			b.errorf("asm: duplicate symbol %q", sym)
		}
		return
	}
	b.symbols[sym] = pc
	b.symOrder = append(b.symOrder, sym)
}

// Proc starts a new procedure named sym (also defining it as a label),
// closing any procedure currently open in this section.
func (b *Builder) Proc(sym string) {
	s := b.need()
	b.closeProc(s)
	b.Label(sym)
	b.procs = append(b.procs, procMark{name: sym, sec: s.name, start: uint32(len(s.buf)), open: true})
}

func (b *Builder) closeProc(s *section) {
	for i := len(b.procs) - 1; i >= 0; i-- {
		p := &b.procs[i]
		if p.open && p.sec == s.name {
			p.end = uint32(len(s.buf))
			p.open = false
			return
		}
	}
}

// EndProc closes the procedure currently open in the active section.
func (b *Builder) EndProc() { b.closeProc(b.need()) }

// SetEntry records the symbol execution starts at.
func (b *Builder) SetEntry(sym string) { b.entrySym = sym }

// Raw emits a pre-encoded instruction or data word.
func (b *Builder) Raw(w uint32) {
	s := b.need()
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], w)
	s.buf = append(s.buf, tmp[:]...)
}

func (b *Builder) spec(name string, want isa.Syntax) *isa.Spec {
	sp := isa.SpecByName[name]
	if sp == nil {
		b.errorf("asm: unknown mnemonic %q", name)
		return nil
	}
	if sp.Syntax != want {
		b.errorf("asm: mnemonic %q used with wrong operand shape", name)
		return nil
	}
	return sp
}

func checkReg(b *Builder, r int) {
	if r < 0 || r >= isa.NumRegs {
		b.errorf("asm: register %d out of range", r)
	}
}

// R3 emits a three-register ALU op: name rd, rs, rt.
func (b *Builder) R3(name string, rd, rs, rt int) {
	checkReg(b, rd)
	checkReg(b, rs)
	checkReg(b, rt)
	if sp := b.spec(name, isa.SynR3); sp != nil {
		b.Raw(isa.EncodeR(sp.Funct, rs, rt, rd, 0))
	}
}

// Shift emits name rd, rt, shamt.
func (b *Builder) Shift(name string, rd, rt int, shamt uint32) {
	checkReg(b, rd)
	checkReg(b, rt)
	if shamt > 31 {
		b.errorf("asm: shift amount %d out of range", shamt)
	}
	if sp := b.spec(name, isa.SynShift); sp != nil {
		b.Raw(isa.EncodeR(sp.Funct, 0, rt, rd, shamt))
	}
}

// ShiftV emits name rd, rt, rs (variable shift).
func (b *Builder) ShiftV(name string, rd, rt, rs int) {
	checkReg(b, rd)
	checkReg(b, rt)
	checkReg(b, rs)
	if sp := b.spec(name, isa.SynShiftV); sp != nil {
		b.Raw(isa.EncodeR(sp.Funct, rs, rt, rd, 0))
	}
}

// MulDiv emits mult/div-family: name rs, rt.
func (b *Builder) MulDiv(name string, rs, rt int) {
	checkReg(b, rs)
	checkReg(b, rt)
	if sp := b.spec(name, isa.SynMulDiv); sp != nil {
		b.Raw(isa.EncodeR(sp.Funct, rs, rt, 0, 0))
	}
}

// MoveFrom emits mfhi/mflo: name rd.
func (b *Builder) MoveFrom(name string, rd int) {
	checkReg(b, rd)
	if sp := b.spec(name, isa.SynMoveFrom); sp != nil {
		b.Raw(isa.EncodeR(sp.Funct, 0, 0, rd, 0))
	}
}

// Imm emits an immediate ALU op: name rt, rs, imm.
func (b *Builder) Imm(name string, rt, rs int, imm int32) {
	checkReg(b, rt)
	checkReg(b, rs)
	sp := b.spec(name, isa.SynImm)
	if sp == nil {
		return
	}
	if sp.Signed {
		if imm < -(1<<15) || imm >= 1<<15 {
			b.errorf("asm: %s immediate %d out of signed 16-bit range", name, imm)
		}
	} else if imm < 0 || imm >= 1<<16 {
		b.errorf("asm: %s immediate %d out of unsigned 16-bit range", name, imm)
	}
	b.Raw(isa.EncodeI(sp.Op, rs, rt, uint32(imm)&0xFFFF))
}

// Lui emits lui rt, imm.
func (b *Builder) Lui(rt int, imm uint32) {
	checkReg(b, rt)
	if imm >= 1<<16 {
		b.errorf("asm: lui immediate %#x out of range", imm)
	}
	b.Raw(isa.EncodeI(isa.OpLUI, 0, rt, imm))
}

// Mem emits a load/store: name rt, off(rs). Also accepts swic.
func (b *Builder) Mem(name string, rt int, off int32, rs int) {
	checkReg(b, rt)
	checkReg(b, rs)
	sp := b.spec(name, isa.SynMem)
	if sp == nil {
		return
	}
	if off < -(1<<15) || off >= 1<<15 {
		b.errorf("asm: %s offset %d out of range", name, off)
	}
	b.Raw(isa.EncodeI(sp.Op, rs, rt, uint32(off)&0xFFFF))
}

// Branch2 emits name rs, rt, sym (beq/bne).
func (b *Builder) Branch2(name string, rs, rt int, sym string) {
	checkReg(b, rs)
	checkReg(b, rt)
	sp := b.spec(name, isa.SynBranch2)
	if sp == nil {
		return
	}
	b.branchTo(isa.EncodeI(sp.Op, rs, rt, 0), sym)
}

// Branch1 emits name rs, sym (blez/bgtz/bltz/bgez).
func (b *Builder) Branch1(name string, rs int, sym string) {
	checkReg(b, rs)
	sp := b.spec(name, isa.SynBranch1)
	if sp == nil {
		return
	}
	b.branchTo(isa.EncodeI(sp.Op, rs, sp.Rt, 0), sym)
}

func (b *Builder) branchTo(w uint32, sym string) {
	s := b.need()
	s.fixups = append(s.fixups, branchFixup{off: uint32(len(s.buf)), sym: sym})
	b.Raw(w)
}

// Jump emits j/jal sym with a J26 relocation.
func (b *Builder) Jump(name string, sym string) {
	sp := b.spec(name, isa.SynJump)
	if sp == nil {
		return
	}
	s := b.need()
	s.relocs = append(s.relocs, program.Reloc{
		Kind: program.RelJ26, Seg: s.name, Off: uint32(len(s.buf)), Sym: sym})
	b.Raw(isa.EncodeJ(sp.Op, 0))
}

// JR emits jr rs.
func (b *Builder) JR(rs int) {
	checkReg(b, rs)
	b.Raw(isa.EncodeR(isa.FnJR, rs, 0, 0, 0))
}

// JALR emits jalr rd, rs.
func (b *Builder) JALR(rd, rs int) {
	checkReg(b, rd)
	checkReg(b, rs)
	b.Raw(isa.EncodeR(isa.FnJALR, rs, 0, rd, 0))
}

// Syscall emits syscall.
func (b *Builder) Syscall() { b.Raw(isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0)) }

// Break emits break.
func (b *Builder) Break() { b.Raw(isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)) }

// Nop emits the canonical no-op.
func (b *Builder) Nop() { b.Raw(isa.NOP) }

// Iret emits a return from exception.
func (b *Builder) Iret() { b.Raw(isa.EncodeI(isa.OpCOP0, isa.CopCO, 0, isa.FnIRET)) }

// Mfc0 emits mfc0 rt, $cN.
func (b *Builder) Mfc0(rt, c int) {
	checkReg(b, rt)
	if c < 0 || c >= isa.NumC0Regs {
		b.errorf("asm: system register %d out of range", c)
	}
	b.Raw(isa.EncodeI(isa.OpCOP0, isa.CopMFC0, rt, uint32(c)<<11))
}

// Mtc0 emits mtc0 rt, $cN.
func (b *Builder) Mtc0(rt, c int) {
	checkReg(b, rt)
	if c < 0 || c >= isa.NumC0Regs {
		b.errorf("asm: system register %d out of range", c)
	}
	b.Raw(isa.EncodeI(isa.OpCOP0, isa.CopMTC0, rt, uint32(c)<<11))
}

// Swic emits swic rt, off(rs): store word into the I-cache.
func (b *Builder) Swic(rt int, off int32, rs int) { b.Mem("swic", rt, off, rs) }

// LuiHi emits "lui rt, %hi(sym+add)" with a HI16 relocation.
func (b *Builder) LuiHi(rt int, sym string, add int32) {
	checkReg(b, rt)
	s := b.need()
	s.relocs = append(s.relocs, program.Reloc{
		Kind: program.RelHi16, Seg: s.name, Off: uint32(len(s.buf)), Sym: sym, Add: add})
	b.Raw(isa.EncodeI(isa.OpLUI, 0, rt, 0))
}

// ImmLo emits "op rt, rs, %lo(sym+add)" with a LO16 relocation; op must
// be an immediate ALU mnemonic (typically ori or addiu).
func (b *Builder) ImmLo(name string, rt, rs int, sym string, add int32) {
	checkReg(b, rt)
	checkReg(b, rs)
	sp := b.spec(name, isa.SynImm)
	if sp == nil {
		return
	}
	s := b.need()
	s.relocs = append(s.relocs, program.Reloc{
		Kind: program.RelLo16, Seg: s.name, Off: uint32(len(s.buf)), Sym: sym, Add: add})
	b.Raw(isa.EncodeI(sp.Op, rs, rt, 0))
}

// La materialises the address of sym+add into rt as lui+ori with HI16/LO16
// relocations, so it survives procedure re-layout.
func (b *Builder) La(rt int, sym string, add int32) {
	checkReg(b, rt)
	s := b.need()
	s.relocs = append(s.relocs,
		program.Reloc{Kind: program.RelHi16, Seg: s.name, Off: uint32(len(s.buf)), Sym: sym, Add: add},
		program.Reloc{Kind: program.RelLo16, Seg: s.name, Off: uint32(len(s.buf)) + 4, Sym: sym, Add: add})
	b.Raw(isa.EncodeI(isa.OpLUI, 0, rt, 0))
	b.Raw(isa.EncodeI(isa.OpORI, rt, rt, 0))
}

// Li loads the 32-bit constant v into rt using the shortest sequence.
func (b *Builder) Li(rt int, v uint32) {
	checkReg(b, rt)
	switch {
	case v < 1<<16:
		b.Raw(isa.EncodeI(isa.OpORI, isa.RegZero, rt, v))
	case int32(v) < 0 && int32(v) >= -(1<<15):
		b.Raw(isa.EncodeI(isa.OpADDIU, isa.RegZero, rt, v&0xFFFF))
	case v&0xFFFF == 0:
		b.Lui(rt, v>>16)
	default:
		b.Lui(rt, v>>16)
		b.Raw(isa.EncodeI(isa.OpORI, rt, rt, v&0xFFFF))
	}
}

// Move emits a register copy (addu rd, rs, $zero).
func (b *Builder) Move(rd, rs int) { b.R3("addu", rd, rs, isa.RegZero) }

// Word emits a 32-bit data word.
func (b *Builder) Word(v uint32) { b.Raw(v) }

// WordSym emits a 32-bit data word holding the address of sym+add.
func (b *Builder) WordSym(sym string, add int32) {
	s := b.need()
	s.relocs = append(s.relocs, program.Reloc{
		Kind: program.RelWord32, Seg: s.name, Off: uint32(len(s.buf)), Sym: sym, Add: add})
	b.Raw(0)
}

// Half emits a 16-bit data halfword.
func (b *Builder) Half(v uint16) {
	s := b.need()
	s.buf = append(s.buf, byte(v), byte(v>>8))
}

// Byte emits one data byte.
func (b *Builder) Byte(v byte) {
	s := b.need()
	s.buf = append(s.buf, v)
}

// Bytes emits raw data bytes.
func (b *Builder) Bytes(p []byte) {
	s := b.need()
	s.buf = append(s.buf, p...)
}

// Asciiz emits a NUL-terminated string.
func (b *Builder) Asciiz(t string) {
	b.Bytes([]byte(t))
	b.Byte(0)
}

// Space emits n zero bytes.
func (b *Builder) Space(n int) {
	if n < 0 {
		b.errorf("asm: negative .space %d", n)
		return
	}
	s := b.need()
	s.buf = append(s.buf, make([]byte, n)...)
}

// Align pads the current section to an n-byte boundary (n a power of two).
func (b *Builder) Align(n int) {
	if n <= 0 || n&(n-1) != 0 {
		b.errorf("asm: .align %d not a power of two", n)
		return
	}
	s := b.need()
	for len(s.buf)%n != 0 {
		s.buf = append(s.buf, 0)
	}
}

// Finish resolves branches and relocations and returns the linked image.
func (b *Builder) Finish() (*program.Image, error) {
	for _, s := range b.sections {
		b.closeProc(s)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	im := &program.Image{Symbols: b.symbols}
	for _, s := range b.sections {
		im.Segments = append(im.Segments, &program.Segment{
			Name: s.name, Base: s.base, Data: s.buf, Virtual: s.virtual})
		im.Relocs = append(im.Relocs, s.relocs...)
	}
	// Resolve local branch fixups.
	for _, s := range b.sections {
		seg := im.Segment(s.name)
		for _, f := range s.fixups {
			target, ok := b.symbols[f.sym]
			if !ok {
				return nil, fmt.Errorf("asm: line %d: undefined branch target %q", f.line, f.sym)
			}
			site := s.base + f.off
			field, err := isa.EncodeBranchOff(site, target)
			if err != nil {
				return nil, fmt.Errorf("asm: line %d: %v", f.line, err)
			}
			seg.SetWord(site, seg.Word(site)|field)
		}
	}
	if err := program.ApplyRelocs(im); err != nil {
		return nil, err
	}
	// Build the procedure table.
	for _, p := range b.procs {
		sec := b.secByNm[p.sec]
		im.Procs = append(im.Procs, program.Procedure{
			Name: p.name, Addr: sec.base + p.start, Size: p.end - p.start})
	}
	sort.Slice(im.Procs, func(i, j int) bool { return im.Procs[i].Addr < im.Procs[j].Addr })
	if b.entrySym != "" {
		addr, ok := b.symbols[b.entrySym]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry symbol %q", b.entrySym)
		}
		im.Entry = addr
	} else if len(im.Procs) > 0 {
		im.Entry = im.Procs[0].Addr
	} else if t := im.Segment(program.SegText); t != nil {
		im.Entry = t.Base
	} else if len(im.Segments) > 0 {
		im.Entry = im.Segments[0].Base
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}
