package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Assemble translates CLR32 assembly text into a linked image. The syntax
// is SPIM-like; see the package tests and internal/decomp for examples.
func Assemble(src string) (*program.Image, error) {
	p := &parser{b: NewBuilder(), equs: make(map[string]int64)}
	for i, line := range strings.Split(src, "\n") {
		p.line = i + 1
		if err := p.doLine(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", p.line, err)
		}
	}
	return p.b.Finish()
}

type parser struct {
	b    *Builder
	line int
	equs map[string]int64
}

func (p *parser) doLine(line string) error {
	// Strip comments (# or ;) outside string literals.
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#', ';':
			if !inStr {
				line = line[:i]
				i = len(line)
			}
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			break // a ':' inside an operand — not a label
		}
		p.b.Label(name)
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}
	// Split mnemonic / operands.
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mn = strings.ToLower(mn)
	if strings.HasPrefix(mn, ".") {
		return p.directive(mn, rest)
	}
	return p.instruction(mn, splitOperands(rest))
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	inChar := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inChar = !inChar
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inChar {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (p *parser) directive(mn, rest string) error {
	ops := splitOperands(rest)
	switch mn {
	case ".text":
		base := uint32(program.NativeBase)
		if len(ops) == 1 && ops[0] != "" {
			v, err := p.int(ops[0])
			if err != nil {
				return err
			}
			base = uint32(v)
		}
		p.b.Section(program.SegText, base, false)
	case ".data":
		base := uint32(program.DataBase)
		if len(ops) == 1 && ops[0] != "" {
			v, err := p.int(ops[0])
			if err != nil {
				return err
			}
			base = uint32(v)
		}
		p.b.Section(program.SegData, base, false)
	case ".section":
		if len(ops) < 2 {
			return fmt.Errorf(".section needs name and base")
		}
		v, err := p.int(ops[1])
		if err != nil {
			return err
		}
		virtual := len(ops) >= 3 && ops[2] == "virtual"
		p.b.Section(ops[0], uint32(v), virtual)
	case ".proc":
		if len(ops) != 1 {
			return fmt.Errorf(".proc needs a name")
		}
		p.b.Proc(ops[0])
	case ".endp":
		p.b.EndProc()
	case ".entry":
		if len(ops) != 1 {
			return fmt.Errorf(".entry needs a symbol")
		}
		p.b.SetEntry(ops[0])
	case ".equ", ".set":
		if len(ops) != 2 {
			return fmt.Errorf(".equ needs name, value")
		}
		if !isIdent(ops[0]) {
			return fmt.Errorf("bad .equ name %q", ops[0])
		}
		v, err := p.int(ops[1])
		if err != nil {
			return err
		}
		p.equs[ops[0]] = v
	case ".globl", ".global":
		// accepted for compatibility; symbols are always global
	case ".word":
		for _, o := range ops {
			if v, err := p.int(o); err == nil {
				p.b.Word(uint32(v))
			} else if isIdent(o) {
				p.b.WordSym(o, 0)
			} else {
				return fmt.Errorf("bad .word operand %q", o)
			}
		}
	case ".half":
		for _, o := range ops {
			v, err := p.int(o)
			if err != nil {
				return err
			}
			p.b.Half(uint16(v))
		}
	case ".byte":
		for _, o := range ops {
			v, err := p.int(o)
			if err != nil {
				return err
			}
			p.b.Byte(byte(v))
		}
	case ".asciiz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("bad .asciiz string: %v", err)
		}
		p.b.Asciiz(s)
	case ".space":
		v, err := p.int(rest)
		if err != nil {
			return err
		}
		p.b.Space(int(v))
	case ".align":
		v, err := p.int(rest)
		if err != nil {
			return err
		}
		p.b.Align(int(v))
	default:
		return fmt.Errorf("unknown directive %q", mn)
	}
	return nil
}

func (p *parser) instruction(mn string, ops []string) error {
	// Pseudo-instructions first.
	switch mn {
	case "nop":
		p.b.Nop()
		return nil
	case "move":
		rd, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		rs, err := parseReg(at(ops, 1))
		if err != nil {
			return err
		}
		p.b.Move(rd, rs)
		return nil
	case "li":
		rt, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		v, err := p.int(at(ops, 1))
		if err != nil {
			return err
		}
		p.b.Li(rt, uint32(v))
		return nil
	case "la":
		rt, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		sym, add, err := parseSymAdd(at(ops, 1))
		if err != nil {
			return err
		}
		p.b.La(rt, sym, add)
		return nil
	case "b":
		p.b.Branch2("beq", isa.RegZero, isa.RegZero, at(ops, 0))
		return nil
	case "beqz":
		rs, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		p.b.Branch2("beq", rs, isa.RegZero, at(ops, 1))
		return nil
	case "bnez":
		rs, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		p.b.Branch2("bne", rs, isa.RegZero, at(ops, 1))
		return nil
	case "jalr":
		// Allow one-operand form: jalr rs == jalr $ra, rs.
		if len(ops) == 1 {
			rs, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			p.b.JALR(isa.RegRA, rs)
			return nil
		}
	}
	sp := isa.SpecByName[mn]
	if sp == nil {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	switch sp.Syntax {
	case isa.SynR3:
		rd, rs, rt, err := threeRegs(ops)
		if err != nil {
			return err
		}
		p.b.R3(mn, rd, rs, rt)
	case isa.SynShift:
		if len(ops) != 3 {
			return fmt.Errorf("%s needs rd, rt, shamt", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rt, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		sh, err := p.int(ops[2])
		if err != nil {
			return err
		}
		p.b.Shift(mn, rd, rt, uint32(sh))
	case isa.SynShiftV:
		rd, rt, rs, err := threeRegs(ops)
		if err != nil {
			return err
		}
		p.b.ShiftV(mn, rd, rt, rs)
	case isa.SynMulDiv:
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rs, rt", mn)
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rt, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.b.MulDiv(mn, rs, rt)
	case isa.SynMoveFrom:
		rd, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		p.b.MoveFrom(mn, rd)
	case isa.SynJR:
		rs, err := parseReg(at(ops, 0))
		if err != nil {
			return err
		}
		p.b.JR(rs)
	case isa.SynJALR:
		if len(ops) != 2 {
			return fmt.Errorf("jalr needs rd, rs")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.b.JALR(rd, rs)
	case isa.SynImm:
		if len(ops) != 3 {
			return fmt.Errorf("%s needs rt, rs, imm", mn)
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		if sym, add, ok := parseLoHi(ops[2], "%lo"); ok {
			p.b.ImmLo(mn, rt, rs, sym, add)
			return nil
		}
		v, err := p.int(ops[2])
		if err != nil {
			return err
		}
		p.b.Imm(mn, rt, rs, int32(v))
	case isa.SynLUI:
		if len(ops) != 2 {
			return fmt.Errorf("lui needs rt, imm")
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if sym, add, ok := parseLoHi(ops[1], "%hi"); ok {
			p.b.LuiHi(rt, sym, add)
			return nil
		}
		v, err := p.int(ops[1])
		if err != nil {
			return err
		}
		p.b.Lui(rt, uint32(v))
	case isa.SynBranch2:
		if len(ops) != 3 {
			return fmt.Errorf("%s needs rs, rt, label", mn)
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rt, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		p.b.Branch2(mn, rs, rt, ops[2])
	case isa.SynBranch1:
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rs, label", mn)
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		p.b.Branch1(mn, rs, ops[1])
	case isa.SynJump:
		p.b.Jump(mn, at(ops, 0))
	case isa.SynMem:
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rt, off(rs)", mn)
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		off, rs, err := p.memOperand(ops[1])
		if err != nil {
			return err
		}
		p.b.Mem(mn, rt, off, rs)
	case isa.SynCop:
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rt, $cN", mn)
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		c, err := parseC0(ops[1])
		if err != nil {
			return err
		}
		if mn == "mfc0" {
			p.b.Mfc0(rt, c)
		} else {
			p.b.Mtc0(rt, c)
		}
	case isa.SynNone:
		switch mn {
		case "syscall":
			p.b.Syscall()
		case "break":
			p.b.Break()
		case "iret":
			p.b.Iret()
		}
	default:
		return fmt.Errorf("unhandled syntax for %q", mn)
	}
	return nil
}

func at(ops []string, i int) string {
	if i < len(ops) {
		return ops[i]
	}
	return ""
}

func threeRegs(ops []string) (a, b, c int, err error) {
	if len(ops) != 3 {
		return 0, 0, 0, fmt.Errorf("need three registers")
	}
	if a, err = parseReg(ops[0]); err != nil {
		return
	}
	if b, err = parseReg(ops[1]); err != nil {
		return
	}
	c, err = parseReg(ops[2])
	return
}

var regByName = func() map[string]int {
	m := make(map[string]int, isa.NumRegs*2)
	for i := 0; i < isa.NumRegs; i++ {
		m[isa.RegName(i)] = i
		m[fmt.Sprintf("$%d", i)] = i
	}
	m["$s8"] = isa.RegFP
	return m
}()

func parseReg(s string) (int, error) {
	if r, ok := regByName[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseC0(s string) (int, error) {
	s = strings.ToLower(strings.TrimPrefix(s, "$"))
	for i := 0; i < isa.NumC0Regs; i++ {
		if s == isa.C0Name(i) || s == strings.TrimPrefix(isa.C0Name(i), "c0_") {
			return i, nil
		}
	}
	if strings.HasPrefix(s, "c") {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < isa.NumC0Regs {
			return v, nil
		}
	}
	return 0, fmt.Errorf("bad system register %q", s)
}

// int resolves an integer operand, looking .equ constants up first.
func (p *parser) int(s string) (int64, error) {
	if v, ok := p.equs[strings.TrimSpace(s)]; ok {
		return v, nil
	}
	return parseInt(s)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("missing integer")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) != 1 {
			return 0, fmt.Errorf("bad char literal %s", s)
		}
		return int64(r[0]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xFFFFFFFF.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

// parseSymAdd parses "sym", "sym+4" or "sym-8".
func parseSymAdd(s string) (string, int32, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, err := parseInt(s[i:])
			if err != nil {
				return "", 0, err
			}
			return s[:i], int32(v), nil
		}
	}
	if !isIdent(s) {
		return "", 0, fmt.Errorf("bad symbol %q", s)
	}
	return s, 0, nil
}

// memOperand parses "off($rs)", "($rs)" or "off" (rs = $zero).
func (p *parser) memOperand(s string) (int32, int, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		v, err := p.int(s)
		return int32(v), isa.RegZero, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		var err error
		off, err = p.int(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	rs, err := parseReg(s[open+1 : len(s)-1])
	return int32(off), rs, err
}

// parseLoHi matches "%lo(sym)" / "%hi(sym+off)" operands.
func parseLoHi(s, op string) (sym string, add int32, ok bool) {
	if !strings.HasPrefix(s, op+"(") || !strings.HasSuffix(s, ")") {
		return "", 0, false
	}
	inner := s[len(op)+1 : len(s)-1]
	sym, add, err := parseSymAdd(inner)
	if err != nil {
		return "", 0, false
	}
	return sym, add, true
}
